#include "workload/app_model.hh"

#include <algorithm>

namespace ariadne
{

double
ContentMix::totalWeight() const noexcept
{
    double sum = 0.0;
    for (double w : weight)
        sum += w;
    return sum;
}

std::size_t
AppProfile::anonBytesAtAge(Tick age) const noexcept
{
    constexpr Tick t0 = 10ULL * 1000000000ULL;  // 10 s
    constexpr Tick t1 = 300ULL * 1000000000ULL; // 5 min
    if (age <= t0)
        return anonBytes10s;
    if (age >= t1)
        return anonBytes5min;
    double f = static_cast<double>(age - t0) /
               static_cast<double>(t1 - t0);
    double bytes = static_cast<double>(anonBytes10s) +
                   f * (static_cast<double>(anonBytes5min) -
                        static_cast<double>(anonBytes10s));
    return static_cast<std::size_t>(bytes);
}

} // namespace ariadne
