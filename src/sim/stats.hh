/**
 * @file
 * Lightweight statistics package: named counters, scalar samples and
 * histograms collected into a registry that can be dumped as text.
 *
 * Components own their stats; the registry only references them, so
 * stat objects must outlive the registry dump (all components live for
 * the duration of a simulation).
 */

#ifndef ARIADNE_SIM_STATS_HH
#define ARIADNE_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ariadne
{

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). */
    void
    inc(std::uint64_t n = 1) noexcept
    {
        count += n;
    }

    /** Current value. */
    std::uint64_t value() const noexcept { return count; }

    /** Reset to zero. */
    void reset() noexcept { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Running scalar statistic: sum, min, max, mean over samples. */
class Scalar
{
  public:
    Scalar() = default;

    /** Record one sample. */
    void
    sample(double v) noexcept
    {
        total += v;
        n += 1;
        lo = (n == 1) ? v : std::min(lo, v);
        hi = (n == 1) ? v : std::max(hi, v);
    }

    double sum() const noexcept { return total; }
    std::uint64_t samples() const noexcept { return n; }
    double min() const noexcept { return n ? lo : 0.0; }
    double max() const noexcept { return n ? hi : 0.0; }

    /** Arithmetic mean of samples; 0 when empty. */
    double
    mean() const noexcept
    {
        return n ? total / static_cast<double>(n) : 0.0;
    }

    /** Reset to the empty state. */
    void
    reset() noexcept
    {
        total = 0.0;
        n = 0;
        lo = hi = 0.0;
    }

  private:
    double total = 0.0;
    std::uint64_t n = 0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Exact sample distribution: stores every sample and answers
 * percentile queries by rank. Costs memory proportional to the sample
 * count, so it is meant for per-run aggregates (relaunch latencies,
 * per-session CPU), not per-page events — use Histogram for those.
 */
class Distribution
{
  public:
    Distribution() = default;

    /** Record one sample. */
    void
    sample(double v)
    {
        values.push_back(v);
        sorted = false;
    }

    std::uint64_t samples() const noexcept { return values.size(); }

    double min() const noexcept;
    double max() const noexcept;

    /** Arithmetic mean; 0 when empty. */
    double mean() const noexcept;

    /**
     * Nearest-rank percentile: the smallest sample v such that at
     * least ceil(p * samples) samples are <= v. @p p is clamped to
     * [0, 1]; an empty distribution reports 0.
     */
    double percentile(double p) const;

    /** Reset to the empty state. */
    void
    reset() noexcept
    {
        values.clear();
        sorted = false;
    }

  private:
    // percentile() sorts lazily; recording order is irrelevant to
    // every accessor, so logical constness is preserved.
    mutable std::vector<double> values;
    mutable bool sorted = false;
};

/**
 * Fixed-bucket histogram over [0, bucketWidth * buckets); samples past
 * the top land in an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket.
     * @param bucket_count Number of regular buckets.
     */
    Histogram(double bucket_width, std::size_t bucket_count);

    /** Record one sample. */
    void sample(double v) noexcept;

    /** Count in regular bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Count of samples beyond the last regular bucket. */
    std::uint64_t overflowCount() const noexcept { return overflow; }

    /** Total samples recorded. */
    std::uint64_t samples() const noexcept { return total; }

    std::size_t bucketCountTotal() const noexcept { return bins.size(); }
    double bucketWidth() const noexcept { return width; }

    /** Fraction of samples at or below @p v (inclusive CDF estimate). */
    double cdfAt(double v) const noexcept;

    /**
     * Bucket-resolution nearest-rank percentile: the upper edge of the
     * first bucket whose cumulative count reaches p * samples. Overflow
     * samples saturate at the histogram's top edge.
     */
    double percentile(double p) const noexcept;

    /** Reset all buckets. */
    void reset() noexcept;

  private:
    double width;
    std::vector<std::uint64_t> bins;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
};

/**
 * Registry mapping hierarchical stat names ("zram.compressedPages") to
 * component-owned stat objects for a consolidated dump.
 */
class StatRegistry
{
  public:
    /** Register a counter under @p name; name must be unique. */
    void addCounter(const std::string &name, const Counter &c);

    /** Register a scalar under @p name; name must be unique. */
    void addScalar(const std::string &name, const Scalar &s);

    /** Write "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;

    /** Look up a registered scalar; nullptr when absent. */
    const Scalar *findScalar(const std::string &name) const;

    /** All registered counters, sorted by name. */
    const std::map<std::string, const Counter *> &
    allCounters() const noexcept
    {
        return counters;
    }

    /** All registered scalars, sorted by name. */
    const std::map<std::string, const Scalar *> &
    allScalars() const noexcept
    {
        return scalars;
    }

  private:
    std::map<std::string, const Counter *> counters;
    std::map<std::string, const Scalar *> scalars;
};

} // namespace ariadne

#endif // ARIADNE_SIM_STATS_HH
