/** @file Unit tests for the identity codec. */

#include <gtest/gtest.h>

#include "codec_test_util.hh"
#include "compress/null_codec.hh"

using namespace ariadne;
using namespace ariadne::testutil;

TEST(NullCodec, CopiesVerbatim)
{
    NullCodec codec;
    auto src = randomBuffer(4096, 1);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    EXPECT_EQ(csize, src.size());
}

TEST(NullCodec, BoundEqualsSize)
{
    NullCodec codec;
    EXPECT_EQ(codec.compressBound(12345), 12345u);
}

TEST(NullCodec, RejectsShortDestination)
{
    NullCodec codec;
    auto src = randomBuffer(100, 2);
    std::vector<std::uint8_t> small(50);
    EXPECT_EQ(codec.compress({src.data(), src.size()},
                             {small.data(), small.size()}),
              0u);
    EXPECT_EQ(codec.decompress({src.data(), src.size()},
                               {small.data(), small.size()}),
              0u);
}

TEST(NullCodec, EmptyInput)
{
    NullCodec codec;
    std::vector<std::uint8_t> src;
    std::vector<std::uint8_t> dst;
    EXPECT_EQ(codec.compress({src.data(), 0}, {dst.data(), 0}), 0u);
}

TEST(NullCodec, MetadataCorrect)
{
    NullCodec codec;
    EXPECT_EQ(codec.kind(), CodecKind::Null);
    EXPECT_EQ(codec.name(), "null");
}
