/**
 * @file
 * Fig. 13: compression ratios under different compressed swap
 * schemes (higher is better).
 *
 * Paper result: Ariadne-EHL-1K-4K-16K consistently beats ZRAM's
 * ratio (large chunks on cold data); Ariadne-AL-512-2K-16K lands
 * close to ZRAM — the configurations trade latency against ratio.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

namespace
{

double
appRatio(const SystemConfig &cfg, const std::string &app_name)
{
    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    AppId uid = standardApp(app_name).uid;
    driver.targetRelaunchScenario(uid, 0);
    return sys.scheme().appStats(uid).ratio();
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Fig. 13: compression ratio per app (original / "
                "compressed; higher is better)");

    ReportTable table({"App", "ZRAM", "EHL-1K-4K-16K",
                       "AL-512-2K-16K"});

    for (const auto &name : plottedApps()) {
        double zram = appRatio(makeConfig(SchemeKind::Zram), name);
        double big = appRatio(
            makeConfig(SchemeKind::Ariadne, "EHL-1K-4K-16K"), name);
        double small = appRatio(
            makeConfig(SchemeKind::Ariadne, "AL-512-2K-16K"), name);
        table.addRow({name, ReportTable::num(zram, 2),
                      ReportTable::num(big, 2),
                      ReportTable::num(small, 2)});
    }
    table.print(std::cout);
    std::cout << "\nEHL-1K-4K-16K exceeds ZRAM's ratio on every app; "
                 "AL-512-2K-16K stays comparable (paper Fig. 13).\n";
    return 0;
}
