/** @file Unit tests for the integrated AriadneScheme. */

#include <gtest/gtest.h>

#include "core/ariadne.hh"
#include "scheme_test_util.hh"

using namespace ariadne;
using namespace ariadne::testutil;

namespace
{

AriadneConfig
testConfig(const std::string &text = "EHL-1K-2K-16K")
{
    AriadneConfig cfg = AriadneConfig::parse(text);
    cfg.zpoolBytes = 2048 * pageSize;
    cfg.flashBytes = 4096 * pageSize;
    cfg.defaultHotInitPages = 8;
    return cfg;
}

} // namespace

TEST(AriadneScheme, ColdBatchedIntoLargeUnits)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig());
    scheme.seedProfile(1, 4);
    auto pages = h.admitPages(scheme, 1, 20);
    // Lists: hot {0..3}, cold {4..19}.
    std::size_t freed = scheme.reclaim(8, false);
    EXPECT_EQ(freed, 8u);
    // Victims are the oldest cold pages, 4 per 16 KB unit.
    for (std::size_t i = 4; i < 12; ++i)
        EXPECT_EQ(h.arena.location(*pages[i]), PageLocation::Zpool) << i;
    // Two units of four pages = two compression ops.
    EXPECT_EQ(scheme.totalStats().compOps, 2u);
    EXPECT_EQ(scheme.totalStats().inBytes, 8 * pageSize);
}

TEST(AriadneScheme, EhlProtectsHotList)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig("EHL-1K-2K-16K"));
    scheme.seedProfile(1, 8);
    auto pages = h.admitPages(scheme, 1, 16);
    // Ask for more than cold+warm can provide: background reclaim
    // must stop rather than touch the hot list.
    std::size_t freed = scheme.reclaim(16, false);
    EXPECT_EQ(freed, 8u); // only the 8 cold pages
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(h.arena.location(*pages[i]), PageLocation::Resident) << i;
}

TEST(AriadneScheme, EhlEmergencyDirectReclaimTakesHot)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig("EHL-1K-2K-16K"));
    scheme.seedProfile(1, 8);
    h.admitPages(scheme, 1, 8); // hot only
    std::size_t freed = scheme.reclaim(4, true); // direct = emergency
    EXPECT_EQ(freed, 4u);
}

TEST(AriadneScheme, AlCompressesHotOnBackground)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig("AL-1K-2K-16K"));
    scheme.seedProfile(1, 8);
    auto pages = h.admitPages(scheme, 1, 8);
    scheme.onBackground(1);
    for (PageMeta *p : pages)
        EXPECT_EQ(h.arena.location(*p), PageLocation::Zpool);
    EXPECT_GT(scheme.backgroundReclaimCpuNs(), 0u);
    // Hot data compressed at SmallSize: single-page units.
    EXPECT_EQ(scheme.totalStats().compOps, 8u);
}

TEST(AriadneScheme, ColdUnitFaultResidentizesWholeUnit)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig());
    scheme.seedProfile(1, 4);
    auto pages = h.admitPages(scheme, 1, 12);
    scheme.reclaim(8, false); // pages 4..11 into two cold units
    ASSERT_EQ(h.arena.location(*pages[4]), PageLocation::Zpool);

    SwapInResult res = scheme.swapIn(*pages[4]);
    EXPECT_GT(res.latencyNs, 0u);
    // Fig. 9(b): the whole 4-page unit came back.
    for (std::size_t i = 4; i < 8; ++i)
        EXPECT_EQ(h.arena.location(*pages[i]), PageLocation::Resident) << i;
    EXPECT_EQ(scheme.faultsByLevel(Hotness::Cold), 1u);
}

TEST(AriadneScheme, PreDecompChainsThroughSequentialFaults)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig("AL-1K-2K-16K"));
    scheme.seedProfile(1, 16);
    auto pages = h.admitPages(scheme, 1, 16); // all hot
    scheme.onBackground(1); // compressed as 16 single-page units
    // Sequential touches: first faults, then the chain stages ahead.
    scheme.swapIn(*pages[0]);
    std::size_t staged_hits = 0;
    for (std::size_t i = 1; i < 16; ++i) {
        if (h.arena.location(*pages[i]) == PageLocation::Staged) {
            SwapInResult res = scheme.swapIn(*pages[i]);
            EXPECT_TRUE(res.stagedHit);
            ++staged_hits;
        } else if (h.arena.location(*pages[i]) == PageLocation::Resident) {
            scheme.onAccess(*pages[i]); // pre-swapped ahead
        } else {
            scheme.swapIn(*pages[i]);
        }
    }
    EXPECT_GT(staged_hits + scheme.preDecomp().hits(), 8u);
}

TEST(AriadneScheme, StagedHitIsMuchCheaperThanFault)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig("AL-1K-2K-16K"));
    scheme.seedProfile(1, 8);
    auto pages = h.admitPages(scheme, 1, 8);
    scheme.onBackground(1);
    SwapInResult fault = scheme.swapIn(*pages[0]);
    ASSERT_EQ(h.arena.location(*pages[1]), PageLocation::Staged);
    SwapInResult hit = scheme.swapIn(*pages[1]);
    EXPECT_TRUE(hit.stagedHit);
    EXPECT_LT(hit.latencyNs, fault.latencyNs / 2);
}

TEST(AriadneScheme, ZpoolOverflowSpillsColdUnitsToFlashFirst)
{
    SchemeHarness h(4096);
    AriadneConfig cfg = testConfig();
    cfg.zpoolBytes = 32 * pageSize; // tiny pool forces writeback
    AriadneScheme scheme(h.context(), cfg);
    scheme.seedProfile(1, 8);
    auto pages = h.admitPages(scheme, 1, 512);
    scheme.reclaim(480, false);
    EXPECT_GT(scheme.flash()->hostWriteBytes(), 0u);
    EXPECT_EQ(scheme.lostPages(), 0u);
    // Some cold page must now be in flash; swapping it back works.
    PageMeta *flash_page = nullptr;
    for (PageMeta *p : pages) {
        if (h.arena.location(*p) == PageLocation::Flash) {
            flash_page = p;
            break;
        }
    }
    ASSERT_NE(flash_page, nullptr);
    SwapInResult res = scheme.swapIn(*flash_page);
    EXPECT_TRUE(res.fromFlash);
    EXPECT_EQ(h.arena.location(*flash_page), PageLocation::Resident);
}

TEST(AriadneScheme, CompressedColdWritesLessFlashThanRaw)
{
    // D4: Ariadne writes compressed (not raw) data to flash.
    SchemeHarness h(4096);
    AriadneConfig cfg = testConfig();
    cfg.zpoolBytes = 32 * pageSize;
    AriadneScheme scheme(h.context(), cfg);
    scheme.seedProfile(1, 8);
    h.admitPages(scheme, 1, 512);
    scheme.reclaim(480, false);
    const CompStats stats = scheme.totalStats();
    // Everything written to flash was compressed.
    EXPECT_LT(scheme.flash()->hostWriteBytes(),
              static_cast<std::uint64_t>(stats.inBytes));
}

TEST(AriadneScheme, RelaunchWindowRoutesFaultsToHot)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig());
    scheme.seedProfile(1, 4);
    auto pages = h.admitPages(scheme, 1, 12);
    scheme.reclaim(8, false);
    scheme.onRelaunchStart(1);
    scheme.swapIn(*pages[4]);
    EXPECT_EQ(h.arena.level(*pages[4]), Hotness::Hot);
    scheme.onRelaunchEnd(1);
    auto predicted = scheme.predictedHotSet(1);
    EXPECT_EQ(predicted.size(), 1u);
    EXPECT_EQ(predicted[0].pfn, 4u);
}

TEST(AriadneScheme, NameReflectsConfig)
{
    SchemeHarness h(64);
    AriadneScheme scheme(h.context(), testConfig("AL-256-2K-32K"));
    EXPECT_EQ(scheme.name(), "Ariadne-AL-256-2K-32K");
}

TEST(AriadneScheme, OnFreeCleansUpEverywhere)
{
    SchemeHarness h(512);
    AriadneScheme scheme(h.context(), testConfig());
    scheme.seedProfile(1, 2);
    auto pages = h.admitPages(scheme, 1, 10);
    scheme.reclaim(4, false); // one cold unit {2,3,4,5}
    // Freeing one page of a multi-page unit keeps the others valid.
    scheme.onFree(*pages[2]);
    EXPECT_EQ(h.arena.location(*pages[2]), PageLocation::Lost);
    SwapInResult res = scheme.swapIn(*pages[3]);
    (void)res;
    EXPECT_EQ(h.arena.location(*pages[3]), PageLocation::Resident);
    // Freeing a resident page releases DRAM.
    std::size_t used = h.dram.usedPages();
    scheme.onFree(*pages[9]);
    EXPECT_EQ(h.dram.usedPages(), used - 1);
}
