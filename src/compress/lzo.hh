/**
 * @file
 * From-scratch LZO-class codec.
 *
 * Android's ZRAM default is LZO; as with the LZ4-class codec we
 * implement our own byte codec in the same family: flag-grouped
 * literal/match items (LZRW/LZJB lineage), 3-byte minimum match, 4 KB
 * sliding window, two-byte match encoding. Ratio is a little worse
 * and speed a little slower than the LZ4-class codec, matching the
 * qualitative LZO-vs-LZ4 relationship on mobile anonymous data.
 *
 * Format: a control byte carries 8 flags (LSB first); flag 0 is a
 * single literal byte, flag 1 a match item of two bytes:
 *   b0 = (matchLen - 3) << 4 | offset[11:8]
 *   b1 = offset[7:0]
 * with matchLen in 3..18 and offset in 1..4095. The decoder stops when
 * the input is exhausted.
 */

#ifndef ARIADNE_COMPRESS_LZO_HH
#define ARIADNE_COMPRESS_LZO_HH

#include "compress/codec.hh"

namespace ariadne
{

/** LZO-class codec (4 KB window, 3-byte minimum match). */
class LzoCodec : public Codec
{
  public:
    CodecKind kind() const noexcept override { return CodecKind::Lzo; }
    std::string name() const override { return "lzo"; }
    const CodecCost &cost() const noexcept override { return costs; }

    std::size_t compressBound(std::size_t n) const noexcept override;
    std::size_t compress(ConstBytes src, MutableBytes dst) const override;
    std::size_t decompress(ConstBytes src,
                           MutableBytes dst) const override;

    /** Reusable biased position table (see batch_table.hh). */
    std::unique_ptr<BatchState> makeBatchState() const override;
    std::size_t compress(ConstBytes src, MutableBytes dst,
                         BatchState *state) const override;

  private:
    static constexpr CodecCost costs = lzoCost;
};

} // namespace ariadne

#endif // ARIADNE_COMPRESS_LZO_HH
