/**
 * @file
 * Fig. 11: CPU usage of compression + decompression procedures under
 * Ariadne configurations, normalized to ZRAM.
 *
 * Paper result: EHL cuts CPU by 25-30% for hot-data-rich apps
 * (YouTube, Twitter); apps with little hot data (BangDream) see ~3%
 * higher CPU under EHL than AL; the average reduction across all
 * configurations is ~15%.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig11", argc, argv);
    printBanner(std::cout, "Fig. 11: comp+decomp CPU normalized to "
                           "ZRAM (lower is better)");

    // Comp+decomp CPU over the paper's three usage scenarios per
    // target (§5): repeated switching is where ZRAM recompresses the
    // same hot data over and over while Ariadne's cold units stay
    // compressed.
    auto comp_decomp_cpu = [&](const std::string &kind, const std::string &acfg,
                               const std::string &app_name,
                               const std::string &label) {
        driver::ScenarioSpec spec = makeSpec(kind, acfg);
        spec.name = app_name + "/" + label;
        for (unsigned variant = 0; variant < 3; ++variant)
            spec.program.push_back(
                driver::Event::targetScenario(app_name, variant));
        driver::FleetResult r = runVariant(std::move(spec));
        report.add(r);
        const driver::SessionResult &s = session(r);
        return static_cast<double>(s.compCpuNs + s.decompCpuNs);
    };

    const std::vector<std::string> configs = {
        "EHL-1K-2K-16K", "EHL-256-2K-32K", "AL-256-2K-32K",
        "AL-512-2K-16K",
    };

    std::vector<std::string> columns = {"App"};
    for (const auto &c : configs)
        columns.push_back(c);
    ReportTable table(columns);

    double sum = 0.0;
    std::size_t count = 0;
    for (const auto &name : plottedApps()) {
        double zram =
            comp_decomp_cpu("zram", "", name, "zram");
        std::vector<std::string> row{name};
        for (const auto &c : configs) {
            double a = comp_decomp_cpu("ariadne", c, name, c);
            double normalized = a / zram;
            row.push_back(ReportTable::num(normalized, 2));
            sum += normalized;
            ++count;
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nAverage normalized CPU: "
              << ReportTable::num(sum / static_cast<double>(count), 2)
              << " => average reduction "
              << ReportTable::num(
                     100.0 * (1.0 - sum / static_cast<double>(count)),
                     1)
              << "% (paper: ~15%)\n";
    report.addTable("normalized_cpu", table);
    return report.finish();
}
