/**
 * @file
 * Lightweight statistics package: named counters, scalar samples and
 * histograms collected into a registry that can be dumped as text.
 *
 * Components own their stats; the registry only references them, so
 * stat objects must outlive the registry dump (all components live for
 * the duration of a simulation).
 */

#ifndef ARIADNE_SIM_STATS_HH
#define ARIADNE_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace ariadne
{

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). */
    void
    inc(std::uint64_t n = 1) noexcept
    {
        count += n;
    }

    /** Current value. */
    std::uint64_t value() const noexcept { return count; }

    /** Reset to zero. */
    void reset() noexcept { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Running scalar statistic: sum, min, max, mean over samples. */
class Scalar
{
  public:
    Scalar() = default;

    /** Record one sample. */
    void
    sample(double v) noexcept
    {
        total += v;
        n += 1;
        lo = (n == 1) ? v : std::min(lo, v);
        hi = (n == 1) ? v : std::max(hi, v);
    }

    double sum() const noexcept { return total; }
    std::uint64_t samples() const noexcept { return n; }
    double min() const noexcept { return n ? lo : 0.0; }
    double max() const noexcept { return n ? hi : 0.0; }

    /** Arithmetic mean of samples; 0 when empty. */
    double
    mean() const noexcept
    {
        return n ? total / static_cast<double>(n) : 0.0;
    }

    /** Reset to the empty state. */
    void
    reset() noexcept
    {
        total = 0.0;
        n = 0;
        lo = hi = 0.0;
    }

  private:
    double total = 0.0;
    std::uint64_t n = 0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Exact sample distribution: stores every sample and answers
 * percentile queries by rank. Costs memory proportional to the sample
 * count, so it is meant for per-run aggregates (relaunch latencies,
 * per-session CPU), not per-page events — use Histogram for those.
 */
class Distribution
{
  public:
    Distribution() = default;

    /** Record one sample. */
    void
    sample(double v)
    {
        values.push_back(v);
        sorted = false;
    }

    std::uint64_t samples() const noexcept { return values.size(); }

    double min() const noexcept;
    double max() const noexcept;

    /** Arithmetic mean; 0 when empty. */
    double mean() const noexcept;

    /**
     * Nearest-rank percentile: the smallest sample v such that at
     * least ceil(p * samples) samples are <= v. @p p is clamped to
     * [0, 1]; an empty distribution reports 0.
     */
    double percentile(double p) const;

    /** Reset to the empty state. */
    void
    reset() noexcept
    {
        values.clear();
        sorted = false;
    }

  private:
    // percentile() sorts lazily; recording order is irrelevant to
    // every accessor, so logical constness is preserved.
    mutable std::vector<double> values;
    mutable bool sorted = false;
};

/** How a metric aggregates percentiles: exact sample vectors (memory
 * O(samples), byte-reproducible) or a mergeable PercentileSketch
 * (memory O(sketch), rank-error-bounded). */
enum class PercentileMode
{
    Exact,
    Sketch,
};

/** Stable config-format name ("exact" / "sketch"). */
const char *percentileModeName(PercentileMode mode) noexcept;

/** Parse a mode name (case-insensitive); nullopt when unknown. */
std::optional<PercentileMode>
parsePercentileModeName(const std::string &text);

/**
 * Mergeable rank-error-bounded percentile sketch (Munro–Paterson /
 * KLL-style compactors with a *deterministic* compaction schedule).
 *
 * Samples enter a level-0 buffer of capacity k; a full level-ℓ buffer
 * is sorted and halved — every other item survives with doubled
 * weight 2^(ℓ+1) — into level ℓ+1. The surviving parity alternates
 * per level (a counter, never a coin flip), so a given sample/merge
 * sequence always produces the same sketch; there is no randomness to
 * make two runs disagree. Two sketches merge by concatenating levels
 * and re-compacting, so shard order determines the result exactly —
 * ReportMerger canonicalizes shard order, which is what makes merged
 * sketch reports reproducible no matter how the CLI was invoked.
 *
 * Accuracy: halving a level-ℓ buffer perturbs the weighted rank of
 * any threshold by at most 2^ℓ, so the sketch *tracks* its own
 * worst-case bound — rankErrorBound() is the sum of 2^ℓ over every
 * compaction performed (merges add the bounds). percentile(p) is
 * guaranteed to return a value whose true rank is within
 * rankErrorBound() of ceil(p * samples). For n samples the bound
 * grows as (n/k) * log2(n/k) — about 5 % of n at k = 256, n = 10^6 —
 * while retained() stays at O(k * log2(n/k)) items regardless of n.
 */
class PercentileSketch
{
  public:
    /** Smallest accepted buffer size. */
    static constexpr std::size_t minK = 8;
    /** Default buffer size (rank error ≈ 5 % at a million samples). */
    static constexpr std::size_t defaultK = 256;

    /** One compactor level: items all carrying weight 2^level. */
    struct Level
    {
        std::vector<double> items;
    };

    /** @param k Per-level buffer capacity; clamped up to minK and to
     * the next even value (compaction halves pairs). */
    explicit PercentileSketch(std::size_t k = defaultK);

    /** Record one sample. */
    void sample(double v);

    /** Fold @p o into this sketch (capacities must match, see
     * compatible()); both bounds and counts add. */
    void merge(const PercentileSketch &o);

    /** Whether @p o can merge into this sketch (same capacity). */
    bool
    compatible(const PercentileSketch &o) const noexcept
    {
        return cap == o.cap;
    }

    std::uint64_t samples() const noexcept { return n; }
    std::size_t k() const noexcept { return cap; }

    /** Items currently buffered across all levels (the sketch's whole
     * memory footprint; O(k log(n/k)), never O(n)). */
    std::size_t retained() const noexcept;

    /**
     * Worst-case absolute rank error of any percentile query, in
     * sample-count units: the value returned for percentile(p) has a
     * true rank within this bound of ceil(p * samples()). 0 until the
     * first compaction (small inputs are exact).
     */
    std::uint64_t rankErrorBound() const noexcept { return errBound; }

    /**
     * Nearest-rank percentile over the weighted retained items; @p p
     * is clamped to [0, 1] (NaN clamps to 0) and an empty sketch
     * reports 0, mirroring Distribution::percentile.
     */
    double percentile(double p) const;

    /** Compactor levels, bottom (weight 1) first — the serializable
     * state; level i items carry weight 2^i. */
    const std::vector<Level> &levels() const noexcept { return lvls; }

    /**
     * Rebuild a sketch from serialized state (the partial-report
     * parse path). Compaction parity counters restart at zero, which
     * is itself deterministic: the same partial files always merge to
     * the same result.
     */
    static PercentileSketch restore(std::size_t k, std::uint64_t count,
                                    std::uint64_t rank_error_bound,
                                    std::vector<Level> levels);

    /** Reset to the empty state (capacity kept). */
    void reset();

  private:
    void compactLevel(std::size_t level);
    void compactOverfull();

    std::size_t cap;
    std::uint64_t n = 0;
    std::uint64_t errBound = 0;
    std::vector<Level> lvls;
    /** Per-level compaction counters; parity picks the surviving
     * offset, alternating deterministically. */
    std::vector<std::uint64_t> compactions;
};

/**
 * Fixed-bucket histogram over [0, bucketWidth * buckets); samples past
 * the top land in an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket.
     * @param bucket_count Number of regular buckets.
     */
    Histogram(double bucket_width, std::size_t bucket_count);

    /** Record one sample. */
    void sample(double v) noexcept;

    /** Count in regular bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Count of samples beyond the last regular bucket. */
    std::uint64_t overflowCount() const noexcept { return overflow; }

    /** Total samples recorded. */
    std::uint64_t samples() const noexcept { return total; }

    std::size_t bucketCountTotal() const noexcept { return bins.size(); }
    double bucketWidth() const noexcept { return width; }

    /** Fraction of samples at or below @p v (inclusive CDF estimate). */
    double cdfAt(double v) const noexcept;

    /**
     * Bucket-resolution nearest-rank percentile: the upper edge of the
     * first bucket whose cumulative count reaches p * samples. Overflow
     * samples saturate at the histogram's top edge.
     */
    double percentile(double p) const noexcept;

    /** Reset all buckets. */
    void reset() noexcept;

  private:
    double width;
    std::vector<std::uint64_t> bins;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
};

/**
 * Registry mapping hierarchical stat names ("zram.compressedPages") to
 * component-owned stat objects for a consolidated dump.
 */
class StatRegistry
{
  public:
    /** Register a counter under @p name; name must be unique. */
    void addCounter(const std::string &name, const Counter &c);

    /** Register a scalar under @p name; name must be unique. */
    void addScalar(const std::string &name, const Scalar &s);

    /** Write "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;

    /** Look up a registered scalar; nullptr when absent. */
    const Scalar *findScalar(const std::string &name) const;

    /** All registered counters, sorted by name. */
    const std::map<std::string, const Counter *> &
    allCounters() const noexcept
    {
        return counters;
    }

    /** All registered scalars, sorted by name. */
    const std::map<std::string, const Scalar *> &
    allScalars() const noexcept
    {
        return scalars;
    }

  private:
    std::map<std::string, const Counter *> counters;
    std::map<std::string, const Scalar *> scalars;
};

} // namespace ariadne

#endif // ARIADNE_SIM_STATS_HH
