/**
 * @file
 * Per-role CPU time accounting.
 *
 * The paper measures CPU usage with Perfetto, attributing reclaim work
 * to the kswapd thread and (implicitly) decompression to the faulting
 * task. The simulator instead charges every nanosecond of modeled CPU
 * work to an explicit role, which is strictly more precise and lets
 * benches reproduce both Fig. 3 (kswapd CPU) and Fig. 11 (compression
 * plus decompression CPU).
 */

#ifndef ARIADNE_SIM_CPU_ACCOUNT_HH
#define ARIADNE_SIM_CPU_ACCOUNT_HH

#include <array>
#include <cstddef>

#include "sim/types.hh"

namespace ariadne
{

/** Roles CPU time can be charged to. */
enum class CpuRole : std::size_t
{
    Kswapd,        //!< background reclaim daemon
    Compression,   //!< any compression work (reclaim or fault path)
    Decompression, //!< any decompression work
    FaultPath,     //!< page-fault service excluding (de)compression
    AppExecution,  //!< application foreground execution
    FileWriteback, //!< writing file-backed pages to storage
    IoSubmit,      //!< block-I/O submission for swap in/out
    NumRoles
};

/** Human-readable name for a role (stable, used in reports). */
const char *cpuRoleName(CpuRole role) noexcept;

/** Accumulates modeled CPU nanoseconds per role. */
class CpuAccount
{
  public:
    CpuAccount() { reset(); }

    /** Charge @p ns of CPU time to @p role. */
    void
    charge(CpuRole role, Tick ns) noexcept
    {
        buckets[static_cast<std::size_t>(role)] += ns;
    }

    /** Total time charged to @p role. */
    Tick
    total(CpuRole role) const noexcept
    {
        return buckets[static_cast<std::size_t>(role)];
    }

    /** Sum across all roles. */
    Tick
    grandTotal() const noexcept
    {
        Tick sum = 0;
        for (Tick t : buckets)
            sum += t;
        return sum;
    }

    /**
     * CPU time the paper's Fig. 11 metric covers: compression plus
     * decompression, regardless of which thread ran it.
     */
    Tick
    compDecompTotal() const noexcept
    {
        return total(CpuRole::Compression) + total(CpuRole::Decompression);
    }

    /**
     * CPU time the paper's Fig. 3 metric covers: the reclaim thread,
     * i.e., kswapd bookkeeping plus compression performed during
     * reclaim is charged by callers to Kswapd as well (see
     * Kswapd::reclaim); here we expose the raw bucket.
     */
    Tick kswapdTotal() const noexcept { return total(CpuRole::Kswapd); }

    /** Zero all buckets. */
    void
    reset() noexcept
    {
        buckets.fill(0);
    }

  private:
    std::array<Tick, static_cast<std::size_t>(CpuRole::NumRoles)> buckets;
};

} // namespace ariadne

#endif // ARIADNE_SIM_CPU_ACCOUNT_HH
