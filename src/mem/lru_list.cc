#include "mem/lru_list.hh"

namespace ariadne
{

void
LruList::drainTo(LruList &dst)
{
    // Most recent first, appended to dst's tail: the drained pages
    // keep their relative recency and are all older than anything
    // already on dst.
    while (PageMeta *page = popFront())
        dst.pushBack(*page);
}

} // namespace ariadne
