#include "core/hotness_org.hh"

#include <algorithm>

#include "sim/log.hh"
#include "telemetry/journey.hh"
#include "telemetry/telemetry.hh"

namespace ariadne
{

namespace
{

// The relaunch hot->warm demotion is the hotness-decay walk; the SoA
// level array plus walking the hot list (the only pages whose level
// changes) is what keeps it cheap.
telemetry::Counter c_decayPages("hotness.decay_pages");
telemetry::DurationProbe d_decay("hotness.decay");

telemetry::JourneyStep
journeyLevel(Hotness level) noexcept
{
    switch (level) {
      case Hotness::Hot: return telemetry::JourneyStep::Hot;
      case Hotness::Warm: return telemetry::JourneyStep::Warm;
      default: return telemetry::JourneyStep::Cold;
    }
}

} // namespace

HotnessOrg::AppLists &
HotnessOrg::listsFor(AppId uid)
{
    if (lastLists && lastLists->uid == uid)
        return *lastLists;
    auto it = std::lower_bound(
        apps.begin(), apps.end(), uid,
        [](const std::unique_ptr<AppLists> &a, AppId u) {
            return a->uid < u;
        });
    if (it != apps.end() && (*it)->uid == uid)
        return *(lastLists = it->get());
    auto app = std::make_unique<AppLists>(uid, ops);
    app->hotInitTarget = profileStore.hotInitPages(uid);
    return *(lastLists =
                 apps.insert(it, std::move(app))->get());
}

const HotnessOrg::AppLists *
HotnessOrg::findLists(AppId uid) const
{
    auto it = std::lower_bound(
        apps.begin(), apps.end(), uid,
        [](const std::unique_ptr<AppLists> &a, AppId u) {
            return a->uid < u;
        });
    return it != apps.end() && (*it)->uid == uid ? it->get()
                                                 : nullptr;
}

HotnessOrg::AppLists *
HotnessOrg::findLists(AppId uid)
{
    return const_cast<AppLists *>(
        static_cast<const HotnessOrg *>(this)->findLists(uid));
}

LruList &
HotnessOrg::listOf(AppLists &app, Hotness level)
{
    switch (level) {
      case Hotness::Hot: return app.hot;
      case Hotness::Warm: return app.warm;
      default: return app.cold;
    }
}

void
HotnessOrg::noteRelaunchTouch(AppLists &app, const PageMeta &page)
{
    if (!app.relaunchActive)
        return;
    if (app.relaunchSeen.set(page.key.pfn))
        app.relaunchTouched.push_back(page.key);
}

void
HotnessOrg::admit(PageMeta &page, Tick now)
{
    AppLists &app = listsFor(page.key.uid);
    app.lastAccess = now;
    arena.setLastAccess(page, now);

    // Hotness initialization: the first hotInitTarget pages admitted
    // for this app (its launch data) seed the hot list; everything
    // afterwards starts cold (§4.2).
    if (!app.initialized && app.hotAdmitted < app.hotInitTarget) {
        telemetry::journeyMark(page.key.uid, page.key.pfn,
                               telemetry::JourneyStep::Hot, now);
        arena.setLevel(page, Hotness::Hot);
        app.hot.pushFront(page);
        ++app.hotAdmitted;
        if (app.hotAdmitted >= app.hotInitTarget)
            app.initialized = true;
        // Launch-window data counts as relaunch prediction seed.
        if (app.relaunchSeen.set(page.key.pfn))
            app.relaunchTouched.push_back(page.key);
    } else if (app.relaunchActive) {
        // Fresh allocations during a relaunch are relaunch data.
        telemetry::journeyMark(page.key.uid, page.key.pfn,
                               telemetry::JourneyStep::Hot, now);
        arena.setLevel(page, Hotness::Hot);
        app.hot.pushFront(page);
        noteRelaunchTouch(app, page);
    } else {
        telemetry::journeyMark(page.key.uid, page.key.pfn,
                               telemetry::JourneyStep::Cold, now);
        arena.setLevel(page, Hotness::Cold);
        app.cold.pushFront(page);
    }
}

void
HotnessOrg::touchResident(PageMeta &page, Tick now)
{
    AppLists &app = listsFor(page.key.uid);
    app.lastAccess = now;
    arena.setLastAccess(page, now);
    noteRelaunchTouch(app, page);

    Hotness level = arena.level(page);
    if (app.relaunchActive && level != Hotness::Hot) {
        // Data used during relaunch belongs on the hot list.
        listOf(app, level).remove(page);
        telemetry::journeyMark(page.key.uid, page.key.pfn,
                               telemetry::JourneyStep::Hot, now);
        arena.setLevel(page, Hotness::Hot);
        app.hot.pushFront(page);
        return;
    }

    switch (level) {
      case Hotness::Hot:
        app.hot.touch(page);
        break;
      case Hotness::Warm:
        app.warm.touch(page);
        break;
      case Hotness::Cold:
        // Cold data accessed during execution moves to warm, like the
        // kernel's inactive -> active promotion (§4.2).
        app.cold.remove(page);
        telemetry::journeyMark(page.key.uid, page.key.pfn,
                               telemetry::JourneyStep::Warm, now);
        arena.setLevel(page, Hotness::Warm);
        app.warm.pushFront(page);
        break;
    }
}

void
HotnessOrg::placeAfterSwapIn(PageMeta &page, Tick now)
{
    AppLists &app = listsFor(page.key.uid);
    app.lastAccess = now;
    arena.setLastAccess(page, now);
    noteRelaunchTouch(app, page);

    Hotness level = app.relaunchActive ? Hotness::Hot : Hotness::Warm;
    telemetry::journeyMark(page.key.uid, page.key.pfn,
                           journeyLevel(level), now);
    arena.setLevel(page, level);
    listOf(app, level).pushFront(page);
}

void
HotnessOrg::placeColdSibling(PageMeta &page, Tick now)
{
    AppLists &app = listsFor(page.key.uid);
    arena.setLastAccess(page, now);
    telemetry::journeyMark(page.key.uid, page.key.pfn,
                           telemetry::JourneyStep::Cold, now);
    arena.setLevel(page, Hotness::Cold);
    app.cold.pushFront(page);
}

void
HotnessOrg::unlink(PageMeta &page)
{
    if (page.lruOwner == nullptr)
        return;
    page.lruOwner->remove(page);
}

void
HotnessOrg::beginRelaunch(AppId uid, Tick now)
{
    AppLists &app = listsFor(uid);
    app.lastAccess = now;
    app.relaunchActive = true;
    app.relaunchTouched.clear();
    app.relaunchSeen.clear();
    app.initialized = true; // a relaunch supersedes launch seeding

    // "The system moves all old data in the hot list to the warm
    // list and adds the data from this relaunch to the hot list."
    // Pages already on warm keep their Warm level, so demoting the
    // hot list *before* the splice touches exactly the pages whose
    // level changes — a dense SoA write per page instead of a walk
    // over the whole combined warm list.
    telemetry::ScopedTimer timer(d_decay);
    std::uint64_t walked = 0;
    for (PageMeta *p = app.hot.front(); p; p = p->lruNext) {
        telemetry::journeyMark(p->key.uid, p->key.pfn,
                               telemetry::JourneyStep::Warm, now);
        arena.setLevel(*p, Hotness::Warm);
        ++walked;
    }
    c_decayPages.add(walked);
    app.hot.drainTo(app.warm);
}

void
HotnessOrg::endRelaunch(AppId uid)
{
    AppLists &app = listsFor(uid);
    if (!app.relaunchActive)
        return;
    app.relaunchActive = false;
    profileStore.recordRelaunch(uid, app.relaunchTouched.size());
}

bool
HotnessOrg::inRelaunch(AppId uid) const
{
    const AppLists *app = findLists(uid);
    return app && app->relaunchActive;
}

PageMeta *
HotnessOrg::popVictim(Hotness level)
{
    AppLists *oldest = nullptr;
    for (const auto &app : apps) {
        if (listOf(*app, level).empty())
            continue;
        if (!oldest || app->lastAccess < oldest->lastAccess)
            oldest = app.get();
    }
    if (!oldest)
        return nullptr;
    return listOf(*oldest, level).popBack();
}

PageMeta *
HotnessOrg::peekVictim(Hotness level)
{
    AppLists *oldest = nullptr;
    for (const auto &app : apps) {
        if (listOf(*app, level).empty())
            continue;
        if (!oldest || app->lastAccess < oldest->lastAccess)
            oldest = app.get();
    }
    return oldest ? listOf(*oldest, level).back() : nullptr;
}

PageMeta *
HotnessOrg::popVictim(AppId uid, Hotness level)
{
    AppLists *app = findLists(uid);
    if (!app)
        return nullptr;
    return listOf(*app, level).popBack();
}

std::size_t
HotnessOrg::listSize(AppId uid, Hotness level) const
{
    const AppLists *app = findLists(uid);
    if (!app)
        return 0;
    switch (level) {
      case Hotness::Hot: return app->hot.size();
      case Hotness::Warm: return app->warm.size();
      default: return app->cold.size();
    }
}

std::size_t
HotnessOrg::population(Hotness level) const
{
    std::size_t total = 0;
    for (const auto &app : apps) {
        switch (level) {
          case Hotness::Hot: total += app->hot.size(); break;
          case Hotness::Warm: total += app->warm.size(); break;
          default: total += app->cold.size(); break;
        }
    }
    return total;
}

std::vector<PageKey>
HotnessOrg::predictedHotSet(AppId uid) const
{
    const AppLists *app = findLists(uid);
    if (!app)
        return {};
    return app->relaunchTouched;
}

std::size_t
HotnessOrg::lastRelaunchTouched(AppId uid) const
{
    const AppLists *app = findLists(uid);
    return app ? app->relaunchTouched.size() : 0;
}

} // namespace ariadne
