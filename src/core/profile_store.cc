#include "core/profile_store.hh"

// ProfileStore is header-only; this file anchors the library.
