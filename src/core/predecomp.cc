#include "core/predecomp.hh"

#include <algorithm>

#include "sim/log.hh"

namespace ariadne
{

void
PreDecomp::evictOldest()
{
    while (!order.empty()) {
        PageMeta *oldest = order.front();
        order.pop_front();
        auto it = present.find(oldest);
        if (it == present.end())
            continue; // stale entry (already consumed/invalidated)
        present.erase(it);
        // Unused staging: revert to the compressed copy.
        arena.setLocation(*oldest, PageLocation::Zpool);
        ++wasteCount;
        return;
    }
}

bool
PreDecomp::stage(PageMeta &page)
{
    if (capacity == 0 || present.contains(&page))
        return false;
    panicIf(arena.location(page) != PageLocation::Zpool,
            "PreDecomp::stage expects a zpool-resident page");
    while (present.size() >= capacity)
        evictOldest();
    arena.setLocation(page, PageLocation::Staged);
    order.push_back(&page);
    present.emplace(&page, true);
    ++stageCount;
    return true;
}

bool
PreDecomp::consume(PageMeta &page)
{
    auto it = present.find(&page);
    if (it == present.end())
        return false;
    present.erase(it);
    // The deque entry becomes stale and is skipped on eviction.
    ++hitCount;
    return true;
}

void
PreDecomp::invalidate(PageMeta &page)
{
    auto it = present.find(&page);
    if (it == present.end())
        return;
    present.erase(it);
    order.erase(std::remove(order.begin(), order.end(), &page),
                order.end());
}

bool
PreDecomp::contains(const PageMeta &page) const
{
    return present.contains(&page);
}

} // namespace ariadne
