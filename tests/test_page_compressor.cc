/** @file Unit tests for the size-memoizing page compressor. */

#include <gtest/gtest.h>

#include "compress/registry.hh"
#include "swap/page_compressor.hh"
#include "workload/apps.hh"
#include "workload/page_synth.hh"

using namespace ariadne;

class PageCompressorTest : public ::testing::Test
{
  protected:
    PageSynthesizer synth{standardApps()};
    PageCompressor compressor{synth};
    std::unique_ptr<Codec> lzo = makeCodec(CodecKind::Lzo);
    std::unique_ptr<Codec> lz4 = makeCodec(CodecKind::Lz4);
};

TEST_F(PageCompressorTest, SizesArePlausible)
{
    std::size_t csize = compressor.compressedSizeOne(
        PageRef{{0, 1}, 0}, *lzo, pageSize);
    EXPECT_GT(csize, 64u);
    EXPECT_LT(csize, pageSize + 256);
}

TEST_F(PageCompressorTest, CacheHitsOnRepeat)
{
    PageRef ref{{0, 1}, 0};
    std::size_t a = compressor.compressedSizeOne(ref, *lzo, pageSize);
    EXPECT_EQ(compressor.cacheMisses(), 1u);
    std::size_t b = compressor.compressedSizeOne(ref, *lzo, pageSize);
    EXPECT_EQ(a, b);
    EXPECT_EQ(compressor.cacheHits(), 1u);
    EXPECT_EQ(compressor.cacheMisses(), 1u);
}

TEST_F(PageCompressorTest, DistinctKeysMiss)
{
    PageRef ref{{0, 1}, 0};
    compressor.compressedSizeOne(ref, *lzo, pageSize);
    compressor.compressedSizeOne(ref, *lzo, 1024);   // new chunk
    compressor.compressedSizeOne(ref, *lz4, pageSize); // new codec
    compressor.compressedSizeOne(PageRef{{0, 1}, 1}, *lzo,
                                 pageSize); // new version
    compressor.compressedSizeOne(PageRef{{0, 2}, 0}, *lzo,
                                 pageSize); // new pfn
    EXPECT_EQ(compressor.cacheMisses(), 5u);
    EXPECT_EQ(compressor.cacheHits(), 0u);
}

TEST_F(PageCompressorTest, SmallChunksGiveWorseRatio)
{
    // Average over pages: larger chunks never compress worse.
    std::size_t small_total = 0, large_total = 0;
    for (Pfn pfn = 0; pfn < 32; ++pfn) {
        small_total += compressor.compressedSizeOne(
            PageRef{{1, pfn}, 0}, *lz4, 256);
        large_total += compressor.compressedSizeOne(
            PageRef{{1, pfn}, 0}, *lz4, pageSize);
    }
    EXPECT_LT(large_total, small_total);
}

TEST_F(PageCompressorTest, MultiPageUnitsCompressBetterPerByte)
{
    // A 4-page unit at 16 KB chunks vs the same pages individually.
    std::vector<PageRef> refs;
    for (Pfn pfn = 100; pfn < 104; ++pfn)
        refs.push_back(PageRef{{0, pfn}, 0});
    std::size_t unit =
        compressor.compressedSizeMany(refs, *lz4, 16384);
    std::size_t individual = 0;
    for (const auto &ref : refs) {
        individual +=
            compressor.compressedSizeOne(ref, *lz4, pageSize);
    }
    EXPECT_LT(unit, individual);
}

TEST_F(PageCompressorTest, EmptyUnitIsZero)
{
    EXPECT_EQ(compressor.compressedSizeMany({}, *lzo, 16384), 0u);
}

TEST_F(PageCompressorTest, TracksCompressedVolume)
{
    compressor.compressedSizeOne(PageRef{{0, 5}, 0}, *lzo, pageSize);
    EXPECT_EQ(compressor.bytesCompressed(), pageSize);
    compressor.compressedSizeOne(PageRef{{0, 5}, 0}, *lzo, pageSize);
    EXPECT_EQ(compressor.bytesCompressed(), pageSize); // cache hit
}
