/** @file Unit tests for the virtual clock and Stopwatch. */

#include <gtest/gtest.h>

#include "sim/clock.hh"

using namespace ariadne;

TEST(Clock, StartsAtZero)
{
    Clock c;
    EXPECT_EQ(c.now(), 0u);
}

TEST(Clock, AdvanceAccumulates)
{
    Clock c;
    c.advance(5);
    c.advance(10);
    EXPECT_EQ(c.now(), 15u);
}

TEST(Clock, AdvanceToMovesForwardOnly)
{
    Clock c;
    c.advanceTo(100);
    EXPECT_EQ(c.now(), 100u);
    c.advanceTo(50); // no-op: target in the past
    EXPECT_EQ(c.now(), 100u);
    c.advanceTo(150);
    EXPECT_EQ(c.now(), 150u);
}

TEST(Clock, ResetReturnsToZero)
{
    Clock c;
    c.advance(42);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
}

TEST(Clock, ZeroAdvanceIsNoop)
{
    Clock c;
    c.advance(0);
    EXPECT_EQ(c.now(), 0u);
}

TEST(Stopwatch, MeasuresInterval)
{
    Clock c;
    c.advance(10);
    Stopwatch sw(c);
    c.advance(25);
    EXPECT_EQ(sw.elapsed(), 25u);
}

TEST(Stopwatch, RestartRearms)
{
    Clock c;
    Stopwatch sw(c);
    c.advance(10);
    sw.restart();
    c.advance(7);
    EXPECT_EQ(sw.elapsed(), 7u);
}

TEST(Stopwatch, ZeroElapsedInitially)
{
    Clock c;
    Stopwatch sw(c);
    EXPECT_EQ(sw.elapsed(), 0u);
}

TEST(TimeLiterals, ConvertCorrectly)
{
    EXPECT_EQ(1_us, 1000u);
    EXPECT_EQ(1_ms, 1000000u);
    EXPECT_EQ(1_s, 1000000000u);
    EXPECT_DOUBLE_EQ(ticksToMs(2500000), 2.5);
    EXPECT_DOUBLE_EQ(ticksToUs(1500), 1.5);
    EXPECT_DOUBLE_EQ(ticksToSec(500000000), 0.5);
}

TEST(SizeLiterals, ConvertCorrectly)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(2_GiB, 2147483648ull);
}
