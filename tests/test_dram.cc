/** @file Unit tests for the DRAM capacity model. */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace ariadne;

TEST(Dram, CapacityInPages)
{
    Dram d(1024 * 4096);
    EXPECT_EQ(d.capacityPages(), 1024u);
    EXPECT_EQ(d.usedPages(), 0u);
    EXPECT_EQ(d.freePages(), 1024u);
}

TEST(Dram, AllocateAndRelease)
{
    Dram d(16 * 4096);
    EXPECT_TRUE(d.allocate(10));
    EXPECT_EQ(d.usedPages(), 10u);
    d.release(4);
    EXPECT_EQ(d.usedPages(), 6u);
    EXPECT_EQ(d.freePages(), 10u);
}

TEST(Dram, AllocateFailsWhenFull)
{
    Dram d(4 * 4096);
    EXPECT_TRUE(d.allocate(4));
    EXPECT_FALSE(d.allocate(1));
    EXPECT_EQ(d.usedPages(), 4u); // failed allocation changes nothing
}

TEST(Dram, WatermarksScaleWithCapacity)
{
    Dram d(1000 * 4096, 0.10, 0.20);
    EXPECT_EQ(d.lowWatermarkPages(), 100u);
    EXPECT_EQ(d.highWatermarkPages(), 200u);
}

TEST(Dram, WatermarkStateTransitions)
{
    Dram d(100 * 4096, 0.10, 0.20);
    EXPECT_FALSE(d.belowLowWatermark());
    EXPECT_TRUE(d.atHighWatermark());
    EXPECT_EQ(d.reclaimTarget(), 0u);

    ASSERT_TRUE(d.allocate(95)); // 5 free < 10 low watermark
    EXPECT_TRUE(d.belowLowWatermark());
    EXPECT_FALSE(d.atHighWatermark());
    EXPECT_EQ(d.reclaimTarget(), 15u); // back to 20 free

    d.release(20); // 25 free >= 20 high watermark
    EXPECT_FALSE(d.belowLowWatermark());
    EXPECT_TRUE(d.atHighWatermark());
}

TEST(Dram, BoundaryExactlyAtWatermark)
{
    Dram d(100 * 4096, 0.10, 0.20);
    ASSERT_TRUE(d.allocate(90)); // exactly 10 free == low watermark
    EXPECT_FALSE(d.belowLowWatermark());
    ASSERT_TRUE(d.allocate(1)); // 9 free
    EXPECT_TRUE(d.belowLowWatermark());
}

TEST(DramDeath, ReleaseUnderflowPanics)
{
    Dram d(4 * 4096);
    EXPECT_DEATH(d.release(1), "underflow");
}
