/**
 * @file
 * Build provenance for reproducibility stamping.
 *
 * BENCH_*.json and `--metrics` output carry the git SHA and build
 * type of the binary that produced them, so a perf trajectory's
 * points are attributable to commits and never compare a Debug run
 * against a Release baseline unnoticed. The values are baked in at
 * configure time (CMake runs `git rev-parse`); a build from an
 * exported tarball reports "unknown".
 */

#ifndef ARIADNE_TELEMETRY_BUILD_INFO_HH
#define ARIADNE_TELEMETRY_BUILD_INFO_HH

namespace ariadne::telemetry
{

/** Short git SHA of the source tree, or "unknown". */
const char *gitSha() noexcept;

/** CMAKE_BUILD_TYPE of this binary, or "unknown". */
const char *buildType() noexcept;

} // namespace ariadne::telemetry

#endif // ARIADNE_TELEMETRY_BUILD_INFO_HH
