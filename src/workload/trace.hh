/**
 * @file
 * Workload trace format.
 *
 * The paper's methodology replays traces of (PFN, ZRAM sector, UID,
 * page data) collected via MonkeyRunner (§5). Our trace records the
 * same identifying tuple plus the event kind and ground-truth hotness;
 * page data is reproduced from (uid, pfn, version) by the synthesizer,
 * so traces stay small. Binary format with a magic/version header and
 * fixed-size little-endian records; a CSV exporter aids inspection.
 */

#ifndef ARIADNE_WORKLOAD_TRACE_HH
#define ARIADNE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "mem/page.hh"
#include "sim/types.hh"

namespace ariadne
{

/** Kind of a trace event. */
enum class TraceOp : std::uint8_t
{
    Launch = 0,     //!< cold launch of an app
    Relaunch = 1,   //!< hot relaunch begins
    RelaunchEnd = 2,//!< relaunch access sequence finished
    Background = 3, //!< app moved to background
    Touch = 4,      //!< page access (allocation or reuse)
    Free = 5,       //!< page freed
};

/** Stable display name of a trace op. */
const char *traceOpName(TraceOp op) noexcept;

/** One trace event. */
struct TraceRecord
{
    Tick time = 0;
    TraceOp op = TraceOp::Touch;
    AppId uid = invalidApp;
    Pfn pfn = invalidPfn;
    std::uint32_t version = 0;
    Hotness truth = Hotness::Cold;
    /** Whether this Touch allocates the page for the first time. */
    bool newAllocation = false;

    bool operator==(const TraceRecord &o) const noexcept = default;
};

/** Streaming writer for binary trace files. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void append(const TraceRecord &rec);

    /** Records written so far. */
    std::uint64_t count() const noexcept { return written; }

    /** Flush and close; called by the destructor as well. */
    void close();

  private:
    std::ofstream out;
    std::uint64_t written = 0;
    bool closed = false;
};

/** Streaming reader for binary trace files. */
class TraceReader
{
  public:
    /** Open @p path; fatal() on missing file or bad header. */
    explicit TraceReader(const std::string &path);

    /** Read the next record. @return false at end of file. */
    bool next(TraceRecord &rec);

    /** Records promised by the file header. */
    std::uint64_t count() const noexcept { return total; }

  private:
    std::ifstream in;
    std::uint64_t total = 0;
    std::uint64_t consumed = 0;
};

/** Read an entire trace into memory. */
std::vector<TraceRecord> readTrace(const std::string &path);

/** Write an entire trace; convenience over TraceWriter. */
void writeTrace(const std::string &path,
                const std::vector<TraceRecord> &records);

/** Export a trace as CSV with a header row. */
void exportTraceCsv(const std::string &path,
                    const std::vector<TraceRecord> &records);

} // namespace ariadne

#endif // ARIADNE_WORKLOAD_TRACE_HH
