#include "telemetry/bench_report.hh"

#include <ostream>

#include "driver/json_writer.hh"
#include "telemetry/build_info.hh"
#include "telemetry/journey.hh"
#include "telemetry/timeline.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ariadne::telemetry
{

namespace
{

void
writeMeta(driver::JsonWriter &w, const RunMeta &meta)
{
    w.key("meta");
    w.beginObject();
    w.field("gitSha", meta.gitSha);
    w.field("buildType", meta.buildType);
    w.field("threads", meta.threads);
    w.field("scenario", meta.scenario);
    w.field("scenarioHash", meta.scenarioHash);
    w.endObject();
}

void
writeSnapshot(driver::JsonWriter &w,
              const Registry::Snapshot &snapshot)
{
    w.key("counters");
    w.beginObject();
    for (const auto &c : snapshot.counters)
        w.field(c.name, c.value);
    w.endObject();

    w.key("durations");
    w.beginObject();
    for (const auto &d : snapshot.durations) {
        w.key(d.name);
        w.beginObject();
        w.field("count", d.count);
        w.field("totalNs", d.totalNs);
        w.field("meanNs", d.meanNs());
        w.endObject();
    }
    w.endObject();

    w.key("gauges");
    w.beginObject();
    for (const auto &g : snapshot.gauges) {
        w.key(g.name);
        w.beginObject();
        w.field("count", g.count);
        w.field("sum", g.sum);
        w.field("min", g.min);
        w.field("max", g.max);
        w.field("mean", g.mean());
        w.endObject();
    }
    w.endObject();

    w.key("histograms");
    w.beginObject();
    for (const auto &h : snapshot.histograms) {
        w.key(h.name);
        w.beginObject();
        w.field("count", h.count());
        w.field("sum", h.sum);
        w.field("mean", h.mean());
        // Log2 buckets, zero tail trimmed: buckets[b] counts values
        // of bit width b (0, 1, 2-3, 4-7, ...).
        std::size_t used = h.buckets.size();
        while (used > 0 && h.buckets[used - 1] == 0)
            --used;
        w.key("buckets");
        w.beginArray();
        for (std::size_t b = 0; b < used; ++b)
            w.value(h.buckets[b]);
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

} // namespace

RunMeta
RunMeta::current()
{
    RunMeta meta;
    meta.gitSha = telemetry::gitSha();
    meta.buildType = telemetry::buildType();
    return meta;
}

void
BenchReport::writeJson(std::ostream &os) const
{
    driver::JsonWriter w(os);
    w.beginObject();
    w.field("ariadneBench", schemaVersion);
    w.field("bench", bench);
    writeMeta(w, meta);
    w.field("wallSeconds", wallSeconds);
    w.field("peakRssBytes", peakRssBytes);

    w.key("rates");
    w.beginObject();
    for (const auto &[name, value] : rates)
        w.field(name, value);
    w.endObject();

    w.key("totals");
    w.beginObject();
    for (const auto &[name, value] : totals)
        w.field(name, value);
    w.endObject();

    writeSnapshot(w, telemetry);
    w.endObject();
    os << "\n";
}

void
writeMetricsJson(std::ostream &os, const RunMeta &meta,
                 const Registry::Snapshot &snapshot)
{
    driver::JsonWriter w(os);
    w.beginObject();
    w.field("ariadneMetrics", std::uint64_t{1});
    writeMeta(w, meta);
    writeSnapshot(w, snapshot);
    w.endObject();
    os << "\n";
}

void
writeTimelineJson(std::ostream &os, const RunMeta &meta,
                  std::uint64_t interval_ms)
{
    const TimelineRecorder &rec = TimelineRecorder::global();
    std::vector<std::string> names = rec.seriesNames();
    std::vector<TimelineRecorder::Point> pts = rec.points();

    driver::JsonWriter w(os);
    w.beginObject();
    w.field("ariadneTimeline", std::uint64_t{1});
    writeMeta(w, meta);
    w.field("intervalMs", interval_ms);
    w.field("droppedPoints", rec.droppedPoints());
    w.key("series");
    w.beginObject();
    std::size_t i = 0;
    while (i < pts.size()) {
        std::uint32_t series = pts[i].series;
        w.key(names[series]);
        w.beginArray();
        for (; i < pts.size() && pts[i].series == series; ++i) {
            w.beginObject();
            w.field("session",
                    static_cast<std::uint64_t>(pts[i].session));
            w.field("tMs",
                    static_cast<double>(pts[i].tNs) / 1'000'000.0);
            w.field("v", pts[i].value);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    w.endObject();
    os << "\n";
}

void
writeJourneysJson(std::ostream &os, const RunMeta &meta,
                  std::uint64_t sample_every)
{
    const JourneyLog &log = JourneyLog::global();
    std::vector<JourneyLog::Event> evs = log.events();

    driver::JsonWriter w(os);
    w.beginObject();
    w.field("ariadneJourneys", std::uint64_t{1});
    writeMeta(w, meta);
    w.field("sampleEvery", sample_every);
    w.field("droppedEvents", log.droppedEvents());
    w.key("pages");
    w.beginArray();
    std::size_t i = 0;
    while (i < evs.size()) {
        const JourneyLog::Event &head = evs[i];
        w.beginObject();
        w.field("session", static_cast<std::uint64_t>(head.session));
        w.field("uid", static_cast<std::uint64_t>(head.uid));
        w.field("pfn", head.pfn);
        w.key("steps");
        w.beginArray();
        for (; i < evs.size() && evs[i].session == head.session &&
               evs[i].uid == head.uid && evs[i].pfn == head.pfn;
             ++i) {
            w.beginObject();
            w.field("tMs",
                    static_cast<double>(evs[i].tNs) / 1'000'000.0);
            w.field("step", journeyStepName(evs[i].step));
            if (evs[i].detail != 0)
                w.field("detail", evs[i].detail);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

std::uint64_t
currentPeakRssBytes() noexcept
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    // Linux reports ru_maxrss in KiB.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

} // namespace ariadne::telemetry
