/**
 * @file
 * Ariadne configuration (the paper's Table 5 parameters).
 *
 * A configuration is written "EHL-1K-2K-16K" or "AL-512-2K-16K":
 * the scenario (exclude-hot-list vs all-lists) followed by the
 * SmallSize / MediumSize / LargeSize compression chunk sizes used for
 * hot, warm and cold data respectively.
 */

#ifndef ARIADNE_CORE_CONFIG_HH
#define ARIADNE_CORE_CONFIG_HH

#include <cstddef>
#include <optional>
#include <string>

#include "compress/codec.hh"
#include "sim/types.hh"

namespace ariadne
{

/** Tunable parameters of the Ariadne scheme. */
struct AriadneConfig
{
    /** Chunk size for hot-list data (Table 5: 256 B, 512 B, 1 KB). */
    std::size_t smallSize = 1024;
    /** Chunk size for warm-list data (Table 5: 2 KB, 4 KB). */
    std::size_t mediumSize = 2048;
    /** Chunk size for cold-list data (Table 5: 16 KB, 32 KB). */
    std::size_t largeSize = 16384;

    /**
     * Exclude-hot-list mode: background reclaim never compresses hot
     * data (it may still be evicted as a last resort under emergency
     * direct reclaim). False = AL, all lists are eligible.
     */
    bool excludeHotList = true;

    /** zpool capacity (paper: S = 3 GB); scale with the workload. */
    std::size_t zpoolBytes = std::size_t{3} * 1024 * 1024 * 1024;
    /** Flash swap space for compressed cold writeback. */
    std::size_t flashBytes = std::size_t{8} * 1024 * 1024 * 1024;

    CodecKind codec = CodecKind::Lzo;

    /** Pages reclaimed per batch. */
    std::size_t reclaimBatch = 32;

    /** Enable predictive pre-decompression. */
    bool preDecompEnabled = true;
    /** Staging-buffer capacity in pages (paper: small FIFO). */
    std::size_t preDecompBufferPages = 8;
    /** Pages pre-decompressed per trigger (paper: exactly one). */
    std::size_t preDecompDepth = 1;

    /** Fallback hot-list seed when no profile exists (pages). */
    std::size_t defaultHotInitPages = 4096;

    /**
     * Pages per cold compression unit: largeSize bytes of input.
     * Derived, not set directly.
     */
    std::size_t
    coldUnitPages() const noexcept
    {
        std::size_t n = largeSize / pageSize;
        return n == 0 ? 1 : n;
    }

    /** Human-readable name, e.g.\ "Ariadne-EHL-1K-2K-16K". */
    std::string toString() const;

    /**
     * Parse "EHL-1K-2K-16K" / "AL-256-2K-32K" (sizes accept a K
     * suffix). Calls fatal() on malformed input.
     */
    static AriadneConfig parse(const std::string &text);

    /**
     * Non-exiting variant of parse() for layers that must surface
     * malformed user input themselves (the scenario-config parser):
     * returns nullopt on malformed input and, when @p error is
     * non-null, stores the reason there.
     */
    static std::optional<AriadneConfig>
    tryParse(const std::string &text, std::string *error = nullptr);
};

} // namespace ariadne

#endif // ARIADNE_CORE_CONFIG_HH
