#include "swap/scheme.hh"

#include "telemetry/telemetry.hh"

namespace ariadne
{

namespace
{

// Distributions of *modeled* compression work — simulated ns and
// compressed output bytes — recorded where every scheme charges its
// codec costs, so the histograms cover zram, zswap and ariadne
// uniformly, with per-app breakdowns for the leading uids.
telemetry::AppHistogram h_compressNs("swap.compress_ns");
telemetry::AppHistogram h_decompressNs("swap.decompress_ns");
telemetry::AppHistogram h_compressedSize("swap.compressed_size");

} // namespace

void
CompStats::add(const CompStats &o) noexcept
{
    compNs += o.compNs;
    decompNs += o.decompNs;
    inBytes += o.inBytes;
    outBytes += o.outBytes;
    decompBytes += o.decompBytes;
    compOps += o.compOps;
    decompOps += o.decompOps;
}

const CompStats &
SwapScheme::appStats(AppId uid) const
{
    static const CompStats empty;
    auto it = perApp.find(uid);
    return it == perApp.end() ? empty : it->second;
}

CompStats
SwapScheme::totalStats() const
{
    CompStats total;
    for (const auto &[uid, stats] : perApp)
        total.add(stats);
    return total;
}

Tick
SwapScheme::chargeCompression(AppId uid, const CodecCost &cost,
                              std::size_t chunk_bytes,
                              std::size_t in_bytes,
                              std::size_t out_bytes, bool synchronous)
{
    Tick t = ctx.timing.compressNs(cost, chunk_bytes, in_bytes);
    ctx.cpu.charge(CpuRole::Compression, t);
    if (synchronous)
        ctx.clock.advance(t);
    ctx.activity.dramBytes += in_bytes + out_bytes;

    CompStats &stats = perApp[uid];
    stats.compNs += t;
    stats.inBytes += in_bytes;
    stats.outBytes += out_bytes;
    ++stats.compOps;
    h_compressNs.record(uid, t);
    h_compressedSize.record(uid, out_bytes);
    return t;
}

Tick
SwapScheme::chargeDecompression(AppId uid, const CodecCost &cost,
                                std::size_t chunk_bytes,
                                std::size_t out_bytes,
                                std::size_t stored_bytes,
                                bool synchronous)
{
    Tick t = ctx.timing.decompressNs(cost, chunk_bytes, out_bytes);
    ctx.cpu.charge(CpuRole::Decompression, t);
    if (synchronous)
        ctx.clock.advance(t);
    ctx.activity.dramBytes += out_bytes + stored_bytes;

    CompStats &stats = perApp[uid];
    stats.decompNs += t;
    stats.decompBytes += out_bytes;
    ++stats.decompOps;
    h_decompressNs.record(uid, t);
    return t;
}

void
SwapScheme::chargeLruOps(bool synchronous)
{
    (void)synchronous;
    std::uint64_t now = lruOpCounter.value();
    if (now <= chargedLruOps)
        return;
    Tick t = (now - chargedLruOps) * ctx.timing.params().lruOpNs;
    chargedLruOps = now;
    ctx.cpu.charge(CpuRole::FaultPath, t);
}

} // namespace ariadne
