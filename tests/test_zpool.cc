/** @file Unit tests for the zsmalloc-like compressed-object pool. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/zpool.hh"
#include "sim/rng.hh"

using namespace ariadne;

TEST(Zpool, InsertAndQuery)
{
    Zpool pool(1 << 20);
    ZObjectId id = pool.insert(1000, 42);
    ASSERT_NE(id, invalidObject);
    EXPECT_TRUE(pool.live(id));
    EXPECT_EQ(pool.objectSize(id), 1000u);
    EXPECT_EQ(pool.cookie(id), 42u);
    EXPECT_EQ(pool.objectCount(), 1u);
    EXPECT_EQ(pool.storedBytes(), 1000u);
}

TEST(Zpool, SectorsAreSequentialPerInsertion)
{
    // The paper's "ZRAM sector" semantics: batched insertions get
    // consecutive sector numbers regardless of payload placement.
    Zpool pool(1 << 20);
    std::vector<ZObjectId> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(pool.insert(500 + 137 * i, 0));
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(pool.sectorOf(ids[i]), static_cast<Sector>(i));
}

TEST(Zpool, NextInSectorOrderFollowsInsertion)
{
    Zpool pool(1 << 20);
    ZObjectId a = pool.insert(100, 1);
    ZObjectId b = pool.insert(200, 2);
    ZObjectId c = pool.insert(300, 3);
    EXPECT_EQ(pool.nextInSectorOrder(a), b);
    EXPECT_EQ(pool.nextInSectorOrder(b), c);
    EXPECT_EQ(pool.nextInSectorOrder(c), invalidObject);
}

TEST(Zpool, NextInSectorOrderSkipsErased)
{
    Zpool pool(1 << 20);
    ZObjectId a = pool.insert(100, 1);
    ZObjectId b = pool.insert(100, 2);
    ZObjectId c = pool.insert(100, 3);
    pool.erase(b);
    EXPECT_EQ(pool.nextInSectorOrder(a), c);
}

TEST(Zpool, NextInSectorOrderRespectsMaxGap)
{
    Zpool pool(1 << 20);
    ZObjectId a = pool.insert(100, 1);
    std::vector<ZObjectId> fillers;
    for (int i = 0; i < 20; ++i)
        fillers.push_back(pool.insert(100, 0));
    ZObjectId far = pool.insert(100, 2);
    for (ZObjectId f : fillers)
        pool.erase(f);
    // `far` is 21 sectors away; the default max gap refuses it.
    EXPECT_EQ(pool.nextInSectorOrder(a), invalidObject);
    EXPECT_EQ(pool.nextInSectorOrder(a, 100), far);
}

TEST(Zpool, EraseFreesSpace)
{
    Zpool pool(64 * 4096);
    std::vector<ZObjectId> ids;
    // Fill the pool with 2 KB objects (2 per block).
    for (;;) {
        ZObjectId id = pool.insert(2048, 0);
        if (id == invalidObject)
            break;
        ids.push_back(id);
    }
    EXPECT_EQ(ids.size(), 128u);
    EXPECT_FALSE(pool.canFit(2048));
    pool.erase(ids.back());
    EXPECT_TRUE(pool.canFit(2048));
}

TEST(Zpool, SizeClassSharing)
{
    // Two 1.9 KB objects share one 4 KB block (class 2048).
    Zpool pool(1 << 20);
    std::size_t used_before = pool.usedBytes();
    pool.insert(1900, 0);
    pool.insert(1900, 0);
    EXPECT_EQ(pool.usedBytes() - used_before, Zpool::blockBytes);
}

TEST(Zpool, HugeObjectsSpanBlocks)
{
    Zpool pool(1 << 20);
    ZObjectId id = pool.insert(10000, 7); // needs 3 blocks
    ASSERT_NE(id, invalidObject);
    EXPECT_EQ(pool.objectSize(id), 10000u);
    EXPECT_EQ(pool.usedBytes(), 3 * Zpool::blockBytes);
    pool.erase(id);
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.objectCount(), 0u);
}

TEST(Zpool, HugeAllocationFailsWhenFragmented)
{
    Zpool pool(8 * 4096); // 8 blocks
    std::vector<ZObjectId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(pool.insert(4096, 0)); // fill every block
    // Free alternating blocks: max contiguous run is 1.
    for (std::size_t i = 0; i < ids.size(); i += 2)
        pool.erase(ids[i]);
    EXPECT_FALSE(pool.canFit(8192));
    EXPECT_EQ(pool.insert(8192, 0), invalidObject);
    // Freeing a neighbour creates a run of 2.
    pool.erase(ids[1]);
    EXPECT_TRUE(pool.canFit(8192));
    EXPECT_NE(pool.insert(8192, 0), invalidObject);
}

TEST(Zpool, FragmentationMetric)
{
    Zpool pool(1 << 20);
    EXPECT_DOUBLE_EQ(pool.fragmentation(), 0.0);
    pool.insert(100, 0); // 100 bytes in a 4096-byte block
    EXPECT_GT(pool.fragmentation(), 0.9);
}

TEST(Zpool, ReusesSlotsAfterErase)
{
    Zpool pool(4 * 4096);
    ZObjectId a = pool.insert(4096, 0);
    pool.erase(a);
    std::size_t used = pool.usedBytes();
    ZObjectId b = pool.insert(4096, 0);
    EXPECT_NE(b, invalidObject);
    EXPECT_EQ(pool.usedBytes(), used + Zpool::blockBytes);
}

TEST(Zpool, StressChurnKeepsInvariants)
{
    Zpool pool(256 * 4096);
    Rng rng(42);
    std::vector<ZObjectId> live;
    for (int step = 0; step < 5000; ++step) {
        if (!live.empty() && rng.chance(0.45)) {
            std::size_t idx = rng.below(live.size());
            pool.erase(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        } else {
            std::size_t csize = 64 + rng.below(6000);
            ZObjectId id = pool.insert(csize, step);
            if (id != invalidObject)
                live.push_back(id);
        }
        EXPECT_LE(pool.storedBytes(), pool.usedBytes());
        EXPECT_LE(pool.usedBytes(), pool.capacityBytes());
        EXPECT_EQ(pool.objectCount(), live.size());
    }
    for (ZObjectId id : live)
        pool.erase(id);
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.storedBytes(), 0u);
}

TEST(ZpoolDeath, EraseDeadObjectPanics)
{
    Zpool pool(1 << 20);
    ZObjectId id = pool.insert(100, 0);
    pool.erase(id);
    EXPECT_DEATH(pool.erase(id), "dead");
}
