/** @file Unit tests for AriadneConfig parsing and formatting. */

#include <gtest/gtest.h>

#include "core/config.hh"

using namespace ariadne;

TEST(Config, ParseBasic)
{
    auto cfg = AriadneConfig::parse("EHL-1K-2K-16K");
    EXPECT_TRUE(cfg.excludeHotList);
    EXPECT_EQ(cfg.smallSize, 1024u);
    EXPECT_EQ(cfg.mediumSize, 2048u);
    EXPECT_EQ(cfg.largeSize, 16384u);
}

TEST(Config, ParseByteSizes)
{
    auto cfg = AriadneConfig::parse("AL-256-2K-32K");
    EXPECT_FALSE(cfg.excludeHotList);
    EXPECT_EQ(cfg.smallSize, 256u);
    EXPECT_EQ(cfg.mediumSize, 2048u);
    EXPECT_EQ(cfg.largeSize, 32768u);
}

TEST(Config, ParseWithAriadnePrefix)
{
    auto cfg = AriadneConfig::parse("Ariadne-EHL-512-2K-16K");
    EXPECT_TRUE(cfg.excludeHotList);
    EXPECT_EQ(cfg.smallSize, 512u);
}

TEST(Config, ToStringRoundtrips)
{
    for (const char *text :
         {"EHL-1K-2K-16K", "AL-256-2K-32K", "EHL-512-4K-16K",
          "AL-1K-4K-64K"}) {
        auto cfg = AriadneConfig::parse(text);
        EXPECT_EQ(cfg.toString(), std::string("Ariadne-") + text);
        auto again = AriadneConfig::parse(cfg.toString());
        EXPECT_EQ(again.smallSize, cfg.smallSize);
        EXPECT_EQ(again.mediumSize, cfg.mediumSize);
        EXPECT_EQ(again.largeSize, cfg.largeSize);
        EXPECT_EQ(again.excludeHotList, cfg.excludeHotList);
    }
}

TEST(Config, ColdUnitPages)
{
    auto cfg = AriadneConfig::parse("EHL-1K-2K-16K");
    EXPECT_EQ(cfg.coldUnitPages(), 4u);
    cfg = AriadneConfig::parse("EHL-1K-2K-32K");
    EXPECT_EQ(cfg.coldUnitPages(), 8u);
}

TEST(Config, TableFiveDefaults)
{
    AriadneConfig cfg;
    // Table 5: S = 3 GB zpool.
    EXPECT_EQ(cfg.zpoolBytes, std::size_t{3} * 1024 * 1024 * 1024);
    EXPECT_TRUE(cfg.preDecompEnabled);
    EXPECT_EQ(cfg.preDecompDepth, 1u); // one page at a time (§4.4)
}

TEST(ConfigDeath, RejectsBadMode)
{
    EXPECT_DEATH(AriadneConfig::parse("XXX-1K-2K-16K"),
                 "EHL or AL");
}

TEST(ConfigDeath, RejectsWrongArity)
{
    EXPECT_DEATH(AriadneConfig::parse("EHL-1K-2K"), "MODE-SMALL");
}

TEST(ConfigDeath, RejectsUnorderedSizes)
{
    EXPECT_DEATH(AriadneConfig::parse("EHL-4K-2K-16K"), "ordered");
}

TEST(ConfigDeath, RejectsGarbageSize)
{
    EXPECT_DEATH(AriadneConfig::parse("EHL-abc-2K-16K"),
                 "bad size token");
}
