/**
 * @file
 * Ideal DRAM scheme (the paper's "DRAM" upper bound).
 *
 * Assumes main memory is large enough to keep every anonymous page
 * resident: no compression, no swapping, no reclaim. Used as the
 * optimal baseline in Fig. 2/3/10 and Table 2.
 */

#ifndef ARIADNE_SWAP_DRAM_ONLY_HH
#define ARIADNE_SWAP_DRAM_ONLY_HH

#include "swap/scheme.hh"
#include "swap/scheme_registry.hh"

namespace ariadne
{

/** No-swap ideal baseline. */
class DramOnlyScheme : public SwapScheme
{
  public:
    explicit DramOnlyScheme(SwapContext context) : SwapScheme(context)
    {}

    std::string name() const override { return "dram"; }

    void
    onAdmit(PageMeta &page) override
    {
        ctx.arena.setLastAccess(page, ctx.clock.now());
    }

    void
    onAccess(PageMeta &page) override
    {
        ctx.arena.setLastAccess(page, ctx.clock.now());
    }

    SwapInResult
    swapIn(PageMeta &) override
    {
        panic("DramOnlyScheme never swaps pages out");
    }

    void
    onFree(PageMeta &page) override
    {
        if (ctx.arena.location(page) == PageLocation::Resident)
            ctx.dram.release(1);
        ctx.arena.setLocation(page, PageLocation::Lost);
    }

    std::size_t
    reclaim(std::size_t, bool) override
    {
        // Nothing to reclaim: anonymous pages are never evicted.
        return 0;
    }
};

/** Registry entry for `scheme = dram` (see scheme_registry.cc). */
SchemeInfo dramOnlySchemeInfo();

} // namespace ariadne

#endif // ARIADNE_SWAP_DRAM_ONLY_HH
