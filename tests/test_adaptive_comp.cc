/** @file Unit tests for AdaptiveComp's unit table and size policy. */

#include <gtest/gtest.h>

#include <vector>

#include "core/adaptive_comp.hh"

using namespace ariadne;

namespace
{

AriadneConfig
config(const std::string &text = "EHL-1K-2K-16K")
{
    return AriadneConfig::parse(text);
}

std::vector<std::unique_ptr<PageMeta>>
makePages(std::size_t n)
{
    std::vector<std::unique_ptr<PageMeta>> pages;
    for (std::size_t i = 0; i < n; ++i) {
        pages.push_back(std::make_unique<PageMeta>());
        pages.back()->key = PageKey{1, i};
    }
    return pages;
}

} // namespace

TEST(AdaptiveComp, ChunkSizePolicyFollowsTableFive)
{
    AdaptiveComp units(config("EHL-512-4K-32K"));
    EXPECT_EQ(units.chunkFor(Hotness::Hot), 512u);
    EXPECT_EQ(units.chunkFor(Hotness::Warm), 4096u);
    EXPECT_EQ(units.chunkFor(Hotness::Cold), 32768u);
}

TEST(AdaptiveComp, CreateAssignsPageBackrefs)
{
    AdaptiveComp units(config());
    auto pages = makePages(4);
    std::vector<PageMeta *> batch;
    for (auto &p : pages)
        batch.push_back(p.get());
    UnitId id = units.create(batch, 16384, 5000, Hotness::Cold, 77);
    ASSERT_TRUE(units.live(id));
    const CompUnit &u = units.unit(id);
    EXPECT_EQ(u.pages.size(), 4u);
    EXPECT_EQ(u.csize, 5000u);
    EXPECT_EQ(u.chunkBytes, 16384u);
    EXPECT_EQ(u.levelAtCompression, Hotness::Cold);
    EXPECT_EQ(u.object, 77u);
    EXPECT_EQ(u.uncompressedBytes(), 4 * pageSize);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(pages[i]->objectId, id);
        EXPECT_EQ(pages[i]->objectSlot, i);
    }
}

TEST(AdaptiveComp, DestroyAndIdReuse)
{
    AdaptiveComp units(config());
    auto pages = makePages(1);
    UnitId a = units.create({pages[0].get()}, 1024, 900, Hotness::Hot,
                            invalidObject);
    units.destroy(a);
    EXPECT_FALSE(units.live(a));
    EXPECT_EQ(units.liveCount(), 0u);
    UnitId b = units.create({pages[0].get()}, 1024, 900, Hotness::Hot,
                            invalidObject);
    EXPECT_EQ(a, b); // freed id recycled
    EXPECT_TRUE(units.live(b));
}

TEST(AdaptiveComp, LiveCountTracksUnits)
{
    AdaptiveComp units(config());
    auto pages = makePages(3);
    UnitId a = units.create({pages[0].get()}, 1024, 100, Hotness::Hot,
                            invalidObject);
    UnitId b = units.create({pages[1].get()}, 2048, 100, Hotness::Warm,
                            invalidObject);
    units.create({pages[2].get()}, 16384, 100, Hotness::Cold,
                 invalidObject);
    EXPECT_EQ(units.liveCount(), 3u);
    units.destroy(a);
    units.destroy(b);
    EXPECT_EQ(units.liveCount(), 1u);
}

TEST(AdaptiveCompDeath, EmptyUnitPanics)
{
    AdaptiveComp units(config());
    EXPECT_DEATH(units.create({}, 1024, 1, Hotness::Hot,
                              invalidObject),
                 "no pages");
}

TEST(AdaptiveCompDeath, DeadAccessPanics)
{
    AdaptiveComp units(config());
    EXPECT_DEATH(units.unit(5), "dead");
}
