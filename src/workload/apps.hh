/**
 * @file
 * The ten standard application profiles.
 *
 * The paper evaluates Twitter, YouTube, TikTok, Edge, Firefox, Google
 * Earth, Google Maps, BangDream, Angry Birds and TwitchTV (§5).
 * Volumes for the five apps of Table 1 use the paper's numbers; the
 * other five use plausible values in the same range. Content mixes
 * follow each app's nature (browsers are text/pointer heavy; games
 * carry more float/media data, which also gives BangDream the "less
 * hot data" behaviour called out in §6.1).
 */

#ifndef ARIADNE_WORKLOAD_APPS_HH
#define ARIADNE_WORKLOAD_APPS_HH

#include <vector>

#include "workload/app_model.hh"

namespace ariadne
{

/** All ten standard profiles, uid 0..9, in the paper's order. */
std::vector<AppProfile> standardApps();

/** The five Table-1 apps (YouTube, Twitter, Firefox, GEarth,
 * BangDream) as a subset of standardApps(). */
std::vector<AppProfile> tableOneApps();

/** Look up a standard profile by name; fatal() when unknown. */
AppProfile standardApp(const std::string &name);

} // namespace ariadne

#endif // ARIADNE_WORKLOAD_APPS_HH
