/** @file Unit tests for the PreDecomp staging buffer. */

#include <gtest/gtest.h>

#include <vector>

#include "core/predecomp.hh"
#include "mem/page_arena.hh"

using namespace ariadne;

namespace
{

std::vector<PageMeta *>
makeZpoolPages(PageArena &arena, std::size_t n)
{
    std::vector<PageMeta *> pages;
    pages.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        PageMeta *p = arena.alloc();
        p->key = PageKey{1, i};
        arena.setLocation(*p, PageLocation::Zpool);
        pages.push_back(p);
    }
    return pages;
}

} // namespace

TEST(PreDecomp, StageMarksPageStaged)
{
    PageArena arena;
    PreDecomp buf(4, arena);
    auto pages = makeZpoolPages(arena, 1);
    EXPECT_TRUE(buf.stage(*pages[0]));
    EXPECT_EQ(arena.location(*pages[0]), PageLocation::Staged);
    EXPECT_TRUE(buf.contains(*pages[0]));
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.staged(), 1u);
}

TEST(PreDecomp, ZeroCapacityStagesNothing)
{
    PageArena arena;
    PreDecomp buf(0, arena);
    auto pages = makeZpoolPages(arena, 1);
    EXPECT_FALSE(buf.stage(*pages[0]));
    EXPECT_EQ(arena.location(*pages[0]), PageLocation::Zpool);
}

TEST(PreDecomp, DoubleStageRejected)
{
    PageArena arena;
    PreDecomp buf(4, arena);
    auto pages = makeZpoolPages(arena, 1);
    EXPECT_TRUE(buf.stage(*pages[0]));
    EXPECT_FALSE(buf.stage(*pages[0]));
    EXPECT_EQ(buf.staged(), 1u);
}

TEST(PreDecomp, ConsumeCountsHit)
{
    PageArena arena;
    PreDecomp buf(4, arena);
    auto pages = makeZpoolPages(arena, 1);
    buf.stage(*pages[0]);
    EXPECT_TRUE(buf.consume(*pages[0]));
    EXPECT_FALSE(buf.contains(*pages[0]));
    EXPECT_EQ(buf.hits(), 1u);
    EXPECT_FALSE(buf.consume(*pages[0])); // second consume misses
    EXPECT_DOUBLE_EQ(buf.hitRate(), 1.0);
}

TEST(PreDecomp, FifoEvictionRevertsOldest)
{
    PageArena arena;
    PreDecomp buf(2, arena);
    auto pages = makeZpoolPages(arena, 3);
    buf.stage(*pages[0]);
    buf.stage(*pages[1]);
    buf.stage(*pages[2]); // evicts pages[0]
    EXPECT_EQ(arena.location(*pages[0]), PageLocation::Zpool);
    EXPECT_EQ(arena.location(*pages[1]), PageLocation::Staged);
    EXPECT_EQ(arena.location(*pages[2]), PageLocation::Staged);
    EXPECT_EQ(buf.wasted(), 1u);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(PreDecomp, InvalidateDropsWithoutHitOrWaste)
{
    PageArena arena;
    PreDecomp buf(4, arena);
    auto pages = makeZpoolPages(arena, 2);
    buf.stage(*pages[0]);
    buf.stage(*pages[1]);
    buf.invalidate(*pages[0]);
    EXPECT_FALSE(buf.contains(*pages[0]));
    EXPECT_EQ(buf.hits(), 0u);
    EXPECT_EQ(buf.wasted(), 0u);
    EXPECT_EQ(buf.size(), 1u);
}

TEST(PreDecomp, StaleDequeEntriesSkippedOnEviction)
{
    PageArena arena;
    PreDecomp buf(2, arena);
    auto pages = makeZpoolPages(arena, 3);
    buf.stage(*pages[0]);
    buf.stage(*pages[1]);
    buf.consume(*pages[0]); // leaves a stale deque entry
    // Staging a third page must evict pages[1], not the stale entry.
    buf.stage(*pages[2]);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_TRUE(buf.contains(*pages[2]));
}

TEST(PreDecomp, HitRateOverStaged)
{
    PageArena arena;
    PreDecomp buf(8, arena);
    auto pages = makeZpoolPages(arena, 4);
    for (auto *p : pages)
        buf.stage(*p);
    buf.consume(*pages[0]);
    buf.consume(*pages[1]);
    EXPECT_DOUBLE_EQ(buf.hitRate(), 0.5);
}

TEST(PreDecompDeath, StagingResidentPagePanics)
{
    PageArena arena;
    PreDecomp buf(4, arena);
    PageMeta *p = arena.alloc(); // alloc() defaults to Resident
    EXPECT_DEATH(buf.stage(*p), "zpool-resident");
}
