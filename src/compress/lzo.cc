#include "compress/lzo.hh"

#include <cstring>
#include <vector>

namespace ariadne
{

namespace
{

constexpr std::size_t minMatch = 3;
constexpr std::size_t maxMatch = 18;
constexpr std::size_t maxOffset = 4095;
constexpr unsigned hashBits = 12;
constexpr std::size_t hashSize = std::size_t{1} << hashBits;
constexpr std::uint32_t noPos = 0xffffffffu;

std::uint32_t
hash3(const std::uint8_t *p) noexcept
{
    std::uint32_t v = p[0] | (std::uint32_t{p[1]} << 8) |
                      (std::uint32_t{p[2]} << 16);
    return (v * 2654435761u) >> (32 - hashBits);
}

} // namespace

std::size_t
LzoCodec::compressBound(std::size_t n) const noexcept
{
    // All-literal worst case: one flag byte per 8 literals.
    return n + n / 8 + 2;
}

std::size_t
LzoCodec::compress(ConstBytes src, MutableBytes dst) const
{
    const std::size_t n = src.size();
    if (dst.size() < compressBound(n))
        return 0;

    const std::uint8_t *ip = src.data();
    const std::uint8_t *const iend = ip + n;
    std::uint8_t *op = dst.data();

    std::vector<std::uint32_t> table(hashSize, noPos);

    std::uint8_t *flags = nullptr;
    unsigned flag_count = 8; // forces a new flag byte immediately

    while (ip < iend) {
        if (flag_count == 8) {
            flags = op++;
            *flags = 0;
            flag_count = 0;
        }
        bool matched = false;
        if (ip + minMatch <= iend) {
            std::uint32_t h = hash3(ip);
            std::uint32_t ref_pos = table[h];
            auto cur_pos = static_cast<std::uint32_t>(ip - src.data());
            table[h] = cur_pos;
            if (ref_pos != noPos && cur_pos - ref_pos <= maxOffset &&
                std::memcmp(src.data() + ref_pos, ip, minMatch) == 0) {
                const std::uint8_t *ref = src.data() + ref_pos;
                std::size_t len = minMatch;
                std::size_t limit = std::min(
                    maxMatch, static_cast<std::size_t>(iend - ip));
                while (len < limit && ref[len] == ip[len])
                    ++len;
                std::size_t offset = cur_pos - ref_pos;
                *flags |= static_cast<std::uint8_t>(1u << flag_count);
                *op++ = static_cast<std::uint8_t>(
                    ((len - minMatch) << 4) | ((offset >> 8) & 0x0f));
                *op++ = static_cast<std::uint8_t>(offset & 0xff);
                ip += len;
                matched = true;
            }
        }
        if (!matched)
            *op++ = *ip++;
        ++flag_count;
    }
    return static_cast<std::size_t>(op - dst.data());
}

std::size_t
LzoCodec::decompress(ConstBytes src, MutableBytes dst) const
{
    const std::uint8_t *ip = src.data();
    const std::uint8_t *const iend = ip + src.size();
    std::uint8_t *op = dst.data();
    std::uint8_t *const oend = op + dst.size();

    while (ip < iend) {
        std::uint8_t flags = *ip++;
        for (unsigned bit = 0; bit < 8 && ip < iend; ++bit) {
            if (flags & (1u << bit)) {
                if (iend - ip < 2)
                    return 0;
                std::size_t len = (ip[0] >> 4) + minMatch;
                std::size_t offset =
                    (static_cast<std::size_t>(ip[0] & 0x0f) << 8) |
                    ip[1];
                ip += 2;
                if (offset == 0 ||
                    offset > static_cast<std::size_t>(op - dst.data())) {
                    return 0;
                }
                if (static_cast<std::size_t>(oend - op) < len)
                    return 0;
                const std::uint8_t *mp = op - offset;
                for (std::size_t i = 0; i < len; ++i)
                    *op++ = *mp++;
            } else {
                if (op >= oend)
                    return 0;
                *op++ = *ip++;
            }
        }
    }
    return static_cast<std::size_t>(op - dst.data());
}

} // namespace ariadne
