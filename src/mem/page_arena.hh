/**
 * @file
 * Slab arena for PageMeta records.
 *
 * The simulator's hot loop allocates and looks up page metadata for
 * every touch; a general-purpose heap allocation per page (plus the
 * hashed map that used to own the unique_ptrs) dominated that loop.
 * The arena replaces both:
 *
 *  - records live in fixed-size slabs, so a PageMeta's address is
 *    stable for its whole lifetime (the intrusive LruList hooks and
 *    the zpool cookies that store raw PageMeta pointers stay valid
 *    across any number of later allocations);
 *  - a free-list recycles records in O(1) without returning memory to
 *    the heap, the way hemem's memsim keeps page structs in one flat
 *    pool;
 *  - every record carries a compact 32-bit handle with O(1)
 *    handle -> pointer and pointer -> handle mapping, so dense
 *    side-tables can be keyed by handle instead of pointer;
 *  - the scan metadata every reclaim pass and hotness-decay walk
 *    reads (hotness level, location, last access time) lives in
 *    dense per-field arrays indexed by handle (structure-of-arrays),
 *    not in the PageMeta records, so those walks stream through a
 *    few contiguous bytes per page instead of pulling in whole cold
 *    records;
 *  - reset() recycles the whole arena (slabs, SoA arrays and all)
 *    for the next simulated session, so a fleet worker thread reuses
 *    one warmed-up arena instead of re-faulting fresh slabs per
 *    session.
 *
 * Freeing a record that is still linked on an LRU list, or freeing it
 * twice, is a lifetime bug the arena detects immediately (panic)
 * instead of leaving to a later crash.
 */

#ifndef ARIADNE_MEM_PAGE_ARENA_HH
#define ARIADNE_MEM_PAGE_ARENA_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/page.hh"

namespace ariadne
{

/** Compact stable handle to an arena record. */
using PageHandle = std::uint32_t;

/** Sentinel for "no page". */
constexpr PageHandle invalidPageHandle = UINT32_MAX;

/** Slab allocator with free-list recycling for PageMeta records. */
class PageArena
{
  public:
    /** Records per slab; power of two so handle math is shift/mask. */
    static constexpr std::size_t slabPages = std::size_t{1} << 12;

    PageArena() = default;
    PageArena(const PageArena &) = delete;
    PageArena &operator=(const PageArena &) = delete;

    /**
     * Allocate a record. The record is default-initialized (as a
     * fresh PageMeta) except for its arena handle. Never invalidates
     * previously returned pointers.
     */
    PageMeta *alloc();

    /**
     * Return @p page to the free-list. The page must have come from
     * this arena, must not currently be linked on an LruList, and
     * must not already be free — violations panic.
     */
    void free(PageMeta &page);

    /** Record for @p handle; panics on a stale or invalid handle. */
    PageMeta &fromHandle(PageHandle handle);

    /**
     * Recycle the arena for a fresh session: every record returns to
     * the not-yet-handed-out pool while the slabs and SoA arrays keep
     * their memory. All outstanding PageMeta pointers and handles
     * become invalid; the caller must have dropped every structure
     * that stored them (LRU lists, page directories, zpool cookies).
     */
    void reset() noexcept;

    // --- Scan metadata (SoA; see the file comment) -----------------

    /** Which hotness list the scheme currently keeps the page on. */
    Hotness
    level(const PageMeta &page) const noexcept
    {
        return soaLevel[page.arenaHandle];
    }

    void
    setLevel(const PageMeta &page, Hotness h) noexcept
    {
        soaLevel[page.arenaHandle] = h;
    }

    /** Where the page's data currently lives. */
    PageLocation
    location(const PageMeta &page) const noexcept
    {
        return soaLocation[page.arenaHandle];
    }

    void
    setLocation(const PageMeta &page, PageLocation loc) noexcept
    {
        soaLocation[page.arenaHandle] = loc;
    }

    /** Last simulated access time of the page. */
    Tick
    lastAccess(const PageMeta &page) const noexcept
    {
        return soaLastAccess[page.arenaHandle];
    }

    void
    setLastAccess(const PageMeta &page, Tick now) noexcept
    {
        soaLastAccess[page.arenaHandle] = now;
    }

    /** Handle of a record obtained from alloc(). */
    static PageHandle
    handleOf(const PageMeta &page) noexcept
    {
        return page.arenaHandle;
    }

    /** True when @p handle names a currently-allocated record. */
    bool
    liveHandle(PageHandle handle) const noexcept
    {
        return handle < totalRecords() &&
               !slabs[handle >> slabShift][handle & slabMask].arenaFree;
    }

    /** Currently allocated records. */
    std::size_t liveCount() const noexcept { return liveRecords; }

    /** Records ever created (live + free-listed). */
    std::size_t totalRecords() const noexcept { return freshUsed; }

    /** Slabs allocated so far. */
    std::size_t slabCount() const noexcept { return slabs.size(); }

  private:
    static constexpr std::uint32_t slabShift = 12;
    static constexpr std::uint32_t slabMask = slabPages - 1;

    void growSlab();

    std::vector<std::unique_ptr<PageMeta[]>> slabs;
    /** Per-field scan metadata, indexed by handle (one element per
     * slab record; grown alongside the slabs, kept across reset()). */
    std::vector<Hotness> soaLevel;
    std::vector<PageLocation> soaLocation;
    std::vector<Tick> soaLastAccess;
    /** Free-list head, chained through PageMeta::lruNext. */
    PageMeta *freeHead = nullptr;
    /** Records handed out fresh so far (monotonic within a session;
     * rewound to zero by reset()). Handles [0, freshUsed) are the
     * records that exist. */
    std::size_t freshUsed = 0;
    std::size_t liveRecords = 0;
};

/**
 * Dense per-app page-frame bitmap (pfns are allocated densely from 0
 * by the workload generator). Used for touch-capture sets and
 * relaunch dedup where an unordered_set<Pfn> used to hash every
 * insert.
 */
class PfnBitmap
{
  public:
    /** Mark @p pfn; returns true when it was newly set. */
    bool
    set(Pfn pfn)
    {
        std::size_t word = static_cast<std::size_t>(pfn >> 6);
        if (word >= words.size())
            words.resize(word + 1 + words.size() / 2, 0);
        std::uint64_t bit = std::uint64_t{1} << (pfn & 63);
        if (words[word] & bit)
            return false;
        words[word] |= bit;
        return true;
    }

    /** True when @p pfn is marked. */
    bool
    test(Pfn pfn) const noexcept
    {
        std::size_t word = static_cast<std::size_t>(pfn >> 6);
        return word < words.size() &&
               (words[word] >> (pfn & 63)) & 1;
    }

    /** Clear all marks, keeping capacity. */
    void
    clear() noexcept
    {
        for (std::uint64_t &w : words)
            w = 0;
    }

    /** All marked pfns in ascending order. */
    std::vector<Pfn> toSortedVector() const;

    bool
    empty() const noexcept
    {
        for (std::uint64_t w : words)
            if (w)
                return false;
        return true;
    }

  private:
    std::vector<std::uint64_t> words;
};

} // namespace ariadne

#endif // ARIADNE_MEM_PAGE_ARENA_HH
