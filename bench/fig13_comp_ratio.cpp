/**
 * @file
 * Fig. 13: compression ratios under different compressed swap
 * schemes (higher is better).
 *
 * Paper result: Ariadne-EHL-1K-4K-16K consistently beats ZRAM's
 * ratio (large chunks on cold data); Ariadne-AL-512-2K-16K lands
 * close to ZRAM — the configurations trade latency against ratio.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig13", argc, argv);
    printBanner(std::cout,
                "Fig. 13: compression ratio per app (original / "
                "compressed; higher is better)");

    auto app_ratio = [&](const std::string &kind, const std::string &acfg,
                         const std::string &app_name,
                         const std::string &label) {
        driver::FleetResult r = runVariant(
            targetSpec(app_name + "/" + label, kind, app_name, 0,
                       acfg));
        report.add(r);
        return session(r).appComp.at(standardApp(app_name).uid).ratio();
    };

    ReportTable table({"App", "ZRAM", "EHL-1K-4K-16K",
                       "AL-512-2K-16K"});

    for (const auto &name : plottedApps()) {
        double zram = app_ratio("zram", "", name, "zram");
        double big = app_ratio("ariadne", "EHL-1K-4K-16K",
                               name, "EHL-1K-4K-16K");
        double small = app_ratio("ariadne", "AL-512-2K-16K",
                                 name, "AL-512-2K-16K");
        table.addRow({name, ReportTable::num(zram, 2),
                      ReportTable::num(big, 2),
                      ReportTable::num(small, 2)});
    }
    table.print(std::cout);
    std::cout << "\nEHL-1K-4K-16K exceeds ZRAM's ratio on every app; "
                 "AL-512-2K-16K stays comparable (paper Fig. 13).\n";
    report.addTable("comp_ratio", table);
    return report.finish();
}
