/** @file Integration tests for MobileSystem. */

#include <gtest/gtest.h>

#include "sys/session.hh"
#include "workload/apps.hh"

using namespace ariadne;

namespace
{

SystemConfig
testConfig(const std::string &kind)
{
    SystemConfig cfg;
    cfg.scale = 0.03125; // 1/32 for fast tests
    cfg.scheme = kind;
    cfg.seed = 7;
    return cfg;
}

} // namespace

TEST(MobileSystem, ColdLaunchAllocatesWorkingSet)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    AppId yt = standardApp("YouTube").uid;
    std::size_t used_before = sys.dram().usedPages();
    sys.appColdLaunch(yt);
    EXPECT_GT(sys.dram().usedPages(), used_before + 100);
    EXPECT_GT(sys.clock().now(),
              sys.config().timing.processCreateNs);
}

TEST(MobileSystem, RelaunchStatsAreConsistent)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    SessionDriver driver(sys);
    AppId yt = standardApp("YouTube").uid;
    RelaunchStats st = driver.targetRelaunchScenario(yt, 0);
    EXPECT_EQ(st.uid, yt);
    EXPECT_GT(st.pagesTouched, 0u);
    EXPECT_EQ(st.totalNs, st.baseNs + st.pagingNs);
    EXPECT_GE(st.fullScaleNs(sys.config().scale), st.totalNs);
}

TEST(MobileSystem, DramSchemeNeverFaults)
{
    MobileSystem sys(testConfig("dram"), standardApps());
    SessionDriver driver(sys);
    RelaunchStats st =
        driver.targetRelaunchScenario(standardApp("Twitter").uid, 0);
    EXPECT_EQ(st.majorFaults, 0u);
    EXPECT_EQ(sys.scheme().totalStats().compOps, 0u);
}

TEST(MobileSystem, SchemeOrderingMatchesFig2)
{
    // DRAM < ZRAM < SWAP relaunch latency (paper Fig. 2).
    auto run = [](const std::string &kind) {
        MobileSystem sys(testConfig(kind), standardApps());
        SessionDriver driver(sys);
        return driver
            .targetRelaunchScenario(standardApp("YouTube").uid, 0)
            .totalNs;
    };
    Tick dram = run("dram");
    Tick zram = run("zram");
    Tick swap = run("swap");
    EXPECT_LT(dram, zram);
    EXPECT_LT(zram, swap);
}

TEST(MobileSystem, AriadneBeatsZram)
{
    auto run = [](const std::string &kind) {
        MobileSystem sys(testConfig(kind), standardApps());
        SessionDriver driver(sys);
        return driver
            .targetRelaunchScenario(standardApp("YouTube").uid, 0)
            .totalNs;
    };
    EXPECT_LT(run("ariadne"), run("zram"));
}

TEST(MobileSystem, HotnessCapabilityOnlyForPredictingSchemes)
{
    // The capability query replaces the old AriadneScheme downcast:
    // schemes without hot-set prediction return nullptr, Ariadne
    // exposes seeding and prediction through the interface.
    MobileSystem zram(testConfig("zram"), standardApps());
    EXPECT_EQ(zram.hotness(), nullptr);
    MobileSystem ari(testConfig("ariadne"), standardApps());
    ASSERT_NE(ari.hotness(), nullptr);
    // The capability serves predictions once the scheme has seen a
    // relaunch (the same data Fig. 14 scores).
    SessionDriver driver(ari);
    AppId yt = standardApp("YouTube").uid;
    driver.targetRelaunchScenario(yt, 0);
    EXPECT_FALSE(ari.hotness()->predictedHotSet(yt).empty());
}

TEST(MobileSystem, KswapdCpuGrowsUnderPressure)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    SessionDriver driver(sys);
    driver.warmUpAllApps();
    EXPECT_GT(sys.kswapdCpuNs(), 0u);
}

TEST(MobileSystem, EnergyIsPositiveAndActivitySane)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    SessionDriver driver(sys);
    driver.targetRelaunchScenario(standardApp("Firefox").uid, 0);
    ActivityTotals totals = sys.activityTotals();
    EXPECT_EQ(totals.wallTimeNs, sys.clock().now());
    EXPECT_GT(totals.cpuBusyNs, 0u);
    EXPECT_GT(totals.dramBytes, 0u);
    EXPECT_GT(sys.energyJoules(), 0.0);
}

TEST(MobileSystem, TouchCaptureRecordsAccesses)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    AppId yt = standardApp("YouTube").uid;
    sys.startTouchCapture(yt);
    sys.appColdLaunch(yt);
    auto touched = sys.stopTouchCapture(yt);
    EXPECT_EQ(touched.size(), sys.app(yt).pageCount());
    EXPECT_TRUE(sys.stopTouchCapture(yt).empty()); // consumed
}

TEST(MobileSystem, IdleRunsKswapd)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    Tick t0 = sys.clock().now();
    sys.idle(Tick{5} * 1000000000ULL);
    EXPECT_EQ(sys.clock().now() - t0, Tick{5} * 1000000000ULL);
}

TEST(MobileSystem, DeterministicAcrossRuns)
{
    auto run = [] {
        MobileSystem sys(testConfig("ariadne"),
                         standardApps());
        SessionDriver driver(sys);
        return driver
            .targetRelaunchScenario(standardApp("GoogleEarth").uid, 1)
            .totalNs;
    };
    EXPECT_EQ(run(), run());
}

TEST(MobileSystem, CoverageReportedForAriadne)
{
    MobileSystem sys(testConfig("ariadne"), standardApps());
    SessionDriver driver(sys);
    AppId yt = standardApp("YouTube").uid;
    driver.targetRelaunchScenario(yt, 0);
    // Second relaunch: prediction from the first one exists.
    RelaunchStats st = sys.appRelaunch(yt);
    EXPECT_GT(st.predictedPages, 0u);
    EXPECT_GT(st.coverage, 0.4);
    EXPECT_LE(st.coverage, 1.0);
}

TEST(MobileSystemDeath, UnknownAppPanics)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    EXPECT_DEATH(sys.appColdLaunch(999), "unknown app");
}

TEST(SessionDriver, UsageScenariosAdvanceTimeAndDifferInIntensity)
{
    // The heavy mix packs more switches (and thus more comp/decomp
    // work under ZRAM) into the same wall-clock span than the light
    // mix, which idles between switches.
    auto cpu_after = [](bool heavy) {
        MobileSystem sys(testConfig("zram"), standardApps());
        SessionDriver driver(sys);
        if (heavy)
            driver.heavyUsageScenario(Tick{20} * 1000000000ULL);
        else
            driver.lightUsageScenario(Tick{20} * 1000000000ULL);
        return sys.cpu().compDecompTotal();
    };
    EXPECT_GT(cpu_after(true), cpu_after(false));
}

TEST(SessionDriver, UsageScenariosAreDeterministic)
{
    auto run = [](bool heavy) {
        MobileSystem sys(testConfig("zram"), standardApps());
        SessionDriver driver(sys);
        if (heavy)
            driver.heavyUsageScenario(Tick{10} * 1000000000ULL);
        else
            driver.lightUsageScenario(Tick{10} * 1000000000ULL,
                                      Tick{1} * 1000000000ULL);
        return sys.clock().now() + sys.kswapdCpuNs();
    };
    EXPECT_EQ(run(false), run(false));
    EXPECT_EQ(run(true), run(true));
}

TEST(MobileSystem, WindowEnergyMatchesFullRunFromZeroSnapshot)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    SessionDriver driver(sys);
    driver.targetRelaunchScenario(standardApp("YouTube").uid, 0);
    // A zero snapshot over the full wall time at scale 1 is exactly
    // the whole-scenario energy.
    EXPECT_DOUBLE_EQ(
        sys.windowEnergyJoules(ActivityTotals{}, sys.clock().now(),
                               1.0),
        sys.energyJoules());
}

TEST(MobileSystem, WindowEnergyExcludesActivityBeforeTheSnapshot)
{
    MobileSystem sys(testConfig("zram"), standardApps());
    SessionDriver driver(sys);
    driver.warmUpAllApps();
    ActivityTotals before = sys.activityTotals();
    driver.heavyUsageScenario(Tick{10} * 1000000000ULL);

    constexpr Tick window = Tick{10} * 1000000000ULL;
    double busy = sys.windowEnergyJoules(before, window, 1.0);
    // An identical window with nothing in it costs only static power.
    double idle_floor =
        sys.windowEnergyJoules(sys.activityTotals(), window, 1.0);
    EXPECT_GT(busy, idle_floor);
    EXPECT_GT(idle_floor, 0.0);
    // Rescaling dynamic volumes to paper scale can only add energy.
    EXPECT_GT(sys.windowEnergyJoules(before, window,
                                     sys.config().scale),
              busy);
}
