/**
 * @file
 * Memory-pressure example: what happens when the zpool itself fills.
 *
 * Runs Ariadne with a deliberately small zpool so compressed cold
 * units spill to the flash swap space (ZSWAP-style writeback, §4.1),
 * and contrasts flash wear against the raw SWAP scheme. Demonstrates
 * design decision D4: writing *compressed* cold data keeps flash
 * writes small.
 *
 * Run:  ./build/examples/memory_pressure
 */

#include <cstdio>

#include "sys/session.hh"
#include "workload/apps.hh"

using namespace ariadne;

namespace
{

void
runScheme(const std::string &scheme, std::size_t zpool_mb)
{
    SystemConfig cfg;
    cfg.scale = 0.0625;
    cfg.scheme = scheme;
    if (scheme == "ariadne")
        cfg.schemeParams.set("config", "EHL-1K-2K-16K");
    if (scheme != "swap" && scheme != "dram")
        cfg.schemeParams.set("zpool_mb", std::to_string(zpool_mb));

    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    driver.warmUpAllApps();
    driver.lightUsageScenario(30_s);

    const FlashDevice *flash = sys.scheme().flash();
    const Zpool *pool = sys.scheme().zpool();
    std::printf("%-22s zpool %4zu MB: ", sys.scheme().name().c_str(),
                zpool_mb);
    if (pool) {
        std::printf("stored %5.1f MB (frag %4.1f%%), ",
                    static_cast<double>(pool->storedBytes()) / 1048576.0,
                    100.0 * pool->fragmentation());
    }
    if (flash) {
        std::printf("flash writes %6.1f MB (device %6.1f MB), ",
                    static_cast<double>(flash->hostWriteBytes()) /
                        1048576.0,
                    static_cast<double>(flash->deviceWriteBytes()) /
                        1048576.0);
    }
    std::printf("lost pages %llu\n",
                static_cast<unsigned long long>(
                    sys.scheme().lostPages()));
}

} // namespace

int
main()
{
    std::printf("Memory pressure: 10 apps cycling for 30 s, shrinking "
                "zpool (1/16 scale volumes)\n\n");
    // Ample pool: everything stays in DRAM-compressed form.
    runScheme("ariadne", 192);
    // Tight pools: cold units spill to flash, compressed.
    runScheme("ariadne", 24);
    runScheme("ariadne", 12);
    // Baselines under the same pressure.
    runScheme("zswap", 12);
    runScheme("swap", 12);

    std::printf("\nAriadne's writeback ships compressed cold units, "
                "so its flash traffic stays well below raw SWAP.\n");
    return 0;
}
