/**
 * @file
 * perf_pages — page synthesis + compression throughput harness.
 *
 * Streams synthesized pages through every registered codec via the
 * PageCompressor (uncached: each page is compressed exactly once) and
 * emits BENCH_pages.json with per-codec pages/sec rates in the stable
 * `ariadneBench` schema. This isolates the simulator's real
 * compute-bound inner loop — content materialization plus codec —
 * from the scheduling and bookkeeping perf_fleet measures.
 *
 * A second, separately timed phase measures the swap-in path:
 * every page is framed once (untimed) with ChunkedFrame::compress,
 * each decompression is verified against the original bytes, and the
 * timed loop reports decompressPagesPerSec.<codec>.
 *
 *     perf_pages [--pages N] [--out FILE]
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "compress/chunked.hh"
#include "compress/codec.hh"
#include "compress/registry.hh"
#include "swap/page_compressor.hh"
#include "telemetry/bench_report.hh"
#include "telemetry/telemetry.hh"
#include "workload/apps.hh"
#include "workload/page_synth.hh"

using namespace ariadne;

int
main(int argc, char **argv)
{
    std::size_t pages = 4096;
    std::string out_path = "BENCH_pages.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--pages") && i + 1 < argc) {
            pages = std::stoul(argv[++i]);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--pages N] [--out FILE]\n";
            return 2;
        }
    }

    telemetry::setEnabled(true);
    telemetry::Registry::global().reset();

    std::vector<AppProfile> apps = standardApps();
    PageSynthesizer synth(apps);

    telemetry::BenchReport report;
    report.bench = "pages";
    report.meta = telemetry::RunMeta::current();
    report.meta.threads = 1;
    report.meta.scenario = "perf_pages";
    report.totals.emplace_back("pagesPerCodec", pages);

    constexpr CodecKind kinds[] = {CodecKind::Lz4, CodecKind::Lzo,
                                   CodecKind::Bdi, CodecKind::Null};
    auto total_start = std::chrono::steady_clock::now();
    for (CodecKind kind : kinds) {
        // A fresh compressor per codec: distinct (pfn, version) keys
        // keep the memo cold, so every page runs the real codec.
        PageCompressor compressor(synth);
        auto codec = makeCodec(kind);
        AppId uid = apps.front().uid;

        auto start = std::chrono::steady_clock::now();
        std::uint64_t compressed_bytes = 0;
        for (std::size_t i = 0; i < pages; ++i) {
            PageRef ref{PageKey{uid, static_cast<Pfn>(i)}, 0};
            compressed_bytes += compressor.compressedSizeOne(
                ref, *codec, std::size_t{4096});
        }
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;

        std::string name = codecKindName(kind);
        report.rates.emplace_back(
            "pagesPerSec." + name,
            static_cast<double>(pages) /
                std::max(wall.count(), 1e-9));
        report.totals.emplace_back("compressedBytes." + name,
                                   compressed_bytes);
        std::cerr << "perf_pages: " << name << " "
                  << static_cast<double>(pages) / wall.count()
                  << " pages/s\n";

        // Decompress phase (the swap-in critical path). Frames are
        // built and round-trip-verified outside the timed loop; the
        // loop itself is pure ChunkedFrame::decompress.
        std::vector<std::vector<std::uint8_t>> frames(pages);
        std::vector<std::uint8_t> page(pageSize);
        std::vector<std::uint8_t> restored(pageSize);
        for (std::size_t i = 0; i < pages; ++i) {
            PageRef ref{PageKey{uid, static_cast<Pfn>(i)}, 0};
            synth.materialize(ref.key, ref.version,
                              {page.data(), page.size()});
            frames[i] = ChunkedFrame::compress(
                *codec, {page.data(), page.size()},
                std::size_t{4096});
            std::size_t got = ChunkedFrame::decompress(
                *codec, {frames[i].data(), frames[i].size()},
                {restored.data(), restored.size()});
            if (got != pageSize ||
                std::memcmp(restored.data(), page.data(), pageSize)) {
                std::cerr << "perf_pages: " << name
                          << " round-trip mismatch on page " << i
                          << "\n";
                return 1;
            }
        }
        auto dstart = std::chrono::steady_clock::now();
        std::size_t sink = 0;
        for (std::size_t i = 0; i < pages; ++i) {
            sink += ChunkedFrame::decompress(
                *codec, {frames[i].data(), frames[i].size()},
                {restored.data(), restored.size()});
        }
        std::chrono::duration<double> dwall =
            std::chrono::steady_clock::now() - dstart;
        if (sink != pages * pageSize) {
            std::cerr << "perf_pages: " << name
                      << " decompress loop failed\n";
            return 1;
        }
        report.rates.emplace_back(
            "decompressPagesPerSec." + name,
            static_cast<double>(pages) /
                std::max(dwall.count(), 1e-9));
        std::cerr << "perf_pages: " << name << " decompress "
                  << static_cast<double>(pages) / dwall.count()
                  << " pages/s\n";
    }
    std::chrono::duration<double> total_wall =
        std::chrono::steady_clock::now() - total_start;

    report.wallSeconds = total_wall.count();
    report.peakRssBytes = telemetry::currentPeakRssBytes();
    report.telemetry = telemetry::Registry::global().snapshot();

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "perf_pages: cannot write " << out_path << "\n";
        return 1;
    }
    report.writeJson(out);
    std::cerr << "perf_pages: report " << out_path << "\n";
    return 0;
}
