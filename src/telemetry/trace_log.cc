#include "telemetry/trace_log.hh"

#include <algorithm>
#include <ostream>

#include "driver/json_writer.hh"

namespace ariadne::telemetry
{

namespace detail
{
std::atomic<bool> g_traceEnabled{false};
} // namespace detail

void
setTraceEnabled(bool on) noexcept
{
    detail::g_traceEnabled.store(on, std::memory_order_relaxed);
}

TraceLog &
TraceLog::global()
{
    static TraceLog instance;
    return instance;
}

TraceLog::TraceLog() : originNs(hostNowNs()) {}

std::uint64_t
TraceLog::nowNs() const noexcept
{
    return hostNowNs() - originNs;
}

TraceLog::Buffer &
TraceLog::bufferForThisThread()
{
    thread_local Buffer *t_buffer = nullptr;
    if (!t_buffer)
        t_buffer = &attachBuffer();
    return *t_buffer;
}

TraceLog::Buffer &
TraceLog::attachBuffer()
{
    std::lock_guard<std::mutex> lk(mu);
    buffers.push_back(std::make_unique<Buffer>());
    buffers.back()->tid = nextTid++;
    return *buffers.back();
}

void
TraceLog::complete(const char *name, std::uint64_t start_ns,
                   std::uint64_t end_ns, const char *arg_key,
                   std::uint64_t arg_value)
{
    Buffer &buf = bufferForThisThread();
    TraceEvent ev;
    ev.name = name;
    ev.tsNs = start_ns;
    ev.durNs = end_ns > start_ns ? end_ns - start_ns : 0;
    ev.tid = buf.tid;
    if (arg_key) {
        ev.argKey = arg_key;
        ev.argValue = arg_value;
    }
    // The buffer belongs to this thread alone; events() snapshots it
    // under the log mutex, so only the size update needs care — and
    // vectors grow only here, on the owning thread, while readers
    // (events/export) run after the traced work joined.
    buf.events.push_back(std::move(ev));
}

void
TraceLog::instant(std::string name, std::uint64_t ts_ns,
                  std::uint32_t tid, const char *arg_key,
                  std::uint64_t arg_value)
{
    Buffer &buf = bufferForThisThread();
    TraceEvent ev;
    ev.name = std::move(name);
    ev.tsNs = ts_ns;
    ev.tid = tid;
    ev.phase = 'i';
    if (arg_key) {
        ev.argKey = arg_key;
        ev.argValue = arg_value;
    }
    buf.events.push_back(std::move(ev));
}

void
TraceLog::nameSyntheticThread(std::uint32_t tid,
                              const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu);
    for (auto &[t, n] : syntheticNames)
        if (t == tid) {
            n = name;
            return;
        }
    syntheticNames.emplace_back(tid, name);
}

void
TraceLog::nameThisThread(const std::string &name)
{
    if (!traceEnabled())
        return;
    bufferForThisThread().threadName = name;
}

std::vector<TraceEvent>
TraceLog::events() const
{
    std::vector<TraceEvent> all;
    {
        std::lock_guard<std::mutex> lk(mu);
        for (const auto &buf : buffers)
            all.insert(all.end(), buf->events.begin(),
                       buf->events.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tsNs < b.tsNs;
                     });
    return all;
}

std::vector<std::pair<std::uint32_t, std::string>>
TraceLog::threadNames() const
{
    std::vector<std::pair<std::uint32_t, std::string>> names;
    std::lock_guard<std::mutex> lk(mu);
    for (const auto &buf : buffers)
        if (!buf->threadName.empty())
            names.emplace_back(buf->tid, buf->threadName);
    names.insert(names.end(), syntheticNames.begin(),
                 syntheticNames.end());
    return names;
}

void
TraceLog::writeChromeTrace(std::ostream &os) const
{
    driver::JsonWriter w(os);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();
    for (const auto &[tid, name] : threadNames()) {
        w.beginObject();
        w.field("ph", "M");
        w.field("name", "thread_name");
        w.field("pid", 1);
        w.field("tid", static_cast<std::uint64_t>(tid));
        w.key("args");
        w.beginObject();
        w.field("name", name);
        w.endObject();
        w.endObject();
    }
    for (const TraceEvent &ev : events()) {
        w.beginObject();
        w.field("ph", ev.phase == 'i' ? "i" : "X");
        w.field("name", ev.name);
        w.field("pid", 1);
        w.field("tid", static_cast<std::uint64_t>(ev.tid));
        // Trace-event timestamps are microseconds; keep sub-us
        // precision as a decimal fraction.
        w.field("ts", static_cast<double>(ev.tsNs) / 1000.0);
        if (ev.phase == 'i')
            w.field("s", "t"); // thread-scoped instant mark
        else
            w.field("dur", static_cast<double>(ev.durNs) / 1000.0);
        if (!ev.argKey.empty()) {
            w.key("args");
            w.beginObject();
            w.field(ev.argKey, ev.argValue);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
TraceLog::clear()
{
    std::lock_guard<std::mutex> lk(mu);
    for (const auto &buf : buffers) {
        buf->events.clear();
        buf->threadName.clear();
    }
    syntheticNames.clear();
}

} // namespace ariadne::telemetry
