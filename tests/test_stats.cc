/** @file Unit tests for counters, scalars, histograms, registry. */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/stats.hh"

using namespace ariadne;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Scalar, TracksSumMinMaxMean)
{
    Scalar s;
    EXPECT_EQ(s.samples(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(-1.0);
    EXPECT_EQ(s.samples(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.mean(), 5.0 / 3.0, 1e-12);
}

TEST(Scalar, ResetClears)
{
    Scalar s;
    s.sample(10.0);
    s.reset();
    EXPECT_EQ(s.samples(), 0u);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(Histogram, BucketsSamples)
{
    Histogram h(1.0, 4);
    h.sample(0.5);
    h.sample(1.5);
    h.sample(1.7);
    h.sample(3.9);
    h.sample(10.0); // overflow
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Histogram, NegativeSamplesClampToFirstBucket)
{
    Histogram h(1.0, 2);
    h.sample(-5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Histogram, HugeSamplesLandInOverflowWithoutUb)
{
    // v / width used to be cast straight to size_t; doubles beyond the
    // target range made that undefined behavior. Huge and non-finite-
    // adjacent values must all land in the overflow bucket.
    Histogram h(1.0, 4);
    h.sample(1e300);
    h.sample(std::numeric_limits<double>::max());
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(4.0); // first value past the top edge
    EXPECT_EQ(h.overflowCount(), 5u);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucketCount(3), 0u);
}

TEST(Histogram, PercentileOnKnownDistribution)
{
    // 100 samples uniform over [0, 10): percentiles at bucket
    // resolution (width 1).
    Histogram h(1.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) / 10.0 + 0.05);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);  // first non-empty bucket
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
    // Out-of-range and NaN p clamp instead of reaching the integer
    // cast (which would be UB).
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    EXPECT_DOUBLE_EQ(
        h.percentile(std::numeric_limits<double>::quiet_NaN()),
        h.percentile(0.0));
}

TEST(Histogram, PercentileSaturatesAtTopEdgeForOverflow)
{
    Histogram h(1.0, 2);
    h.sample(0.5);
    h.sample(100.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);
    EXPECT_DOUBLE_EQ(Histogram(1.0, 2).percentile(0.5), 0.0); // empty
}

TEST(Distribution, PercentilesOnKnownDistribution)
{
    Distribution d;
    for (int i = 100; i >= 1; --i) // reverse order: sorting is lazy
        d.sample(static_cast<double>(i));
    EXPECT_EQ(d.samples(), 100u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    // Nearest rank: ceil(p * n)-th smallest.
    EXPECT_DOUBLE_EQ(d.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.90), 90.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(-3.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(7.0), 100.0);
    EXPECT_DOUBLE_EQ(
        d.percentile(std::numeric_limits<double>::quiet_NaN()), 1.0);
}

TEST(Distribution, SingleSampleAndEmpty)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(7.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 7.0);
}

TEST(Distribution, SamplingAfterPercentileQueryStillWorks)
{
    Distribution d;
    d.sample(3.0);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 3.0);
    d.sample(2.0); // invalidates the lazily sorted order
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 2.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
}

TEST(Histogram, CdfMonotonic)
{
    Histogram h(1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    double prev = 0.0;
    for (int i = 1; i <= 10; ++i) {
        double cdf = h.cdfAt(static_cast<double>(i));
        EXPECT_GE(cdf, prev);
        prev = cdf;
    }
    EXPECT_DOUBLE_EQ(h.cdfAt(10.0), 1.0);
}

TEST(Histogram, ResetClearsAll)
{
    Histogram h(2.0, 2);
    h.sample(1.0);
    h.sample(100.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
}

TEST(StatRegistry, DumpContainsEntries)
{
    StatRegistry reg;
    Counter c;
    c.inc(3);
    Scalar s;
    s.sample(1.0);
    reg.addCounter("a.counter", c);
    reg.addScalar("b.scalar", s);

    std::ostringstream os;
    reg.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("a.counter 3"), std::string::npos);
    EXPECT_NE(text.find("b.scalar.mean 1"), std::string::npos);
}

TEST(StatRegistry, FindWorks)
{
    StatRegistry reg;
    Counter c;
    reg.addCounter("x", c);
    EXPECT_EQ(reg.findCounter("x"), &c);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.findScalar("x"), nullptr);
}
