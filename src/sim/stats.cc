#include "sim/stats.hh"

#include "sim/log.hh"

namespace ariadne
{

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width(bucket_width), bins(bucket_count, 0)
{
    fatalIf(bucket_width <= 0.0, "Histogram bucket width must be > 0");
    fatalIf(bucket_count == 0, "Histogram needs at least one bucket");
}

void
Histogram::sample(double v) noexcept
{
    total += 1;
    if (v < 0.0)
        v = 0.0;
    auto idx = static_cast<std::size_t>(v / width);
    if (idx >= bins.size())
        overflow += 1;
    else
        bins[idx] += 1;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    panicIf(i >= bins.size(), "Histogram bucket index out of range");
    return bins[i];
}

double
Histogram::cdfAt(double v) const noexcept
{
    if (total == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        double upper = width * static_cast<double>(i + 1);
        if (upper <= v)
            acc += bins[i];
        else
            break;
    }
    return static_cast<double>(acc) / static_cast<double>(total);
}

void
Histogram::reset() noexcept
{
    std::fill(bins.begin(), bins.end(), 0);
    overflow = 0;
    total = 0;
}

void
StatRegistry::addCounter(const std::string &name, const Counter &c)
{
    auto [it, inserted] = counters.emplace(name, &c);
    (void)it;
    fatalIf(!inserted, "duplicate counter name: " + name);
}

void
StatRegistry::addScalar(const std::string &name, const Scalar &s)
{
    auto [it, inserted] = scalars.emplace(name, &s);
    (void)it;
    fatalIf(!inserted, "duplicate scalar name: " + name);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, s] : scalars) {
        os << name << ".mean " << s->mean() << "\n";
        os << name << ".samples " << s->samples() << "\n";
    }
}

const Counter *
StatRegistry::findCounter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? nullptr : it->second;
}

const Scalar *
StatRegistry::findScalar(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? nullptr : it->second;
}

} // namespace ariadne
