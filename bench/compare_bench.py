#!/usr/bin/env python3
"""Compare a BENCH_*.json perf report against a committed baseline.

Usage:
    compare_bench.py CURRENT BASELINE [--rate-tolerance 0.25]
                     [--counter-tolerance 0.0]

Rates (sessions/sec, pages/sec.*) may regress by at most
--rate-tolerance relative to the baseline (improvements always pass).
Telemetry counters are deterministic functions of the workload, so
they must match the baseline within --counter-tolerance (default:
exactly); a counter drift means the simulator does different *work*
than it did at the baseline commit, which is a behavioural change
that deserves a baseline refresh in the same PR.

Wall time, RSS, and duration accumulators are machine-dependent and
reported for information only. Exit status: 0 pass, 1 fail, 2 usage.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("ariadneBench") != 1:
        sys.exit(f"{path}: not an ariadneBench v1 document")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--rate-tolerance", type=float, default=0.25,
                    help="max fractional rate regression (default 0.25)")
    ap.add_argument("--counter-tolerance", type=float, default=0.0,
                    help="max fractional counter drift (default exact)")
    args = ap.parse_args()

    cur = load(args.current)
    base = load(args.baseline)
    if cur["bench"] != base["bench"]:
        sys.exit(f"bench mismatch: {cur['bench']} vs {base['bench']}")

    failures = []

    for name, base_rate in base.get("rates", {}).items():
        cur_rate = cur.get("rates", {}).get(name)
        if cur_rate is None:
            failures.append(f"rate '{name}' missing from current run")
            continue
        floor = base_rate * (1.0 - args.rate_tolerance)
        status = "ok" if cur_rate >= floor else "FAIL"
        print(f"rate {name}: {cur_rate:.1f} vs baseline "
              f"{base_rate:.1f} (floor {floor:.1f}) {status}")
        if cur_rate < floor:
            failures.append(
                f"rate '{name}' regressed: {cur_rate:.1f} < "
                f"{floor:.1f} ({args.rate_tolerance:.0%} band below "
                f"baseline {base_rate:.1f})")

    for name, base_val in base.get("counters", {}).items():
        cur_val = cur.get("counters", {}).get(name)
        if cur_val is None:
            failures.append(f"counter '{name}' missing from current run")
            continue
        limit = abs(base_val) * args.counter_tolerance
        if abs(cur_val - base_val) > limit:
            failures.append(
                f"counter '{name}' drifted: {cur_val} vs baseline "
                f"{base_val} (tolerance {args.counter_tolerance:.0%})")

    drift = sum(1 for n in cur.get("counters", {})
                if n not in base.get("counters", {}))
    if drift:
        print(f"note: {drift} counter(s) in current run absent from "
              f"baseline (new instrumentation; refresh the baseline)")

    print(f"info: wall {cur.get('wallSeconds', 0):.2f}s vs baseline "
          f"{base.get('wallSeconds', 0):.2f}s, peak RSS "
          f"{cur.get('peakRssBytes', 0) // (1 << 20)} MiB "
          f"(informational)")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"PASS: {cur['bench']} within tolerance "
          f"(rates {args.rate_tolerance:.0%}, counters "
          f"{args.counter_tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
