/**
 * @file
 * Session driver — the MonkeyRunner replacement (§5 methodology).
 *
 * Builds the paper's scenarios on top of a MobileSystem:
 *
 *  - targetRelaunchScenario: launch the target app, use it,
 *    background it, launch the other nine apps in a variant-specific
 *    order (three usage scenarios per target), then relaunch the
 *    target and measure;
 *  - lightUsageScenario: switch between the ten apps with an
 *    intermission gap (Table 2 "light");
 *  - heavyUsageScenario: sequential launches without gaps
 *    (Table 2 "heavy").
 *
 * Every compound scenario bottoms out in MobileSystem's primitive
 * driver ops (cold-launch / execute / background / relaunch / idle),
 * so an attached SystemObserver — trace recording — sees the full
 * op/touch stream regardless of which layer drove it, and a trace
 * replay reproduces these scenarios without re-running them.
 */

#ifndef ARIADNE_SYS_SESSION_HH
#define ARIADNE_SYS_SESSION_HH

#include <unordered_set>

#include "sys/mobile_system.hh"

namespace ariadne
{

/** Scripted multi-app usage scenarios. */
class SessionDriver
{
  public:
    /** @param system The device to drive. */
    explicit SessionDriver(MobileSystem &system) : sys(system) {}

    /**
     * The paper's per-target trace methodology.
     * @param target App to measure.
     * @param variant Background-launch order variant (0, 1, 2, ...).
     * @param use_time Foreground time of the target before switching.
     * @param bg_use_time Foreground time of each background app.
     * @return measured relaunch statistics.
     */
    RelaunchStats targetRelaunchScenario(
        AppId target, unsigned variant,
        Tick use_time = Tick{30} * 1000000000ULL,
        Tick bg_use_time = Tick{8} * 1000000000ULL);

    /**
     * Everything targetRelaunchScenario does *before* the measured
     * relaunch: launch/use/background the target, then the other
     * apps. Lets benches reset analysis logs right before measuring
     * with sys.appRelaunch(target).
     */
    void prepareTargetScenario(
        AppId target, unsigned variant,
        Tick use_time = Tick{30} * 1000000000ULL,
        Tick bg_use_time = Tick{8} * 1000000000ULL);

    /**
     * Prepare pressure: launch every app once (target last-but-one)
     * without measuring. Used by benches that then measure multiple
     * relaunches (Fig. 5, Fig. 14).
     */
    void warmUpAllApps(Tick bg_use_time = Tick{8} * 1000000000ULL);

    /** Default intermission of the light-usage mix (the scenario
     * parser's one-argument `light_usage` form uses it too). */
    static constexpr Tick lightUsageDefaultGap =
        Tick{1} * 1000000000ULL;

    /**
     * Light usage: round-robin relaunches with an intermission gap
     * until @p duration simulated time passes.
     */
    void lightUsageScenario(Tick duration = Tick{60} * 1000000000ULL,
                            Tick gap = lightUsageDefaultGap);

    /** Heavy usage: continuous relaunches without intermission. */
    void heavyUsageScenario(Tick duration = Tick{60} * 1000000000ULL);

    /**
     * Cold-launch @p uid on its first visit, hot-relaunch it
     * otherwise. The measured RelaunchStats are only meaningful for
     * the relaunch case; a cold launch reports zeroed stats with
     * uid == invalidApp so callers can tell the two apart.
     */
    RelaunchStats visit(AppId uid);

    /** Whether @p uid has been launched by this driver. */
    bool
    isLaunched(AppId uid) const
    {
        return launched.contains(uid);
    }

  private:
    /** All uids of the system's profiles. */
    std::vector<AppId> allApps() const;

    MobileSystem &sys;
    std::unordered_set<AppId> launched;
};

} // namespace ariadne

#endif // ARIADNE_SYS_SESSION_HH
