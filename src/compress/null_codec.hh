/**
 * @file
 * Identity codec.
 *
 * Stores input verbatim. Used by the uncompressed SWAP scheme and as a
 * control in codec experiments.
 */

#ifndef ARIADNE_COMPRESS_NULL_CODEC_HH
#define ARIADNE_COMPRESS_NULL_CODEC_HH

#include "compress/codec.hh"

namespace ariadne
{

/** Codec that copies input to output unchanged. */
class NullCodec : public Codec
{
  public:
    CodecKind kind() const noexcept override { return CodecKind::Null; }
    std::string name() const override { return "null"; }
    const CodecCost &cost() const noexcept override { return costs; }

    std::size_t
    compressBound(std::size_t n) const noexcept override
    {
        return n;
    }

    std::size_t compress(ConstBytes src, MutableBytes dst) const override;
    std::size_t decompress(ConstBytes src,
                           MutableBytes dst) const override;

  private:
    static constexpr CodecCost costs = nullCost;
};

} // namespace ariadne

#endif // ARIADNE_COMPRESS_NULL_CODEC_HH
