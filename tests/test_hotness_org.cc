/** @file Unit tests for HotnessOrg (three-list data organization). */

#include <gtest/gtest.h>

#include <vector>

#include "core/hotness_org.hh"
#include "mem/page_arena.hh"

using namespace ariadne;

class HotnessOrgTest : public ::testing::Test
{
  protected:
    HotnessOrgTest() : org(&ops, profiles, arena)
    {
        profiles.seed(1, 4);
    }

    PageMeta &
    page(AppId uid, Pfn pfn)
    {
        PageMeta *p = arena.alloc(); // alloc() defaults to Resident
        p->key = PageKey{uid, pfn};
        pages.push_back(p);
        return *p;
    }

    Counter ops;
    ProfileStore profiles{4};
    PageArena arena;
    HotnessOrg org;
    std::vector<PageMeta *> pages;
};

TEST_F(HotnessOrgTest, LaunchSeedsHotListToProfileSize)
{
    // First 4 admissions (the profile size) go hot, the rest cold.
    for (Pfn i = 0; i < 10; ++i)
        org.admit(page(1, i), 100 + i);
    EXPECT_EQ(org.listSize(1, Hotness::Hot), 4u);
    EXPECT_EQ(org.listSize(1, Hotness::Cold), 6u);
    EXPECT_EQ(org.listSize(1, Hotness::Warm), 0u);
}

TEST_F(HotnessOrgTest, ColdTouchPromotesToWarm)
{
    for (Pfn i = 0; i < 8; ++i)
        org.admit(page(1, i), i);
    PageMeta &cold_page = *pages[6]; // beyond the hot seed
    ASSERT_EQ(arena.level(cold_page), Hotness::Cold);
    org.touchResident(cold_page, 100);
    EXPECT_EQ(arena.level(cold_page), Hotness::Warm);
    EXPECT_EQ(org.listSize(1, Hotness::Warm), 1u);
    EXPECT_EQ(org.listSize(1, Hotness::Cold), 3u);
}

TEST_F(HotnessOrgTest, RelaunchDemotesOldHotAndRebuilds)
{
    for (Pfn i = 0; i < 8; ++i)
        org.admit(page(1, i), i);
    org.beginRelaunch(1, 1000);
    // Old hot list drained into warm.
    EXPECT_EQ(org.listSize(1, Hotness::Hot), 0u);
    EXPECT_EQ(org.listSize(1, Hotness::Warm), 4u);
    EXPECT_TRUE(org.inRelaunch(1));
    // Touches during the relaunch window promote to hot.
    org.touchResident(*pages[0], 1001);
    org.touchResident(*pages[5], 1002); // was cold
    EXPECT_EQ(org.listSize(1, Hotness::Hot), 2u);
    org.endRelaunch(1);
    EXPECT_FALSE(org.inRelaunch(1));
    // The observed relaunch size feeds the profile store.
    EXPECT_EQ(profiles.hotInitPages(1), (4 + 2 + 1) / 2);
}

TEST_F(HotnessOrgTest, PredictedHotSetTracksRelaunchTouches)
{
    for (Pfn i = 0; i < 6; ++i)
        org.admit(page(1, i), i);
    org.beginRelaunch(1, 10);
    org.touchResident(*pages[2], 11);
    org.touchResident(*pages[3], 12);
    org.touchResident(*pages[2], 13); // duplicate, counted once
    org.endRelaunch(1);
    auto predicted = org.predictedHotSet(1);
    ASSERT_EQ(predicted.size(), 2u);
    EXPECT_EQ(predicted[0].pfn, 2u);
    EXPECT_EQ(predicted[1].pfn, 3u);
}

TEST_F(HotnessOrgTest, EvictionOrderColdWarmHot)
{
    profiles.seed(1, 2);
    for (Pfn i = 0; i < 6; ++i)
        org.admit(page(1, i), i);
    org.touchResident(*pages[3], 50); // cold -> warm
    // Lists now: hot {0,1}, warm {3}, cold {2,4,5}.
    EXPECT_EQ(org.popVictim(Hotness::Cold)->key.pfn, 2u);
    EXPECT_EQ(org.popVictim(Hotness::Cold)->key.pfn, 4u);
    EXPECT_EQ(org.popVictim(Hotness::Cold)->key.pfn, 5u);
    EXPECT_EQ(org.popVictim(Hotness::Cold), nullptr);
    EXPECT_EQ(org.popVictim(Hotness::Warm)->key.pfn, 3u);
    EXPECT_EQ(org.popVictim(Hotness::Hot)->key.pfn, 0u);
}

TEST_F(HotnessOrgTest, CrossAppLruOrder)
{
    profiles.seed(2, 4);
    for (Pfn i = 0; i < 6; ++i)
        org.admit(page(1, i), 10 + i);
    for (Pfn i = 0; i < 6; ++i)
        org.admit(page(2, i), 100 + i);
    // App 1 is older: its cold pages are victimized first.
    PageMeta *victim = org.popVictim(Hotness::Cold);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->key.uid, 1u);
    // Touching app 1 makes app 2 the oldest.
    org.touchResident(*pages[1], 1000);
    victim = org.popVictim(Hotness::Cold);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->key.uid, 2u);
}

TEST_F(HotnessOrgTest, PlaceAfterSwapInDependsOnWindow)
{
    for (Pfn i = 0; i < 5; ++i)
        org.admit(page(1, i), i);
    PageMeta &p = page(1, 100);
    org.placeAfterSwapIn(p, 200); // outside a relaunch -> warm
    EXPECT_EQ(arena.level(p), Hotness::Warm);

    PageMeta &q = page(1, 101);
    org.beginRelaunch(1, 300);
    org.placeAfterSwapIn(q, 301); // inside a relaunch -> hot
    EXPECT_EQ(arena.level(q), Hotness::Hot);
    org.endRelaunch(1);
}

TEST_F(HotnessOrgTest, ColdSiblingsStayCold)
{
    org.admit(page(1, 0), 0);
    PageMeta &sibling = page(1, 50);
    org.placeColdSibling(sibling, 10);
    EXPECT_EQ(arena.level(sibling), Hotness::Cold);
}

TEST_F(HotnessOrgTest, UnlinkIsIdempotent)
{
    org.admit(page(1, 0), 0);
    PageMeta &p = *pages[0];
    org.unlink(p);
    EXPECT_EQ(p.lruOwner, nullptr);
    org.unlink(p); // second unlink must be a no-op
}

TEST_F(HotnessOrgTest, PopVictimFromSpecificApp)
{
    profiles.seed(2, 1);
    for (Pfn i = 0; i < 4; ++i)
        org.admit(page(1, i), i);
    for (Pfn i = 0; i < 4; ++i)
        org.admit(page(2, i), 100 + i);
    PageMeta *victim = org.popVictim(2, Hotness::Cold);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->key.uid, 2u);
    EXPECT_EQ(org.popVictim(3, Hotness::Cold), nullptr);
}

TEST_F(HotnessOrgTest, ListOperationsAreCounted)
{
    std::uint64_t before = ops.value();
    for (Pfn i = 0; i < 8; ++i)
        org.admit(page(1, i), i);
    EXPECT_GE(ops.value() - before, 8u);
}
