/**
 * @file
 * Virtual simulation clock.
 *
 * The clock advances only when a component charges time to it, so
 * identical inputs always produce identical timelines. Latency
 * measurements (e.g., an application relaunch) are taken as intervals
 * on this clock.
 */

#ifndef ARIADNE_SIM_CLOCK_HH
#define ARIADNE_SIM_CLOCK_HH

#include "sim/types.hh"

namespace ariadne
{

/** Monotonic virtual clock in nanoseconds. */
class Clock
{
  public:
    Clock() = default;

    /** Current simulated time. */
    Tick now() const noexcept { return currentTick; }

    /** Advance the clock by @p delta nanoseconds. */
    void
    advance(Tick delta) noexcept
    {
        currentTick += delta;
    }

    /** Move the clock forward to @p t; no-op if already past it. */
    void
    advanceTo(Tick t) noexcept
    {
        if (t > currentTick)
            currentTick = t;
    }

    /** Reset to time zero (used between independent experiments). */
    void reset() noexcept { currentTick = 0; }

  private:
    Tick currentTick = 0;
};

/**
 * RAII interval measurement on a Clock. Captures the start tick at
 * construction; elapsed() reports time charged since then.
 */
class Stopwatch
{
  public:
    explicit Stopwatch(const Clock &c) noexcept
        : clock(c), start(c.now())
    {}

    /** Ticks elapsed since construction (or the last restart()). */
    Tick elapsed() const noexcept { return clock.now() - start; }

    /** Re-arm the stopwatch at the current time. */
    void restart() noexcept { start = clock.now(); }

  private:
    const Clock &clock;
    Tick start;
};

} // namespace ariadne

#endif // ARIADNE_SIM_CLOCK_HH
