/** @file Unit tests for the deterministic page-content synthesizer. */

#include <gtest/gtest.h>

#include <cstring>

#include "compress/registry.hh"
#include "compress/chunked.hh"
#include "workload/apps.hh"
#include "workload/page_synth.hh"

using namespace ariadne;

namespace
{

std::vector<std::uint8_t>
page(const PageSynthesizer &synth, AppId uid, Pfn pfn,
     std::uint32_t version = 0)
{
    std::vector<std::uint8_t> buf(pageSize);
    synth.materialize(PageKey{uid, pfn}, version,
                      {buf.data(), buf.size()});
    return buf;
}

} // namespace

TEST(PageSynth, Deterministic)
{
    PageSynthesizer synth(standardApps());
    EXPECT_EQ(page(synth, 0, 1), page(synth, 0, 1));
    PageSynthesizer other(standardApps());
    EXPECT_EQ(page(synth, 3, 77), page(other, 3, 77));
}

TEST(PageSynth, DistinctPagesDiffer)
{
    PageSynthesizer synth(standardApps());
    EXPECT_NE(page(synth, 0, 1), page(synth, 0, 2));
    EXPECT_NE(page(synth, 0, 1), page(synth, 1, 1));
}

TEST(PageSynth, VersionChangesContent)
{
    PageSynthesizer synth(standardApps());
    EXPECT_NE(page(synth, 0, 1, 0), page(synth, 0, 1, 1));
}

TEST(PageSynth, UnknownAppUsesDefaultMix)
{
    PageSynthesizer synth(standardApps());
    auto buf = page(synth, 999, 0);
    EXPECT_EQ(buf.size(), pageSize);
}

TEST(PageSynth, CompressibilityInPlausibleRange)
{
    // A single page at 4 KB chunks should land in the rough zram
    // regime (ratio ~1.5-4 averaged over pages).
    PageSynthesizer synth(standardApps());
    auto codec = makeCodec(CodecKind::Lzo);
    std::size_t in = 0, out = 0;
    for (Pfn pfn = 0; pfn < 64; ++pfn) {
        auto buf = page(synth, 0, pfn);
        std::vector<std::uint8_t> comp(
            codec->compressBound(buf.size()));
        out += codec->compress({buf.data(), buf.size()},
                               {comp.data(), comp.size()});
        in += buf.size();
    }
    double ratio = static_cast<double>(in) / static_cast<double>(out);
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 5.0);
}

TEST(PageSynth, LargerWindowsCompressBetter)
{
    // Insight 2: cross-page redundancy appears at larger chunks.
    PageSynthesizer synth(standardApps());
    auto codec = makeCodec(CodecKind::Lz4);
    constexpr std::size_t pages = 64;
    std::vector<std::uint8_t> corpus(pages * pageSize);
    for (Pfn pfn = 0; pfn < pages; ++pfn) {
        synth.materialize(PageKey{1, pfn}, 0,
                          {corpus.data() + pfn * pageSize, pageSize});
    }
    auto small = ChunkedFrame::compress(
        *codec, {corpus.data(), corpus.size()}, 256);
    auto large = ChunkedFrame::compress(
        *codec, {corpus.data(), corpus.size()}, 65536);
    EXPECT_LT(large.size(), small.size());
    double gain = static_cast<double>(small.size()) /
                  static_cast<double>(large.size());
    EXPECT_GT(gain, 1.3); // ratio roughly doubles in Fig. 6
}

TEST(PageSynth, GameDataLessCompressibleThanBrowserData)
{
    // BangDream (media/float heavy) compresses worse than Twitter
    // (text heavy), matching the per-app ratio ordering of Fig. 13.
    PageSynthesizer synth(standardApps());
    auto codec = makeCodec(CodecKind::Lzo);
    auto total = [&](AppId uid) {
        std::size_t out = 0;
        for (Pfn pfn = 0; pfn < 64; ++pfn) {
            auto buf = page(synth, uid, pfn);
            std::vector<std::uint8_t> comp(
                codec->compressBound(buf.size()));
            out += codec->compress({buf.data(), buf.size()},
                                   {comp.data(), comp.size()});
        }
        return out;
    };
    AppId twitter = standardApp("Twitter").uid;
    AppId bang = standardApp("BangDream").uid;
    EXPECT_LT(total(twitter), total(bang));
}

TEST(PageSynth, PartialBufferFill)
{
    PageSynthesizer synth(standardApps());
    std::vector<std::uint8_t> buf(1000); // not page-aligned
    synth.materialize(PageKey{0, 5}, 0, {buf.data(), buf.size()});
    // Must fill the whole span deterministically.
    std::vector<std::uint8_t> again(1000);
    synth.materialize(PageKey{0, 5}, 0, {again.data(), again.size()});
    EXPECT_EQ(buf, again);
}
