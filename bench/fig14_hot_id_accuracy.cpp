/**
 * @file
 * Fig. 14: coverage and accuracy of Ariadne's hot-data
 * identification.
 *
 * Coverage — fraction of the relaunch's data correctly predicted
 * (paper: ~70% average). Accuracy — fraction of the predicted hot
 * list used during the next relaunch or the following execution
 * (paper: ~92% average).
 *
 * The usage trace is declarative (prepare_target + one extra
 * relaunch cycle); the scoring relaunch runs in a `custom` hook
 * because it needs touch captures around individual driver calls.
 */

#include "analysis/similarity.hh"
#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig14", argc, argv);
    printBanner(std::cout, "Fig. 14: coverage and accuracy of hot "
                           "data identification (Ariadne)");

    ReportTable table({"App", "Coverage", "Accuracy"});
    double cov_sum = 0.0, acc_sum = 0.0;
    std::size_t n = 0;

    for (const auto &profile : standardApps()) {
        AppId uid = profile.uid;
        double coverage = 0.0, accuracy = 0.0;

        driver::ScenarioSpec spec =
            makeSpec("ariadne", "EHL-1K-2K-16K");
        spec.name = profile.name + "/EHL-1K-2K-16K";
        spec.program.push_back(
            driver::Event::prepareTarget(profile.name, 0));
        // One extra relaunch cycle so the prediction comes from a
        // real relaunch, not launch seeding.
        spec.program.push_back(driver::Event::relaunch(profile.name));
        spec.program.push_back(driver::Event::execute(
            profile.name, Tick{10} * 1000000000ULL));
        spec.program.push_back(
            driver::Event::background(profile.name));
        spec.program.push_back(driver::Event::custom(0));

        driver::SessionHook score =
            [&](MobileSystem &sys, SessionDriver &,
                driver::SessionResult &) {
                // Score the prediction on the next relaunch +
                // execution.
                std::vector<PageKey> predicted_keys =
                    sys.hotness()->predictedHotSet(uid);
                std::vector<Pfn> predicted;
                predicted.reserve(predicted_keys.size());
                for (const auto &key : predicted_keys)
                    predicted.push_back(key.pfn);

                sys.startTouchCapture(uid);
                sys.appRelaunch(uid);
                std::vector<Pfn> relaunch_used =
                    sys.stopTouchCapture(uid);

                sys.startTouchCapture(uid);
                sys.appExecute(uid, Tick{20} * 1000000000ULL);
                std::vector<Pfn> exec_used =
                    sys.stopTouchCapture(uid);

                std::vector<Pfn> used = relaunch_used;
                used.insert(used.end(), exec_used.begin(),
                            exec_used.end());

                coverage =
                    predictionCoverage(predicted, relaunch_used);
                accuracy = predictionAccuracy(predicted, used);
            };
        report.add(runVariant(std::move(spec), {score}));

        table.addRow({profile.name, ReportTable::num(coverage, 2),
                      ReportTable::num(accuracy, 2)});
        cov_sum += coverage;
        acc_sum += accuracy;
        ++n;
    }
    table.print(std::cout);
    std::cout << "\nAverage coverage "
              << ReportTable::num(cov_sum / static_cast<double>(n), 2)
              << " (paper: ~0.70), average accuracy "
              << ReportTable::num(acc_sum / static_cast<double>(n), 2)
              << " (paper: ~0.92)\n";
    report.addTable("coverage_accuracy", table);
    return report.finish();
}
