#include "core/ariadne.hh"

#include "sim/log.hh"
#include "telemetry/journey.hh"

namespace ariadne
{

AriadneScheme::AriadneScheme(SwapContext context, AriadneConfig config)
    : SwapScheme(context), cfg(config), codec(makeCodec(cfg.codec)),
      pool(cfg.zpoolBytes), flashDev(cfg.flashBytes),
      profiles(cfg.defaultHotInitPages),
      hotOrg(&lruOpCounter, profiles, context.arena), units(cfg),
      stagingBuf(cfg.preDecompEnabled ? cfg.preDecompBufferPages : 0,
                 context.arena)
{
}

SchemeInfo
ariadneSchemeInfo()
{
    SchemeInfo info;
    info.key = "ariadne";
    info.displayName = "Ariadne";
    info.description = "hotness-aware, size-adaptive compressed swap "
                       "(the paper's scheme: HotnessOrg + "
                       "AdaptiveComp + PreDecomp)";
    info.knobs = {
        {"config", "string", "EHL-1K-2K-16K",
         "Table-5 configuration string: scenario (EHL|AL) plus "
         "small/medium/large chunk sizes",
         [](const std::string &value) {
             std::string error;
             if (!AriadneConfig::tryParse(value, &error))
                 throw SchemeError("invalid value for scheme knob "
                                   "'config': " + error);
         }},
        {"zpool_mb", "mb", "3072", "zpool capacity (paper scale)"},
        {"flash_mb", "mb", "8192", "flash swap space for compressed "
                                   "cold writeback (paper scale)"},
        {"reclaim_batch", "u64", "32",
         "pages reclaimed per batch"},
        {"codec", "string", "lzo",
         "compression codec (lzo|lz4|bdi|null)",
         [](const std::string &value) { parseCodecKnob(value); }},
        {"predecomp", "bool", "true",
         "predictive pre-decompression (the D3 ablation axis)"},
        {"predecomp_buffer_pages", "u64", "8",
         "staging-buffer capacity in pages"},
        {"predecomp_depth", "u64", "1",
         "pages pre-decompressed per trigger"},
        {"hot_init_pages", "u64", "4096",
         "fallback hot-list seed when no profile exists (the D1 "
         "ablation axis)"},
        {"seed_profiles", "bool", "true",
         "seed per-app hot-set profiles from offline data "
         "(consumed by the system layer; the D1 ablation axis)"},
    };
    info.build = [](SwapContext ctx, const SchemeParams &params,
                    double scale) {
        AriadneConfig ac;
        if (const std::string *text = params.raw("config")) {
            std::string error;
            auto parsed = AriadneConfig::tryParse(*text, &error);
            if (!parsed)
                throw SchemeError("invalid value for scheme knob "
                                  "'config': " + error);
            ac = *parsed;
        }
        ac.zpoolBytes = params.getMiB("zpool_mb", ac.zpoolBytes);
        ac.flashBytes = params.getMiB("flash_mb", ac.flashBytes);
        ac.reclaimBatch =
            params.getU64("reclaim_batch", ac.reclaimBatch);
        if (const std::string *codec = params.raw("codec"))
            ac.codec = parseCodecKnob(*codec);
        ac.preDecompEnabled =
            params.getBool("predecomp", ac.preDecompEnabled);
        ac.preDecompBufferPages = params.getU64(
            "predecomp_buffer_pages", ac.preDecompBufferPages);
        ac.preDecompDepth =
            params.getU64("predecomp_depth", ac.preDecompDepth);
        ac.defaultHotInitPages = params.getU64(
            "hot_init_pages", ac.defaultHotInitPages);
        // `seed_profiles` is schema-validated here but consumed by
        // MobileSystem, which owns the app profiles the seeding
        // derives its hot-set sizes from.
        ac.zpoolBytes = scaledBytes(ac.zpoolBytes, scale);
        ac.flashBytes = scaledBytes(ac.flashBytes, scale);
        return std::make_unique<AriadneScheme>(ctx, ac);
    };
    return info;
}

void
AriadneScheme::seedProfile(AppId uid, std::size_t hot_pages)
{
    profiles.seed(uid, hot_pages);
}

std::vector<PageKey>
AriadneScheme::predictedHotSet(AppId uid) const
{
    return hotOrg.predictedHotSet(uid);
}

void
AriadneScheme::onAdmit(PageMeta &page)
{
    hotOrg.admit(page, ctx.clock.now());
}

void
AriadneScheme::onAccess(PageMeta &page)
{
    hotOrg.touchResident(page, ctx.clock.now());
    firePrediction(page);
}

void
AriadneScheme::onRelaunchStart(AppId uid)
{
    hotOrg.beginRelaunch(uid, ctx.clock.now());
}

void
AriadneScheme::onRelaunchEnd(AppId uid)
{
    hotOrg.endRelaunch(uid);
}

void
AriadneScheme::onBackground(AppId uid)
{
    if (cfg.excludeHotList)
        return;
    // AL scenario (§5): all lists are compressed. Like the vendors'
    // proactive compression (§2.3), the backgrounded app's hot list
    // is compressed too — at SmallSize, so the relaunch decompresses
    // it fast and PreDecomp chains hide most of the latency.
    Tick before = ctx.cpu.grandTotal();
    // Drain the hot list first, then size the whole sweep in one
    // batched materialize+compress pass before any unit is formed
    // (sizes are pure functions of page content, so pre-computing
    // them is behaviour-identical to sizing unit by unit).
    std::vector<PageMeta *> victims;
    victims.reserve(hotOrg.listSize(uid, Hotness::Hot));
    while (PageMeta *victim = hotOrg.popVictim(uid, Hotness::Hot))
        victims.push_back(victim);
    if (!victims.empty()) {
        std::size_t chunk = units.chunkFor(Hotness::Hot);
        std::vector<PageRef> refs;
        refs.reserve(victims.size());
        for (PageMeta *p : victims)
            refs.push_back(PageRef{p->key, p->version});
        std::vector<std::size_t> sizes;
        ctx.compressor.compressedSizeEach(refs, *codec, chunk, sizes);
        for (std::size_t i = 0; i < victims.size(); ++i) {
            compressUnitPresized({victims[i]}, Hotness::Hot,
                                 /*synchronous=*/false, sizes[i]);
        }
    }
    bgReclaimNs += ctx.cpu.grandTotal() - before;
}

bool
AriadneScheme::writebackUnit(UnitId id, bool synchronous)
{
    CompUnit &u = units.unit(id);
    panicIf(u.object == invalidObject, "writeback of non-zpool unit");

    FlashSlot slot = flashDev.write(u.csize);
    if (slot == invalidFlashSlot) {
        // Swap space exhausted: drop the unit (data loss).
        for (PageMeta *p : u.pages) {
            stagingBuf.invalidate(*p);
            telemetry::journeyMark(p->key.uid, p->key.pfn,
                                   telemetry::JourneyStep::Lost,
                                   ctx.clock.now());
            ctx.arena.setLocation(*p, PageLocation::Lost);
            p->objectId = invalidObject;
            ++lost;
        }
        pool.erase(u.object);
        units.destroy(id);
        return true;
    }

    Tick submit = ctx.timing.params().flashSubmitCpuNs;
    ctx.cpu.charge(CpuRole::IoSubmit, submit);
    if (synchronous)
        ctx.clock.advance(submit);
    ctx.activity.flashWriteBytes += u.csize;

    for (PageMeta *p : u.pages) {
        stagingBuf.invalidate(*p);
        telemetry::journeyMark(p->key.uid, p->key.pfn,
                               telemetry::JourneyStep::Writeback,
                               ctx.clock.now(), u.csize);
        ctx.arena.setLocation(*p, PageLocation::Flash);
        p->flashSlot = slot;
    }
    pool.erase(u.object);
    u.object = invalidObject;
    u.flashSlot = slot;
    return true;
}

bool
AriadneScheme::ensureZpoolSpace(std::size_t csize, bool synchronous)
{
    auto pop_valid = [this](std::deque<UnitId> &fifo) -> UnitId {
        while (!fifo.empty()) {
            UnitId id = fifo.front();
            fifo.pop_front();
            if (units.live(id) &&
                units.unit(id).object != invalidObject) {
                return id;
            }
        }
        return invalidUnit;
    };

    while (!pool.canFit(csize)) {
        // Cold data is swapped out first (§4.2 eviction policy).
        UnitId id = pop_valid(coldUnitFifo);
        if (id == invalidUnit)
            id = pop_valid(pageUnitFifo);
        if (id == invalidUnit)
            return false;
        writebackUnit(id, synchronous);
    }
    return true;
}

void
AriadneScheme::compressUnit(std::vector<PageMeta *> batch, Hotness level,
                            bool synchronous)
{
    panicIf(batch.empty(), "empty compression batch");
    std::size_t chunk = units.chunkFor(level);

    std::size_t csize;
    if (batch.size() == 1) {
        PageRef ref{batch[0]->key, batch[0]->version};
        csize = ctx.compressor.compressedSizeOne(ref, *codec, chunk);
    } else {
        std::vector<PageRef> refs;
        refs.reserve(batch.size());
        for (PageMeta *p : batch)
            refs.push_back(PageRef{p->key, p->version});
        csize = ctx.compressor.compressedSizeMany(refs, *codec, chunk);
    }
    compressUnitPresized(std::move(batch), level, synchronous, csize);
}

void
AriadneScheme::compressUnitPresized(std::vector<PageMeta *> batch,
                                    Hotness level, bool synchronous,
                                    std::size_t csize)
{
    panicIf(batch.empty(), "empty compression batch");
    AppId uid = batch.front()->key.uid;
    std::size_t chunk = units.chunkFor(level);
    std::size_t in_bytes = batch.size() * pageSize;

    if (!ensureZpoolSpace(csize, synchronous)) {
        for (PageMeta *p : batch) {
            telemetry::journeyMark(p->key.uid, p->key.pfn,
                                   telemetry::JourneyStep::Lost,
                                   ctx.clock.now());
            ctx.arena.setLocation(*p, PageLocation::Lost);
            ++lost;
            ctx.dram.release(1);
        }
        return;
    }

    for (PageMeta *p : batch)
        pendingPredictions.erase(p);
    UnitId id = units.create(std::move(batch), chunk, csize, level,
                             invalidObject);
    CompUnit &u = units.unit(id);
    ZObjectId obj = pool.insert(csize, id);
    panicIf(obj == invalidObject,
            "zpool insert failed after ensureZpoolSpace");
    u.object = obj;

    for (PageMeta *p : u.pages) {
        telemetry::journeyMark(p->key.uid, p->key.pfn,
                               telemetry::JourneyStep::Zram,
                               ctx.clock.now(), csize);
        ctx.arena.setLocation(*p, PageLocation::Zpool);
    }

    (level == Hotness::Cold ? coldUnitFifo : pageUnitFifo).push_back(id);

    chargeCompression(uid, codec->cost(), chunk, in_bytes, csize,
                      synchronous);
    ctx.dram.release(u.pages.size());
}

std::size_t
AriadneScheme::reclaim(std::size_t pages, bool direct)
{
    if (direct)
        ++directRuns;
    std::size_t freed = 0;

    while (freed < pages) {
        // 1. Cold victims, batched into large multi-page units.
        if (PageMeta *victim = hotOrg.popVictim(Hotness::Cold)) {
            std::vector<PageMeta *> batch{victim};
            while (batch.size() < cfg.coldUnitPages()) {
                PageMeta *next = hotOrg.peekVictim(Hotness::Cold);
                if (!next || next->key.uid != victim->key.uid)
                    break;
                batch.push_back(hotOrg.popVictim(Hotness::Cold));
            }
            freed += batch.size();
            compressUnit(std::move(batch), Hotness::Cold, direct);
            continue;
        }
        // 2. Warm victims, one page per medium-chunk unit.
        if (PageMeta *victim = hotOrg.popVictim(Hotness::Warm)) {
            compressUnit({victim}, Hotness::Warm, direct);
            ++freed;
            continue;
        }
        // 3. Hot victims: normal in AL mode; emergency-only in EHL.
        if (!cfg.excludeHotList || direct) {
            if (PageMeta *victim = hotOrg.popVictim(Hotness::Hot)) {
                compressUnit({victim}, Hotness::Hot, direct);
                ++freed;
                continue;
            }
        }
        break;
    }
    chargeLruOps(direct);
    return freed;
}

void
AriadneScheme::allocateResident()
{
    if (ctx.dram.allocate(1))
        return;
    reclaim(cfg.reclaimBatch, true);
    panicIf(!ctx.dram.allocate(1),
            "Ariadne direct reclaim failed to free memory");
}

void
AriadneScheme::residentizeUnit(CompUnit &unit, PageMeta *hit)
{
    Tick now = ctx.clock.now();
    for (PageMeta *p : unit.pages) {
        allocateResident();
        ctx.arena.setLocation(*p, PageLocation::Resident);
        p->objectId = invalidObject;
        p->flashSlot = invalidFlashSlot;
        if (p == hit) {
            hotOrg.placeAfterSwapIn(*p, now);
        } else {
            telemetry::journeyMark(p->key.uid, p->key.pfn,
                                   telemetry::JourneyStep::Resident,
                                   now);
            hotOrg.placeColdSibling(*p, now);
        }
        ctx.activity.dramBytes += pageSize;
    }
}

void
AriadneScheme::armPrediction(PageMeta &page, ZObjectId next)
{
    if (next == invalidObject)
        return;
    pendingPredictions[&page] = next;
}

void
AriadneScheme::firePrediction(const PageMeta &page)
{
    // Runs on every resident touch; armed predictions are rare, so
    // the empty check keeps the common path to one branch instead of
    // a hash lookup.
    if (pendingPredictions.empty())
        return;
    auto it = pendingPredictions.find(&page);
    if (it == pendingPredictions.end())
        return;
    ZObjectId next = it->second;
    pendingPredictions.erase(it);
    tryStage(next);
}

void
AriadneScheme::tryStage(ZObjectId obj)
{
    if (obj == invalidObject || !pool.live(obj))
        return;
    UnitId id = pool.cookie(obj);
    if (!units.live(id))
        return;
    CompUnit &u = units.unit(id);
    ZObjectId next = pool.nextInSectorOrder(obj);

    if (u.pages.size() == 1) {
        // Single page: decompress into the staging buffer ("we
        // pre-decompress only one compressed page at a time", §4.4).
        PageMeta *p = u.pages.front();
        if (ctx.arena.location(*p) != PageLocation::Zpool)
            return;
        if (stagingBuf.stage(*p)) {
            telemetry::journeyMark(p->key.uid, p->key.pfn,
                                   telemetry::JourneyStep::Staged,
                                   ctx.clock.now());
            // Speculative decompression runs off the critical path:
            // CPU is charged, the faulting task's clock is not.
            chargeDecompression(p->key.uid, codec->cost(),
                                u.chunkBytes, pageSize, u.csize,
                                /*synchronous=*/false);
            armPrediction(*p, next);
        }
        return;
    }

    // Multi-page (cold) unit: pre-swap it — decompress and write all
    // pages back to main memory ahead of use. Only when memory is
    // comfortably free; speculation must not force reclaim.
    if (ctx.dram.freePages() <
        u.pages.size() + ctx.dram.lowWatermarkPages()) {
        return;
    }
    for (PageMeta *p : u.pages) {
        if (ctx.arena.location(*p) != PageLocation::Zpool)
            return;
    }
    AppId uid = u.pages.front()->key.uid;
    pool.erase(u.object);
    u.object = invalidObject;
    chargeDecompression(uid, codec->cost(), u.chunkBytes,
                        u.uncompressedBytes(), u.csize,
                        /*synchronous=*/false);
    residentizeUnit(u, nullptr);
    // Chain the speculation through the first touch of any page.
    for (PageMeta *p : u.pages)
        armPrediction(*p, next);
    units.destroy(id);
    ++preSwapCount;
}

SwapInResult
AriadneScheme::swapIn(PageMeta &page)
{
    SwapInResult res;
    Stopwatch sw(ctx.clock);
    AppId uid = page.key.uid;

    if (ctx.arena.location(page) == PageLocation::Staged) {
        // PreDecomp hit: only a page copy plus bookkeeping remains.
        stagingBuf.consume(page);
        UnitId id = page.objectId;
        CompUnit &u = units.unit(id);
        ZObjectId next = pool.nextInSectorOrder(u.object);
        pool.erase(u.object);
        units.destroy(id);

        // The decompression already ran off the critical path and the
        // page is mapped into the swap cache; the access itself is
        // billed by the system's touch cost. Only the copy remains.
        Tick t = ctx.timing.params().dramPageCopyNs;
        ctx.cpu.charge(CpuRole::FaultPath, t);
        ctx.clock.advance(t);

        allocateResident();
        ctx.arena.setLocation(page, PageLocation::Resident);
        page.objectId = invalidObject;
        hotOrg.placeAfterSwapIn(page, ctx.clock.now());
        ctx.activity.dramBytes += pageSize;
        if (cfg.preDecompEnabled)
            tryStage(next);
        res.stagedHit = true;
        res.latencyNs = sw.elapsed();
        return res;
    }

    Tick fault = ctx.timing.params().majorFaultBaseNs;
    ctx.cpu.charge(CpuRole::FaultPath, fault);
    ctx.clock.advance(fault);

    if (ctx.arena.location(page) == PageLocation::Zpool) {
        UnitId id = page.objectId;
        CompUnit &u = units.unit(id);
        faultsPerLevel[static_cast<std::size_t>(
            u.levelAtCompression)] += 1;
        sectorLog.push_back(pool.sectorOf(u.object));

        // Find the speculation candidate before the object vanishes.
        ZObjectId next = pool.nextInSectorOrder(u.object);

        pool.erase(u.object);
        u.object = invalidObject;
        chargeDecompression(uid, codec->cost(), u.chunkBytes,
                            u.uncompressedBytes(), u.csize, true);
        residentizeUnit(u, &page);
        units.destroy(id);

        if (cfg.preDecompEnabled)
            tryStage(next);
    } else if (ctx.arena.location(page) == PageLocation::Flash) {
        UnitId id = page.objectId;
        CompUnit &u = units.unit(id);
        flashDev.read(u.flashSlot);
        flashDev.free(u.flashSlot);

        std::size_t csize_pages = (u.csize + pageSize - 1) / pageSize;
        Tick submit = ctx.timing.params().flashSubmitCpuNs;
        ctx.cpu.charge(CpuRole::IoSubmit, submit);
        ctx.clock.advance(submit + ctx.timing.flashReadNs(csize_pages));
        ctx.activity.flashReadBytes += u.csize;

        chargeDecompression(uid, codec->cost(), u.chunkBytes,
                            u.uncompressedBytes(), u.csize, true);
        residentizeUnit(u, &page);
        units.destroy(id);
        res.fromFlash = true;
    } else {
        panic("AriadneScheme::swapIn on resident/lost page");
    }

    chargeLruOps(true);
    res.latencyNs = sw.elapsed();
    return res;
}

void
AriadneScheme::onFree(PageMeta &page)
{
    pendingPredictions.erase(&page);
    switch (ctx.arena.location(page)) {
      case PageLocation::Resident:
        hotOrg.unlink(page);
        ctx.dram.release(1);
        break;
      case PageLocation::Staged:
        stagingBuf.invalidate(page);
        [[fallthrough]];
      case PageLocation::Zpool:
      case PageLocation::Flash: {
        UnitId id = page.objectId;
        if (units.live(id)) {
            CompUnit &u = units.unit(id);
            // Freeing one page of a multi-page unit keeps the unit
            // but forgets the page; single-page units are destroyed.
            if (u.pages.size() == 1) {
                if (u.object != invalidObject)
                    pool.erase(u.object);
                if (u.flashSlot != invalidFlashSlot)
                    flashDev.free(u.flashSlot);
                units.destroy(id);
            } else {
                std::erase(u.pages, &page);
            }
        }
        break;
      }
      default:
        break;
    }
    telemetry::journeyMark(page.key.uid, page.key.pfn,
                           telemetry::JourneyStep::Free,
                           ctx.clock.now());
    ctx.arena.setLocation(page, PageLocation::Lost);
    page.objectId = invalidObject;
    page.flashSlot = invalidFlashSlot;
}

std::size_t
AriadneScheme::compressedStoredBytes() const
{
    return pool.storedBytes() + flashDev.liveBytes();
}

} // namespace ariadne
