#include "report/partial_report.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "driver/json_writer.hh"
#include "report/json_reader.hh"
#include "sim/types.hh"

namespace ariadne::report
{

using driver::JsonWriter;

namespace
{

[[noreturn]] void
badReport(const std::string &msg)
{
    throw ReportError("invalid partial report: " + msg);
}

void
requireEqual(const std::string &field, const std::string &a,
             const std::string &b)
{
    if (a != b)
        throw ReportError("cannot merge partial reports: '" + field +
                          "' differs ('" + a + "' vs '" + b + "')");
}

template <typename T>
void
requireEqualNum(const std::string &field, T a, T b)
{
    if (a != b)
        throw ReportError("cannot merge partial reports: '" + field +
                          "' differs (" + std::to_string(a) + " vs " +
                          std::to_string(b) + ")");
}

void
writeMetric(JsonWriter &w, const std::string &name,
            const MetricState &state)
{
    w.key(name);
    w.beginObject();
    w.field("count", state.count());
    w.field("sum", state.sum());
    w.field("min", state.minValue());
    w.field("max", state.maxValue());
    if (state.mode() == PercentileMode::Exact) {
        w.key("samples");
        w.beginArray();
        for (double v : state.sampleValues())
            w.value(v);
        w.endArray();
    } else {
        w.field("rankErrorBound", state.sketch().rankErrorBound());
        w.key("levels");
        w.beginArray();
        for (const auto &level : state.sketch().levels()) {
            w.beginArray();
            for (double v : level.items)
                w.value(v);
            w.endArray();
        }
        w.endArray();
    }
    w.endObject();
}

MetricState
parseMetric(const JsonValue &v, PercentileMode mode,
            std::size_t sketch_k)
{
    std::uint64_t count = v.at("count").asU64();
    if (mode == PercentileMode::Exact) {
        // Replaying the fold-ordered samples reproduces count, sum
        // and min/max exactly; the serialized count doubles as a
        // cheap truncation check.
        MetricState state(PercentileMode::Exact);
        const auto &samples = v.at("samples").asArray();
        if (samples.size() != count)
            badReport("metric sample count mismatch (count says " +
                      std::to_string(count) + ", samples hold " +
                      std::to_string(samples.size()) + ")");
        for (const JsonValue &s : samples)
            state.sample(s.asDouble());
        return state;
    }
    std::vector<PercentileSketch::Level> levels;
    for (const JsonValue &level : v.at("levels").asArray()) {
        PercentileSketch::Level l;
        for (const JsonValue &item : level.asArray())
            l.items.push_back(item.asDouble());
        levels.push_back(std::move(l));
    }
    // Compaction preserves total weight, so a healthy sketch's items
    // weigh exactly `count`; anything else is corruption and would
    // poison every percentile query after the merge.
    if (levels.size() > 64)
        badReport("sketch has " + std::to_string(levels.size()) +
                  " levels (a 64-bit weight supports at most 64)");
    std::uint64_t weight = 0;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        std::uint64_t n = levels[i].items.size();
        if (n != 0 && (i >= 64 || n > (~std::uint64_t{0} >> i) ||
                       weight > ~std::uint64_t{0} - (n << i)))
            badReport("sketch level weights overflow");
        weight += n << i;
    }
    if (weight != count)
        badReport("sketch weight mismatch (count says " +
                  std::to_string(count) + ", levels weigh " +
                  std::to_string(weight) + ")");
    return MetricState::restoreSketch(
        count, v.at("sum").asDouble(), v.at("min").asDouble(),
        v.at("max").asDouble(), sketch_k,
        v.at("rankErrorBound").asU64(), std::move(levels));
}

void
writeFleetPartial(JsonWriter &w, const FleetPartial &p)
{
    w.beginObject();
    w.field("scenario", p.scenario);
    w.field("scheme", p.scheme);
    if (!p.ariadneConfig.empty())
        w.field("ariadneConfig", p.ariadneConfig);
    w.field("scale", p.scale);
    w.field("seed", p.seed);
    w.field("fleet", static_cast<std::uint64_t>(p.fleet));
    w.field("percentiles", percentileModeName(p.mode));
    if (p.mode == PercentileMode::Sketch)
        w.field("sketchK", static_cast<std::uint64_t>(p.sketchK));
    w.field("sessionsBegin",
            static_cast<std::uint64_t>(p.sessionsBegin));
    w.field("sessionsEnd", static_cast<std::uint64_t>(p.sessionsEnd));

    w.key("totals");
    w.beginObject();
    w.field("relaunches", p.totalRelaunches);
    w.field("stagedHits", p.totalStagedHits);
    w.field("majorFaults", p.totalMajorFaults);
    w.field("flashFaults", p.totalFlashFaults);
    w.field("lostPages", p.totalLostPages);
    w.field("directReclaims", p.totalDirectReclaims);
    w.endObject();

    w.key("metrics");
    w.beginObject();
    writeMetric(w, "relaunchMs", p.relaunchMs);
    writeMetric(w, "compDecompCpuMs", p.compDecompCpuMs);
    writeMetric(w, "kswapdCpuMs", p.kswapdCpuMs);
    writeMetric(w, "energyJoules", p.energyJ);
    writeMetric(w, "compressionRatio", p.compRatio);
    w.endObject();
    w.endObject();
}

FleetPartial
parseFleetPartial(const JsonValue &v)
{
    auto mode_name = v.at("percentiles").asString();
    auto mode = parsePercentileModeName(mode_name);
    if (!mode)
        badReport("unknown percentiles mode '" + mode_name + "'");
    std::size_t sketch_k = PercentileSketch::defaultK;
    if (*mode == PercentileMode::Sketch)
        sketch_k = v.at("sketchK").asU64();

    FleetPartial p(*mode, sketch_k);
    p.scenario = v.at("scenario").asString();
    p.scheme = v.at("scheme").asString();
    if (const JsonValue *cfg = v.find("ariadneConfig"))
        p.ariadneConfig = cfg->asString();
    p.scale = v.at("scale").asDouble();
    p.seed = v.at("seed").asU64();
    p.fleet = v.at("fleet").asU64();
    p.sessionsBegin = v.at("sessionsBegin").asU64();
    p.sessionsEnd = v.at("sessionsEnd").asU64();
    if (p.sessionsBegin > p.sessionsEnd || p.sessionsEnd > p.fleet)
        badReport("session range [" +
                  std::to_string(p.sessionsBegin) + ", " +
                  std::to_string(p.sessionsEnd) +
                  ") does not fit fleet " + std::to_string(p.fleet));

    const JsonValue &totals = v.at("totals");
    p.totalRelaunches = totals.at("relaunches").asU64();
    p.totalStagedHits = totals.at("stagedHits").asU64();
    p.totalMajorFaults = totals.at("majorFaults").asU64();
    p.totalFlashFaults = totals.at("flashFaults").asU64();
    p.totalLostPages = totals.at("lostPages").asU64();
    p.totalDirectReclaims = totals.at("directReclaims").asU64();

    const JsonValue &metrics = v.at("metrics");
    p.relaunchMs = parseMetric(metrics.at("relaunchMs"), *mode, sketch_k);
    p.compDecompCpuMs =
        parseMetric(metrics.at("compDecompCpuMs"), *mode, sketch_k);
    p.kswapdCpuMs =
        parseMetric(metrics.at("kswapdCpuMs"), *mode, sketch_k);
    p.energyJ = parseMetric(metrics.at("energyJoules"), *mode, sketch_k);
    p.compRatio =
        parseMetric(metrics.at("compressionRatio"), *mode, sketch_k);
    return p;
}

} // namespace

void
FleetPartial::fold(const driver::SessionResult &s)
{
    for (const auto &sample : s.relaunches)
        relaunchMs.sample(sample.fullScaleMs);
    compDecompCpuMs.sample(s.compDecompCpuMs(scale));
    kswapdCpuMs.sample(ticksToMs(s.kswapdCpuNs) / scale);
    energyJ.sample(s.energyJ);
    if (s.comp.outBytes > 0)
        compRatio.sample(s.comp.ratio());
    totalRelaunches += s.relaunches.size();
    totalStagedHits += s.stagedHits;
    totalMajorFaults += s.majorFaults;
    totalFlashFaults += s.flashFaults;
    totalLostPages += s.lostPages;
    totalDirectReclaims += s.directReclaims;
}

void
FleetPartial::merge(const FleetPartial &o)
{
    requireEqual("scenario", scenario, o.scenario);
    requireEqual("scheme", scheme, o.scheme);
    requireEqual("ariadneConfig", ariadneConfig, o.ariadneConfig);
    requireEqualNum("scale", scale, o.scale);
    requireEqualNum("seed", seed, o.seed);
    requireEqualNum("fleet", fleet, o.fleet);
    requireEqual("percentiles", percentileModeName(mode),
                 percentileModeName(o.mode));
    if (mode == PercentileMode::Sketch)
        requireEqualNum("sketchK", sketchK, o.sketchK);
    if (o.sessionsBegin != sessionsEnd)
        throw ReportError(
            "cannot merge partial reports: session ranges are not "
            "adjacent (have [... , " +
            std::to_string(sessionsEnd) + "), next starts at " +
            std::to_string(o.sessionsBegin) + ")");
    sessionsEnd = o.sessionsEnd;

    totalRelaunches += o.totalRelaunches;
    totalStagedHits += o.totalStagedHits;
    totalMajorFaults += o.totalMajorFaults;
    totalFlashFaults += o.totalFlashFaults;
    totalLostPages += o.totalLostPages;
    totalDirectReclaims += o.totalDirectReclaims;

    relaunchMs.merge(o.relaunchMs);
    compDecompCpuMs.merge(o.compDecompCpuMs);
    kswapdCpuMs.merge(o.kswapdCpuMs);
    energyJ.merge(o.energyJ);
    compRatio.merge(o.compRatio);
}

std::size_t
FleetPartial::retainedValues() const noexcept
{
    return relaunchMs.retainedValues() +
           compDecompCpuMs.retainedValues() +
           kswapdCpuMs.retainedValues() + energyJ.retainedValues() +
           compRatio.retainedValues();
}

void
PartialReport::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("ariadnePartial", formatVersion);
    w.field("kind", kind == Kind::Fleet ? "fleet" : "sweep");
    w.field("shardIndex", static_cast<std::uint64_t>(shard.index));
    w.field("shardCount", static_cast<std::uint64_t>(shard.count));
    if (kind == Kind::Fleet) {
        w.key("report");
        writeFleetPartial(w, fleet);
    } else {
        w.field("sweep", sweepName);
        w.field("variantCount",
                static_cast<std::uint64_t>(variantCount));
        w.field("sweepSpecHash", sweepSpecHash);
        w.field("fleetOverride", fleetOverride);
        w.key("variants");
        w.beginArray();
        for (const SweepEntry &entry : variants) {
            w.beginObject();
            w.field("variantIndex",
                    static_cast<std::uint64_t>(entry.index));
            w.key("report");
            writeFleetPartial(w, entry.fleet);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    os << "\n";
}

PartialReport
PartialReport::parseText(const std::string &text)
{
    JsonValue doc = JsonValue::parseText(text);
    if (!doc.isObject() || !doc.find("ariadnePartial"))
        badReport("not an ariadne partial report (missing "
                  "\"ariadnePartial\")");
    std::uint64_t version = doc.at("ariadnePartial").asU64();
    if (version != formatVersion)
        badReport("unsupported format version " +
                  std::to_string(version) + " (this build reads " +
                  std::to_string(formatVersion) + ")");

    PartialReport out;
    ShardPlan plan;
    plan.index = doc.at("shardIndex").asU64();
    plan.count = doc.at("shardCount").asU64();
    if (plan.count == 0 || plan.index == 0 || plan.index > plan.count)
        badReport("shard " + std::to_string(plan.index) + "/" +
                  std::to_string(plan.count) + " is out of range");
    out.shard = plan;

    const std::string &kind_name = doc.at("kind").asString();
    if (kind_name == "fleet") {
        out.kind = Kind::Fleet;
        out.fleet = parseFleetPartial(doc.at("report"));
        return out;
    }
    if (kind_name != "sweep")
        badReport("unknown kind '" + kind_name + "'");
    out.kind = Kind::Sweep;
    out.sweepName = doc.at("sweep").asString();
    out.variantCount = doc.at("variantCount").asU64();
    out.sweepSpecHash = doc.at("sweepSpecHash").asU64();
    out.fleetOverride = doc.at("fleetOverride").asU64();
    for (const JsonValue &entry : doc.at("variants").asArray()) {
        SweepEntry e;
        e.index = entry.at("variantIndex").asU64();
        if (e.index >= out.variantCount)
            badReport("variantIndex " + std::to_string(e.index) +
                      " is out of range (variantCount " +
                      std::to_string(out.variantCount) + ")");
        e.fleet = parseFleetPartial(entry.at("report"));
        out.variants.push_back(std::move(e));
    }
    return out;
}

std::uint64_t
fnv1a64(const std::string &text) noexcept
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

PartialReport
PartialReport::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ReportError("cannot open partial report: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return parseText(buf.str());
    } catch (const ReportError &e) {
        throw ReportError(path + ": " + e.what());
    }
}

} // namespace ariadne::report
