/** @file Unit tests for the scenario- and sweep-config parsers. */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/scenario_spec.hh"
#include "driver/sweep_spec.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

const char *fullConfig = R"(
# A kitchen-sink scenario exercising every key and op.
name = kitchen-sink
scheme = ariadne
scheme.config = AL-512-2K-16K
scale = 0.125
seed = 1234
fleet = 16
apps = YouTube, Twitter, Firefox

event = warmup
event = launch YouTube
event = execute YouTube 30s
event = background YouTube
event = repeat 3
event =   switch_next 500ms 1s
event =   repeat 2
event =     relaunch Twitter
event =     idle 250ms
event =   end
event = end
event = target_scenario Firefox 2
)";

} // namespace

TEST(ScenarioSpec, ParsesEveryKeyAndOp)
{
    ScenarioSpec spec = ScenarioSpec::parseString(fullConfig);
    EXPECT_EQ(spec.name, "kitchen-sink");
    EXPECT_EQ(spec.scheme, "ariadne");
    EXPECT_EQ(spec.params.getString("config", ""), "AL-512-2K-16K");
    EXPECT_DOUBLE_EQ(spec.scale, 0.125);
    EXPECT_EQ(spec.seed, 1234u);
    EXPECT_EQ(spec.fleet, 16u);
    ASSERT_EQ(spec.apps.size(), 3u);
    EXPECT_EQ(spec.apps[1], "Twitter");

    ASSERT_EQ(spec.program.size(), 6u);
    EXPECT_EQ(spec.program[0].kind, Event::Kind::Warmup);
    EXPECT_EQ(spec.program[1].kind, Event::Kind::Launch);
    EXPECT_EQ(spec.program[1].app, "YouTube");
    EXPECT_EQ(spec.program[2].kind, Event::Kind::Execute);
    EXPECT_EQ(spec.program[2].duration, 30ull * 1000000000ull);
    EXPECT_EQ(spec.program[3].kind, Event::Kind::Background);

    const Event &outer = spec.program[4];
    EXPECT_EQ(outer.kind, Event::Kind::Repeat);
    EXPECT_EQ(outer.count, 3u);
    ASSERT_EQ(outer.body.size(), 2u);
    EXPECT_EQ(outer.body[0].kind, Event::Kind::SwitchNext);
    EXPECT_EQ(outer.body[0].duration, 500ull * 1000000ull);
    EXPECT_EQ(outer.body[0].gap, 1ull * 1000000000ull);
    const Event &inner = outer.body[1];
    EXPECT_EQ(inner.kind, Event::Kind::Repeat);
    EXPECT_EQ(inner.count, 2u);
    ASSERT_EQ(inner.body.size(), 2u);
    EXPECT_EQ(inner.body[0].kind, Event::Kind::Relaunch);
    EXPECT_EQ(inner.body[0].app, "Twitter");
    EXPECT_EQ(inner.body[1].kind, Event::Kind::Idle);

    EXPECT_EQ(spec.program[5].kind, Event::Kind::TargetScenario);
    EXPECT_EQ(spec.program[5].app, "Firefox");
    EXPECT_EQ(spec.program[5].variant, 2u);
}

TEST(ScenarioSpec, ParsesCompoundUsageOps)
{
    ScenarioSpec spec = ScenarioSpec::parseString(
        "event = prepare_target YouTube 1\n"
        "event = light_usage 60s 2s\n"
        "event = light_usage 30s\n"
        "event = heavy_usage 45s\n");
    ASSERT_EQ(spec.program.size(), 4u);
    EXPECT_EQ(spec.program[0].kind, Event::Kind::PrepareTarget);
    EXPECT_EQ(spec.program[0].app, "YouTube");
    EXPECT_EQ(spec.program[0].variant, 1u);
    EXPECT_EQ(spec.program[1].kind, Event::Kind::LightUsage);
    EXPECT_EQ(spec.program[1].duration, 60ull * 1000000000ull);
    EXPECT_EQ(spec.program[1].gap, 2ull * 1000000000ull);
    // The gap argument is optional and defaults to the driver's 1 s.
    EXPECT_EQ(spec.program[2].gap, 1ull * 1000000000ull);
    EXPECT_EQ(spec.program[3].kind, Event::Kind::HeavyUsage);
    EXPECT_EQ(spec.program[3].duration, 45ull * 1000000000ull);

    // They serialize canonically and round-trip.
    ScenarioSpec reparsed = ScenarioSpec::parseString(spec.toString());
    EXPECT_TRUE(spec == reparsed);
}

TEST(ScenarioSpec, LegacyFlatKeysAliasSchemeKnobs)
{
    // The pre-registry flat keys still parse, landing in the scheme
    // knob bag (normalized), so old configs and old recorded traces
    // keep replaying.
    ScenarioSpec spec = ScenarioSpec::parseString(
        "scheme = ariadne\n"
        "ariadne = EHL-1K-2K-16K\n"
        "seed_profiles = false\n"
        "predecomp = off\n"
        "hot_init_pages = 0\n"
        "event = warmup\n");
    EXPECT_EQ(spec.params.getString("config", ""), "EHL-1K-2K-16K");
    EXPECT_FALSE(spec.params.getBool("seed_profiles", true));
    EXPECT_FALSE(spec.params.getBool("predecomp", true));
    EXPECT_EQ(spec.params.getU64("hot_init_pages", 7), 0u);

    // The knobs reach the derived SystemConfig...
    SystemConfig cfg = spec.systemConfig(0);
    EXPECT_EQ(cfg.scheme, "ariadne");
    EXPECT_TRUE(cfg.schemeParams == spec.params);
    // ...and round-trip through toString (in namespaced form).
    EXPECT_NE(spec.toString().find("scheme.predecomp = false"),
              std::string::npos);
    EXPECT_TRUE(ScenarioSpec::parseString(spec.toString()) == spec);

    // Alias and namespaced form follow the same last-line-wins rule
    // as every other key (sweep variants override base settings
    // whichever syntax either side uses).
    ScenarioSpec explicit_last = ScenarioSpec::parseString(
        "scheme = ariadne\n"
        "predecomp = off\n"
        "scheme.predecomp = on\n"
        "event = warmup\n");
    EXPECT_TRUE(explicit_last.params.getBool("predecomp", false));
    ScenarioSpec alias_last = ScenarioSpec::parseString(
        "scheme = ariadne\n"
        "scheme.config = EHL-1K-2K-16K\n"
        "ariadne = AL-1K-2K-16K\n"
        "event = warmup\n");
    EXPECT_EQ(alias_last.params.getString("config", ""),
              "AL-1K-2K-16K");

    // Aliases of knobs the selected scheme lacks are dropped, which
    // is how they always behaved (ZRAM ignored `hot_init_pages`).
    ScenarioSpec zram = ScenarioSpec::parseString(
        "scheme = zram\n"
        "hot_init_pages = 0\n"
        "event = warmup\n");
    EXPECT_TRUE(zram.params.empty());

    EXPECT_THROW(ScenarioSpec::parseString("seed_profiles = maybe\n"),
                 SpecError);
}

TEST(ScenarioSpec, SchemeKnobsAreValidatedAgainstTheSchema)
{
    // Order-free: the knob may precede the scheme line it configures.
    ScenarioSpec spec = ScenarioSpec::parseString(
        "scheme.zpool_mb = 192\n"
        "scheme = zswap\n"
        "event = warmup\n");
    EXPECT_EQ(spec.params.getMiB("zpool_mb", 0),
              std::size_t{192} << 20);

    // Unknown knobs name the scheme and list its valid knobs.
    try {
        ScenarioSpec::parseString("scheme = zram\n"
                                  "scheme.config = EHL-1K-2K-16K\n"
                                  "event = warmup\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("scheme 'zram' has no knob 'config'"),
                  std::string::npos);
        EXPECT_NE(msg.find("zpool_mb"), std::string::npos);
    }
    // Malformed values are typed errors, with the line named.
    EXPECT_THROW(ScenarioSpec::parseString("scheme = ariadne\n"
                                           "scheme.predecomp = maybe\n"
                                           "event = warmup\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("scheme = ariadne\n"
                                           "scheme.config = EHL-1K\n"
                                           "event = warmup\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("scheme. = 1\n"),
                 SpecError);
}

TEST(ScenarioSpec, UnknownSchemeErrorListsRegisteredNames)
{
    try {
        ScenarioSpec::parseString("scheme = windows\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown scheme 'windows'"),
                  std::string::npos);
        for (const char *name :
             {"ariadne", "dram", "swap", "zram", "zswap"})
            EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
}

TEST(ScenarioSpec, ParsesSyntheticWorkloadKeys)
{
    ScenarioSpec spec = ScenarioSpec::parseString(
        "scheme = zram\n"
        "workload = synthetic\n"
        "population_apps_per_user = 4\n"
        "population_footprint_spread = 0.3\n"
        "population_light_share = 0.2\n"
        "population_heavy_share = 0.5\n"
        "population_switches = 25\n"
        "population_use = 500ms\n"
        "population_gap = 250ms\n");
    EXPECT_EQ(spec.workload, WorkloadKind::Synthetic);
    EXPECT_EQ(spec.population.appsPerUser, 4u);
    EXPECT_DOUBLE_EQ(spec.population.footprintSpread, 0.3);
    EXPECT_DOUBLE_EQ(spec.population.lightShare, 0.2);
    EXPECT_DOUBLE_EQ(spec.population.heavyShare, 0.5);
    EXPECT_EQ(spec.population.switches, 25u);
    EXPECT_EQ(spec.population.useTime, 500ull * 1000000ull);
    EXPECT_EQ(spec.population.gap, 250ull * 1000000ull);

    // Round-trips through the canonical form.
    ScenarioSpec reparsed = ScenarioSpec::parseString(spec.toString());
    EXPECT_TRUE(spec == reparsed);
    EXPECT_EQ(spec.toString(), reparsed.toString());

    // Key order is free: population keys may precede the workload
    // line (sweep variants inherit base keys in base order).
    ScenarioSpec reordered = ScenarioSpec::parseString(
        "population_switches = 25\n"
        "workload = synthetic\n");
    EXPECT_EQ(reordered.population.switches, 25u);
}

TEST(ScenarioSpec, ParsesTraceWorkloadKeys)
{
    ScenarioSpec spec = ScenarioSpec::parseString(
        "name = replay\n"
        "workload = trace\n"
        "trace = scenarios/daily.trace\n");
    EXPECT_EQ(spec.workload, WorkloadKind::Trace);
    EXPECT_EQ(spec.tracePath, "scenarios/daily.trace");
    ScenarioSpec reparsed = ScenarioSpec::parseString(spec.toString());
    EXPECT_TRUE(spec == reparsed);
}

TEST(ScenarioSpec, WorkloadKeyCombinationsAreValidated)
{
    // trace needs a file and tolerates no other identity keys.
    EXPECT_THROW(ScenarioSpec::parseString("workload = trace\n"),
                 SpecError);
    // A scheme line is the what-if override, not an error...
    ScenarioSpec what_if = ScenarioSpec::parseString(
        "workload = trace\n"
        "trace = x.trace\n"
        "scheme = zswap\n"
        "scheme.zpool_mb = 64\n");
    EXPECT_EQ(what_if.replayScheme, "zswap");
    EXPECT_EQ(what_if.replayParams.getMiB("zpool_mb", 0),
              std::size_t{64} << 20);
    EXPECT_TRUE(ScenarioSpec::parseString(what_if.toString()) ==
                what_if);
    // ...a knob-only override keeps the recorded scheme...
    ScenarioSpec knob_only = ScenarioSpec::parseString(
        "workload = trace\n"
        "trace = x.trace\n"
        "scheme.zpool_mb = 64\n");
    EXPECT_TRUE(knob_only.replayScheme.empty());
    EXPECT_TRUE(knob_only.replayParams.has("zpool_mb"));
    // ...but workload-identity keys are still rejected.
    EXPECT_THROW(ScenarioSpec::parseString("workload = trace\n"
                                           "trace = x.trace\n"
                                           "seed = 7\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("workload = trace\n"
                                           "trace = x.trace\n"
                                           "event = warmup\n"),
                 SpecError);
    // 'trace' outside workload = trace is an error, not ignored.
    EXPECT_THROW(ScenarioSpec::parseString("trace = x.trace\n"),
                 SpecError);
    // population keys demand a synthetic workload...
    EXPECT_THROW(
        ScenarioSpec::parseString("population_switches = 5\n"),
        SpecError);
    // ...and synthetic sessions generate their own programs.
    EXPECT_THROW(ScenarioSpec::parseString("workload = synthetic\n"
                                           "event = warmup\n"),
                 SpecError);
    // Share and spread ranges.
    EXPECT_THROW(ScenarioSpec::parseString(
                     "workload = synthetic\n"
                     "population_light_share = 0.7\n"
                     "population_heavy_share = 0.7\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString(
                     "workload = synthetic\n"
                     "population_footprint_spread = 1.5\n"),
                 SpecError);
    // NaN fails every comparison, so range checks must demand the
    // in-range predicate (strtod happily parses "nan").
    EXPECT_THROW(ScenarioSpec::parseString(
                     "workload = synthetic\n"
                     "population_footprint_spread = nan\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString(
                     "workload = synthetic\n"
                     "population_light_share = nan\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("workload = monkeys\n"),
                 SpecError);
}

TEST(SweepSpec, VariantsMayOverrideTheWorkload)
{
    SweepSpec sweep = SweepSpec::parseString(
        "scheme = zram\n"
        "variant = program\n"
        "event = warmup\n"
        "variant = population\n"
        "workload = synthetic\n"
        "population_apps_per_user = 3\n");
    ASSERT_EQ(sweep.variants.size(), 2u);
    EXPECT_EQ(sweep.variants[0].workload, WorkloadKind::Profiles);
    EXPECT_EQ(sweep.variants[1].workload, WorkloadKind::Synthetic);
    EXPECT_EQ(sweep.variants[1].population.appsPerUser, 3u);
    EXPECT_TRUE(SweepSpec::parseString(sweep.toString()) == sweep);
}

TEST(ScenarioSpec, CustomEventsAreProgrammaticOnly)
{
    EXPECT_THROW(ScenarioSpec::parseString("event = custom 0\n"),
                 SpecError);
    Event ev = Event::custom(3);
    EXPECT_EQ(ev.kind, Event::Kind::Custom);
    EXPECT_EQ(ev.hook, 3u);
    EXPECT_FALSE(ev == Event::custom(2));
}

TEST(ScenarioSpec, RoundTripsThroughToString)
{
    ScenarioSpec spec = ScenarioSpec::parseString(fullConfig);
    ScenarioSpec reparsed = ScenarioSpec::parseString(spec.toString());
    EXPECT_TRUE(spec == reparsed);
    // Serialization is canonical: a second round changes nothing.
    EXPECT_EQ(spec.toString(), reparsed.toString());
}

TEST(ScenarioSpec, ParsesPercentileModeKeys)
{
    ScenarioSpec spec = ScenarioSpec::parseString(
        "percentiles = sketch\n"
        "sketch_k = 128\n"
        "event = warmup\n");
    EXPECT_EQ(spec.percentiles, PercentileMode::Sketch);
    EXPECT_EQ(spec.sketchK, 128u);
    // Sketch mode round-trips with its buffer size spelled out.
    EXPECT_NE(spec.toString().find("percentiles = sketch"),
              std::string::npos);
    EXPECT_NE(spec.toString().find("sketch_k = 128"),
              std::string::npos);
    EXPECT_TRUE(ScenarioSpec::parseString(spec.toString()) == spec);

    // The default stays exact (and is omitted from the canonical
    // form, so pre-sketch configs and traces are untouched).
    ScenarioSpec exact = ScenarioSpec::parseString(
        "percentiles = exact\nevent = warmup\n");
    EXPECT_EQ(exact.percentiles, PercentileMode::Exact);
    EXPECT_EQ(exact.toString().find("percentiles"),
              std::string::npos);
}

TEST(ScenarioSpec, ValidatesPercentileModeKeys)
{
    EXPECT_THROW(ScenarioSpec::parseString("percentiles = median\n"),
                 SpecError);
    // sketch_k needs sketch mode, whatever the line order...
    EXPECT_THROW(ScenarioSpec::parseString("sketch_k = 128\n"
                                           "event = warmup\n"),
                 SpecError);
    EXPECT_THROW(
        ScenarioSpec::parseString("sketch_k = 128\n"
                                  "percentiles = exact\n"
                                  "event = warmup\n"),
        SpecError);
    // ...and a sane size.
    EXPECT_THROW(ScenarioSpec::parseString("percentiles = sketch\n"
                                           "sketch_k = 4\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("percentiles = sketch\n"
                                           "sketch_k = nope\n"),
                 SpecError);
    // Replay specs adopt the recorded scenario's aggregation mode;
    // overriding it there is rejected like any other stray key.
    EXPECT_THROW(ScenarioSpec::parseString("workload = trace\n"
                                           "trace = x.trace\n"
                                           "percentiles = sketch\n"),
                 SpecError);
}

TEST(ScenarioSpec, DefaultsWhenKeysOmitted)
{
    ScenarioSpec spec = ScenarioSpec::parseString("event = warmup\n");
    EXPECT_EQ(spec.name, "unnamed");
    EXPECT_EQ(spec.scheme, "zram");
    EXPECT_TRUE(spec.params.empty());
    EXPECT_DOUBLE_EQ(spec.scale, 0.0625);
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_EQ(spec.fleet, 1u);
    EXPECT_TRUE(spec.apps.empty());
    EXPECT_EQ(spec.appProfiles().size(), 10u);
}

TEST(ScenarioSpec, SessionSeedsAreStableAndDecorrelated)
{
    ScenarioSpec spec;
    spec.seed = 42;
    // Session 0 runs the base seed (legacy single-run compatibility).
    EXPECT_EQ(spec.sessionSeed(0), 42u);
    EXPECT_NE(spec.sessionSeed(1), spec.sessionSeed(2));
    EXPECT_EQ(spec.sessionSeed(7), spec.sessionSeed(7));
    // The derived SystemConfig carries the per-session seed.
    EXPECT_EQ(spec.systemConfig(3).seed, spec.sessionSeed(3));
}

TEST(ScenarioSpec, RejectsMalformedLines)
{
    EXPECT_THROW(ScenarioSpec::parseString("name daily\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("= value\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("name =\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("bogus = 1\n"), SpecError);
}

TEST(ScenarioSpec, RejectsBadValues)
{
    EXPECT_THROW(ScenarioSpec::parseString("scheme = windows\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("scale = 0\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("scale = 2.0\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("scale = abc\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("seed = -1\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("fleet = 0\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("apps = NoSuchApp\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("ariadne = EHL-1K-2K\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("ariadne = XXL-1K-2K-16K\n"),
                 SpecError);
    // Shape is fine but the size constraints AriadneConfig::parse
    // enforces with fatal() must already fail here with SpecError.
    EXPECT_THROW(ScenarioSpec::parseString("ariadne = EHL-16K-2K-1K\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("ariadne = EHL-0-1K-2K\n"),
                 SpecError);
    // Oversized chunk-size tokens must become SpecError, not escape
    // as std::out_of_range.
    EXPECT_THROW(ScenarioSpec::parseString(
                     "ariadne = EHL-99999999999999999999K-1K-2K\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString(
                     "ariadne = EHL-1K-2K-99999999999999999999\n"),
                 SpecError);
}

TEST(ScenarioSpec, AppListMayFollowTheEventsUsingIt)
{
    // Validation is order-independent: events may reference apps the
    // mix only declares later in the file...
    ScenarioSpec spec =
        ScenarioSpec::parseString("event = launch Twitter\n"
                                  "apps = Twitter\n");
    EXPECT_EQ(spec.program[0].app, "Twitter");
    // ...and an app outside the final mix is rejected no matter where
    // the apps line sits.
    EXPECT_THROW(
        ScenarioSpec::parseString("event = launch YouTube\n"
                                  "apps = Twitter\n"),
        SpecError);
}

TEST(ScenarioSpec, RejectsBadEvents)
{
    EXPECT_THROW(ScenarioSpec::parseString("event = fly YouTube\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = launch\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = launch NoSuchApp\n"),
                 SpecError);
    EXPECT_THROW(
        ScenarioSpec::parseString("event = execute YouTube 5parsecs\n"),
        SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = idle abc\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = repeat 0\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = repeat 2\n"
                                           "event = warmup\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = end\n"), SpecError);
    // Events may only reference apps in the scenario's mix.
    EXPECT_THROW(
        ScenarioSpec::parseString("apps = YouTube\n"
                                  "event = launch Twitter\n"),
        SpecError);
}

TEST(ScenarioSpec, ErrorsNameTheLine)
{
    try {
        ScenarioSpec::parseString("name = ok\nbogus = 1\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(ScenarioSpec, LoadFileThrowsOnMissingFile)
{
    EXPECT_THROW(ScenarioSpec::loadFile("/nonexistent/path.cfg"),
                 SpecError);
}

TEST(ParseDuration, AcceptsAllSuffixes)
{
    EXPECT_EQ(parseDuration("42"), 42u);
    EXPECT_EQ(parseDuration("42ns"), 42u);
    EXPECT_EQ(parseDuration("7us"), 7000u);
    EXPECT_EQ(parseDuration("250ms"), 250ull * 1000000ull);
    EXPECT_EQ(parseDuration("2s"), 2ull * 1000000000ull);
    EXPECT_THROW(parseDuration(""), SpecError);
    EXPECT_THROW(parseDuration("ms"), SpecError);
    EXPECT_THROW(parseDuration("5h"), SpecError);
    EXPECT_THROW(parseDuration("-5s"), SpecError);
}

TEST(ParseDuration, RejectsOverflowInsteadOfWrapping)
{
    // 1e11 seconds * 1e9 would wrap uint64; must throw, not truncate.
    EXPECT_THROW(parseDuration("99999999999s"), SpecError);
    // Digits alone already beyond uint64.
    EXPECT_THROW(parseDuration("99999999999999999999"), SpecError);
    // Near the limit but representable stays accepted.
    EXPECT_EQ(parseDuration("18000000000s"),
              18000000000ull * 1000000000ull);
}

namespace
{

const char *sweepConfig = R"(
# Base section shared by every variant.
sweep = my-sweep
scale = 0.125
seed = 9
fleet = 4
apps = YouTube, Twitter
event = warmup
event = repeat 3
event =   switch_next 1s 500ms
event = end

variant = zram
scheme = zram

variant = ariadne
scheme = ariadne
ariadne = EHL-1K-2K-16K

variant = own-program
scheme = dram
event = launch YouTube
event = execute YouTube 5s
)";

} // namespace

TEST(SweepSpec, ParsesBaseAndVariantSections)
{
    SweepSpec sweep = SweepSpec::parseString(sweepConfig);
    EXPECT_EQ(sweep.name, "my-sweep");
    ASSERT_EQ(sweep.variants.size(), 3u);

    const ScenarioSpec &zram = sweep.variants[0];
    EXPECT_EQ(zram.name, "zram");
    EXPECT_EQ(zram.scheme, "zram");
    // Base settings and program are inherited.
    EXPECT_DOUBLE_EQ(zram.scale, 0.125);
    EXPECT_EQ(zram.seed, 9u);
    EXPECT_EQ(zram.fleet, 4u);
    ASSERT_EQ(zram.apps.size(), 2u);
    ASSERT_EQ(zram.program.size(), 2u);
    EXPECT_EQ(zram.program[0].kind, Event::Kind::Warmup);
    EXPECT_EQ(zram.program[1].kind, Event::Kind::Repeat);

    const ScenarioSpec &ariadne = sweep.variants[1];
    EXPECT_EQ(ariadne.scheme, "ariadne");
    EXPECT_EQ(ariadne.params.getString("config", ""),
              "EHL-1K-2K-16K");
    EXPECT_TRUE(ariadne.program == zram.program);

    // A variant with its own events replaces the base program.
    const ScenarioSpec &own = sweep.variants[2];
    ASSERT_EQ(own.program.size(), 2u);
    EXPECT_EQ(own.program[0].kind, Event::Kind::Launch);
    EXPECT_EQ(own.program[1].kind, Event::Kind::Execute);
    // ...but still inherits the base settings.
    EXPECT_EQ(own.fleet, 4u);
}

TEST(SweepSpec, VariantAppsOverrideTheBaseMix)
{
    SweepSpec sweep = SweepSpec::parseString(
        "apps = YouTube, Twitter\n"
        "event = warmup\n"
        "variant = inherit\n"
        "scheme = zram\n"
        "variant = own-mix\n"
        "apps = Firefox\n");
    ASSERT_EQ(sweep.variants.size(), 2u);
    EXPECT_EQ(sweep.variants[0].apps,
              (std::vector<std::string>{"YouTube", "Twitter"}));
    // The variant's list replaces — not appends to — the base list.
    EXPECT_EQ(sweep.variants[1].apps,
              (std::vector<std::string>{"Firefox"}));
    // `apps = standard` restores the full ten-app mix.
    SweepSpec standard = SweepSpec::parseString(
        "apps = YouTube\n"
        "event = warmup\n"
        "variant = all\n"
        "apps = standard\n");
    EXPECT_TRUE(standard.variants[0].apps.empty());
}

TEST(SweepSpec, DuplicateDetectionUsesTheFinalVariantName)
{
    // An explicit `name =` line overrides the section header; two
    // sections that end up with the same final name are rejected so
    // every parsed sweep round-trips through its canonical form.
    EXPECT_THROW(SweepSpec::parseString("variant = a\n"
                                        "name = x\n"
                                        "variant = b\n"
                                        "name = x\n"),
                 SpecError);
    // Distinct final names are fine even with identical headers.
    SweepSpec ok = SweepSpec::parseString("variant = a\n"
                                          "name = x\n"
                                          "variant = a\n"
                                          "name = y\n");
    EXPECT_EQ(ok.variants[0].name, "x");
    EXPECT_EQ(ok.variants[1].name, "y");
    EXPECT_TRUE(SweepSpec::parseString(ok.toString()) == ok);
}

TEST(SweepSpec, RoundTripsThroughToString)
{
    SweepSpec sweep = SweepSpec::parseString(sweepConfig);
    SweepSpec reparsed = SweepSpec::parseString(sweep.toString());
    EXPECT_TRUE(sweep == reparsed);
    EXPECT_EQ(sweep.toString(), reparsed.toString());
}

TEST(SweepSpec, RejectsInvalidSweeps)
{
    // No variants at all.
    EXPECT_THROW(SweepSpec::parseString("scheme = zram\n"), SpecError);
    EXPECT_THROW(SweepSpec::parseString(""), SpecError);
    // Duplicate variant names.
    EXPECT_THROW(SweepSpec::parseString("variant = a\n"
                                        "scheme = zram\n"
                                        "variant = a\n"
                                        "scheme = dram\n"),
                 SpecError);
    // `sweep` after the first variant.
    EXPECT_THROW(SweepSpec::parseString("variant = a\n"
                                        "sweep = late\n"),
                 SpecError);
    // Empty names.
    EXPECT_THROW(SweepSpec::parseString("sweep =\n"
                                        "variant = a\n"),
                 SpecError);
    EXPECT_THROW(SweepSpec::parseString("variant =\n"), SpecError);
}

TEST(SweepSpec, BaseSectionIsValidatedEvenWhenUnused)
{
    // Every variant overrides the program, so the bogus base event is
    // never inherited — it must still be diagnosed, with its line.
    try {
        SweepSpec::parseString("event = bogus_op 1\n"
                               "variant = a\n"
                               "event = warmup\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("line 1"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("bogus_op"),
                  std::string::npos);
    }
    // A malformed base line with no variants reports the actual
    // syntax error, not the generic no-variants message.
    try {
        SweepSpec::parseString("scheme = windows\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown scheme"),
                  std::string::npos);
    }
}

TEST(SweepSpec, ErrorsNameTheOriginalFileLine)
{
    try {
        SweepSpec::parseString("sweep = s\n"
                               "variant = a\n"
                               "scheme = zram\n"
                               "bogus = 1\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("line 4"),
                  std::string::npos);
    }
}

TEST(SweepSpec, DetectsSweepConfigs)
{
    std::istringstream sweep_text("sweep = s\nvariant = a\n");
    EXPECT_TRUE(looksLikeSweepConfig(sweep_text));
    std::istringstream scenario_text("name = daily\nevent = warmup\n");
    EXPECT_FALSE(looksLikeSweepConfig(scenario_text));
}

TEST(FormatDuration, PicksShortestExactSuffix)
{
    EXPECT_EQ(formatDuration(2000000000ull), "2s");
    EXPECT_EQ(formatDuration(250000000ull), "250ms");
    EXPECT_EQ(formatDuration(7000ull), "7us");
    EXPECT_EQ(formatDuration(42ull), "42ns");
    EXPECT_EQ(formatDuration(0), "0s");
    // Round-trip property.
    EXPECT_EQ(parseDuration(formatDuration(123456789ull)), 123456789ull);
}
