#include "analysis/locality.hh"

namespace ariadne
{

bool
sectorsAdjacent(Sector cur, Sector next) noexcept
{
    // "Contiguous or nearby memory locations in zpool" (§1): the next
    // access counts as consecutive when it lands within a few sectors
    // ahead — hot-set churn leaves small gaps between surviving pages
    // that were compressed together.
    return next >= cur && next - cur <= 3;
}

double
consecutiveAccessProbability(const std::vector<Sector> &accesses,
                             std::size_t run_length)
{
    if (run_length < 2 || accesses.size() < run_length)
        return 0.0;
    std::size_t windows = accesses.size() - run_length + 1;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < windows; ++i) {
        bool consecutive = true;
        for (std::size_t j = 1; j < run_length; ++j) {
            if (!sectorsAdjacent(accesses[i + j - 1], accesses[i + j])) {
                consecutive = false;
                break;
            }
        }
        if (consecutive)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(windows);
}

} // namespace ariadne
