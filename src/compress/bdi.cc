#include "compress/bdi.hh"

#include <cstring>

namespace ariadne
{

namespace
{

enum Scheme : std::uint8_t
{
    Zeros = 0,
    Repeat8 = 1,
    Base8Delta1 = 2,
    Base8Delta2 = 3,
    Base8Delta4 = 4,
    Base4Delta1 = 5,
    Base4Delta2 = 6,
    Base2Delta1 = 7,
    Raw = 8,
    RawShort = 9, //!< trailing line shorter than lineBytes
};

template <typename Word>
Word
loadWord(const std::uint8_t *p) noexcept
{
    Word w;
    std::memcpy(&w, p, sizeof(Word));
    return w;
}

template <typename Word>
void
storeWord(std::uint8_t *p, Word w) noexcept
{
    std::memcpy(p, &w, sizeof(Word));
}

/**
 * Try to encode a 64-byte line as base<BaseT> + delta<DeltaT>.
 * Payload layout: base word then one delta per word.
 * @return payload size on success, 0 if a delta does not fit.
 */
template <typename BaseT, typename DeltaT>
std::size_t
tryBaseDelta(const std::uint8_t *line, std::uint8_t *out) noexcept
{
    constexpr std::size_t words = BdiCodec::lineBytes / sizeof(BaseT);
    using SignedBase = std::make_signed_t<BaseT>;
    using SignedDelta = std::make_signed_t<DeltaT>;

    BaseT base = loadWord<BaseT>(line);
    DeltaT deltas[words];
    for (std::size_t i = 0; i < words; ++i) {
        BaseT v = loadWord<BaseT>(line + i * sizeof(BaseT));
        auto diff = static_cast<SignedBase>(v - base);
        auto narrowed = static_cast<SignedDelta>(diff);
        if (static_cast<SignedBase>(narrowed) != diff)
            return 0;
        deltas[i] = static_cast<DeltaT>(narrowed);
    }
    storeWord<BaseT>(out, base);
    std::memcpy(out + sizeof(BaseT), deltas, words * sizeof(DeltaT));
    return sizeof(BaseT) + words * sizeof(DeltaT);
}

template <typename BaseT, typename DeltaT>
void
decodeBaseDelta(const std::uint8_t *in, std::uint8_t *line) noexcept
{
    constexpr std::size_t words = BdiCodec::lineBytes / sizeof(BaseT);
    using SignedDelta = std::make_signed_t<DeltaT>;

    BaseT base = loadWord<BaseT>(in);
    const std::uint8_t *dp = in + sizeof(BaseT);
    for (std::size_t i = 0; i < words; ++i) {
        DeltaT d = loadWord<DeltaT>(dp + i * sizeof(DeltaT));
        auto v = static_cast<BaseT>(
            base + static_cast<BaseT>(static_cast<SignedDelta>(d)));
        storeWord<BaseT>(line + i * sizeof(BaseT), v);
    }
}

template <typename BaseT, typename DeltaT>
constexpr std::size_t
payloadSize() noexcept
{
    return sizeof(BaseT) +
           (BdiCodec::lineBytes / sizeof(BaseT)) * sizeof(DeltaT);
}

bool
allZero(const std::uint8_t *line) noexcept
{
    for (std::size_t i = 0; i < BdiCodec::lineBytes; ++i) {
        if (line[i] != 0)
            return false;
    }
    return true;
}

bool
allRepeat8(const std::uint8_t *line) noexcept
{
    for (std::size_t i = 8; i < BdiCodec::lineBytes; ++i) {
        if (line[i] != line[i - 8])
            return false;
    }
    return true;
}

} // namespace

std::size_t
BdiCodec::compressBound(std::size_t n) const noexcept
{
    std::size_t lines = (n + lineBytes - 1) / lineBytes;
    // Worst case: header + raw payload per line, plus a length byte
    // for the short trailing line.
    return n + lines + 2;
}

std::size_t
BdiCodec::compress(ConstBytes src, MutableBytes dst) const
{
    if (dst.size() < compressBound(src.size()))
        return 0;

    const std::uint8_t *ip = src.data();
    std::size_t remaining = src.size();
    std::uint8_t *op = dst.data();

    while (remaining >= lineBytes) {
        std::uint8_t *header = op++;
        std::size_t payload = 0;
        if (allZero(ip)) {
            *header = Zeros;
        } else if (allRepeat8(ip)) {
            *header = Repeat8;
            std::memcpy(op, ip, 8);
            payload = 8;
        } else if ((payload =
                        tryBaseDelta<std::uint64_t, std::uint8_t>(ip, op))) {
            *header = Base8Delta1;
        } else if ((payload = tryBaseDelta<std::uint32_t, std::uint8_t>(
                        ip, op))) {
            // Candidate schemes are tried smallest payload first:
            // 16, 20, 24, 34, 36, 40 bytes per 64-byte line.
            *header = Base4Delta1;
        } else if ((payload = tryBaseDelta<std::uint64_t, std::uint16_t>(
                        ip, op))) {
            *header = Base8Delta2;
        } else if ((payload = tryBaseDelta<std::uint16_t, std::uint8_t>(
                        ip, op))) {
            *header = Base2Delta1;
        } else if ((payload = tryBaseDelta<std::uint32_t, std::uint16_t>(
                        ip, op))) {
            *header = Base4Delta2;
        } else if ((payload = tryBaseDelta<std::uint64_t, std::uint32_t>(
                        ip, op))) {
            *header = Base8Delta4;
        } else {
            *header = Raw;
            std::memcpy(op, ip, lineBytes);
            payload = lineBytes;
        }
        op += payload;
        ip += lineBytes;
        remaining -= lineBytes;
    }

    if (remaining > 0) {
        *op++ = RawShort;
        *op++ = static_cast<std::uint8_t>(remaining);
        std::memcpy(op, ip, remaining);
        op += remaining;
    }
    return static_cast<std::size_t>(op - dst.data());
}

std::size_t
BdiCodec::decompress(ConstBytes src, MutableBytes dst) const
{
    const std::uint8_t *ip = src.data();
    const std::uint8_t *const iend = ip + src.size();
    std::uint8_t *op = dst.data();
    std::uint8_t *const oend = op + dst.size();

    auto need_in = [&](std::size_t k) {
        return static_cast<std::size_t>(iend - ip) >= k;
    };

    while (ip < iend) {
        std::uint8_t scheme = *ip++;
        if (scheme == RawShort) {
            if (!need_in(1))
                return 0;
            std::size_t len = *ip++;
            if (len == 0 || len >= lineBytes || !need_in(len) ||
                static_cast<std::size_t>(oend - op) < len) {
                return 0;
            }
            std::memcpy(op, ip, len);
            ip += len;
            op += len;
            continue;
        }
        if (static_cast<std::size_t>(oend - op) < lineBytes)
            return 0;
        switch (scheme) {
          case Zeros:
            std::memset(op, 0, lineBytes);
            break;
          case Repeat8:
            if (!need_in(8))
                return 0;
            for (std::size_t i = 0; i < lineBytes; i += 8)
                std::memcpy(op + i, ip, 8);
            ip += 8;
            break;
          case Base8Delta1: {
            constexpr auto sz = payloadSize<std::uint64_t, std::uint8_t>();
            if (!need_in(sz))
                return 0;
            decodeBaseDelta<std::uint64_t, std::uint8_t>(ip, op);
            ip += sz;
            break;
          }
          case Base8Delta2: {
            constexpr auto sz =
                payloadSize<std::uint64_t, std::uint16_t>();
            if (!need_in(sz))
                return 0;
            decodeBaseDelta<std::uint64_t, std::uint16_t>(ip, op);
            ip += sz;
            break;
          }
          case Base8Delta4: {
            constexpr auto sz =
                payloadSize<std::uint64_t, std::uint32_t>();
            if (!need_in(sz))
                return 0;
            decodeBaseDelta<std::uint64_t, std::uint32_t>(ip, op);
            ip += sz;
            break;
          }
          case Base4Delta1: {
            constexpr auto sz = payloadSize<std::uint32_t, std::uint8_t>();
            if (!need_in(sz))
                return 0;
            decodeBaseDelta<std::uint32_t, std::uint8_t>(ip, op);
            ip += sz;
            break;
          }
          case Base4Delta2: {
            constexpr auto sz =
                payloadSize<std::uint32_t, std::uint16_t>();
            if (!need_in(sz))
                return 0;
            decodeBaseDelta<std::uint32_t, std::uint16_t>(ip, op);
            ip += sz;
            break;
          }
          case Base2Delta1: {
            constexpr auto sz = payloadSize<std::uint16_t, std::uint8_t>();
            if (!need_in(sz))
                return 0;
            decodeBaseDelta<std::uint16_t, std::uint8_t>(ip, op);
            ip += sz;
            break;
          }
          case Raw:
            if (!need_in(lineBytes))
                return 0;
            std::memcpy(op, ip, lineBytes);
            ip += lineBytes;
            break;
          default:
            return 0;
        }
        op += lineBytes;
    }
    return static_cast<std::size_t>(op - dst.data());
}

} // namespace ariadne
