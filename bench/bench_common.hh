/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * Every bench binary reproduces one table or figure of the paper; the
 * helpers here build systems at the standard evaluation scale, run
 * the §5 target-relaunch methodology, and print results side by side
 * with the paper's reference values (EXPERIMENTS.md records both).
 */

#ifndef ARIADNE_BENCH_COMMON_HH
#define ARIADNE_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "sys/session.hh"
#include "workload/apps.hh"

namespace ariadne::bench
{

/** Footprint scale all experiment harnesses run at (1/16 of the
 * paper's volumes; latencies are rescaled, see EXPERIMENTS.md). */
constexpr double evalScale = 0.0625;

/** Deterministic seed shared by all benches. */
constexpr std::uint64_t evalSeed = 42;

/** The five applications the paper plots (Figs. 2, 10-13, 15). */
inline std::vector<std::string>
plottedApps()
{
    return {"YouTube", "Twitter", "Firefox", "GoogleEarth",
            "BangDream"};
}

/** Build a SystemConfig at the evaluation scale. */
inline SystemConfig
makeConfig(SchemeKind kind, const std::string &ariadne_cfg = "")
{
    SystemConfig cfg;
    cfg.scale = evalScale;
    cfg.seed = evalSeed;
    cfg.scheme = kind;
    if (!ariadne_cfg.empty())
        cfg.ariadne = AriadneConfig::parse(ariadne_cfg);
    return cfg;
}

/**
 * Run the §5 target-relaunch scenario on a fresh system.
 * @return the measured relaunch.
 */
inline RelaunchStats
runTargetScenario(const SystemConfig &cfg, const std::string &app_name,
                  unsigned variant = 0)
{
    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    return driver.targetRelaunchScenario(standardApp(app_name).uid,
                                         variant);
}

/** Full-scale milliseconds of a scaled relaunch measurement. */
inline double
fullScaleMs(const RelaunchStats &st, double scale = evalScale)
{
    return static_cast<double>(st.fullScaleNs(scale)) / 1e6;
}

} // namespace ariadne::bench

#endif // ARIADNE_BENCH_COMMON_HH
