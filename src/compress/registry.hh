/**
 * @file
 * Codec factory.
 *
 * Ariadne "naturally supports different compression algorithms, such
 * as switching between LZO and LZ4" (§4.5); schemes look codecs up by
 * kind or by name so experiments can swap them from configuration.
 */

#ifndef ARIADNE_COMPRESS_REGISTRY_HH
#define ARIADNE_COMPRESS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "compress/codec.hh"

namespace ariadne
{

/** Create a codec by kind. */
std::unique_ptr<Codec> makeCodec(CodecKind kind);

/**
 * Create a codec by lowercase name ("lz4", "lzo", "bdi", "null").
 * Calls fatal() on unknown names (a configuration error).
 */
std::unique_ptr<Codec> makeCodec(const std::string &name);

/** All codec kinds, for parameterized tests and sweeps. */
std::vector<CodecKind> allCodecKinds();

} // namespace ariadne

#endif // ARIADNE_COMPRESS_REGISTRY_HH
