/**
 * @file
 * Base-delta-immediate (BDI) codec.
 *
 * Implements the cache-compression scheme of Pekhimenko et al. (PACT
 * 2012), which the paper lists as compatible with Ariadne (§4.5). The
 * input is segmented into 64-byte lines; each line is encoded with the
 * cheapest applicable scheme: all-zero, repeated value, or one of the
 * (base, delta) pairs {8,1} {8,2} {8,4} {4,1} {4,2} {2,1}; lines that
 * fit nothing are stored raw. A one-byte header per line records the
 * scheme; a short trailing line is always stored raw.
 */

#ifndef ARIADNE_COMPRESS_BDI_HH
#define ARIADNE_COMPRESS_BDI_HH

#include "compress/codec.hh"

namespace ariadne
{

/** Base-delta-immediate codec over 64-byte lines. */
class BdiCodec : public Codec
{
  public:
    /** Line granularity used by the encoder. */
    static constexpr std::size_t lineBytes = 64;

    CodecKind kind() const noexcept override { return CodecKind::Bdi; }
    std::string name() const override { return "bdi"; }
    const CodecCost &cost() const noexcept override { return costs; }

    std::size_t compressBound(std::size_t n) const noexcept override;
    std::size_t compress(ConstBytes src, MutableBytes dst) const override;
    std::size_t decompress(ConstBytes src,
                           MutableBytes dst) const override;

  private:
    static constexpr CodecCost costs = bdiCost;
};

} // namespace ariadne

#endif // ARIADNE_COMPRESS_BDI_HH
