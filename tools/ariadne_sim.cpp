/**
 * @file
 * ariadne_sim — config-driven fleet experiment runner.
 *
 * Runs a fleet of independent simulated devices through one scenario
 * config and reports aggregate percentiles, optionally as JSON:
 *
 *     ariadne_sim --config scenarios/daily.cfg --fleet 64 \
 *                 --threads 8 --json out.json
 *
 * Fleet aggregates are bit-identical regardless of --threads; every
 * session derives its seed from the scenario's base seed and its own
 * index.
 */

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/report.hh"
#include "driver/fleet_runner.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: ariadne_sim --config FILE [options]\n"
          "\n"
          "options:\n"
          "  --config FILE    scenario config (required)\n"
          "  --fleet N        session count (default: the config's "
          "fleet size)\n"
          "  --threads T      worker threads (default 1; 0 = hardware "
          "count)\n"
          "  --json FILE      write the aggregate report as JSON "
          "('-' = stdout)\n"
          "  --per-session    include per-session records in the JSON\n"
          "  --print-config   echo the parsed scenario and exit\n"
          "  --quiet          suppress the human-readable summary\n"
          "  --help           this message\n";
}

struct Options
{
    std::string configPath;
    std::size_t fleet = 0;   // 0 = use the spec's
    unsigned threads = 1;
    std::string jsonPath;
    bool perSession = false;
    bool printConfig = false;
    bool quiet = false;
};

/** Parse argv; returns false (after printing a message) on error. */
bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need_value = [&](int i, const char *flag) {
        if (i + 1 >= argc) {
            std::cerr << "ariadne_sim: " << flag
                      << " needs a value\n";
            return false;
        }
        return true;
    };
    auto parse_count = [](const char *flag, const char *text,
                          unsigned long &out) {
        // Digits only: stoul would happily wrap "-1" to a huge value.
        std::string s(text);
        if (!s.empty() &&
            std::all_of(s.begin(), s.end(), [](unsigned char c) {
                return std::isdigit(c);
            })) {
            try {
                out = std::stoul(s);
                return true;
            } catch (const std::out_of_range &) {
            }
        }
        std::cerr << "ariadne_sim: " << flag
                  << " needs a non-negative integer, got '" << text
                  << "'\n";
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            usage(std::cout);
            std::exit(0);
        } else if (!std::strcmp(arg, "--config")) {
            if (!need_value(i, arg))
                return false;
            opt.configPath = argv[++i];
        } else if (!std::strcmp(arg, "--fleet")) {
            if (!need_value(i, arg))
                return false;
            unsigned long v = 0;
            if (!parse_count(arg, argv[++i], v))
                return false;
            opt.fleet = v;
        } else if (!std::strcmp(arg, "--threads")) {
            if (!need_value(i, arg))
                return false;
            unsigned long v = 0;
            if (!parse_count(arg, argv[++i], v))
                return false;
            opt.threads = static_cast<unsigned>(v);
        } else if (!std::strcmp(arg, "--json")) {
            if (!need_value(i, arg))
                return false;
            opt.jsonPath = argv[++i];
        } else if (!std::strcmp(arg, "--per-session")) {
            opt.perSession = true;
        } else if (!std::strcmp(arg, "--print-config")) {
            opt.printConfig = true;
        } else if (!std::strcmp(arg, "--quiet")) {
            opt.quiet = true;
        } else {
            std::cerr << "ariadne_sim: unknown option '" << arg
                      << "'\n";
            usage(std::cerr);
            return false;
        }
    }
    if (opt.configPath.empty()) {
        std::cerr << "ariadne_sim: --config is required\n";
        usage(std::cerr);
        return false;
    }
    return true;
}

std::vector<std::string>
summaryRow(const std::string &name, const MetricSummary &m, int prec)
{
    return {name,
            std::to_string(m.samples),
            ReportTable::num(m.mean, prec),
            ReportTable::num(m.p50, prec),
            ReportTable::num(m.p90, prec),
            ReportTable::num(m.p99, prec),
            ReportTable::num(m.min, prec),
            ReportTable::num(m.max, prec)};
}

void
printSummary(std::ostream &os, const FleetResult &r)
{
    printBanner(os, "ariadne_sim: scenario '" + r.scenario + "' — " +
                        r.scheme +
                        (r.ariadneConfig.empty()
                             ? ""
                             : " (" + r.ariadneConfig + ")"));
    os << "fleet " << r.fleet << ", base seed " << r.seed << ", scale "
       << r.scale << "\n\n";

    ReportTable table({"metric", "n", "mean", "p50", "p90", "p99",
                       "min", "max"});
    table.addRow(summaryRow("relaunch latency (ms)", r.relaunchMs, 1));
    table.addRow(
        summaryRow("comp+decomp CPU (ms)", r.compDecompCpuMs, 1));
    table.addRow(summaryRow("kswapd CPU (ms)", r.kswapdCpuMs, 1));
    table.addRow(summaryRow("energy (J)", r.energyJ, 2));
    table.addRow(summaryRow("compression ratio", r.compRatio, 2));
    table.print(os);

    os << "\nrelaunches " << r.totalRelaunches << ", staged hits "
       << r.totalStagedHits << ", major faults " << r.totalMajorFaults
       << ", flash faults " << r.totalFlashFaults << ", lost pages "
       << r.totalLostPages << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    ScenarioSpec spec;
    try {
        spec = ScenarioSpec::loadFile(opt.configPath);
    } catch (const SpecError &e) {
        std::cerr << "ariadne_sim: " << e.what() << "\n";
        return 2;
    }

    if (opt.printConfig) {
        std::cout << spec.toString();
        return 0;
    }

    FleetRunner runner(std::move(spec));
    FleetResult result = runner.run(opt.fleet, opt.threads);

    if (!opt.quiet)
        printSummary(std::cout, result);

    if (!opt.jsonPath.empty()) {
        if (opt.jsonPath == "-") {
            result.writeJson(std::cout, opt.perSession);
        } else {
            std::ofstream out(opt.jsonPath);
            if (!out) {
                std::cerr << "ariadne_sim: cannot write "
                          << opt.jsonPath << "\n";
                return 1;
            }
            result.writeJson(out, opt.perSession);
            if (!opt.quiet)
                std::cout << "\nJSON report written to "
                          << opt.jsonPath << "\n";
        }
    }
    return 0;
}
