/** @file Unit tests for the live fleet progress meter. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "telemetry/progress.hh"

using namespace ariadne;
using telemetry::ProgressMeter;

namespace
{

class ProgressTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        ProgressMeter::global().disable();
        ProgressMeter::global().setMinIntervalNs(200'000'000);
    }
};

} // namespace

TEST_F(ProgressTest, FormatLineWithKnownTotal)
{
    EXPECT_EQ(ProgressMeter::formatLine("daily", 128, 512, 3.0),
              "progress: daily 128/512 sessions (25.0%), "
              "42.7 sessions/s, eta 9.0s");
}

TEST_F(ProgressTest, FormatLineUnknownTotalOmitsPercentAndEta)
{
    std::string line = ProgressMeter::formatLine("sweep", 10, 0, 2.0);
    EXPECT_EQ(line, "progress: sweep 10 sessions, 5.0 sessions/s");
}

TEST_F(ProgressTest, FormatLineZeroElapsedOmitsRate)
{
    std::string line = ProgressMeter::formatLine("x", 1, 4, 0.0);
    EXPECT_EQ(line.find("sessions/s"), std::string::npos);
    EXPECT_NE(line.find("1/4"), std::string::npos);
}

TEST_F(ProgressTest, FormatSummary)
{
    EXPECT_EQ(ProgressMeter::formatSummary("daily", 64, 4.0),
              "progress: daily done: 64 sessions in 4.0s "
              "(16.0 sessions/s)");
}

TEST_F(ProgressTest, DisabledTickIsANoop)
{
    ProgressMeter &m = ProgressMeter::global();
    EXPECT_FALSE(m.isEnabled());
    m.tick(5); // must not crash or count
    std::ostringstream sink;
    m.enable(10, "t", &sink);
    EXPECT_EQ(m.completed(), 0u);
}

TEST_F(ProgressTest, TicksCountAndEmitWholeLines)
{
    std::ostringstream sink;
    ProgressMeter &m = ProgressMeter::global();
    m.enable(4, "unit", &sink);
    m.setMinIntervalNs(0); // deterministic: every tick emits
    m.tick();
    m.tick(2);
    m.tick();
    EXPECT_EQ(m.completed(), 4u);
    m.finish();

    std::string out = sink.str();
    // Every emitted line is newline-terminated and prefixed.
    std::istringstream lines(out);
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.rfind("progress: unit", 0), 0u) << line;
        ++n;
    }
    EXPECT_EQ(n, 4u); // three heartbeats + the summary
    EXPECT_NE(out.find("4/4 sessions (100.0%)"), std::string::npos);
    EXPECT_NE(out.find("done: 4 sessions"), std::string::npos);
}

TEST_F(ProgressTest, RateLimitSuppressesIntermediateLines)
{
    std::ostringstream sink;
    ProgressMeter &m = ProgressMeter::global();
    m.enable(100, "rl", &sink);
    m.setMinIntervalNs(60'000'000'000ULL); // one minute: nothing fits
    for (int i = 0; i < 100; ++i)
        m.tick();
    // Only the first tick's heartbeat got through the limiter.
    std::string out = sink.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
    m.finish(); // finish always emits
    std::string after = sink.str();
    EXPECT_EQ(std::count(after.begin(), after.end(), '\n'), 2);
    EXPECT_EQ(m.completed(), 100u);
}

TEST_F(ProgressTest, EnableResetsCount)
{
    std::ostringstream sink;
    ProgressMeter &m = ProgressMeter::global();
    m.enable(5, "a", &sink);
    m.setMinIntervalNs(0);
    m.tick(3);
    m.enable(7, "b", &sink);
    EXPECT_EQ(m.completed(), 0u);
    m.tick();
    EXPECT_EQ(m.completed(), 1u);
}

TEST_F(ProgressTest, DisableStopsEmission)
{
    std::ostringstream sink;
    ProgressMeter &m = ProgressMeter::global();
    m.enable(5, "gone", &sink);
    m.setMinIntervalNs(0);
    m.disable();
    m.tick(5);
    m.finish();
    EXPECT_EQ(sink.str(), "");
}
