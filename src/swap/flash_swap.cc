#include "swap/flash_swap.hh"

#include <algorithm>

#include "sim/log.hh"
#include "telemetry/journey.hh"
#include "telemetry/telemetry.hh"

namespace ariadne
{

namespace
{

telemetry::Counter c_swapout("flash.swapout");
telemetry::Counter c_swapoutDropped("flash.swapout_dropped");
telemetry::Counter c_swapin("flash.swapin");
telemetry::DurationProbe d_swapin("flash.swapin");

} // namespace

FlashSwapScheme::FlashSwapScheme(SwapContext context,
                                 FlashSwapConfig config)
    : SwapScheme(context), cfg(config), flashDev(cfg.flashBytes)
{
}

SchemeInfo
flashSwapSchemeInfo()
{
    SchemeInfo info;
    info.key = "swap";
    info.displayName = "SWAP";
    info.description = "uncompressed flash swap with readahead "
                       "clustering (low CPU, high latency and wear)";
    info.knobs = {
        {"flash_mb", "mb", "8192",
         "swap partition capacity (paper scale)"},
        {"reclaim_batch", "u64", "32", "pages written per reclaim "
                                       "batch"},
    };
    info.build = [](SwapContext ctx, const SchemeParams &params,
                    double scale) {
        FlashSwapConfig fc;
        fc.flashBytes = scaledBytes(
            params.getMiB("flash_mb", fc.flashBytes), scale);
        fc.reclaimBatch =
            params.getU64("reclaim_batch", fc.reclaimBatch);
        return std::make_unique<FlashSwapScheme>(ctx, fc);
    };
    return info;
}

FlashSwapScheme::AppState &
FlashSwapScheme::stateFor(AppId uid)
{
    auto it = std::lower_bound(
        appStates.begin(), appStates.end(), uid,
        [](const std::unique_ptr<AppState> &a, AppId u) {
            return a->uid < u;
        });
    if (it != appStates.end() && (*it)->uid == uid)
        return **it;
    return **appStates.insert(
        it, std::make_unique<AppState>(uid, &lruOpCounter));
}

FlashSwapScheme::AppState *
FlashSwapScheme::oldestAppWithPages()
{
    AppState *oldest = nullptr;
    for (const auto &state : appStates) {
        if (state->resident.empty())
            continue;
        if (!oldest || state->lastAccess < oldest->lastAccess)
            oldest = state.get();
    }
    return oldest;
}

void
FlashSwapScheme::onAdmit(PageMeta &page)
{
    AppState &app = stateFor(page.key.uid);
    app.resident.pushFront(page);
    app.lastAccess = ctx.clock.now();
}

void
FlashSwapScheme::onAccess(PageMeta &page)
{
    AppState &app = stateFor(page.key.uid);
    app.resident.touch(page);
    app.lastAccess = ctx.clock.now();
}

std::size_t
FlashSwapScheme::reclaim(std::size_t pages, bool direct)
{
    if (direct)
        ++directRuns;
    std::size_t freed = 0;
    while (freed < pages) {
        AppState *app = oldestAppWithPages();
        if (!app)
            break;
        std::size_t batch = std::min(cfg.reclaimBatch, pages - freed);
        for (std::size_t i = 0; i < batch; ++i) {
            PageMeta *victim = app->resident.popBack();
            if (!victim)
                break;
            FlashSlot slot = flashDev.write(pageSize);
            if (slot == invalidFlashSlot) {
                // Swap space exhausted: data dropped.
                c_swapoutDropped.add();
                telemetry::journeyMark(victim->key.uid,
                                       victim->key.pfn,
                                       telemetry::JourneyStep::Lost,
                                       ctx.clock.now());
                ctx.arena.setLocation(*victim, PageLocation::Lost);
                ++lost;
            } else {
                c_swapout.add();
                // Submission is cheap CPU; the program happens in the
                // device while the CPU runs other work.
                Tick submit = ctx.timing.params().flashSubmitCpuNs;
                ctx.cpu.charge(CpuRole::IoSubmit, submit);
                if (direct)
                    ctx.clock.advance(submit);
                ctx.activity.flashWriteBytes += pageSize;
                telemetry::journeyMark(victim->key.uid,
                                       victim->key.pfn,
                                       telemetry::JourneyStep::Flash,
                                       ctx.clock.now());
                ctx.arena.setLocation(*victim, PageLocation::Flash);
                victim->flashSlot = slot;
            }
            ctx.dram.release(1);
            ++freed;
        }
    }
    chargeLruOps(direct);
    return freed;
}

SwapInResult
FlashSwapScheme::swapIn(PageMeta &page)
{
    panicIf(ctx.arena.location(page) != PageLocation::Flash,
            "FlashSwapScheme::swapIn on non-flash page");
    c_swapin.add();
    telemetry::ScopedTimer timer(d_swapin);
    SwapInResult res;
    res.fromFlash = true;
    Stopwatch sw(ctx.clock);

    Tick fault = ctx.timing.params().majorFaultBaseNs;
    ctx.cpu.charge(CpuRole::FaultPath, fault);
    ctx.clock.advance(fault);

    flashDev.read(page.flashSlot);
    flashDev.free(page.flashSlot);
    page.flashSlot = invalidFlashSlot;

    // Effective per-fault read latency: one device access amortized
    // over the readahead cluster it brings in.
    unsigned cluster =
        std::max(1u, ctx.timing.params().flashReadaheadPages);
    Tick read = ctx.timing.params().flashReadPageNs / cluster;
    Tick submit = ctx.timing.params().flashSubmitCpuNs;
    ctx.cpu.charge(CpuRole::IoSubmit, submit);
    ctx.clock.advance(read + submit);
    ctx.activity.flashReadBytes += pageSize;
    ctx.activity.dramBytes += pageSize;

    if (!ctx.dram.allocate(1)) {
        reclaim(cfg.reclaimBatch, true);
        panicIf(!ctx.dram.allocate(1),
                "direct reclaim failed to free memory");
    }
    ctx.arena.setLocation(page, PageLocation::Resident);
    AppState &app = stateFor(page.key.uid);
    app.resident.pushFront(page);
    app.lastAccess = ctx.clock.now();
    chargeLruOps(true);

    res.latencyNs = sw.elapsed();
    return res;
}

void
FlashSwapScheme::onFree(PageMeta &page)
{
    switch (ctx.arena.location(page)) {
      case PageLocation::Resident: {
        AppState &app = stateFor(page.key.uid);
        if (app.resident.contains(page))
            app.resident.remove(page);
        ctx.dram.release(1);
        break;
      }
      case PageLocation::Flash:
        flashDev.free(page.flashSlot);
        page.flashSlot = invalidFlashSlot;
        break;
      default:
        break;
    }
    telemetry::journeyMark(page.key.uid, page.key.pfn,
                           telemetry::JourneyStep::Free,
                           ctx.clock.now());
    ctx.arena.setLocation(page, PageLocation::Lost);
}

} // namespace ariadne
