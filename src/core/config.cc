#include "core/config.hh"

#include <sstream>
#include <vector>

#include "sim/log.hh"

namespace ariadne
{

namespace
{

std::string
sizeToken(std::size_t bytes)
{
    if (bytes >= 1024 && bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "K";
    return std::to_string(bytes);
}

std::size_t
parseSizeToken(const std::string &tok)
{
    fatalIf(tok.empty(), "empty size token in Ariadne config");
    std::size_t mult = 1;
    std::string digits = tok;
    char last = tok.back();
    if (last == 'K' || last == 'k') {
        mult = 1024;
        digits = tok.substr(0, tok.size() - 1);
    }
    fatalIf(digits.empty(), "bad size token: " + tok);
    for (char c : digits)
        fatalIf(c < '0' || c > '9', "bad size token: " + tok);
    return static_cast<std::size_t>(std::stoull(digits)) * mult;
}

std::vector<std::string>
splitDashes(const std::string &text)
{
    std::vector<std::string> parts;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, '-'))
        parts.push_back(item);
    return parts;
}

} // namespace

std::string
AriadneConfig::toString() const
{
    std::string s = "Ariadne-";
    s += excludeHotList ? "EHL" : "AL";
    s += "-" + sizeToken(smallSize);
    s += "-" + sizeToken(mediumSize);
    s += "-" + sizeToken(largeSize);
    return s;
}

AriadneConfig
AriadneConfig::parse(const std::string &text)
{
    auto parts = splitDashes(text);
    // Accept an optional leading "Ariadne" token.
    if (!parts.empty() && (parts[0] == "Ariadne" || parts[0] == "ariadne"))
        parts.erase(parts.begin());
    fatalIf(parts.size() != 4,
            "Ariadne config must be MODE-SMALL-MEDIUM-LARGE: " + text);

    AriadneConfig cfg;
    if (parts[0] == "EHL")
        cfg.excludeHotList = true;
    else if (parts[0] == "AL")
        cfg.excludeHotList = false;
    else
        fatal("Ariadne config mode must be EHL or AL: " + text);

    cfg.smallSize = parseSizeToken(parts[1]);
    cfg.mediumSize = parseSizeToken(parts[2]);
    cfg.largeSize = parseSizeToken(parts[3]);

    fatalIf(cfg.smallSize == 0 || cfg.mediumSize == 0 ||
                cfg.largeSize == 0,
            "Ariadne chunk sizes must be > 0");
    fatalIf(cfg.smallSize > cfg.mediumSize ||
                cfg.mediumSize > cfg.largeSize,
            "Ariadne chunk sizes must be ordered small<=medium<=large");
    return cfg;
}

} // namespace ariadne
