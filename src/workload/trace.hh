/**
 * @file
 * Workload trace format.
 *
 * The paper's methodology replays traces of (PFN, ZRAM sector, UID,
 * page data) collected via MonkeyRunner (§5). Our trace records the
 * same identifying tuple plus the event kind and ground-truth hotness;
 * page data is reproduced from (uid, pfn, version) by the synthesizer,
 * so traces stay small. Binary format with a magic/version header and
 * fixed-size little-endian records; a CSV exporter aids inspection.
 *
 * Version 2 extends the format so a whole fleet run can be captured
 * once and replayed bit-identically (`ariadne_sim --record` /
 * `workload = trace`): the header carries the recording's serialized
 * ScenarioSpec, `SessionStart` records delimit fleet sessions, and the
 * primitive-op vocabulary covers everything MobileSystem executes
 * (`Execute`/`Idle` store their duration in the record's `pfn` field;
 * `Sample` marks a relaunch the driver recorded into its session
 * result). Version-1 files remain readable.
 */

#ifndef ARIADNE_WORKLOAD_TRACE_HH
#define ARIADNE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/page.hh"
#include "sim/types.hh"

namespace ariadne
{

/** Kind of a trace event. */
enum class TraceOp : std::uint8_t
{
    Launch = 0,     //!< cold launch of an app
    Relaunch = 1,   //!< hot relaunch begins
    RelaunchEnd = 2,//!< relaunch access sequence finished
    Background = 3, //!< app moved to background
    Touch = 4,      //!< page access (allocation or reuse)
    Free = 5,       //!< page freed
    // Version-2 ops (fleet record/replay).
    Execute = 6,      //!< foreground execution; `pfn` holds the Tick
                      //!< duration
    Idle = 7,         //!< idle wall time; `pfn` holds the duration
    Sample = 8,       //!< preceding relaunch was recorded as a sample
    SessionStart = 9, //!< fleet session boundary; `pfn` is the index
};

/** Stable display name of a trace op. */
const char *traceOpName(TraceOp op) noexcept;

/** One trace event. */
struct TraceRecord
{
    Tick time = 0;
    TraceOp op = TraceOp::Touch;
    AppId uid = invalidApp;
    /** Page frame for Touch; duration for Execute/Idle; session index
     * for SessionStart. */
    Pfn pfn = invalidPfn;
    std::uint32_t version = 0;
    Hotness truth = Hotness::Cold;
    /** Whether this Touch allocates the page for the first time. */
    bool newAllocation = false;

    bool operator==(const TraceRecord &o) const noexcept = default;
};

/**
 * Unreadable or corrupt trace file. Raised instead of fatal() when a
 * reader runs with OnError::Throw, so library callers (the driver, the
 * CLI) can surface the problem as a clean non-zero exit.
 */
class TraceError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Streaming writer for binary trace files (always writes v2). */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing; fatal() on failure.
     * @param spec_text Serialized ScenarioSpec of the recorded run,
     *        embedded in the header so the trace is replayable on its
     *        own. Empty for free-form traces.
     */
    explicit TraceWriter(const std::string &path,
                         const std::string &spec_text = "");
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Start fleet session @p index (appends a SessionStart record). */
    void beginSession(std::size_t index);

    /** Append one record. */
    void append(const TraceRecord &rec);

    /** Records written so far. */
    std::uint64_t count() const noexcept { return written; }

    /** Sessions begun so far. */
    std::uint32_t sessionCount() const noexcept { return sessions; }

    /** Flush and close; called by the destructor as well. */
    void close();

  private:
    std::ofstream out;
    std::uint64_t written = 0;
    std::uint32_t sessions = 0;
    bool closed = false;
};

/** Streaming reader for binary trace files (v1 and v2). */
class TraceReader
{
  public:
    /** How to report unreadable or corrupt input. */
    enum class OnError
    {
        Fatal, //!< fatal() with a message (programmatic misuse)
        Throw, //!< raise TraceError (driver / CLI paths)
    };

    /**
     * Open @p path. Missing files, bad magic, unsupported versions and
     * truncated headers are diagnosed via @p on_error.
     */
    explicit TraceReader(const std::string &path,
                         OnError on_error = OnError::Fatal);

    /**
     * Read the next record. @return false at end of file.
     * A file shorter than its header promises (truncation) or a record
     * that fails to decode is diagnosed via the reader's error policy.
     */
    bool next(TraceRecord &rec);

    /** Records promised by the file header. */
    std::uint64_t count() const noexcept { return total; }

    /** Format version of the file (1 or 2). */
    std::uint32_t version() const noexcept { return fileVersion; }

    /** Fleet sessions promised by the header (0 for v1 files). */
    std::uint32_t sessionCount() const noexcept { return sessions; }

    /** Embedded scenario text (empty for v1 or free-form traces). */
    const std::string &spec() const noexcept { return specText; }

  private:
    [[noreturn]] void fail(const std::string &msg) const;

    std::ifstream in;
    std::string path;
    OnError onError;
    std::uint64_t total = 0;
    std::uint64_t consumed = 0;
    std::uint32_t fileVersion = 0;
    std::uint32_t sessions = 0;
    std::string specText;
};

/** Read an entire trace into memory. */
std::vector<TraceRecord> readTrace(
    const std::string &path,
    TraceReader::OnError on_error = TraceReader::OnError::Fatal);

/** Write an entire trace; convenience over TraceWriter. */
void writeTrace(const std::string &path,
                const std::vector<TraceRecord> &records);

/** Export a trace as CSV with a header row. */
void exportTraceCsv(const std::string &path,
                    const std::vector<TraceRecord> &records);

} // namespace ariadne

#endif // ARIADNE_WORKLOAD_TRACE_HH
