/**
 * @file
 * Fig. 4: proportion of hot/warm/cold data in each tenth of the
 * compressed stream under ZRAM, ordered by compression time.
 *
 * Paper result: LRU-based ZRAM compresses a significant amount of
 * hot data *early* (part 0), because launch-time data looks least
 * recently used — the root cause of unnecessary decompressions.
 *
 * Each app is one ScenarioSpec variant; a `custom` hook reads the
 * ZRAM compression log after the target scenario (the event
 * vocabulary measures latencies, not analysis logs).
 */

#include "analysis/hotness_dist.hh"
#include "bench_common.hh"
#include "swap/zram.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig4", argc, argv);
    printBanner(std::cout, "Fig. 4: hot/warm/cold share per "
                           "compression-order decile (ZRAM)");

    for (const auto &name : plottedApps()) {
        AppId target = standardApp(name).uid;
        std::vector<Hotness> stream;

        driver::ScenarioSpec spec = makeSpec("zram");
        spec.name = name + "/zram";
        spec.program.push_back(driver::Event::targetScenario(name, 0));
        spec.program.push_back(driver::Event::custom(0));
        driver::SessionHook read_log =
            [&](MobileSystem &sys, SessionDriver &,
                driver::SessionResult &) {
                auto *zram = dynamic_cast<ZramScheme *>(&sys.scheme());
                for (const auto &ev : zram->compressionLog()) {
                    if (ev.key.uid == target)
                        stream.push_back(ev.truthAtCompression);
                }
            };
        report.add(runVariant(std::move(spec), {read_log}));

        auto deciles = hotnessByCompressionOrder(stream, 10);

        std::cout << "\n" << name << " (" << stream.size()
                  << " compressed pages; part 0 compressed first)\n";
        ReportTable table({"Part", "Hot", "Warm", "Cold"});
        for (std::size_t i = 0; i < deciles.size(); ++i) {
            table.addRow({std::to_string(i),
                          ReportTable::num(deciles[i].hot, 2),
                          ReportTable::num(deciles[i].warm, 2),
                          ReportTable::num(deciles[i].cold, 2)});
        }
        table.print(std::cout);
        report.addTable(name, table);
    }
    std::cout << "\nPart 0 carries a large hot share for every app: "
                 "LRU ignores relaunch hotness (paper's Observation "
                 "3).\n";
    return report.finish();
}
