/**
 * @file
 * Chrome trace-event timeline log.
 *
 * Collects host-time spans (what each worker thread was doing, when)
 * and exports them in the Chrome trace-event JSON format, loadable in
 * Perfetto / chrome://tracing / catapult. Spans are recorded into
 * per-thread buffers (one mutex acquisition per thread lifetime, no
 * locks per span) and merged at export; like the rest of telemetry the
 * log is strictly out-of-band — recording never touches simulator
 * state, so traced runs produce byte-identical reports.
 *
 * Two phases are emitted alongside thread-name metadata events:
 * "complete" spans (ph = "X": name, ts, dur) — the subset every
 * trace viewer renders as nested span timelines — and thread-scoped
 * "instant" marks (ph = "i"), used by the journey tracer to inject
 * page-lifecycle steps onto synthetic per-session tracks (those
 * carry *simulated* timestamps; host spans carry host time — the
 * shared axis is documented, not reconciled). Timestamps are
 * microseconds since the log's origin (its construction, reset by
 * clear()).
 */

#ifndef ARIADNE_TELEMETRY_TRACE_LOG_HH
#define ARIADNE_TELEMETRY_TRACE_LOG_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hh"

namespace ariadne::telemetry
{

namespace detail
{
extern std::atomic<bool> g_traceEnabled;
} // namespace detail

/** Whether TraceSpan records anything. */
inline bool
traceEnabled() noexcept
{
    return detail::g_traceEnabled.load(std::memory_order_relaxed);
}

/** Turn span recording on or off (off by default). */
void setTraceEnabled(bool on) noexcept;

/** One recorded span (or thread-metadata record when dur == 0 and
 * metadata is set). */
struct TraceEvent
{
    std::string name;
    std::uint64_t tsNs = 0;  //!< start, ns since the log origin
    std::uint64_t durNs = 0; //!< span length in ns
    std::uint32_t tid = 0;   //!< log-assigned thread id
    /** Optional single argument rendered into "args". */
    std::string argKey;
    std::uint64_t argValue = 0;
    char phase = 'X'; //!< 'X' complete span, 'i' instant mark
};

/** Process-wide span log with per-thread buffers. */
class TraceLog
{
  public:
    static TraceLog &global();

    /** ns since the log origin on the host steady clock. */
    std::uint64_t nowNs() const noexcept;

    /** Record one complete span on the calling thread. */
    void complete(const char *name, std::uint64_t start_ns,
                  std::uint64_t end_ns, const char *arg_key = nullptr,
                  std::uint64_t arg_value = 0);

    /** Record one instant mark (ph = "i") on an explicit track @p tid
     * — used at export time to inject events whose timeline identity
     * is synthetic (journey tracks per session) rather than the
     * recording thread. */
    void instant(std::string name, std::uint64_t ts_ns,
                 std::uint32_t tid, const char *arg_key = nullptr,
                 std::uint64_t arg_value = 0);

    /** Name the calling thread in the exported timeline (emitted as a
     * thread_name metadata event). No-op while tracing is disabled. */
    void nameThisThread(const std::string &name);

    /** Name a synthetic track @p tid (pair with instant()). */
    void nameSyntheticThread(std::uint32_t tid,
                             const std::string &name);

    /** All recorded spans merged across threads, by start time. */
    std::vector<TraceEvent> events() const;

    /** Thread names assigned so far as (tid, name). */
    std::vector<std::pair<std::uint32_t, std::string>>
    threadNames() const;

    /**
     * Export the Chrome trace-event document:
     * {"displayTimeUnit": "ms", "traceEvents": [...]} with one
     * metadata event per named thread and one "X" event per span
     * (ts/dur in microseconds).
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Drop every recorded span and thread name. */
    void clear();

  private:
    struct Buffer
    {
        std::uint32_t tid = 0;
        std::vector<TraceEvent> events;
        std::string threadName;
    };

    TraceLog();

    Buffer &bufferForThisThread();
    Buffer &attachBuffer();

    std::uint64_t originNs = 0;
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Buffer>> buffers;
    std::uint32_t nextTid = 1;
    /** (tid, name) for synthetic tracks (not backed by a thread). */
    std::vector<std::pair<std::uint32_t, std::string>> syntheticNames;
};

/**
 * RAII span: records [construction, destruction) on the calling
 * thread under @p name when tracing is enabled at construction.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *span_name,
                       const char *arg_key = nullptr,
                       std::uint64_t arg_value = 0) noexcept
        : name(traceEnabled() ? span_name : nullptr), argKey(arg_key),
          argValue(arg_value),
          start(name ? TraceLog::global().nowNs() : 0)
    {
    }

    ~TraceSpan()
    {
        if (name) {
            TraceLog &log = TraceLog::global();
            log.complete(name, start, log.nowNs(), argKey, argValue);
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name;
    const char *argKey;
    std::uint64_t argValue;
    std::uint64_t start;
};

} // namespace ariadne::telemetry

#endif // ARIADNE_TELEMETRY_TRACE_LOG_HH
