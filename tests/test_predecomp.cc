/** @file Unit tests for the PreDecomp staging buffer. */

#include <gtest/gtest.h>

#include <vector>

#include "core/predecomp.hh"

using namespace ariadne;

namespace
{

std::vector<std::unique_ptr<PageMeta>>
makeZpoolPages(std::size_t n)
{
    std::vector<std::unique_ptr<PageMeta>> pages;
    for (std::size_t i = 0; i < n; ++i) {
        pages.push_back(std::make_unique<PageMeta>());
        pages.back()->key = PageKey{1, i};
        pages.back()->location = PageLocation::Zpool;
    }
    return pages;
}

} // namespace

TEST(PreDecomp, StageMarksPageStaged)
{
    PreDecomp buf(4);
    auto pages = makeZpoolPages(1);
    EXPECT_TRUE(buf.stage(*pages[0]));
    EXPECT_EQ(pages[0]->location, PageLocation::Staged);
    EXPECT_TRUE(buf.contains(*pages[0]));
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.staged(), 1u);
}

TEST(PreDecomp, ZeroCapacityStagesNothing)
{
    PreDecomp buf(0);
    auto pages = makeZpoolPages(1);
    EXPECT_FALSE(buf.stage(*pages[0]));
    EXPECT_EQ(pages[0]->location, PageLocation::Zpool);
}

TEST(PreDecomp, DoubleStageRejected)
{
    PreDecomp buf(4);
    auto pages = makeZpoolPages(1);
    EXPECT_TRUE(buf.stage(*pages[0]));
    EXPECT_FALSE(buf.stage(*pages[0]));
    EXPECT_EQ(buf.staged(), 1u);
}

TEST(PreDecomp, ConsumeCountsHit)
{
    PreDecomp buf(4);
    auto pages = makeZpoolPages(1);
    buf.stage(*pages[0]);
    EXPECT_TRUE(buf.consume(*pages[0]));
    EXPECT_FALSE(buf.contains(*pages[0]));
    EXPECT_EQ(buf.hits(), 1u);
    EXPECT_FALSE(buf.consume(*pages[0])); // second consume misses
    EXPECT_DOUBLE_EQ(buf.hitRate(), 1.0);
}

TEST(PreDecomp, FifoEvictionRevertsOldest)
{
    PreDecomp buf(2);
    auto pages = makeZpoolPages(3);
    buf.stage(*pages[0]);
    buf.stage(*pages[1]);
    buf.stage(*pages[2]); // evicts pages[0]
    EXPECT_EQ(pages[0]->location, PageLocation::Zpool);
    EXPECT_EQ(pages[1]->location, PageLocation::Staged);
    EXPECT_EQ(pages[2]->location, PageLocation::Staged);
    EXPECT_EQ(buf.wasted(), 1u);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(PreDecomp, InvalidateDropsWithoutHitOrWaste)
{
    PreDecomp buf(4);
    auto pages = makeZpoolPages(2);
    buf.stage(*pages[0]);
    buf.stage(*pages[1]);
    buf.invalidate(*pages[0]);
    EXPECT_FALSE(buf.contains(*pages[0]));
    EXPECT_EQ(buf.hits(), 0u);
    EXPECT_EQ(buf.wasted(), 0u);
    EXPECT_EQ(buf.size(), 1u);
}

TEST(PreDecomp, StaleDequeEntriesSkippedOnEviction)
{
    PreDecomp buf(2);
    auto pages = makeZpoolPages(3);
    buf.stage(*pages[0]);
    buf.stage(*pages[1]);
    buf.consume(*pages[0]); // leaves a stale deque entry
    // Staging a third page must evict pages[1], not the stale entry.
    buf.stage(*pages[2]);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_TRUE(buf.contains(*pages[2]));
}

TEST(PreDecomp, HitRateOverStaged)
{
    PreDecomp buf(8);
    auto pages = makeZpoolPages(4);
    for (auto &p : pages)
        buf.stage(*p);
    buf.consume(*pages[0]);
    buf.consume(*pages[1]);
    EXPECT_DOUBLE_EQ(buf.hitRate(), 0.5);
}

TEST(PreDecompDeath, StagingResidentPagePanics)
{
    PreDecomp buf(4);
    PageMeta p;
    p.location = PageLocation::Resident;
    EXPECT_DEATH(buf.stage(p), "zpool-resident");
}
