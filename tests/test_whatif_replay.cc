/**
 * @file
 * Cross-scheme what-if replay: a recorded trace re-run under a
 * different scheme. The workload stream is bit-identical by
 * construction (touch streams come from the trace), so replay
 * determinism — same override, same bytes — and same-scheme fidelity
 * — replay equals the directly-run scenario — are hard guarantees,
 * asserted here for every registered scheme.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include <unistd.h>

#include "driver/fleet_runner.hh"
#include "swap/scheme_registry.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

/** Small but busy: warmup overflows the scaled budget, switches
 * relaunch compressed data. Recorded once per test binary. */
ScenarioSpec
recordedSpec()
{
    return ScenarioSpec::parseString(R"(
name = whatif-base
scheme = zram
scale = 0.0625
seed = 11
fleet = 2
event = warmup
event = repeat 6
event =   switch_next 200ms 100ms
event = end
)");
}

std::string
jsonOf(const FleetResult &r)
{
    std::ostringstream os;
    r.writeJson(os, /*per_session=*/false);
    return os.str();
}

/** Replay @p trace under @p scheme (empty = recorded scheme). */
FleetResult
replayUnder(const std::string &trace, const std::string &scheme)
{
    ScenarioSpec spec;
    spec.workload = WorkloadKind::Trace;
    spec.tracePath = trace;
    spec.replayScheme = scheme;
    return FleetRunner(std::move(spec)).run();
}

class WhatIfReplay : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Unique per process: ctest runs each TEST_F as its own
        // process in parallel, and each one records its own copy.
        tracePath = ::testing::TempDir() + "whatif_replay_test." +
                    std::to_string(::getpid()) + ".trace";
        recordedJson = new std::string(jsonOf(
            FleetRunner(recordedSpec()).runRecorded(tracePath)));
    }

    static void
    TearDownTestSuite()
    {
        std::remove(tracePath.c_str());
        delete recordedJson;
        recordedJson = nullptr;
    }

    static std::string tracePath;
    static std::string *recordedJson;
};

std::string WhatIfReplay::tracePath;
std::string *WhatIfReplay::recordedJson = nullptr;

} // namespace

TEST_F(WhatIfReplay, EverySchemeReplaysDeterministically)
{
    // Two replays under the same override must be byte-identical —
    // for all five registered schemes, and the same-scheme replay
    // (zram) must additionally match the recorded report.
    for (const std::string &scheme :
         SchemeRegistry::instance().names()) {
        std::string first = jsonOf(replayUnder(tracePath, scheme));
        std::string second = jsonOf(replayUnder(tracePath, scheme));
        EXPECT_EQ(first, second) << "scheme " << scheme;
        if (scheme == "zram")
            EXPECT_EQ(first, *recordedJson);
        else
            EXPECT_NE(first, *recordedJson) << "scheme " << scheme;
    }
}

TEST_F(WhatIfReplay, SameSchemeReplayMatchesDirectRun)
{
    // Recording is passive and replay is faithful: the recorded
    // report, a fresh direct run of the same spec, and a replay with
    // no override are all byte-identical.
    std::string direct = jsonOf(FleetRunner(recordedSpec()).run());
    EXPECT_EQ(direct, *recordedJson);
    EXPECT_EQ(jsonOf(replayUnder(tracePath, "")), direct);
    EXPECT_EQ(jsonOf(replayUnder(tracePath, "zram")), direct);
}

TEST_F(WhatIfReplay, OverrideChangesSchemeButNotWorkload)
{
    FleetResult ariadne_replay = replayUnder(tracePath, "ariadne");
    EXPECT_EQ(ariadne_replay.scheme, "Ariadne");
    EXPECT_EQ(ariadne_replay.scenario, "whatif-base");
    FleetResult direct = FleetRunner(recordedSpec()).run();
    // Identical workload stream: the same relaunches were measured...
    EXPECT_EQ(ariadne_replay.totalRelaunches,
              direct.totalRelaunches);
    EXPECT_EQ(ariadne_replay.relaunchMs.samples,
              direct.relaunchMs.samples);
    // ...under a genuinely different scheme.
    EXPECT_NE(jsonOf(ariadne_replay), jsonOf(direct));
}

TEST_F(WhatIfReplay, KnobOnlyOverrideTweaksTheRecordedScheme)
{
    // scheme.* lines without `scheme =` overlay the recorded knobs.
    ScenarioSpec spec;
    spec.workload = WorkloadKind::Trace;
    spec.tracePath = tracePath;
    spec.replayParams.set("zpool_mb", "48");
    FleetResult tweaked = FleetRunner(std::move(spec)).run();
    EXPECT_EQ(tweaked.scheme, "ZRAM");
    EXPECT_NE(jsonOf(tweaked), *recordedJson);
}

TEST_F(WhatIfReplay, InvalidOverridesThrowSpecError)
{
    // Unknown knob for the overridden scheme.
    ScenarioSpec bad_knob;
    bad_knob.workload = WorkloadKind::Trace;
    bad_knob.tracePath = tracePath;
    bad_knob.replayScheme = "swap";
    bad_knob.replayParams.set("zpool_mb", "48");
    EXPECT_THROW(FleetRunner(std::move(bad_knob)), SpecError);
    // Unknown scheme.
    ScenarioSpec bad_scheme;
    bad_scheme.workload = WorkloadKind::Trace;
    bad_scheme.tracePath = tracePath;
    bad_scheme.replayScheme = "nonsense";
    EXPECT_THROW(FleetRunner(std::move(bad_scheme)), SpecError);
}

TEST_F(WhatIfReplay, ReRecordingAWhatIfEmbedsTheEffectiveScheme)
{
    // Re-record a zswap what-if replay; the new trace must replay
    // under zswap without any override (the embedded spec carries the
    // scheme that actually ran).
    std::string rerecorded = ::testing::TempDir() +
                             "whatif_rerecorded_test." +
                             std::to_string(::getpid()) + ".trace";
    ScenarioSpec spec;
    spec.workload = WorkloadKind::Trace;
    spec.tracePath = tracePath;
    spec.replayScheme = "zswap";
    std::string what_if =
        jsonOf(FleetRunner(std::move(spec)).runRecorded(rerecorded));
    std::string replayed = jsonOf(replayUnder(rerecorded, ""));
    EXPECT_EQ(replayed, what_if);
    EXPECT_NE(replayed.find("\"scheme\": \"ZSWAP\""),
              std::string::npos);
    std::remove(rerecorded.c_str());
}
