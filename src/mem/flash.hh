/**
 * @file
 * Flash swap device model.
 *
 * Models the UFS 3.1 swap partition: slot-granular object storage with
 * byte counters for host writes, device writes (after write
 * amplification) and reads. Latency is charged by callers through the
 * TimingModel; this class owns capacity and endurance accounting. The
 * wear counters back the paper's flash-lifetime discussion (§2.2):
 * compressed swap-out writes fewer bytes than raw swap-out.
 */

#ifndef ARIADNE_MEM_FLASH_HH
#define ARIADNE_MEM_FLASH_HH

#include <cstdint>
#include <unordered_map>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ariadne
{

/** Handle to an object stored in the flash swap space. */
using FlashSlot = std::uint64_t;

/** Sentinel for "no slot". */
constexpr FlashSlot invalidFlashSlot = UINT64_MAX;

/** Swap-partition model with endurance accounting. */
class FlashDevice
{
  public:
    /**
     * @param capacity_bytes Size of the swap partition.
     * @param write_amplification Device writes per host write byte.
     */
    explicit FlashDevice(std::size_t capacity_bytes,
                         double write_amplification = 1.3);

    /**
     * Store an object of @p bytes.
     * @return slot handle, or invalidFlashSlot when full.
     */
    FlashSlot write(std::size_t bytes);

    /** Read an object (counts read bytes). @return its size. */
    std::size_t read(FlashSlot slot);

    /** Size of a stored object without counting a read. */
    std::size_t slotSize(FlashSlot slot) const;

    /** Discard an object. */
    void free(FlashSlot slot);

    /** True when @p slot holds a live object. */
    bool live(FlashSlot slot) const noexcept;

    std::size_t capacityBytes() const noexcept { return capacity; }
    std::size_t liveBytes() const noexcept { return used; }

    /** Bytes the host asked to write. */
    std::uint64_t
    hostWriteBytes() const noexcept
    {
        return hostWrites;
    }

    /** Bytes physically programmed (host writes x amplification). */
    std::uint64_t
    deviceWriteBytes() const noexcept
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(hostWrites) * writeAmp);
    }

    /** Bytes read back by the host. */
    std::uint64_t readBytes() const noexcept { return reads; }

    /** Number of write operations issued. */
    std::uint64_t writeOps() const noexcept { return writeOpCount; }

    /** Number of read operations issued. */
    std::uint64_t readOps() const noexcept { return readOpCount; }

  private:
    std::size_t capacity;
    double writeAmp;
    std::size_t used = 0;
    std::uint64_t nextSlot = 0;
    std::unordered_map<FlashSlot, std::size_t> slots;
    std::uint64_t hostWrites = 0;
    std::uint64_t reads = 0;
    std::uint64_t writeOpCount = 0;
    std::uint64_t readOpCount = 0;
};

} // namespace ariadne

#endif // ARIADNE_MEM_FLASH_HH
