/**
 * @file
 * Minimal JSON reader for partial reports.
 *
 * The shard/merge pipeline round-trips numbers through
 * JsonWriter::formatDouble (shortest round-trippable form), so the
 * reader must parse them back to the *identical* double — it keeps
 * each number's raw token and converts with strtod (correctly rounded)
 * on access, and integer fields re-parse the token as an exact u64 so
 * 64-bit seeds survive the trip unclamped.
 *
 * This is a deliberately small recursive-descent parser for the
 * documents this repository writes, not a general-purpose library:
 * UTF-8 passes through verbatim, \uXXXX escapes (including surrogate
 * pairs) decode to UTF-8, and malformed input throws JsonError with
 * the byte offset.
 */

#ifndef ARIADNE_REPORT_JSON_READER_HH
#define ARIADNE_REPORT_JSON_READER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "report/report_error.hh"

namespace ariadne::report
{

/** Malformed JSON text (message names the byte offset). */
class JsonError : public ReportError
{
  public:
    using ReportError::ReportError;
};

/** One parsed JSON value (a tree; object keys keep file order). */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Type type = Type::Null;

    bool isNull() const noexcept { return type == Type::Null; }
    bool isObject() const noexcept { return type == Type::Object; }
    bool isArray() const noexcept { return type == Type::Array; }

    /** Typed accessors; throw JsonError naming the expected type. */
    bool asBool() const;
    double asDouble() const;
    /** Exact unsigned integer (re-parsed from the raw token, so full
     * 64-bit values survive); throws on fractions and negatives. */
    std::uint64_t asU64() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::vector<std::pair<std::string, JsonValue>> &
    asObject() const;

    /** Member @p key of an object; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key of an object; throws JsonError when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Parse one document (trailing garbage is an error). */
    static JsonValue parseText(const std::string &text);

  private:
    friend class JsonParser;

    bool boolValue = false;
    double numberValue = 0.0;
    /** Raw number token (asU64 re-parses it exactly). */
    std::string numberText;
    std::string stringValue;
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> elements;
};

} // namespace ariadne::report

#endif // ARIADNE_REPORT_JSON_READER_HH
