/**
 * @file
 * Application profile model.
 *
 * Encodes the per-application parameters the paper measures on real
 * apps: anonymous-data volume over time (Table 1), hot/warm/cold
 * composition, hot-set similarity between relaunches (Fig. 5), sector
 * locality of relaunch accesses (Table 3), and the mix of content
 * types that determines compressibility (Insight 2's observation that
 * similar data gathers in 128-512 B regions).
 */

#ifndef ARIADNE_WORKLOAD_APP_MODEL_HH
#define ARIADNE_WORKLOAD_APP_MODEL_HH

#include <array>
#include <cstddef>
#include <string>

#include "sim/types.hh"

namespace ariadne
{

/** Kinds of data regions found inside anonymous pages. */
enum class RegionType : std::uint8_t
{
    Zero,    //!< untouched / zeroed allocations
    Text,    //!< strings, JSON, UI resources
    Pointer, //!< pointer arrays sharing high bits (heap graphs)
    Counter, //!< small integers, indices, refcounts
    Float,   //!< sensor/geometry data with shared exponents
    Media,   //!< decoded image/audio tiles (mildly redundant)
    Random,  //!< encrypted or already-compressed payloads
    NumTypes
};

/** Number of region types. */
constexpr std::size_t numRegionTypes =
    static_cast<std::size_t>(RegionType::NumTypes);

/**
 * Relative weights of region types inside an app's anonymous pages.
 * Weights need not sum to one; they are normalized on use.
 */
struct ContentMix
{
    std::array<double, numRegionTypes> weight{};

    double &
    operator[](RegionType t)
    {
        return weight[static_cast<std::size_t>(t)];
    }

    double
    operator[](RegionType t) const
    {
        return weight[static_cast<std::size_t>(t)];
    }

    /** Sum of all weights (for normalization). */
    double totalWeight() const noexcept;
};

/** Static description of one application's behaviour. */
struct AppProfile
{
    AppId uid = invalidApp;
    std::string name;

    /** Anonymous data 10 s after launch (Table 1). */
    std::size_t anonBytes10s = 0;
    /** Anonymous data 5 min after launch (Table 1). */
    std::size_t anonBytes5min = 0;

    /** Fraction of the working set that is relaunch (hot) data. */
    double hotFraction = 0.25;
    /** Fraction of the non-hot remainder used during execution. */
    double warmFraction = 0.35;

    /** Hot-set overlap between consecutive relaunches (Fig. 5). */
    double hotSimilarity = 0.70;
    /** Prior hot data reused as hot-or-warm next time (Fig. 5). */
    double reuseFraction = 0.98;

    /** Probability a relaunch access continues sequentially. */
    double seqAccessProb = 0.75;
    /** Momentum added to seqAccessProb per consecutive step (<=3). */
    double seqMomentum = 0.05;

    /** Probability an execution touch rewrites the page contents. */
    double writeProb = 0.3;

    ContentMix mix;

    /**
     * Anonymous-data volume after running for @p age ns: linear
     * interpolation between the 10 s and 5 min points, clamped.
     */
    std::size_t anonBytesAtAge(Tick age) const noexcept;
};

} // namespace ariadne

#endif // ARIADNE_WORKLOAD_APP_MODEL_HH
