#include "workload/page_synth.hh"

#include <cassert>
#include <cstring>

#include "sim/rng.hh"

namespace ariadne
{

namespace
{

/** Word stock for synthetic text regions (UI strings, JSON, logs). */
const char *const words[] = {
    "the",     "status",   "user",    "activity", "view",   "layout",
    "content", "timeline", "video",   "stream",   "cache",  "token",
    "session", "android",  "intent",  "bundle",   "frame",  "buffer",
    "surface", "texture",  "request", "response", "header", "payload",
    "channel", "message",  "profile", "account",  "widget", "handler",
    "service", "binder",   "thread",  "memory",   "bitmap", "render",
};
constexpr std::size_t numWords = sizeof(words) / sizeof(words[0]);

constexpr std::size_t numPhrases = 32;
constexpr std::size_t numPtrBases = 4;
constexpr std::size_t numTiles = 16;
constexpr std::size_t numTemplates = 64;

/** Probability a region is an exact copy of a pooled template. */
constexpr double templateProb = 0.50;

/**
 * Fill one region of @p type with @p rng-driven content. Shared by
 * template construction and per-page generation so both draw from
 * the same distributions.
 */
void
fillRegion(RegionType type, std::uint8_t *p, std::size_t region,
           const std::vector<std::string> &phrases,
           const std::vector<std::uint64_t> &ptr_bases,
           const std::vector<std::array<std::uint8_t, 64>> &tiles,
           Rng &rng)
{
    assert(phrases.size() == numPhrases &&
           ptr_bases.size() == numPtrBases &&
           tiles.size() == numTiles);
    switch (type) {
      case RegionType::Zero:
        std::memset(p, 0, region);
        break;

      case RegionType::Text: {
        // Real heaps repeat the same few strings: pick one or two
        // phrases and tile them through the region, so even a 128 B
        // window sees repetition. Pool sizes are the compile-time
        // constants (same bound values, so the draw sequence is
        // unchanged) — below() with a constant power-of-two bound
        // folds its two divisions into masks.
        const std::string &a = phrases[rng.below(numPhrases)];
        const std::string &b = phrases[rng.below(numPhrases)];
        std::size_t pos = 0;
        bool use_a = true;
        while (pos < region) {
            const std::string &phrase = use_a ? a : b;
            use_a = !rng.chance(0.3) ? use_a : !use_a;
            std::size_t len = std::min(phrase.size(), region - pos);
            std::memcpy(p + pos, phrase.data(), len);
            pos += len;
        }
        break;
      }

      case RegionType::Pointer: {
        std::uint64_t base = ptr_bases[rng.below(numPtrBases)];
        for (std::size_t pos = 0; pos + 8 <= region; pos += 8) {
            std::uint64_t v = base + (rng.below(1 << 16) & ~7ULL);
            std::memcpy(p + pos, &v, 8);
        }
        std::size_t tail = region % 8;
        if (tail)
            std::memset(p + region - tail, 0, tail);
        break;
      }

      case RegionType::Counter: {
        std::uint32_t v = static_cast<std::uint32_t>(rng.below(4096));
        // Many integer arrays are constant-filled (flags, refcounts).
        std::uint32_t stride =
            rng.chance(0.4) ? 0
                            : static_cast<std::uint32_t>(
                                  1 + rng.below(4));
        for (std::size_t pos = 0; pos + 4 <= region; pos += 4) {
            std::memcpy(p + pos, &v, 4);
            v += stride;
        }
        if (region % 4)
            std::memset(p + region - region % 4, 0, region % 4);
        break;
      }

      case RegionType::Float: {
        std::uint32_t expo =
            (static_cast<std::uint32_t>(0x3f + rng.below(4)) << 24);
        std::uint32_t prev = expo;
        for (std::size_t pos = 0; pos + 4 <= region; pos += 4) {
            std::uint32_t v = rng.chance(0.4)
                                  ? prev
                                  : expo | (rng.next32() & 0xffffff);
            std::memcpy(p + pos, &v, 4);
            prev = v;
        }
        if (region % 4)
            std::memset(p + region - region % 4, 0, region % 4);
        break;
      }

      case RegionType::Media: {
        // Half of media regions tile a single block (gradients, flat
        // fills); the rest mix tiles.
        bool single = rng.chance(0.5);
        const auto &fixed = tiles[rng.below(numTiles)];
        std::size_t pos = 0;
        while (pos < region) {
            const auto &tile =
                single ? fixed : tiles[rng.below(numTiles)];
            std::size_t len = std::min(tile.size(), region - pos);
            std::memcpy(p + pos, tile.data(), len);
            pos += len;
        }
        break;
      }

      case RegionType::Random:
      default: {
        for (std::size_t pos = 0; pos + 8 <= region; pos += 8) {
            std::uint64_t v = rng.next64();
            std::memcpy(p + pos, &v, 8);
        }
        for (std::size_t pos = region & ~std::size_t{7}; pos < region;
             ++pos) {
            p[pos] = static_cast<std::uint8_t>(rng.next32());
        }
        break;
      }
    }
}

} // namespace

PageSynthesizer::PageSynthesizer(const std::vector<AppProfile> &profiles)
{
    for (const auto &p : profiles)
        apps.emplace(p.uid, buildPools(p.uid, p.mix));

    ContentMix default_mix;
    default_mix[RegionType::Zero] = 0.15;
    default_mix[RegionType::Text] = 0.25;
    default_mix[RegionType::Pointer] = 0.20;
    default_mix[RegionType::Counter] = 0.10;
    default_mix[RegionType::Float] = 0.10;
    default_mix[RegionType::Media] = 0.15;
    default_mix[RegionType::Random] = 0.05;
    defaultPools = buildPools(invalidApp, default_mix);
}

PageSynthesizer::AppPools
PageSynthesizer::buildPools(AppId uid, const ContentMix &mix)
{
    AppPools pools;
    pools.mix = mix;
    pools.mixTotal = mix.totalWeight();

    Rng rng(mix64(0xA11CEULL ^ (std::uint64_t{uid} << 17)));

    // Phrases: word sequences shared by every page of the app.
    pools.phrases.reserve(numPhrases);
    for (std::size_t i = 0; i < numPhrases; ++i) {
        std::string phrase;
        std::size_t target = 24 + rng.below(41); // 24..64 bytes
        while (phrase.size() < target) {
            phrase += words[rng.below(numWords)];
            phrase += ' ';
        }
        pools.phrases.push_back(std::move(phrase));
    }

    // Pointer bases: plausible heap addresses, low 16 bits cleared.
    pools.ptrBases.reserve(numPtrBases);
    for (std::size_t i = 0; i < numPtrBases; ++i) {
        std::uint64_t base =
            0x7000000000ULL | (rng.next64() & 0x0fffffff0000ULL);
        pools.ptrBases.push_back(base);
    }

    // Media tiles: fixed random 64 B blocks reused across pages.
    pools.tiles.resize(numTiles);
    for (auto &tile : pools.tiles) {
        for (auto &b : tile)
            b = static_cast<std::uint8_t>(rng.next32());
    }

    // Region templates: exact duplicate regions shared across pages.
    pools.templates.reserve(numTemplates);
    for (std::size_t i = 0; i < numTemplates; ++i) {
        std::size_t region = std::size_t{128} << rng.below(3);
        // Weight template types like the app's mix, but never Random
        // (already-compressed data does not deduplicate).
        RegionType type;
        do {
            double x = rng.uniform() * pools.mixTotal;
            std::size_t t = 0;
            for (; t < numRegionTypes; ++t) {
                x -= mix.weight[t];
                if (x <= 0.0)
                    break;
            }
            type = static_cast<RegionType>(
                std::min(t, numRegionTypes - 1));
        } while (type == RegionType::Random);
        std::vector<std::uint8_t> tmpl(region);
        fillRegion(type, tmpl.data(), region, pools.phrases,
                   pools.ptrBases, pools.tiles, rng);
        pools.templates.push_back(std::move(tmpl));
    }
    return pools;
}

const PageSynthesizer::AppPools &
PageSynthesizer::poolsFor(AppId uid) const
{
    auto it = apps.find(uid);
    return it == apps.end() ? defaultPools : it->second;
}

RegionType
PageSynthesizer::pickRegionType(const AppPools &pools,
                                double roll) const noexcept
{
    double x = roll * pools.mixTotal;
    for (std::size_t t = 0; t < numRegionTypes; ++t) {
        x -= pools.mix.weight[t];
        if (x <= 0.0)
            return static_cast<RegionType>(t);
    }
    return RegionType::Text;
}

void
PageSynthesizer::materialize(const PageKey &key, std::uint32_t version,
                             MutableBytes out) const
{
    const AppPools &pools = poolsFor(key.uid);
    Rng rng(mix64((std::uint64_t{key.uid} << 40) ^
                  (key.pfn * 0x9e37ULL) ^
                  (std::uint64_t{version} << 20) ^ 0xC0FFEEULL));

    std::size_t off = 0;
    const std::size_t n = out.size();
    while (off < n) {
        // Duplicate region: byte-exact copy of a pooled template.
        if (rng.chance(templateProb) && !pools.templates.empty()) {
            // Skewed popularity: a few templates (framework data,
            // shared assets) account for most duplicate regions.
            double u = rng.uniform();
            std::size_t idx = static_cast<std::size_t>(
                u * u * static_cast<double>(pools.templates.size()));
            const auto &tmpl = pools.templates[idx];
            std::size_t len = std::min(tmpl.size(), n - off);
            std::memcpy(out.data() + off, tmpl.data(), len);
            off += len;
            continue;
        }
        // Unique region: 128, 256 or 512 bytes of one data type
        // (Insight 2's small-region granularity).
        std::size_t region = std::size_t{128} << rng.below(3);
        region = std::min(region, n - off);
        RegionType type = pickRegionType(pools, rng.uniform());
        fillRegion(type, out.data() + off, region, pools.phrases,
                   pools.ptrBases, pools.tiles, rng);
        off += region;
    }
}

} // namespace ariadne
