/**
 * @file
 * Sampled page-lifecycle journey tracing.
 *
 * Every K-th allocated page — chosen deterministically from a
 * splitmix64 hash of its (uid, pfn) key, so the sample set is a
 * function of the workload and not of thread scheduling — records
 * its state transitions with simulated timestamps: alloc, hotness
 * moves (hot/warm/cold), compression into zram, writeback to flash,
 * staging, swap-in, loss, recreation and free. The result is the
 * paper's story per page: you can watch a cold page ride the
 * FIFO into flash and pay the flash fault on relaunch.
 *
 * Same contract as the rest of src/telemetry/: strictly out-of-band
 * (sites read state, never mutate it), one relaxed load + branch
 * when disabled, per-thread bounded buffers when enabled, canonical
 * sort on export. Events feed two sinks: the `--journeys FILE` JSON
 * summary (grouped per page) and, when `--trace-events` is also on,
 * instant events injected into the Chrome trace.
 */

#ifndef ARIADNE_TELEMETRY_JOURNEY_HH
#define ARIADNE_TELEMETRY_JOURNEY_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ariadne::telemetry
{

namespace detail
{
/** Whether journey events are recorded; read relaxed per site. */
extern std::atomic<bool> g_journeyEnabled;
/** Sample every K-th page (1 = every page). */
extern std::atomic<std::uint64_t> g_journeySampleEvery;
} // namespace detail

/** Whether journey sites record anything. */
inline bool
journeyEnabled() noexcept
{
    return detail::g_journeyEnabled.load(std::memory_order_relaxed);
}

/** Turn journey recording on or off and set the sampling stride. */
void setJourneyEnabled(bool on,
                       std::uint64_t sample_every = 64) noexcept;

/** A page's lifecycle steps, in rough forward order. */
enum class JourneyStep : std::uint8_t
{
    Alloc,     ///< first materialization in DRAM
    Hot,       ///< classified / promoted to the hot list
    Warm,      ///< moved to the warm list
    Cold,      ///< moved to the cold list
    Zram,      ///< compressed into the zpool
    Writeback, ///< compressed block written back toward flash
    Flash,     ///< now resident on flash swap
    Staged,    ///< pre-decompressed into the staging buffer
    SwapIn,    ///< major fault brought it back (detail = latency ns)
    Resident,  ///< residentized as a sibling of a faulted unit
    Recreate,  ///< lost content rebuilt on access
    Lost,      ///< dropped (incompressible or out of space)
    Free       ///< released by its owning app
};

/** Stable lowercase name of @p s (JSON event vocabulary). */
const char *journeyStepName(JourneyStep s) noexcept;

namespace detail
{
/** splitmix64 finalizer over the page key. */
inline std::uint64_t
journeyMix(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}
} // namespace detail

/** Deterministic predicate: is page (uid, pfn) in the sample? */
inline bool
journeySampled(std::uint32_t uid, std::uint64_t pfn) noexcept
{
    std::uint64_t k =
        detail::g_journeySampleEvery.load(std::memory_order_relaxed);
    if (k <= 1)
        return true;
    return detail::journeyMix(
               (static_cast<std::uint64_t>(uid) << 40) ^ pfn) %
               k ==
           0;
}

/**
 * Process-wide journey event log, buffered per thread. record() is
 * only reached for sampled pages, so its cost is off the common
 * path by construction.
 */
class JourneyLog
{
  public:
    /** Max events buffered per thread before drops begin. */
    static constexpr std::size_t eventCap = std::size_t{1} << 16;

    static JourneyLog &global();

    struct Event
    {
        std::uint32_t uid = 0;
        std::uint64_t pfn = 0;
        std::uint32_t session = 0;
        JourneyStep step = JourneyStep::Alloc;
        std::uint64_t tNs = 0;
        /** Step-specific payload (e.g. swap-in latency ns). */
        std::uint64_t detail = 0;
        /** Per-thread issue order; breaks same-timestamp ties. */
        std::uint32_t seq = 0;
    };

    /** Record one step for a sampled page at simulated @p t_ns,
     * attributed to the calling thread's current session. */
    void record(std::uint32_t uid, std::uint64_t pfn, JourneyStep step,
                std::uint64_t t_ns, std::uint64_t detail = 0) noexcept;

    /** Every buffered event, merged and sorted by (session, uid,
     * pfn, time, seq) — one page's journey is contiguous and in
     * order. */
    std::vector<Event> events() const;

    /** Events lost to per-thread buffer overflow. */
    std::uint64_t droppedEvents() const;

    /** Discard all events. */
    void clear();

  private:
    struct Buffer
    {
        std::vector<Event> events;
        std::uint64_t dropped = 0;
        std::uint32_t seq = 0;
    };

    JourneyLog() = default;

    Buffer &bufferForThisThread();
    Buffer &attachBuffer();

    mutable std::mutex mu;
    std::vector<std::unique_ptr<Buffer>> buffers;
};

/** Site helper: record @p step for page (uid, pfn) iff journey
 * tracing is on and the page is in the deterministic sample. Cost
 * when disabled: one relaxed load and a branch. */
inline void
journeyMark(std::uint32_t uid, std::uint64_t pfn, JourneyStep step,
            std::uint64_t t_ns, std::uint64_t detail = 0) noexcept
{
    if (journeyEnabled() && journeySampled(uid, pfn))
        JourneyLog::global().record(uid, pfn, step, t_ns, detail);
}

} // namespace ariadne::telemetry

#endif // ARIADNE_TELEMETRY_JOURNEY_HH
