#include "mem/page_arena.hh"

#include "sim/log.hh"

namespace ariadne
{

void
PageArena::growSlab()
{
    fatalIf(slabs.size() * slabPages + slabPages >
                std::size_t{invalidPageHandle},
            "PageArena exhausted its 32-bit handle space");
    slabs.push_back(std::make_unique<PageMeta[]>(slabPages));
    spareInLastSlab = slabPages;
}

PageMeta *
PageArena::alloc()
{
    PageMeta *page;
    if (freeHead) {
        page = freeHead;
        freeHead = page->lruNext;
        std::uint32_t handle = page->arenaHandle;
        *page = PageMeta{};
        page->arenaHandle = handle;
    } else {
        if (spareInLastSlab == 0)
            growSlab();
        std::size_t idx = slabPages - spareInLastSlab;
        --spareInLastSlab;
        page = &slabs.back()[idx];
        page->arenaHandle = static_cast<PageHandle>(
            (slabs.size() - 1) * slabPages + idx);
    }
    ++liveRecords;
    return page;
}

void
PageArena::free(PageMeta &page)
{
    PageHandle handle = page.arenaHandle;
    panicIf(handle >= totalRecords() ||
                &slabs[handle >> slabShift][handle & slabMask] != &page,
            "PageArena::free on a record not from this arena");
    panicIf(page.arenaFree, "PageArena::free: double free");
    panicIf(page.lruOwner != nullptr,
            "PageArena::free: record still linked on an LruList");
    page.arenaFree = true;
    page.lruNext = freeHead;
    freeHead = &page;
    --liveRecords;
}

PageMeta &
PageArena::fromHandle(PageHandle handle)
{
    panicIf(handle >= totalRecords(),
            "PageArena::fromHandle: handle out of range");
    PageMeta &page = slabs[handle >> slabShift][handle & slabMask];
    panicIf(page.arenaFree, "PageArena::fromHandle: freed record");
    return page;
}

std::vector<Pfn>
PfnBitmap::toSortedVector() const
{
    std::vector<Pfn> out;
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        while (bits) {
            unsigned bit =
                static_cast<unsigned>(__builtin_ctzll(bits));
            out.push_back(static_cast<Pfn>(w * 64 + bit));
            bits &= bits - 1;
        }
    }
    return out;
}

} // namespace ariadne
