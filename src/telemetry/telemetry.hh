/**
 * @file
 * Low-overhead, deterministic-safe instrumentation registry.
 *
 * The telemetry layer counts what the simulator *does* (pages
 * touched, compressions run, kswapd wakeups) and how long the host
 * spends doing it (scoped-timer duration accumulators over the
 * steady clock). It is strictly out-of-band: probes only ever write
 * into telemetry's own per-thread shards, never into simulator state,
 * so enabling any amount of telemetry cannot change a report byte —
 * reports are functions of (spec, seed) and telemetry reads are
 * side-effect-free.
 *
 * Hot-path cost: a disabled probe is one relaxed load and a branch; an
 * enabled counter increment is a single relaxed fetch_add into the
 * calling thread's own shard (uncontended, no locks). Shards merge on
 * finalize: snapshot() sums every thread's slots, so the totals are
 * associative across any thread split — the same property PR 5's
 * MetricState gives sharded fleet runs, which is what will let a
 * future fleet launcher fold workers' metrics files together.
 *
 * Naming convention: `subsystem.verb` (e.g. `sys.touch`,
 * `kswapd.wakeup`, `compressor.compress.lzo`). Counters and duration
 * accumulators live in separate namespaces keyed by these names.
 */

#ifndef ARIADNE_TELEMETRY_TELEMETRY_HH
#define ARIADNE_TELEMETRY_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ariadne::telemetry
{

namespace detail
{
/** Global enable flag; read relaxed on every probe hit. */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Whether counter/duration probes record anything. */
inline bool
enabled() noexcept
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn probe recording on or off (off by default). */
void setEnabled(bool on) noexcept;

/** Monotonic nanoseconds of the host steady clock. */
inline std::uint64_t
hostNowNs() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Process-wide registry of named monotonic counters and duration
 * accumulators, sharded per thread.
 *
 * Registration (interning a name to a slot) takes a lock and is meant
 * for probe construction — typically namespace-scope statics at the
 * instrumentation site. Recording is lock-free. The slot space is
 * fixed (maxSlots) so shards never reallocate under concurrent
 * writers; exceeding it is a programming error (panic).
 */
class Registry
{
  public:
    /** Total slots across counters (1 each) and durations (2 each). */
    static constexpr std::size_t maxSlots = 512;

    /** The process-wide registry every probe records into. Inline so
     * per-touch counter hits pay a guard load, not a cross-TU call. */
    static Registry &
    global()
    {
        static Registry instance;
        return instance;
    }

    /** Intern a counter name; returns its slot. Idempotent. */
    std::size_t counterSlot(const std::string &name);

    /** Intern a duration name; returns the base of its (total-ns,
     * count) slot pair. Idempotent. */
    std::size_t durationSlot(const std::string &name);

    /** Add @p delta to @p slot in this thread's shard. */
    void
    add(std::size_t slot, std::uint64_t delta) noexcept
    {
        shardForThisThread().slots[slot].fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Record one duration of @p ns against a durationSlot() base. */
    void
    recordDuration(std::size_t base, std::uint64_t ns) noexcept
    {
        Shard &s = shardForThisThread();
        s.slots[base].fetch_add(ns, std::memory_order_relaxed);
        s.slots[base + 1].fetch_add(1, std::memory_order_relaxed);
    }

    struct CounterValue
    {
        std::string name;
        std::uint64_t value = 0;
    };

    struct DurationValue
    {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;

        /** Mean nanoseconds per recorded span (0 when empty). */
        double
        meanNs() const noexcept
        {
            return count ? static_cast<double>(totalNs) /
                               static_cast<double>(count)
                         : 0.0;
        }
    };

    /** Merged view of every shard, sorted by name. */
    struct Snapshot
    {
        std::vector<CounterValue> counters;
        std::vector<DurationValue> durations;

        /** Value of counter @p name (0 when absent). */
        std::uint64_t counter(const std::string &name) const noexcept;

        /** Duration record for @p name (zeros when absent). */
        DurationValue duration(const std::string &name) const noexcept;

        /** Fold @p o into this by name (values add) — the cross-shard
         * merge a distributed launcher performs on workers' metrics. */
        void merge(const Snapshot &o);
    };

    /** Merge-on-finalize: sum every thread's shard per slot. */
    Snapshot snapshot() const;

    /** Zero every shard's slots; registrations (and probes holding
     * slots) stay valid. */
    void reset() noexcept;

  private:
    struct Shard
    {
        std::atomic<std::uint64_t> slots[maxSlots] = {};
    };

    Registry() = default;

    /** The calling thread's shard (attached on first record). The
     * thread_local pointer is constant-initialized, so the hot path
     * is one TLS load and a null check. */
    Shard &
    shardForThisThread()
    {
        thread_local Shard *t_shard = nullptr;
        if (!t_shard)
            t_shard = &attachShard();
        return *t_shard;
    }

    Shard &attachShard();
    std::size_t intern(const std::string &name, bool duration);

    struct Entry
    {
        std::string name;
        std::size_t slot = 0;
        bool isDuration = false;
    };

    mutable std::mutex mu;
    std::vector<Entry> entries;
    std::size_t nextSlot = 0;
    /** Stable-address shards, one per thread that ever recorded. */
    std::vector<std::unique_ptr<Shard>> shards;
};

/**
 * A named monotonic counter probe. Construct once (namespace-scope
 * static at the instrumentation site) and add() on the hot path.
 */
class Counter
{
  public:
    explicit Counter(const char *name)
        : slot(Registry::global().counterSlot(name))
    {
    }

    void
    add(std::uint64_t n = 1) noexcept
    {
        if (enabled())
            Registry::global().add(slot, n);
    }

  private:
    std::size_t slot;
};

/** A named duration accumulator; pair with ScopedTimer. */
class DurationProbe
{
  public:
    explicit DurationProbe(const char *name)
        : base(Registry::global().durationSlot(name))
    {
    }

    /** Record one explicit span of @p ns. */
    void
    record(std::uint64_t ns) noexcept
    {
        if (enabled())
            Registry::global().recordDuration(base, ns);
    }

  private:
    std::size_t base;
};

/**
 * RAII host-time span feeding a DurationProbe. The enabled check is
 * taken once at construction; nesting works naturally (each timer
 * records its own probe independently).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(DurationProbe &p) noexcept
        : probe(enabled() ? &p : nullptr),
          start(probe ? hostNowNs() : 0)
    {
    }

    ~ScopedTimer()
    {
        if (probe)
            probe->record(hostNowNs() - start);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    DurationProbe *probe;
    std::uint64_t start;
};

} // namespace ariadne::telemetry

#endif // ARIADNE_TELEMETRY_TELEMETRY_HH
