/**
 * @file
 * Live fleet progress heartbeats.
 *
 * `ariadne_sim --progress` enables the global ProgressMeter; the
 * fleet runner ticks it once per folded session, and the meter emits
 * newline-terminated heartbeat lines to its sink (stderr by default)
 * at a bounded rate:
 *
 *   progress: daily 128/512 sessions (25.0%), 42.3 sessions/s, eta 9.1s
 *
 * Lines are written whole (one buffered write under a mutex), so
 * multi-process fleet launchers can interleave workers' stderr
 * streams and still parse per-shard heartbeats line by line — the
 * `label` carries the shard identity (`shard 2/4`). Progress output
 * never goes to stdout, which `--json -` / `--partial -` own for
 * pure-JSON reports, and never changes a report byte.
 */

#ifndef ARIADNE_TELEMETRY_PROGRESS_HH
#define ARIADNE_TELEMETRY_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace ariadne::telemetry
{

/** Rate-limited heartbeat emitter over a monotonically ticking
 * completion count. */
class ProgressMeter
{
  public:
    /** The process-wide meter the fleet runner ticks. */
    static ProgressMeter &global();

    /**
     * Arm the meter for a run of @p total work items (0 = unknown:
     * heartbeats omit percentage and ETA). @p label prefixes every
     * line — the scenario name, or `shard I/N` for shard workers.
     * @p sink defaults to stderr. Resets the count and the clock.
     */
    void enable(std::uint64_t total, std::string label,
                std::ostream *sink = nullptr);

    /** Disarm; tick() becomes a no-op again. */
    void disable();

    bool
    isEnabled() const noexcept
    {
        return armed.load(std::memory_order_relaxed);
    }

    /** Minimum host-time gap between heartbeat lines (default 200 ms;
     * 0 emits on every tick — tests use that for determinism). */
    void setMinIntervalNs(std::uint64_t ns) noexcept;

    /** Record @p n completed items; may emit one heartbeat line. */
    void tick(std::uint64_t n = 1);

    /** Emit the final summary line (always, when armed). */
    void finish();

    /** Completed items since enable(). */
    std::uint64_t
    completed() const noexcept
    {
        return done.load(std::memory_order_relaxed);
    }

    /**
     * Pure formatter of one heartbeat line (no trailing newline):
     * `progress: LABEL DONE/TOTAL sessions (P%), R sessions/s, eta Es`
     * with the total/percent/eta parts dropped when @p total is 0 and
     * the rate/eta parts dropped while no time has elapsed.
     */
    static std::string formatLine(const std::string &label,
                                  std::uint64_t done,
                                  std::uint64_t total,
                                  double elapsed_seconds);

    /** Pure formatter of the finish() summary line. */
    static std::string formatSummary(const std::string &label,
                                     std::uint64_t done,
                                     double elapsed_seconds);

  private:
    ProgressMeter() = default;

    void emitLine(const std::string &line);
    double elapsedSeconds() const noexcept;

    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::uint64_t> lastEmitNs{0};
    std::uint64_t total = 0;
    std::uint64_t minIntervalNs = 200'000'000;
    std::uint64_t startNs = 0;
    std::string label;
    std::ostream *sink = nullptr;
    std::mutex mu;
};

} // namespace ariadne::telemetry

#endif // ARIADNE_TELEMETRY_PROGRESS_HH
