/**
 * @file
 * Deterministic page-content synthesizer.
 *
 * Replaces the paper's captured page payloads (which we cannot ship)
 * with synthetic anonymous pages that preserve the properties the
 * paper's insights rest on:
 *
 *  - pages are composed of 128-512 B typed regions ("similar types of
 *    data are gathered within a small region", Insight 2), so small-
 *    chunk compression already finds intra-region redundancy;
 *  - apps share per-app pools (text phrases, pointer bases, media
 *    tiles), so wider compression windows discover progressively more
 *    cross-region and cross-page redundancy — the mechanism behind
 *    Fig. 6's ratio growth from ~1.7 (128 B) to ~3.9 (128 KB);
 *  - content is a pure function of (uid, pfn, version), so every
 *    experiment is reproducible and pages never need to be stored.
 */

#ifndef ARIADNE_WORKLOAD_PAGE_SYNTH_HH
#define ARIADNE_WORKLOAD_PAGE_SYNTH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/page.hh"
#include "workload/app_model.hh"

namespace ariadne
{

/** Synthesizes page contents for a set of registered applications. */
class PageSynthesizer : public PageContentSource
{
  public:
    /** Register @p apps; pages of unknown uids use a default mix. */
    explicit PageSynthesizer(const std::vector<AppProfile> &apps);

    void materialize(const PageKey &key, std::uint32_t version,
                     MutableBytes out) const override;

  private:
    /** Per-application shared pools driving cross-page redundancy. */
    struct AppPools
    {
        ContentMix mix;
        double mixTotal = 0.0;
        std::vector<std::string> phrases;     //!< text building blocks
        std::vector<std::uint64_t> ptrBases;  //!< pointer high bits
        std::vector<std::array<std::uint8_t, 64>> tiles; //!< media
        /** Whole-region templates: regions duplicated across pages
         * (shared assets / framework data; Android dedup studies find
         * 30-60% duplicate anonymous data). Only windows spanning
         * multiple regions can exploit these. */
        std::vector<std::vector<std::uint8_t>> templates;
    };

    static AppPools buildPools(AppId uid, const ContentMix &mix);

    const AppPools &poolsFor(AppId uid) const;

    RegionType pickRegionType(const AppPools &pools,
                              double roll) const noexcept;

    std::unordered_map<AppId, AppPools> apps;
    AppPools defaultPools;
};

} // namespace ariadne

#endif // ARIADNE_WORKLOAD_PAGE_SYNTH_HH
