/**
 * @file
 * Chunked compression framing.
 *
 * AdaptiveComp's central primitive: a buffer is split into fixed-size
 * chunks, each compressed independently with an inner codec. Chunks
 * that do not shrink are stored raw (per-chunk stored flag), so the
 * frame never expands pathologically. The frame is self-describing,
 * which is also what the Fig. 6 experiment sweeps (chunk sizes from
 * 128 B to 128 KB over the same input).
 *
 * Frame layout (little endian):
 *   u32 magic       'A''R''C''F'
 *   u32 chunkBytes  configured chunk size
 *   u64 originalSize
 *   u32 chunkCount
 *   u32 sizes[chunkCount]   bit31 set => chunk stored raw
 *   payload bytes, chunks back to back
 */

#ifndef ARIADNE_COMPRESS_CHUNKED_HH
#define ARIADNE_COMPRESS_CHUNKED_HH

#include <cstdint>
#include <vector>

#include "compress/codec.hh"

namespace ariadne
{

/** Static helpers for building and reading chunked frames. */
class ChunkedFrame
{
  public:
    /** Frame magic number. */
    static constexpr std::uint32_t magic = 0x46435241u; // "ARCF"

    /** Size of the fixed header before the chunk size table. */
    static constexpr std::size_t headerBytes = 20;

    /**
     * Compress @p src into a frame with @p chunk_bytes chunks.
     * @param codec Inner block codec.
     * @param src Input buffer (may be empty).
     * @param chunk_bytes Chunk size, must be > 0.
     */
    static std::vector<std::uint8_t> compress(const Codec &codec,
                                              ConstBytes src,
                                              std::size_t chunk_bytes);

    /** As compress(), reusing @p state (may be null) across chunks. */
    static std::vector<std::uint8_t> compress(const Codec &codec,
                                              ConstBytes src,
                                              std::size_t chunk_bytes,
                                              Codec::BatchState *state);

    /**
     * As the stateful compress(), but writing the frame into the
     * caller-owned @p out (replaced) and reusing @p scratch (grown as
     * needed) — no allocations once both buffers have warmed up.
     * @return the frame size (== out.size()).
     */
    static std::size_t compressInto(const Codec &codec, ConstBytes src,
                                    std::size_t chunk_bytes,
                                    Codec::BatchState *state,
                                    std::vector<std::uint8_t> &out,
                                    std::vector<std::uint8_t> &scratch);

    /**
     * Decompress an entire frame into @p dst.
     * @return original size, or 0 on corrupt frame / short dst.
     */
    static std::size_t decompress(const Codec &codec, ConstBytes frame,
                                  MutableBytes dst);

    /**
     * Decompress only chunk @p index into @p dst (sized at least
     * chunkBytes(frame)).
     * @return chunk's decompressed size, or 0 on error.
     */
    static std::size_t decompressChunk(const Codec &codec,
                                       ConstBytes frame,
                                       std::size_t index,
                                       MutableBytes dst);

    /** Original (uncompressed) size recorded in the frame; 0 if bad. */
    static std::size_t originalSize(ConstBytes frame) noexcept;

    /** Number of chunks in the frame; 0 if bad. */
    static std::size_t chunkCount(ConstBytes frame) noexcept;

    /** Configured chunk size of the frame; 0 if bad. */
    static std::size_t chunkBytes(ConstBytes frame) noexcept;

    /** True when the header is structurally valid. */
    static bool valid(ConstBytes frame) noexcept;
};

} // namespace ariadne

#endif // ARIADNE_COMPRESS_CHUNKED_HH
