#include "mem/page_arena.hh"

#include "sim/log.hh"

namespace ariadne
{

void
PageArena::growSlab()
{
    fatalIf(slabs.size() * slabPages + slabPages >
                std::size_t{invalidPageHandle},
            "PageArena exhausted its 32-bit handle space");
    slabs.push_back(std::make_unique<PageMeta[]>(slabPages));
    std::size_t records = slabs.size() * slabPages;
    soaLevel.resize(records, Hotness::Cold);
    soaLocation.resize(records, PageLocation::Resident);
    soaLastAccess.resize(records, 0);
}

PageMeta *
PageArena::alloc()
{
    PageMeta *page;
    PageHandle handle;
    if (freeHead) {
        page = freeHead;
        freeHead = page->lruNext;
        handle = page->arenaHandle;
    } else {
        // After a reset() the fresh path re-walks slabs that were
        // handed out before, so records are re-initialized here, not
        // just on free-list recycling.
        if (freshUsed == slabs.size() * slabPages)
            growSlab();
        handle = static_cast<PageHandle>(freshUsed);
        ++freshUsed;
        page = &slabs[handle >> slabShift][handle & slabMask];
    }
    *page = PageMeta{};
    page->arenaHandle = handle;
    soaLevel[handle] = Hotness::Cold;
    soaLocation[handle] = PageLocation::Resident;
    soaLastAccess[handle] = 0;
    ++liveRecords;
    return page;
}

void
PageArena::free(PageMeta &page)
{
    PageHandle handle = page.arenaHandle;
    panicIf(handle >= totalRecords() ||
                &slabs[handle >> slabShift][handle & slabMask] != &page,
            "PageArena::free on a record not from this arena");
    panicIf(page.arenaFree, "PageArena::free: double free");
    panicIf(page.lruOwner != nullptr,
            "PageArena::free: record still linked on an LruList");
    page.arenaFree = true;
    page.lruNext = freeHead;
    freeHead = &page;
    --liveRecords;
}

void
PageArena::reset() noexcept
{
    // Records do not need scrubbing here: alloc() fully re-initializes
    // a record (and its SoA slots) whichever path hands it out.
    freeHead = nullptr;
    freshUsed = 0;
    liveRecords = 0;
}

PageMeta &
PageArena::fromHandle(PageHandle handle)
{
    panicIf(handle >= totalRecords(),
            "PageArena::fromHandle: handle out of range");
    PageMeta &page = slabs[handle >> slabShift][handle & slabMask];
    panicIf(page.arenaFree, "PageArena::fromHandle: freed record");
    return page;
}

std::vector<Pfn>
PfnBitmap::toSortedVector() const
{
    std::vector<Pfn> out;
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        while (bits) {
            unsigned bit =
                static_cast<unsigned>(__builtin_ctzll(bits));
            out.push_back(static_cast<Pfn>(w * 64 + bit));
            bits &= bits - 1;
        }
    }
    return out;
}

} // namespace ariadne
