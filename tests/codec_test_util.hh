/** @file Shared helpers for codec tests. */

#ifndef ARIADNE_TESTS_CODEC_TEST_UTIL_HH
#define ARIADNE_TESTS_CODEC_TEST_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compress/codec.hh"
#include "sim/rng.hh"

namespace ariadne::testutil
{

/** Roundtrip src through codec; returns decompressed output. */
inline std::vector<std::uint8_t>
roundtrip(const Codec &codec, const std::vector<std::uint8_t> &src,
          std::size_t *compressed_size = nullptr)
{
    std::vector<std::uint8_t> comp(codec.compressBound(src.size()));
    std::size_t csize =
        codec.compress({src.data(), src.size()},
                       {comp.data(), comp.size()});
    if (compressed_size)
        *compressed_size = csize;
    std::vector<std::uint8_t> out(src.size());
    std::size_t dsize = codec.decompress({comp.data(), csize},
                                         {out.data(), out.size()});
    out.resize(dsize);
    return out;
}

/** Fully random (incompressible) buffer. */
inline std::vector<std::uint8_t>
randomBuffer(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.next32());
    return v;
}

/** Highly repetitive buffer (text-like). */
inline std::vector<std::uint8_t>
repetitiveBuffer(std::size_t n)
{
    const std::string phrase = "the quick brown fox jumps over ";
    std::vector<std::uint8_t> v;
    v.reserve(n);
    while (v.size() < n)
        v.insert(v.end(), phrase.begin(),
                 phrase.begin() +
                     static_cast<long>(
                         std::min(phrase.size(), n - v.size())));
    return v;
}

/** Mixed buffer: runs of zeros, text, and random bytes. */
inline std::vector<std::uint8_t>
mixedBuffer(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v;
    v.reserve(n);
    while (v.size() < n) {
        std::size_t run = std::min<std::size_t>(
            64 + rng.below(192), n - v.size());
        switch (rng.below(3)) {
          case 0:
            v.insert(v.end(), run, 0);
            break;
          case 1: {
            auto text = repetitiveBuffer(run);
            v.insert(v.end(), text.begin(), text.end());
            break;
          }
          default:
            for (std::size_t i = 0; i < run; ++i)
                v.push_back(static_cast<std::uint8_t>(rng.next32()));
            break;
        }
    }
    return v;
}

} // namespace ariadne::testutil

#endif // ARIADNE_TESTS_CODEC_TEST_UTIL_HH
