/**
 * @file
 * Uncompressed flash swap scheme (the paper's "SWAP" baseline).
 *
 * Reclaimed anonymous pages are written raw to the flash swap
 * partition; faults read them back with readahead clustering. CPU
 * usage is low (the CPU yields during device I/O) but latency and
 * flash wear are high — the trade-off Fig. 2/Fig. 3 quantify.
 */

#ifndef ARIADNE_SWAP_FLASH_SWAP_HH
#define ARIADNE_SWAP_FLASH_SWAP_HH

#include <memory>
#include <vector>

#include "mem/lru_list.hh"
#include "swap/scheme.hh"
#include "swap/scheme_registry.hh"

namespace ariadne
{

/** Configuration for FlashSwapScheme. */
struct FlashSwapConfig
{
    /** Swap partition capacity. */
    std::size_t flashBytes = std::size_t{8} * 1024 * 1024 * 1024;
    /** Pages written per reclaim batch. */
    std::size_t reclaimBatch = 32;
};

/** Flash-memory-based swap without compression. */
class FlashSwapScheme : public SwapScheme
{
  public:
    FlashSwapScheme(SwapContext context, FlashSwapConfig config);

    std::string name() const override { return "swap"; }

    void onAdmit(PageMeta &page) override;
    void onAccess(PageMeta &page) override;
    SwapInResult swapIn(PageMeta &page) override;
    void onFree(PageMeta &page) override;
    std::size_t reclaim(std::size_t pages, bool direct) override;

    const FlashDevice *flash() const override { return &flashDev; }

  private:
    struct AppState
    {
        AppState(AppId uid_, Counter *ops)
            : uid(uid_), resident(ops)
        {}
        AppId uid;
        LruList resident;
        Tick lastAccess = 0;
    };

    AppState &stateFor(AppId uid);
    AppState *oldestAppWithPages();

    FlashSwapConfig cfg;
    FlashDevice flashDev;
    /** Sorted by uid (intrusive list heads need stable addresses,
     * hence unique_ptr; scans run in uid order like std::map did). */
    std::vector<std::unique_ptr<AppState>> appStates;
};

/** Registry entry for `scheme = swap` (see scheme_registry.cc). */
SchemeInfo flashSwapSchemeInfo();

} // namespace ariadne

#endif // ARIADNE_SWAP_FLASH_SWAP_HH
