/** @file Unit tests for the background reclaim daemon. */

#include <gtest/gtest.h>

#include "scheme_test_util.hh"
#include "swap/kswapd.hh"
#include "swap/zram.hh"

using namespace ariadne;
using namespace ariadne::testutil;

namespace
{

ZramConfig
testConfig()
{
    ZramConfig cfg;
    cfg.zpoolBytes = 2048 * pageSize;
    cfg.proactiveFraction = 0.0;
    return cfg;
}

} // namespace

TEST(Kswapd, IdleAboveWatermark)
{
    SchemeHarness h(1000);
    ZramScheme zram(h.context(), testConfig());
    Kswapd daemon(h.context(), zram);
    h.admitPages(zram, 1, 100); // plenty of free memory left
    EXPECT_EQ(daemon.maybeRun(), 0u);
    EXPECT_EQ(daemon.wakeups(), 0u);
    EXPECT_EQ(daemon.cpuNs(), 0u);
}

TEST(Kswapd, ReclaimsToHighWatermark)
{
    SchemeHarness h(1000); // low watermark 20, high 50
    ZramScheme zram(h.context(), testConfig());
    Kswapd daemon(h.context(), zram);
    h.admitPages(zram, 1, 985); // 15 free < 20 low
    ASSERT_TRUE(h.dram.belowLowWatermark());
    std::size_t freed = daemon.maybeRun();
    EXPECT_GE(freed, 35u);
    EXPECT_TRUE(h.dram.atHighWatermark());
    EXPECT_EQ(daemon.wakeups(), 1u);
    EXPECT_EQ(daemon.reclaimedPages(), freed);
}

TEST(Kswapd, AttributesSchemeCpuToItself)
{
    SchemeHarness h(1000);
    ZramScheme zram(h.context(), testConfig());
    Kswapd daemon(h.context(), zram);
    h.admitPages(zram, 1, 985);
    daemon.maybeRun();
    // The daemon's CPU covers wakeup bookkeeping plus the
    // compression work the scheme performed on its behalf.
    EXPECT_GT(daemon.cpuNs(), h.cpu.total(CpuRole::Compression) / 2);
    EXPECT_GE(daemon.cpuNs(), 20000u); // at least the wakeup cost
}

TEST(Kswapd, AsyncReclaimDoesNotAdvanceClock)
{
    SchemeHarness h(1000);
    ZramScheme zram(h.context(), testConfig());
    Kswapd daemon(h.context(), zram);
    h.admitPages(zram, 1, 985);
    Tick before = h.clock.now();
    daemon.maybeRun();
    EXPECT_EQ(h.clock.now(), before);
}

TEST(Kswapd, RepeatedWakeups)
{
    SchemeHarness h(1000);
    ZramScheme zram(h.context(), testConfig());
    Kswapd daemon(h.context(), zram);
    auto pages = h.admitPages(zram, 1, 985);
    daemon.maybeRun();
    EXPECT_EQ(daemon.maybeRun(), 0u); // satisfied now
    // New pressure wakes it again.
    h.admitPages(zram, 2, static_cast<std::size_t>(h.dram.freePages()) -
                              10,
                 Hotness::Cold, 5000);
    EXPECT_GT(daemon.maybeRun(), 0u);
    EXPECT_EQ(daemon.wakeups(), 2u);
}
