#include "sim/timing_model.hh"

#include <cmath>

namespace ariadne
{

namespace
{

std::size_t
chunkCount(std::size_t chunk_bytes, std::size_t total_bytes) noexcept
{
    if (chunk_bytes == 0)
        return 0;
    return (total_bytes + chunk_bytes - 1) / chunk_bytes;
}

/**
 * Piecewise-exponential per-byte multiplier relative to the 4 KB
 * anchor; regime knees at 1 KB (search-state floor) and 32 KB (cache
 * spill). See CodecCost.
 */
double
chunkMultiplier(std::size_t chunk_bytes, double growth_small,
                double growth_mid, double growth_large) noexcept
{
    constexpr double knee_low = 1024.0;
    constexpr double knee_high = 32768.0;
    constexpr double anchor = 4096.0;
    double c = static_cast<double>(chunk_bytes);
    double m = 1.0;
    if (c >= knee_low) {
        double mid_span = std::log2(std::min(c, knee_high) / anchor);
        m *= std::pow(growth_mid, mid_span);
        if (c > knee_high)
            m *= std::pow(growth_large, std::log2(c / knee_high));
    } else {
        m *= std::pow(growth_mid, std::log2(knee_low / anchor));
        m *= std::pow(growth_small, std::log2(c / knee_low));
    }
    return m;
}

} // namespace

double
TimingModel::compNsPerByte(const CodecCost &cost,
                           std::size_t chunk_bytes) const noexcept
{
    return cost.compNsPerByte4k *
           chunkMultiplier(chunk_bytes, cost.compGrowthSmall,
                           cost.compGrowthMid, cost.compGrowthLarge);
}

double
TimingModel::decompNsPerByte(const CodecCost &cost,
                             std::size_t chunk_bytes) const noexcept
{
    return cost.decompNsPerByte4k *
           chunkMultiplier(chunk_bytes, cost.decompGrowthSmall,
                           cost.decompGrowthMid,
                           cost.decompGrowthLarge);
}

Tick
TimingModel::compressNs(const CodecCost &cost, std::size_t chunk_bytes,
                        std::size_t total_bytes) const noexcept
{
    if (total_bytes == 0 || chunk_bytes == 0)
        return 0;
    double per_byte = compNsPerByte(cost, chunk_bytes);
    double t = static_cast<double>(total_bytes) * per_byte +
               static_cast<double>(chunkCount(chunk_bytes, total_bytes)) *
                   static_cast<double>(prm.compChunkOverheadNs);
    return static_cast<Tick>(t);
}

Tick
TimingModel::decompressNs(const CodecCost &cost, std::size_t chunk_bytes,
                          std::size_t total_bytes) const noexcept
{
    if (total_bytes == 0 || chunk_bytes == 0)
        return 0;
    double per_byte = decompNsPerByte(cost, chunk_bytes);
    double t = static_cast<double>(total_bytes) * per_byte +
               static_cast<double>(chunkCount(chunk_bytes, total_bytes)) *
                   static_cast<double>(prm.decompChunkOverheadNs);
    return static_cast<Tick>(t);
}

Tick
TimingModel::flashReadNs(std::size_t pages) const noexcept
{
    if (pages == 0)
        return 0;
    unsigned cluster = prm.flashReadaheadPages ? prm.flashReadaheadPages : 1;
    std::size_t accesses = (pages + cluster - 1) / cluster;
    return static_cast<Tick>(accesses) * prm.flashReadPageNs;
}

Tick
TimingModel::flashWriteNs(std::size_t pages) const noexcept
{
    return static_cast<Tick>(pages) * prm.flashWritePageNs;
}

Tick
TimingModel::flashWriteBytesNs(std::size_t bytes) const noexcept
{
    std::size_t pages = (bytes + pageSize - 1) / pageSize;
    return flashWriteNs(pages);
}

} // namespace ariadne
