/**
 * @file
 * Tests for the cross-session compression memo: fingerprint
 * sensitivity, hit/miss bookkeeping, collision safety (a colliding
 * slot must miss, never return a wrong size), and the property the
 * whole design rests on — fleet reports are byte-identical with the
 * memo on or off, for every codec and thread count.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "codec_test_util.hh"
#include "driver/fleet_runner.hh"
#include "swap/compress_memo.hh"

using namespace ariadne;
using namespace ariadne::driver;
using namespace ariadne::testutil;

namespace
{

std::vector<std::uint8_t>
page(std::uint64_t seed)
{
    return mixedBuffer(pageSize, seed);
}

ConstBytes
bytes(const std::vector<std::uint8_t> &v)
{
    return {v.data(), v.size()};
}

} // namespace

TEST(CompressMemo, FingerprintSensitivity)
{
    CompressionMemo memo;
    auto p = page(1);
    std::uint64_t fp = memo.fingerprint(bytes(p), CodecKind::Lzo, 4096);

    // Same inputs, same fingerprint.
    EXPECT_EQ(memo.fingerprint(bytes(p), CodecKind::Lzo, 4096), fp);

    // Codec and chunk size change the compressed size, so they must
    // change the key.
    EXPECT_NE(memo.fingerprint(bytes(p), CodecKind::Lz4, 4096), fp);
    EXPECT_NE(memo.fingerprint(bytes(p), CodecKind::Lzo, 1024), fp);

    // Any content change re-keys.
    auto q = p;
    q[2049] ^= 1;
    EXPECT_NE(memo.fingerprint(bytes(q), CodecKind::Lzo, 4096), fp);
}

TEST(CompressMemo, MissInsertHit)
{
    CompressionMemo memo;
    auto p = page(2);
    std::uint64_t fp = memo.fingerprint(bytes(p), CodecKind::Lzo, 4096);

    EXPECT_EQ(memo.lookup(fp, bytes(p)), CompressionMemo::notFound);
    EXPECT_EQ(memo.misses(), 1u);
    EXPECT_EQ(memo.liveEntries(), 0u);

    memo.insert(fp, bytes(p), 1234);
    EXPECT_EQ(memo.liveEntries(), 1u);
    EXPECT_EQ(memo.lookup(fp, bytes(p)), 1234u);
    EXPECT_EQ(memo.hits(), 1u);
    EXPECT_EQ(memo.misses(), 1u);
}

TEST(CompressMemo, CollidingSlotMissesInsteadOfLying)
{
    // Tiny table so distinct contents land on the same slot quickly.
    CompressionMemo memo(/*slot_count=*/2);
    auto a = page(3);
    std::uint64_t fa = memo.fingerprint(bytes(a), CodecKind::Lzo, 4096);
    memo.insert(fa, bytes(a), 100);

    // Find another page whose fingerprint maps to the same slot.
    for (std::uint64_t seed = 100;; ++seed) {
        auto b = page(seed);
        std::uint64_t fb =
            memo.fingerprint(bytes(b), CodecKind::Lzo, 4096);
        if (fb == fa || (fb & 1) != (fa & 1))
            continue;

        // Occupied slot, different bytes: must miss, never return
        // a's size for b.
        EXPECT_EQ(memo.lookup(fb, bytes(b)),
                  CompressionMemo::notFound);

        // Overwrite-on-insert: b evicts a.
        memo.insert(fb, bytes(b), 200);
        EXPECT_EQ(memo.liveEntries(), 1u);
        EXPECT_EQ(memo.lookup(fb, bytes(b)), 200u);
        EXPECT_EQ(memo.lookup(fa, bytes(a)),
                  CompressionMemo::notFound);
        break;
    }
}

namespace
{

ScenarioSpec
memoSpec(const std::string &codec, bool memo_on)
{
    std::string cfg = R"(
name = test-memo
scheme = ariadne
scheme.config = EHL-1K-2K-16K
scheme.codec = )" + codec +
                      R"(
scale = 0.0625
seed = 11
fleet = 4
event = warmup
event = repeat 6
event =   switch_next 200ms 100ms
event = end
)";
    if (!memo_on)
        cfg += "compress_memo = off\n";
    return ScenarioSpec::parseString(cfg);
}

std::string
reportJson(const ScenarioSpec &spec, unsigned threads)
{
    FleetRunner runner(spec);
    FleetResult r = runner.run(0, threads, /*keep_sessions=*/true);
    std::ostringstream os;
    r.writeJson(os, /*per_session=*/true);
    return os.str();
}

} // namespace

TEST(CompressMemo, FleetReportByteIdenticalMemoOnOrOff)
{
    // The acceptance property: memoization must be invisible in every
    // report byte, whatever codec produces the sizes and however the
    // sessions are spread over workers.
    for (const std::string codec : {"lzo", "lz4", "bdi"}) {
        for (unsigned threads : {1u, 2u}) {
            std::string on =
                reportJson(memoSpec(codec, true), threads);
            std::string off =
                reportJson(memoSpec(codec, false), threads);
            EXPECT_EQ(on, off)
                << "codec=" << codec << " threads=" << threads;
        }
    }
}

TEST(CompressMemo, SpecKnobRoundtrips)
{
    ScenarioSpec on = memoSpec("lzo", true);
    ScenarioSpec off = memoSpec("lzo", false);
    EXPECT_TRUE(on.compressMemo);
    EXPECT_FALSE(off.compressMemo);
    EXPECT_FALSE(on == off);
    // toString()/parse round-trip preserves the knob.
    std::istringstream is(off.toString());
    EXPECT_FALSE(ScenarioSpec::parse(is).compressMemo);
}
