/** @file Unit tests for the base-delta-immediate codec. */

#include <gtest/gtest.h>

#include <cstring>

#include "codec_test_util.hh"
#include "compress/bdi.hh"

using namespace ariadne;
using namespace ariadne::testutil;

namespace
{

/** Build a line-aligned buffer of 64-bit words base + small deltas. */
std::vector<std::uint8_t>
baseDeltaBuffer(std::size_t lines, std::uint64_t base,
                std::uint64_t max_delta, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v(lines * BdiCodec::lineBytes);
    for (std::size_t i = 0; i + 8 <= v.size(); i += 8) {
        std::uint64_t w = base + rng.below(max_delta);
        std::memcpy(v.data() + i, &w, 8);
    }
    return v;
}

} // namespace

TEST(Bdi, ZeroLinesCollapse)
{
    BdiCodec codec;
    std::vector<std::uint8_t> src(4096, 0);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    // One header byte per 64-byte line.
    EXPECT_EQ(csize, src.size() / BdiCodec::lineBytes);
}

TEST(Bdi, Base8Delta1Compresses)
{
    BdiCodec codec;
    auto src = baseDeltaBuffer(64, 0x7f0000001000ULL, 100, 3);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    // 17 bytes per 64-byte line (header + base8 + 8 deltas).
    EXPECT_LE(csize, src.size() / 3);
}

TEST(Bdi, PointerLikeDataCompresses)
{
    BdiCodec codec;
    auto src = baseDeltaBuffer(32, 0x7123456789ABULL, 60000, 4);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    EXPECT_LT(csize, src.size());
}

TEST(Bdi, RandomFallsBackToRaw)
{
    BdiCodec codec;
    auto src = randomBuffer(4096, 17);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    // Raw fallback costs one header byte per line.
    EXPECT_LE(csize, src.size() + src.size() / BdiCodec::lineBytes + 2);
}

TEST(Bdi, Repeat8Pattern)
{
    BdiCodec codec;
    std::vector<std::uint8_t> src(1024);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i % 8);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    // 9 bytes per 64-byte line.
    EXPECT_LE(csize, src.size() / 4);
}

TEST(Bdi, ShortTrailingLine)
{
    BdiCodec codec;
    auto src = randomBuffer(100, 5); // 1 full line + 36-byte tail
    EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(Bdi, TinyInputs)
{
    BdiCodec codec;
    for (std::size_t n : {1u, 2u, 7u, 63u}) {
        auto src = randomBuffer(n, n);
        EXPECT_EQ(roundtrip(codec, src), src) << "n=" << n;
    }
}

TEST(Bdi, DecompressRejectsTruncation)
{
    BdiCodec codec;
    auto src = baseDeltaBuffer(16, 1000, 50, 6);
    std::vector<std::uint8_t> comp(codec.compressBound(src.size()));
    std::size_t csize = codec.compress({src.data(), src.size()},
                                       {comp.data(), comp.size()});
    std::vector<std::uint8_t> out(src.size());
    std::size_t got = codec.decompress({comp.data(), csize / 2},
                                       {out.data(), out.size()});
    EXPECT_LT(got, src.size());
}

TEST(Bdi, DecompressRejectsBadScheme)
{
    BdiCodec codec;
    std::vector<std::uint8_t> bogus{0xFF, 0x00, 0x01};
    std::vector<std::uint8_t> out(256);
    EXPECT_EQ(codec.decompress({bogus.data(), bogus.size()},
                               {out.data(), out.size()}),
              0u);
}

TEST(Bdi, MixedContentRoundtrips)
{
    BdiCodec codec;
    auto src = mixedBuffer(8192, 8);
    EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(Bdi, MetadataCorrect)
{
    BdiCodec codec;
    EXPECT_EQ(codec.kind(), CodecKind::Bdi);
    EXPECT_EQ(codec.name(), "bdi");
}
