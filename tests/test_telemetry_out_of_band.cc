/**
 * @file
 * Proof that telemetry is strictly out-of-band: enabling counters,
 * trace spans and the progress meter leaves every report byte
 * untouched. Reports are functions of (spec, seed) only; telemetry
 * writes go to its own shards and sinks. These tests are the
 * in-process counterpart of CI's byte-identity smoke diff.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/fleet_runner.hh"
#include "telemetry/progress.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_log.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

ScenarioSpec
smallSpec()
{
    return ScenarioSpec::parseString(R"(
name = test-oob
scheme = ariadne
ariadne = EHL-1K-2K-16K
scale = 0.0625
seed = 11
fleet = 4
event = warmup
event = repeat 6
event =   switch_next 200ms 100ms
event = end
)");
}

std::string
fleetJson(unsigned threads)
{
    FleetRunner runner(smallSpec());
    std::ostringstream os;
    runner.run(0, threads).writeJson(os, /*per_session=*/false);
    return os.str();
}

std::string
partialJson()
{
    FleetRunner runner(smallSpec());
    report::PartialReport part =
        runner.runShard(report::ShardPlan::parse("1/2"));
    std::ostringstream os;
    part.writeJson(os);
    return os.str();
}

/** RAII: telemetry + tracing + progress all on, restored on exit. */
class AllTelemetryOn
{
  public:
    explicit AllTelemetryOn(std::ostream *progress_sink)
    {
        telemetry::Registry::global().reset();
        telemetry::setEnabled(true);
        telemetry::setTraceEnabled(true);
        telemetry::TraceLog::global().clear();
        telemetry::ProgressMeter::global().enable(0, "test",
                                                  progress_sink);
        telemetry::ProgressMeter::global().setMinIntervalNs(0);
    }

    ~AllTelemetryOn()
    {
        telemetry::ProgressMeter::global().disable();
        telemetry::ProgressMeter::global().setMinIntervalNs(
            200'000'000);
        telemetry::setTraceEnabled(false);
        telemetry::setEnabled(false);
        telemetry::TraceLog::global().clear();
        telemetry::Registry::global().reset();
    }
};

} // namespace

TEST(TelemetryOutOfBand, FleetReportBytesUnchanged)
{
    std::string baseline = fleetJson(1);
    std::ostringstream progress;
    std::string instrumented;
    {
        AllTelemetryOn on(&progress);
        instrumented = fleetJson(1);
    }
    EXPECT_EQ(baseline, instrumented);
    // The run *did* observe work: counters and heartbeats are live.
    EXPECT_FALSE(progress.str().empty());
}

TEST(TelemetryOutOfBand, MultiThreadedReportBytesUnchanged)
{
    std::string baseline = fleetJson(1);
    std::ostringstream progress;
    std::string instrumented;
    {
        AllTelemetryOn on(&progress);
        instrumented = fleetJson(3);
    }
    EXPECT_EQ(baseline, instrumented);
}

TEST(TelemetryOutOfBand, PartialReportBytesUnchanged)
{
    std::string baseline = partialJson();
    std::ostringstream progress;
    std::string instrumented;
    {
        AllTelemetryOn on(&progress);
        instrumented = partialJson();
    }
    EXPECT_EQ(baseline, instrumented);
}

TEST(TelemetryOutOfBand, CountersObserveTheRun)
{
    std::ostringstream progress;
    telemetry::Registry::global().reset();
    {
        AllTelemetryOn on(&progress);
        fleetJson(1);
        auto snap = telemetry::Registry::global().snapshot();
        EXPECT_EQ(snap.counter("fleet.sessions"), 4u);
        EXPECT_GT(snap.counter("sys.touch"), 0u);
        EXPECT_GT(snap.counter("sys.launch"), 0u);
        EXPECT_GT(snap.duration("fleet.session").count, 0u);
        // Trace spans exist for every session.
        std::size_t session_spans = 0;
        for (const auto &e : telemetry::TraceLog::global().events())
            if (e.name == "session")
                ++session_spans;
        EXPECT_EQ(session_spans, 4u);
        EXPECT_EQ(telemetry::ProgressMeter::global().completed(), 4u);
    }
}

TEST(TelemetryOutOfBand, CountersAreThreadInvariant)
{
    std::ostringstream progress;
    std::uint64_t touches_1t = 0, touches_3t = 0;
    {
        AllTelemetryOn on(&progress);
        fleetJson(1);
        touches_1t =
            telemetry::Registry::global().snapshot().counter(
                "sys.touch");
    }
    {
        AllTelemetryOn on(&progress);
        fleetJson(3);
        touches_3t =
            telemetry::Registry::global().snapshot().counter(
                "sys.touch");
    }
    EXPECT_GT(touches_1t, 0u);
    EXPECT_EQ(touches_1t, touches_3t);
}
