/** @file Shared harness for swap-scheme unit tests. */

#ifndef ARIADNE_TESTS_SCHEME_TEST_UTIL_HH
#define ARIADNE_TESTS_SCHEME_TEST_UTIL_HH

#include <map>
#include <utility>
#include <vector>

#include "mem/dram.hh"
#include "mem/page_arena.hh"
#include "swap/page_compressor.hh"
#include "swap/scheme.hh"
#include "workload/apps.hh"
#include "workload/page_synth.hh"

namespace ariadne::testutil
{

/**
 * Owns everything a SwapScheme needs: clock, accounts, DRAM budget,
 * synthesizer-backed compressor, and an arena-backed page table.
 */
struct SchemeHarness
{
    explicit SchemeHarness(std::size_t dram_pages = 1024)
        : dram(dram_pages * pageSize, 0.02, 0.05),
          synth(standardApps()), compressor(synth)
    {}

    SwapContext
    context()
    {
        return SwapContext{clock, timing,     cpu,  activity,
                           dram,  compressor, arena};
    }

    /** Create (or fetch) a page owned by @p uid. */
    PageMeta &
    page(AppId uid, Pfn pfn, Hotness truth = Hotness::Cold)
    {
        auto it = pages.find({uid, pfn});
        if (it == pages.end()) {
            PageMeta *meta = arena.alloc();
            meta->key = PageKey{uid, pfn};
            meta->truth = truth;
            it = pages.emplace(std::make_pair(uid, pfn), meta).first;
        }
        return *it->second;
    }

    /** Admit @p n fresh resident pages for @p uid into @p scheme. */
    std::vector<PageMeta *>
    admitPages(SwapScheme &scheme, AppId uid, std::size_t n,
               Hotness truth = Hotness::Cold, Pfn first_pfn = 0)
    {
        std::vector<PageMeta *> result;
        result.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            PageMeta &p = page(uid, first_pfn + i, truth);
            if (!dram.allocate(1)) {
                scheme.reclaim(32, true);
                EXPECT_TRUE(dram.allocate(1));
            }
            arena.setLocation(p, PageLocation::Resident);
            scheme.onAdmit(p);
            result.push_back(&p);
        }
        return result;
    }

    Clock clock;
    TimingModel timing;
    CpuAccount cpu;
    ActivityTotals activity;
    Dram dram;
    PageSynthesizer synth;
    PageCompressor compressor;
    PageArena arena;
    /** (uid, pfn) -> arena record; keeps page() idempotent. */
    std::map<std::pair<AppId, Pfn>, PageMeta *> pages;
};

} // namespace ariadne::testutil

#endif // ARIADNE_TESTS_SCHEME_TEST_UTIL_HH
