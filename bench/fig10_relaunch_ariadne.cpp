/**
 * @file
 * Fig. 10: application relaunch latency — ZRAM vs Ariadne
 * configurations vs the optimistic DRAM bound.
 *
 * Paper result: every Ariadne configuration cuts relaunch latency by
 * ~50% versus ZRAM and lands within ~10% of DRAM; EHL and AL differ
 * negligibly for the same size configuration.
 *
 * Table 5 parameters are encoded in the configuration strings below.
 * Each (app, column) pair is one ScenarioSpec variant.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig10", argc, argv);
    printBanner(std::cout,
                "Fig. 10: relaunch latency (ms): ZRAM vs Ariadne "
                "configs vs DRAM");

    const std::vector<std::string> configs = {
        "EHL-1K-2K-16K", "AL-1K-2K-16K",  "EHL-1K-4K-16K",
        "AL-512-2K-16K", "EHL-256-2K-32K", "AL-256-2K-32K",
    };

    std::vector<std::string> columns = {"App", "ZRAM"};
    for (const auto &c : configs)
        columns.push_back(c);
    columns.push_back("DRAM");
    ReportTable table(columns);

    auto measure = [&](const std::string &app, const std::string &kind,
                       const std::string &label,
                       const std::string &acfg = "") {
        driver::FleetResult r =
            runVariant(targetSpec(app + "/" + label, kind, app, 0,
                                  acfg));
        report.add(r);
        return lastRelaunchMs(r);
    };

    double zram_sum = 0.0, best_sum = 0.0, dram_sum = 0.0;
    double ariadne_sum = 0.0, ehl_sum = 0.0;
    std::size_t ariadne_count = 0, ehl_count = 0;
    std::size_t napps = 0;

    for (const auto &name : plottedApps()) {
        std::vector<std::string> row{name};
        double zram = measure(name, "zram", "zram");
        row.push_back(ReportTable::num(zram, 1));

        double best = 1e18;
        for (const auto &c : configs) {
            double ms = measure(name, "ariadne", c, c);
            row.push_back(ReportTable::num(ms, 1));
            best = std::min(best, ms);
            ariadne_sum += ms;
            ++ariadne_count;
            if (c.rfind("EHL", 0) == 0) {
                ehl_sum += ms;
                ++ehl_count;
            }
        }
        double dram = measure(name, "dram", "dram");
        row.push_back(ReportTable::num(dram, 1));
        table.addRow(std::move(row));

        zram_sum += zram;
        best_sum += best;
        dram_sum += dram;
        ++napps;
    }
    table.print(std::cout);

    double n = static_cast<double>(napps);
    double ehl_avg = ehl_sum / static_cast<double>(ehl_count);
    std::cout << "\nEHL average: "
              << ReportTable::num(
                     100.0 * (1.0 - ehl_avg / (zram_sum / n)), 1)
              << "% reduction vs ZRAM, "
              << ReportTable::num(
                     100.0 * (ehl_avg / (dram_sum / n) - 1.0), 1)
              << "% over DRAM (paper: ~50% and <10%).\n";
    double avg_reduction =
        1.0 - (ariadne_sum / static_cast<double>(ariadne_count)) /
                  (zram_sum / n);
    std::cout << "Average Ariadne reduction vs ZRAM: "
              << ReportTable::num(100.0 * avg_reduction, 1)
              << "% (paper: ~50%); average gap to DRAM: "
              << ReportTable::num(
                     100.0 * ((ariadne_sum /
                               static_cast<double>(ariadne_count)) /
                                  (dram_sum / n) -
                              1.0),
                     1)
              << "% (paper: <10%)\n";
    report.addTable("relaunch_ms", table);
    return report.finish();
}
