/**
 * @file
 * Stable JSON schemas for perf and metrics artifacts.
 *
 * Two documents share one metadata envelope:
 *
 *  - BenchReport (`"ariadneBench": 1`) — what `bench/perf_*` binaries
 *    emit as BENCH_fleet.json / BENCH_pages.json: throughput rates
 *    (sessions/sec, pages/sec), integer totals, wall time, peak RSS,
 *    and the run's telemetry counters/durations. CI diffs these
 *    against committed baselines (bench/compare_bench.py).
 *
 *  - the `--metrics` document (`"ariadneMetrics": 1`) — the telemetry
 *    snapshot of any `ariadne_sim` run, out-of-band from the report.
 *
 * Both stamp reproducibility metadata (git SHA, build type, thread
 * count, scenario name + FNV-1a hash of the canonical spec) so every
 * point of a perf trajectory is attributable. Counter/duration maps
 * are emitted sorted by name; number formatting goes through
 * JsonWriter, so identical inputs serialize byte-identically.
 */

#ifndef ARIADNE_TELEMETRY_BENCH_REPORT_HH
#define ARIADNE_TELEMETRY_BENCH_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hh"

namespace ariadne::telemetry
{

/** Reproducibility envelope stamped into every artifact. */
struct RunMeta
{
    std::string gitSha;    //!< from build_info (configure-time)
    std::string buildType; //!< CMAKE_BUILD_TYPE of the binary
    unsigned threads = 0;  //!< worker threads the run used
    std::string scenario;  //!< scenario/spec display name
    /** FNV-1a 64 of the canonical spec text (0 = none). */
    std::uint64_t scenarioHash = 0;

    /** gitSha/buildType pre-filled from build_info. */
    static RunMeta current();
};

/** One perf-harness result document (BENCH_*.json). */
struct BenchReport
{
    static constexpr std::uint64_t schemaVersion = 1;

    std::string bench; //!< harness name: "fleet", "pages", ...
    RunMeta meta;

    double wallSeconds = 0.0;
    std::uint64_t peakRssBytes = 0;

    /** Throughput rates, e.g. ("sessionsPerSec", 812.4). */
    std::vector<std::pair<std::string, double>> rates;

    /** Integer totals, e.g. ("sessions", 64). */
    std::vector<std::pair<std::string, std::uint64_t>> totals;

    /** Telemetry of the measured run (merged across threads). */
    Registry::Snapshot telemetry;

    void writeJson(std::ostream &os) const;
};

/** Write the `--metrics` document for @p snapshot. */
void writeMetricsJson(std::ostream &os, const RunMeta &meta,
                      const Registry::Snapshot &snapshot);

/**
 * Write the `--timeline` document (`"ariadneTimeline": 1`): every
 * gauge sample point buffered by the TimelineRecorder, grouped into
 * per-gauge series of {session, tMs, v} sorted by (gauge, session,
 * time). @p interval_ms is the sampling cadence the run used (0 when
 * mixed, e.g. across sweep variants); `droppedPoints` reports ring
 * overflow so truncation is never silent.
 */
void writeTimelineJson(std::ostream &os, const RunMeta &meta,
                       std::uint64_t interval_ms);

/**
 * Write the `--journeys` document (`"ariadneJourneys": 1`): sampled
 * page lifecycles grouped per (session, uid, pfn), each a list of
 * {tMs, step[, detail]} transitions in simulated-time order.
 */
void writeJourneysJson(std::ostream &os, const RunMeta &meta,
                       std::uint64_t sample_every);

/** Peak resident set of this process in bytes (0 if unsupported). */
std::uint64_t currentPeakRssBytes() noexcept;

} // namespace ariadne::telemetry

#endif // ARIADNE_TELEMETRY_BENCH_REPORT_HH
