/** @file Unit tests for the pluggable workload layer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "driver/fleet_runner.hh"
#include "driver/workload_source.hh"
#include "workload/apps.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Small but busy scenario for record/replay tests: exercises cold
 * launches, executes, backgrounds, measured and unmeasured
 * relaunches, idles and the compound target scenario. */
ScenarioSpec
recordableSpec()
{
    return ScenarioSpec::parseString(R"(
name = recordable
scheme = ariadne
ariadne = EHL-1K-2K-16K
scale = 0.0625
seed = 11
fleet = 2
apps = YouTube, Twitter, Firefox
event = warmup
event = repeat 4
event =   switch_next 200ms 100ms
event = end
event = target_scenario YouTube 1
event = idle 500ms
event = relaunch Twitter
)");
}

ScenarioSpec
syntheticSpec()
{
    return ScenarioSpec::parseString(R"(
name = synthetic-pop
scheme = zram
scale = 0.0625
seed = 21
fleet = 8
workload = synthetic
population_apps_per_user = 3
population_footprint_spread = 0.4
population_light_share = 0.3
population_heavy_share = 0.3
population_switches = 6
population_use = 200ms
population_gap = 100ms
)");
}

ScenarioSpec
replaySpec(const std::string &trace_path)
{
    ScenarioSpec spec;
    spec.workload = WorkloadKind::Trace;
    spec.tracePath = trace_path;
    return spec;
}

std::string
jsonOf(const FleetResult &r, bool per_session = false)
{
    std::ostringstream os;
    r.writeJson(os, per_session);
    return os.str();
}

} // namespace

TEST(WorkloadSource, FactoryPicksTheSpecsKind)
{
    EXPECT_STREQ(makeWorkloadSource(recordableSpec())->kind(),
                 "profiles");
    EXPECT_STREQ(makeWorkloadSource(syntheticSpec())->kind(),
                 "synthetic");
}

TEST(WorkloadSource, ProfileSourceIsSessionInvariant)
{
    auto source = makeWorkloadSource(recordableSpec());
    EXPECT_EQ(source->sessionLimit(), 0u);
    auto a = source->sessionProfiles(0);
    auto b = source->sessionProfiles(7);
    ASSERT_EQ(a.size(), 3u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].uid, b[i].uid);
        EXPECT_EQ(a[i].anonBytes10s, b[i].anonBytes10s);
    }
}

TEST(SyntheticPopulation, SessionsDrawDistinctUsersDeterministically)
{
    SyntheticPopulationSource source(syntheticSpec());

    auto s0 = source.sessionProfiles(0);
    auto s1 = source.sessionProfiles(1);
    ASSERT_EQ(s0.size(), 3u);
    ASSERT_EQ(s1.size(), 3u);

    // Same index twice is identical (determinism)...
    auto s0_again = source.sessionProfiles(0);
    for (std::size_t i = 0; i < s0.size(); ++i) {
        EXPECT_EQ(s0[i].uid, s0_again[i].uid);
        EXPECT_EQ(s0[i].anonBytes10s, s0_again[i].anonBytes10s);
    }

    // ...while different indices differ somewhere (subset, order or
    // footprint).
    bool differs = false;
    for (std::size_t i = 0; i < s0.size(); ++i)
        differs = differs || s0[i].uid != s1[i].uid ||
                  s0[i].anonBytes10s != s1[i].anonBytes10s;
    EXPECT_TRUE(differs);

    // Footprints stay within the configured ±40 % of the base
    // profile.
    for (const AppProfile &p : s0) {
        std::size_t base = 0;
        for (const AppProfile &q : standardApps())
            if (q.uid == p.uid)
                base = q.anonBytes10s;
        ASSERT_GT(base, 0u);
        EXPECT_GE(p.anonBytes10s,
                  static_cast<std::size_t>(0.59 * base));
        EXPECT_LE(p.anonBytes10s,
                  static_cast<std::size_t>(1.41 * base));
    }
}

TEST(SyntheticPopulation, SwitchRateClassesShapeThePrograms)
{
    // Force a single class per source and check the generated shape.
    ScenarioSpec spec = syntheticSpec();
    spec.population.lightShare = 1.0;
    spec.population.heavyShare = 0.0;
    SyntheticPopulationSource light(spec);
    EXPECT_EQ(light.sessionClass(3),
              SyntheticPopulationSource::UserClass::Light);
    auto lp = light.sessionProgram(3);
    ASSERT_EQ(lp.size(), 2u);
    EXPECT_EQ(lp[0].kind, Event::Kind::Warmup);
    EXPECT_EQ(lp[1].kind, Event::Kind::Repeat);
    EXPECT_EQ(lp[1].count, 3u); // 6 / 2
    EXPECT_EQ(lp[1].body[0].gap, 200000000ULL); // 100ms * 2

    spec.population.lightShare = 0.0;
    spec.population.heavyShare = 1.0;
    SyntheticPopulationSource heavy(spec);
    EXPECT_EQ(heavy.sessionClass(3),
              SyntheticPopulationSource::UserClass::Heavy);
    auto hp = heavy.sessionProgram(3);
    EXPECT_EQ(hp[1].count, 12u); // 6 * 2
    EXPECT_EQ(hp[1].body[0].duration, 100000000ULL); // 200ms / 2
    EXPECT_EQ(hp[1].body[0].gap, 0u);

    spec.population.heavyShare = 0.0;
    SyntheticPopulationSource regular(spec);
    EXPECT_EQ(regular.sessionClass(3),
              SyntheticPopulationSource::UserClass::Regular);
    EXPECT_EQ(regular.sessionProgram(3)[1].count, 6u);
}

TEST(SyntheticPopulation, FleetJsonIsIdenticalAcrossThreadCounts)
{
    FleetRunner runner(syntheticSpec());
    std::string one = jsonOf(runner.run(8, 1));
    std::string four = jsonOf(runner.run(8, 4));
    std::string sixteen = jsonOf(runner.run(8, 16));
    EXPECT_EQ(one, four);
    EXPECT_EQ(one, sixteen);
    // And sessions genuinely differ (heterogeneous population).
    SessionResult s0 = runner.runSession(0);
    SessionResult s1 = runner.runSession(1);
    EXPECT_NE(s0.simulatedNs, s1.simulatedNs);
}

TEST(TraceRecordReplay, ReplayedFleetReportIsByteIdentical)
{
    std::string path = tempPath("ariadne_ws_replay.trace");
    FleetRunner recorder(recordableSpec());
    FleetResult recorded =
        recorder.runRecorded(path, 0, /*keep_sessions=*/true);

    FleetRunner replayer(replaySpec(path));
    EXPECT_STREQ(replayer.workload().kind(), "trace");
    // The replay adopts the recorded scenario wholesale.
    EXPECT_EQ(replayer.spec().name, "recordable");
    EXPECT_EQ(replayer.spec().fleet, 2u);
    FleetResult replayed = replayer.run(0, 1, /*keep_sessions=*/true);

    EXPECT_EQ(jsonOf(recorded, false), jsonOf(replayed, false));
    // Per-session detail (every relaunch sample) matches too.
    EXPECT_EQ(jsonOf(recorded, true), jsonOf(replayed, true));
    std::remove(path.c_str());
}

TEST(TraceRecordReplay, RecordingIsPassive)
{
    std::string path = tempPath("ariadne_ws_passive.trace");
    FleetRunner runner(recordableSpec());
    FleetResult plain = runner.run(2, 1, true);
    FleetResult recorded = runner.runRecorded(path, 2, true);
    EXPECT_EQ(jsonOf(plain, true), jsonOf(recorded, true));
    std::remove(path.c_str());
}

TEST(TraceRecordReplay, ReplayMaySubsetButNotExceedTheRecordedFleet)
{
    std::string path = tempPath("ariadne_ws_subset.trace");
    FleetRunner recorder(recordableSpec());
    FleetResult recorded = recorder.runRecorded(path, 2);

    FleetRunner replayer(replaySpec(path));
    EXPECT_EQ(replayer.workload().sessionLimit(), 2u);
    // A one-session replay equals a one-session fresh run: session 0
    // is the same device either way.
    FleetResult one = replayer.run(1, 1);
    FleetResult fresh = FleetRunner(recordableSpec()).run(1, 1);
    // Identity fields differ only in fleet size bookkeeping; compare
    // full reports after aligning nothing — they must match, both
    // fleets being [session 0] of the same spec.
    EXPECT_EQ(jsonOf(one), jsonOf(fresh));

    EXPECT_THROW(replayer.run(3, 1), SpecError);
    (void)recorded;
    std::remove(path.c_str());
}

TEST(TraceRecordReplay, SyntheticPopulationsReplayToo)
{
    std::string path = tempPath("ariadne_ws_synth.trace");
    ScenarioSpec spec = syntheticSpec();
    spec.fleet = 3;
    FleetRunner recorder(spec);
    FleetResult recorded = recorder.runRecorded(path, 0, true);

    FleetResult replayed =
        FleetRunner(replaySpec(path)).run(0, 2, true);
    EXPECT_EQ(jsonOf(recorded, true), jsonOf(replayed, true));
    std::remove(path.c_str());
}

TEST(TraceRecordReplay, ReplaySpecNameOverrideSurvives)
{
    std::string path = tempPath("ariadne_ws_rename.trace");
    FleetRunner(recordableSpec()).runRecorded(path, 2);

    ScenarioSpec spec = replaySpec(path);
    spec.name = "renamed";
    FleetResult r = FleetRunner(std::move(spec)).run();
    EXPECT_NE(jsonOf(r).find("\"scenario\": \"renamed\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceRecordReplay, RejectsTracesWithoutAnEmbeddedScenario)
{
    std::string path = tempPath("ariadne_ws_bare.trace");
    {
        TraceWriter w(path); // no spec text
        w.beginSession(0);
    }
    EXPECT_THROW(TraceReplaySource{path}, SpecError);
    std::remove(path.c_str());
}

TEST(TraceRecordReplay, RejectsMissingAndCorruptTraceFiles)
{
    EXPECT_THROW(FleetRunner(replaySpec("/nonexistent/x.trace")),
                 TraceError);
    std::string path = tempPath("ariadne_ws_corrupt.trace");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace";
    }
    EXPECT_THROW(FleetRunner(replaySpec(path)), TraceError);
    std::remove(path.c_str());
}

TEST(SweepMixes, PerVariantWorkloadAxesRunInOneReport)
{
    SweepSpec sweep = SweepSpec::parseString(R"(
sweep = mixes
scheme = zram
scale = 0.0625
seed = 5
fleet = 2

variant = standard
apps = YouTube, Twitter
event = warmup
event = repeat 2
event =   switch_next 200ms 100ms
event = end

variant = population
workload = synthetic
population_apps_per_user = 2
population_switches = 2
population_use = 200ms
population_gap = 100ms
)");
    ASSERT_EQ(sweep.variants.size(), 2u);
    EXPECT_EQ(sweep.variants[0].workload, WorkloadKind::Profiles);
    EXPECT_EQ(sweep.variants[1].workload, WorkloadKind::Synthetic);
    EXPECT_EQ(sweep.variants[1].population.appsPerUser, 2u);

    SweepResult r = FleetRunner::runSweep(sweep, 0, 2);
    ASSERT_EQ(r.variants.size(), 2u);
    EXPECT_GT(r.variants[0].totalRelaunches, 0u);
    EXPECT_GT(r.variants[1].totalRelaunches, 0u);

    std::ostringstream os;
    r.writeJson(os);
    EXPECT_NE(os.str().find("\"scenario\": \"standard\""),
              std::string::npos);
    EXPECT_NE(os.str().find("\"scenario\": \"population\""),
              std::string::npos);
}
