/**
 * @file
 * End-to-end property tests: the paper's headline claims must hold on
 * small scenario instances, and the system must stay consistent under
 * long mixed workloads for every scheme.
 */

#include <gtest/gtest.h>

#include "sys/session.hh"
#include "workload/apps.hh"

using namespace ariadne;

namespace
{

SystemConfig
config(const std::string &kind, const std::string &ariadne_cfg = "")
{
    SystemConfig cfg;
    cfg.scale = 0.03125;
    cfg.scheme = kind;
    cfg.seed = 11;
    if (!ariadne_cfg.empty())
        cfg.schemeParams.set("config", ariadne_cfg);
    return cfg;
}

} // namespace

TEST(EndToEnd, HeadlineRelaunchOrdering)
{
    // Ariadne-EHL ~halves the ZRAM relaunch and approaches DRAM.
    auto run = [](const std::string &kind) {
        MobileSystem sys(config(kind), standardApps());
        SessionDriver driver(sys);
        return driver
            .targetRelaunchScenario(standardApp("YouTube").uid, 0)
            .fullScaleNs(0.03125);
    };
    double dram = static_cast<double>(run("dram"));
    double zram = static_cast<double>(run("zram"));
    double ariadne_ms = static_cast<double>(run("ariadne"));
    EXPECT_GT(zram / dram, 1.6);  // paper: 2.1x
    EXPECT_LT(zram / dram, 3.0);
    EXPECT_LT(ariadne_ms / dram, 1.3); // paper: within 10%
    EXPECT_LT(ariadne_ms, 0.75 * zram); // paper: ~50% reduction
}

TEST(EndToEnd, AriadneCutsCompDecompCpuForHotRichApps)
{
    auto cpu = [](const std::string &kind) {
        MobileSystem sys(config(kind), standardApps());
        SessionDriver driver(sys);
        AppId uid = standardApp("YouTube").uid;
        for (unsigned v = 0; v < 3; ++v)
            driver.targetRelaunchScenario(uid, v);
        return sys.cpu().compDecompTotal();
    };
    EXPECT_LT(cpu("ariadne"), cpu("zram"));
}

TEST(EndToEnd, AriadneFlashWearBelowSwap)
{
    // Compressed (and cold-only) writeback writes less flash than raw
    // swap for the same workload.
    auto wear = [](const std::string &kind) {
        SystemConfig cfg = config(kind);
        MobileSystem sys(cfg, standardApps());
        SessionDriver driver(sys);
        driver.lightUsageScenario(Tick{20} * 1000000000ULL);
        const FlashDevice *flash = sys.scheme().flash();
        return flash ? flash->hostWriteBytes() : 0;
    };
    std::uint64_t swap_wear = wear("swap");
    std::uint64_t ariadne_wear = wear("ariadne");
    EXPECT_GT(swap_wear, 0u);
    EXPECT_LT(ariadne_wear, swap_wear);
}

class SchemeStress : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SchemeStress, LongMixedWorkloadStaysConsistent)
{
    SystemConfig cfg = config(GetParam());
    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    driver.warmUpAllApps();
    driver.lightUsageScenario(Tick{30} * 1000000000ULL);

    // Global invariants after heavy churn.
    EXPECT_LE(sys.dram().usedPages(), sys.dram().capacityPages());
    if (const Zpool *pool = sys.scheme().zpool()) {
        EXPECT_LE(pool->storedBytes(), pool->usedBytes());
        EXPECT_LE(pool->usedBytes(), pool->capacityBytes());
    }
    ActivityTotals totals = sys.activityTotals();
    EXPECT_EQ(totals.wallTimeNs, sys.clock().now());
    EXPECT_GT(totals.cpuBusyNs, 0u);

    // Relaunches still succeed for every app afterwards.
    for (AppId uid : sys.appIds()) {
        RelaunchStats st = sys.appRelaunch(uid);
        EXPECT_GT(st.pagesTouched, 0u);
        sys.appBackground(uid);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeStress,
                         ::testing::Values("dram",
                                           "swap",
                                           "zram",
                                           "zswap",
                                           "ariadne"));

class AriadneConfigSweep
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AriadneConfigSweep, EveryTableFiveConfigWorks)
{
    SystemConfig cfg = config("ariadne", GetParam());
    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    RelaunchStats st =
        driver.targetRelaunchScenario(standardApp("Twitter").uid, 0);
    EXPECT_GT(st.pagesTouched, 0u);
    EXPECT_GT(st.totalNs, 0u);
    EXPECT_EQ(sys.scheme().name(),
              std::string("Ariadne-") + GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    TableFive, AriadneConfigSweep,
    ::testing::Values("EHL-256-2K-16K", "EHL-512-2K-16K",
                      "EHL-1K-2K-16K", "EHL-1K-4K-16K",
                      "EHL-1K-2K-32K", "EHL-1K-4K-32K",
                      "AL-256-2K-16K", "AL-512-2K-16K",
                      "AL-1K-2K-16K", "AL-1K-4K-32K"));

TEST(EndToEnd, ZswapKeepsMoreDataThanZram)
{
    // ZSWAP extends capacity via flash writeback: under identical
    // pressure it loses no (or fewer) pages than plain ZRAM with a
    // tiny pool.
    auto lost = [](const std::string &kind) {
        SystemConfig cfg = config(kind);
        cfg.schemeParams.set("zpool_mb", "192");
        MobileSystem sys(cfg, standardApps());
        SessionDriver driver(sys);
        driver.warmUpAllApps();
        return sys.scheme().lostPages();
    };
    EXPECT_LE(lost("zswap"), lost("zram"));
}

TEST(EndToEnd, PreDecompAblation)
{
    // D3 ablation: disabling PreDecomp cannot make relaunches faster.
    SystemConfig with = config("ariadne", "AL-1K-2K-16K");
    SystemConfig without = with;
    without.schemeParams.set("predecomp", "false");
    auto run = [](const SystemConfig &cfg) {
        MobileSystem sys(cfg, standardApps());
        SessionDriver driver(sys);
        return driver
            .targetRelaunchScenario(standardApp("YouTube").uid, 0)
            .totalNs;
    };
    EXPECT_LE(run(with), run(without));
}

TEST(EndToEnd, Fig5StatisticsEmergeFromGenerator)
{
    // System-level check of Insight 1 on a running instance.
    MobileSystem sys(config("zram"), standardApps());
    SessionDriver driver(sys);
    AppId yt = standardApp("YouTube").uid;
    driver.targetRelaunchScenario(yt, 0);
    sys.appRelaunch(yt);
    AppInstance &inst = sys.app(yt);
    EXPECT_GT(inst.previousHotSet().size(), 0u);
    EXPECT_EQ(inst.hotSet().size(), inst.previousHotSet().size());
}
