/** @file Unit tests for similarity, locality, deciles and reports. */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/hotness_dist.hh"
#include "analysis/locality.hh"
#include "analysis/report.hh"
#include "analysis/similarity.hh"

using namespace ariadne;

TEST(Similarity, IdenticalSetsAreOne)
{
    std::vector<Pfn> a{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(hotDataSimilarity(a, a), 1.0);
}

TEST(Similarity, DisjointSetsAreZero)
{
    std::vector<Pfn> a{1, 2}, b{3, 4};
    EXPECT_DOUBLE_EQ(hotDataSimilarity(a, b), 0.0);
}

TEST(Similarity, NormalizedBySecondRelaunch)
{
    std::vector<Pfn> prev{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<Pfn> cur{1, 2, 9, 10};
    // 2 of cur's 4 pages recur.
    EXPECT_DOUBLE_EQ(hotDataSimilarity(prev, cur), 0.5);
}

TEST(Similarity, EmptySetsAreZero)
{
    EXPECT_DOUBLE_EQ(hotDataSimilarity({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(reusedData({}, {1}, {2}), 0.0);
}

TEST(Similarity, ReusedDataCountsHotAndWarm)
{
    std::vector<Pfn> prev_hot{1, 2, 3, 4};
    std::vector<Pfn> cur_hot{1, 2};
    std::vector<Pfn> cur_warm{3};
    // 3 of 4 prior hot pages survive as hot-or-warm.
    EXPECT_DOUBLE_EQ(reusedData(prev_hot, cur_hot, cur_warm), 0.75);
}

TEST(Similarity, CoverageAndAccuracy)
{
    std::vector<Pfn> predicted{1, 2, 3, 4};
    std::vector<Pfn> actual{1, 2, 5, 6};
    EXPECT_DOUBLE_EQ(predictionCoverage(predicted, actual), 0.5);
    std::vector<Pfn> used{1, 2, 3, 9};
    EXPECT_DOUBLE_EQ(predictionAccuracy(predicted, used), 0.75);
}

TEST(Locality, AdjacencyWindow)
{
    EXPECT_TRUE(sectorsAdjacent(10, 10));
    EXPECT_TRUE(sectorsAdjacent(10, 11));
    EXPECT_TRUE(sectorsAdjacent(10, 13));
    EXPECT_FALSE(sectorsAdjacent(10, 14));
    EXPECT_FALSE(sectorsAdjacent(10, 9)); // backwards never counts
}

TEST(Locality, PerfectSequenceIsOne)
{
    std::vector<Sector> seq{1, 2, 3, 4, 5, 6};
    EXPECT_DOUBLE_EQ(consecutiveAccessProbability(seq, 2), 1.0);
    EXPECT_DOUBLE_EQ(consecutiveAccessProbability(seq, 4), 1.0);
}

TEST(Locality, RandomJumpsAreZero)
{
    std::vector<Sector> seq{1, 100, 5, 900, 50};
    EXPECT_DOUBLE_EQ(consecutiveAccessProbability(seq, 2), 0.0);
}

TEST(Locality, FourConsecutiveIsHarderThanTwo)
{
    // Runs of 3 then a jump: P2 high, P4 zero.
    std::vector<Sector> seq;
    Sector s = 0;
    for (int run = 0; run < 20; ++run) {
        seq.push_back(s);
        seq.push_back(s + 1);
        seq.push_back(s + 2);
        s += 100;
    }
    double p2 = consecutiveAccessProbability(seq, 2);
    double p4 = consecutiveAccessProbability(seq, 4);
    EXPECT_GT(p2, 0.5);
    EXPECT_LT(p4, 0.1);
}

TEST(Locality, ShortStreamsReturnZero)
{
    EXPECT_DOUBLE_EQ(consecutiveAccessProbability({}, 2), 0.0);
    EXPECT_DOUBLE_EQ(consecutiveAccessProbability({5}, 2), 0.0);
}

TEST(HotnessDist, DecilesPartitionStream)
{
    std::vector<Hotness> stream;
    for (int i = 0; i < 50; ++i)
        stream.push_back(Hotness::Hot);
    for (int i = 0; i < 50; ++i)
        stream.push_back(Hotness::Cold);
    auto parts = hotnessByCompressionOrder(stream, 10);
    ASSERT_EQ(parts.size(), 10u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(parts[i].hot, 1.0);
        EXPECT_DOUBLE_EQ(parts[i].cold, 0.0);
    }
    for (int i = 5; i < 10; ++i)
        EXPECT_DOUBLE_EQ(parts[i].cold, 1.0);
}

TEST(HotnessDist, SharesSumToOne)
{
    std::vector<Hotness> stream{Hotness::Hot, Hotness::Warm,
                                Hotness::Cold, Hotness::Hot,
                                Hotness::Warm};
    auto parts = hotnessByCompressionOrder(stream, 2);
    for (const auto &p : parts)
        EXPECT_NEAR(p.hot + p.warm + p.cold, 1.0, 1e-9);
}

TEST(HotnessDist, EmptyStreamIsAllZero)
{
    auto parts = hotnessByCompressionOrder({}, 10);
    ASSERT_EQ(parts.size(), 10u);
    EXPECT_DOUBLE_EQ(parts[0].hot + parts[0].warm + parts[0].cold, 0.0);
}

TEST(Report, AlignedOutput)
{
    ReportTable t({"Name", "Value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.50"});
    std::ostringstream os;
    t.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("Name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, CsvOutput)
{
    ReportTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Report, NumFormatsPrecision)
{
    EXPECT_EQ(ReportTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(ReportTable::num(2.0, 0), "2");
}

TEST(ReportDeath, MismatchedRowWidthIsFatal)
{
    ReportTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width");
}
