/**
 * @file
 * FleetRunner — executes a ScenarioSpec as a fleet of independent
 * simulated devices and aggregates the results.
 *
 * Each fleet session owns a full MobileSystem seeded from
 * ScenarioSpec::sessionSeed(index), so a session's behaviour depends
 * only on (spec, index). Sessions are distributed over a thread pool
 * and *streamed* into the aggregate in session-index order through a
 * bounded reorder window: workers park an out-of-order result until
 * its predecessors are folded, so peak retained SessionResults stay
 * O(threads) no matter how large the fleet is, while the aggregate
 * (including every percentile and its JSON rendering) remains
 * bit-identical whether the fleet ran on one thread or sixteen.
 *
 * Sweeps (SweepSpec) run their variants back to back and report them
 * side by side in one JSON document.
 */

#ifndef ARIADNE_DRIVER_FLEET_RUNNER_HH
#define ARIADNE_DRIVER_FLEET_RUNNER_HH

#include <functional>
#include <map>
#include <ostream>

#include "driver/sweep_spec.hh"
#include "sys/session.hh"

namespace ariadne::driver
{

/** One measured relaunch inside a session. */
struct RelaunchSample
{
    AppId uid = invalidApp;
    /** Paper-scale latency in milliseconds. */
    double fullScaleMs = 0.0;
    RelaunchStats stats;
};

/** Everything one fleet session produced. */
struct SessionResult
{
    std::size_t index = 0;
    std::uint64_t seed = 0;

    /** Measured relaunches, in program order. */
    std::vector<RelaunchSample> relaunches;

    Tick compCpuNs = 0;
    Tick decompCpuNs = 0;
    Tick kswapdCpuNs = 0;
    Tick grandCpuNs = 0;
    double energyJ = 0.0;
    Tick simulatedNs = 0;

    /** Scheme-wide compression accounting. */
    CompStats comp;
    /** Per-app compression accounting (Fig. 15 reads the target's). */
    std::map<AppId, CompStats> appComp;

    std::uint64_t stagedHits = 0;
    std::uint64_t majorFaults = 0;
    std::uint64_t flashFaults = 0;
    std::uint64_t lostPages = 0;
    std::uint64_t directReclaims = 0;

    /** Comp+decomp CPU in paper-scale milliseconds. */
    double compDecompCpuMs(double scale) const noexcept;
};

/** p50/p90/p99 plus the usual moments of one aggregated metric. */
struct MetricSummary
{
    std::uint64_t samples = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    /** Summarize a Distribution. */
    static MetricSummary of(const Distribution &d);
};

/**
 * Per-session hook a `custom` event calls back into:
 * hooks[event.hook](system, driver, result). The benches use these
 * for measurements the declarative vocabulary cannot express
 * (analysis-log inspection, touch captures, workload-layer probes).
 * Hooks run on the worker thread of their session; a hook that
 * writes bench state shared across sessions must synchronize or run
 * single-session fleets.
 */
using SessionHook =
    std::function<void(MobileSystem &, SessionDriver &, SessionResult &)>;

/** Aggregate outcome of a fleet run. */
struct FleetResult
{
    std::string scenario;
    std::string scheme;
    std::string ariadneConfig;
    double scale = 0.0625;
    std::uint64_t seed = 0;
    std::size_t fleet = 0;

    /** Per-session records; only populated when the run was asked to
     * keep them (they defeat streaming aggregation's O(threads)
     * memory bound). */
    std::vector<SessionResult> sessions;

    /** High-water mark of SessionResults alive in the streaming
     * reorder window (bounded by 2 * threads; 1 for single-threaded
     * runs). Diagnostic only — never serialized, so reports stay
     * thread-invariant. */
    std::size_t peakRetainedSessions = 0;

    /** Across every measured relaunch of every session (paper-scale
     * milliseconds). */
    MetricSummary relaunchMs;
    /** Per-session distributions (paper-scale ms / Joules). */
    MetricSummary compDecompCpuMs;
    MetricSummary kswapdCpuMs;
    MetricSummary energyJ;
    MetricSummary compRatio;

    std::uint64_t totalRelaunches = 0;
    std::uint64_t totalStagedHits = 0;
    std::uint64_t totalMajorFaults = 0;
    std::uint64_t totalFlashFaults = 0;
    std::uint64_t totalLostPages = 0;
    std::uint64_t totalDirectReclaims = 0;

    /**
     * Machine-readable report. @p per_session additionally emits one
     * record per session (seeds, CPU, relaunch samples) — the run
     * must have kept sessions for that to be non-empty.
     */
    void writeJson(std::ostream &os, bool per_session = false) const;

    /** Emit the report object into an open writer (SweepResult embeds
     * variant reports this way). */
    void writeJson(class JsonWriter &w, bool per_session = false) const;
};

/** Side-by-side outcome of a multi-scenario sweep. */
struct SweepResult
{
    std::string name;
    /** One aggregate per variant, in SweepSpec order. */
    std::vector<FleetResult> variants;

    /** One report comparing every variant side by side. */
    void writeJson(std::ostream &os, bool per_session = false) const;
};

/** Runs ScenarioSpecs as session fleets. */
class FleetRunner
{
  public:
    /**
     * @param spec Scenario to run.
     * @param hooks Targets for the spec's `custom` events (a program
     *        referencing hooks[i] with i >= hooks.size() panics).
     */
    explicit FleetRunner(ScenarioSpec spec,
                         std::vector<SessionHook> hooks = {});

    /**
     * Run @p fleet sessions on @p threads worker threads, streaming
     * results into the aggregate in session-index order.
     * @param fleet Session count; 0 uses the spec's fleet size.
     * @param threads Worker threads; 0 picks the hardware count.
     * @param keep_sessions Retain every SessionResult in the result
     *        (needed for per-session JSON; costs O(fleet) memory).
     * Aggregates are independent of @p threads.
     */
    FleetResult run(std::size_t fleet = 0, unsigned threads = 1,
                    bool keep_sessions = false) const;

    /** Run the single session @p index (deterministic in isolation). */
    SessionResult runSession(std::size_t index) const;

    /**
     * Run every variant of @p sweep back to back (variant order is
     * the spec's declaration order; aggregates are thread-invariant).
     * @param fleet Per-variant session count; 0 uses each variant's
     *        own fleet size.
     */
    static SweepResult runSweep(const SweepSpec &sweep,
                                std::size_t fleet = 0,
                                unsigned threads = 1,
                                bool keep_sessions = false);

    const ScenarioSpec &spec() const noexcept { return scenario; }

  private:
    ScenarioSpec scenario;
    std::vector<SessionHook> sessionHooks;
};

} // namespace ariadne::driver

#endif // ARIADNE_DRIVER_FLEET_RUNNER_HH
