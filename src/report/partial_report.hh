/**
 * @file
 * PartialReport — one shard's mergeable share of a run.
 *
 * A FleetPartial captures everything a shard aggregated about one
 * fleet: run identity (scenario/scheme/scale/seed/fleet, percentile
 * mode), the shard's contiguous session range, the integer totals and
 * one MetricState per report metric. Folding sessions into a partial
 * is the *only* aggregation implementation — FleetRunner uses it for
 * in-process runs (a trivial 1/1 shard), `ariadne_sim --shard i/N
 * --partial out.json` serializes one, and ReportMerger folds K of
 * them back into the exact final report schema FleetRunner emits.
 *
 * A PartialReport wraps either one fleet shard (`kind = fleet`,
 * sessions partitioned by ShardPlan::sessionRange) or a sweep shard
 * (`kind = sweep`: the round-robin-owned variants, each carried as a
 * complete FleetPartial tagged with its declaration index).
 *
 * The on-disk format is JSON (`"ariadnePartial": 1`); numbers are
 * written in shortest round-trip form and re-parsed bit-identically,
 * which is what lets merged exact-mode reports reproduce the
 * unsharded run byte for byte. Parse problems throw ReportError.
 */

#ifndef ARIADNE_REPORT_PARTIAL_REPORT_HH
#define ARIADNE_REPORT_PARTIAL_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/session_result.hh"
#include "report/metric_state.hh"
#include "report/shard_plan.hh"

namespace ariadne::report
{

/** One shard's aggregation state for one fleet. */
struct FleetPartial
{
    FleetPartial() : FleetPartial(PercentileMode::Exact) {}

    explicit FleetPartial(
        PercentileMode mode,
        std::size_t sketch_k = PercentileSketch::defaultK)
        : mode(mode), sketchK(sketch_k), relaunchMs(mode, sketch_k),
          compDecompCpuMs(mode, sketch_k), kswapdCpuMs(mode, sketch_k),
          energyJ(mode, sketch_k), compRatio(mode, sketch_k)
    {
    }

    // Run identity — every shard of one run must agree on these.
    std::string scenario;
    std::string scheme;
    std::string ariadneConfig;
    double scale = 0.0625;
    std::uint64_t seed = 0;
    /** Total fleet size of the (unsharded) run. */
    std::size_t fleet = 0;
    PercentileMode mode = PercentileMode::Exact;
    std::size_t sketchK = PercentileSketch::defaultK;

    /** This shard's contiguous session range [begin, end). */
    std::size_t sessionsBegin = 0;
    std::size_t sessionsEnd = 0;

    std::uint64_t totalRelaunches = 0;
    std::uint64_t totalStagedHits = 0;
    std::uint64_t totalMajorFaults = 0;
    std::uint64_t totalFlashFaults = 0;
    std::uint64_t totalLostPages = 0;
    std::uint64_t totalDirectReclaims = 0;

    MetricState relaunchMs;
    MetricState compDecompCpuMs;
    MetricState kswapdCpuMs;
    MetricState energyJ;
    MetricState compRatio;

    /** Fold one finished session (must be called in session-index
     * order; FleetRunner's reorder window guarantees it). */
    void fold(const driver::SessionResult &s);

    /**
     * Fold @p o's sessions after this shard's. Throws ReportError
     * when the run identities differ or the ranges are not adjacent
     * (o.sessionsBegin == this->sessionsEnd).
     */
    void merge(const FleetPartial &o);

    /** Values currently retained across all metric states (exact:
     * O(sessions); sketch: O(k log n)). */
    std::size_t retainedValues() const noexcept;
};

/** One shard's serialized share of a fleet or sweep run. */
struct PartialReport
{
    /** On-disk format version ("ariadnePartial"). */
    static constexpr std::uint64_t formatVersion = 1;

    enum class Kind
    {
        Fleet,
        Sweep,
    };

    Kind kind = Kind::Fleet;
    ShardPlan shard;

    /** kind == Fleet: the shard's aggregation state. */
    FleetPartial fleet;

    /** kind == Sweep: sweep identity plus the owned variants. */
    std::string sweepName;
    std::size_t variantCount = 0;
    /**
     * Run identity every sweep shard must share: FNV-1a of the
     * canonical sweep spec plus the CLI --fleet override. Shards own
     * *disjoint* variants, so unlike fleet shards there is no
     * overlapping state to cross-check at merge time — workers that
     * ran different specs or different fleet overrides would
     * otherwise fold into one silently inconsistent side-by-side
     * report.
     */
    std::uint64_t sweepSpecHash = 0;
    std::uint64_t fleetOverride = 0;
    struct SweepEntry
    {
        /** Declaration index of the variant in the sweep. */
        std::size_t index = 0;
        /** The variant's complete (1/1) aggregation state. */
        FleetPartial fleet;
    };
    std::vector<SweepEntry> variants;

    /** Serialize as JSON (parse(writeJson(x)) round-trips exactly). */
    void writeJson(std::ostream &os) const;

    /** Parse a serialized partial; throws ReportError. */
    static PartialReport parseText(const std::string &text);

    /** Load and parse @p path; throws ReportError (message names the
     * file). */
    static PartialReport loadFile(const std::string &path);
};

/** FNV-1a 64-bit hash — stable across platforms and builds, unlike
 * std::hash, so partials produced on different machines agree. */
std::uint64_t fnv1a64(const std::string &text) noexcept;

} // namespace ariadne::report

#endif // ARIADNE_REPORT_PARTIAL_REPORT_HH
