/**
 * @file
 * Anonymous-page metadata.
 *
 * The simulator tracks anonymous pages as metadata records; page
 * *contents* are a deterministic function of (uid, pfn, version)
 * materialized on demand by a PageContentSource (the workload's
 * synthesizer). This keeps host memory bounded while every
 * compression still runs the real codec over real bytes.
 */

#ifndef ARIADNE_MEM_PAGE_HH
#define ARIADNE_MEM_PAGE_HH

#include <cstdint>

#include "compress/codec.hh"
#include "sim/types.hh"

namespace ariadne
{

class LruList;

/**
 * Hotness level of anonymous data (§1): hot is used during relaunch,
 * warm potentially during execution after relaunch, cold usually not
 * again. Used both as workload ground truth and as the level of the
 * list a scheme keeps a page on.
 */
enum class Hotness : std::uint8_t { Hot = 0, Warm = 1, Cold = 2 };

/** Stable display name of a hotness level. */
const char *hotnessName(Hotness h) noexcept;

/** Where a page's data currently lives. */
enum class PageLocation : std::uint8_t
{
    Resident, //!< uncompressed in main memory
    Zpool,    //!< compressed in the DRAM zpool
    Flash,    //!< in the flash swap space
    Staged,   //!< pre-decompressed in the PreDecomp buffer
    Lost,     //!< dropped under extreme pressure (app data loss)
};

/** Identity of a page: owning app plus page frame number. */
struct PageKey
{
    AppId uid = invalidApp;
    Pfn pfn = invalidPfn;

    bool operator==(const PageKey &o) const noexcept = default;
};

/**
 * Metadata record for one anonymous page. Contains intrusive LRU
 * hooks managed exclusively by LruList.
 *
 * The fields the reclaim scan and the hotness-decay walk read —
 * hotness level, location, last access time — do NOT live here: they
 * sit in dense per-field arrays owned by PageArena, indexed by the
 * record's handle, so those walks touch a few contiguous cache lines
 * instead of one cold record per page. Access them through the
 * arena's level()/location()/lastAccess() accessors.
 */
struct PageMeta
{
    PageKey key;
    /** Content version; bumps when the app overwrites the page. */
    std::uint32_t version = 0;
    /** Ground-truth hotness assigned by the workload generator. */
    Hotness truth = Hotness::Cold;
    /** zpool object holding this page (invalid when not in zpool). */
    std::uint64_t objectId = UINT64_MAX;
    /** Index of this page inside a multi-page compressed object. */
    std::uint32_t objectSlot = 0;
    /** Flash slot holding this page (invalid when not in flash). */
    std::uint64_t flashSlot = UINT64_MAX;

    // Intrusive LRU hooks; only LruList may touch these.
    PageMeta *lruPrev = nullptr;
    PageMeta *lruNext = nullptr;
    LruList *lruOwner = nullptr;

    // Arena bookkeeping; only PageArena may touch these. The handle
    // survives free()/alloc() recycling of the record.
    std::uint32_t arenaHandle = UINT32_MAX;
    bool arenaFree = false;
};

/**
 * Supplier of page contents. Implemented by the workload synthesizer;
 * materialize() must be a pure function of (uid, pfn, version) so the
 * same page always yields identical bytes.
 */
class PageContentSource
{
  public:
    virtual ~PageContentSource() = default;

    /** Fill @p out (pageSize bytes) with the page's contents. */
    virtual void materialize(const PageKey &key, std::uint32_t version,
                             MutableBytes out) const = 0;
};

} // namespace ariadne

#endif // ARIADNE_MEM_PAGE_HH
