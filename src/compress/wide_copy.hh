/**
 * @file
 * Wide-copy primitives shared by the LZ-family decompressors.
 *
 * Decoded matches used to be copied one byte at a time — the only
 * copy that is trivially correct for overlapping matches (offset <
 * length), where the source must observe bytes the copy itself just
 * produced. This header keeps that contract while moving whole words:
 *
 *  - offset == 1 is a run of one byte: memset.
 *  - offset >= 8 never overlaps an 8-byte step: straight wildcopy.
 *  - offsets 2..7 first replicate one period-preserving stride of
 *    >= 8 bytes byte-wise, then wildcopy at that stride (a buffer
 *    that is periodic in `offset` is also periodic in any multiple).
 *
 * Wildcopies overshoot by up to a word; the slack is legal because
 * every overshot byte lies before the output end and is rewritten by
 * a later sequence (a successful decompression fills the buffer
 * exactly). Near the output end — where no later sequence exists to
 * repair the slack — the copy falls back to exact byte-wise moves, so
 * no store ever lands outside the destination span.
 */

#ifndef ARIADNE_COMPRESS_WIDE_COPY_HH
#define ARIADNE_COMPRESS_WIDE_COPY_HH

#include <cstdint>
#include <cstring>

namespace ariadne::compress_detail
{

inline std::uint64_t
loadWord(const std::uint8_t *p) noexcept
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeWord(std::uint8_t *p, std::uint64_t v) noexcept
{
    std::memcpy(p, &v, sizeof(v));
}

/** Bytes of headroom a wildcopy may scribble past the logical end. */
constexpr std::size_t wildCopySlack = 16;

/**
 * Copy a decoded LZ match: @p len bytes from @p offset bytes behind
 * @p op, replicating overlapping patterns exactly as a byte-wise loop
 * would. The caller has already validated the match (offset >= 1,
 * offset <= op - start of output, len <= oend - op).
 * @return op + len.
 */
inline std::uint8_t *
copyMatch(std::uint8_t *op, std::size_t offset, std::size_t len,
          std::uint8_t *const oend) noexcept
{
    std::uint8_t *const end = op + len;
    if (offset == 1) {
        std::memset(op, op[-1], len);
        return end;
    }
    if (static_cast<std::size_t>(oend - op) >= len + wildCopySlack) {
        if (offset >= 8) {
            const std::uint8_t *src = op - offset;
            do {
                storeWord(op, loadWord(src));
                op += 8;
                src += 8;
            } while (op < end);
            return end;
        }
        // Overlap fallback: seed ceil(8/offset) periods byte-wise
        // (stride <= 14 bytes, covered by the slack even when the
        // match itself is shorter), then copy words at that stride —
        // far enough back that loads never touch unwritten bytes.
        std::size_t stride = offset;
        while (stride < 8)
            stride += offset;
        const std::uint8_t *pattern = op - offset;
        for (std::size_t i = 0; i < stride; ++i)
            op[i] = pattern[i];
        op += stride;
        const std::uint8_t *src = op - stride;
        while (op < end) {
            storeWord(op, loadWord(src));
            op += 8;
            src += 8;
        }
        return end;
    }
    // Tail of the output: exact byte-wise copy, no overshoot.
    const std::uint8_t *src = op - offset;
    while (op < end)
        *op++ = *src++;
    return end;
}

} // namespace ariadne::compress_detail

#endif // ARIADNE_COMPRESS_WIDE_COPY_HH
