/**
 * @file
 * Fig. 3: CPU usage of the memory reclamation procedure (kswapd)
 * under DRAM / ZRAM / SWAP.
 *
 * Paper result: ZRAM increases reclaim CPU ~2.6x over DRAM and ~2.0x
 * over SWAP (compression runs on the reclaim thread; SWAP mostly
 * yields the CPU while the device writes).
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

namespace
{

double
kswapdCpuMs(SchemeKind kind)
{
    SystemConfig cfg = makeConfig(kind);
    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    driver.lightUsageScenario(Tick{60} * 1000000000ULL);
    return static_cast<double>(sys.kswapdCpuNs()) / 1e6;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Fig. 3: kswapd CPU usage (ms) over a 60 s scenario");

    double dram = kswapdCpuMs(SchemeKind::Dram);
    double zram = kswapdCpuMs(SchemeKind::Zram);
    double swap = kswapdCpuMs(SchemeKind::Swap);

    ReportTable table({"Scheme", "kswapd CPU (ms)", "vs DRAM"});
    table.addRow({"DRAM", ReportTable::num(dram, 1), "1.00"});
    table.addRow({"ZRAM", ReportTable::num(zram, 1),
                  ReportTable::num(zram / dram, 2)});
    table.addRow({"SWAP", ReportTable::num(swap, 1),
                  ReportTable::num(swap / dram, 2)});
    table.print(std::cout);

    std::cout << "\nZRAM/DRAM = " << ReportTable::num(zram / dram, 2)
              << " (paper: 2.6x), ZRAM/SWAP = "
              << ReportTable::num(zram / swap, 2) << " (paper: 2.0x)\n";
    return 0;
}
