#include "telemetry/journey.hh"

#include <algorithm>
#include <tuple>

#include "telemetry/timeline.hh"

namespace ariadne::telemetry
{

namespace detail
{
std::atomic<bool> g_journeyEnabled{false};
std::atomic<std::uint64_t> g_journeySampleEvery{64};
} // namespace detail

void
setJourneyEnabled(bool on, std::uint64_t sample_every) noexcept
{
    detail::g_journeySampleEvery.store(sample_every < 1 ? 1
                                                        : sample_every,
                                       std::memory_order_relaxed);
    detail::g_journeyEnabled.store(on, std::memory_order_relaxed);
}

const char *
journeyStepName(JourneyStep s) noexcept
{
    switch (s) {
    case JourneyStep::Alloc:
        return "alloc";
    case JourneyStep::Hot:
        return "hot";
    case JourneyStep::Warm:
        return "warm";
    case JourneyStep::Cold:
        return "cold";
    case JourneyStep::Zram:
        return "zram";
    case JourneyStep::Writeback:
        return "writeback";
    case JourneyStep::Flash:
        return "flash";
    case JourneyStep::Staged:
        return "staged";
    case JourneyStep::SwapIn:
        return "swapin";
    case JourneyStep::Resident:
        return "resident";
    case JourneyStep::Recreate:
        return "recreate";
    case JourneyStep::Lost:
        return "lost";
    case JourneyStep::Free:
        return "free";
    }
    return "?";
}

JourneyLog &
JourneyLog::global()
{
    static JourneyLog instance;
    return instance;
}

JourneyLog::Buffer &
JourneyLog::attachBuffer()
{
    std::lock_guard<std::mutex> lk(mu);
    buffers.push_back(std::make_unique<Buffer>());
    return *buffers.back();
}

JourneyLog::Buffer &
JourneyLog::bufferForThisThread()
{
    thread_local Buffer *t_buffer = nullptr;
    if (!t_buffer)
        t_buffer = &attachBuffer();
    return *t_buffer;
}

void
JourneyLog::record(std::uint32_t uid, std::uint64_t pfn,
                   JourneyStep step, std::uint64_t t_ns,
                   std::uint64_t detail) noexcept
{
    Buffer &b = bufferForThisThread();
    if (b.events.size() >= eventCap) {
        ++b.dropped;
        return;
    }
    b.events.push_back(Event{uid, pfn, currentSession(), step, t_ns,
                             detail, b.seq++});
}

std::vector<JourneyLog::Event>
JourneyLog::events() const
{
    std::vector<Event> all;
    std::lock_guard<std::mutex> lk(mu);
    for (const auto &b : buffers)
        all.insert(all.end(), b->events.begin(), b->events.end());
    std::sort(all.begin(), all.end(),
              [](const Event &a, const Event &b) {
                  return std::tie(a.session, a.uid, a.pfn, a.tNs,
                                  a.seq) < std::tie(b.session, b.uid,
                                                    b.pfn, b.tNs,
                                                    b.seq);
              });
    return all;
}

std::uint64_t
JourneyLog::droppedEvents() const
{
    std::lock_guard<std::mutex> lk(mu);
    std::uint64_t total = 0;
    for (const auto &b : buffers)
        total += b->dropped;
    return total;
}

void
JourneyLog::clear()
{
    std::lock_guard<std::mutex> lk(mu);
    for (const auto &b : buffers) {
        b->events.clear();
        b->dropped = 0;
        b->seq = 0;
    }
}

} // namespace ariadne::telemetry
