/**
 * @file
 * Fig. 15: sensitivity of compression/decompression latency and
 * ratio to the chunk-size configuration — ZRAM vs the aggressive
 * Ariadne-AL-1K-4K-64K vs the conservative Ariadne-AL-256-1K-4K.
 *
 * Paper result: very large cold chunks (64K) raise the ratio without
 * hurting decompression *if* identification is right, but carry a
 * misprediction risk; very small chunks give fast decompression at a
 * reduced ratio. The paper avoids >=64K chunks for this reason.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

namespace
{

struct Row
{
    double compMs;
    double decompMs;
    double ratio;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("fig15", argc, argv);
    printBanner(std::cout,
                "Fig. 15: sensitivity to chunk-size configuration");

    auto measure = [&](const std::string &kind, const std::string &acfg,
                       const std::string &app_name,
                       const std::string &label) -> Row {
        driver::FleetResult r = runVariant(
            targetSpec(app_name + "/" + label, kind, app_name, 0,
                       acfg));
        report.add(r);
        const CompStats &st =
            session(r).appComp.at(standardApp(app_name).uid);
        return {static_cast<double>(st.compNs) / 1e6,
                static_cast<double>(st.decompNs) / 1e6, st.ratio()};
    };

    struct SchemeUnderTest
    {
        std::string label;
        std::string kind;
        std::string acfg;
    };
    const std::vector<SchemeUnderTest> schemes = {
        {"ZRAM", "zram", ""},
        {"AL-1K-4K-64K", "ariadne", "AL-1K-4K-64K"},
        {"AL-256-1K-4K", "ariadne", "AL-256-1K-4K"},
    };

    ReportTable comp({"App", "ZRAM", "AL-1K-4K-64K", "AL-256-1K-4K"});
    ReportTable decomp({"App", "ZRAM", "AL-1K-4K-64K",
                        "AL-256-1K-4K"});
    ReportTable ratio({"App", "ZRAM", "AL-1K-4K-64K", "AL-256-1K-4K"});

    for (const auto &name : plottedApps()) {
        std::vector<std::string> comp_row{name}, decomp_row{name},
            ratio_row{name};
        for (const auto &scheme : schemes) {
            Row r = measure(scheme.kind, scheme.acfg, name,
                            scheme.label);
            comp_row.push_back(ReportTable::num(r.compMs, 2));
            decomp_row.push_back(ReportTable::num(r.decompMs, 3));
            ratio_row.push_back(ReportTable::num(r.ratio, 2));
        }
        comp.addRow(std::move(comp_row));
        decomp.addRow(std::move(decomp_row));
        ratio.addRow(std::move(ratio_row));
    }

    std::cout << "\n(a) Compression latency (ms)\n";
    comp.print(std::cout);
    std::cout << "\n(b) Decompression latency (ms)\n";
    decomp.print(std::cout);
    std::cout << "\n(c) Compression ratio\n";
    ratio.print(std::cout);
    std::cout << "\nLarger cold chunks raise the ratio; smaller "
                 "chunks cut decompression latency — the Table 5 "
                 "configurations balance the two.\n";
    report.addTable("comp_latency_ms", comp);
    report.addTable("decomp_latency_ms", decomp);
    report.addTable("comp_ratio", ratio);
    return report.finish();
}
