#include "driver/fleet_runner.hh"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "driver/json_writer.hh"
#include "driver/workload_source.hh"
#include "mem/page_arena.hh"
#include "report/report_merger.hh"
#include "sim/log.hh"
#include "swap/compress_memo.hh"
#include "swap/scheme_registry.hh"
#include "telemetry/progress.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeline.hh"
#include "telemetry/trace_log.hh"
#include "workload/apps.hh"

namespace ariadne::driver
{

namespace
{

telemetry::Counter c_sessions("fleet.sessions");
telemetry::DurationProbe d_session("fleet.session");

void
writeSummary(JsonWriter &w, const std::string &name,
             const MetricSummary &m, PercentileMode mode)
{
    w.key(name);
    w.beginObject();
    w.field("samples", m.samples);
    w.field("mean", m.mean);
    w.field("min", m.min);
    w.field("max", m.max);
    w.field("p50", m.p50);
    w.field("p90", m.p90);
    w.field("p99", m.p99);
    if (mode == PercentileMode::Sketch)
        w.field("rankErrorBound", m.rankErrorBound);
    w.endObject();
}

void
writeCompStats(JsonWriter &w, const CompStats &c)
{
    w.beginObject();
    w.field("compNs", c.compNs);
    w.field("decompNs", c.decompNs);
    w.field("inBytes", c.inBytes);
    w.field("outBytes", c.outBytes);
    w.field("decompBytes", c.decompBytes);
    w.field("compOps", c.compOps);
    w.field("decompOps", c.decompOps);
    w.field("ratio", c.ratio());
    w.endObject();
}

/**
 * Apply a what-if replay override to the recorded scenario: knob
 * overrides overlay the recorded knobs when the scheme is unchanged
 * (so `--scheme ariadne` on an Ariadne trace — or a pure knob tweak —
 * keeps the recorded configuration), and start from a fresh bag when
 * the scheme differs (another scheme's knobs would fail its schema).
 * The result is validated against the registry; errors surface as
 * SpecError, the driver's configuration-error currency.
 */
void
applySchemeOverride(ScenarioSpec &spec,
                    const std::string &override_scheme,
                    const SchemeParams &override_params)
{
    if (override_scheme.empty() || override_scheme == spec.scheme) {
        for (const auto &[knob, value] : override_params.entries())
            spec.params.set(knob, value);
    } else {
        spec.scheme = override_scheme;
        spec.params = override_params;
    }
    try {
        SchemeRegistry::instance().validate(spec.scheme, spec.params);
    } catch (const SchemeError &e) {
        throw SpecError(std::string("what-if replay override: ") +
                        e.what());
    }
}

} // namespace

double
SessionResult::compDecompCpuMs(double scale) const noexcept
{
    return ticksToMs(compCpuNs + decompCpuNs) / scale;
}

FleetRunner::FleetRunner(ScenarioSpec spec,
                         std::vector<SessionHook> hooks)
    : scenario(std::move(spec)), sessionHooks(std::move(hooks))
{
    if (scenario.workload == WorkloadKind::Trace) {
        // The trace carries the recorded scenario; adopt it as the
        // effective spec so the replayed report is byte-identical to
        // the recorded one. An explicit name in the replay spec
        // survives (sweep variants rely on it for side-by-side
        // reports), and a what-if override swaps the scheme the
        // recorded workload runs under; everything else comes from
        // the recording.
        auto replay =
            std::make_shared<TraceReplaySource>(scenario.tracePath);
        ScenarioSpec effective = replay->recordedSpec();
        effective.workload = WorkloadKind::Trace;
        effective.tracePath = scenario.tracePath;
        if (scenario.name != "unnamed")
            effective.name = scenario.name;
        bool what_if = !scenario.replayScheme.empty() ||
                       !scenario.replayParams.empty();
        if (what_if)
            applySchemeOverride(effective, scenario.replayScheme,
                                scenario.replayParams);
        scenario = std::move(effective);
        recordedForEmbed = replay->recordedSpec();
        recordedForEmbed->name = scenario.name;
        if (what_if) {
            // Re-recording a what-if replay must embed the scheme it
            // actually ran (the workload axes stay the recording's).
            recordedForEmbed->scheme = scenario.scheme;
            recordedForEmbed->params = scenario.params;
        }
        source = std::move(replay);
    } else {
        source = makeWorkloadSource(scenario);
    }
}

SessionResult
FleetRunner::runSession(std::size_t index) const
{
    return runSession(index, nullptr, nullptr);
}

SessionResult
FleetRunner::runSession(std::size_t index, TraceRecorder *recorder,
                        PageArena *arena, CompressionMemo *memo) const
{
    c_sessions.add();
    telemetry::ScopedTimer timer(d_session);
    telemetry::TraceSpan span("session", "index", index);
    telemetry::beginSession(static_cast<std::uint32_t>(index));
    SessionResult result;
    result.index = index;
    result.seed = scenario.sessionSeed(index);

    MobileSystem sys(scenario.systemConfig(index),
                     source->sessionProfiles(index), arena, memo);
    SessionDriver driver(sys);

    if (recorder) {
        recorder->beginSession(index);
        sys.setObserver(recorder);
    }
    SessionRun run(sys, driver, result, sessionHooks, scenario.scale,
                   recorder);
    source->drive(index, run);
    auto uids = sys.appIds();

    result.compCpuNs = sys.cpu().total(CpuRole::Compression);
    result.decompCpuNs = sys.cpu().total(CpuRole::Decompression);
    result.kswapdCpuNs = sys.kswapdCpuNs();
    result.grandCpuNs = sys.cpu().grandTotal();
    result.energyJ = sys.energyJoules();
    result.simulatedNs = sys.clock().now();
    result.comp = sys.scheme().totalStats();
    for (AppId uid : uids)
        result.appComp[uid] = sys.scheme().appStats(uid);
    result.lostPages = sys.lostRecreations();
    result.directReclaims = sys.scheme().directReclaims();
    for (const auto &sample : result.relaunches) {
        result.stagedHits += sample.stats.stagedHits;
        result.majorFaults += sample.stats.majorFaults;
        result.flashFaults += sample.stats.flashFaults;
    }
    return result;
}

FleetResult
FleetRunner::run(std::size_t fleet, unsigned threads,
                 bool keep_sessions) const
{
    return runFleet(fleet, threads, keep_sessions, nullptr);
}

FleetResult
FleetRunner::runRecorded(const std::string &trace_path,
                         std::size_t fleet, bool keep_sessions) const
{
    TraceWriter writer(trace_path, embeddableSpecText(fleet));
    TraceRecorder recorder(writer);
    FleetResult result = runFleet(fleet, 1, keep_sessions, &recorder);
    writer.close();
    return result;
}

std::string
FleetRunner::embeddableSpecText(std::size_t fleet) const
{
    // Embed the recorded scenario with the fleet size that was
    // actually captured, so a plain replay (`--fleet` omitted) runs
    // exactly the recorded sessions.
    ScenarioSpec spec = recordedForEmbed.value_or(scenario);
    if (fleet != 0)
        spec.fleet = fleet;
    else
        spec.fleet = scenario.fleet;
    return spec.toString();
}

std::size_t
FleetRunner::resolveFleet(std::size_t fleet) const
{
    if (fleet == 0)
        fleet = scenario.fleet;
    fatalIf(fleet == 0, "fleet size must be >= 1");
    if (std::size_t limit = source->sessionLimit();
        limit != 0 && fleet > limit)
        throw SpecError("workload source '" +
                        std::string(source->kind()) + "' supplies " +
                        std::to_string(limit) +
                        " session(s) but the run asked for " +
                        std::to_string(fleet) +
                        " (trace replays cannot exceed the recorded "
                        "fleet)");
    return fleet;
}

report::FleetPartial
FleetRunner::makePartial(std::size_t fleet,
                         const report::ShardPlan &plan) const
{
    report::FleetPartial p(scenario.percentiles, scenario.sketchK);
    p.scenario = scenario.name;
    p.scheme =
        SchemeRegistry::instance().at(scenario.scheme).displayName;
    p.ariadneConfig = scenario.params.getString("config", "");
    p.scale = scenario.scale;
    p.seed = scenario.seed;
    p.fleet = fleet;
    auto [begin, end] = plan.sessionRange(fleet);
    p.sessionsBegin = begin;
    p.sessionsEnd = end;
    return p;
}

void
FleetRunner::runPartialInto(report::FleetPartial &partial,
                            unsigned threads,
                            std::vector<SessionResult> *kept,
                            std::size_t &peak,
                            TraceRecorder *recorder) const
{
    const std::size_t begin = partial.sessionsBegin;
    const std::size_t end = partial.sessionsEnd;
    peak = 0;
    if (begin == end)
        return; // a small fleet can leave a shard empty
    const std::size_t span = end - begin;
    if (recorder) {
        // Recording serializes sessions into one stream; parallel
        // workers would interleave it.
        threads = 1;
    }
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (threads > span)
        threads = static_cast<unsigned>(span);
    if (kept)
        kept->resize(span);

    // Streaming aggregation. Session indices are claimed in order
    // from an atomic counter; finished results enter a reorder buffer
    // and are folded strictly in index order, so the aggregate cannot
    // observe scheduling. A worker whose index is too far ahead of
    // the fold frontier waits, which bounds the buffer (and therefore
    // peak retained SessionResults) at `window`, independent of the
    // fleet size.
    const std::size_t window = std::size_t{2} * threads;
    std::atomic<std::size_t> next{begin};
    std::mutex mu;
    std::condition_variable room;
    std::map<std::size_t, SessionResult> pending;
    std::size_t fold_frontier = begin;
    std::size_t high_water = 0;

    auto worker = [&]() {
        // One arena per worker thread, recycled across every session
        // this worker runs: slabs and SoA arrays reach steady-state
        // capacity after the first session and later sessions allocate
        // nothing. Sessions only read/write their own arena, so the
        // aggregate stays bit-identical to private-arena runs.
        PageArena workerArena;
        // The cross-session compression memo rides along with the
        // arena: same worker-lifetime scope, same bit-identity
        // guarantee (memoized sizes equal fresh compressions), gated
        // by the spec's compress_memo knob.
        std::unique_ptr<CompressionMemo> workerMemo;
        if (scenario.compressMemo)
            workerMemo = std::make_unique<CompressionMemo>();
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= end)
                return;
            {
                std::unique_lock<std::mutex> lk(mu);
                room.wait(lk,
                          [&] { return i < fold_frontier + window; });
            }
            SessionResult s = runSession(i, recorder, &workerArena,
                                         workerMemo.get());
            std::size_t folded = 0;
            {
                std::unique_lock<std::mutex> lk(mu);
                pending.emplace(i, std::move(s));
                high_water = std::max(high_water, pending.size());
                while (!pending.empty() &&
                       pending.begin()->first == fold_frontier) {
                    SessionResult &head = pending.begin()->second;
                    partial.fold(head);
                    if (kept)
                        (*kept)[fold_frontier - begin] =
                            std::move(head);
                    pending.erase(pending.begin());
                    ++fold_frontier;
                    ++folded;
                }
                room.notify_all();
            }
            // Heartbeats happen outside the fold lock; the meter has
            // its own synchronization and may block on stderr.
            if (folded)
                telemetry::ProgressMeter::global().tick(folded);
        }
    };
    if (threads == 1) {
        telemetry::TraceLog::global().nameThisThread("fleet-main");
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            pool.emplace_back([&worker, t]() {
                telemetry::TraceLog::global().nameThisThread(
                    "worker-" + std::to_string(t));
                worker();
            });
        }
        for (auto &th : pool)
            th.join();
    }
    fatalIf(fold_frontier != end,
            "fleet aggregation lost sessions (internal bug)");
    peak = high_water;
}

FleetResult
FleetRunner::runFleet(std::size_t fleet, unsigned threads,
                      bool keep_sessions,
                      TraceRecorder *recorder) const
{
    fleet = resolveFleet(fleet);
    // An in-process run is the 1/1 shard of the sharded pipeline:
    // fold into a FleetPartial, finalize through the merge code path.
    report::FleetPartial partial =
        makePartial(fleet, report::ShardPlan{});
    std::vector<SessionResult> kept;
    std::size_t peak = 0;
    runPartialInto(partial, threads, keep_sessions ? &kept : nullptr,
                   peak, recorder);
    FleetResult result = report::finalizeFleet(partial);
    result.sessions = std::move(kept);
    result.peakRetainedSessions = peak;
    return result;
}

report::PartialReport
FleetRunner::runShard(const report::ShardPlan &plan, std::size_t fleet,
                      unsigned threads) const
{
    fleet = resolveFleet(fleet);
    report::PartialReport rep;
    rep.kind = report::PartialReport::Kind::Fleet;
    rep.shard = plan;
    rep.fleet = makePartial(fleet, plan);
    std::size_t peak = 0;
    runPartialInto(rep.fleet, threads, nullptr, peak, nullptr);
    return rep;
}

report::PartialReport
FleetRunner::runSweepShard(const SweepSpec &sweep,
                           const report::ShardPlan &plan,
                           std::size_t fleet, unsigned threads)
{
    report::PartialReport rep;
    rep.kind = report::PartialReport::Kind::Sweep;
    rep.shard = plan;
    rep.sweepName = sweep.name;
    rep.variantCount = sweep.variants.size();
    // Shards own disjoint variants, so the merger cannot infer run
    // consistency from overlap the way fleet shards' session ranges
    // do; stamp the run identity for it to cross-check instead.
    rep.sweepSpecHash = report::fnv1a64(sweep.toString());
    rep.fleetOverride = fleet;
    for (std::size_t j = 0; j < sweep.variants.size(); ++j) {
        if (!plan.ownsVariant(j))
            continue;
        // Each owned variant runs its whole fleet as a complete (1/1)
        // partial; the sweep-level shard identity lives on `rep`.
        report::PartialReport variant =
            FleetRunner(sweep.variants[j])
                .runShard(report::ShardPlan{}, fleet, threads);
        rep.variants.push_back({j, std::move(variant.fleet)});
    }
    return rep;
}

SweepResult
FleetRunner::runSweep(const SweepSpec &sweep, std::size_t fleet,
                      unsigned threads, bool keep_sessions)
{
    SweepResult result;
    result.name = sweep.name;
    result.variants.reserve(sweep.variants.size());
    for (const ScenarioSpec &variant : sweep.variants)
        result.variants.push_back(
            FleetRunner(variant).run(fleet, threads, keep_sessions));
    return result;
}

void
FleetResult::writeJson(std::ostream &os, bool per_session) const
{
    JsonWriter w(os);
    writeJson(w, per_session);
    os << "\n";
}

void
FleetResult::writeJson(JsonWriter &w, bool per_session) const
{
    w.beginObject();
    w.field("scenario", scenario);
    w.field("scheme", scheme);
    if (!ariadneConfig.empty())
        w.field("ariadneConfig", ariadneConfig);
    w.field("scale", scale);
    w.field("seed", seed);
    w.field("fleet", fleet);
    w.field("percentiles", percentileModeName(percentiles));
    w.field("totalRelaunches", totalRelaunches);
    w.field("totalStagedHits", totalStagedHits);
    w.field("totalMajorFaults", totalMajorFaults);
    w.field("totalFlashFaults", totalFlashFaults);
    w.field("totalLostPages", totalLostPages);
    w.field("totalDirectReclaims", totalDirectReclaims);

    w.key("metrics");
    w.beginObject();
    writeSummary(w, "relaunchMs", relaunchMs, percentiles);
    writeSummary(w, "compDecompCpuMs", compDecompCpuMs, percentiles);
    writeSummary(w, "kswapdCpuMs", kswapdCpuMs, percentiles);
    writeSummary(w, "energyJoules", energyJ, percentiles);
    writeSummary(w, "compressionRatio", compRatio, percentiles);
    w.endObject();

    if (per_session) {
        w.key("sessions");
        w.beginArray();
        for (const SessionResult &s : sessions) {
            w.beginObject();
            w.field("index", s.index);
            w.field("seed", s.seed);
            w.field("compCpuNs", s.compCpuNs);
            w.field("decompCpuNs", s.decompCpuNs);
            w.field("kswapdCpuNs", s.kswapdCpuNs);
            w.field("grandCpuNs", s.grandCpuNs);
            w.field("energyJoules", s.energyJ);
            w.field("simulatedNs", s.simulatedNs);
            w.field("directReclaims", s.directReclaims);
            w.field("lostPages", s.lostPages);
            w.key("comp");
            writeCompStats(w, s.comp);
            w.key("relaunches");
            w.beginArray();
            for (const auto &sample : s.relaunches) {
                w.beginObject();
                w.field("uid", static_cast<std::uint64_t>(sample.uid));
                w.field("fullScaleMs", sample.fullScaleMs);
                w.field("pagesTouched", sample.stats.pagesTouched);
                w.field("majorFaults", sample.stats.majorFaults);
                w.field("stagedHits", sample.stats.stagedHits);
                w.field("flashFaults", sample.stats.flashFaults);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

void
SweepResult::writeJson(std::ostream &os, bool per_session) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("sweep", name);
    w.field("variantCount",
            static_cast<std::uint64_t>(variants.size()));
    w.key("variants");
    w.beginArray();
    for (const FleetResult &variant : variants)
        variant.writeJson(w, per_session);
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace ariadne::driver
