/**
 * @file
 * Abstract lossless-codec interface.
 *
 * All codecs are implemented from scratch in this repository (the
 * kernel's LZ4/LZO are unavailable to a userspace artifact); they are
 * byte-exact, bounds-checked, and deterministic. Each codec also
 * carries the CodecCost coefficients the TimingModel uses to convert
 * its work into simulated nanoseconds.
 */

#ifndef ARIADNE_COMPRESS_CODEC_HH
#define ARIADNE_COMPRESS_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/timing_model.hh"

namespace ariadne
{

/** Byte span aliases used across the compression layer. */
using ConstBytes = std::span<const std::uint8_t>;
using MutableBytes = std::span<std::uint8_t>;

/** Identity of a compression algorithm. */
enum class CodecKind { Lz4, Lzo, Bdi, Null };

/** Stable lowercase name for a codec kind. */
const char *codecKindName(CodecKind kind) noexcept;

/**
 * A block compressor/decompressor.
 *
 * compress() writes at most compressBound(src.size()) bytes and
 * returns the compressed size; it never fails for a destination of at
 * least bound bytes. decompress() returns the decompressed size or 0
 * if the input is corrupt or the destination too small — it never
 * reads or writes out of bounds.
 */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** Algorithm identity. */
    virtual CodecKind kind() const noexcept = 0;

    /** Human-readable name. */
    virtual std::string name() const = 0;

    /** Timing coefficients for the TimingModel. */
    virtual const CodecCost &cost() const noexcept = 0;

    /** Worst-case compressed size for an @p n byte input. */
    virtual std::size_t compressBound(std::size_t n) const noexcept = 0;

    /**
     * Compress @p src into @p dst.
     * @return compressed size, or 0 if dst is smaller than the bound.
     */
    virtual std::size_t compress(ConstBytes src,
                                 MutableBytes dst) const = 0;

    /**
     * Decompress @p src into @p dst.
     * @return decompressed size, or 0 on corrupt input / short dst.
     */
    virtual std::size_t decompress(ConstBytes src,
                                   MutableBytes dst) const = 0;

    /**
     * Opaque reusable per-batch codec state (match tables, scratch).
     * Obtained from makeBatchState() and fed back to the stateful
     * compress(); reusing one state across a whole reclaim batch
     * amortizes the per-call setup (for the LZ-family codecs, the
     * 16-32 KB hash-table fill that otherwise dominates small pages).
     */
    class BatchState
    {
      public:
        virtual ~BatchState() = default;
    };

    /**
     * Create reusable batch state for the stateful compress().
     * Codecs with no per-call setup return nullptr; passing a null
     * state to the stateful compress() is always valid.
     */
    virtual std::unique_ptr<BatchState>
    makeBatchState() const
    {
        return nullptr;
    }

    /**
     * Compress @p src into @p dst, reusing @p state across calls.
     * Output is byte-identical to the stateless compress() for every
     * call, in any call order. @p state must have come from this
     * codec's makeBatchState() (or be null, which falls back to the
     * stateless path).
     */
    virtual std::size_t
    compress(ConstBytes src, MutableBytes dst, BatchState *state) const
    {
        (void)state;
        return compress(src, dst);
    }

    /**
     * Compress srcs[i] into dsts[i] under one shared batch state.
     * @return each compressed size (0 where a dst is under bound).
     * Requires srcs.size() == dsts.size().
     */
    std::vector<std::size_t>
    compressBatch(std::span<const ConstBytes> srcs,
                  std::span<const MutableBytes> dsts) const;

    /**
     * Compressed size of each of @p srcs under one shared batch
     * state, without keeping the compressed bytes.
     */
    std::vector<std::size_t>
    sizeBatch(std::span<const ConstBytes> srcs) const;
};

} // namespace ariadne

#endif // ARIADNE_COMPRESS_CODEC_HH
