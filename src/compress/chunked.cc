#include "compress/chunked.hh"

#include <cstring>

#include "sim/log.hh"
#include "telemetry/telemetry.hh"

namespace ariadne
{

namespace
{

constexpr std::uint32_t storedFlag = 0x80000000u;

// Host-time cost of real decompression work (the swap-in critical
// path), indexed by CodecKind — the decompress mirror of
// compressor.compress.<codec>.
telemetry::DurationProbe &
decompressProbe(CodecKind kind)
{
    static telemetry::DurationProbe probes[] = {
        telemetry::DurationProbe("codec.decompress.lz4"),
        telemetry::DurationProbe("codec.decompress.lzo"),
        telemetry::DurationProbe("codec.decompress.bdi"),
        telemetry::DurationProbe("codec.decompress.null"),
    };
    auto i = static_cast<std::size_t>(kind);
    return probes[i < 4 ? i : 3];
}

std::uint32_t
readU32(const std::uint8_t *p) noexcept
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
readU64(const std::uint8_t *p) noexcept
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

void
writeU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(v));
}

void
writeU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(v));
}

/** Parsed header view; sizes pointer aliases into the frame. */
struct Header
{
    std::size_t chunkBytes;
    std::size_t originalSize;
    std::size_t chunkCount;
    const std::uint8_t *sizes;   //!< chunk size table
    const std::uint8_t *payload; //!< first payload byte
    std::size_t payloadBytes;
};

bool
parse(ConstBytes frame, Header &h) noexcept
{
    if (frame.size() < ChunkedFrame::headerBytes)
        return false;
    const std::uint8_t *p = frame.data();
    if (readU32(p) != ChunkedFrame::magic)
        return false;
    h.chunkBytes = readU32(p + 4);
    h.originalSize = readU64(p + 8);
    h.chunkCount = readU32(p + 16);
    if (h.chunkBytes == 0)
        return false;
    std::size_t expected_chunks =
        h.originalSize == 0
            ? 0
            : (h.originalSize + h.chunkBytes - 1) / h.chunkBytes;
    if (h.chunkCount != expected_chunks)
        return false;
    std::size_t table_bytes = h.chunkCount * 4;
    if (frame.size() < ChunkedFrame::headerBytes + table_bytes)
        return false;
    h.sizes = p + ChunkedFrame::headerBytes;
    h.payload = h.sizes + table_bytes;
    h.payloadBytes =
        frame.size() - ChunkedFrame::headerBytes - table_bytes;
    return true;
}

} // namespace

std::vector<std::uint8_t>
ChunkedFrame::compress(const Codec &codec, ConstBytes src,
                       std::size_t chunk_bytes)
{
    return compress(codec, src, chunk_bytes, nullptr);
}

std::vector<std::uint8_t>
ChunkedFrame::compress(const Codec &codec, ConstBytes src,
                       std::size_t chunk_bytes,
                       Codec::BatchState *state)
{
    std::vector<std::uint8_t> out;
    std::vector<std::uint8_t> scratch;
    compressInto(codec, src, chunk_bytes, state, out, scratch);
    return out;
}

std::size_t
ChunkedFrame::compressInto(const Codec &codec, ConstBytes src,
                           std::size_t chunk_bytes,
                           Codec::BatchState *state,
                           std::vector<std::uint8_t> &out,
                           std::vector<std::uint8_t> &scratch)
{
    fatalIf(chunk_bytes == 0, "chunk size must be > 0");

    std::size_t chunks =
        src.empty() ? 0 : (src.size() + chunk_bytes - 1) / chunk_bytes;

    out.clear();
    out.reserve(headerBytes + chunks * 4 + src.size() / 2 + 64);
    writeU32(out, magic);
    writeU32(out, static_cast<std::uint32_t>(chunk_bytes));
    writeU64(out, src.size());
    writeU32(out, static_cast<std::uint32_t>(chunks));

    std::size_t table_off = out.size();
    out.resize(out.size() + chunks * 4);

    std::size_t bound = codec.compressBound(chunk_bytes);
    if (scratch.size() < bound)
        scratch.resize(bound);

    for (std::size_t i = 0; i < chunks; ++i) {
        std::size_t off = i * chunk_bytes;
        std::size_t len = std::min(chunk_bytes, src.size() - off);
        ConstBytes in = src.subspan(off, len);
        std::size_t csize =
            codec.compress(in, {scratch.data(), bound}, state);

        std::uint32_t record;
        if (csize == 0 || csize >= len) {
            // Store raw: the codec failed or did not shrink the chunk.
            record = storedFlag | static_cast<std::uint32_t>(len);
            out.insert(out.end(), in.begin(), in.end());
        } else {
            record = static_cast<std::uint32_t>(csize);
            out.insert(out.end(), scratch.begin(),
                       scratch.begin() + static_cast<long>(csize));
        }
        std::memcpy(out.data() + table_off + i * 4, &record, 4);
    }
    return out.size();
}

std::size_t
ChunkedFrame::decompress(const Codec &codec, ConstBytes frame,
                         MutableBytes dst)
{
    telemetry::ScopedTimer timer(decompressProbe(codec.kind()));
    Header h;
    if (!parse(frame, h))
        return 0;
    if (dst.size() < h.originalSize)
        return 0;

    const std::uint8_t *payload = h.payload;
    std::size_t remaining_payload = h.payloadBytes;
    std::size_t out_off = 0;

    for (std::size_t i = 0; i < h.chunkCount; ++i) {
        std::uint32_t record = readU32(h.sizes + i * 4);
        bool stored = (record & storedFlag) != 0;
        std::size_t csize = record & ~storedFlag;
        if (csize > remaining_payload)
            return 0;

        std::size_t want = std::min(h.chunkBytes,
                                    h.originalSize - out_off);
        if (stored) {
            if (csize != want)
                return 0;
            std::memcpy(dst.data() + out_off, payload, csize);
        } else {
            std::size_t got = codec.decompress(
                {payload, csize}, {dst.data() + out_off, want});
            if (got != want)
                return 0;
        }
        payload += csize;
        remaining_payload -= csize;
        out_off += want;
    }
    return out_off == h.originalSize ? h.originalSize : 0;
}

std::size_t
ChunkedFrame::decompressChunk(const Codec &codec, ConstBytes frame,
                              std::size_t index, MutableBytes dst)
{
    telemetry::ScopedTimer timer(decompressProbe(codec.kind()));
    Header h;
    if (!parse(frame, h))
        return 0;
    if (index >= h.chunkCount)
        return 0;

    const std::uint8_t *payload = h.payload;
    std::size_t remaining_payload = h.payloadBytes;
    for (std::size_t i = 0; i < index; ++i) {
        std::size_t csize = readU32(h.sizes + i * 4) & ~storedFlag;
        if (csize > remaining_payload)
            return 0;
        payload += csize;
        remaining_payload -= csize;
    }

    std::uint32_t record = readU32(h.sizes + index * 4);
    bool stored = (record & storedFlag) != 0;
    std::size_t csize = record & ~storedFlag;
    if (csize > remaining_payload)
        return 0;

    std::size_t off = index * h.chunkBytes;
    std::size_t want = std::min(h.chunkBytes, h.originalSize - off);
    if (dst.size() < want)
        return 0;
    if (stored) {
        if (csize != want)
            return 0;
        std::memcpy(dst.data(), payload, csize);
        return want;
    }
    std::size_t got = codec.decompress({payload, csize},
                                       {dst.data(), want});
    return got == want ? want : 0;
}

std::size_t
ChunkedFrame::originalSize(ConstBytes frame) noexcept
{
    Header h;
    return parse(frame, h) ? h.originalSize : 0;
}

std::size_t
ChunkedFrame::chunkCount(ConstBytes frame) noexcept
{
    Header h;
    return parse(frame, h) ? h.chunkCount : 0;
}

std::size_t
ChunkedFrame::chunkBytes(ConstBytes frame) noexcept
{
    Header h;
    return parse(frame, h) ? h.chunkBytes : 0;
}

bool
ChunkedFrame::valid(ConstBytes frame) noexcept
{
    Header h;
    return parse(frame, h);
}

} // namespace ariadne
