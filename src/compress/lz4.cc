#include "compress/lz4.hh"

#include <cstring>
#include <vector>

#include "compress/batch_table.hh"
#include "compress/wide_copy.hh"

namespace ariadne
{

namespace
{

constexpr std::size_t minMatch = 4;
constexpr std::size_t maxOffset = 65535;
constexpr unsigned hashBits = 13;
constexpr std::size_t hashSize = std::size_t{1} << hashBits;

std::uint32_t
read32(const std::uint8_t *p) noexcept
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
read64(const std::uint8_t *p) noexcept
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint32_t
hash32(std::uint32_t v) noexcept
{
    return (v * 2654435761u) >> (32 - hashBits);
}

std::size_t
boundFor(std::size_t n) noexcept
{
    // Worst case: one big literal run — token + n/255 continuation
    // bytes + literals, plus slack for the final sequence.
    return n + n / 255 + 16;
}

/**
 * The match loop, parameterized on a biased position table (see
 * batch_table.hh): @p table entries are position + @p bias, and only
 * entries >= bias reference this buffer. A zero-filled table with
 * bias 1 behaves exactly like a fresh sentinel-filled table.
 *
 * @tparam checkOffset false only when src.size() <= maxOffset + 1,
 * where every in-buffer distance fits the window and the range check
 * is vacuously true (the common page/chunk-sized call).
 */
template <bool checkOffset>
std::size_t
compressWith(ConstBytes src, MutableBytes dst, std::uint32_t *table,
             std::uint32_t bias)
{
    const std::size_t n = src.size();
    if (dst.size() < boundFor(n))
        return 0;

    const std::uint8_t *ip = src.data();
    const std::uint8_t *const iend = ip + n;
    const std::uint8_t *anchor = ip;
    std::uint8_t *op = dst.data();

    // Matches must leave at least minMatch readable bytes; stop the
    // search loop early enough that read32 stays in bounds.
    const std::uint8_t *const mflimit =
        (n >= minMatch + 1) ? iend - minMatch : ip;

    // Kept out of line: the probe loop below touches it once per
    // emitted sequence, and keeping its spill pressure away from the
    // per-byte path is worth the call.
    auto emit_sequence = [&](const std::uint8_t *lit_end,
                             std::size_t match_len,
                             std::size_t offset) __attribute__((noinline)) {
        std::size_t lit_len =
            static_cast<std::size_t>(lit_end - anchor);
        std::uint8_t *token = op++;
        std::uint8_t t = 0;
        if (lit_len >= 15) {
            t = 15 << 4;
            *token = t; // provisional; match nibble patched below
            std::size_t rest = lit_len - 15;
            while (rest >= 255) {
                *op++ = 255;
                rest -= 255;
            }
            *op++ = static_cast<std::uint8_t>(rest);
        } else {
            t = static_cast<std::uint8_t>(lit_len << 4);
            *token = t;
        }
        if (lit_len != 0) // anchor may be null for empty input
            std::memcpy(op, anchor, lit_len);
        op += lit_len;

        if (match_len == 0)
            return; // final literal-only sequence

        *op++ = static_cast<std::uint8_t>(offset & 0xff);
        *op++ = static_cast<std::uint8_t>((offset >> 8) & 0xff);

        std::size_t ml = match_len - minMatch;
        if (ml >= 15) {
            *token |= 15;
            std::size_t rest = ml - 15;
            while (rest >= 255) {
                *op++ = 255;
                rest -= 255;
            }
            *op++ = static_cast<std::uint8_t>(rest);
        } else {
            *token |= static_cast<std::uint8_t>(ml);
        }
    };

    // Sequence production for a confirmed match: extend forward,
    // eight bytes per compare (the first differing byte falls out of
    // a ctz), then byte-wise over the tail — the same length a byte
    // loop finds. Out of line for the same reason as emit_sequence:
    // it runs once per sequence, not once per byte.
    auto on_match = [&](std::uint32_t ref_pos, std::uint32_t cur_pos)
        __attribute__((noinline)) {
        const std::uint8_t *ref = src.data() + ref_pos;
        const std::uint8_t *mip = ip + minMatch;
        const std::uint8_t *mref = ref + minMatch;
        bool diff_found = false;
        while (mip + 8 <= iend) {
            std::uint64_t diff = read64(mip) ^ read64(mref);
            if (diff) {
                mip += __builtin_ctzll(diff) >> 3;
                diff_found = true;
                break;
            }
            mip += 8;
            mref += 8;
        }
        if (!diff_found) {
            while (mip < iend && *mip == *mref) {
                ++mip;
                ++mref;
            }
        }
        std::size_t match_len = static_cast<std::size_t>(mip - ip);
        emit_sequence(ip, match_len,
                      static_cast<std::size_t>(cur_pos - ref_pos));
        ip += match_len;
        anchor = ip;
    };

    // Probe one position: hash the four bytes at ip (passed in as
    // @p val so literal runs can slice several probes out of one
    // 64-bit load), store, and on a hit emit the sequence. Advances
    // ip by 1 (literal) or by the match length; returns whether it
    // matched. The probe/store order — and so the output — is the
    // same as the one-position-per-load loop this replaces.
    auto try_match = [&](std::uint32_t val) -> bool {
        std::uint32_t h = hash32(val);
        std::uint32_t entry = table[h];
        auto cur_pos = static_cast<std::uint32_t>(ip - src.data());
        table[h] = cur_pos + bias;

        // Entries below the bias were written by earlier buffers of
        // the batch (or never) — the fresh-table sentinel test.
        std::uint32_t ref_pos = entry - bias;
        if (entry >= bias &&
            (!checkOffset || cur_pos - ref_pos <= maxOffset) &&
            read32(src.data() + ref_pos) == val) {
            on_match(ref_pos, cur_pos);
            return true;
        }
        ++ip;
        return false;
    };

    while (ip < mflimit) {
        if (ip + 8 <= iend && ip + 5 <= mflimit) {
            // One 64-bit load covers the probe values of five
            // consecutive positions; literal runs (the common case on
            // poorly-compressible pages) burn through them with no
            // further loads and — since the whole window is in
            // bounds — no per-probe limit checks. A match invalidates
            // the window: fall out and reload.
            std::uint64_t w = read64(ip);
            if (try_match(static_cast<std::uint32_t>(w)))
                continue;
            if (try_match(static_cast<std::uint32_t>(w >> 8)))
                continue;
            if (try_match(static_cast<std::uint32_t>(w >> 16)))
                continue;
            if (try_match(static_cast<std::uint32_t>(w >> 24)))
                continue;
            try_match(static_cast<std::uint32_t>(w >> 32));
        } else if (ip + 8 <= iend) {
            std::uint64_t w = read64(ip);
            for (unsigned k = 0; k < 5; ++k) {
                if (try_match(static_cast<std::uint32_t>(w >> (8 * k))) ||
                    ip >= mflimit)
                    break;
            }
        } else {
            try_match(read32(ip));
        }
    }

    // Final literals.
    emit_sequence(iend, 0, 0);
    return static_cast<std::size_t>(op - dst.data());
}

/** Dispatch to the offset-check-free loop for window-sized buffers. */
std::size_t
compressDispatch(ConstBytes src, MutableBytes dst, std::uint32_t *table,
                 std::uint32_t bias)
{
    if (src.size() <= maxOffset + 1)
        return compressWith<false>(src, dst, table, bias);
    return compressWith<true>(src, dst, table, bias);
}

} // namespace

std::size_t
Lz4Codec::compressBound(std::size_t n) const noexcept
{
    return boundFor(n);
}

std::size_t
Lz4Codec::compress(ConstBytes src, MutableBytes dst) const
{
    std::vector<std::uint32_t> table(hashSize, 0);
    return compressDispatch(src, dst, table.data(), 1);
}

std::unique_ptr<Codec::BatchState>
Lz4Codec::makeBatchState() const
{
    return std::make_unique<compress_detail::PosTableState>(hashSize);
}

std::size_t
Lz4Codec::compress(ConstBytes src, MutableBytes dst,
                   BatchState *state) const
{
    if (!state)
        return compress(src, dst);
    auto &pos = static_cast<compress_detail::PosTableState &>(*state);
    return compressDispatch(src, dst, pos.data(),
                            pos.claim(src.size()));
}

std::size_t
Lz4Codec::decompress(ConstBytes src, MutableBytes dst) const
{
    const std::uint8_t *ip = src.data();
    const std::uint8_t *const iend = ip + src.size();
    std::uint8_t *op = dst.data();
    std::uint8_t *const oend = op + dst.size();

    if (src.empty())
        return 0;

    while (ip < iend) {
        std::uint8_t token = *ip++;
        // Literal run.
        std::size_t lit_len = token >> 4;
        if (lit_len == 15) {
            std::uint8_t b;
            do {
                if (ip >= iend)
                    return 0;
                b = *ip++;
                lit_len += b;
            } while (b == 255);
        }
        if (static_cast<std::size_t>(iend - ip) < lit_len ||
            static_cast<std::size_t>(oend - op) < lit_len) {
            return 0;
        }
        if (lit_len != 0) // op may be null for an empty dst
            std::memcpy(op, ip, lit_len);
        ip += lit_len;
        op += lit_len;

        if (ip >= iend)
            break; // final literal-only sequence

        // Match.
        if (iend - ip < 2)
            return 0;
        std::size_t offset = ip[0] | (std::size_t{ip[1]} << 8);
        ip += 2;
        if (offset == 0 ||
            offset > static_cast<std::size_t>(op - dst.data())) {
            return 0;
        }
        std::size_t match_len = (token & 0x0f) + minMatch;
        if ((token & 0x0f) == 15) {
            std::uint8_t b;
            do {
                if (ip >= iend)
                    return 0;
                b = *ip++;
                match_len += b;
            } while (b == 255);
        }
        if (static_cast<std::size_t>(oend - op) < match_len)
            return 0;
        op = compress_detail::copyMatch(op, offset, match_len, oend);
    }
    return static_cast<std::size_t>(op - dst.data());
}

} // namespace ariadne
