/**
 * @file
 * Hot-data similarity and reuse metrics (Fig. 5 / Insight 1).
 */

#ifndef ARIADNE_ANALYSIS_SIMILARITY_HH
#define ARIADNE_ANALYSIS_SIMILARITY_HH

#include <vector>

#include "sim/types.hh"

namespace ariadne
{

/**
 * Hot Data Similarity: identical hot data between two consecutive
 * relaunches divided by the hot data of the *second* relaunch.
 */
double hotDataSimilarity(const std::vector<Pfn> &prev_hot,
                         const std::vector<Pfn> &cur_hot);

/**
 * Reused Data: fraction of the first relaunch's hot data present in
 * the second relaunch's hot or warm sets.
 */
double reusedData(const std::vector<Pfn> &prev_hot,
                  const std::vector<Pfn> &cur_hot,
                  const std::vector<Pfn> &cur_warm);

/**
 * Coverage of a hot-set prediction: |predicted ∩ actual| / |actual|
 * (Fig. 14; the percentage of relaunch data correctly predicted).
 */
double predictionCoverage(const std::vector<Pfn> &predicted,
                          const std::vector<Pfn> &actual);

/**
 * Accuracy of a hot-set prediction: |predicted ∩ used| / |predicted|
 * where @p used is everything referenced during the relaunch and the
 * following execution window (Fig. 14).
 */
double predictionAccuracy(const std::vector<Pfn> &predicted,
                          const std::vector<Pfn> &used);

} // namespace ariadne

#endif // ARIADNE_ANALYSIS_SIMILARITY_HH
