/**
 * @file
 * System-level configuration (the paper's Table 4 platform plus
 * scheme selection).
 *
 * All capacities are given at paper scale and multiplied by `scale`
 * internally, so a bench can run at 1/8 footprint and reconstruct
 * full-scale latencies (see RelaunchStats::fullScaleNs).
 */

#ifndef ARIADNE_SYS_SYSTEM_CONFIG_HH
#define ARIADNE_SYS_SYSTEM_CONFIG_HH

#include "core/config.hh"
#include "sim/energy_model.hh"
#include "sim/timing_model.hh"
#include "swap/flash_swap.hh"
#include "swap/zram.hh"

namespace ariadne
{

/** Which swap scheme the system runs. */
enum class SchemeKind { Dram, Swap, Zram, Zswap, Ariadne };

/** Stable display name of a scheme kind. */
const char *schemeKindName(SchemeKind kind) noexcept;

/** Full system configuration. */
struct SystemConfig
{
    /** Footprint scale; 1.0 = the paper's volumes. */
    double scale = 0.125;

    /** DRAM budget for anonymous pages (paper scale). A Pixel 7 has
     * 12 GB total; apps' anonymous data competes for roughly this
     * much after the OS, file cache, GPU and zpool take theirs. */
    std::size_t dramBytes = std::size_t{2560} * 1024 * 1024;

    /** Watermarks (fractions of the anon budget). */
    double lowWatermark = 0.02;
    double highWatermark = 0.05;

    SchemeKind scheme = SchemeKind::Zram;

    /** Scheme-specific knobs (zpool/flash sizes at paper scale). */
    AriadneConfig ariadne;
    ZramConfig zram;
    FlashSwapConfig flashSwap;

    /** File pages written back per anonymous page allocated; models
     * the file-cache share of kswapd work that exists under every
     * scheme (the DRAM bars of Fig. 3). */
    double fileWritebackPerAnonAlloc = 0.25;

    TimingParams timing;
    EnergyParams energy;

    /** Deterministic seed for the workload instances. */
    std::uint64_t seed = 42;

    /** Seed Ariadne's per-app hot-set profiles from offline data
     * (§4.2). Disable for the D1 ablation: without seeding the hot
     * list starts empty and must be learned from the first relaunch. */
    bool seedAriadneProfiles = true;

    /** Per-page application-side touch cost (read/first-use work). */
    Tick pageTouchNs = 1500;
};

} // namespace ariadne

#endif // ARIADNE_SYS_SYSTEM_CONFIG_HH
