/**
 * @file
 * Shared batch state for the LZ-family codecs: a position hash table
 * reused across every buffer of a batch.
 *
 * A fresh per-call table must be filled with a "never stored"
 * sentinel; at page granularity that fill (32 KB for lz4, 16 KB for
 * lzo) costs more than the match search itself. The batch state
 * instead keeps one zero-filled table alive and *biases* stored
 * positions: a call claiming bias b stores position p as p + b, and
 * an entry e is a valid reference for that call iff e >= b (its
 * position is then e - b). Entries written by earlier buffers sit
 * below the current bias, so validity is exactly the fresh-table
 * sentinel test — the compressed output is byte-identical to a
 * stateless call, with no refill and no allocation per buffer.
 *
 * The bias grows monotonically by each buffer's length; when the next
 * claim would push a stored position past 32 bits, the table is
 * zero-refilled once and the bias restarts at 1 (amortized over ~4 GB
 * of input).
 */

#ifndef ARIADNE_COMPRESS_BATCH_TABLE_HH
#define ARIADNE_COMPRESS_BATCH_TABLE_HH

#include <algorithm>
#include <cstdint>

#include "compress/codec.hh"

namespace ariadne::compress_detail
{

/** Biased position-table batch state shared by Lz4Codec/LzoCodec. */
class PosTableState final : public Codec::BatchState
{
  public:
    explicit PosTableState(std::size_t slots) : table(slots, 0) {}

    /**
     * Claim the bias window for an @p n byte buffer, zero-refilling
     * the table when the window would wrap 32 bits.
     * @return the bias the caller must add to stored positions.
     */
    std::uint32_t
    claim(std::size_t n)
    {
        if (n > std::size_t{0xffffffffu} - bias) {
            std::fill(table.begin(), table.end(), 0u);
            bias = 1;
        }
        std::uint32_t claimed = bias;
        bias = static_cast<std::uint32_t>(bias + n);
        return claimed;
    }

    /** Slots in the table (codec-specific hash size). */
    std::size_t slots() const noexcept { return table.size(); }

    /** The position table; entries are position + bias, 0 = empty. */
    std::uint32_t *data() noexcept { return table.data(); }

  private:
    std::vector<std::uint32_t> table;
    /** Bias of the next claim; positions stored as p + bias. */
    std::uint32_t bias = 1;
};

} // namespace ariadne::compress_detail

#endif // ARIADNE_COMPRESS_BATCH_TABLE_HH
