/**
 * @file
 * FleetRunner — executes a ScenarioSpec as a fleet of independent
 * simulated devices and aggregates the results.
 *
 * Each fleet session owns a full MobileSystem seeded from
 * ScenarioSpec::sessionSeed(index), so a session's behaviour depends
 * only on (spec, index). Sessions are distributed over a thread pool;
 * results are stored by session index and aggregated sequentially
 * after the pool drains, which makes the aggregate (including every
 * percentile and its JSON rendering) bit-identical whether the fleet
 * ran on one thread or sixteen.
 */

#ifndef ARIADNE_DRIVER_FLEET_RUNNER_HH
#define ARIADNE_DRIVER_FLEET_RUNNER_HH

#include <map>
#include <ostream>

#include "driver/scenario_spec.hh"
#include "sys/session.hh"

namespace ariadne::driver
{

/** One measured relaunch inside a session. */
struct RelaunchSample
{
    AppId uid = invalidApp;
    /** Paper-scale latency in milliseconds. */
    double fullScaleMs = 0.0;
    RelaunchStats stats;
};

/** Everything one fleet session produced. */
struct SessionResult
{
    std::size_t index = 0;
    std::uint64_t seed = 0;

    /** Measured relaunches, in program order. */
    std::vector<RelaunchSample> relaunches;

    Tick compCpuNs = 0;
    Tick decompCpuNs = 0;
    Tick kswapdCpuNs = 0;
    Tick grandCpuNs = 0;
    double energyJ = 0.0;
    Tick simulatedNs = 0;

    /** Scheme-wide compression accounting. */
    CompStats comp;
    /** Per-app compression accounting (Fig. 15 reads the target's). */
    std::map<AppId, CompStats> appComp;

    std::uint64_t stagedHits = 0;
    std::uint64_t majorFaults = 0;
    std::uint64_t flashFaults = 0;
    std::uint64_t lostPages = 0;
    std::uint64_t directReclaims = 0;

    /** Comp+decomp CPU in paper-scale milliseconds. */
    double compDecompCpuMs(double scale) const noexcept;
};

/** p50/p90/p99 plus the usual moments of one aggregated metric. */
struct MetricSummary
{
    std::uint64_t samples = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    /** Summarize a Distribution. */
    static MetricSummary of(const Distribution &d);
};

/** Aggregate outcome of a fleet run. */
struct FleetResult
{
    std::string scenario;
    std::string scheme;
    std::string ariadneConfig;
    double scale = 0.0625;
    std::uint64_t seed = 0;
    std::size_t fleet = 0;

    std::vector<SessionResult> sessions;

    /** Across every measured relaunch of every session (paper-scale
     * milliseconds). */
    MetricSummary relaunchMs;
    /** Per-session distributions (paper-scale ms / Joules). */
    MetricSummary compDecompCpuMs;
    MetricSummary kswapdCpuMs;
    MetricSummary energyJ;
    MetricSummary compRatio;

    std::uint64_t totalRelaunches = 0;
    std::uint64_t totalStagedHits = 0;
    std::uint64_t totalMajorFaults = 0;
    std::uint64_t totalFlashFaults = 0;
    std::uint64_t totalLostPages = 0;
    std::uint64_t totalDirectReclaims = 0;

    /**
     * Machine-readable report. @p per_session additionally emits one
     * record per session (seeds, CPU, relaunch samples).
     */
    void writeJson(std::ostream &os, bool per_session = false) const;
};

/** Runs ScenarioSpecs as session fleets. */
class FleetRunner
{
  public:
    explicit FleetRunner(ScenarioSpec spec);

    /**
     * Run @p fleet sessions on @p threads worker threads.
     * @param fleet Session count; 0 uses the spec's fleet size.
     * @param threads Worker threads; 0 picks the hardware count.
     * Aggregates are independent of @p threads.
     */
    FleetResult run(std::size_t fleet = 0, unsigned threads = 1) const;

    /** Run the single session @p index (deterministic in isolation). */
    SessionResult runSession(std::size_t index) const;

    const ScenarioSpec &spec() const noexcept { return scenario; }

  private:
    ScenarioSpec scenario;
};

} // namespace ariadne::driver

#endif // ARIADNE_DRIVER_FLEET_RUNNER_HH
