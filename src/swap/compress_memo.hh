/**
 * @file
 * Cross-session compressed-size memo keyed by page content.
 *
 * PageCompressor's own cache is keyed by page *identity* —
 * (uid, pfn, version, codec, chunk) — and dies with its session. A
 * fleet worker, however, runs many sessions back to back over the
 * same app profiles, and the population model makes apps re-touch
 * similar pages across relaunches: the same bytes come back under
 * fresh identities session after session. This memo closes that gap
 * by keying on the bytes themselves, so a worker compresses each
 * distinct page content once and every later session that produces
 * the same bytes reuses the size.
 *
 * The table is direct-mapped: a splitmix-folded 64-bit fingerprint of
 * the content (seeded with the codec and chunk size, which change the
 * compressed size) picks one slot, and a full byte compare of the
 * stored content confirms the hit — a fingerprint collision can cost
 * a miss, never a wrong size. Replacement is overwrite-on-insert.
 * Correctness does not depend on hit rate: compression is a pure
 * function of (content, codec, chunk), so a memoized size is exactly
 * the size a fresh compression would produce, and reports are
 * byte-identical with the memo on or off.
 *
 * One memo belongs to one fleet worker thread (it sits beside the
 * worker's PageArena) — no internal locking.
 */

#ifndef ARIADNE_SWAP_COMPRESS_MEMO_HH
#define ARIADNE_SWAP_COMPRESS_MEMO_HH

#include <cstdint>
#include <vector>

#include "compress/codec.hh"
#include "mem/page.hh"

namespace ariadne
{

/** Content-keyed compressed-size memo shared across sessions. */
class CompressionMemo
{
  public:
    /** Sentinel lookup() result: no entry with these bytes. */
    static constexpr std::uint32_t notFound = UINT32_MAX;

    /** @p slot_count must be a power of two (~4 KB content each). */
    explicit CompressionMemo(std::size_t slot_count = defaultSlots);

    /**
     * Fingerprint of one page's bytes under (codec, chunk_bytes).
     * @p page must be exactly pageSize bytes. Compute once, pass to
     * both lookup() and insert().
     */
    std::uint64_t fingerprint(ConstBytes page, CodecKind codec,
                              std::size_t chunk_bytes) const noexcept;

    /** Memoized size of @p page, or notFound. Counts hit/miss. */
    std::uint32_t lookup(std::uint64_t fp, ConstBytes page) noexcept;

    /** Record @p csize for @p page, evicting the slot's occupant. */
    void insert(std::uint64_t fp, ConstBytes page,
                std::uint32_t csize);

    /** Lookups whose stored bytes matched. */
    std::uint64_t hits() const noexcept { return hitCount; }

    /** Lookups that found nothing (or only a colliding entry). */
    std::uint64_t misses() const noexcept { return missCount; }

    /** Slots currently holding an entry. */
    std::size_t liveEntries() const noexcept { return live; }

  private:
    /** 4096 slots * 4 KB stored content = ~16 MB per worker. */
    static constexpr std::size_t defaultSlots = std::size_t{1} << 12;

    struct Entry
    {
        std::uint64_t fp = 0;
        std::uint32_t csize = 0;
        bool used = false;
    };

    const std::uint8_t *
    contentAt(std::size_t idx) const noexcept
    {
        return contents.data() + idx * pageSize;
    }

    std::vector<Entry> entries;
    std::vector<std::uint8_t> contents; //!< slot_count stored pages
    std::size_t mask;
    std::size_t live = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace ariadne

#endif // ARIADNE_SWAP_COMPRESS_MEMO_HH
