#include "analysis/hotness_dist.hh"

namespace ariadne
{

std::vector<HotnessShare>
hotnessByCompressionOrder(const std::vector<Hotness> &stream,
                          std::size_t parts)
{
    std::vector<HotnessShare> result(parts);
    if (stream.empty() || parts == 0)
        return result;

    for (std::size_t part = 0; part < parts; ++part) {
        std::size_t begin = part * stream.size() / parts;
        std::size_t end = (part + 1) * stream.size() / parts;
        if (end <= begin) {
            continue;
        }
        std::size_t hot = 0, warm = 0, cold = 0;
        for (std::size_t i = begin; i < end; ++i) {
            switch (stream[i]) {
              case Hotness::Hot: ++hot; break;
              case Hotness::Warm: ++warm; break;
              case Hotness::Cold: ++cold; break;
            }
        }
        double n = static_cast<double>(end - begin);
        result[part].hot = static_cast<double>(hot) / n;
        result[part].warm = static_cast<double>(warm) / n;
        result[part].cold = static_cast<double>(cold) / n;
    }
    return result;
}

} // namespace ariadne
