/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * Every bench binary reproduces one table or figure of the paper. A
 * bench describes its runs as named driver::ScenarioSpec variants at
 * the standard evaluation scale, executes them through the
 * FleetRunner (a single-session fleet with the shared eval seed
 * reproduces the legacy hand-rolled bench loops bit-for-bit), prints
 * results side by side with the paper's reference values
 * (EXPERIMENTS.md records both), and — via BenchReport — emits a
 * machine-readable JSON report next to the table when invoked with
 * `--json FILE`.
 *
 * Bench specs flow through the same pluggable workload layer as the
 * CLI (driver/workload_source.hh): the default `workload = profiles`
 * source interprets the event program built here, and because
 * recording is observer-based, any bench variant can be captured with
 * FleetRunner::runRecorded and replayed bit-identically — custom
 * hooks record their system-level effects, though replay does not
 * re-run the hook bodies themselves.
 */

#ifndef ARIADNE_BENCH_COMMON_HH
#define ARIADNE_BENCH_COMMON_HH

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.hh"
#include "driver/fleet_runner.hh"
#include "driver/json_writer.hh"
#include "sys/session.hh"
#include "workload/apps.hh"

namespace ariadne::bench
{

/** Footprint scale all experiment harnesses run at (1/16 of the
 * paper's volumes; latencies are rescaled, see EXPERIMENTS.md). */
constexpr double evalScale = 0.0625;

/** Deterministic seed shared by all benches. */
constexpr std::uint64_t evalSeed = 42;

/** The five applications the paper plots (Figs. 2, 10-13, 15). */
inline std::vector<std::string>
plottedApps()
{
    return {"YouTube", "Twitter", "Firefox", "GoogleEarth",
            "BangDream"};
}

/**
 * Empty ScenarioSpec at the evaluation scale; add events to taste.
 * @param scheme Registered scheme name ("dram", "swap", "zram",
 *        "zswap", "ariadne"; see swap/scheme_registry.hh).
 * @param ariadne_cfg Table-5 config string; stored as the
 *        `scheme.config` knob when non-empty.
 */
inline driver::ScenarioSpec
makeSpec(const std::string &scheme, const std::string &ariadne_cfg = "")
{
    driver::ScenarioSpec spec;
    spec.scheme = scheme;
    if (!ariadne_cfg.empty())
        spec.params.set("config", ariadne_cfg);
    spec.scale = evalScale;
    spec.seed = evalSeed;
    return spec;
}

/** Spec for the §5 target-relaunch scenario of one app. */
inline driver::ScenarioSpec
targetSpec(std::string name, const std::string &scheme,
           const std::string &app_name, unsigned variant = 0,
           const std::string &ariadne_cfg = "")
{
    driver::ScenarioSpec spec = makeSpec(scheme, ariadne_cfg);
    spec.name = std::move(name);
    spec.program.push_back(
        driver::Event::targetScenario(app_name, variant));
    return spec;
}

/**
 * Run one variant as a single-session fleet (the legacy bench
 * methodology), keeping the session record so benches can read
 * per-session detail (relaunch samples, CPU, per-app CompStats).
 */
inline driver::FleetResult
runVariant(driver::ScenarioSpec spec,
           std::vector<driver::SessionHook> hooks = {})
{
    return driver::FleetRunner(std::move(spec), std::move(hooks))
        .run(1, 1, /*keep_sessions=*/true);
}

/** The single session of a runVariant() result. */
inline const driver::SessionResult &
session(const driver::FleetResult &r)
{
    return r.sessions.front();
}

/** Full-scale milliseconds of a scaled relaunch measurement. */
inline double
fullScaleMs(const RelaunchStats &st, double scale = evalScale)
{
    return static_cast<double>(st.fullScaleNs(scale)) / 1e6;
}

/** Last measured relaunch of a variant, in paper-scale ms. */
inline double
lastRelaunchMs(const driver::FleetResult &r)
{
    return session(r).relaunches.back().fullScaleMs;
}

/**
 * Collects a bench's per-variant fleet results and rendered tables
 * and writes them as one JSON report when the binary was invoked
 * with `--json FILE`. Table stdout is unaffected, so migrated
 * benches stay bit-identical with their pre-driver output.
 */
class BenchReport
{
  public:
    /** Parses argv; unknown flags print usage and exit(2). */
    BenchReport(std::string bench_name, int argc, char **argv)
        : name(std::move(bench_name))
    {
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
                jsonPath = argv[++i];
            } else {
                std::cerr << name << ": usage: " << argv[0]
                          << " [--json FILE]\n";
                std::exit(2);
            }
        }
    }

    /** Record one variant's aggregate (in run order). */
    void
    add(const driver::FleetResult &r)
    {
        variants.push_back(r);
    }

    /** Record a rendered table under @p label. */
    void
    addTable(std::string label, const ReportTable &t)
    {
        tables.emplace_back(std::move(label), t);
    }

    /**
     * Write the JSON report if requested; call last in main().
     * @return the bench's exit code (non-zero when the report could
     *         not be written).
     */
    int
    finish() const
    {
        if (jsonPath.empty())
            return 0;
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << name << ": cannot write " << jsonPath << "\n";
            return 1;
        }
        driver::JsonWriter w(out);
        w.beginObject();
        w.field("bench", name);
        w.key("variants");
        w.beginArray();
        for (const auto &variant : variants)
            variant.writeJson(w, /*per_session=*/false);
        w.endArray();
        w.key("tables");
        w.beginObject();
        for (const auto &[label, table] : tables) {
            w.key(label);
            driver::writeJson(w, table);
        }
        w.endObject();
        w.endObject();
        out << "\n";
        return out ? 0 : 1;
    }

  private:
    std::string name;
    std::string jsonPath;
    std::vector<driver::FleetResult> variants;
    std::vector<std::pair<std::string, ReportTable>> tables;
};

} // namespace ariadne::bench

#endif // ARIADNE_BENCH_COMMON_HH
