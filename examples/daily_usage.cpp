/**
 * @file
 * Daily-usage example: users switch apps >100 times a day (§1).
 *
 * Describes the day declaratively as a driver::ScenarioSpec — the
 * same config format scenarios/daily.cfg feeds to ariadne_sim — and
 * runs it under ZRAM and under Ariadne through the FleetRunner,
 * comparing the relaunch-latency distribution, comp/decomp CPU, and
 * PreDecomp effectiveness: the end-to-end user experience the paper
 * optimizes.
 *
 * Run:  ./build/examples/daily_usage
 */

#include <cstdio>

#include "driver/fleet_runner.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

// 120 round-robin app switches across the ten standard apps; the
// worst (and common) case where every relaunch finds its data
// evicted. Mirrors scenarios/daily.cfg.
constexpr const char *dayConfig = R"(
name = daily
scale = 0.0625
seed = 42
fleet = 1
event = warmup
event = repeat 120
event =   switch_next 2s 1s
event = end
)";

FleetResult
runDay(const std::string &scheme)
{
    ScenarioSpec spec = ScenarioSpec::parseString(dayConfig);
    spec.scheme = scheme;
    if (scheme == "ariadne")
        spec.params.set("config", "EHL-1K-2K-16K");
    return FleetRunner(std::move(spec)).run(1, 1);
}

void
printRow(const FleetResult &r)
{
    std::string label = r.scheme;
    if (r.scheme == "Ariadne" && !r.ariadneConfig.empty())
        label += "-" + r.ariadneConfig;
    std::printf("%-22s avg %6.1f ms  p50 %6.1f ms  p99 %6.1f ms  "
                "comp+decomp CPU %8.1f ms  staged hits %llu\n",
                label.c_str(), r.relaunchMs.mean, r.relaunchMs.p50,
                r.relaunchMs.p99, r.compDecompCpuMs.mean,
                static_cast<unsigned long long>(r.totalStagedHits));
}

/** Total time spent waiting on relaunches over the day, in ms. */
double
daySumMs(const FleetResult &r)
{
    return r.relaunchMs.mean *
           static_cast<double>(r.relaunchMs.samples);
}

} // namespace

int
main()
{
    std::printf("Daily usage: 120 app switches across 10 apps "
                "(full-scale estimates)\n\n");
    FleetResult zram = runDay("zram");
    FleetResult ariadne_day = runDay("ariadne");
    printRow(zram);
    printRow(ariadne_day);

    double zram_sum = daySumMs(zram);
    double ariadne_sum = daySumMs(ariadne_day);
    std::printf("\nOver the day, Ariadne saves %.1f seconds of "
                "relaunch waiting (%.0f%% reduction).\n",
                (zram_sum - ariadne_sum) / 1000.0,
                100.0 * (1.0 - ariadne_sum / zram_sum));
    return 0;
}
