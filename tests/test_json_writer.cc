/** @file Unit tests for the streaming JSON writer. */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.hh"
#include "driver/json_writer.hh"
#include "sim/stats.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

/** Run @p fn against a compact (indent 0) writer, return the text. */
template <typename Fn>
std::string
compact(Fn &&fn)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    fn(w);
    return os.str();
}

} // namespace

TEST(JsonWriter, EmptyObjectAndArray)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginObject();
                  w.endObject();
              }),
              "{}");
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginArray();
                  w.endArray();
              }),
              "[]");
}

TEST(JsonWriter, CommasSeparateElements)
{
    std::string text = compact([](JsonWriter &w) {
        w.beginObject();
        w.field("a", 1);
        w.field("b", 2);
        w.key("c");
        w.beginArray();
        w.value(1);
        w.value(2);
        w.value(3);
        w.endArray();
        w.endObject();
    });
    EXPECT_EQ(text, R"({"a": 1,"b": 2,"c": [1,2,3]})");
}

TEST(JsonWriter, PrettyPrintingIndents)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.field("a", 1);
    w.endObject();
    EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(JsonWriter::escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriter, FormatsDoublesDeterministically)
{
    EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
    EXPECT_EQ(JsonWriter::formatDouble(1.5), "1.5");
    EXPECT_EQ(JsonWriter::formatDouble(0.0625), "0.0625");
    // Shortest round-trip form, not fixed precision.
    EXPECT_EQ(JsonWriter::formatDouble(1.0 / 3.0),
              JsonWriter::formatDouble(1.0 / 3.0));
    // Non-finite doubles have no JSON representation.
    EXPECT_EQ(JsonWriter::formatDouble(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(JsonWriter::formatDouble(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(JsonWriter, BooleansAndNull)
{
    std::string text = compact([](JsonWriter &w) {
        w.beginArray();
        w.value(true);
        w.value(false);
        w.nullValue();
        w.endArray();
    });
    EXPECT_EQ(text, "[true,false,null]");
}

TEST(JsonWriter, StatRegistryDump)
{
    StatRegistry reg;
    Counter c;
    c.inc(3);
    Scalar s;
    s.sample(2.0);
    s.sample(4.0);
    reg.addCounter("zram.pages", c);
    reg.addScalar("fault.ns", s);

    std::string text = compact(
        [&](JsonWriter &w) { writeJson(w, reg); });
    EXPECT_NE(text.find("\"zram.pages\": 3"), std::string::npos);
    EXPECT_NE(text.find("\"fault.ns\""), std::string::npos);
    EXPECT_NE(text.find("\"mean\": 3"), std::string::npos);
    EXPECT_NE(text.find("\"samples\": 2"), std::string::npos);
}

TEST(JsonWriter, ReportTableDump)
{
    ReportTable table({"App", "ms"});
    table.addRow({"YouTube", "42.0"});
    table.addRow({"Twitter", "17.5"});

    std::string text = compact(
        [&](JsonWriter &w) { writeJson(w, table); });
    EXPECT_EQ(text, R"([{"App": "YouTube","ms": "42.0"},)"
                    R"({"App": "Twitter","ms": "17.5"}])");
}
