#include "workload/trace.hh"

#include <array>
#include <cstring>

#include "sim/log.hh"

namespace ariadne
{

namespace
{

constexpr std::uint32_t traceMagic = 0x52545241u; // "ARTR"
constexpr std::uint32_t traceVersion = 1;

/** On-disk record: 8+1+4+8+4+1+1 = 27 bytes, packed little endian. */
constexpr std::size_t recordBytes = 27;

void
encode(const TraceRecord &rec, std::array<char, recordBytes> &buf)
{
    char *p = buf.data();
    std::memcpy(p, &rec.time, 8);
    p += 8;
    *p++ = static_cast<char>(rec.op);
    std::memcpy(p, &rec.uid, 4);
    p += 4;
    std::memcpy(p, &rec.pfn, 8);
    p += 8;
    std::memcpy(p, &rec.version, 4);
    p += 4;
    *p++ = static_cast<char>(rec.truth);
    *p++ = rec.newAllocation ? 1 : 0;
}

bool
decode(const std::array<char, recordBytes> &buf, TraceRecord &rec)
{
    const char *p = buf.data();
    std::memcpy(&rec.time, p, 8);
    p += 8;
    std::uint8_t op = static_cast<std::uint8_t>(*p++);
    if (op > static_cast<std::uint8_t>(TraceOp::Free))
        return false;
    rec.op = static_cast<TraceOp>(op);
    std::memcpy(&rec.uid, p, 4);
    p += 4;
    std::memcpy(&rec.pfn, p, 8);
    p += 8;
    std::memcpy(&rec.version, p, 4);
    p += 4;
    std::uint8_t truth = static_cast<std::uint8_t>(*p++);
    if (truth > static_cast<std::uint8_t>(Hotness::Cold))
        return false;
    rec.truth = static_cast<Hotness>(truth);
    rec.newAllocation = *p++ != 0;
    return true;
}

} // namespace

const char *
traceOpName(TraceOp op) noexcept
{
    switch (op) {
      case TraceOp::Launch: return "launch";
      case TraceOp::Relaunch: return "relaunch";
      case TraceOp::RelaunchEnd: return "relaunchEnd";
      case TraceOp::Background: return "background";
      case TraceOp::Touch: return "touch";
      case TraceOp::Free: return "free";
      default: return "unknown";
    }
}

TraceWriter::TraceWriter(const std::string &path)
    : out(path, std::ios::binary | std::ios::trunc)
{
    fatalIf(!out, "cannot open trace for writing: " + path);
    std::uint64_t placeholder = 0;
    out.write(reinterpret_cast<const char *>(&traceMagic), 4);
    out.write(reinterpret_cast<const char *>(&traceVersion), 4);
    out.write(reinterpret_cast<const char *>(&placeholder), 8);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &rec)
{
    panicIf(closed, "append to closed TraceWriter");
    std::array<char, recordBytes> buf;
    encode(rec, buf);
    out.write(buf.data(), buf.size());
    ++written;
}

void
TraceWriter::close()
{
    if (closed)
        return;
    closed = true;
    out.seekp(8);
    out.write(reinterpret_cast<const char *>(&written), 8);
    out.close();
}

TraceReader::TraceReader(const std::string &path)
    : in(path, std::ios::binary)
{
    fatalIf(!in, "cannot open trace: " + path);
    std::uint32_t magic = 0, version = 0;
    in.read(reinterpret_cast<char *>(&magic), 4);
    in.read(reinterpret_cast<char *>(&version), 4);
    in.read(reinterpret_cast<char *>(&total), 8);
    fatalIf(!in || magic != traceMagic, "bad trace header: " + path);
    fatalIf(version != traceVersion,
            "unsupported trace version in " + path);
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (consumed >= total)
        return false;
    std::array<char, recordBytes> buf;
    in.read(buf.data(), buf.size());
    if (!in)
        return false;
    if (!decode(buf, rec))
        fatal("corrupt trace record");
    ++consumed;
    return true;
}

std::vector<TraceRecord>
readTrace(const std::string &path)
{
    TraceReader reader(path);
    std::vector<TraceRecord> records;
    records.reserve(reader.count());
    TraceRecord rec;
    while (reader.next(rec))
        records.push_back(rec);
    return records;
}

void
writeTrace(const std::string &path,
           const std::vector<TraceRecord> &records)
{
    TraceWriter writer(path);
    for (const auto &rec : records)
        writer.append(rec);
    writer.close();
}

void
exportTraceCsv(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    std::ofstream csv(path, std::ios::trunc);
    fatalIf(!csv, "cannot open CSV for writing: " + path);
    csv << "time_ns,op,uid,pfn,version,truth,new_allocation\n";
    for (const auto &rec : records) {
        csv << rec.time << ',' << traceOpName(rec.op) << ',' << rec.uid
            << ',' << rec.pfn << ',' << rec.version << ','
            << hotnessName(rec.truth) << ','
            << (rec.newAllocation ? 1 : 0) << '\n';
    }
}

} // namespace ariadne
