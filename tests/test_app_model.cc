/** @file Unit tests for app profiles and the standard app set. */

#include <gtest/gtest.h>

#include "workload/apps.hh"

using namespace ariadne;

TEST(AppModel, VolumeCurveInterpolates)
{
    AppProfile p;
    p.anonBytes10s = 100 << 20;
    p.anonBytes5min = 400 << 20;
    EXPECT_EQ(p.anonBytesAtAge(0), p.anonBytes10s);
    EXPECT_EQ(p.anonBytesAtAge(10ULL * 1000000000ULL), p.anonBytes10s);
    EXPECT_EQ(p.anonBytesAtAge(300ULL * 1000000000ULL),
              p.anonBytes5min);
    EXPECT_EQ(p.anonBytesAtAge(600ULL * 1000000000ULL),
              p.anonBytes5min);
    std::size_t mid = p.anonBytesAtAge(155ULL * 1000000000ULL);
    EXPECT_GT(mid, p.anonBytes10s);
    EXPECT_LT(mid, p.anonBytes5min);
}

TEST(AppModel, ContentMixTotal)
{
    ContentMix m;
    m[RegionType::Zero] = 0.25;
    m[RegionType::Text] = 0.75;
    EXPECT_DOUBLE_EQ(m.totalWeight(), 1.0);
}

TEST(Apps, TenStandardApps)
{
    auto apps = standardApps();
    ASSERT_EQ(apps.size(), 10u);
    for (std::size_t i = 0; i < apps.size(); ++i)
        EXPECT_EQ(apps[i].uid, static_cast<AppId>(i));
}

TEST(Apps, TableOneVolumesMatchPaper)
{
    // Table 1 of the paper, in MB.
    struct Row
    {
        const char *name;
        std::size_t mb10s, mb5min;
    };
    const Row rows[] = {{"YouTube", 177, 358},
                        {"Twitter", 182, 273},
                        {"Firefox", 560, 716},
                        {"GoogleEarth", 273, 429},
                        {"BangDream", 326, 821}};
    for (const auto &row : rows) {
        AppProfile p = standardApp(row.name);
        EXPECT_EQ(p.anonBytes10s, row.mb10s << 20) << row.name;
        EXPECT_EQ(p.anonBytes5min, row.mb5min << 20) << row.name;
    }
}

TEST(Apps, ParametersWithinPaperRanges)
{
    double sim_sum = 0.0, reuse_sum = 0.0;
    for (const auto &app : standardApps()) {
        EXPECT_GT(app.hotFraction, 0.0);
        EXPECT_LT(app.hotFraction, 0.5);
        EXPECT_GT(app.hotSimilarity, 0.5);
        EXPECT_LT(app.hotSimilarity, 0.9);
        EXPECT_GT(app.reuseFraction, app.hotSimilarity);
        EXPECT_GT(app.seqAccessProb, 0.4);
        EXPECT_LE(app.seqAccessProb, 0.97);
        EXPECT_GT(app.mix.totalWeight(), 0.9);
        sim_sum += app.hotSimilarity;
        reuse_sum += app.reuseFraction;
    }
    // Fig. 5 averages: similarity ~0.70, reuse ~0.98.
    EXPECT_NEAR(sim_sum / 10.0, 0.70, 0.03);
    EXPECT_NEAR(reuse_sum / 10.0, 0.98, 0.01);
}

TEST(Apps, BangDreamHasLeastHotData)
{
    // §6.1 singles out BangDream as producing less hot data.
    auto apps = standardApps();
    double bang = standardApp("BangDream").hotFraction;
    for (const auto &app : apps)
        EXPECT_LE(bang, app.hotFraction) << app.name;
}

TEST(AppsDeath, UnknownNameIsFatal)
{
    // The message lists every valid profile name, so a typo is
    // fixable without reading the source.
    EXPECT_DEATH(standardApp("NotAnApp"),
                 "unknown standard app: NotAnApp "
                 "\\(valid: YouTube, Twitter, Firefox, GoogleEarth, "
                 "BangDream, TikTok, Edge, GoogleMaps, AngryBirds, "
                 "TwitchTV\\)");
}
