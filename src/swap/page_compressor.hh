/**
 * @file
 * Page compression service with size memoization.
 *
 * Every compression in the simulator runs a real codec over real
 * synthesized bytes; this helper materializes page contents, invokes
 * the chunked framing layer, and returns the true compressed size.
 * Because contents are pure functions of (uid, pfn, version), single-
 * page results are memoized — schemes recompress the same hot pages
 * on every app switch, and the cache turns that into a lookup while
 * keeping the sizes exact.
 */

#ifndef ARIADNE_SWAP_PAGE_COMPRESSOR_HH
#define ARIADNE_SWAP_PAGE_COMPRESSOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compress/chunked.hh"
#include "compress/codec.hh"
#include "mem/page.hh"
#include "sim/stats.hh"

namespace ariadne
{

/** Reference to one page's content. */
struct PageRef
{
    PageKey key;
    std::uint32_t version = 0;
};

/** Materializes and compresses page contents, caching sizes. */
class PageCompressor
{
  public:
    explicit PageCompressor(const PageContentSource &source)
        : content(source)
    {}

    /**
     * Compressed size of one page framed with @p chunk_bytes chunks.
     * Memoized on (page, codec, chunk size).
     */
    std::size_t compressedSizeOne(const PageRef &page,
                                  const Codec &codec,
                                  std::size_t chunk_bytes);

    /**
     * Compressed size of a multi-page unit: pages are concatenated in
     * order and framed with @p chunk_bytes chunks (Ariadne's large-
     * size cold units). Not memoized — units form once per eviction.
     */
    std::size_t compressedSizeMany(const std::vector<PageRef> &pages,
                                   const Codec &codec,
                                   std::size_t chunk_bytes);

    /** Cache hits observed (for tests and reports). */
    std::uint64_t cacheHits() const noexcept { return hits; }

    /** Cache misses (real compressions of single pages). */
    std::uint64_t cacheMisses() const noexcept { return misses; }

    /** Total uncompressed bytes actually run through a codec. */
    std::uint64_t
    bytesCompressed() const noexcept
    {
        return compressedVolume;
    }

  private:
    struct CacheKey
    {
        AppId uid;
        Pfn pfn;
        std::uint32_t version;
        std::uint8_t codec;
        std::uint32_t chunk;

        bool operator==(const CacheKey &o) const noexcept = default;
    };

    struct CacheKeyHash
    {
        std::size_t
        operator()(const CacheKey &k) const noexcept
        {
            std::uint64_t h = k.pfn * 0x9e3779b97f4a7c15ULL;
            h ^= (std::uint64_t{k.uid} << 32) ^ k.version;
            h = (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ULL;
            h ^= (std::uint64_t{k.codec} << 56) ^
                 (std::uint64_t{k.chunk} << 8);
            return static_cast<std::size_t>(h ^ (h >> 31));
        }
    };

    const PageContentSource &content;
    std::unordered_map<CacheKey, std::uint32_t, CacheKeyHash> cache;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t compressedVolume = 0;
};

} // namespace ariadne

#endif // ARIADNE_SWAP_PAGE_COMPRESSOR_HH
