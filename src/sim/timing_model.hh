/**
 * @file
 * Calibrated device timing model.
 *
 * The paper evaluates on a Google Pixel 7 (Table 4). This simulator
 * replaces the physical device with an analytic timing model: every
 * data-movement or compute event maps to nanoseconds of simulated time
 * through the constants below. Functional results (what is compressed,
 * to what ratio, what faults) come from real execution of the from-
 * scratch codecs; only *durations* come from this model.
 *
 * Calibration anchors (see DESIGN.md and EXPERIMENTS.md):
 *  - Fig. 6: compressing 576 MB with 128 B chunks is 59.2x (LZ4) and
 *    41.8x (LZO) faster than with 128 KB chunks. The model realizes
 *    this with a per-byte cost that grows by `compGrowth` per chunk-
 *    size doubling relative to the 4 KB reference point.
 *  - Fig. 2: ZRAM relaunch is ~2.1x slower than pure DRAM; SWAP is
 *    slower still. Fault, decompression, and flash costs are sized to
 *    land in that regime.
 *  - Prior work cited in the paper: process creation dominates cold
 *    launch (94%); LRU list operations are ~100x cheaper than swaps.
 */

#ifndef ARIADNE_SIM_TIMING_MODEL_HH
#define ARIADNE_SIM_TIMING_MODEL_HH

#include <cstddef>

#include "sim/types.hh"

namespace ariadne
{

/**
 * Per-algorithm timing coefficients. The reference point is a 4 KB
 * chunk; the per-byte cost multiplier is piecewise-exponential in the
 * chunk size with three regimes:
 *
 *  - below 1 KB, cost falls steeply as chunks shrink (tiny match
 *    windows, trivial search state) — `growthSmall` per doubling;
 *  - between 1 KB and 32 KB, chunks live in L1/L2 and the growth per
 *    doubling is mild — `growthMid`;
 *  - above 32 KB, the working set spills the caches and cost per
 *    byte explodes — `growthLarge`.
 *
 * The regime boundaries reconcile the paper's two observations: the
 * 59.2x/41.8x total-time span of Fig. 6 (driven by the extremes) and
 * Fig. 11's CPU *reduction* with 16-32 KB cold chunks (which requires
 * mid-range chunks to be only mildly more expensive than 4 KB).
 */
struct CodecCost
{
    double compNsPerByte4k;   //!< compression ns/byte at 4 KB chunks
    double decompNsPerByte4k; //!< decompression ns/byte at 4 KB chunks
    double compGrowthSmall;   //!< comp growth per doubling below 1 KB
    double compGrowthMid;     //!< comp growth per doubling 1..32 KB
    double compGrowthLarge;   //!< comp growth per doubling above 32 KB
    double decompGrowthSmall; //!< decomp growth below 1 KB
    double decompGrowthMid;   //!< decomp growth 1..32 KB
    double decompGrowthLarge; //!< decomp growth above 32 KB
};

/** LZ4 coefficients (Fig. 6 span 59.2x over 128 B..128 KB). */
constexpr CodecCost lz4Cost{0.80, 0.25, 1.63, 1.15, 2.75,
                            1.45, 1.25, 1.80};

/** LZO coefficients (Fig. 6 span 41.8x over 128 B..128 KB). */
constexpr CodecCost lzoCost{1.00, 0.35, 1.55, 1.12, 2.60,
                            1.45, 1.25, 1.80};

/** Base-delta-immediate: near-constant cost per byte. */
constexpr CodecCost bdiCost{0.08, 0.05, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

/** Null codec (memcpy). */
constexpr CodecCost nullCost{0.02, 0.02, 1.0, 1.0, 1.0,
                             1.0, 1.0, 1.0};

/** Tunable device constants; defaults approximate a Pixel 7. */
struct TimingParams
{
    /** Copy one 4 KB page within DRAM. */
    Tick dramPageCopyNs = 250;
    /** Service a minor fault (page resident). */
    Tick minorFaultNs = 1500;
    /** Major-fault bookkeeping, excluding I/O and decompression. */
    Tick majorFaultBaseNs = 2500;
    /** Random 4 KB read latency from UFS 3.1 flash. */
    Tick flashReadPageNs = 80000;
    /** 4 KB program latency to UFS 3.1 flash. */
    Tick flashWritePageNs = 200000;
    /** Pages fetched per flash read thanks to swap readahead. */
    unsigned flashReadaheadPages = 4;
    /** CPU cost to build and submit one swap I/O request. */
    Tick flashSubmitCpuNs = 300;
    /** CPU cost to write back one file-backed page (reclaim path). */
    Tick fileWritebackCpuNs = 3000;
    /** One LRU list operation (unlink/insert). */
    Tick lruOpNs = 150;
    /** Process creation (dominates cold launch per prior work). */
    Tick processCreateNs = 180000000;
    /** Base UI/runtime work of a hot relaunch, excluding paging. */
    Tick relaunchBaseNs = 30000000;
    /** Fixed CPU overhead per compression chunk invocation. */
    Tick compChunkOverheadNs = 2;
    /** Fixed CPU overhead per decompression chunk invocation. */
    Tick decompChunkOverheadNs = 2;
};

/** Maps simulator events to simulated nanoseconds. */
class TimingModel
{
  public:
    explicit TimingModel(const TimingParams &p = TimingParams{})
        : prm(p)
    {}

    /** Access to the raw constants. */
    const TimingParams &params() const noexcept { return prm; }

    /**
     * Modeled time to compress @p total_bytes using @p chunk_bytes
     * chunks with algorithm @p cost.
     */
    Tick compressNs(const CodecCost &cost, std::size_t chunk_bytes,
                    std::size_t total_bytes) const noexcept;

    /** Modeled time to decompress, mirror of compressNs. */
    Tick decompressNs(const CodecCost &cost, std::size_t chunk_bytes,
                      std::size_t total_bytes) const noexcept;

    /** Per-byte compression cost at @p chunk_bytes (exposed for tests). */
    double compNsPerByte(const CodecCost &cost,
                         std::size_t chunk_bytes) const noexcept;

    /** Per-byte decompression cost at @p chunk_bytes. */
    double decompNsPerByte(const CodecCost &cost,
                           std::size_t chunk_bytes) const noexcept;

    /**
     * Wall time to read @p pages 4 KB pages from flash, accounting for
     * readahead clustering (pages fetched together share one access).
     */
    Tick flashReadNs(std::size_t pages) const noexcept;

    /** Wall time to write @p pages 4 KB pages to flash. */
    Tick flashWriteNs(std::size_t pages) const noexcept;

    /** Wall time to write @p bytes to flash (sub-page granularity). */
    Tick flashWriteBytesNs(std::size_t bytes) const noexcept;

  private:
    TimingParams prm;
};

} // namespace ariadne

#endif // ARIADNE_SIM_TIMING_MODEL_HH
