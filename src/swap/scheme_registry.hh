/**
 * @file
 * String-keyed swap-scheme registry.
 *
 * Scheme selection used to be a hard-wired `enum SchemeKind` switch in
 * MobileSystem; the registry replaces it with self-describing entries:
 * every scheme registers a name (`dram`, `swap`, `zram`, `zswap`,
 * `ariadne`), a one-line description, its knob schema and a build
 * factory. Configuration reaches a factory as a SchemeParams bag —
 * a typed key→value map parsed from the namespaced `scheme.<knob>`
 * keys of a scenario config (`scheme = ariadne`,
 * `scheme.zpool_mb = 192`, `scheme.predecomp = off`, ...).
 *
 * Adding a scheme means writing its implementation file — which also
 * defines its SchemeInfo (see e.g. dramOnlySchemeInfo) — and naming
 * that info function in the builtin table of scheme_registry.cc. The
 * registry is deliberately pull-based rather than relying on static
 * initializers: the simulator links as a static library, and an
 * unreferenced translation unit's initializers would silently be
 * dropped, losing the scheme.
 *
 * Errors are reported with SchemeError (a std::runtime_error): the
 * registry is used by the config layer, which must surface bad user
 * input instead of aborting.
 */

#ifndef ARIADNE_SWAP_SCHEME_REGISTRY_HH
#define ARIADNE_SWAP_SCHEME_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "swap/scheme.hh"

namespace ariadne
{

/** Invalid scheme selection or knob value (a configuration error). */
class SchemeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Typed key→value bag of scheme policy knobs. Values are stored as
 * the strings they were configured with and parsed on access, so one
 * bag can carry any scheme's schema; entries are kept in key order,
 * which keeps serialized configs canonical. The typed getters throw
 * SchemeError on malformed values and return the supplied default
 * when the key is absent.
 */
class SchemeParams
{
  public:
    /** Set (or overwrite) knob @p key to the raw text @p value. */
    void set(const std::string &key, std::string value);

    /** Remove knob @p key if present. */
    void erase(const std::string &key);

    bool has(const std::string &key) const noexcept;
    bool empty() const noexcept { return values.empty(); }

    /** Raw text of @p key, or nullptr when absent. */
    const std::string *raw(const std::string &key) const noexcept;

    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** Accepts true/false, on/off, 1/0 (case-insensitive). */
    bool getBool(const std::string &key, bool def) const;

    std::uint64_t getU64(const std::string &key,
                         std::uint64_t def) const;

    double getDouble(const std::string &key, double def) const;

    /** Capacity knob: the value is mebibytes, the result bytes. */
    std::size_t getMiB(const std::string &key,
                       std::size_t def_bytes) const;

    /** Entries in key order (canonical serialization order). */
    const std::map<std::string, std::string> &
    entries() const noexcept
    {
        return values;
    }

    bool operator==(const SchemeParams &o) const = default;

  private:
    std::map<std::string, std::string> values;
};

/** One tunable knob of a scheme's schema. */
struct SchemeKnob
{
    SchemeKnob(std::string name, std::string type,
               std::string default_value, std::string description,
               std::function<void(const std::string &)> check = {})
        : name(std::move(name)), type(std::move(type)),
          defaultValue(std::move(default_value)),
          description(std::move(description)),
          check(std::move(check))
    {
    }

    /** Knob key as configured (`scheme.<name> = ...`). */
    std::string name;
    /** Value type: "string", "bool", "u64", "double" or "mb". */
    std::string type;
    /** Default shown by `--list-schemes` (display only). */
    std::string defaultValue;
    /** One-line description. */
    std::string description;
    /**
     * Optional value check beyond the type (grammar of a config
     * string, range of a fraction, ...); throws SchemeError on bad
     * values. Runs at validation time, so config errors surface with
     * the offending line instead of deep inside a factory.
     */
    std::function<void(const std::string &value)> check;
};

/** Everything the system layer needs to build a scheme by name. */
struct SchemeInfo
{
    /** Registry key and config-file name (lowercase). */
    std::string key;
    /** Report display name ("DRAM", "ZRAM", "Ariadne", ...). */
    std::string displayName;
    /** One-line description for `--list-schemes`. */
    std::string description;
    /** Knob schema; params are validated against it. */
    std::vector<SchemeKnob> knobs;
    /**
     * Ideal-DRAM baseline: the system sizes DRAM so the scheme never
     * reclaims (the paper's optimistic bound) instead of using the
     * configured budget.
     */
    bool unboundedDram = false;
    /**
     * Build the scheme. @p params has been validated against the
     * schema; capacity knobs are given at paper scale and the factory
     * multiplies them by @p scale (the footprint scale of the run).
     */
    std::function<std::unique_ptr<SwapScheme>(
        SwapContext ctx, const SchemeParams &params, double scale)>
        build;
};

/**
 * The process-wide scheme registry. Populated with the five builtin
 * schemes on first access and immutable afterwards, so concurrent
 * fleet workers may query it freely.
 */
class SchemeRegistry
{
  public:
    /** The registry (builtins registered on first call). */
    static const SchemeRegistry &instance();

    /** Info for @p key, or nullptr when unknown. */
    const SchemeInfo *find(const std::string &key) const noexcept;

    /** Info for @p key; throws SchemeError listing the valid names. */
    const SchemeInfo &at(const std::string &key) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> names() const;

    /** Sorted keys joined with ", " (for error messages). */
    std::string namesJoined() const;

    /** Infos in key order (for `--list-schemes`). */
    std::vector<const SchemeInfo *> infos() const;

    /**
     * Check @p params against @p key's schema: every knob must exist
     * and its value must parse at the declared type. Throws
     * SchemeError naming the offending knob (and, for unknown knobs,
     * the scheme's valid ones).
     */
    void validate(const std::string &key,
                  const SchemeParams &params) const;

    /** validate() then build the scheme. */
    std::unique_ptr<SwapScheme> build(const std::string &key,
                                      SwapContext ctx,
                                      const SchemeParams &params,
                                      double scale) const;

  private:
    SchemeRegistry();

    /** Register @p info; throws SchemeError on duplicate keys. */
    void add(SchemeInfo info);

    std::map<std::string, SchemeInfo> schemes;
};

/** Scale a paper-scale byte capacity by the run's footprint scale. */
std::size_t scaledBytes(std::size_t bytes, double scale) noexcept;

/**
 * Parse a codec knob ("lzo", "lz4", "bdi", "null"); throws
 * SchemeError on unknown names.
 */
CodecKind parseCodecKnob(const std::string &name);

} // namespace ariadne

#endif // ARIADNE_SWAP_SCHEME_REGISTRY_HH
