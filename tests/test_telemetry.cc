/** @file Unit tests for the telemetry counter/duration registry. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "telemetry/telemetry.hh"

using namespace ariadne;
using telemetry::Counter;
using telemetry::DurationProbe;
using telemetry::Registry;
using telemetry::ScopedTimer;

namespace
{

/** Every test starts from zeroed shards with probes disabled. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::setEnabled(true);
        Registry::global().reset();
    }

    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        Registry::global().reset();
    }
};

} // namespace

TEST_F(TelemetryTest, CounterAccumulates)
{
    Counter c("test.basic");
    c.add();
    c.add(41);
    auto snap = Registry::global().snapshot();
    EXPECT_EQ(snap.counter("test.basic"), 42u);
}

TEST_F(TelemetryTest, DisabledCounterRecordsNothing)
{
    Counter c("test.disabled");
    telemetry::setEnabled(false);
    c.add(100);
    auto snap = Registry::global().snapshot();
    EXPECT_EQ(snap.counter("test.disabled"), 0u);
}

TEST_F(TelemetryTest, InterningIsIdempotent)
{
    std::size_t a = Registry::global().counterSlot("test.intern");
    std::size_t b = Registry::global().counterSlot("test.intern");
    EXPECT_EQ(a, b);
    // Two Counter objects with the same name share a slot.
    Counter c1("test.intern2");
    Counter c2("test.intern2");
    c1.add();
    c2.add();
    EXPECT_EQ(Registry::global().snapshot().counter("test.intern2"),
              2u);
}

TEST_F(TelemetryTest, CounterAndDurationNamespacesAreSeparate)
{
    Counter c("test.both");
    DurationProbe d("test.both");
    c.add(7);
    d.record(100);
    auto snap = Registry::global().snapshot();
    EXPECT_EQ(snap.counter("test.both"), 7u);
    EXPECT_EQ(snap.duration("test.both").count, 1u);
    EXPECT_EQ(snap.duration("test.both").totalNs, 100u);
}

TEST_F(TelemetryTest, UnknownNamesReadAsZero)
{
    auto snap = Registry::global().snapshot();
    EXPECT_EQ(snap.counter("test.never_registered"), 0u);
    EXPECT_EQ(snap.duration("test.never_registered").count, 0u);
}

TEST_F(TelemetryTest, DurationAccumulatesTotalAndCount)
{
    DurationProbe d("test.dur");
    d.record(10);
    d.record(20);
    d.record(30);
    auto v = Registry::global().snapshot().duration("test.dur");
    EXPECT_EQ(v.count, 3u);
    EXPECT_EQ(v.totalNs, 60u);
    EXPECT_DOUBLE_EQ(v.meanNs(), 20.0);
}

TEST_F(TelemetryTest, ScopedTimerRecordsRealTime)
{
    DurationProbe d("test.timer");
    {
        ScopedTimer t(d);
        // Burn a little host time so the span is non-zero.
        volatile unsigned sink = 0;
        for (unsigned i = 0; i < 10000; ++i)
            sink = sink + i;
    }
    auto v = Registry::global().snapshot().duration("test.timer");
    EXPECT_EQ(v.count, 1u);
    EXPECT_GT(v.totalNs, 0u);
}

TEST_F(TelemetryTest, NestedTimersRecordIndependently)
{
    DurationProbe outer("test.outer");
    DurationProbe inner("test.inner");
    {
        ScopedTimer to(outer);
        {
            ScopedTimer ti(inner);
        }
        {
            ScopedTimer ti(inner);
        }
    }
    auto snap = Registry::global().snapshot();
    EXPECT_EQ(snap.duration("test.outer").count, 1u);
    EXPECT_EQ(snap.duration("test.inner").count, 2u);
    // The outer span covers both inner spans.
    EXPECT_GE(snap.duration("test.outer").totalNs,
              snap.duration("test.inner").totalNs);
}

TEST_F(TelemetryTest, TimerCapturesEnabledAtConstruction)
{
    DurationProbe d("test.capture");
    telemetry::setEnabled(false);
    {
        ScopedTimer t(d);
        // Enabling mid-span must not make this span record.
        telemetry::setEnabled(true);
    }
    EXPECT_EQ(Registry::global().snapshot().duration("test.capture")
                  .count,
              0u);
}

TEST_F(TelemetryTest, MergeOnFinalizeSumsThreadShards)
{
    Counter c("test.sharded");
    constexpr int threads = 8;
    constexpr std::uint64_t per_thread = 1000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::uint64_t i = 0; i < per_thread; ++i)
                c.add();
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(Registry::global().snapshot().counter("test.sharded"),
              threads * per_thread);
}

TEST_F(TelemetryTest, SnapshotMergeIsAssociative)
{
    // Build three snapshots with overlapping and disjoint names, as
    // three fleet shards would produce.
    Counter a("test.m.a");
    Counter b("test.m.b");
    DurationProbe d("test.m.d");

    a.add(1);
    d.record(10);
    auto s1 = Registry::global().snapshot();
    Registry::global().reset();

    a.add(2);
    b.add(5);
    auto s2 = Registry::global().snapshot();
    Registry::global().reset();

    b.add(7);
    d.record(30);
    auto s3 = Registry::global().snapshot();
    Registry::global().reset();

    // (s1 + s2) + s3
    auto left = s1;
    left.merge(s2);
    left.merge(s3);
    // s1 + (s2 + s3)
    auto right_tail = s2;
    right_tail.merge(s3);
    auto right = s1;
    right.merge(right_tail);

    EXPECT_EQ(left.counter("test.m.a"), 3u);
    EXPECT_EQ(left.counter("test.m.b"), 12u);
    EXPECT_EQ(left.duration("test.m.d").count, 2u);
    EXPECT_EQ(left.duration("test.m.d").totalNs, 40u);
    ASSERT_EQ(left.counters.size(), right.counters.size());
    for (std::size_t i = 0; i < left.counters.size(); ++i) {
        EXPECT_EQ(left.counters[i].name, right.counters[i].name);
        EXPECT_EQ(left.counters[i].value, right.counters[i].value);
    }
    ASSERT_EQ(left.durations.size(), right.durations.size());
    for (std::size_t i = 0; i < left.durations.size(); ++i) {
        EXPECT_EQ(left.durations[i].name, right.durations[i].name);
        EXPECT_EQ(left.durations[i].totalNs,
                  right.durations[i].totalNs);
        EXPECT_EQ(left.durations[i].count, right.durations[i].count);
    }
}

TEST_F(TelemetryTest, SnapshotIsSortedByName)
{
    Counter z("test.z");
    Counter a("test.a");
    z.add();
    a.add();
    auto snap = Registry::global().snapshot();
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
}

TEST_F(TelemetryTest, ResetZeroesButKeepsRegistrations)
{
    Counter c("test.reset");
    c.add(9);
    Registry::global().reset();
    EXPECT_EQ(Registry::global().snapshot().counter("test.reset"), 0u);
    // The probe's slot survives the reset.
    c.add(4);
    EXPECT_EQ(Registry::global().snapshot().counter("test.reset"), 4u);
}
