/**
 * @file
 * Per-application relaunch profiles.
 *
 * §4.2: "we profile data usage for each application during its
 * relaunch to determine the initial size of the hot list. [...] the
 * amount of hot data remains similar for each relaunch". The store
 * keeps one number per app — the expected hot-set size in pages —
 * seeded from an offline profile and refined after every relaunch
 * with an exponential moving average.
 */

#ifndef ARIADNE_CORE_PROFILE_STORE_HH
#define ARIADNE_CORE_PROFILE_STORE_HH

#include <cstddef>
#include <unordered_map>

#include "sim/types.hh"

namespace ariadne
{

/** Stores and refines hot-set size estimates per application. */
class ProfileStore
{
  public:
    /** @param default_pages Estimate for apps never seen before. */
    explicit ProfileStore(std::size_t default_pages = 4096)
        : fallback(default_pages)
    {}

    /** Seed an app's hot-set size from offline profiling. */
    void
    seed(AppId uid, std::size_t hot_pages)
    {
        estimates[uid] = hot_pages;
    }

    /** Current hot-set size estimate. */
    std::size_t
    hotInitPages(AppId uid) const
    {
        auto it = estimates.find(uid);
        return it == estimates.end() ? fallback : it->second;
    }

    /** Fold in an observed relaunch hot-set size (EMA, alpha=0.5). */
    void
    recordRelaunch(AppId uid, std::size_t observed_pages)
    {
        auto it = estimates.find(uid);
        if (it == estimates.end()) {
            estimates[uid] = observed_pages;
        } else {
            it->second = (it->second + observed_pages + 1) / 2;
        }
    }

    /** Number of apps with explicit profiles. */
    std::size_t size() const noexcept { return estimates.size(); }

  private:
    std::size_t fallback;
    std::unordered_map<AppId, std::size_t> estimates;
};

} // namespace ariadne

#endif // ARIADNE_CORE_PROFILE_STORE_HH
