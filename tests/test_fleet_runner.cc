/** @file Unit tests for the fleet experiment runner. */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/fleet_runner.hh"
#include "workload/apps.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

/**
 * A fast scenario: warm up all ten apps (which overflows the scaled
 * DRAM budget, so reclaim and compression run), then a dozen
 * round-robin switches. Small enough to run a fleet of six in about a
 * second, busy enough to exercise the fault and relaunch paths.
 */
ScenarioSpec
smallSpec()
{
    return ScenarioSpec::parseString(R"(
name = test-fleet
scheme = ariadne
ariadne = EHL-1K-2K-16K
scale = 0.0625
seed = 7
fleet = 6
event = warmup
event = repeat 12
event =   switch_next 200ms 100ms
event = end
)");
}

std::string
jsonOf(const FleetResult &r, bool per_session)
{
    std::ostringstream os;
    r.writeJson(os, per_session);
    return os.str();
}

} // namespace

TEST(FleetRunner, SessionCountAndRecordedRelaunches)
{
    FleetRunner runner(smallSpec());
    FleetResult r = runner.run(2, 1, /*keep_sessions=*/true);
    ASSERT_EQ(r.sessions.size(), 2u);
    // Warmup launches all three apps, so every switch_next relaunches.
    EXPECT_EQ(r.sessions[0].relaunches.size(), 12u);
    EXPECT_EQ(r.totalRelaunches, 24u);
    EXPECT_EQ(r.relaunchMs.samples, 24u);
    for (const auto &sample : r.sessions[0].relaunches)
        EXPECT_GT(sample.fullScaleMs, 0.0);
}

TEST(FleetRunner, UsesSpecFleetSizeByDefault)
{
    FleetRunner runner(smallSpec());
    FleetResult r = runner.run(0, 1);
    EXPECT_EQ(r.fleet, 6u);
    // Streaming aggregation: sessions are not retained unless asked.
    EXPECT_TRUE(r.sessions.empty());
    EXPECT_EQ(runner.run(0, 1, /*keep_sessions=*/true).sessions.size(),
              6u);
}

TEST(FleetRunner, SessionIsDeterministicInIsolation)
{
    FleetRunner runner(smallSpec());
    SessionResult a = runner.runSession(3);
    SessionResult b = runner.runSession(3);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.compCpuNs, b.compCpuNs);
    EXPECT_EQ(a.kswapdCpuNs, b.kswapdCpuNs);
    EXPECT_EQ(a.simulatedNs, b.simulatedNs);
    ASSERT_EQ(a.relaunches.size(), b.relaunches.size());
    for (std::size_t i = 0; i < a.relaunches.size(); ++i) {
        EXPECT_EQ(a.relaunches[i].uid, b.relaunches[i].uid);
        EXPECT_EQ(a.relaunches[i].stats.totalNs,
                  b.relaunches[i].stats.totalNs);
    }
}

TEST(FleetRunner, SessionsDiffer)
{
    FleetRunner runner(smallSpec());
    // Distinct seeds should give (at least slightly) distinct
    // behaviour; identical sessions would mean the seed is ignored.
    SessionResult s0 = runner.runSession(0);
    SessionResult s1 = runner.runSession(1);
    EXPECT_NE(s0.seed, s1.seed);
    EXPECT_NE(s0.simulatedNs, s1.simulatedNs);
}

TEST(FleetRunner, AggregateJsonIsThreadInvariant)
{
    FleetRunner runner(smallSpec());
    FleetResult one = runner.run(6, 1, true);
    FleetResult eight = runner.run(6, 8, true);
    EXPECT_EQ(jsonOf(one, true), jsonOf(eight, true));
    // Streaming (discarding) runs produce the same aggregate report.
    FleetResult streamed = runner.run(6, 8);
    EXPECT_EQ(jsonOf(one, false), jsonOf(streamed, false));
}

TEST(FleetRunner, PercentilesAreOrdered)
{
    FleetRunner runner(smallSpec());
    FleetResult r = runner.run(4, 2);
    EXPECT_GT(r.relaunchMs.samples, 0u);
    EXPECT_LE(r.relaunchMs.min, r.relaunchMs.p50);
    EXPECT_LE(r.relaunchMs.p50, r.relaunchMs.p90);
    EXPECT_LE(r.relaunchMs.p90, r.relaunchMs.p99);
    EXPECT_LE(r.relaunchMs.p99, r.relaunchMs.max);
    EXPECT_GT(r.compDecompCpuMs.mean, 0.0);
    EXPECT_GT(r.compRatio.mean, 1.0);
}

TEST(FleetRunner, JsonReportCarriesScenarioIdentity)
{
    FleetRunner runner(smallSpec());
    std::string text = jsonOf(runner.run(2, 1), false);
    EXPECT_NE(text.find("\"scenario\": \"test-fleet\""),
              std::string::npos);
    EXPECT_NE(text.find("\"scheme\": \"Ariadne\""), std::string::npos);
    EXPECT_NE(text.find("\"ariadneConfig\": \"EHL-1K-2K-16K\""),
              std::string::npos);
    EXPECT_NE(text.find("\"relaunchMs\""), std::string::npos);
    EXPECT_NE(text.find("\"p99\""), std::string::npos);
    // No per-session records unless asked for.
    EXPECT_EQ(text.find("\"sessions\""), std::string::npos);
    std::string per = jsonOf(runner.run(2, 1, true), true);
    EXPECT_NE(per.find("\"sessions\""), std::string::npos);
}

TEST(FleetRunner, ProgrammaticSpecMatchesParsedSpec)
{
    ScenarioSpec parsed = smallSpec();

    ScenarioSpec built;
    built.name = "test-fleet";
    built.scheme = "ariadne";
    built.params.set("config", "EHL-1K-2K-16K");
    built.scale = 0.0625;
    built.seed = 7;
    built.fleet = 6;
    built.program.push_back(Event::warmup());
    built.program.push_back(Event::repeat(
        12, {Event::switchNext(200 * 1000000ULL, 100 * 1000000ULL)}));
    EXPECT_TRUE(parsed == built);

    FleetResult a = FleetRunner(parsed).run(2, 1, true);
    FleetResult b = FleetRunner(built).run(2, 1, true);
    EXPECT_EQ(jsonOf(a, true), jsonOf(b, true));
}

TEST(FleetRunner, TargetScenarioRecordsMeasuredRelaunch)
{
    ScenarioSpec spec;
    spec.name = "target";
    spec.scheme = "zram";
    spec.scale = 0.0625;
    spec.apps = {"YouTube", "Twitter", "Firefox"};
    spec.program.push_back(Event::targetScenario("YouTube", 0));
    SessionResult s = FleetRunner(std::move(spec)).runSession(0);
    ASSERT_EQ(s.relaunches.size(), 1u);
    EXPECT_GT(s.relaunches[0].stats.pagesTouched, 0u);
}

TEST(FleetRunner, ColdLaunchIsNotARelaunchSample)
{
    ScenarioSpec spec;
    spec.name = "cold";
    spec.scheme = "zram";
    spec.scale = 0.0625;
    spec.apps = {"YouTube"};
    // First relaunch op can only cold-launch: nothing measured.
    spec.program.push_back(Event::relaunch("YouTube"));
    spec.program.push_back(Event::execute("YouTube", 1000000000ULL));
    spec.program.push_back(Event::background("YouTube"));
    spec.program.push_back(Event::relaunch("YouTube"));
    SessionResult s = FleetRunner(std::move(spec)).runSession(0);
    ASSERT_EQ(s.relaunches.size(), 1u);
    EXPECT_EQ(s.relaunches[0].uid, standardApp("YouTube").uid);
}

TEST(FleetRunner, StreamingKeepsPeakRetainedSessionsBounded)
{
    FleetRunner runner(smallSpec());
    // Single-threaded: every session is folded the moment it
    // finishes — exactly one SessionResult alive at a time, however
    // large the fleet.
    FleetResult serial = runner.run(6, 1);
    EXPECT_TRUE(serial.sessions.empty());
    EXPECT_EQ(serial.peakRetainedSessions, 1u);
    // Multi-threaded: the reorder window bounds retention at
    // 2 * threads, independent of the fleet size.
    FleetResult parallel = runner.run(6, 3);
    EXPECT_TRUE(parallel.sessions.empty());
    EXPECT_GE(parallel.peakRetainedSessions, 1u);
    EXPECT_LE(parallel.peakRetainedSessions, 6u);
}

TEST(FleetRunner, StreamingAggregateMatchesBatchPercentiles)
{
    FleetRunner runner(smallSpec());
    FleetResult streamed = runner.run(6, 4);
    FleetResult kept = runner.run(6, 4, /*keep_sessions=*/true);

    // Recompute the relaunch aggregate the pre-streaming way — all
    // samples collected in session order, then summarized — and
    // demand exact equality with the streaming fold.
    Distribution relaunch_ms;
    for (const SessionResult &s : kept.sessions)
        for (const auto &sample : s.relaunches)
            relaunch_ms.sample(sample.fullScaleMs);
    MetricSummary batch = MetricSummary::of(relaunch_ms);
    EXPECT_EQ(streamed.relaunchMs.samples, batch.samples);
    EXPECT_EQ(streamed.relaunchMs.mean, batch.mean);
    EXPECT_EQ(streamed.relaunchMs.min, batch.min);
    EXPECT_EQ(streamed.relaunchMs.max, batch.max);
    EXPECT_EQ(streamed.relaunchMs.p50, batch.p50);
    EXPECT_EQ(streamed.relaunchMs.p90, batch.p90);
    EXPECT_EQ(streamed.relaunchMs.p99, batch.p99);
}

TEST(FleetRunner, CustomEventsCallHooksInProgramOrder)
{
    ScenarioSpec spec;
    spec.name = "hooks";
    spec.scheme = "zram";
    spec.scale = 0.0625;
    spec.apps = {"YouTube"};
    spec.program.push_back(Event::custom(1));
    spec.program.push_back(Event::launch("YouTube"));
    spec.program.push_back(Event::custom(0));

    std::vector<int> calls;
    std::vector<SessionHook> hooks;
    hooks.push_back([&](MobileSystem &sys, SessionDriver &driver,
                        SessionResult &) {
        // Runs after the launch event.
        EXPECT_TRUE(driver.isLaunched(standardApp("YouTube").uid));
        EXPECT_GT(sys.clock().now(), 0u);
        calls.push_back(0);
    });
    hooks.push_back([&](MobileSystem &, SessionDriver &driver,
                        SessionResult &) {
        // Runs before the launch event.
        EXPECT_FALSE(driver.isLaunched(standardApp("YouTube").uid));
        calls.push_back(1);
    });
    FleetRunner(std::move(spec), std::move(hooks)).runSession(0);
    EXPECT_EQ(calls, (std::vector<int>{1, 0}));
}

namespace
{

SweepSpec
smallSweep()
{
    return SweepSpec::parseString(R"(
sweep = schemes
scale = 0.0625
seed = 7
fleet = 2
event = warmup
event = repeat 4
event =   switch_next 200ms 100ms
event = end

variant = zram
scheme = zram

variant = ariadne
scheme = ariadne
ariadne = EHL-1K-2K-16K

variant = dram
scheme = dram
)");
}

} // namespace

TEST(FleetRunner, SweepRunsVariantsInDeclarationOrder)
{
    SweepResult r = FleetRunner::runSweep(smallSweep(), 0, 1);
    ASSERT_EQ(r.variants.size(), 3u);
    EXPECT_EQ(r.name, "schemes");
    EXPECT_EQ(r.variants[0].scenario, "zram");
    EXPECT_EQ(r.variants[1].scenario, "ariadne");
    EXPECT_EQ(r.variants[2].scenario, "dram");
    EXPECT_EQ(r.variants[0].scheme, "ZRAM");
    EXPECT_EQ(r.variants[1].ariadneConfig, "EHL-1K-2K-16K");
    // Every variant inherited the base fleet size and program.
    for (const auto &v : r.variants) {
        EXPECT_EQ(v.fleet, 2u);
        EXPECT_EQ(v.totalRelaunches, 8u);
    }
}

TEST(FleetRunner, SweepJsonIsThreadInvariantAndComparative)
{
    auto json_of = [](const SweepResult &r) {
        std::ostringstream os;
        r.writeJson(os);
        return os.str();
    };
    std::string one = json_of(FleetRunner::runSweep(smallSweep(), 2, 1));
    std::string four =
        json_of(FleetRunner::runSweep(smallSweep(), 2, 4));
    EXPECT_EQ(one, four);
    EXPECT_NE(one.find("\"sweep\": \"schemes\""), std::string::npos);
    EXPECT_NE(one.find("\"variantCount\": 3"), std::string::npos);
    // All three variants appear in one document.
    EXPECT_NE(one.find("\"scenario\": \"zram\""), std::string::npos);
    EXPECT_NE(one.find("\"scenario\": \"ariadne\""), std::string::npos);
    EXPECT_NE(one.find("\"scenario\": \"dram\""), std::string::npos);
}

TEST(FleetRunner, SweepVariantEqualsStandaloneFleet)
{
    SweepSpec sweep = smallSweep();
    SweepResult r = FleetRunner::runSweep(sweep, 2, 1);
    // A sweep variant is exactly the fleet its spec describes.
    FleetResult standalone = FleetRunner(sweep.variants[1]).run(2, 1);
    std::ostringstream a, b;
    r.variants[1].writeJson(a, false);
    standalone.writeJson(b, false);
    EXPECT_EQ(a.str(), b.str());
}
