#include "sys/session.hh"

#include <algorithm>

namespace ariadne
{

RelaunchStats
SessionDriver::targetRelaunchScenario(AppId target, unsigned variant,
                                      Tick use_time, Tick bg_use_time)
{
    prepareTargetScenario(target, variant, use_time, bg_use_time);
    return sys.appRelaunch(target);
}

void
SessionDriver::prepareTargetScenario(AppId target, unsigned variant,
                                     Tick use_time, Tick bg_use_time)
{
    // Launch and use the target app.
    visit(target);
    sys.appExecute(target, use_time);
    sys.appBackground(target);

    // Launch the other apps in a variant-rotated order (the paper
    // creates several distinct usage scenarios per target).
    std::vector<AppId> others;
    for (AppId uid : sys.appIds())
        if (uid != target)
            others.push_back(uid);
    if (!others.empty()) {
        std::rotate(others.begin(),
                    others.begin() +
                        static_cast<long>(variant % others.size()),
                    others.end());
    }
    for (AppId uid : others) {
        visit(uid);
        sys.appExecute(uid, bg_use_time);
        sys.appBackground(uid);
    }
}

RelaunchStats
SessionDriver::visit(AppId uid)
{
    if (!launched.contains(uid)) {
        sys.appColdLaunch(uid);
        launched.insert(uid);
        return RelaunchStats{};
    }
    return sys.appRelaunch(uid);
}

void
SessionDriver::warmUpAllApps(Tick bg_use_time)
{
    for (AppId uid : sys.appIds()) {
        if (!launched.contains(uid)) {
            sys.appColdLaunch(uid);
            launched.insert(uid);
        }
        sys.appExecute(uid, bg_use_time);
        sys.appBackground(uid);
    }
}

void
SessionDriver::lightUsageScenario(Tick duration, Tick gap)
{
    warmUpAllApps();
    Tick start = sys.clock().now();
    std::size_t i = 0;
    auto uids = sys.appIds();
    while (sys.clock().now() - start < duration) {
        AppId uid = uids[i++ % uids.size()];
        sys.appRelaunch(uid);
        sys.appExecute(uid, Tick{500} * 1000000ULL);
        sys.appBackground(uid);
        sys.idle(gap);
    }
}

void
SessionDriver::heavyUsageScenario(Tick duration)
{
    warmUpAllApps();
    Tick start = sys.clock().now();
    std::size_t i = 0;
    auto uids = sys.appIds();
    while (sys.clock().now() - start < duration) {
        AppId uid = uids[i++ % uids.size()];
        sys.appRelaunch(uid);
        sys.appExecute(uid, Tick{250} * 1000000ULL);
        sys.appBackground(uid);
    }
}

} // namespace ariadne
