#include "driver/workload_source.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace ariadne::driver
{

namespace
{

/** Distinct salts for the independent per-session draw streams. */
constexpr std::uint64_t profileStreamSalt = 0x70726f66ULL; // "prof"
constexpr std::uint64_t programStreamSalt = 0x70726f67ULL; // "prog"

/** Scale a byte volume by a user's footprint multiplier. */
std::size_t
scaleBytes(std::size_t bytes, double multiplier)
{
    auto scaled = static_cast<std::size_t>(
        static_cast<double>(bytes) * multiplier);
    return std::max(scaled, pageSize);
}

} // namespace

// --- SessionRun ------------------------------------------------------

SessionRun::SessionRun(MobileSystem &sys, SessionDriver &driver,
                       SessionResult &result,
                       const std::vector<SessionHook> &hooks,
                       double scale, TraceRecorder *recorder)
    : sys(sys), sessionDriver(driver), sessionResult(result),
      hooks(hooks), scale(scale), recorder(recorder),
      uids(sys.appIds())
{
}

void
SessionRun::recordSample(AppId uid, const RelaunchStats &st)
{
    RelaunchSample sample;
    sample.uid = uid;
    sample.stats = st;
    sample.fullScaleMs = ticksToMs(st.fullScaleNs(scale));
    sessionResult.relaunches.push_back(sample);
    if (recorder)
        recorder->sampleRecorded(uid, sys.clock().now());
}

void
SessionRun::callHook(std::size_t index)
{
    if (index >= hooks.size())
        panic("custom event references hook " + std::to_string(index) +
              " but only " + std::to_string(hooks.size()) +
              " hook(s) were supplied");
    hooks[index](sys, sessionDriver, sessionResult);
}

AppId
SessionRun::lookup(const std::string &name) const
{
    // Spec validation guarantees the name exists in this mix.
    for (AppId uid : uids)
        if (sys.app(uid).profile().name == name)
            return uid;
    panic("event references app absent from the mix: " + name);
}

AppId
SessionRun::nextApp()
{
    return uids[cursor++ % uids.size()];
}

// --- Event interpreter ----------------------------------------------

void
runEventProgram(SessionRun &run, const std::vector<Event> &program)
{
    MobileSystem &sys = run.system();
    SessionDriver &driver = run.driver();
    for (const Event &ev : program) {
        switch (ev.kind) {
          case Event::Kind::Launch:
            driver.visit(run.lookup(ev.app));
            break;
          case Event::Kind::Execute:
            sys.appExecute(run.lookup(ev.app), ev.duration);
            break;
          case Event::Kind::Background:
            sys.appBackground(run.lookup(ev.app));
            break;
          case Event::Kind::Relaunch: {
            AppId uid = run.lookup(ev.app);
            // A first visit can only cold-launch; visit() reports
            // that with uid == invalidApp and there is nothing to
            // measure.
            RelaunchStats st = driver.visit(uid);
            if (st.uid != invalidApp)
                run.recordSample(uid, st);
            break;
          }
          case Event::Kind::Idle:
            sys.idle(ev.duration);
            break;
          case Event::Kind::Warmup:
            driver.warmUpAllApps();
            break;
          case Event::Kind::SwitchNext: {
            AppId uid = run.nextApp();
            RelaunchStats st = driver.visit(uid);
            if (st.uid != invalidApp)
                run.recordSample(uid, st);
            sys.appExecute(uid, ev.duration);
            sys.appBackground(uid);
            if (ev.gap > 0)
                sys.idle(ev.gap);
            break;
          }
          case Event::Kind::TargetScenario: {
            AppId uid = run.lookup(ev.app);
            run.recordSample(
                uid, driver.targetRelaunchScenario(uid, ev.variant));
            break;
          }
          case Event::Kind::PrepareTarget:
            driver.prepareTargetScenario(run.lookup(ev.app),
                                         ev.variant);
            break;
          case Event::Kind::LightUsage:
            driver.lightUsageScenario(ev.duration, ev.gap);
            break;
          case Event::Kind::HeavyUsage:
            driver.heavyUsageScenario(ev.duration);
            break;
          case Event::Kind::Custom:
            run.callHook(ev.hook);
            break;
          case Event::Kind::Repeat:
            for (std::size_t i = 0; i < ev.count; ++i)
                runEventProgram(run, ev.body);
            break;
        }
    }
}

// --- ProfileProgramSource -------------------------------------------

ProfileProgramSource::ProfileProgramSource(ScenarioSpec spec)
    : spec(std::move(spec))
{
}

std::vector<AppProfile>
ProfileProgramSource::sessionProfiles(std::size_t) const
{
    return spec.appProfiles();
}

void
ProfileProgramSource::drive(std::size_t, SessionRun &run) const
{
    runEventProgram(run, spec.program);
}

// --- SyntheticPopulationSource --------------------------------------

SyntheticPopulationSource::SyntheticPopulationSource(ScenarioSpec spec)
    : spec(std::move(spec)), pool(this->spec.appProfiles())
{
}

std::vector<AppProfile>
SyntheticPopulationSource::sessionProfiles(std::size_t index) const
{
    const PopulationConfig &pop = spec.population;
    Rng rng(mix64(spec.seed ^ mix64(profileStreamSalt + index)));

    // Draw the user's app subset with a partial Fisher-Yates shuffle;
    // the draw order becomes the session's app order, so warmup and
    // round-robin switching differ between users too.
    std::vector<AppProfile> selected = pool;
    std::size_t k = pop.appsPerUser;
    if (k == 0 || k > selected.size())
        k = selected.size();
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + static_cast<std::size_t>(
                                rng.below(selected.size() - i));
        std::swap(selected[i], selected[j]);
    }
    selected.resize(k);

    // Spread the footprints: one multiplier per app models how much
    // of each app this user actually exercises.
    for (AppProfile &p : selected) {
        double m = 1.0 +
                   pop.footprintSpread * (2.0 * rng.uniform() - 1.0);
        p.anonBytes10s = scaleBytes(p.anonBytes10s, m);
        p.anonBytes5min = scaleBytes(p.anonBytes5min, m);
    }
    return selected;
}

SyntheticPopulationSource::UserClass
SyntheticPopulationSource::sessionClass(std::size_t index) const
{
    const PopulationConfig &pop = spec.population;
    Rng rng(mix64(spec.seed ^ mix64(programStreamSalt + index)));
    double u = rng.uniform();
    if (u < pop.lightShare)
        return UserClass::Light;
    if (u < pop.lightShare + pop.heavyShare)
        return UserClass::Heavy;
    return UserClass::Regular;
}

std::vector<Event>
SyntheticPopulationSource::sessionProgram(std::size_t index) const
{
    const PopulationConfig &pop = spec.population;
    std::size_t switches = pop.switches;
    Tick use = pop.useTime;
    Tick gap = pop.gap;
    switch (sessionClass(index)) {
      case UserClass::Light:
        switches = std::max<std::size_t>(1, switches / 2);
        gap *= 2;
        break;
      case UserClass::Heavy:
        switches *= 2;
        use = std::max<Tick>(1, use / 2);
        gap = 0;
        break;
      case UserClass::Regular:
        break;
    }

    std::vector<Event> program;
    program.push_back(Event::warmup());
    if (switches > 0)
        program.push_back(
            Event::repeat(switches, {Event::switchNext(use, gap)}));
    return program;
}

void
SyntheticPopulationSource::drive(std::size_t index,
                                 SessionRun &run) const
{
    runEventProgram(run, sessionProgram(index));
}

// --- TraceReplaySource ----------------------------------------------

TraceReplaySource::TraceReplaySource(std::string trace_path)
    : path(std::move(trace_path))
{
    TraceReader reader(path, TraceReader::OnError::Throw);
    if (reader.version() < 2 || reader.spec().empty())
        throw SpecError(
            "trace " + path + " carries no embedded scenario; only "
            "traces written by `ariadne_sim --record` (or "
            "FleetRunner::runRecorded) can be replayed");
    try {
        recorded = ScenarioSpec::parseString(reader.spec());
    } catch (const SpecError &e) {
        throw SpecError("embedded scenario in " + path +
                        " is invalid: " + e.what());
    }
    if (recorded.workload == WorkloadKind::Trace)
        throw SpecError("embedded scenario in " + path +
                        " is itself a trace replay (corrupt trace?)");
    profileSource = makeWorkloadSource(recorded);

    TraceRecord rec;
    while (reader.next(rec)) {
        if (rec.op == TraceOp::SessionStart) {
            sessions.push_back({records.size(), records.size()});
            continue;
        }
        if (sessions.empty())
            throw SpecError("trace " + path +
                            ": record before the first session");
        records.push_back(rec);
        sessions.back().end = records.size();
    }
    if (sessions.size() != reader.sessionCount())
        throw SpecError(
            "trace " + path + ": header promises " +
            std::to_string(reader.sessionCount()) +
            " session(s) but the file contains " +
            std::to_string(sessions.size()));

    // Structural validation up front, so drive() — which may run on
    // worker threads — can assume a well-formed stream.
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].op != TraceOp::Touch)
            continue;
        if (i == 0 || (records[i - 1].op != TraceOp::Touch &&
                       records[i - 1].op != TraceOp::Launch &&
                       records[i - 1].op != TraceOp::Execute &&
                       records[i - 1].op != TraceOp::Relaunch))
            throw SpecError("trace " + path + ": touch record " +
                            std::to_string(i) +
                            " outside an op block");
    }
}

std::vector<AppProfile>
TraceReplaySource::sessionProfiles(std::size_t index) const
{
    return profileSource->sessionProfiles(index);
}

void
TraceReplaySource::drive(std::size_t index, SessionRun &run) const
{
    panicIf(index >= sessions.size(),
            "trace replay session index out of range");
    MobileSystem &sys = run.system();
    const Span &span = sessions[index];
    std::size_t idx = span.begin;

    auto collect_touches = [&](std::vector<TouchEvent> &out) {
        while (idx < span.end &&
               records[idx].op == TraceOp::Touch) {
            const TraceRecord &t = records[idx++];
            out.push_back(TouchEvent{t.pfn, t.version, t.truth,
                                     t.newAllocation, false});
        }
    };

    while (idx < span.end) {
        const TraceRecord &rec = records[idx++];
        std::vector<TouchEvent> touches;
        switch (rec.op) {
          case TraceOp::Launch:
            collect_touches(touches);
            sys.runColdLaunch(rec.uid, touches);
            break;
          case TraceOp::Execute:
            collect_touches(touches);
            sys.runExecute(rec.uid, rec.pfn, touches);
            break;
          case TraceOp::Background:
            sys.appBackground(rec.uid);
            break;
          case TraceOp::Relaunch: {
            collect_touches(touches);
            RelaunchStats st = sys.runRelaunch(rec.uid, touches);
            if (idx < span.end &&
                records[idx].op == TraceOp::RelaunchEnd)
                ++idx;
            if (idx < span.end &&
                records[idx].op == TraceOp::Sample) {
                ++idx;
                run.recordSample(rec.uid, st);
            }
            break;
          }
          case TraceOp::Idle:
            sys.idle(rec.pfn);
            break;
          case TraceOp::RelaunchEnd:
          case TraceOp::Sample:
          case TraceOp::Free:
            // Stray markers are harmless; Free is reserved.
            break;
          case TraceOp::Touch:
          case TraceOp::SessionStart:
            panic("trace replay hit an unexpected record (validated "
                  "at load — internal bug)");
        }
    }
}

// --- Factory ---------------------------------------------------------

std::shared_ptr<const WorkloadSource>
makeWorkloadSource(const ScenarioSpec &spec)
{
    switch (spec.workload) {
      case WorkloadKind::Profiles:
        return std::make_shared<ProfileProgramSource>(spec);
      case WorkloadKind::Synthetic:
        return std::make_shared<SyntheticPopulationSource>(spec);
      case WorkloadKind::Trace:
        return std::make_shared<TraceReplaySource>(spec.tracePath);
    }
    panic("unknown workload kind");
}

// --- TraceRecorder ---------------------------------------------------

void
TraceRecorder::beginSession(std::size_t index)
{
    writer.beginSession(index);
}

void
TraceRecorder::onOp(TraceOp op, AppId uid, Tick arg, Tick now)
{
    TraceRecord rec;
    rec.time = now;
    rec.op = op;
    rec.uid = uid;
    rec.pfn = arg;
    writer.append(rec);
}

void
TraceRecorder::onTouch(AppId uid, const TouchEvent &ev, Tick now)
{
    TraceRecord rec;
    rec.time = now;
    rec.op = TraceOp::Touch;
    rec.uid = uid;
    rec.pfn = ev.pfn;
    rec.version = ev.version;
    rec.truth = ev.truth;
    rec.newAllocation = ev.newAllocation;
    writer.append(rec);
}

void
TraceRecorder::sampleRecorded(AppId uid, Tick now)
{
    TraceRecord rec;
    rec.time = now;
    rec.op = TraceOp::Sample;
    rec.uid = uid;
    rec.pfn = 0;
    writer.append(rec);
}

} // namespace ariadne::driver
