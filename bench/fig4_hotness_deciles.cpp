/**
 * @file
 * Fig. 4: proportion of hot/warm/cold data in each tenth of the
 * compressed stream under ZRAM, ordered by compression time.
 *
 * Paper result: LRU-based ZRAM compresses a significant amount of
 * hot data *early* (part 0), because launch-time data looks least
 * recently used — the root cause of unnecessary decompressions.
 */

#include "analysis/hotness_dist.hh"
#include "bench_common.hh"
#include "swap/zram.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main()
{
    printBanner(std::cout, "Fig. 4: hot/warm/cold share per "
                           "compression-order decile (ZRAM)");

    for (const auto &name : plottedApps()) {
        SystemConfig cfg = makeConfig(SchemeKind::Zram);
        MobileSystem sys(cfg, standardApps());
        SessionDriver driver(sys);
        AppId target = standardApp(name).uid;
        driver.targetRelaunchScenario(target, 0);

        auto *zram = dynamic_cast<ZramScheme *>(&sys.scheme());
        std::vector<Hotness> stream;
        for (const auto &ev : zram->compressionLog()) {
            if (ev.key.uid == target)
                stream.push_back(ev.truthAtCompression);
        }
        auto deciles = hotnessByCompressionOrder(stream, 10);

        std::cout << "\n" << name << " (" << stream.size()
                  << " compressed pages; part 0 compressed first)\n";
        ReportTable table({"Part", "Hot", "Warm", "Cold"});
        for (std::size_t i = 0; i < deciles.size(); ++i) {
            table.addRow({std::to_string(i),
                          ReportTable::num(deciles[i].hot, 2),
                          ReportTable::num(deciles[i].warm, 2),
                          ReportTable::num(deciles[i].cold, 2)});
        }
        table.print(std::cout);
    }
    std::cout << "\nPart 0 carries a large hot share for every app: "
                 "LRU ignores relaunch hotness (paper's Observation "
                 "3).\n";
    return 0;
}
