/**
 * @file
 * Low-overhead, deterministic-safe instrumentation registry.
 *
 * The telemetry layer counts what the simulator *does* (pages
 * touched, compressions run, kswapd wakeups) and how long the host
 * spends doing it (scoped-timer duration accumulators over the
 * steady clock). It is strictly out-of-band: probes only ever write
 * into telemetry's own per-thread shards, never into simulator state,
 * so enabling any amount of telemetry cannot change a report byte —
 * reports are functions of (spec, seed) and telemetry reads are
 * side-effect-free.
 *
 * Hot-path cost: a disabled probe is one relaxed load and a branch; an
 * enabled counter increment is a single relaxed fetch_add into the
 * calling thread's own shard (uncontended, no locks). Shards merge on
 * finalize: snapshot() sums every thread's slots, so the totals are
 * associative across any thread split — the same property PR 5's
 * MetricState gives sharded fleet runs, which is what will let a
 * future fleet launcher fold workers' metrics files together.
 *
 * Naming convention: `subsystem.verb` (e.g. `sys.touch`,
 * `kswapd.wakeup`, `compressor.compress.lzo`). Counters, durations,
 * gauges and histograms live in separate namespaces keyed by these
 * names.
 *
 * Beyond counters and durations, the registry carries two sampled
 * kinds: gauges (point-in-time readings of simulator state — zram
 * occupancy, free pages — summarized as count/sum/min/max) and
 * fixed-bucket log2 histograms (distributions of simulated latencies
 * and sizes). Both are fed *simulated* values at simulated times, so
 * their merged totals are invariant across thread counts and shard
 * splits, exactly like counters.
 */

#ifndef ARIADNE_TELEMETRY_TELEMETRY_HH
#define ARIADNE_TELEMETRY_TELEMETRY_HH

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ariadne::telemetry
{

namespace detail
{
/** Global enable flag; read relaxed on every probe hit. */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Whether counter/duration probes record anything. */
inline bool
enabled() noexcept
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn probe recording on or off (off by default). */
void setEnabled(bool on) noexcept;

/** Monotonic nanoseconds of the host steady clock. */
inline std::uint64_t
hostNowNs() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Process-wide registry of named monotonic counters and duration
 * accumulators, sharded per thread.
 *
 * Registration (interning a name to a slot) takes a lock and is meant
 * for probe construction — typically namespace-scope statics at the
 * instrumentation site. Recording is lock-free. The slot space is
 * fixed (maxSlots) so shards never reallocate under concurrent
 * writers; exceeding it is a programming error (panic).
 */
class Registry
{
  public:
    /** Total slots across counters (1 each), durations (2 each),
     * gauges (4 each) and histograms (histogramBuckets + 1 each). */
    static constexpr std::size_t maxSlots = 4096;

    /** Log2 buckets per histogram: bucket b counts values whose
     * bit width is b (0, 1, 2–3, 4–7, …), saturating at the top. */
    static constexpr std::size_t histogramBuckets = 32;

    /** The four metric kinds the slot space is partitioned into. */
    enum class Kind
    {
        Counter,
        Duration,
        Gauge,
        Histogram
    };

    /** The process-wide registry every probe records into. Inline so
     * per-touch counter hits pay a guard load, not a cross-TU call. */
    static Registry &
    global()
    {
        static Registry instance;
        return instance;
    }

    /** Intern a counter name; returns its slot. Idempotent. */
    std::size_t counterSlot(const std::string &name);

    /** Intern a duration name; returns the base of its (total-ns,
     * count) slot pair. Idempotent. */
    std::size_t durationSlot(const std::string &name);

    /** Intern a gauge name; returns the base of its (count, sum,
     * min, max) slot quad. Idempotent. */
    std::size_t gaugeSlot(const std::string &name);

    /** Intern a histogram name; returns the base of its
     * histogramBuckets bucket slots followed by a sum slot.
     * Idempotent. */
    std::size_t histogramSlot(const std::string &name);

    /** Add @p delta to @p slot in this thread's shard. */
    void
    add(std::size_t slot, std::uint64_t delta) noexcept
    {
        shardForThisThread().slots[slot].fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Record one duration of @p ns against a durationSlot() base. */
    void
    recordDuration(std::size_t base, std::uint64_t ns) noexcept
    {
        Shard &s = shardForThisThread();
        s.slots[base].fetch_add(ns, std::memory_order_relaxed);
        s.slots[base + 1].fetch_add(1, std::memory_order_relaxed);
    }

    /** Record one gauge sample against a gaugeSlot() base. Each shard
     * has exactly one writer (its thread), so min/max can be plain
     * relaxed load/store — no CAS loop. */
    void
    recordGauge(std::size_t base, std::uint64_t v) noexcept
    {
        Shard &s = shardForThisThread();
        std::uint64_t n =
            s.slots[base].fetch_add(1, std::memory_order_relaxed);
        s.slots[base + 1].fetch_add(v, std::memory_order_relaxed);
        if (n == 0) {
            s.slots[base + 2].store(v, std::memory_order_relaxed);
            s.slots[base + 3].store(v, std::memory_order_relaxed);
        } else {
            if (v < s.slots[base + 2].load(std::memory_order_relaxed))
                s.slots[base + 2].store(v, std::memory_order_relaxed);
            if (v > s.slots[base + 3].load(std::memory_order_relaxed))
                s.slots[base + 3].store(v, std::memory_order_relaxed);
        }
    }

    /** Bucket index of @p v: its bit width, saturated to the top
     * bucket. Bucket b spans [2^(b-1), 2^b) for b >= 1; bucket 0 is
     * exactly zero. */
    static std::size_t
    histogramBucket(std::uint64_t v) noexcept
    {
        std::size_t b = static_cast<std::size_t>(std::bit_width(v));
        return b < histogramBuckets ? b : histogramBuckets - 1;
    }

    /** Record one value against a histogramSlot() base. */
    void
    recordHistogram(std::size_t base, std::uint64_t v) noexcept
    {
        Shard &s = shardForThisThread();
        s.slots[base + histogramBucket(v)].fetch_add(
            1, std::memory_order_relaxed);
        s.slots[base + histogramBuckets].fetch_add(
            v, std::memory_order_relaxed);
    }

    struct CounterValue
    {
        std::string name;
        std::uint64_t value = 0;
    };

    struct DurationValue
    {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;

        /** Mean nanoseconds per recorded span (0 when empty). */
        double
        meanNs() const noexcept
        {
            return count ? static_cast<double>(totalNs) /
                               static_cast<double>(count)
                         : 0.0;
        }
    };

    struct GaugeValue
    {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        /** Valid only when count > 0. */
        std::uint64_t min = 0;
        std::uint64_t max = 0;

        /** Mean sampled value (0 when empty). */
        double
        mean() const noexcept
        {
            return count ? static_cast<double>(sum) /
                               static_cast<double>(count)
                         : 0.0;
        }
    };

    struct HistogramValue
    {
        std::string name;
        std::array<std::uint64_t, histogramBuckets> buckets = {};
        std::uint64_t sum = 0;

        /** Total recorded values (sum of buckets). */
        std::uint64_t
        count() const noexcept
        {
            std::uint64_t n = 0;
            for (std::uint64_t b : buckets)
                n += b;
            return n;
        }

        /** Mean recorded value (0 when empty). */
        double
        mean() const noexcept
        {
            std::uint64_t n = count();
            return n ? static_cast<double>(sum) /
                           static_cast<double>(n)
                     : 0.0;
        }
    };

    /** Merged view of every shard, sorted by name. */
    struct Snapshot
    {
        std::vector<CounterValue> counters;
        std::vector<DurationValue> durations;
        std::vector<GaugeValue> gauges;
        std::vector<HistogramValue> histograms;

        /** Value of counter @p name (0 when absent). */
        std::uint64_t counter(const std::string &name) const noexcept;

        /** Duration record for @p name (zeros when absent). */
        DurationValue duration(const std::string &name) const noexcept;

        /** Gauge record for @p name (zeros when absent). */
        GaugeValue gauge(const std::string &name) const noexcept;

        /** Histogram record for @p name (zeros when absent). */
        HistogramValue
        histogram(const std::string &name) const noexcept;

        /** Fold @p o into this by name (counters/durations/histogram
         * buckets add; gauge min/max widen) — the cross-shard merge a
         * distributed launcher performs on workers' metrics. */
        void merge(const Snapshot &o);
    };

    /** Merge-on-finalize: sum every thread's shard per slot. */
    Snapshot snapshot() const;

    /** Zero every shard's slots; registrations (and probes holding
     * slots) stay valid. */
    void reset() noexcept;

  private:
    struct Shard
    {
        std::atomic<std::uint64_t> slots[maxSlots] = {};
    };

    Registry() = default;

    /** The calling thread's shard (attached on first record). The
     * thread_local pointer is constant-initialized, so the hot path
     * is one TLS load and a null check. */
    Shard &
    shardForThisThread()
    {
        thread_local Shard *t_shard = nullptr;
        if (!t_shard)
            t_shard = &attachShard();
        return *t_shard;
    }

    Shard &attachShard();

    std::size_t intern(const std::string &name, Kind kind);

    struct Entry
    {
        std::string name;
        std::size_t slot = 0;
        Kind kind = Kind::Counter;
    };

    mutable std::mutex mu;
    std::vector<Entry> entries;
    std::size_t nextSlot = 0;
    /** Stable-address shards, one per thread that ever recorded. */
    std::vector<std::unique_ptr<Shard>> shards;
};

/**
 * A named monotonic counter probe. Construct once (namespace-scope
 * static at the instrumentation site) and add() on the hot path.
 */
class Counter
{
  public:
    explicit Counter(const char *name)
        : slot(Registry::global().counterSlot(name))
    {
    }

    void
    add(std::uint64_t n = 1) noexcept
    {
        if (enabled())
            Registry::global().add(slot, n);
    }

  private:
    std::size_t slot;
};

/**
 * A named sampled gauge. sample() records one point-in-time reading
 * of simulator state; the registry keeps count/sum/min/max so the
 * metrics report can summarize without storing every point. The raw
 * series goes to the TimelineRecorder (timeline.hh) separately.
 */
class Gauge
{
  public:
    explicit Gauge(const char *name)
        : base(Registry::global().gaugeSlot(name))
    {
    }

    void
    sample(std::uint64_t v) noexcept
    {
        if (enabled())
            Registry::global().recordGauge(base, v);
    }

  private:
    std::size_t base;
};

/** A named fixed-bucket log2 histogram of simulated values. */
class Histogram
{
  public:
    explicit Histogram(const char *name)
        : base(Registry::global().histogramSlot(name))
    {
    }

    void
    record(std::uint64_t v) noexcept
    {
        if (enabled())
            Registry::global().recordHistogram(base, v);
    }

  private:
    std::size_t base;
};

/**
 * A histogram with per-app label breakdowns: every record() feeds the
 * aggregate histogram, and values for the first maxLabeledApps uids
 * (the paper's Table-1 roster leads the standard app list) also feed
 * a `NAME.appU` histogram, interned lazily on first sight. Interning
 * is idempotent under the registry lock, so racing first-records are
 * safe.
 */
class AppHistogram
{
  public:
    static constexpr std::size_t maxLabeledApps = 8;

    explicit AppHistogram(const char *name)
        : base(Registry::global().histogramSlot(name)), prefix(name)
    {
    }

    void
    record(std::uint32_t uid, std::uint64_t v) noexcept
    {
        if (!enabled())
            return;
        Registry &r = Registry::global();
        r.recordHistogram(base, v);
        if (uid < maxLabeledApps) {
            std::size_t b =
                perApp[uid].load(std::memory_order_acquire);
            if (b == 0)
                b = internApp(uid);
            r.recordHistogram(b - 1, v);
        }
    }

  private:
    /** Intern `prefix.appU`; returns slot base + 1 (0 = unset). */
    std::size_t internApp(std::uint32_t uid);

    std::size_t base;
    std::string prefix;
    std::atomic<std::size_t> perApp[maxLabeledApps] = {};
};

/** A named duration accumulator; pair with ScopedTimer. */
class DurationProbe
{
  public:
    explicit DurationProbe(const char *name)
        : base(Registry::global().durationSlot(name))
    {
    }

    /** Record one explicit span of @p ns. */
    void
    record(std::uint64_t ns) noexcept
    {
        if (enabled())
            Registry::global().recordDuration(base, ns);
    }

  private:
    std::size_t base;
};

/**
 * RAII host-time span feeding a DurationProbe. The enabled check is
 * taken once at construction; nesting works naturally (each timer
 * records its own probe independently).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(DurationProbe &p) noexcept
        : probe(enabled() ? &p : nullptr),
          start(probe ? hostNowNs() : 0)
    {
    }

    ~ScopedTimer()
    {
        if (probe)
            probe->record(hostNowNs() - start);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    DurationProbe *probe;
    std::uint64_t start;
};

} // namespace ariadne::telemetry

#endif // ARIADNE_TELEMETRY_TELEMETRY_HH
