/**
 * @file
 * Fig. 2: application relaunch latency under DRAM / ZRAM / SWAP.
 *
 * Paper result: ZRAM beats flash SWAP, but compression/decompression
 * still make relaunches 2.1x slower on average than the pure-DRAM
 * bound.
 *
 * Each (app, scheme) pair is one ScenarioSpec variant running the §5
 * target-relaunch trace as a single-session fleet.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig2", argc, argv);
    printBanner(std::cout,
                "Fig. 2: relaunch latency (ms) under DRAM/ZRAM/SWAP");

    ReportTable table(
        {"App", "DRAM", "ZRAM", "SWAP", "ZRAM/DRAM", "SWAP/DRAM"});

    double ratio_sum = 0.0;
    std::size_t n = 0;
    for (const auto &name : plottedApps()) {
        auto measure = [&](const std::string &kind, const char *label) {
            driver::FleetResult r = runVariant(
                targetSpec(name + "/" + label, kind, name));
            report.add(r);
            return lastRelaunchMs(r);
        };
        double dram = measure("dram", "dram");
        double zram = measure("zram", "zram");
        double swap = measure("swap", "swap");

        table.addRow({name, ReportTable::num(dram, 1),
                      ReportTable::num(zram, 1),
                      ReportTable::num(swap, 1),
                      ReportTable::num(zram / dram, 2),
                      ReportTable::num(swap / dram, 2)});
        ratio_sum += zram / dram;
        ++n;
    }
    table.print(std::cout);
    std::cout << "\nAverage ZRAM/DRAM relaunch ratio: "
              << ReportTable::num(ratio_sum / static_cast<double>(n), 2)
              << "  (paper: 2.1x)\n";
    report.addTable("relaunch_ms", table);
    return report.finish();
}
