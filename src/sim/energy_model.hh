/**
 * @file
 * Activity-based energy model.
 *
 * Replaces the paper's Power Rails measurements (Table 2). Total energy
 * is base power over the scenario wall time plus marginal costs per
 * unit of CPU work and per byte moved through DRAM and flash. The
 * constants are calibrated so the three baseline schemes reproduce the
 * normalized ordering of Table 2 (DRAM 1.000, SWAP ~1.003-1.017,
 * ZRAM ~1.12-1.20).
 */

#ifndef ARIADNE_SIM_ENERGY_MODEL_HH
#define ARIADNE_SIM_ENERGY_MODEL_HH

#include <cstddef>

#include "sim/types.hh"

namespace ariadne
{

/** Tunable energy constants; defaults approximate a Pixel 7. */
struct EnergyParams
{
    /** Display + SoC baseline while the scenario runs (Watts). */
    double basePowerWatts = 2.9;
    /** Marginal power of a busy CPU core (Watts). */
    double cpuActivePowerWatts = 3.0;
    /** Energy per byte moved through DRAM (nanojoules). */
    double dramNjPerByte = 0.05;
    /** Energy per byte read from flash (nanojoules). */
    double flashReadNjPerByte = 0.2;
    /** Energy per byte written to flash (nanojoules). */
    double flashWriteNjPerByte = 0.6;
};

/** Snapshot of activity totals an experiment feeds the model. */
struct ActivityTotals
{
    Tick wallTimeNs = 0;          //!< scenario duration
    Tick cpuBusyNs = 0;           //!< total modeled CPU time
    std::size_t dramBytes = 0;    //!< bytes moved through DRAM
    std::size_t flashReadBytes = 0;
    std::size_t flashWriteBytes = 0;
};

/** Converts activity totals into Joules. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &p = EnergyParams{})
        : prm(p)
    {}

    const EnergyParams &params() const noexcept { return prm; }

    /** Total scenario energy in Joules. */
    double joules(const ActivityTotals &a) const noexcept;

    /** Energy excluding the base-power term (the "dynamic" part). */
    double dynamicJoules(const ActivityTotals &a) const noexcept;

  private:
    EnergyParams prm;
};

} // namespace ariadne

#endif // ARIADNE_SIM_ENERGY_MODEL_HH
