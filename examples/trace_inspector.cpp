/**
 * @file
 * Trace tooling example: record a workload trace, write it to disk in
 * the paper's (PFN, sector, UID, data) spirit, read it back, and
 * print summary statistics plus a CSV export — the reproducibility
 * workflow of §5.
 *
 * Traces written here use the v2 format: a session boundary and an
 * embedded scenario snippet in the header, like the fleet traces
 * `ariadne_sim --record` produces (those replay bit-identically via
 * `workload = trace`; this hand-rolled one is for inspection only).
 *
 * Run:  ./build/examples/trace_inspector [output.trace]
 */

#include <array>
#include <cstdio>
#include <string>

#include "workload/apps.hh"
#include "workload/generator.hh"
#include "workload/trace.hh"

using namespace ariadne;

namespace
{

void
append(std::vector<TraceRecord> &trace, Tick &now, AppId uid,
       TraceOp op, const std::vector<TouchEvent> &events = {})
{
    trace.push_back(
        TraceRecord{now, op, uid, invalidPfn, 0, Hotness::Cold, false});
    for (const auto &ev : events) {
        now += 2000;
        trace.push_back(TraceRecord{now, TraceOp::Touch, uid, ev.pfn,
                                    ev.version, ev.truth,
                                    ev.newAllocation});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path =
        argc > 1 ? argv[1] : "/tmp/ariadne_example.trace";

    // Record: launch, use, and twice relaunch YouTube.
    AppInstance inst(standardApp("YouTube"), 0.03125, 7);
    std::vector<TraceRecord> trace;
    Tick now = 0;
    append(trace, now, inst.profile().uid, TraceOp::Launch,
           inst.coldLaunch());
    append(trace, now, inst.profile().uid, TraceOp::Background,
           inst.execute(30_s));
    for (int i = 0; i < 2; ++i) {
        append(trace, now, inst.profile().uid, TraceOp::Relaunch,
               inst.relaunch());
        append(trace, now, inst.profile().uid, TraceOp::RelaunchEnd);
    }
    {
        TraceWriter writer(path, "name = trace-inspector-example\n");
        writer.beginSession(0);
        for (const auto &rec : trace)
            writer.append(rec);
    }
    std::printf("wrote %zu records to %s\n", trace.size(),
                path.c_str());

    // Read back and summarize (the header knows the session count and
    // carries the scenario text the trace was recorded under).
    TraceReader header(path);
    std::printf("trace v%u: %llu records, %u session(s), %zu bytes "
                "of embedded scenario\n",
                header.version(),
                static_cast<unsigned long long>(header.count()),
                header.sessionCount(), header.spec().size());
    auto loaded = readTrace(path);
    std::array<std::size_t, 3> by_truth{};
    std::size_t touches = 0, allocations = 0, relaunches = 0;
    for (const auto &rec : loaded) {
        if (rec.op == TraceOp::Touch) {
            ++touches;
            allocations += rec.newAllocation;
            by_truth[static_cast<std::size_t>(rec.truth)] += 1;
        } else if (rec.op == TraceOp::Relaunch) {
            ++relaunches;
        }
    }
    std::printf("read  %zu records: %zu touches (%zu allocations), "
                "%zu relaunches\n",
                loaded.size(), touches, allocations, relaunches);
    std::printf("touch hotness: hot %zu, warm %zu, cold %zu\n",
                by_truth[0], by_truth[1], by_truth[2]);

    std::string csv = path + ".csv";
    exportTraceCsv(csv, loaded);
    std::printf("CSV export at %s\n", csv.c_str());
    return 0;
}
