/**
 * @file
 * Mergeable per-metric aggregation state.
 *
 * A MetricState is everything a shard knows about one metric: count,
 * sum, min/max, and — depending on the scenario's `percentiles` mode —
 * either the exact sample vector in fold order or a mergeable
 * PercentileSketch. FleetRunner folds sessions into MetricStates,
 * partial reports serialize them, and ReportMerger folds shards'
 * states together; summarize() is the single place a MetricSummary is
 * computed, so single-process and sharded runs cannot disagree.
 *
 * Exact mode preserves byte-identity: states merge by concatenating
 * sample vectors in shard order (the unsharded fold order, because
 * shards are contiguous session ranges), and summarize() recomputes
 * mean/min/max/percentiles from that vector exactly the way the
 * pre-shard driver did. Sketch mode trades that for O(sketch) memory:
 * min/max/mean stay exact (running values), percentiles carry the
 * sketch's tracked rank-error bound.
 */

#ifndef ARIADNE_REPORT_METRIC_STATE_HH
#define ARIADNE_REPORT_METRIC_STATE_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"

namespace ariadne::report
{

/** p50/p90/p99 plus the usual moments of one aggregated metric. */
struct MetricSummary
{
    std::uint64_t samples = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    /** Worst-case absolute rank error of the percentiles, in samples
     * (0 = exact; see PercentileSketch::rankErrorBound). */
    std::uint64_t rankErrorBound = 0;

    /** Summarize an exact Distribution. */
    static MetricSummary of(const Distribution &d);
};

/** Mergeable aggregation state of one metric. */
class MetricState
{
  public:
    /** Exact-mode state (the default keeps aggregate structs
     * default-constructible). */
    MetricState() : MetricState(PercentileMode::Exact) {}

    explicit MetricState(PercentileMode mode,
                         std::size_t sketch_k = PercentileSketch::defaultK);

    /** Record one sample. */
    void sample(double v);

    /**
     * Fold @p o after this state's samples (shard order). Throws
     * ReportError when the modes or sketch capacities differ —
     * merging them would silently change semantics.
     */
    void merge(const MetricState &o);

    /** The one summary implementation shared by every report path. */
    MetricSummary summarize() const;

    PercentileMode mode() const noexcept { return percentileMode; }
    std::size_t sketchK() const noexcept { return sk.k(); }
    std::uint64_t count() const noexcept { return n; }
    double sum() const noexcept { return total; }
    double minValue() const noexcept { return n ? lo : 0.0; }
    double maxValue() const noexcept { return n ? hi : 0.0; }

    /** Exact-mode samples in fold order (empty in sketch mode). */
    const std::vector<double> &sampleValues() const noexcept
    {
        return samples_;
    }

    /** The sketch (meaningful in sketch mode only). */
    const PercentileSketch &sketch() const noexcept { return sk; }

    /** Raw values currently retained — samples (exact) or buffered
     * sketch items (O(k log n), never O(n)). */
    std::size_t retainedValues() const noexcept;

    /**
     * Rebuild a sketch-mode state from serialized parts (the partial
     * report parse path; exact states rebuild by replaying their
     * sample vector instead, which reproduces sum/min/max exactly).
     */
    static MetricState
    restoreSketch(std::uint64_t count, double sum, double min,
                  double max, std::size_t sketch_k,
                  std::uint64_t rank_error_bound,
                  std::vector<PercentileSketch::Level> levels);

  private:
    PercentileMode percentileMode = PercentileMode::Exact;
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    std::vector<double> samples_;
    PercentileSketch sk;
};

} // namespace ariadne::report

#endif // ARIADNE_REPORT_METRIC_STATE_HH
