/**
 * @file
 * Ablation study for the design decisions called out in DESIGN.md §5.
 *
 * Each row disables exactly one Ariadne mechanism and reruns the
 * standard target-relaunch scenario plus a three-cycle CPU
 * measurement, so the contribution of every technique is visible in
 * isolation:
 *
 *  - D1 no-hotness-seeding: the hot list starts empty (profile = 0
 *    pages), so initialization degenerates to cold-first LRU until
 *    the first relaunch teaches the scheme;
 *  - D2 single-size: Small = Medium = Large = 4 KB removes
 *    AdaptiveComp's size adaptation (HotnessOrg + PreDecomp only);
 *  - D3 no-predecomp: speculation disabled;
 *  - D4 no-cold-batching: LargeSize = 4 KB stores cold pages as
 *    single-page units (no multi-page decompression risk, but no
 *    large-window ratio either);
 *  - EHL vs AL: hot-list exemption versus all-lists compression.
 *
 * The mechanism toggles are Ariadne's registered scheme knobs
 * (`scheme.seed_profiles`, `scheme.predecomp`,
 * `scheme.hot_init_pages`; see `ariadne_sim --list-schemes`), so
 * every variant here is pure configuration — expressible verbatim in
 * a sweep config.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

namespace
{

struct Outcome
{
    double relaunchMs;
    double cpuMs;
    double ratio;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("ablation", argc, argv);
    printBanner(std::cout,
                "Ablation: contribution of each Ariadne mechanism "
                "(YouTube target, 3 cycles)");

    auto ablation_spec = [](std::string name, const std::string &kind,
                            const std::string &acfg) {
        driver::ScenarioSpec spec = makeSpec(kind, acfg);
        spec.name = std::move(name);
        for (unsigned v = 0; v < 3; ++v)
            spec.program.push_back(
                driver::Event::targetScenario("YouTube", v));
        return spec;
    };

    std::vector<driver::ScenarioSpec> variants;
    variants.push_back(
        ablation_spec("ZRAM baseline", "zram", ""));
    variants.push_back(ablation_spec("Ariadne full (EHL-1K-2K-16K)",
                                     "ariadne",
                                     "EHL-1K-2K-16K"));
    {
        driver::ScenarioSpec spec =
            ablation_spec("D1 no hotness seeding", "ariadne",
                          "EHL-1K-2K-16K");
        spec.params.set("seed_profiles", "false");
        spec.params.set("hot_init_pages", "0");
        variants.push_back(std::move(spec));
    }
    variants.push_back(ablation_spec(
        "D2 single 4K size", "ariadne", "EHL-4K-4K-4K"));
    {
        driver::ScenarioSpec spec =
            ablation_spec("D3 no predecomp", "ariadne",
                          "AL-1K-2K-16K");
        spec.params.set("predecomp", "false");
        variants.push_back(std::move(spec));
    }
    variants.push_back(ablation_spec("D3 control (AL, predecomp on)",
                                     "ariadne",
                                     "AL-1K-2K-16K"));
    variants.push_back(ablation_spec(
        "D4 no cold batching", "ariadne", "EHL-1K-2K-4K"));

    ReportTable table({"Variant", "Relaunch (ms)", "Comp+decomp CPU "
                                                   "(ms)",
                       "Ratio"});
    for (auto &spec : variants) {
        std::string label = spec.name;
        driver::FleetResult r = runVariant(std::move(spec));
        report.add(r);
        const driver::SessionResult &s = session(r);
        Outcome o{lastRelaunchMs(r),
                  static_cast<double>(s.compCpuNs + s.decompCpuNs) /
                      1e6,
                  s.comp.ratio()};
        table.addRow({label, ReportTable::num(o.relaunchMs, 1),
                      ReportTable::num(o.cpuMs, 1),
                      ReportTable::num(o.ratio, 2)});
    }
    table.print(std::cout);
    std::cout << "\nEach mechanism matters: seeding protects the "
                 "first relaunch, size adaptation buys ratio and CPU, "
                 "predecomp hides AL decompression, cold batching "
                 "trades ratio against misprediction cost.\n";
    report.addTable("ablation", table);
    return report.finish();
}
