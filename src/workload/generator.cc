#include "workload/generator.hh"

#include <algorithm>

#include "sim/log.hh"

namespace ariadne
{

AppInstance::AppInstance(AppProfile profile, double scale_factor,
                         std::uint64_t seed)
    : prof(std::move(profile)), scale(scale_factor),
      rng(mix64(seed ^ (std::uint64_t{prof.uid} << 32)))
{
    fatalIf(scale <= 0.0 || scale > 1.0,
            "workload scale must be in (0, 1]");
}

TouchEvent
AppInstance::allocatePage(Hotness truth)
{
    Pfn pfn = nextPfn++;
    pages.push_back(PageState{truth, 0});
    switch (truth) {
      case Hotness::Hot:
        hotList.push_back(pfn);
        break;
      case Hotness::Warm:
        warmList.push_back(pfn);
        break;
      case Hotness::Cold:
        coldList.push_back(pfn);
        break;
    }
    return TouchEvent{pfn, 0, truth, true, true};
}

std::vector<TouchEvent>
AppInstance::coldLaunch()
{
    panicIf(launched, "coldLaunch on an already-launched app");
    launched = true;
    ageNs = 10ULL * 1000000000ULL; // launch completes the 10 s point

    std::size_t total_pages = static_cast<std::size_t>(
        scale * static_cast<double>(prof.anonBytes10s)) /
        pageSize;
    if (total_pages < 8)
        total_pages = 8;
    hotTargetPages = std::max<std::size_t>(
        1, static_cast<std::size_t>(prof.hotFraction *
                                    static_cast<double>(total_pages)));

    std::vector<TouchEvent> events;
    events.reserve(total_pages);
    // Launch data first: this access order is the canonical hot order
    // and — because reclaim follows LRU — also the compression order.
    for (std::size_t i = 0; i < hotTargetPages; ++i)
        events.push_back(allocatePage(Hotness::Hot));

    appendGrowth(events, total_pages);
    return events;
}

void
AppInstance::appendGrowth(std::vector<TouchEvent> &events,
                          std::size_t target_pages)
{
    // Allocations happen in contiguous typed segments (a decoded
    // image, a parsed document, ...): the pages of one buffer share a
    // ground-truth hotness and sit adjacently in allocation order,
    // which is what gives relaunch swap-ins their sector locality.
    while (pages.size() < target_pages) {
        Hotness truth = rng.chance(prof.warmFraction) ? Hotness::Warm
                                                      : Hotness::Cold;
        std::size_t segment = std::min<std::size_t>(
            8 + rng.below(24), target_pages - pages.size());
        for (std::size_t i = 0; i < segment; ++i)
            events.push_back(allocatePage(truth));
    }
}

std::vector<TouchEvent>
AppInstance::execute(Tick dt)
{
    panicIf(!launched, "execute before coldLaunch");
    ageNs += dt;

    std::vector<TouchEvent> events;
    std::size_t target_pages = static_cast<std::size_t>(
        scale * static_cast<double>(prof.anonBytesAtAge(ageNs))) /
        pageSize;
    appendGrowth(events, target_pages);

    // Re-touch a slice of the warm working set in sequential runs —
    // apps walk related buffers together, which is what later gives
    // swap-ins their zpool sector locality (Insight 3). Touch volume
    // is proportional to execution time (~2.5% of warm pages per
    // second).
    if (!warmList.empty()) {
        double seconds = static_cast<double>(dt) / 1e9;
        auto touches = static_cast<std::size_t>(
            0.025 * seconds * static_cast<double>(warmList.size()));
        touches = std::min(touches, warmList.size());
        std::size_t emitted = 0;
        while (emitted < touches) {
            std::size_t start = rng.below(warmList.size());
            std::size_t run = std::min<std::size_t>(
                8 + rng.below(24), touches - emitted);
            run = std::min(run, warmList.size() - start);
            for (std::size_t j = 0; j < run; ++j) {
                Pfn pfn = warmList[start + j];
                PageState &st = pages[pfn];
                bool write = rng.chance(prof.writeProb);
                if (write)
                    ++st.version;
                events.push_back(TouchEvent{pfn, st.version, st.truth,
                                            false, write});
                ++emitted;
            }
        }
    }
    return events;
}

const std::vector<std::uint32_t> &
AppInstance::localityOrder(std::size_t n)
{
    std::vector<std::uint32_t> &result = orderScratch;
    result.clear();
    result.reserve(n);
    if (n == 0)
        return result;

    // Unvisited index pool with O(1) removal via position map.
    std::vector<std::uint32_t> &unvisited = unvisitedScratch;
    std::vector<std::uint32_t> &position = positionScratch;
    unvisited.resize(n);
    position.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        unvisited[i] = i;
        position[i] = i;
    }
    auto visit = [&](std::uint32_t idx) {
        std::uint32_t pos = position[idx];
        std::uint32_t last = unvisited.back();
        unvisited[pos] = last;
        position[last] = pos;
        unvisited.pop_back();
        position[idx] = UINT32_MAX;
        result.push_back(idx);
    };

    std::uint32_t current = 0;
    visit(current);
    unsigned run_len = 0;
    while (!unvisited.empty()) {
        double p = std::min(prof.seqAccessProb +
                                prof.seqMomentum *
                                    std::min<unsigned>(run_len, 3),
                            0.97);
        std::uint32_t next = current + 1;
        if (next < n && position[next] != UINT32_MAX &&
            rng.chance(p)) {
            current = next;
            ++run_len;
        } else {
            current = unvisited[rng.below(unvisited.size())];
            run_len = 0;
        }
        visit(current);
    }
    return result;
}

std::vector<TouchEvent>
AppInstance::relaunch()
{
    panicIf(!launched, "relaunch before coldLaunch");
    ++relaunches;

    // --- Churn the hot set (Insight 1 statistics). ---
    std::vector<Pfn> new_hot;
    std::vector<Pfn> demoted_warm;
    std::vector<Pfn> demoted_cold;
    new_hot.reserve(hotTargetPages);

    double keep_p = prof.hotSimilarity;
    double reuse_q =
        keep_p < 1.0
            ? std::clamp((prof.reuseFraction - keep_p) / (1.0 - keep_p),
                         0.0, 1.0)
            : 1.0;

    for (Pfn pfn : hotList) {
        if (rng.chance(keep_p)) {
            new_hot.push_back(pfn);
        } else if (rng.chance(reuse_q)) {
            demoted_warm.push_back(pfn);
        } else {
            demoted_cold.push_back(pfn);
        }
    }

    // Refill to the (stable) hot-set size: promote warm pages in
    // sequential runs (new relaunch activity loads related data
    // together, preserving zpool sector locality) or allocate fresh
    // activity data. Pages allocated below get pfns >= first_new_pfn
    // (pfns are handed out densely), which is how the emit loop tells
    // a first-touch allocation from a re-touch without a hash map.
    const Pfn first_new_pfn = nextPfn;
    while (new_hot.size() < hotTargetPages) {
        if (!warmList.empty() && rng.chance(0.7)) {
            std::size_t want = hotTargetPages - new_hot.size();
            std::size_t start = rng.below(warmList.size());
            std::size_t run = std::min<std::size_t>(
                {8 + rng.below(28), want, warmList.size() - start});
            for (std::size_t j = 0; j < run; ++j) {
                Pfn pfn = warmList[start + j];
                pages[pfn].truth = Hotness::Hot;
                new_hot.push_back(pfn);
            }
            warmList.erase(
                warmList.begin() + static_cast<long>(start),
                warmList.begin() + static_cast<long>(start + run));
        } else {
            TouchEvent ev = allocatePage(Hotness::Hot);
            // allocatePage appended to hotList; undo — membership is
            // rebuilt below from new_hot.
            hotList.pop_back();
            new_hot.push_back(ev.pfn);
        }
    }

    // Apply demotions.
    for (Pfn pfn : demoted_warm) {
        pages[pfn].truth = Hotness::Warm;
        warmList.push_back(pfn);
    }
    for (Pfn pfn : demoted_cold) {
        pages[pfn].truth = Hotness::Cold;
        coldList.push_back(pfn);
    }
    for (Pfn pfn : new_hot)
        pages[pfn].truth = Hotness::Hot;

    prevHotList = std::move(hotList);
    hotList = std::move(new_hot);

    // --- Emit the access sequence with run-based locality. ---
    std::vector<TouchEvent> events;
    events.reserve(hotList.size());
    const auto &order = localityOrder(hotList.size());

    for (std::uint32_t idx : order) {
        Pfn pfn = hotList[idx];
        PageState &st = pages[pfn];
        // This relaunch's fresh allocations occupy the dense pfn range
        // [first_new_pfn, nextPfn); the order is a permutation, so
        // each appears exactly once — its first touch faults as an
        // allocation.
        bool is_new = pfn >= first_new_pfn;
        bool write = !is_new && rng.chance(prof.writeProb / 3.0);
        if (write)
            ++st.version;
        events.push_back(
            TouchEvent{pfn, st.version, Hotness::Hot, is_new, write});
    }
    return events;
}

Hotness
AppInstance::truthOf(Pfn pfn) const
{
    panicIf(pfn >= pages.size(), "truthOf unknown page");
    return pages[pfn].truth;
}

std::uint32_t
AppInstance::versionOf(Pfn pfn) const
{
    panicIf(pfn >= pages.size(), "versionOf unknown page");
    return pages[pfn].version;
}

} // namespace ariadne
