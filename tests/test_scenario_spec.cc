/** @file Unit tests for the scenario-config parser. */

#include <gtest/gtest.h>

#include "driver/scenario_spec.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

const char *fullConfig = R"(
# A kitchen-sink scenario exercising every key and op.
name = kitchen-sink
scheme = ariadne
ariadne = AL-512-2K-16K
scale = 0.125
seed = 1234
fleet = 16
apps = YouTube, Twitter, Firefox

event = warmup
event = launch YouTube
event = execute YouTube 30s
event = background YouTube
event = repeat 3
event =   switch_next 500ms 1s
event =   repeat 2
event =     relaunch Twitter
event =     idle 250ms
event =   end
event = end
event = target_scenario Firefox 2
)";

} // namespace

TEST(ScenarioSpec, ParsesEveryKeyAndOp)
{
    ScenarioSpec spec = ScenarioSpec::parseString(fullConfig);
    EXPECT_EQ(spec.name, "kitchen-sink");
    EXPECT_EQ(spec.scheme, SchemeKind::Ariadne);
    EXPECT_EQ(spec.ariadneConfig, "AL-512-2K-16K");
    EXPECT_DOUBLE_EQ(spec.scale, 0.125);
    EXPECT_EQ(spec.seed, 1234u);
    EXPECT_EQ(spec.fleet, 16u);
    ASSERT_EQ(spec.apps.size(), 3u);
    EXPECT_EQ(spec.apps[1], "Twitter");

    ASSERT_EQ(spec.program.size(), 6u);
    EXPECT_EQ(spec.program[0].kind, Event::Kind::Warmup);
    EXPECT_EQ(spec.program[1].kind, Event::Kind::Launch);
    EXPECT_EQ(spec.program[1].app, "YouTube");
    EXPECT_EQ(spec.program[2].kind, Event::Kind::Execute);
    EXPECT_EQ(spec.program[2].duration, 30ull * 1000000000ull);
    EXPECT_EQ(spec.program[3].kind, Event::Kind::Background);

    const Event &outer = spec.program[4];
    EXPECT_EQ(outer.kind, Event::Kind::Repeat);
    EXPECT_EQ(outer.count, 3u);
    ASSERT_EQ(outer.body.size(), 2u);
    EXPECT_EQ(outer.body[0].kind, Event::Kind::SwitchNext);
    EXPECT_EQ(outer.body[0].duration, 500ull * 1000000ull);
    EXPECT_EQ(outer.body[0].gap, 1ull * 1000000000ull);
    const Event &inner = outer.body[1];
    EXPECT_EQ(inner.kind, Event::Kind::Repeat);
    EXPECT_EQ(inner.count, 2u);
    ASSERT_EQ(inner.body.size(), 2u);
    EXPECT_EQ(inner.body[0].kind, Event::Kind::Relaunch);
    EXPECT_EQ(inner.body[0].app, "Twitter");
    EXPECT_EQ(inner.body[1].kind, Event::Kind::Idle);

    EXPECT_EQ(spec.program[5].kind, Event::Kind::TargetScenario);
    EXPECT_EQ(spec.program[5].app, "Firefox");
    EXPECT_EQ(spec.program[5].variant, 2u);
}

TEST(ScenarioSpec, RoundTripsThroughToString)
{
    ScenarioSpec spec = ScenarioSpec::parseString(fullConfig);
    ScenarioSpec reparsed = ScenarioSpec::parseString(spec.toString());
    EXPECT_TRUE(spec == reparsed);
    // Serialization is canonical: a second round changes nothing.
    EXPECT_EQ(spec.toString(), reparsed.toString());
}

TEST(ScenarioSpec, DefaultsWhenKeysOmitted)
{
    ScenarioSpec spec = ScenarioSpec::parseString("event = warmup\n");
    EXPECT_EQ(spec.name, "unnamed");
    EXPECT_EQ(spec.scheme, SchemeKind::Zram);
    EXPECT_TRUE(spec.ariadneConfig.empty());
    EXPECT_DOUBLE_EQ(spec.scale, 0.0625);
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_EQ(spec.fleet, 1u);
    EXPECT_TRUE(spec.apps.empty());
    EXPECT_EQ(spec.appProfiles().size(), 10u);
}

TEST(ScenarioSpec, SessionSeedsAreStableAndDecorrelated)
{
    ScenarioSpec spec;
    spec.seed = 42;
    // Session 0 runs the base seed (legacy single-run compatibility).
    EXPECT_EQ(spec.sessionSeed(0), 42u);
    EXPECT_NE(spec.sessionSeed(1), spec.sessionSeed(2));
    EXPECT_EQ(spec.sessionSeed(7), spec.sessionSeed(7));
    // The derived SystemConfig carries the per-session seed.
    EXPECT_EQ(spec.systemConfig(3).seed, spec.sessionSeed(3));
}

TEST(ScenarioSpec, RejectsMalformedLines)
{
    EXPECT_THROW(ScenarioSpec::parseString("name daily\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("= value\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("name =\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("bogus = 1\n"), SpecError);
}

TEST(ScenarioSpec, RejectsBadValues)
{
    EXPECT_THROW(ScenarioSpec::parseString("scheme = windows\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("scale = 0\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("scale = 2.0\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("scale = abc\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("seed = -1\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("fleet = 0\n"), SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("apps = NoSuchApp\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("ariadne = EHL-1K-2K\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("ariadne = XXL-1K-2K-16K\n"),
                 SpecError);
    // Shape is fine but the size constraints AriadneConfig::parse
    // enforces with fatal() must already fail here with SpecError.
    EXPECT_THROW(ScenarioSpec::parseString("ariadne = EHL-16K-2K-1K\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("ariadne = EHL-0-1K-2K\n"),
                 SpecError);
    // Oversized chunk-size tokens must become SpecError, not escape
    // as std::out_of_range.
    EXPECT_THROW(ScenarioSpec::parseString(
                     "ariadne = EHL-99999999999999999999K-1K-2K\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString(
                     "ariadne = EHL-1K-2K-99999999999999999999\n"),
                 SpecError);
}

TEST(ScenarioSpec, AppListMayFollowTheEventsUsingIt)
{
    // Validation is order-independent: events may reference apps the
    // mix only declares later in the file...
    ScenarioSpec spec =
        ScenarioSpec::parseString("event = launch Twitter\n"
                                  "apps = Twitter\n");
    EXPECT_EQ(spec.program[0].app, "Twitter");
    // ...and an app outside the final mix is rejected no matter where
    // the apps line sits.
    EXPECT_THROW(
        ScenarioSpec::parseString("event = launch YouTube\n"
                                  "apps = Twitter\n"),
        SpecError);
}

TEST(ScenarioSpec, RejectsBadEvents)
{
    EXPECT_THROW(ScenarioSpec::parseString("event = fly YouTube\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = launch\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = launch NoSuchApp\n"),
                 SpecError);
    EXPECT_THROW(
        ScenarioSpec::parseString("event = execute YouTube 5parsecs\n"),
        SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = idle abc\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = repeat 0\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = repeat 2\n"
                                           "event = warmup\n"),
                 SpecError);
    EXPECT_THROW(ScenarioSpec::parseString("event = end\n"), SpecError);
    // Events may only reference apps in the scenario's mix.
    EXPECT_THROW(
        ScenarioSpec::parseString("apps = YouTube\n"
                                  "event = launch Twitter\n"),
        SpecError);
}

TEST(ScenarioSpec, ErrorsNameTheLine)
{
    try {
        ScenarioSpec::parseString("name = ok\nbogus = 1\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(ScenarioSpec, LoadFileThrowsOnMissingFile)
{
    EXPECT_THROW(ScenarioSpec::loadFile("/nonexistent/path.cfg"),
                 SpecError);
}

TEST(ParseDuration, AcceptsAllSuffixes)
{
    EXPECT_EQ(parseDuration("42"), 42u);
    EXPECT_EQ(parseDuration("42ns"), 42u);
    EXPECT_EQ(parseDuration("7us"), 7000u);
    EXPECT_EQ(parseDuration("250ms"), 250ull * 1000000ull);
    EXPECT_EQ(parseDuration("2s"), 2ull * 1000000000ull);
    EXPECT_THROW(parseDuration(""), SpecError);
    EXPECT_THROW(parseDuration("ms"), SpecError);
    EXPECT_THROW(parseDuration("5h"), SpecError);
    EXPECT_THROW(parseDuration("-5s"), SpecError);
}

TEST(ParseDuration, RejectsOverflowInsteadOfWrapping)
{
    // 1e11 seconds * 1e9 would wrap uint64; must throw, not truncate.
    EXPECT_THROW(parseDuration("99999999999s"), SpecError);
    // Digits alone already beyond uint64.
    EXPECT_THROW(parseDuration("99999999999999999999"), SpecError);
    // Near the limit but representable stays accepted.
    EXPECT_EQ(parseDuration("18000000000s"),
              18000000000ull * 1000000000ull);
}

TEST(FormatDuration, PicksShortestExactSuffix)
{
    EXPECT_EQ(formatDuration(2000000000ull), "2s");
    EXPECT_EQ(formatDuration(250000000ull), "250ms");
    EXPECT_EQ(formatDuration(7000ull), "7us");
    EXPECT_EQ(formatDuration(42ull), "42ns");
    EXPECT_EQ(formatDuration(0), "0s");
    // Round-trip property.
    EXPECT_EQ(parseDuration(formatDuration(123456789ull)), 123456789ull);
}
