#include "report/metric_state.hh"

#include <algorithm>

#include "report/report_error.hh"

namespace ariadne::report
{

MetricSummary
MetricSummary::of(const Distribution &d)
{
    MetricSummary m;
    m.samples = d.samples();
    m.mean = d.mean();
    m.min = d.min();
    m.max = d.max();
    m.p50 = d.percentile(0.50);
    m.p90 = d.percentile(0.90);
    m.p99 = d.percentile(0.99);
    return m;
}

MetricState::MetricState(PercentileMode mode, std::size_t sketch_k)
    : percentileMode(mode), sk(sketch_k)
{
}

void
MetricState::sample(double v)
{
    total += v;
    n += 1;
    lo = (n == 1) ? v : std::min(lo, v);
    hi = (n == 1) ? v : std::max(hi, v);
    if (percentileMode == PercentileMode::Exact)
        samples_.push_back(v);
    else
        sk.sample(v);
}

void
MetricState::merge(const MetricState &o)
{
    if (percentileMode != o.percentileMode)
        throw ReportError(
            "cannot merge metric states with different percentile "
            "modes (" +
            std::string(percentileModeName(percentileMode)) + " vs " +
            percentileModeName(o.percentileMode) + ")");
    if (percentileMode == PercentileMode::Sketch &&
        !sk.compatible(o.sk))
        throw ReportError(
            "cannot merge percentile sketches of different capacity "
            "(k = " +
            std::to_string(sk.k()) + " vs " + std::to_string(o.sk.k()) +
            ")");
    if (o.n == 0)
        return;
    total += o.total;
    lo = (n == 0) ? o.lo : std::min(lo, o.lo);
    hi = (n == 0) ? o.hi : std::max(hi, o.hi);
    n += o.n;
    if (percentileMode == PercentileMode::Exact)
        samples_.insert(samples_.end(), o.samples_.begin(),
                        o.samples_.end());
    else
        sk.merge(o.sk);
}

MetricSummary
MetricState::summarize() const
{
    if (percentileMode == PercentileMode::Exact) {
        // Recompute from the fold-ordered sample vector exactly the
        // way the pre-shard driver summarized its Distribution, so
        // merged shards reproduce the unsharded report byte for byte.
        Distribution d;
        for (double v : samples_)
            d.sample(v);
        return MetricSummary::of(d);
    }
    MetricSummary m;
    m.samples = n;
    m.mean = n ? total / static_cast<double>(n) : 0.0;
    m.min = minValue();
    m.max = maxValue();
    m.p50 = sk.percentile(0.50);
    m.p90 = sk.percentile(0.90);
    m.p99 = sk.percentile(0.99);
    m.rankErrorBound = sk.rankErrorBound();
    return m;
}

std::size_t
MetricState::retainedValues() const noexcept
{
    return percentileMode == PercentileMode::Exact ? samples_.size()
                                                   : sk.retained();
}

MetricState
MetricState::restoreSketch(std::uint64_t count, double sum, double min,
                           double max, std::size_t sketch_k,
                           std::uint64_t rank_error_bound,
                           std::vector<PercentileSketch::Level> levels)
{
    MetricState state(PercentileMode::Sketch, sketch_k);
    state.n = count;
    state.total = sum;
    state.lo = min;
    state.hi = max;
    state.sk = PercentileSketch::restore(sketch_k, count,
                                         rank_error_bound,
                                         std::move(levels));
    return state;
}

} // namespace ariadne::report
