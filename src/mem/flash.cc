#include "mem/flash.hh"

#include "sim/log.hh"

namespace ariadne
{

FlashDevice::FlashDevice(std::size_t capacity_bytes,
                         double write_amplification)
    : capacity(capacity_bytes), writeAmp(write_amplification)
{
    fatalIf(capacity == 0, "flash swap space has zero capacity");
    fatalIf(writeAmp < 1.0, "write amplification must be >= 1");
}

FlashSlot
FlashDevice::write(std::size_t bytes)
{
    if (bytes == 0 || used + bytes > capacity)
        return invalidFlashSlot;
    FlashSlot slot = nextSlot++;
    slots.emplace(slot, bytes);
    used += bytes;
    hostWrites += bytes;
    ++writeOpCount;
    return slot;
}

std::size_t
FlashDevice::read(FlashSlot slot)
{
    auto it = slots.find(slot);
    panicIf(it == slots.end(), "flash read of dead slot");
    reads += it->second;
    ++readOpCount;
    return it->second;
}

std::size_t
FlashDevice::slotSize(FlashSlot slot) const
{
    auto it = slots.find(slot);
    panicIf(it == slots.end(), "slotSize of dead slot");
    return it->second;
}

void
FlashDevice::free(FlashSlot slot)
{
    auto it = slots.find(slot);
    panicIf(it == slots.end(), "flash free of dead slot");
    used -= it->second;
    slots.erase(it);
}

bool
FlashDevice::live(FlashSlot slot) const noexcept
{
    return slots.contains(slot);
}

} // namespace ariadne
