/**
 * @file
 * ReportMerger — fold K partial reports into the final report.
 *
 * finalizeFleet()/finalizeSweep() turn aggregation state into the
 * exact FleetResult/SweepResult schema FleetRunner emits — they are
 * the *only* summarization path, shared by in-process runs (a 1/1
 * shard) and `ariadne_sim --merge`.
 *
 * The merger canonicalizes before folding: partials sort by shard
 * index (CLI argument order cannot change the result), every shard
 * 1..N must be present exactly once, run identities must agree, and
 * fleet session ranges must be exactly the ShardPlan ranges — so an
 * exact-mode merge reproduces the unsharded report byte for byte, and
 * a sketch-mode merge is deterministic for a given shard set.
 * Violations throw ReportError (the CLI's exit-2 currency).
 */

#ifndef ARIADNE_REPORT_REPORT_MERGER_HH
#define ARIADNE_REPORT_REPORT_MERGER_HH

#include <vector>

#include "driver/fleet_runner.hh"
#include "report/partial_report.hh"

namespace ariadne::report
{

/** Summarize one (complete or partial) fleet aggregation state into
 * the final report record. */
driver::FleetResult finalizeFleet(const FleetPartial &p);

/** Summarize a complete sweep partial (every variant present, each
 * complete); throws ReportError otherwise. */
driver::SweepResult finalizeSweep(const PartialReport &p);

/** Outcome of a merge: exactly one of the two reports, per kind. */
struct MergedReport
{
    PartialReport::Kind kind = PartialReport::Kind::Fleet;
    driver::FleetResult fleet;
    driver::SweepResult sweep;
};

/**
 * Fold @p partials into the final report. Validates coverage and
 * identity (see file header); throws ReportError on any mismatch.
 */
MergedReport mergePartials(std::vector<PartialReport> partials);

/** Load @p paths (PartialReport::loadFile) and merge them. */
MergedReport mergeReportFiles(const std::vector<std::string> &paths);

} // namespace ariadne::report

#endif // ARIADNE_REPORT_REPORT_MERGER_HH
