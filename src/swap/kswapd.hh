/**
 * @file
 * Background reclaim daemon (kswapd).
 *
 * Watches the DRAM watermarks and asks the active scheme to reclaim
 * until the high watermark is restored — asynchronously, i.e., without
 * advancing the simulated clock (it runs on another core while the
 * app continues). All CPU the scheme burns during these calls is
 * attributed to the kswapd thread, which is what the paper's Fig. 3
 * Perfetto measurement reports.
 */

#ifndef ARIADNE_SWAP_KSWAPD_HH
#define ARIADNE_SWAP_KSWAPD_HH

#include "swap/scheme.hh"

namespace ariadne
{

/** Watermark-driven background reclaim thread model. */
class Kswapd
{
  public:
    /**
     * @param context Shared services (watermarks come from ctx.dram).
     * @param scheme The swap scheme that performs evictions.
     */
    Kswapd(SwapContext context, SwapScheme &scheme)
        : ctx(context), target(scheme)
    {}

    /**
     * Run one reclaim cycle if the low watermark was breached; frees
     * up to the high watermark. Called on every page touch, so the
     * watermark check is the inline fast path and the reclaim cycle
     * stays out of line.
     * @return pages reclaimed.
     */
    std::size_t
    maybeRun()
    {
        if (!ctx.dram.belowLowWatermark())
            return 0;
        return runReclaim();
    }

    /**
     * CPU nanoseconds consumed on the kswapd thread: wakeup and scan
     * bookkeeping plus all compression / I/O-submission work performed
     * during its reclaim calls (Fig. 3 metric together with the
     * system's file-writeback component).
     */
    Tick cpuNs() const noexcept { return totalCpuNs; }

    /** Number of reclaim cycles that actually ran. */
    std::uint64_t wakeups() const noexcept { return runs; }

    /** Pages reclaimed across all cycles. */
    std::uint64_t reclaimedPages() const noexcept { return reclaimed; }

  private:
    /** One full reclaim cycle (watermark already known breached). */
    std::size_t runReclaim();

    SwapContext ctx;
    SwapScheme &target;
    Tick totalCpuNs = 0;
    std::uint64_t runs = 0;
    std::uint64_t reclaimed = 0;

    /** Fixed bookkeeping cost per wakeup (scan, watermark checks). */
    static constexpr Tick wakeupCpuNs = 20000;
};

} // namespace ariadne

#endif // ARIADNE_SWAP_KSWAPD_HH
