/**
 * @file
 * Text-table and CSV report helpers used by every bench binary.
 */

#ifndef ARIADNE_ANALYSIS_REPORT_HH
#define ARIADNE_ANALYSIS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace ariadne
{

/** Right-padded text table with a header row. */
class ReportTable
{
  public:
    /** @param column_names Header labels, one per column. */
    explicit ReportTable(std::vector<std::string> column_names);

    /** Append a row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const noexcept { return body.size(); }

    /** Header labels, one per column. */
    const std::vector<std::string> &
    columnNames() const noexcept
    {
        return header;
    }

    /** Cells of row @p i (bounds-checked). */
    const std::vector<std::string> &row(std::size_t i) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

/** Print a "=== title ===" section banner. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace ariadne

#endif // ARIADNE_ANALYSIS_REPORT_HH
