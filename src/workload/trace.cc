#include "workload/trace.hh"

#include <array>
#include <cstring>
#include <limits>

#include "sim/log.hh"

namespace ariadne
{

namespace
{

constexpr std::uint32_t traceMagic = 0x52545241u; // "ARTR"
constexpr std::uint32_t traceVersionV1 = 1;
constexpr std::uint32_t traceVersionV2 = 2;

/** On-disk record: 8+1+4+8+4+1+1 = 27 bytes, packed little endian. */
constexpr std::size_t recordBytes = 27;

/** v2 header field offsets (after the 4-byte magic + 4-byte version):
 * record count u64 @8, session count u32 @16, spec length u32 @20. */
constexpr std::streamoff countOffset = 8;
constexpr std::streamoff sessionOffset = 16;

void
encode(const TraceRecord &rec, std::array<char, recordBytes> &buf)
{
    char *p = buf.data();
    std::memcpy(p, &rec.time, 8);
    p += 8;
    *p++ = static_cast<char>(rec.op);
    std::memcpy(p, &rec.uid, 4);
    p += 4;
    std::memcpy(p, &rec.pfn, 8);
    p += 8;
    std::memcpy(p, &rec.version, 4);
    p += 4;
    *p++ = static_cast<char>(rec.truth);
    *p++ = rec.newAllocation ? 1 : 0;
}

bool
decode(const std::array<char, recordBytes> &buf, TraceRecord &rec)
{
    const char *p = buf.data();
    std::memcpy(&rec.time, p, 8);
    p += 8;
    std::uint8_t op = static_cast<std::uint8_t>(*p++);
    if (op > static_cast<std::uint8_t>(TraceOp::SessionStart))
        return false;
    rec.op = static_cast<TraceOp>(op);
    std::memcpy(&rec.uid, p, 4);
    p += 4;
    std::memcpy(&rec.pfn, p, 8);
    p += 8;
    std::memcpy(&rec.version, p, 4);
    p += 4;
    std::uint8_t truth = static_cast<std::uint8_t>(*p++);
    if (truth > static_cast<std::uint8_t>(Hotness::Cold))
        return false;
    rec.truth = static_cast<Hotness>(truth);
    rec.newAllocation = *p++ != 0;
    return true;
}

} // namespace

const char *
traceOpName(TraceOp op) noexcept
{
    switch (op) {
      case TraceOp::Launch: return "launch";
      case TraceOp::Relaunch: return "relaunch";
      case TraceOp::RelaunchEnd: return "relaunchEnd";
      case TraceOp::Background: return "background";
      case TraceOp::Touch: return "touch";
      case TraceOp::Free: return "free";
      case TraceOp::Execute: return "execute";
      case TraceOp::Idle: return "idle";
      case TraceOp::Sample: return "sample";
      case TraceOp::SessionStart: return "sessionStart";
      default: return "unknown";
    }
}

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &spec_text)
    : out(path, std::ios::binary | std::ios::trunc)
{
    fatalIf(!out, "cannot open trace for writing: " + path);
    fatalIf(spec_text.size() >
                std::numeric_limits<std::uint32_t>::max(),
            "trace spec text too large");
    std::uint64_t count_placeholder = 0;
    std::uint32_t session_placeholder = 0;
    auto spec_len = static_cast<std::uint32_t>(spec_text.size());
    out.write(reinterpret_cast<const char *>(&traceMagic), 4);
    out.write(reinterpret_cast<const char *>(&traceVersionV2), 4);
    out.write(reinterpret_cast<const char *>(&count_placeholder), 8);
    out.write(reinterpret_cast<const char *>(&session_placeholder), 4);
    out.write(reinterpret_cast<const char *>(&spec_len), 4);
    out.write(spec_text.data(),
              static_cast<std::streamsize>(spec_text.size()));
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::beginSession(std::size_t index)
{
    TraceRecord rec;
    rec.time = 0;
    rec.op = TraceOp::SessionStart;
    rec.uid = invalidApp;
    rec.pfn = index;
    rec.version = 0;
    rec.truth = Hotness::Cold;
    rec.newAllocation = false;
    append(rec);
    ++sessions;
}

void
TraceWriter::append(const TraceRecord &rec)
{
    panicIf(closed, "append to closed TraceWriter");
    std::array<char, recordBytes> buf;
    encode(rec, buf);
    out.write(buf.data(), buf.size());
    ++written;
}

void
TraceWriter::close()
{
    if (closed)
        return;
    closed = true;
    out.seekp(countOffset);
    out.write(reinterpret_cast<const char *>(&written), 8);
    out.seekp(sessionOffset);
    out.write(reinterpret_cast<const char *>(&sessions), 4);
    out.close();
}

void
TraceReader::fail(const std::string &msg) const
{
    if (onError == OnError::Throw)
        throw TraceError(msg);
    fatal(msg);
}

TraceReader::TraceReader(const std::string &path, OnError on_error)
    : in(path, std::ios::binary), path(path), onError(on_error)
{
    if (!in)
        fail("cannot open trace: " + path);
    std::uint32_t magic = 0;
    in.read(reinterpret_cast<char *>(&magic), 4);
    in.read(reinterpret_cast<char *>(&fileVersion), 4);
    in.read(reinterpret_cast<char *>(&total), 8);
    if (!in || magic != traceMagic)
        fail("bad trace header: " + path);
    if (fileVersion != traceVersionV1 && fileVersion != traceVersionV2)
        fail("unsupported trace version " +
             std::to_string(fileVersion) + " in " + path +
             " (this build reads versions 1 and 2)");
    if (fileVersion == traceVersionV2) {
        std::uint32_t spec_len = 0;
        in.read(reinterpret_cast<char *>(&sessions), 4);
        in.read(reinterpret_cast<char *>(&spec_len), 4);
        if (!in)
            fail("bad trace header: " + path);
        specText.resize(spec_len);
        in.read(specText.data(), spec_len);
        if (!in)
            fail("trace truncated inside embedded scenario: " + path);
    }
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (consumed >= total)
        return false;
    std::array<char, recordBytes> buf;
    in.read(buf.data(), buf.size());
    if (!in)
        fail("trace truncated: header promises " +
             std::to_string(total) + " record(s) but " + path +
             " ends after " + std::to_string(consumed));
    if (!decode(buf, rec))
        fail("corrupt trace record " + std::to_string(consumed) +
             " in " + path);
    ++consumed;
    return true;
}

std::vector<TraceRecord>
readTrace(const std::string &path, TraceReader::OnError on_error)
{
    TraceReader reader(path, on_error);
    std::vector<TraceRecord> records;
    records.reserve(reader.count());
    TraceRecord rec;
    while (reader.next(rec))
        records.push_back(rec);
    return records;
}

void
writeTrace(const std::string &path,
           const std::vector<TraceRecord> &records)
{
    TraceWriter writer(path);
    for (const auto &rec : records)
        writer.append(rec);
    writer.close();
}

void
exportTraceCsv(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    std::ofstream csv(path, std::ios::trunc);
    fatalIf(!csv, "cannot open CSV for writing: " + path);
    csv << "time_ns,op,uid,pfn,version,truth,new_allocation\n";
    for (const auto &rec : records) {
        csv << rec.time << ',' << traceOpName(rec.op) << ',' << rec.uid
            << ',' << rec.pfn << ',' << rec.version << ','
            << hotnessName(rec.truth) << ','
            << (rec.newAllocation ? 1 : 0) << '\n';
    }
}

} // namespace ariadne
