#include "telemetry/telemetry.hh"

#include <algorithm>
#include <map>

#include "sim/log.hh"

namespace ariadne::telemetry
{

namespace detail
{
std::atomic<bool> g_enabled{false};
} // namespace detail

void
setEnabled(bool on) noexcept
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

Registry::Shard &
Registry::attachShard()
{
    std::lock_guard<std::mutex> lk(mu);
    shards.push_back(std::make_unique<Shard>());
    return *shards.back();
}

namespace
{

std::size_t
slotWidth(Registry::Kind kind)
{
    switch (kind) {
    case Registry::Kind::Counter:
        return 1;
    case Registry::Kind::Duration:
        return 2;
    case Registry::Kind::Gauge:
        return 4;
    case Registry::Kind::Histogram:
        return Registry::histogramBuckets + 1;
    }
    return 1;
}

} // namespace

std::size_t
Registry::intern(const std::string &name, Kind kind)
{
    std::lock_guard<std::mutex> lk(mu);
    for (const Entry &e : entries) {
        if (e.name == name && e.kind == kind)
            return e.slot;
    }
    std::size_t width = slotWidth(kind);
    panicIf(nextSlot + width > maxSlots,
            "telemetry registry slot space exhausted (raise "
            "Registry::maxSlots)");
    std::size_t slot = nextSlot;
    nextSlot += width;
    entries.push_back(Entry{name, slot, kind});
    return slot;
}

std::size_t
Registry::counterSlot(const std::string &name)
{
    return intern(name, Kind::Counter);
}

std::size_t
Registry::durationSlot(const std::string &name)
{
    return intern(name, Kind::Duration);
}

std::size_t
Registry::gaugeSlot(const std::string &name)
{
    return intern(name, Kind::Gauge);
}

std::size_t
Registry::histogramSlot(const std::string &name)
{
    return intern(name, Kind::Histogram);
}

std::size_t
AppHistogram::internApp(std::uint32_t uid)
{
    std::size_t b = Registry::global().histogramSlot(
                        prefix + ".app" + std::to_string(uid)) +
                    1;
    perApp[uid].store(b, std::memory_order_release);
    return b;
}

Registry::Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lk(mu);
    auto slot_total = [&](std::size_t slot) {
        std::uint64_t total = 0;
        for (const auto &shard : shards)
            total +=
                shard->slots[slot].load(std::memory_order_relaxed);
        return total;
    };
    for (const Entry &e : entries) {
        switch (e.kind) {
        case Kind::Counter:
            snap.counters.push_back(
                CounterValue{e.name, slot_total(e.slot)});
            break;
        case Kind::Duration:
            snap.durations.push_back(DurationValue{
                e.name, slot_total(e.slot + 1), slot_total(e.slot)});
            break;
        case Kind::Gauge: {
            // min/max are only meaningful in shards whose thread
            // actually recorded (count > 0), so widen per shard.
            GaugeValue g;
            g.name = e.name;
            for (const auto &shard : shards) {
                std::uint64_t n = shard->slots[e.slot].load(
                    std::memory_order_relaxed);
                if (n == 0)
                    continue;
                std::uint64_t lo = shard->slots[e.slot + 2].load(
                    std::memory_order_relaxed);
                std::uint64_t hi = shard->slots[e.slot + 3].load(
                    std::memory_order_relaxed);
                if (g.count == 0) {
                    g.min = lo;
                    g.max = hi;
                } else {
                    g.min = std::min(g.min, lo);
                    g.max = std::max(g.max, hi);
                }
                g.count += n;
                g.sum += shard->slots[e.slot + 1].load(
                    std::memory_order_relaxed);
            }
            snap.gauges.push_back(std::move(g));
            break;
        }
        case Kind::Histogram: {
            HistogramValue h;
            h.name = e.name;
            for (std::size_t b = 0; b < histogramBuckets; ++b)
                h.buckets[b] = slot_total(e.slot + b);
            h.sum = slot_total(e.slot + histogramBuckets);
            snap.histograms.push_back(std::move(h));
            break;
        }
        }
    }
    auto by_name = [](const auto &a, const auto &b) {
        return a.name < b.name;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.durations.begin(), snap.durations.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              by_name);
    return snap;
}

void
Registry::reset() noexcept
{
    std::lock_guard<std::mutex> lk(mu);
    for (const auto &shard : shards)
        for (std::size_t i = 0; i < maxSlots; ++i)
            shard->slots[i].store(0, std::memory_order_relaxed);
}

std::uint64_t
Registry::Snapshot::counter(const std::string &name) const noexcept
{
    for (const CounterValue &c : counters)
        if (c.name == name)
            return c.value;
    return 0;
}

Registry::DurationValue
Registry::Snapshot::duration(const std::string &name) const noexcept
{
    for (const DurationValue &d : durations)
        if (d.name == name)
            return d;
    return DurationValue{name, 0, 0};
}

Registry::GaugeValue
Registry::Snapshot::gauge(const std::string &name) const noexcept
{
    for (const GaugeValue &g : gauges)
        if (g.name == name)
            return g;
    GaugeValue g;
    g.name = name;
    return g;
}

Registry::HistogramValue
Registry::Snapshot::histogram(const std::string &name) const noexcept
{
    for (const HistogramValue &h : histograms)
        if (h.name == name)
            return h;
    HistogramValue h;
    h.name = name;
    return h;
}

void
Registry::Snapshot::merge(const Snapshot &o)
{
    std::map<std::string, CounterValue> cs;
    for (const CounterValue &c : counters)
        cs[c.name] = c;
    for (const CounterValue &c : o.counters) {
        auto [it, inserted] = cs.emplace(c.name, c);
        if (!inserted)
            it->second.value += c.value;
    }
    counters.clear();
    for (auto &[name, c] : cs)
        counters.push_back(std::move(c));

    std::map<std::string, DurationValue> ds;
    for (const DurationValue &d : durations)
        ds[d.name] = d;
    for (const DurationValue &d : o.durations) {
        auto [it, inserted] = ds.emplace(d.name, d);
        if (!inserted) {
            it->second.count += d.count;
            it->second.totalNs += d.totalNs;
        }
    }
    durations.clear();
    for (auto &[name, d] : ds)
        durations.push_back(std::move(d));

    std::map<std::string, GaugeValue> gs;
    for (const GaugeValue &g : gauges)
        gs[g.name] = g;
    for (const GaugeValue &g : o.gauges) {
        auto [it, inserted] = gs.emplace(g.name, g);
        if (inserted || g.count == 0)
            continue;
        GaugeValue &m = it->second;
        if (m.count == 0) {
            m.min = g.min;
            m.max = g.max;
        } else {
            m.min = std::min(m.min, g.min);
            m.max = std::max(m.max, g.max);
        }
        m.count += g.count;
        m.sum += g.sum;
    }
    gauges.clear();
    for (auto &[name, g] : gs)
        gauges.push_back(std::move(g));

    std::map<std::string, HistogramValue> hs;
    for (const HistogramValue &h : histograms)
        hs[h.name] = h;
    for (const HistogramValue &h : o.histograms) {
        auto [it, inserted] = hs.emplace(h.name, h);
        if (inserted)
            continue;
        for (std::size_t b = 0; b < histogramBuckets; ++b)
            it->second.buckets[b] += h.buckets[b];
        it->second.sum += h.sum;
    }
    histograms.clear();
    for (auto &[name, h] : hs)
        histograms.push_back(std::move(h));
}

} // namespace ariadne::telemetry
