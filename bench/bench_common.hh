/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * Every bench binary reproduces one table or figure of the paper; the
 * helpers here describe runs as driver::ScenarioSpecs at the standard
 * evaluation scale, execute them through the FleetRunner, and print
 * results side by side with the paper's reference values
 * (EXPERIMENTS.md records both). A single-session fleet with the
 * shared eval seed reproduces the legacy hand-rolled bench loops
 * bit-for-bit.
 */

#ifndef ARIADNE_BENCH_COMMON_HH
#define ARIADNE_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "driver/fleet_runner.hh"
#include "sys/session.hh"
#include "workload/apps.hh"

namespace ariadne::bench
{

/** Footprint scale all experiment harnesses run at (1/16 of the
 * paper's volumes; latencies are rescaled, see EXPERIMENTS.md). */
constexpr double evalScale = 0.0625;

/** Deterministic seed shared by all benches. */
constexpr std::uint64_t evalSeed = 42;

/** The five applications the paper plots (Figs. 2, 10-13, 15). */
inline std::vector<std::string>
plottedApps()
{
    return {"YouTube", "Twitter", "Firefox", "GoogleEarth",
            "BangDream"};
}

/** Build a SystemConfig at the evaluation scale. */
inline SystemConfig
makeConfig(SchemeKind kind, const std::string &ariadne_cfg = "")
{
    SystemConfig cfg;
    cfg.scale = evalScale;
    cfg.seed = evalSeed;
    cfg.scheme = kind;
    if (!ariadne_cfg.empty())
        cfg.ariadne = AriadneConfig::parse(ariadne_cfg);
    return cfg;
}

/** Empty ScenarioSpec at the evaluation scale; add events to taste. */
inline driver::ScenarioSpec
makeSpec(SchemeKind kind, const std::string &ariadne_cfg = "")
{
    driver::ScenarioSpec spec;
    spec.scheme = kind;
    spec.ariadneConfig = ariadne_cfg;
    spec.scale = evalScale;
    spec.seed = evalSeed;
    return spec;
}

/** Run @p spec as a single session (the legacy bench methodology). */
inline driver::SessionResult
runSingleSession(driver::ScenarioSpec spec)
{
    return driver::FleetRunner(std::move(spec)).runSession(0);
}

/**
 * Run the §5 target-relaunch scenario on a fresh single-session fleet
 * at the evaluation scale.
 * @return the measured relaunch.
 */
inline RelaunchStats
runTargetScenario(SchemeKind kind, const std::string &app_name,
                  unsigned variant = 0,
                  const std::string &ariadne_cfg = "")
{
    driver::ScenarioSpec spec = makeSpec(kind, ariadne_cfg);
    spec.name = "target";
    spec.program.push_back(
        driver::Event::targetScenario(app_name, variant));
    return runSingleSession(std::move(spec)).relaunches.back().stats;
}

/** Full-scale milliseconds of a scaled relaunch measurement. */
inline double
fullScaleMs(const RelaunchStats &st, double scale = evalScale)
{
    return static_cast<double>(st.fullScaleNs(scale)) / 1e6;
}

} // namespace ariadne::bench

#endif // ARIADNE_BENCH_COMMON_HH
