/**
 * @file
 * Table 3: probability of accessing two or four consecutive pages in
 * zpool during an application relaunch (ZRAM).
 *
 * Paper result: P(2 consecutive) = 0.61-0.86, P(4 consecutive) =
 * 0.33-0.72 across the five plotted apps — the basis of PreDecomp's
 * one-page lookahead.
 *
 * Each app is one ScenarioSpec variant: `prepare_target` builds the
 * usage scenario declaratively; the measured relaunch runs in a
 * `custom` hook so the ZRAM sector-access log can be cleared right
 * before it (only the target relaunch's swap-in stream counts).
 */

#include "analysis/locality.hh"
#include "bench_common.hh"
#include "swap/zram.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("table3", argc, argv);
    printBanner(std::cout, "Table 3: P(N consecutive zpool pages) "
                           "during relaunch (ZRAM)");

    struct PaperRow
    {
        const char *name;
        double p2;
        double p4;
    };
    const PaperRow paper[] = {
        {"YouTube", 0.86, 0.72},     {"Twitter", 0.81, 0.61},
        {"Firefox", 0.69, 0.43},     {"GoogleEarth", 0.77, 0.54},
        {"BangDream", 0.61, 0.33},
    };

    ReportTable table({"App", "P2 (sim)", "P2 (paper)", "P4 (sim)",
                       "P4 (paper)"});

    for (const auto &row : paper) {
        AppId target = standardApp(row.name).uid;
        double p2 = 0.0, p4 = 0.0;

        driver::ScenarioSpec spec = makeSpec("zram");
        spec.name = std::string(row.name) + "/zram";
        spec.program.push_back(
            driver::Event::prepareTarget(row.name, 0));
        spec.program.push_back(driver::Event::custom(0));

        driver::SessionHook measure =
            [&](MobileSystem &sys, SessionDriver &,
                driver::SessionResult &) {
                auto *zram = dynamic_cast<ZramScheme *>(&sys.scheme());
                // Measure only the target relaunch's swap-in stream.
                zram->clearLogs();
                sys.appRelaunch(target);
                const auto &sectors = zram->sectorAccessLog();
                p2 = consecutiveAccessProbability(sectors, 2);
                p4 = consecutiveAccessProbability(sectors, 4);
            };
        report.add(runVariant(std::move(spec), {measure}));

        table.addRow({row.name, ReportTable::num(p2, 2),
                      ReportTable::num(row.p2, 2),
                      ReportTable::num(p4, 2),
                      ReportTable::num(row.p4, 2)});
    }
    table.print(std::cout);
    std::cout << "\nLocality is high at depth 2 and drops at depth 4 "
                 "for every app, matching Insight 3.\n";
    report.addTable("locality", table);
    return report.finish();
}
