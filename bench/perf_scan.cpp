/**
 * @file
 * perf_scan — SoA scan-metadata microbench.
 *
 * Exercises the reclaim-shaped access patterns that motivated moving
 * hotness level, location, and last-access ticks out of PageMeta into
 * PageArena's parallel SoA arrays: a full-arena level scan (kswapd
 * victim selection), a cold-page sweep filtering on location and
 * last-access age, a relaunch decay walk (hot -> warm demotion), and
 * the reset-and-refill cycle fleet workers run between sessions. All
 * over a million-page arena, so the working set is far out of cache
 * and the dense arrays' bandwidth advantage over pointer-chasing
 * through 64-byte records is what the numbers measure. Emits
 * BENCH_scan.json in the stable `ariadneBench` schema; the checked-in
 * counters pin the op mix so behavioural drift is caught exactly.
 *
 *     perf_scan [--pages N] [--rounds R] [--out FILE]
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mem/page_arena.hh"
#include "telemetry/bench_report.hh"
#include "telemetry/telemetry.hh"

using namespace ariadne;

namespace
{

telemetry::Counter c_levelScan("scan.level_pages");
telemetry::Counter c_coldSweep("scan.cold_sweep_pages");
telemetry::Counter c_decay("scan.decay_pages");
telemetry::Counter c_refill("scan.refill_pages");

double
rate(std::size_t ops, std::chrono::duration<double> wall)
{
    return static_cast<double>(ops) / std::max(wall.count(), 1e-9);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t pages = 1u << 20; // a million-page arena
    std::size_t rounds = 8;
    std::string out_path = "BENCH_scan.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--pages") && i + 1 < argc) {
            pages = std::stoul(argv[++i]);
        } else if (!std::strcmp(argv[i], "--rounds") && i + 1 < argc) {
            rounds = std::stoul(argv[++i]);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--pages N] [--rounds R] [--out FILE]\n";
            return 2;
        }
    }

    telemetry::setEnabled(true);
    telemetry::Registry::global().reset();

    telemetry::BenchReport report;
    report.bench = "scan";
    report.meta = telemetry::RunMeta::current();
    report.meta.threads = 1;
    report.meta.scenario = "perf_scan";
    report.totals.emplace_back("pages", pages);
    report.totals.emplace_back("rounds", rounds);

    PageArena arena;
    std::vector<PageMeta *> dir(pages, nullptr);
    auto total_start = std::chrono::steady_clock::now();

    // Populate with a deterministic mix: levels cycle hot/warm/cold,
    // every 5th page sits in the zpool, last-access ticks are dense.
    auto populate = [&]() {
        for (std::size_t i = 0; i < pages; ++i) {
            PageMeta *page = arena.alloc();
            page->key = PageKey{1000, static_cast<Pfn>(i)};
            dir[i] = page;
            arena.setLevel(*page, static_cast<Hotness>(i % 3));
            if (i % 5 == 0)
                arena.setLocation(*page, PageLocation::Zpool);
            arena.setLastAccess(*page, static_cast<Tick>(i));
        }
    };
    populate();

    // Level scan: the victim-selection shape — classify every page by
    // hotness, touching only the dense level array.
    std::uint64_t level_hist[3] = {0, 0, 0};
    auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < pages; ++i)
            ++level_hist[static_cast<std::size_t>(
                arena.level(*dir[i]))];
        c_levelScan.add(pages);
    }
    report.rates.emplace_back(
        "opsPerSec.levelScan",
        rate(rounds * pages,
             std::chrono::steady_clock::now() - start));
    report.totals.emplace_back("levelHistHot", level_hist[0]);
    report.totals.emplace_back("levelHistWarm", level_hist[1]);
    report.totals.emplace_back("levelHistCold", level_hist[2]);

    // Cold sweep: filter on location + last-access age, the shape of
    // an age-based writeback scan. Two dense arrays, no record loads.
    const Tick cutoff = static_cast<Tick>(pages / 2);
    std::uint64_t sweep_matches = 0;
    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < pages; ++i) {
            const PageMeta &page = *dir[i];
            if (arena.location(page) == PageLocation::Resident &&
                arena.lastAccess(page) < cutoff)
                ++sweep_matches;
        }
        c_coldSweep.add(pages);
    }
    report.rates.emplace_back(
        "opsPerSec.coldSweep",
        rate(rounds * pages,
             std::chrono::steady_clock::now() - start));
    report.totals.emplace_back("coldSweepMatches", sweep_matches);

    // Decay walk: the beginRelaunch demotion — rewrite the level of
    // every third page (the hot ones), then restore. Write bandwidth
    // into one SoA array.
    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        const Hotness to =
            (r % 2 == 0) ? Hotness::Warm : Hotness::Hot;
        for (std::size_t i = 0; i < pages; i += 3) {
            arena.setLevel(*dir[i], to);
            c_decay.add();
        }
    }
    report.rates.emplace_back(
        "opsPerSec.decay",
        rate(rounds * ((pages + 2) / 3),
             std::chrono::steady_clock::now() - start));

    // Reset + refill: the fleet worker's between-sessions cycle. The
    // slabs and SoA arrays are retained, so this measures pure record
    // re-initialization, not allocation.
    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        arena.reset();
        populate();
        c_refill.add(pages);
    }
    report.rates.emplace_back(
        "opsPerSec.resetRefill",
        rate(rounds * pages,
             std::chrono::steady_clock::now() - start));
    report.totals.emplace_back("slabCount", arena.slabCount());

    std::chrono::duration<double> total_wall =
        std::chrono::steady_clock::now() - total_start;
    report.wallSeconds = total_wall.count();
    report.peakRssBytes = telemetry::currentPeakRssBytes();
    report.telemetry = telemetry::Registry::global().snapshot();

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "perf_scan: cannot write " << out_path << "\n";
        return 1;
    }
    report.writeJson(out);
    for (const auto &[name, value] : report.rates)
        std::cerr << "perf_scan: " << name << " " << value << "\n";
    std::cerr << "perf_scan: report " << out_path << "\n";
    return 0;
}
