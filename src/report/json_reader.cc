#include "report/json_reader.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace ariadne::report
{

namespace
{

[[noreturn]] void
typeError(const char *expected, JsonValue::Type got)
{
    const char *name = "null";
    switch (got) {
      case JsonValue::Type::Null: name = "null"; break;
      case JsonValue::Type::Bool: name = "bool"; break;
      case JsonValue::Type::Number: name = "number"; break;
      case JsonValue::Type::String: name = "string"; break;
      case JsonValue::Type::Object: name = "object"; break;
      case JsonValue::Type::Array: name = "array"; break;
    }
    throw JsonError(std::string("expected ") + expected + ", got " +
                    name);
}

} // namespace

/** Recursive-descent parser over an in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue(0);
        skipWs();
        if (pos != text.size())
            fail("trailing characters after the document");
        return v;
    }

  private:
    /** Nesting cap: corrupt input must error, not smash the stack. */
    static constexpr std::size_t maxDepth = 200;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw JsonError("JSON error at byte " + std::to_string(pos) +
                        ": " + msg);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    JsonValue
    parseValue(std::size_t depth)
    {
        if (depth > maxDepth)
            fail("nesting too deep");
        skipWs();
        char c = peek();
        JsonValue v;
        if (c == '{') {
            v.type = JsonValue::Type::Object;
            ++pos;
            skipWs();
            if (peek() == '}') {
                ++pos;
                return v;
            }
            for (;;) {
                skipWs();
                if (peek() != '"')
                    fail("expected a string object key");
                std::string key = parseString();
                skipWs();
                expect(':');
                v.members.emplace_back(std::move(key),
                                       parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            v.type = JsonValue::Type::Array;
            ++pos;
            skipWs();
            if (peek() == ']') {
                ++pos;
                return v;
            }
            for (;;) {
                v.elements.push_back(parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            v.stringValue = parseString();
            return v;
        }
        if (consumeWord("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolValue = true;
            return v;
        }
        if (consumeWord("false")) {
            v.type = JsonValue::Type::Bool;
            v.boolValue = false;
            return v;
        }
        if (consumeWord("null"))
            return v;
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        fail(std::string("unexpected character '") + c + "'");
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a \uXXXX low surrogate must
                    // follow to form one code point.
                    if (pos + 1 >= text.size() || text[pos] != '\\' ||
                        text[pos + 1] != 'u')
                        fail("high surrogate without a low surrogate");
                    pos += 2;
                    unsigned low = parseHex4();
                    if (low < 0xDC00 || low > 0xDFFF)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("stray low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail(std::string("invalid escape '\\") + esc + "'");
            }
        }
    }

    unsigned
    parseHex4()
    {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos >= text.size())
                fail("unterminated \\u escape");
            char c = text[pos++];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return value;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        auto digits = [&] {
            std::size_t before = pos;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
            if (pos == before)
                fail("malformed number");
        };
        digits();
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            digits();
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            digits();
        }
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.numberText = text.substr(start, pos - start);
        // strtod is correctly rounded, so shortest-round-trip tokens
        // (JsonWriter::formatDouble) come back bit-identical.
        v.numberValue = std::strtod(v.numberText.c_str(), nullptr);
        return v;
    }

    const std::string &text;
    std::size_t pos = 0;
};

bool
JsonValue::asBool() const
{
    if (type != Type::Bool)
        typeError("bool", type);
    return boolValue;
}

double
JsonValue::asDouble() const
{
    if (type != Type::Number)
        typeError("number", type);
    return numberValue;
}

std::uint64_t
JsonValue::asU64() const
{
    if (type != Type::Number)
        typeError("number", type);
    const std::string &t = numberText;
    if (t.empty() || t[0] == '-' ||
        t.find_first_not_of("0123456789") != std::string::npos)
        throw JsonError("expected a non-negative integer, got '" + t +
                        "'");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (errno != 0 || end != t.c_str() + t.size())
        throw JsonError("integer out of range: '" + t + "'");
    return v;
}

const std::string &
JsonValue::asString() const
{
    if (type != Type::String)
        typeError("string", type);
    return stringValue;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (type != Type::Array)
        typeError("array", type);
    return elements;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::asObject() const
{
    if (type != Type::Object)
        typeError("object", type);
    return members;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        typeError("object", type);
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw JsonError("missing key '" + key + "'");
    return *v;
}

JsonValue
JsonValue::parseText(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace ariadne::report
