/**
 * @file
 * Unit tests for the flight-recorder telemetry kinds: sampled gauges,
 * log2 histograms with per-app breakdowns, the timeline recorder and
 * the sampled page-journey log — plus fleet-level proofs that gauge
 * and histogram snapshots merge across shards to exactly the
 * unsharded totals and are invariant to the worker-thread count.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "driver/fleet_runner.hh"
#include "telemetry/bench_report.hh"
#include "telemetry/journey.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeline.hh"

using namespace ariadne;
using namespace ariadne::driver;
using telemetry::AppHistogram;
using telemetry::Gauge;

using telemetry::JourneyLog;
using telemetry::JourneyStep;
using telemetry::Registry;
using telemetry::TimelineGauge;
using telemetry::TimelineRecorder;

namespace
{

/** Every test starts from zeroed shards and empty ring buffers. */
class FlightTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::setEnabled(true);
        Registry::global().reset();
        TimelineRecorder::global().clear();
        JourneyLog::global().clear();
        telemetry::beginSession(0);
    }

    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::setTimelineEnabled(false);
        telemetry::setJourneyEnabled(false);
        Registry::global().reset();
        TimelineRecorder::global().clear();
        JourneyLog::global().clear();
    }
};

} // namespace

TEST_F(FlightTest, GaugeSummarizesCountSumMinMax)
{
    Gauge g("test.gauge");
    g.sample(30);
    g.sample(10);
    g.sample(20);
    auto v = Registry::global().snapshot().gauge("test.gauge");
    EXPECT_EQ(v.count, 3u);
    EXPECT_EQ(v.sum, 60u);
    EXPECT_EQ(v.min, 10u);
    EXPECT_EQ(v.max, 30u);
    EXPECT_DOUBLE_EQ(v.mean(), 20.0);
}

TEST_F(FlightTest, DisabledGaugeRecordsNothing)
{
    Gauge g("test.gauge.off");
    telemetry::setEnabled(false);
    g.sample(99);
    EXPECT_EQ(
        Registry::global().snapshot().gauge("test.gauge.off").count,
        0u);
}

TEST_F(FlightTest, GaugeZeroSampleIsValid)
{
    // A sampled value of 0 must set min/max, not read as "empty".
    Gauge g("test.gauge.zero");
    g.sample(0);
    g.sample(5);
    auto v = Registry::global().snapshot().gauge("test.gauge.zero");
    EXPECT_EQ(v.count, 2u);
    EXPECT_EQ(v.min, 0u);
    EXPECT_EQ(v.max, 5u);
}

TEST_F(FlightTest, HistogramBucketsByBitWidth)
{
    telemetry::Histogram h("test.hist");
    h.record(0);   // bucket 0
    h.record(1);   // bucket 1
    h.record(2);   // bucket 2
    h.record(3);   // bucket 2
    h.record(4);   // bucket 3
    h.record(7);   // bucket 3
    h.record(~std::uint64_t{0}); // saturates to the top bucket
    auto v = Registry::global().snapshot().histogram("test.hist");
    EXPECT_EQ(v.buckets[0], 1u);
    EXPECT_EQ(v.buckets[1], 1u);
    EXPECT_EQ(v.buckets[2], 2u);
    EXPECT_EQ(v.buckets[3], 2u);
    EXPECT_EQ(v.buckets[Registry::histogramBuckets - 1], 1u);
    EXPECT_EQ(v.count(), 7u);
}

TEST_F(FlightTest, GaugeAndHistogramMerge)
{
    Gauge g("test.m.gauge");
    telemetry::Histogram h("test.m.hist");

    g.sample(10);
    h.record(4);
    auto s1 = Registry::global().snapshot();
    Registry::global().reset();

    g.sample(50);
    h.record(4);
    h.record(100);
    auto s2 = Registry::global().snapshot();
    Registry::global().reset();

    auto merged = s1;
    merged.merge(s2);
    auto gv = merged.gauge("test.m.gauge");
    EXPECT_EQ(gv.count, 2u);
    EXPECT_EQ(gv.sum, 60u);
    EXPECT_EQ(gv.min, 10u);
    EXPECT_EQ(gv.max, 50u);
    auto hv = merged.histogram("test.m.hist");
    EXPECT_EQ(hv.buckets[3], 2u);
    EXPECT_EQ(hv.buckets[7], 1u);
    EXPECT_EQ(hv.sum, 108u);

    // Merging an empty-gauge snapshot must not clamp min to 0.
    auto s3 = Registry::global().snapshot();
    merged.merge(s3);
    EXPECT_EQ(merged.gauge("test.m.gauge").min, 10u);
}

TEST_F(FlightTest, AppHistogramLabelsLeadingUids)
{
    AppHistogram h("test.app.lat");
    h.record(0, 8);
    h.record(1, 16);
    h.record(200, 32); // beyond maxLabeledApps: aggregate only
    auto snap = Registry::global().snapshot();
    EXPECT_EQ(snap.histogram("test.app.lat").count(), 3u);
    EXPECT_EQ(snap.histogram("test.app.lat").sum, 56u);
    EXPECT_EQ(snap.histogram("test.app.lat.app0").count(), 1u);
    EXPECT_EQ(snap.histogram("test.app.lat.app0").sum, 8u);
    EXPECT_EQ(snap.histogram("test.app.lat.app1").sum, 16u);
    EXPECT_EQ(snap.histogram("test.app.lat.app200").count(), 0u);
}

TEST_F(FlightTest, SnapshotVectorsAreSortedByName)
{
    Gauge gz("test.z.gauge");
    Gauge ga("test.a.gauge");
    telemetry::Histogram hz("test.z.hist");
    telemetry::Histogram ha("test.a.hist");
    gz.sample(1);
    ga.sample(1);
    hz.record(1);
    ha.record(1);
    auto snap = Registry::global().snapshot();
    for (std::size_t i = 1; i < snap.gauges.size(); ++i)
        EXPECT_LT(snap.gauges[i - 1].name, snap.gauges[i].name);
    for (std::size_t i = 1; i < snap.histograms.size(); ++i)
        EXPECT_LT(snap.histograms[i - 1].name,
                  snap.histograms[i].name);
}

TEST_F(FlightTest, MetricsJsonCarriesGaugesAndHistograms)
{
    Gauge g("test.json.gauge");
    telemetry::Histogram h("test.json.hist");
    g.sample(42);
    h.record(42);
    std::ostringstream os;
    telemetry::writeMetricsJson(os, telemetry::RunMeta::current(),
                                Registry::global().snapshot());
    std::string doc = os.str();
    EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
    EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.json.gauge\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.json.hist\""), std::string::npos);
}

TEST_F(FlightTest, TimelineRecorderSortsAcrossSessions)
{
    telemetry::setTimelineEnabled(true);
    TimelineRecorder &rec = TimelineRecorder::global();
    std::uint32_t a = rec.seriesId("test.tl.a");
    std::uint32_t b = rec.seriesId("test.tl.b");
    telemetry::beginSession(1);
    rec.record(b, 2000, 7);
    rec.record(a, 1000, 5);
    telemetry::beginSession(0);
    rec.record(a, 3000, 9);
    auto pts = rec.points();
    ASSERT_EQ(pts.size(), 3u);
    // Canonical order: (series name, session, time).
    EXPECT_EQ(pts[0].session, 0u);
    EXPECT_EQ(pts[0].tNs, 3000u);
    EXPECT_EQ(pts[1].session, 1u);
    EXPECT_EQ(pts[1].tNs, 1000u);
    EXPECT_EQ(pts[2].value, 7u);
}

TEST_F(FlightTest, TimelineGaugeFeedsBothSinks)
{
    telemetry::setTimelineEnabled(true);
    TimelineGauge g("test.tl.dual");
    g.sample(500, 33);
    EXPECT_EQ(Registry::global().snapshot().gauge("test.tl.dual").sum,
              33u);
    ASSERT_EQ(TimelineRecorder::global().points().size(), 1u);

    // Timeline off: the Registry summary still accumulates, the
    // series does not grow.
    telemetry::setTimelineEnabled(false);
    TimelineRecorder::global().clear();
    g.sample(600, 44);
    EXPECT_EQ(
        Registry::global().snapshot().gauge("test.tl.dual").count,
        2u);
    EXPECT_TRUE(TimelineRecorder::global().points().empty());
}

TEST_F(FlightTest, TimelineJsonHasSchemaAndSeries)
{
    telemetry::setTimelineEnabled(true);
    TimelineGauge g("test.tl.json");
    telemetry::beginSession(2);
    g.sample(1'000'000, 11);
    std::ostringstream os;
    telemetry::writeTimelineJson(os, telemetry::RunMeta::current(),
                                 250);
    std::string doc = os.str();
    EXPECT_NE(doc.find("\"ariadneTimeline\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"intervalMs\": 250"), std::string::npos);
    EXPECT_NE(doc.find("\"test.tl.json\""), std::string::npos);
    EXPECT_NE(doc.find("\"session\": 2"), std::string::npos);
}

TEST_F(FlightTest, JourneySamplingIsDeterministicInPageKey)
{
    telemetry::setJourneyEnabled(true, 64);
    bool first = telemetry::journeySampled(3, 1234);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(telemetry::journeySampled(3, 1234), first);
    // Stride 1 samples every page.
    telemetry::setJourneyEnabled(true, 1);
    EXPECT_TRUE(telemetry::journeySampled(7, 99999));
}

TEST_F(FlightTest, JourneyLogGroupsAndOrdersEvents)
{
    telemetry::setJourneyEnabled(true, 1);
    telemetry::beginSession(0);
    telemetry::journeyMark(1, 10, JourneyStep::Alloc, 100);
    telemetry::journeyMark(1, 10, JourneyStep::Cold, 100);
    telemetry::journeyMark(0, 20, JourneyStep::Alloc, 50);
    telemetry::journeyMark(1, 10, JourneyStep::Zram, 300, 2048);
    auto evs = JourneyLog::global().events();
    ASSERT_EQ(evs.size(), 4u);
    // Sorted by (session, uid, pfn, time, issue order).
    EXPECT_EQ(evs[0].uid, 0u);
    EXPECT_EQ(evs[1].step, JourneyStep::Alloc);
    EXPECT_EQ(evs[2].step, JourneyStep::Cold);
    EXPECT_EQ(evs[3].step, JourneyStep::Zram);
    EXPECT_EQ(evs[3].detail, 2048u);
}

TEST_F(FlightTest, JourneyMarkIsGatedByEnable)
{
    telemetry::setJourneyEnabled(false);
    telemetry::journeyMark(1, 10, JourneyStep::Alloc, 100);
    EXPECT_TRUE(JourneyLog::global().events().empty());
}

TEST_F(FlightTest, JourneysJsonGroupsPerPage)
{
    telemetry::setJourneyEnabled(true, 1);
    telemetry::beginSession(0);
    telemetry::journeyMark(4, 77, JourneyStep::Alloc, 1'000'000);
    telemetry::journeyMark(4, 77, JourneyStep::Zram, 2'000'000, 512);
    std::ostringstream os;
    telemetry::writeJourneysJson(os, telemetry::RunMeta::current(),
                                 1);
    std::string doc = os.str();
    EXPECT_NE(doc.find("\"ariadneJourneys\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"sampleEvery\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"pfn\": 77"), std::string::npos);
    EXPECT_NE(doc.find("\"step\": \"zram\""), std::string::npos);
    EXPECT_NE(doc.find("\"detail\": 512"), std::string::npos);
}

// ---------------------------------------------------------------------
// Fleet-level invariance: gauges and histograms are fed *simulated*
// values at simulated times, so their merged totals are functions of
// (spec, seed) — invariant across shard splits and thread counts.
// Compressor cache/memo rates depend on which worker ran which
// session (caches are shared within a worker), so the `compressor.`
// namespace is exempt, exactly as it is in perf-gate comparisons.
// ---------------------------------------------------------------------

namespace
{

ScenarioSpec
smallSpec()
{
    return ScenarioSpec::parseString(R"(
name = test-flight
scheme = ariadne
ariadne = EHL-1K-2K-16K
scale = 0.0625
seed = 11
fleet = 4
event = warmup
event = repeat 6
event =   switch_next 200ms 100ms
event = end
)");
}

bool
isVolatileName(const std::string &name)
{
    return name.rfind("compressor.", 0) == 0;
}

void
expectStableKindsEqual(const Registry::Snapshot &a,
                       const Registry::Snapshot &b)
{
    for (const auto &g : a.gauges) {
        if (isVolatileName(g.name))
            continue;
        auto o = b.gauge(g.name);
        EXPECT_EQ(g.count, o.count) << g.name;
        EXPECT_EQ(g.sum, o.sum) << g.name;
        if (g.count > 0) {
            EXPECT_EQ(g.min, o.min) << g.name;
            EXPECT_EQ(g.max, o.max) << g.name;
        }
    }
    for (const auto &h : a.histograms) {
        if (isVolatileName(h.name))
            continue;
        auto o = b.histogram(h.name);
        EXPECT_EQ(h.sum, o.sum) << h.name;
        EXPECT_EQ(h.buckets, o.buckets) << h.name;
    }
}

Registry::Snapshot
snapshotOfFleetRun(unsigned threads)
{
    Registry::global().reset();
    FleetRunner runner(smallSpec());
    runner.run(0, threads);
    return Registry::global().snapshot();
}

Registry::Snapshot
snapshotOfShard(const char *shard)
{
    Registry::global().reset();
    FleetRunner runner(smallSpec());
    runner.runShard(report::ShardPlan::parse(shard));
    return Registry::global().snapshot();
}

} // namespace

TEST_F(FlightTest, MergedShardSnapshotsEqualUnsharded)
{
    auto whole = snapshotOfFleetRun(1);
    ASSERT_FALSE(whole.gauges.empty());
    ASSERT_FALSE(whole.histograms.empty());

    auto s1 = snapshotOfShard("1/2");
    auto s2 = snapshotOfShard("2/2");
    auto merged = s1;
    merged.merge(s2);

    expectStableKindsEqual(whole, merged);
    expectStableKindsEqual(merged, whole);
}

TEST_F(FlightTest, GaugesAndHistogramsAreThreadInvariant)
{
    auto one = snapshotOfFleetRun(1);
    auto three = snapshotOfFleetRun(3);
    ASSERT_GT(one.histogram("swap.compress_ns").count(), 0u);
    ASSERT_GT(one.gauge("mem.free_pages").count, 0u);
    expectStableKindsEqual(one, three);
    expectStableKindsEqual(three, one);
}
