/**
 * @file
 * Status-message helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (aborts); fatal() is for
 * user errors such as bad configuration (exits); warn()/inform() print
 * diagnostics without stopping the simulation.
 */

#ifndef ARIADNE_SIM_LOG_HH
#define ARIADNE_SIM_LOG_HH

#include <sstream>
#include <string>

namespace ariadne
{

/** Verbosity levels for non-fatal messages. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Global log verbosity; defaults to Warn. */
LogLevel logLevel();

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

/**
 * Abort with a message; call for conditions that indicate a simulator
 * bug, never a user mistake.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error message; call for conditions caused by invalid
 * user input or configuration.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning if verbosity allows. */
void warn(const std::string &msg);

/** Print an informational message if verbosity allows. */
void inform(const std::string &msg);

/** Print a debug message if verbosity allows. */
void debug(const std::string &msg);

/**
 * Abort via panic() if @p cond is false. Unlike assert(), stays active
 * in release builds; use for cheap invariants on hot paths sparingly.
 */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** Literal-message overload: hot-path callers pass string literals,
 * and this keeps the std::string construction (a heap allocation for
 * messages past the SSO limit) inside the failure branch. */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond)
        panic(msg);
}

/** Exit via fatal() if @p cond is true. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

inline void
fatalIf(bool cond, const char *msg)
{
    if (cond)
        fatal(msg);
}

} // namespace ariadne

#endif // ARIADNE_SIM_LOG_HH
