#include "telemetry/timeline.hh"

#include <algorithm>

namespace ariadne::telemetry
{

namespace detail
{
std::atomic<bool> g_timelineEnabled{false};

namespace
{
thread_local std::uint32_t t_sessionIndex = 0;
} // namespace
} // namespace detail

void
setTimelineEnabled(bool on) noexcept
{
    detail::g_timelineEnabled.store(on, std::memory_order_relaxed);
}

void
beginSession(std::uint32_t index) noexcept
{
    detail::t_sessionIndex = index;
}

std::uint32_t
currentSession() noexcept
{
    return detail::t_sessionIndex;
}

TimelineRecorder &
TimelineRecorder::global()
{
    static TimelineRecorder instance;
    return instance;
}

std::uint32_t
TimelineRecorder::seriesId(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t i = 0; i < names.size(); ++i)
        if (names[i] == name)
            return static_cast<std::uint32_t>(i);
    names.push_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
}

TimelineRecorder::Buffer &
TimelineRecorder::attachBuffer()
{
    std::lock_guard<std::mutex> lk(mu);
    buffers.push_back(std::make_unique<Buffer>());
    return *buffers.back();
}

TimelineRecorder::Buffer &
TimelineRecorder::bufferForThisThread()
{
    thread_local Buffer *t_buffer = nullptr;
    if (!t_buffer)
        t_buffer = &attachBuffer();
    return *t_buffer;
}

void
TimelineRecorder::record(std::uint32_t series, std::uint64_t t_ns,
                         std::uint64_t value) noexcept
{
    Buffer &b = bufferForThisThread();
    if (b.points.size() >= pointCap) {
        ++b.dropped;
        return;
    }
    b.points.push_back(
        Point{series, detail::t_sessionIndex, t_ns, value});
}

std::vector<std::string>
TimelineRecorder::seriesNames() const
{
    std::lock_guard<std::mutex> lk(mu);
    return names;
}

std::vector<TimelineRecorder::Point>
TimelineRecorder::points() const
{
    std::vector<Point> all;
    std::lock_guard<std::mutex> lk(mu);
    for (const auto &b : buffers)
        all.insert(all.end(), b->points.begin(), b->points.end());
    std::sort(all.begin(), all.end(),
              [this](const Point &a, const Point &b) {
                  if (a.series != b.series)
                      return names[a.series] < names[b.series];
                  if (a.session != b.session)
                      return a.session < b.session;
                  if (a.tNs != b.tNs)
                      return a.tNs < b.tNs;
                  return a.value < b.value;
              });
    return all;
}

std::uint64_t
TimelineRecorder::droppedPoints() const
{
    std::lock_guard<std::mutex> lk(mu);
    std::uint64_t total = 0;
    for (const auto &b : buffers)
        total += b->dropped;
    return total;
}

void
TimelineRecorder::clear()
{
    std::lock_guard<std::mutex> lk(mu);
    for (const auto &b : buffers) {
        b->points.clear();
        b->dropped = 0;
    }
}

TimelineGauge::TimelineGauge(const char *name)
    : base(Registry::global().gaugeSlot(name)),
      series(TimelineRecorder::global().seriesId(name))
{
}

} // namespace ariadne::telemetry
