#include "driver/scenario_spec.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "core/config.hh"
#include "driver/json_writer.hh"
#include "sim/rng.hh"
#include "swap/scheme_registry.hh"
#include "sys/session.hh"
#include "workload/apps.hh"

namespace ariadne::driver
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::vector<std::string>
splitWs(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

[[noreturn]] void
bad(std::size_t line, const std::string &msg)
{
    throw SpecError("scenario config line " + std::to_string(line) +
                    ": " + msg);
}

std::uint64_t
parseU64(const std::string &text, std::size_t line,
         const std::string &what)
{
    if (text.empty() ||
        !std::all_of(text.begin(), text.end(), [](unsigned char c) {
            return std::isdigit(c);
        }))
        bad(line, "invalid " + what + " '" + text + "'");
    try {
        return std::stoull(text);
    } catch (const std::out_of_range &) {
        bad(line, what + " out of range: '" + text + "'");
    }
}

double
parseDouble(const std::string &text, std::size_t line,
            const std::string &what)
{
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size())
        bad(line, "invalid " + what + " '" + text + "'");
    return v;
}

bool
parseBool(const std::string &text, std::size_t line,
          const std::string &what)
{
    std::string t;
    for (char c : text)
        t += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (t == "true" || t == "on" || t == "1")
        return true;
    if (t == "false" || t == "off" || t == "0")
        return false;
    bad(line, "invalid " + what + " '" + text + "' (true|false)");
}

/**
 * Validate an Ariadne config string before storing it in the spec,
 * using the same grammar AriadneConfig::parse enforces (but raising
 * SpecError instead of exiting — parse's fatal() is acceptable for
 * internal misuse, not for user config files).
 */
void
validateAriadneConfig(const std::string &text, std::size_t line)
{
    std::string error;
    if (!AriadneConfig::tryParse(text, &error).has_value())
        bad(line, error);
}

/** Names of the standard app profiles, for validation. */
std::vector<std::string>
standardAppNames()
{
    std::vector<std::string> names;
    for (const auto &p : standardApps())
        names.push_back(p.name);
    return names;
}

void
requireKnownApp(const std::string &name,
                const std::vector<std::string> &known, std::size_t line)
{
    if (std::find(known.begin(), known.end(), name) == known.end())
        bad(line, "unknown app '" + name + "'");
}

void
eventToString(std::ostream &os, const Event &ev, unsigned depth)
{
    os << "event = " << std::string(depth * 2, ' ');
    switch (ev.kind) {
      case Event::Kind::Launch:
        os << "launch " << ev.app;
        break;
      case Event::Kind::Execute:
        os << "execute " << ev.app << " " << formatDuration(ev.duration);
        break;
      case Event::Kind::Background:
        os << "background " << ev.app;
        break;
      case Event::Kind::Relaunch:
        os << "relaunch " << ev.app;
        break;
      case Event::Kind::Idle:
        os << "idle " << formatDuration(ev.duration);
        break;
      case Event::Kind::Warmup:
        os << "warmup";
        break;
      case Event::Kind::SwitchNext:
        os << "switch_next " << formatDuration(ev.duration) << " "
           << formatDuration(ev.gap);
        break;
      case Event::Kind::TargetScenario:
        os << "target_scenario " << ev.app << " " << ev.variant;
        break;
      case Event::Kind::PrepareTarget:
        os << "prepare_target " << ev.app << " " << ev.variant;
        break;
      case Event::Kind::LightUsage:
        os << "light_usage " << formatDuration(ev.duration) << " "
           << formatDuration(ev.gap);
        break;
      case Event::Kind::HeavyUsage:
        os << "heavy_usage " << formatDuration(ev.duration);
        break;
      case Event::Kind::Custom:
        // No config syntax; the rendered form is informational and
        // deliberately rejected by the parser.
        os << "custom " << ev.hook;
        break;
      case Event::Kind::Repeat:
        os << "repeat " << ev.count << "\n";
        for (const auto &sub : ev.body)
            eventToString(os, sub, depth + 1);
        os << "event = " << std::string(depth * 2, ' ') << "end";
        break;
    }
    os << "\n";
}

} // namespace

Event
Event::launch(std::string app)
{
    Event ev;
    ev.kind = Kind::Launch;
    ev.app = std::move(app);
    return ev;
}

Event
Event::execute(std::string app, Tick duration)
{
    Event ev;
    ev.kind = Kind::Execute;
    ev.app = std::move(app);
    ev.duration = duration;
    return ev;
}

Event
Event::background(std::string app)
{
    Event ev;
    ev.kind = Kind::Background;
    ev.app = std::move(app);
    return ev;
}

Event
Event::relaunch(std::string app)
{
    Event ev;
    ev.kind = Kind::Relaunch;
    ev.app = std::move(app);
    return ev;
}

Event
Event::idle(Tick duration)
{
    Event ev;
    ev.kind = Kind::Idle;
    ev.duration = duration;
    return ev;
}

Event
Event::warmup()
{
    Event ev;
    ev.kind = Kind::Warmup;
    return ev;
}

Event
Event::switchNext(Tick use, Tick gap)
{
    Event ev;
    ev.kind = Kind::SwitchNext;
    ev.duration = use;
    ev.gap = gap;
    return ev;
}

Event
Event::targetScenario(std::string app, unsigned variant)
{
    Event ev;
    ev.kind = Kind::TargetScenario;
    ev.app = std::move(app);
    ev.variant = variant;
    return ev;
}

Event
Event::prepareTarget(std::string app, unsigned variant)
{
    Event ev;
    ev.kind = Kind::PrepareTarget;
    ev.app = std::move(app);
    ev.variant = variant;
    return ev;
}

Event
Event::lightUsage(Tick duration, Tick gap)
{
    Event ev;
    ev.kind = Kind::LightUsage;
    ev.duration = duration;
    ev.gap = gap;
    return ev;
}

Event
Event::heavyUsage(Tick duration)
{
    Event ev;
    ev.kind = Kind::HeavyUsage;
    ev.duration = duration;
    return ev;
}

Event
Event::repeat(std::size_t count, std::vector<Event> body)
{
    Event ev;
    ev.kind = Kind::Repeat;
    ev.count = count;
    ev.body = std::move(body);
    return ev;
}

Event
Event::custom(std::size_t hook_index)
{
    Event ev;
    ev.kind = Kind::Custom;
    ev.hook = hook_index;
    return ev;
}

bool
Event::operator==(const Event &o) const
{
    return kind == o.kind && app == o.app && duration == o.duration &&
           gap == o.gap && variant == o.variant && count == o.count &&
           hook == o.hook && body == o.body;
}

const char *
workloadKindName(WorkloadKind kind) noexcept
{
    switch (kind) {
      case WorkloadKind::Profiles: return "profiles";
      case WorkloadKind::Trace: return "trace";
      case WorkloadKind::Synthetic: return "synthetic";
      default: return "unknown";
    }
}

WorkloadKind
parseWorkloadKind(const std::string &text)
{
    std::string t = lower(text);
    if (t == "profiles")
        return WorkloadKind::Profiles;
    if (t == "trace")
        return WorkloadKind::Trace;
    if (t == "synthetic")
        return WorkloadKind::Synthetic;
    throw SpecError("unknown workload '" + text +
                    "' (profiles|trace|synthetic)");
}

std::string
parseSchemeName(const std::string &text)
{
    std::string t = lower(text);
    if (!SchemeRegistry::instance().find(t))
        throw SpecError("unknown scheme '" + text + "' (valid: " +
                        SchemeRegistry::instance().namesJoined() +
                        ")");
    return t;
}

Tick
parseDuration(const std::string &text)
{
    std::size_t digits = 0;
    while (digits < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[digits])))
        ++digits;
    if (digits == 0)
        throw SpecError("invalid duration '" + text + "'");
    std::uint64_t n;
    try {
        n = std::stoull(text.substr(0, digits));
    } catch (const std::out_of_range &) {
        throw SpecError("duration out of range: '" + text + "'");
    }
    std::string suffix = text.substr(digits);
    std::uint64_t mult;
    if (suffix.empty() || suffix == "ns")
        mult = 1;
    else if (suffix == "us")
        mult = 1000ULL;
    else if (suffix == "ms")
        mult = 1000000ULL;
    else if (suffix == "s")
        mult = 1000000000ULL;
    else
        throw SpecError("invalid duration suffix '" + suffix +
                        "' in '" + text + "' (ns|us|ms|s)");
    if (n > std::numeric_limits<Tick>::max() / mult)
        throw SpecError("duration out of range: '" + text + "'");
    return n * mult;
}

std::string
formatDuration(Tick t)
{
    if (t % 1000000000ULL == 0)
        return std::to_string(t / 1000000000ULL) + "s";
    if (t % 1000000ULL == 0)
        return std::to_string(t / 1000000ULL) + "ms";
    if (t % 1000ULL == 0)
        return std::to_string(t / 1000ULL) + "us";
    return std::to_string(t) + "ns";
}

std::uint64_t
ScenarioSpec::sessionSeed(std::size_t session_index) const noexcept
{
    // Session 0 runs the base seed itself, so a fleet of one exactly
    // reproduces a plain SystemConfig run with that seed (the legacy
    // single-device benches). Later sessions use a SplitMix-style
    // derivation that decorrelates neighbours; every seed depends only
    // on (base seed, index), never on scheduling, which is what makes
    // fleet aggregates thread-invariant.
    if (session_index == 0)
        return seed;
    return mix64(seed ^ mix64(0x5e551011ULL + session_index));
}

SystemConfig
ScenarioSpec::systemConfig(std::size_t session_index) const
{
    SystemConfig cfg;
    cfg.scale = scale;
    cfg.scheme = scheme;
    cfg.schemeParams = params;
    cfg.seed = sessionSeed(session_index);
    cfg.timelineIntervalMs = timelineIntervalMs;
    return cfg;
}

std::vector<AppProfile>
ScenarioSpec::appProfiles() const
{
    if (apps.empty())
        return standardApps();
    std::vector<AppProfile> profiles;
    for (const auto &name : apps)
        profiles.push_back(standardApp(name));
    return profiles;
}

std::string
ScenarioSpec::toString() const
{
    std::ostringstream os;
    os << "name = " << name << "\n";
    if (workload == WorkloadKind::Trace) {
        // A replay spec carries the trace reference plus (at most) a
        // what-if scheme override; everything else lives in the
        // scenario embedded in the trace.
        os << "workload = trace\n";
        os << "trace = " << tracePath << "\n";
        if (!replayScheme.empty())
            os << "scheme = " << replayScheme << "\n";
        for (const auto &[knob, value] : replayParams.entries())
            os << "scheme." << knob << " = " << value << "\n";
        return os.str();
    }
    os << "scheme = " << scheme << "\n";
    for (const auto &[knob, value] : params.entries())
        os << "scheme." << knob << " = " << value << "\n";
    os << "scale = " << JsonWriter::formatDouble(scale) << "\n";
    os << "seed = " << seed << "\n";
    os << "fleet = " << fleet << "\n";
    if (percentiles != PercentileMode::Exact) {
        // Sketch mode spells out its buffer size, so a round-trip
        // never depends on the struct's default.
        os << "percentiles = " << percentileModeName(percentiles)
           << "\n";
        os << "sketch_k = " << sketchK << "\n";
    }
    if (!compressMemo)
        os << "compress_memo = off\n";
    if (timelineIntervalMs != defaultTimelineIntervalMs)
        os << "timeline_interval_ms = " << timelineIntervalMs << "\n";
    if (journeySample != defaultJourneySample)
        os << "journey_sample = " << journeySample << "\n";
    if (!apps.empty()) {
        os << "apps = ";
        for (std::size_t i = 0; i < apps.size(); ++i)
            os << (i ? ", " : "") << apps[i];
        os << "\n";
    }
    if (workload == WorkloadKind::Synthetic) {
        // Canonical form spells out every population key, so a
        // round-trip never depends on the struct's defaults.
        os << "workload = synthetic\n";
        os << "population_apps_per_user = " << population.appsPerUser
           << "\n";
        os << "population_footprint_spread = "
           << JsonWriter::formatDouble(population.footprintSpread)
           << "\n";
        os << "population_light_share = "
           << JsonWriter::formatDouble(population.lightShare) << "\n";
        os << "population_heavy_share = "
           << JsonWriter::formatDouble(population.heavyShare) << "\n";
        os << "population_switches = " << population.switches << "\n";
        os << "population_use = " << formatDuration(population.useTime)
           << "\n";
        os << "population_gap = " << formatDuration(population.gap)
           << "\n";
        return os.str();
    }
    for (const auto &ev : program)
        eventToString(os, ev, 0);
    return os.str();
}

ScenarioSpec
ScenarioSpec::parseString(const std::string &text)
{
    std::istringstream in(text);
    return parse(in);
}

ScenarioSpec
ScenarioSpec::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw SpecError("cannot open scenario config: " + path);
    return parse(in);
}

/**
 * Parser state. Lives behind a pimpl so the header stays light; the
 * event stack holds pointers into spec.program's nested body vectors,
 * which is safe because only the innermost (stack top) vector ever
 * grows (see the repeat handling below).
 */
struct SpecParser::Impl
{
    ScenarioSpec spec;
    std::vector<std::string> knownApps = standardAppNames();
    /** Innermost target for parsed events; grows on `repeat`. */
    std::vector<std::vector<Event> *> stack{&spec.program};
    /** Line numbers of open repeat blocks, for the error message. */
    std::vector<std::size_t> repeatLines;
    /** App names referenced by events, validated in finish() so an
     * `apps = ...` line may follow the events that use it. */
    std::vector<std::pair<std::string, std::size_t>> referencedApps;
    /** First line each key appeared on; finish() uses it to diagnose
     * key/workload combinations independent of line order. */
    std::map<std::string, std::size_t> seenKeys;
    /** Last line each `scheme.<knob>` key appeared on; knob names and
     * value types are validated in finish() against the *final*
     * scheme, so a `scheme = ...` line may follow its knobs. */
    std::map<std::string, std::size_t> paramLines;
    /** Deprecated flat aliases (`ariadne`, `seed_profiles`, ...)
     * with their normalized values; merged into the params in
     * finish() when the final scheme has the knob, dropped otherwise
     * (the historically tolerated behaviour). */
    std::map<std::string, std::pair<std::string, std::size_t>>
        legacyParams;
    bool anyEvents = false;
    std::size_t firstEventLine = 0;

    void feed(const std::string &raw, std::size_t lineno);
    void validateScheme();
    void validateWorkload();
};

SpecParser::SpecParser() : impl(std::make_unique<Impl>()) {}
SpecParser::~SpecParser() = default;
SpecParser::SpecParser(SpecParser &&) noexcept = default;
SpecParser &SpecParser::operator=(SpecParser &&) noexcept = default;

void
SpecParser::feed(const std::string &raw_line, std::size_t lineno)
{
    impl->feed(raw_line, lineno);
}

bool
SpecParser::sawEvents() const noexcept
{
    return impl->anyEvents;
}

ScenarioSpec
SpecParser::finish()
{
    if (impl->stack.size() > 1)
        bad(impl->repeatLines.back(), "'repeat' block never closed");
    for (const auto &[name, line] : impl->referencedApps)
        requireKnownApp(name,
                        impl->spec.apps.empty() ? impl->knownApps
                                                : impl->spec.apps,
                        line);
    impl->validateWorkload();
    impl->validateScheme();
    return std::move(impl->spec);
}

/**
 * Resolve the scheme axis: merge the deprecated flat aliases into the
 * knob bag, then check every knob (name and value type) against the
 * final scheme's schema. Runs in finish() so `scheme = ...` may
 * appear after the knobs it governs (sweep variants rely on this when
 * they override the base scheme). For trace replays the knobs have
 * already moved to the what-if override (see validateWorkload); an
 * override with an explicit scheme is validated here, one that only
 * tweaks knobs of the recorded scheme is validated by the FleetRunner
 * once the recorded scheme is known.
 */
void
SpecParser::Impl::validateScheme()
{
    const SchemeRegistry &registry = SchemeRegistry::instance();
    bool is_trace = spec.workload == WorkloadKind::Trace;

    if (!is_trace) {
        const SchemeInfo &info = registry.at(spec.scheme);
        for (const auto &[knob, legacy] : legacyParams) {
            // Like every other key, the later line wins: an explicit
            // scheme.* knob beats an *earlier* alias, but an alias
            // following it overrides (sweep variants rely on this to
            // replace base settings whichever syntax either side
            // uses).
            auto explicit_line = paramLines.find(knob);
            if (explicit_line != paramLines.end() &&
                explicit_line->second > legacy.second)
                continue;
            bool known = std::any_of(info.knobs.begin(),
                                     info.knobs.end(),
                                     [&, k = knob](const SchemeKnob &s) {
                                         return s.name == k;
                                     });
            if (known) {
                spec.params.set(knob, legacy.first);
                paramLines[knob] = legacy.second;
            }
        }
    }

    const std::string &scheme_key =
        is_trace ? spec.replayScheme : spec.scheme;
    const SchemeParams &bag = is_trace ? spec.replayParams : spec.params;
    if (scheme_key.empty())
        return; // knob-only what-if override; FleetRunner validates
    for (const auto &[knob, value] : bag.entries()) {
        auto line_it = paramLines.find(knob);
        std::size_t line =
            line_it == paramLines.end() ? 0 : line_it->second;
        SchemeParams probe;
        probe.set(knob, value);
        try {
            registry.validate(scheme_key, probe);
        } catch (const SchemeError &e) {
            bad(line, e.what());
        }
    }
}

/**
 * Cross-key validation of the workload axis. Runs in finish() so the
 * `workload = ...` line may appear anywhere relative to the keys it
 * governs (sweep variants rely on this when they override the base
 * workload).
 */
void
SpecParser::Impl::validateWorkload()
{
    auto line_of = [&](const std::string &key) {
        auto it = seenKeys.find(key);
        return it == seenKeys.end() ? std::size_t{0} : it->second;
    };
    auto is_population_key = [](const std::string &key) {
        return key.rfind("population_", 0) == 0;
    };

    if (seenKeys.count("sketch_k") &&
        spec.percentiles != PercentileMode::Sketch)
        bad(line_of("sketch_k"),
            "'sketch_k' requires percentiles = sketch");

    if (spec.workload == WorkloadKind::Trace) {
        if (spec.tracePath.empty())
            bad(line_of("workload"),
                "workload = trace needs a 'trace = FILE' line");
        // A replay takes its workload identity — scale, seed, fleet,
        // apps, program — from the scenario recorded in the trace;
        // stray keys would be silently ignored, so reject them. The
        // scheme axis is the exception: `scheme` / `scheme.*` lines
        // form a what-if override that re-runs the recorded workload
        // under a different scheme.
        for (const auto &[key, line] : seenKeys)
            if (key != "name" && key != "workload" &&
                key != "trace" && key != "scheme" &&
                key.rfind("scheme.", 0) != 0)
                bad(line, "key '" + key + "' is not allowed with "
                          "workload = trace (the replay takes its "
                          "scale, seed, fleet, apps and program from "
                          "the recorded scenario; only 'name' and a "
                          "'scheme' what-if override may be set)");
        if (anyEvents)
            bad(firstEventLine,
                "event program is not allowed with workload = trace");
        // Relocate the scheme axis into the what-if override slots;
        // the spec's own scheme/params stay at their defaults so the
        // recorded scenario's axes are adopted untouched.
        if (seenKeys.count("scheme"))
            spec.replayScheme = spec.scheme;
        spec.replayParams = spec.params;
        spec.scheme = "zram";
        spec.params = SchemeParams{};
        return;
    }
    if (seenKeys.count("trace"))
        bad(line_of("trace"), "'trace' requires workload = trace");

    if (spec.workload == WorkloadKind::Synthetic) {
        if (anyEvents)
            bad(firstEventLine,
                "event program is not allowed with workload = "
                "synthetic (sessions generate their own programs from "
                "the population_* keys; note sweep variants inherit "
                "the base program unless they declare their own)");
        if (spec.population.lightShare + spec.population.heavyShare >
            1.0)
            throw SpecError(
                "scenario config: population_light_share + "
                "population_heavy_share must not exceed 1");
    } else {
        for (const auto &[key, line] : seenKeys)
            if (is_population_key(key))
                bad(line,
                    "'" + key + "' requires workload = synthetic");
    }
}

ConfigLine
lexConfigLine(const std::string &raw)
{
    ConfigLine out;
    std::string line = raw;
    if (auto hash = line.find('#'); hash != std::string::npos)
        line = line.substr(0, hash);
    out.text = trim(line);
    if (out.text.empty())
        return out;
    out.blank = false;
    auto eq = out.text.find('=');
    if (eq == std::string::npos)
        return out;
    out.hasEquals = true;
    out.key = trim(out.text.substr(0, eq));
    out.value = trim(out.text.substr(eq + 1));
    return out;
}

void
SpecParser::Impl::feed(const std::string &raw, std::size_t lineno)
{
    ScenarioSpec &spec = this->spec;

    ConfigLine lexed = lexConfigLine(raw);
    if (lexed.blank)
        return;
    if (!lexed.hasEquals)
        bad(lineno,
            "expected 'key = value', got '" + lexed.text + "'");
    const std::string &key = lexed.key;
    const std::string &value = lexed.value;
    if (key.empty())
        bad(lineno, "empty key");
    if (value.empty())
        bad(lineno, "empty value for key '" + key + "'");
    seenKeys.emplace(key, lineno);

    {
        if (key == "name") {
            spec.name = value;
        } else if (key == "scheme") {
            try {
                spec.scheme = parseSchemeName(value);
            } catch (const SpecError &e) {
                bad(lineno, e.what());
            }
        } else if (key.rfind("scheme.", 0) == 0) {
            std::string knob = key.substr(7);
            if (knob.empty())
                bad(lineno, "empty scheme knob name in '" + key + "'");
            // Knob names and value types are checked against the
            // final scheme's schema in finish(), so this line may
            // precede (or follow) the `scheme = ...` it configures.
            spec.params.set(knob, value);
            paramLines[knob] = lineno;
        } else if (key == "ariadne") {
            // Deprecated alias of `scheme.config`.
            validateAriadneConfig(value, lineno);
            legacyParams["config"] = {value, lineno};
        } else if (key == "scale") {
            char *end = nullptr;
            double v = std::strtod(value.c_str(), &end);
            if (end != value.c_str() + value.size() || !(v > 0.0) ||
                v > 1.0)
                bad(lineno,
                    "scale must be a number in (0, 1], got '" + value +
                        "'");
            spec.scale = v;
        } else if (key == "seed") {
            spec.seed = parseU64(value, lineno, "seed");
        } else if (key == "seed_profiles" || key == "predecomp") {
            // Deprecated aliases of the scheme.* knobs of the same
            // name; normalized so serialization stays canonical.
            bool v = parseBool(value, lineno, key);
            legacyParams[key] = {v ? "true" : "false", lineno};
        } else if (key == "hot_init_pages") {
            std::uint64_t v = parseU64(value, lineno, key);
            legacyParams[key] = {std::to_string(v), lineno};
        } else if (key == "fleet") {
            spec.fleet = parseU64(value, lineno, "fleet size");
            if (spec.fleet == 0)
                bad(lineno, "fleet size must be >= 1");
        } else if (key == "percentiles") {
            auto mode = parsePercentileModeName(value);
            if (!mode)
                bad(lineno, "unknown percentiles mode '" + value +
                                "' (exact|sketch)");
            spec.percentiles = *mode;
        } else if (key == "sketch_k") {
            std::uint64_t v = parseU64(value, lineno, "sketch_k");
            if (v < PercentileSketch::minK)
                bad(lineno, "sketch_k must be >= " +
                                std::to_string(PercentileSketch::minK) +
                                ", got '" + value + "'");
            spec.sketchK = v;
        } else if (key == "compress_memo") {
            std::string v = lower(value);
            if (v == "on")
                spec.compressMemo = true;
            else if (v == "off")
                spec.compressMemo = false;
            else
                bad(lineno, "compress_memo must be on|off, got '" +
                                value + "'");
        } else if (key == "timeline_interval_ms") {
            spec.timelineIntervalMs =
                parseU64(value, lineno, "timeline_interval_ms");
        } else if (key == "journey_sample") {
            std::uint64_t v =
                parseU64(value, lineno, "journey_sample");
            if (v < 1)
                bad(lineno,
                    "journey_sample must be >= 1, got '" + value +
                        "'");
            spec.journeySample = v;
        } else if (key == "apps") {
            // Like every other key, a later `apps` line overrides an
            // earlier one (sweep variants rely on this to replace the
            // base mix).
            if (lower(value) == "standard") {
                spec.apps.clear();
            } else {
                std::vector<std::string> list;
                std::string rest = value;
                while (!rest.empty()) {
                    std::string tok;
                    auto comma = rest.find(',');
                    if (comma == std::string::npos) {
                        tok = trim(rest);
                        rest.clear();
                    } else {
                        tok = trim(rest.substr(0, comma));
                        rest = rest.substr(comma + 1);
                    }
                    if (tok.empty())
                        bad(lineno, "empty app name in list");
                    requireKnownApp(tok, knownApps, lineno);
                    list.push_back(tok);
                }
                if (list.empty())
                    bad(lineno, "empty app list");
                spec.apps = std::move(list);
            }
        } else if (key == "workload") {
            try {
                spec.workload = parseWorkloadKind(value);
            } catch (const SpecError &e) {
                bad(lineno, e.what());
            }
        } else if (key == "trace") {
            spec.tracePath = value;
        } else if (key == "population_apps_per_user") {
            spec.population.appsPerUser =
                parseU64(value, lineno, "population_apps_per_user");
        } else if (key == "population_footprint_spread") {
            double v = parseDouble(value, lineno, key);
            // NaN-safe form: NaN fails every comparison, so demand
            // the in-range predicate rather than rejecting out-of-
            // range ones.
            if (!(v >= 0.0 && v < 1.0))
                bad(lineno, "population_footprint_spread must be in "
                            "[0, 1), got '" + value + "'");
            spec.population.footprintSpread = v;
        } else if (key == "population_light_share" ||
                   key == "population_heavy_share") {
            double v = parseDouble(value, lineno, key);
            if (!(v >= 0.0 && v <= 1.0))
                bad(lineno,
                    key + " must be in [0, 1], got '" + value + "'");
            if (key == "population_light_share")
                spec.population.lightShare = v;
            else
                spec.population.heavyShare = v;
        } else if (key == "population_switches") {
            spec.population.switches =
                parseU64(value, lineno, "population_switches");
        } else if (key == "population_use" ||
                   key == "population_gap") {
            Tick v = 0;
            try {
                v = parseDuration(value);
            } catch (const SpecError &e) {
                bad(lineno, e.what());
            }
            if (key == "population_use")
                spec.population.useTime = v;
            else
                spec.population.gap = v;
        } else if (key == "event") {
            anyEvents = true;
            if (firstEventLine == 0)
                firstEventLine = lineno;
            std::vector<std::string> tok = splitWs(value);
            const std::string &op = tok[0];
            auto expect_args = [&](std::size_t n) {
                if (tok.size() != n + 1)
                    bad(lineno, "op '" + op + "' takes " +
                                    std::to_string(n) +
                                    " argument(s), got " +
                                    std::to_string(tok.size() - 1));
            };
            auto parse_dur = [&](const std::string &text) -> Tick {
                try {
                    return parseDuration(text);
                } catch (const SpecError &e) {
                    bad(lineno, e.what());
                }
            };
            auto app_arg = [&](const std::string &name) {
                referencedApps.emplace_back(name, lineno);
                return name;
            };
            auto variant_arg = [&](const std::string &text) {
                auto variant = parseU64(text, lineno, "scenario variant");
                if (variant > std::numeric_limits<unsigned>::max())
                    bad(lineno, "scenario variant out of range: '" +
                                    text + "'");
                return static_cast<unsigned>(variant);
            };

            if (op == "launch") {
                expect_args(1);
                stack.back()->push_back(Event::launch(app_arg(tok[1])));
            } else if (op == "execute") {
                expect_args(2);
                stack.back()->push_back(
                    Event::execute(app_arg(tok[1]), parse_dur(tok[2])));
            } else if (op == "background") {
                expect_args(1);
                stack.back()->push_back(
                    Event::background(app_arg(tok[1])));
            } else if (op == "relaunch") {
                expect_args(1);
                stack.back()->push_back(
                    Event::relaunch(app_arg(tok[1])));
            } else if (op == "idle") {
                expect_args(1);
                stack.back()->push_back(Event::idle(parse_dur(tok[1])));
            } else if (op == "warmup") {
                expect_args(0);
                stack.back()->push_back(Event::warmup());
            } else if (op == "switch_next") {
                expect_args(2);
                stack.back()->push_back(Event::switchNext(
                    parse_dur(tok[1]), parse_dur(tok[2])));
            } else if (op == "target_scenario") {
                expect_args(2);
                stack.back()->push_back(Event::targetScenario(
                    app_arg(tok[1]), variant_arg(tok[2])));
            } else if (op == "prepare_target") {
                expect_args(2);
                stack.back()->push_back(Event::prepareTarget(
                    app_arg(tok[1]), variant_arg(tok[2])));
            } else if (op == "light_usage") {
                // Gap is optional: `light_usage 60s` uses the
                // driver's default intermission.
                if (tok.size() != 2 && tok.size() != 3)
                    bad(lineno, "op 'light_usage' takes 1 or 2 "
                                "argument(s), got " +
                                    std::to_string(tok.size() - 1));
                Tick gap = tok.size() == 3
                               ? parse_dur(tok[2])
                               : SessionDriver::lightUsageDefaultGap;
                stack.back()->push_back(
                    Event::lightUsage(parse_dur(tok[1]), gap));
            } else if (op == "heavy_usage") {
                expect_args(1);
                stack.back()->push_back(
                    Event::heavyUsage(parse_dur(tok[1])));
            } else if (op == "custom") {
                bad(lineno, "op 'custom' is programmatic-only (bench "
                            "hooks have no config syntax)");
            } else if (op == "repeat") {
                expect_args(1);
                auto count = parseU64(tok[1], lineno, "repeat count");
                if (count == 0)
                    bad(lineno, "repeat count must be >= 1");
                stack.back()->push_back(Event::repeat(count, {}));
                stack.push_back(&stack.back()->back().body);
                repeatLines.push_back(lineno);
            } else if (op == "end") {
                expect_args(0);
                if (stack.size() == 1)
                    bad(lineno, "'end' without a matching 'repeat'");
                stack.pop_back();
                repeatLines.pop_back();
            } else {
                bad(lineno, "unknown event op '" + op + "'");
            }
        } else {
            bad(lineno, "unknown key '" + key + "'");
        }
    }
}

ScenarioSpec
ScenarioSpec::parse(std::istream &in)
{
    SpecParser parser;
    std::string raw;
    std::size_t lineno = 0;
    while (std::getline(in, raw))
        parser.feed(raw, ++lineno);
    return parser.finish();
}

bool
ScenarioSpec::operator==(const ScenarioSpec &o) const
{
    return name == o.name && scheme == o.scheme &&
           params == o.params && scale == o.scale && seed == o.seed &&
           fleet == o.fleet && percentiles == o.percentiles &&
           sketchK == o.sketchK && compressMemo == o.compressMemo &&
           timelineIntervalMs == o.timelineIntervalMs &&
           journeySample == o.journeySample && apps == o.apps &&
           program == o.program && workload == o.workload &&
           tracePath == o.tracePath &&
           replayScheme == o.replayScheme &&
           replayParams == o.replayParams &&
           population == o.population;
}

} // namespace ariadne::driver
