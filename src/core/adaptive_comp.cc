#include "core/adaptive_comp.hh"

#include "sim/log.hh"

namespace ariadne
{

UnitId
AdaptiveComp::create(std::vector<PageMeta *> pages,
                     std::size_t chunk_bytes, std::size_t csize,
                     Hotness level, ZObjectId object)
{
    panicIf(pages.empty(), "compression unit with no pages");
    UnitId id;
    if (!freeIds.empty()) {
        id = freeIds.back();
        freeIds.pop_back();
    } else {
        units.emplace_back();
        id = units.size() - 1;
    }
    CompUnit &u = units[id];
    u.pages = std::move(pages);
    u.chunkBytes = chunk_bytes;
    u.csize = csize;
    u.levelAtCompression = level;
    u.object = object;
    u.flashSlot = invalidFlashSlot;
    u.liveFlag = true;
    ++liveUnits;

    for (std::size_t i = 0; i < u.pages.size(); ++i) {
        u.pages[i]->objectId = id;
        u.pages[i]->objectSlot = static_cast<std::uint32_t>(i);
    }
    return id;
}

CompUnit &
AdaptiveComp::unit(UnitId id)
{
    panicIf(!live(id), "access to dead compression unit");
    return units[id];
}

const CompUnit &
AdaptiveComp::unit(UnitId id) const
{
    panicIf(!live(id), "access to dead compression unit");
    return units[id];
}

bool
AdaptiveComp::live(UnitId id) const noexcept
{
    return id < units.size() && units[id].liveFlag;
}

void
AdaptiveComp::destroy(UnitId id)
{
    CompUnit &u = unit(id);
    u.liveFlag = false;
    u.pages.clear();
    u.object = invalidObject;
    u.flashSlot = invalidFlashSlot;
    freeIds.push_back(id);
    --liveUnits;
}

} // namespace ariadne
