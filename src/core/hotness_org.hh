/**
 * @file
 * HotnessOrg — low-overhead hotness-aware data organization (§4.2).
 *
 * Keeps three LRU lists (hot / warm / cold) per application instead
 * of the kernel's two, plus an LRU order across applications:
 *
 *  - hotness initialization: the first profile-sized batch of pages
 *    admitted during a launch joins the hot list; later allocations
 *    join the cold list;
 *  - promotion: cold pages touched during execution move to warm
 *    (mirrors the kernel's inactive->active promotion);
 *  - relaunch update: when a relaunch begins, the whole old hot list
 *    is demoted to warm and every page touched during the relaunch
 *    window joins the hot list;
 *  - eviction order: cold first (app-LRU order), then warm, then —
 *    only if unavoidable — hot.
 *
 * Lists hold resident pages only; everything is O(1) list surgery
 * with no data movement, preserving the paper's overhead argument.
 */

#ifndef ARIADNE_CORE_HOTNESS_ORG_HH
#define ARIADNE_CORE_HOTNESS_ORG_HH

#include <memory>
#include <vector>

#include "core/profile_store.hh"
#include "mem/lru_list.hh"
#include "mem/page_arena.hh"
#include "sim/stats.hh"

namespace ariadne
{

/** Three-list per-app data organization with cross-app LRU. */
class HotnessOrg
{
  public:
    /**
     * @param op_counter Shared LRU operation counter (CPU charging).
     * @param profiles Hot-set size estimates for initialization.
     * @param page_arena Arena owning the pages' SoA scan metadata
     *        (hotness levels live there, not in PageMeta).
     */
    HotnessOrg(Counter *op_counter, ProfileStore &profiles,
               PageArena &page_arena)
        : ops(op_counter), profileStore(profiles), arena(page_arena)
    {}

    /** New resident page admitted (first allocation). */
    void admit(PageMeta &page, Tick now);

    /** Resident page touched by the app. */
    void touchResident(PageMeta &page, Tick now);

    /**
     * Page became resident again after a swap-in fault. Joins hot if
     * the app is inside a relaunch window, else warm.
     */
    void placeAfterSwapIn(PageMeta &page, Tick now);

    /**
     * Sibling page of a decompressed cold unit that was *not* the
     * faulting page: resident now, still presumed cold.
     */
    void placeColdSibling(PageMeta &page, Tick now);

    /** Remove a page from whatever list it is on (pre-eviction). */
    void unlink(PageMeta &page);

    /** Relaunch window control. */
    void beginRelaunch(AppId uid, Tick now);
    void endRelaunch(AppId uid);

    /** True while @p uid is inside a relaunch window. */
    bool inRelaunch(AppId uid) const;

    /**
     * LRU victim selection: the tail page of the given level's list
     * of the least recently used app that has one.
     * @return nullptr when no app has pages at that level.
     */
    PageMeta *popVictim(Hotness level);

    /** Victim preview without removal. */
    PageMeta *peekVictim(Hotness level);

    /** Pop the LRU victim of @p level from a specific app. */
    PageMeta *popVictim(AppId uid, Hotness level);

    /** Resident pages on @p uid's list of @p level. */
    std::size_t listSize(AppId uid, Hotness level) const;

    /** Resident pages at @p level summed across every app (gauge
     * sampling; a handful of apps, so a cheap read-only walk). */
    std::size_t population(Hotness level) const;

    /**
     * The scheme's current relaunch prediction for @p uid: pages
     * touched during the most recent relaunch window (falls back to
     * the initialization-time hot list before the first relaunch).
     */
    std::vector<PageKey> predictedHotSet(AppId uid) const;

    /** Number of pages touched in the current/last relaunch window. */
    std::size_t lastRelaunchTouched(AppId uid) const;

  private:
    struct AppLists
    {
        AppLists(AppId uid_, Counter *ops)
            : uid(uid_), hot(ops), warm(ops), cold(ops)
        {}

        AppId uid;
        LruList hot;
        LruList warm;
        LruList cold;
        Tick lastAccess = 0;
        bool relaunchActive = false;
        std::size_t hotAdmitted = 0;   //!< launch-time hot fill count
        std::size_t hotInitTarget = 0; //!< from ProfileStore
        bool initialized = false;
        /** Pages touched during the last relaunch window. */
        std::vector<PageKey> relaunchTouched;
        PfnBitmap relaunchSeen;
    };

    AppLists &listsFor(AppId uid);
    const AppLists *findLists(AppId uid) const;
    AppLists *findLists(AppId uid);
    LruList &listOf(AppLists &app, Hotness level);
    void noteRelaunchTouch(AppLists &app, const PageMeta &page);

    Counter *ops;
    ProfileStore &profileStore;
    PageArena &arena;
    /** Sorted by uid. LruList is address-stable (intrusive heads), so
     * entries live behind unique_ptr; victim scans walk the flat
     * vector in uid order exactly as the old std::map iteration did. */
    std::vector<std::unique_ptr<AppLists>> apps;
    /** Touches arrive in long single-app runs; remembering the last
     * resolved entry turns almost every listsFor into one compare
     * (AppLists addresses are stable, so the cache never dangles). */
    AppLists *lastLists = nullptr;
};

} // namespace ariadne

#endif // ARIADNE_CORE_HOTNESS_ORG_HH
