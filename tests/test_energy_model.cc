/** @file Unit tests for the activity-based energy model. */

#include <gtest/gtest.h>

#include "sim/energy_model.hh"

using namespace ariadne;

TEST(EnergyModel, BasePowerDominatesIdle)
{
    EnergyModel m;
    ActivityTotals idle;
    idle.wallTimeNs = 60ULL * 1000000000ULL; // 60 s
    double joules = m.joules(idle);
    EXPECT_NEAR(joules, m.params().basePowerWatts * 60.0, 1e-9);
    EXPECT_DOUBLE_EQ(m.dynamicJoules(idle), 0.0);
}

TEST(EnergyModel, CpuEnergyScalesWithBusyTime)
{
    EnergyModel m;
    ActivityTotals a;
    a.cpuBusyNs = 1000000000ULL; // 1 s busy
    EXPECT_NEAR(m.dynamicJoules(a), m.params().cpuActivePowerWatts,
                1e-9);
}

TEST(EnergyModel, FlashWritesCostMoreThanReads)
{
    EnergyModel m;
    ActivityTotals reads, writes;
    reads.flashReadBytes = 1 << 30;
    writes.flashWriteBytes = 1 << 30;
    EXPECT_GT(m.dynamicJoules(writes), m.dynamicJoules(reads));
}

TEST(EnergyModel, DramTrafficCounts)
{
    EnergyModel m;
    ActivityTotals a;
    a.dramBytes = 1 << 30;
    EXPECT_GT(m.dynamicJoules(a), 0.0);
}

TEST(EnergyModel, AdditiveComposition)
{
    EnergyModel m;
    ActivityTotals a;
    a.wallTimeNs = 1000000000ULL;
    a.cpuBusyNs = 500000000ULL;
    a.dramBytes = 1 << 20;
    a.flashReadBytes = 1 << 20;
    a.flashWriteBytes = 1 << 20;

    ActivityTotals cpu_only, dram_only, fr_only, fw_only;
    cpu_only.cpuBusyNs = a.cpuBusyNs;
    dram_only.dramBytes = a.dramBytes;
    fr_only.flashReadBytes = a.flashReadBytes;
    fw_only.flashWriteBytes = a.flashWriteBytes;

    double sum = m.dynamicJoules(cpu_only) + m.dynamicJoules(dram_only) +
                 m.dynamicJoules(fr_only) + m.dynamicJoules(fw_only);
    EXPECT_NEAR(m.dynamicJoules(a), sum, 1e-9);
}

TEST(EnergyModel, CustomParams)
{
    EnergyParams p;
    p.basePowerWatts = 1.0;
    p.cpuActivePowerWatts = 2.0;
    EnergyModel m(p);
    ActivityTotals a;
    a.wallTimeNs = 2000000000ULL;
    a.cpuBusyNs = 1000000000ULL;
    EXPECT_NEAR(m.joules(a), 2.0 + 2.0, 1e-9);
}
