/**
 * @file
 * Time-series flight recorder: gauge samples on a simulated-time
 * cadence, buffered per thread, exported as `--timeline` JSON.
 *
 * Gauges summarize into count/sum/min/max in the Registry
 * (telemetry.hh); the TimelineRecorder keeps the *series* — every
 * (gauge, session, simulated-time, value) point — so occupancy
 * curves, kswapd storms and watermark pressure are visible over a
 * session's lifetime instead of only as end-of-run totals.
 *
 * Recording follows the telemetry contract: strictly out-of-band
 * (points are copies of simulator state, never references), one
 * relaxed load + branch when disabled, per-thread append-only
 * buffers when enabled. Sampling happens at deterministic simulated
 * times (MobileSystem crosses `timeline_interval_ms` boundaries), so
 * the set of points per session is a function of (spec, seed); only
 * their distribution across thread buffers varies, and export sorts
 * them into a canonical order.
 *
 * Buffers are bounded (pointCap per thread); overflow drops points
 * and counts the drops, which the export reports so a truncated
 * series is never mistaken for a complete one.
 */

#ifndef ARIADNE_TELEMETRY_TIMELINE_HH
#define ARIADNE_TELEMETRY_TIMELINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hh"

namespace ariadne::telemetry
{

namespace detail
{
/** Whether timeline points are recorded; read relaxed per sample. */
extern std::atomic<bool> g_timelineEnabled;
} // namespace detail

/** Whether the timeline recorder keeps gauge sample points. */
inline bool
timelineEnabled() noexcept
{
    return detail::g_timelineEnabled.load(std::memory_order_relaxed);
}

/** Turn timeline point recording on or off (off by default). */
void setTimelineEnabled(bool on) noexcept;

/**
 * Announce the fleet session the calling thread is about to run.
 * Timeline points and journey events recorded by this thread are
 * attributed to this session until the next call. Cheap (one TLS
 * store); safe to call unconditionally.
 */
void beginSession(std::uint32_t index) noexcept;

/** The session the calling thread last announced (0 by default). */
std::uint32_t currentSession() noexcept;

/**
 * Process-wide recorder of gauge sample series. Series names are
 * interned once (probe-construction time); record() appends to the
 * calling thread's own buffer without locks.
 */
class TimelineRecorder
{
  public:
    /** Max points buffered per thread before drops begin. */
    static constexpr std::size_t pointCap = std::size_t{1} << 18;

    static TimelineRecorder &global();

    /** Intern a series name; returns its id. Idempotent. */
    std::uint32_t seriesId(const std::string &name);

    /** One gauge sample: @p value at simulated time @p t_ns,
     * attributed to the calling thread's current session. */
    void record(std::uint32_t series, std::uint64_t t_ns,
                std::uint64_t value) noexcept;

    struct Point
    {
        std::uint32_t series = 0;
        std::uint32_t session = 0;
        std::uint64_t tNs = 0;
        std::uint64_t value = 0;
    };

    /** Interned series names, indexed by series id. */
    std::vector<std::string> seriesNames() const;

    /** Every buffered point, merged across threads and sorted by
     * (series name, session, time, value) — canonical regardless of
     * which worker ran which session. */
    std::vector<Point> points() const;

    /** Points lost to per-thread buffer overflow. */
    std::uint64_t droppedPoints() const;

    /** Discard all points (names and buffers stay registered). */
    void clear();

  private:
    struct Buffer
    {
        std::vector<Point> points;
        std::uint64_t dropped = 0;
    };

    TimelineRecorder() = default;

    Buffer &bufferForThisThread();
    Buffer &attachBuffer();

    mutable std::mutex mu;
    std::vector<std::string> names;
    std::vector<std::unique_ptr<Buffer>> buffers;
};

/**
 * A gauge probe wired into both sinks: sample() feeds the Registry
 * summary (count/sum/min/max for `--metrics`) and, when the timeline
 * is enabled, appends the raw point to the TimelineRecorder for
 * `--timeline`.
 */
class TimelineGauge
{
  public:
    explicit TimelineGauge(const char *name);

    void
    sample(std::uint64_t t_ns, std::uint64_t value) noexcept
    {
        if (enabled())
            Registry::global().recordGauge(base, value);
        if (timelineEnabled())
            TimelineRecorder::global().record(series, t_ns, value);
    }

  private:
    std::size_t base;
    std::uint32_t series;
};

} // namespace ariadne::telemetry

#endif // ARIADNE_TELEMETRY_TIMELINE_HH
