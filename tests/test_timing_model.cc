/** @file Unit tests for the calibrated device timing model. */

#include <gtest/gtest.h>

#include "sim/timing_model.hh"

using namespace ariadne;

TEST(TimingModel, ZeroBytesZeroTime)
{
    TimingModel t;
    EXPECT_EQ(t.compressNs(lz4Cost, 4096, 0), 0u);
    EXPECT_EQ(t.decompressNs(lz4Cost, 4096, 0), 0u);
    EXPECT_EQ(t.compressNs(lz4Cost, 0, 100), 0u);
}

TEST(TimingModel, AnchorAtFourKilobytes)
{
    TimingModel t;
    // At the 4 KB anchor the per-byte cost equals the base constant.
    EXPECT_NEAR(t.compNsPerByte(lzoCost, 4096),
                lzoCost.compNsPerByte4k, 1e-9);
    EXPECT_NEAR(t.decompNsPerByte(lzoCost, 4096),
                lzoCost.decompNsPerByte4k, 1e-9);
}

TEST(TimingModel, PerByteCostMonotonicInChunkSize)
{
    TimingModel t;
    double prev = 0.0;
    for (std::size_t chunk = 128; chunk <= 128 * 1024; chunk *= 2) {
        double cost = t.compNsPerByte(lz4Cost, chunk);
        EXPECT_GT(cost, prev);
        prev = cost;
    }
}

TEST(TimingModel, Fig6CompressionSpans)
{
    // The calibration anchors: 128 B compression of a fixed corpus is
    // 59.2x (LZ4) / 41.8x (LZO) faster than 128 KB (paper Fig. 6).
    TimingModel t;
    std::size_t corpus = std::size_t{576} * 1024 * 1024;

    double lz4_span =
        static_cast<double>(t.compressNs(lz4Cost, 128 * 1024, corpus)) /
        static_cast<double>(t.compressNs(lz4Cost, 128, corpus));
    EXPECT_NEAR(lz4_span, 59.2, 6.0);

    double lzo_span =
        static_cast<double>(t.compressNs(lzoCost, 128 * 1024, corpus)) /
        static_cast<double>(t.compressNs(lzoCost, 128, corpus));
    EXPECT_NEAR(lzo_span, 41.8, 5.0);
}

TEST(TimingModel, MidRangeGrowthIsMild)
{
    // Fig. 11 requires 16 KB chunks to be only mildly more expensive
    // per byte than 4 KB (cache-resident regime).
    TimingModel t;
    double ratio = t.compNsPerByte(lzoCost, 16384) /
                   t.compNsPerByte(lzoCost, 4096);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.6);
}

TEST(TimingModel, LargeChunksExplode)
{
    TimingModel t;
    double r64 = t.compNsPerByte(lz4Cost, 65536) /
                 t.compNsPerByte(lz4Cost, 32768);
    EXPECT_GT(r64, 2.0); // cache-spill regime
}

TEST(TimingModel, SmallChunkDecompressionIsMuchCheaper)
{
    // AdaptiveComp's rationale: hot data at 256 B-1 KB decompresses
    // far faster than the 4 KB baseline.
    TimingModel t;
    double d256 = t.decompNsPerByte(lzoCost, 256);
    double d4k = t.decompNsPerByte(lzoCost, 4096);
    EXPECT_LT(d256, 0.5 * d4k);
}

TEST(TimingModel, CompressionScalesLinearlyInBytes)
{
    TimingModel t;
    Tick one = t.compressNs(lzoCost, 4096, 1 << 20);
    Tick two = t.compressNs(lzoCost, 4096, 2 << 20);
    EXPECT_NEAR(static_cast<double>(two),
                2.0 * static_cast<double>(one),
                static_cast<double>(one) * 0.01);
}

TEST(TimingModel, FlashReadClusters)
{
    TimingParams p;
    p.flashReadPageNs = 80000;
    p.flashReadaheadPages = 4;
    TimingModel t(p);
    EXPECT_EQ(t.flashReadNs(0), 0u);
    EXPECT_EQ(t.flashReadNs(1), 80000u);
    EXPECT_EQ(t.flashReadNs(4), 80000u);
    EXPECT_EQ(t.flashReadNs(5), 160000u);
}

TEST(TimingModel, FlashWriteScalesPerPage)
{
    TimingModel t;
    EXPECT_EQ(t.flashWriteNs(3),
              3 * t.params().flashWritePageNs);
    EXPECT_EQ(t.flashWriteBytesNs(1),
              t.params().flashWritePageNs); // rounds up to a page
    EXPECT_EQ(t.flashWriteBytesNs(pageSize + 1),
              2 * t.params().flashWritePageNs);
}

TEST(TimingModel, BdiAndNullAreFlat)
{
    TimingModel t;
    EXPECT_DOUBLE_EQ(t.compNsPerByte(bdiCost, 128),
                     t.compNsPerByte(bdiCost, 131072));
    EXPECT_DOUBLE_EQ(t.compNsPerByte(nullCost, 128),
                     t.compNsPerByte(nullCost, 131072));
}

class ChunkSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ChunkSweep, CompressionCostsArePositiveAndFinite)
{
    TimingModel t;
    std::size_t chunk = GetParam();
    for (const CodecCost &cost : {lz4Cost, lzoCost, bdiCost, nullCost}) {
        Tick comp = t.compressNs(cost, chunk, 1 << 20);
        Tick decomp = t.decompressNs(cost, chunk, 1 << 20);
        EXPECT_GT(comp, 0u);
        EXPECT_GT(decomp, 0u);
        EXPECT_LT(comp, Tick{1} << 40);
        // Decompression is never slower than compression here.
        EXPECT_LE(decomp, comp);
    }
}

INSTANTIATE_TEST_SUITE_P(AllChunkSizes, ChunkSweep,
                         ::testing::Values(128, 256, 512, 1024, 2048,
                                           4096, 8192, 16384, 32768,
                                           65536, 131072));
