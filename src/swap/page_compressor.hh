/**
 * @file
 * Page compression service with size memoization.
 *
 * Every compression in the simulator runs a real codec over real
 * synthesized bytes; this helper materializes page contents, invokes
 * the chunked framing layer, and returns the true compressed size.
 * Because contents are pure functions of (uid, pfn, version), single-
 * page results are memoized — schemes recompress the same hot pages
 * on every app switch, and the cache turns that into a lookup while
 * keeping the sizes exact.
 *
 * The memo table is a power-of-two open-addressing flat table
 * (linear probing, splitmix64-mixed keys) rather than a node-based
 * unordered_map: one cache line per probe, no per-entry allocation.
 * Batch sizing (compressedSizeEach) reuses one content buffer across
 * the whole batch so a reclaim sweep does a single materialize +
 * codec loop instead of an allocation and dispatch per page. Every
 * codec call goes through a cached per-codec Codec::BatchState and
 * reused frame/chunk buffers, so a cache miss costs zero heap
 * allocations and no per-page hash-table refill in the LZ codecs.
 */

#ifndef ARIADNE_SWAP_PAGE_COMPRESSOR_HH
#define ARIADNE_SWAP_PAGE_COMPRESSOR_HH

#include <cstdint>
#include <vector>

#include "compress/chunked.hh"
#include "compress/codec.hh"
#include "mem/page.hh"
#include "sim/stats.hh"
#include "swap/compress_memo.hh"

namespace ariadne
{

/** Reference to one page's content. */
struct PageRef
{
    PageKey key;
    std::uint32_t version = 0;
};

/** Materializes and compresses page contents, caching sizes. */
class PageCompressor
{
  public:
    explicit PageCompressor(const PageContentSource &source)
        : content(source), scratch(pageSize)
    {
        slots.resize(initialSlots);
    }

    /**
     * Compressed size of one page framed with @p chunk_bytes chunks.
     * Memoized on (page, codec, chunk size).
     */
    std::size_t compressedSizeOne(const PageRef &page,
                                  const Codec &codec,
                                  std::size_t chunk_bytes);

    /**
     * Memoized compressed size of each page in @p pages,
     * independently (the batch equivalent of compressedSizeOne):
     * @p sizes[i] receives the size of pages[i]. Misses share one
     * content buffer and run in one codec loop.
     */
    void compressedSizeEach(const std::vector<PageRef> &pages,
                            const Codec &codec,
                            std::size_t chunk_bytes,
                            std::vector<std::size_t> &sizes);

    /**
     * Compressed size of a multi-page unit: pages are concatenated in
     * order and framed with @p chunk_bytes chunks (Ariadne's large-
     * size cold units). Not memoized — units form once per eviction.
     */
    std::size_t compressedSizeMany(const std::vector<PageRef> &pages,
                                   const Codec &codec,
                                   std::size_t chunk_bytes);

    /**
     * Attach a content-keyed cross-session memo (see
     * compress_memo.hh). Consulted only after the identity-keyed
     * cache misses, so hit/miss accounting here is unchanged; a memo
     * hit skips the codec entirely. The memo outlives this compressor
     * (a fleet worker shares one across all its sessions). nullptr
     * detaches.
     */
    void attachMemo(CompressionMemo *m) noexcept { memo = m; }

    /** The attached cross-session memo, if any (gauge sampling). */
    const CompressionMemo *
    attachedMemo() const noexcept
    {
        return memo;
    }

    /** Cache hits observed (for tests and reports). */
    std::uint64_t cacheHits() const noexcept { return hits; }

    /** Cache misses (real compressions of single pages). */
    std::uint64_t cacheMisses() const noexcept { return misses; }

    /** Total uncompressed bytes actually run through a codec. */
    std::uint64_t
    bytesCompressed() const noexcept
    {
        return compressedVolume;
    }

  private:
    /**
     * One open-addressing slot. The (codec, chunk) word doubles as
     * the occupancy marker: codec is 8 bits and chunk is far below
     * 2^32, so a real entry never equals emptyKey.
     */
    struct Slot
    {
        std::uint64_t pfnKey = 0;      //!< pfn
        std::uint64_t appKey = 0;      //!< (uid << 32) | version
        std::uint64_t codecKey = emptyKey; //!< (codec << 32) | chunk
        std::uint32_t csize = 0;
    };

    static constexpr std::uint64_t emptyKey = UINT64_MAX;
    /** Small enough that a fresh per-session table is a cheap zero
     * fill; the 70%-load doubling grows it on demand. */
    static constexpr std::size_t initialSlots = 1u << 12;

    static std::uint64_t
    mixSlotHash(std::uint64_t pfn_key, std::uint64_t app_key,
                std::uint64_t codec_key) noexcept
    {
        std::uint64_t h = pfn_key * 0x9e3779b97f4a7c15ULL;
        h ^= app_key;
        h = (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ULL;
        h ^= codec_key;
        return h ^ (h >> 31);
    }

    /** Probe for (keys); returns the matching or first empty slot. */
    Slot &findSlot(std::uint64_t pfn_key, std::uint64_t app_key,
                   std::uint64_t codec_key) noexcept;

    void growTable();

    /** Materialize+compress a page into the shared scratch buffer. */
    std::uint32_t compressMiss(const PageRef &page, const Codec &codec,
                               std::size_t chunk_bytes);

    /** Cached batch state for @p codec (created on first use). */
    Codec::BatchState *batchStateFor(const Codec &codec);

    /** Lazily created per-codec batch state, indexed by CodecKind. */
    struct BatchSlot
    {
        std::unique_ptr<Codec::BatchState> state;
        bool made = false;
    };

    const PageContentSource &content;
    CompressionMemo *memo = nullptr; //!< optional, externally owned
    std::vector<Slot> slots;
    std::size_t liveSlots = 0;
    std::vector<std::uint8_t> scratch;      //!< one page, reused
    std::vector<std::uint8_t> manyScratch;  //!< multi-page units
    std::vector<std::uint8_t> frameScratch; //!< reused frame output
    std::vector<std::uint8_t> chunkScratch; //!< reused codec dst
    BatchSlot batchStates[4];
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t compressedVolume = 0;
};

} // namespace ariadne

#endif // ARIADNE_SWAP_PAGE_COMPRESSOR_HH
