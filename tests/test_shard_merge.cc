/** @file End-to-end shard/merge determinism: merged shard reports
 * must reproduce the unsharded report — byte-identically in exact
 * percentile mode — through the real serialize/parse/merge pipeline,
 * and sketch mode must bound memory and rank error. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "driver/fleet_runner.hh"
#include "report/report_merger.hh"

using namespace ariadne;
using namespace ariadne::driver;
using namespace ariadne::report;

namespace
{

/** Busy-enough fleet scenario (mirrors test_fleet_runner's). */
ScenarioSpec
fleetSpec()
{
    return ScenarioSpec::parseString(R"(
name = shard-fleet
scheme = ariadne
scheme.config = EHL-1K-2K-16K
scale = 0.0625
seed = 11
fleet = 8
event = warmup
event = repeat 6
event =   switch_next 200ms 100ms
event = end
)");
}

SweepSpec
smallSweep()
{
    return SweepSpec::parseString(R"(
sweep = shard-sweep
scale = 0.0625
seed = 11
fleet = 2
event = warmup
event = repeat 3
event =   switch_next 200ms 100ms
event = end

variant = zram
scheme = zram

variant = ariadne
scheme = ariadne
scheme.config = EHL-1K-2K-16K

variant = dram
scheme = dram
)");
}

std::string
jsonOf(const FleetResult &r)
{
    std::ostringstream os;
    r.writeJson(os);
    return os.str();
}

std::string
jsonOf(const SweepResult &r)
{
    std::ostringstream os;
    r.writeJson(os);
    return os.str();
}

/** Serialize + reparse a partial — the exact artifact a distributed
 * worker would ship — so the test exercises the real pipeline. */
PartialReport
throughDisk(const PartialReport &p)
{
    std::ostringstream os;
    p.writeJson(os);
    return PartialReport::parseText(os.str());
}

std::string
mergedFleetJson(const FleetRunner &runner, std::size_t shards,
                std::size_t fleet, unsigned threads)
{
    std::vector<PartialReport> partials;
    for (std::size_t i = 1; i <= shards; ++i)
        partials.push_back(throughDisk(
            runner.runShard(ShardPlan{i, shards}, fleet, threads)));
    return jsonOf(mergePartials(std::move(partials)).fleet);
}

} // namespace

TEST(ShardMerge, MergedFleetShardsAreByteIdenticalToUnsharded)
{
    FleetRunner runner(fleetSpec());
    std::string unsharded = jsonOf(runner.run(8, 2));
    // 2, 4 and 8 shards, with varying worker counts per shard.
    EXPECT_EQ(mergedFleetJson(runner, 2, 8, 1), unsharded);
    EXPECT_EQ(mergedFleetJson(runner, 4, 8, 3), unsharded);
    EXPECT_EQ(mergedFleetJson(runner, 8, 8, 2), unsharded);
}

TEST(ShardMerge, MergeOrderCannotChangeTheResult)
{
    FleetRunner runner(fleetSpec());
    std::vector<PartialReport> partials;
    for (std::size_t i = 1; i <= 3; ++i)
        partials.push_back(throughDisk(
            runner.runShard(ShardPlan{i, 3}, 6, 2)));
    std::string sorted = jsonOf(
        mergePartials({partials[0], partials[1], partials[2]}).fleet);
    std::string shuffled = jsonOf(
        mergePartials({partials[2], partials[0], partials[1]}).fleet);
    EXPECT_EQ(sorted, shuffled);
}

TEST(ShardMerge, ShardsNeverRetainMoreThanTheirShare)
{
    FleetRunner runner(fleetSpec());
    PartialReport p = runner.runShard(ShardPlan{2, 4}, 8, 1);
    EXPECT_EQ(p.fleet.sessionsBegin, 2u);
    EXPECT_EQ(p.fleet.sessionsEnd, 4u);
    // Two sessions' worth of samples, not the whole fleet's.
    EXPECT_EQ(p.fleet.relaunchMs.count(), 12u);
    // Tiny fleets leave some shards empty — still mergeable.
    PartialReport empty = runner.runShard(ShardPlan{3, 4}, 2, 1);
    EXPECT_EQ(empty.fleet.sessionsBegin, empty.fleet.sessionsEnd);
    EXPECT_EQ(empty.fleet.relaunchMs.count(), 0u);
}

TEST(ShardMerge, TinyFleetShardsStillMergeExactly)
{
    FleetRunner runner(fleetSpec());
    std::string unsharded = jsonOf(runner.run(2, 1));
    std::vector<PartialReport> partials;
    for (std::size_t i = 1; i <= 4; ++i)
        partials.push_back(
            throughDisk(runner.runShard(ShardPlan{i, 4}, 2, 1)));
    EXPECT_EQ(jsonOf(mergePartials(std::move(partials)).fleet),
              unsharded);
}

TEST(ShardMerge, MergedSweepShardsAreByteIdenticalToUnsharded)
{
    SweepSpec sweep = smallSweep();
    std::string unsharded =
        jsonOf(FleetRunner::runSweep(sweep, 0, 2));
    std::vector<PartialReport> partials;
    for (std::size_t i = 1; i <= 2; ++i)
        partials.push_back(throughDisk(FleetRunner::runSweepShard(
            sweep, ShardPlan{i, 2}, 0, i == 1 ? 1 : 2)));
    // Round-robin: shard 1 owns variants 0 and 2, shard 2 owns 1.
    EXPECT_EQ(partials[0].variants.size(), 2u);
    EXPECT_EQ(partials[1].variants.size(), 1u);
    MergedReport merged = mergePartials(std::move(partials));
    ASSERT_EQ(merged.kind, PartialReport::Kind::Sweep);
    EXPECT_EQ(jsonOf(merged.sweep), unsharded);
}

TEST(ShardMerge, SketchModeBoundsMemoryAndRankError)
{
    ScenarioSpec exact_spec = fleetSpec();
    ScenarioSpec sketch_spec = fleetSpec();
    sketch_spec.percentiles = PercentileMode::Sketch;
    sketch_spec.sketchK = 32;

    FleetRunner exact_runner(exact_spec);
    FleetRunner sketch_runner(sketch_spec);
    FleetResult exact = exact_runner.run(6, 2);
    FleetResult sketched = sketch_runner.run(6, 2);

    // Identity metadata and exact moments agree; the JSON declares
    // the mode.
    EXPECT_EQ(sketched.percentiles, PercentileMode::Sketch);
    EXPECT_EQ(sketched.relaunchMs.samples, exact.relaunchMs.samples);
    EXPECT_EQ(sketched.relaunchMs.min, exact.relaunchMs.min);
    EXPECT_EQ(sketched.relaunchMs.max, exact.relaunchMs.max);
    EXPECT_NE(jsonOf(sketched).find("\"percentiles\": \"sketch\""),
              std::string::npos);

    // Sketch percentiles stay within the tracked rank bound of the
    // exact ones. With n samples, a rank window of ±bound around the
    // target can only move the reported value between order
    // statistics that far apart; compare against the exact
    // distribution's neighbouring percentiles.
    PartialReport part =
        sketch_runner.runShard(ShardPlan{1, 1}, 6, 2);
    const MetricState &relaunch = part.fleet.relaunchMs;
    auto n = static_cast<double>(relaunch.count());
    std::uint64_t bound = relaunch.sketch().rankErrorBound();
    double slack = static_cast<double>(bound) / n;
    double lo_p = std::max(0.0, 0.5 - slack);
    double hi_p = std::min(1.0, 0.5 + slack);
    // Exact order statistics around p50 from the exact run's shard.
    PartialReport exact_part =
        exact_runner.runShard(ShardPlan{1, 1}, 6, 2);
    Distribution d;
    for (double v : exact_part.fleet.relaunchMs.sampleValues())
        d.sample(v);
    EXPECT_GE(sketched.relaunchMs.p50, d.percentile(lo_p));
    EXPECT_LE(sketched.relaunchMs.p50, d.percentile(hi_p));

    // Sharded sketch runs retain O(sketch) values, and their merge is
    // deterministic (same partials -> same bytes).
    EXPECT_LE(relaunch.retainedValues(), std::size_t{32} * 8);
    std::vector<PartialReport> partials;
    for (std::size_t i = 1; i <= 2; ++i)
        partials.push_back(throughDisk(
            sketch_runner.runShard(ShardPlan{i, 2}, 6, 1)));
    std::string once = jsonOf(mergePartials(partials).fleet);
    std::string twice = jsonOf(mergePartials(partials).fleet);
    EXPECT_EQ(once, twice);
    // The merged report is the thread-invariant in-process one too:
    // sketch folding happens in session-index order either way.
    EXPECT_EQ(jsonOf(sketch_runner.run(6, 4)), jsonOf(sketched));
}

TEST(ShardMerge, SketchKeepsPartialReportsSmallAtScale)
{
    // A synthetic per-metric stress: fold far more samples than any
    // test fleet could, and check the partial's retained footprint
    // stays O(sketch), not O(sessions).
    FleetPartial p(PercentileMode::Sketch, 64);
    p.scale = 0.0625;
    p.fleet = 1;
    p.sessionsEnd = 1;
    driver::SessionResult s;
    s.relaunches.resize(200000);
    for (std::size_t i = 0; i < s.relaunches.size(); ++i)
        s.relaunches[i].fullScaleMs =
            static_cast<double>((i * 48271) % 99991);
    p.fold(s);
    EXPECT_EQ(p.relaunchMs.count(), 200000u);
    EXPECT_LE(p.relaunchMs.retainedValues(), 64u * 16u);

    FleetPartial exact(PercentileMode::Exact);
    exact.scale = 0.0625;
    exact.fleet = 1;
    exact.sessionsEnd = 1;
    exact.fold(s);
    EXPECT_EQ(exact.relaunchMs.retainedValues(), 200000u);
}
