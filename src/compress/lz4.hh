/**
 * @file
 * From-scratch LZ4-class codec.
 *
 * Implements an LZ77 byte codec in the style of LZ4: greedy hash-table
 * match search over a 64 KB window, token-encoded sequences of
 * literals plus (offset, length) matches, byte-oriented output. The
 * on-wire format is this repository's own (not interoperable with
 * upstream LZ4), but the algorithmic structure — and therefore the
 * ratio/speed trade-off versus chunk size — mirrors it.
 *
 * Format, per sequence:
 *   token      1 byte: (literalLen:4 | matchLenMinus4:4)
 *   litExt     0+ bytes of 255-continuation if literalLen == 15
 *   literals   literalLen bytes
 *   offset     2 bytes little endian, 1..65535   (absent in final seq)
 *   matchExt   0+ bytes of 255-continuation if matchLen nibble == 15
 * The final sequence carries only literals; the decoder detects it by
 * input exhaustion after the literal run.
 */

#ifndef ARIADNE_COMPRESS_LZ4_HH
#define ARIADNE_COMPRESS_LZ4_HH

#include "compress/codec.hh"

namespace ariadne
{

/** LZ4-class codec (64 KB window, 4-byte minimum match). */
class Lz4Codec : public Codec
{
  public:
    CodecKind kind() const noexcept override { return CodecKind::Lz4; }
    std::string name() const override { return "lz4"; }
    const CodecCost &cost() const noexcept override { return costs; }

    std::size_t compressBound(std::size_t n) const noexcept override;
    std::size_t compress(ConstBytes src, MutableBytes dst) const override;
    std::size_t decompress(ConstBytes src,
                           MutableBytes dst) const override;

    /** Reusable biased position table (see batch_table.hh). */
    std::unique_ptr<BatchState> makeBatchState() const override;
    std::size_t compress(ConstBytes src, MutableBytes dst,
                         BatchState *state) const override;

  private:
    static constexpr CodecCost costs = lz4Cost;
};

} // namespace ariadne

#endif // ARIADNE_COMPRESS_LZ4_HH
