/** @file Unit tests for the fleet experiment runner. */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/fleet_runner.hh"
#include "workload/apps.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

/**
 * A fast scenario: warm up all ten apps (which overflows the scaled
 * DRAM budget, so reclaim and compression run), then a dozen
 * round-robin switches. Small enough to run a fleet of six in about a
 * second, busy enough to exercise the fault and relaunch paths.
 */
ScenarioSpec
smallSpec()
{
    return ScenarioSpec::parseString(R"(
name = test-fleet
scheme = ariadne
ariadne = EHL-1K-2K-16K
scale = 0.0625
seed = 7
fleet = 6
event = warmup
event = repeat 12
event =   switch_next 200ms 100ms
event = end
)");
}

std::string
jsonOf(const FleetResult &r, bool per_session)
{
    std::ostringstream os;
    r.writeJson(os, per_session);
    return os.str();
}

} // namespace

TEST(FleetRunner, SessionCountAndRecordedRelaunches)
{
    FleetRunner runner(smallSpec());
    FleetResult r = runner.run(2, 1);
    ASSERT_EQ(r.sessions.size(), 2u);
    // Warmup launches all three apps, so every switch_next relaunches.
    EXPECT_EQ(r.sessions[0].relaunches.size(), 12u);
    EXPECT_EQ(r.totalRelaunches, 24u);
    EXPECT_EQ(r.relaunchMs.samples, 24u);
    for (const auto &sample : r.sessions[0].relaunches)
        EXPECT_GT(sample.fullScaleMs, 0.0);
}

TEST(FleetRunner, UsesSpecFleetSizeByDefault)
{
    FleetRunner runner(smallSpec());
    EXPECT_EQ(runner.run(0, 1).sessions.size(), 6u);
}

TEST(FleetRunner, SessionIsDeterministicInIsolation)
{
    FleetRunner runner(smallSpec());
    SessionResult a = runner.runSession(3);
    SessionResult b = runner.runSession(3);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.compCpuNs, b.compCpuNs);
    EXPECT_EQ(a.kswapdCpuNs, b.kswapdCpuNs);
    EXPECT_EQ(a.simulatedNs, b.simulatedNs);
    ASSERT_EQ(a.relaunches.size(), b.relaunches.size());
    for (std::size_t i = 0; i < a.relaunches.size(); ++i) {
        EXPECT_EQ(a.relaunches[i].uid, b.relaunches[i].uid);
        EXPECT_EQ(a.relaunches[i].stats.totalNs,
                  b.relaunches[i].stats.totalNs);
    }
}

TEST(FleetRunner, SessionsDiffer)
{
    FleetRunner runner(smallSpec());
    // Distinct seeds should give (at least slightly) distinct
    // behaviour; identical sessions would mean the seed is ignored.
    SessionResult s0 = runner.runSession(0);
    SessionResult s1 = runner.runSession(1);
    EXPECT_NE(s0.seed, s1.seed);
    EXPECT_NE(s0.simulatedNs, s1.simulatedNs);
}

TEST(FleetRunner, AggregateJsonIsThreadInvariant)
{
    FleetRunner runner(smallSpec());
    FleetResult one = runner.run(6, 1);
    FleetResult eight = runner.run(6, 8);
    EXPECT_EQ(jsonOf(one, true), jsonOf(eight, true));
}

TEST(FleetRunner, PercentilesAreOrdered)
{
    FleetRunner runner(smallSpec());
    FleetResult r = runner.run(4, 2);
    EXPECT_GT(r.relaunchMs.samples, 0u);
    EXPECT_LE(r.relaunchMs.min, r.relaunchMs.p50);
    EXPECT_LE(r.relaunchMs.p50, r.relaunchMs.p90);
    EXPECT_LE(r.relaunchMs.p90, r.relaunchMs.p99);
    EXPECT_LE(r.relaunchMs.p99, r.relaunchMs.max);
    EXPECT_GT(r.compDecompCpuMs.mean, 0.0);
    EXPECT_GT(r.compRatio.mean, 1.0);
}

TEST(FleetRunner, JsonReportCarriesScenarioIdentity)
{
    FleetRunner runner(smallSpec());
    std::string text = jsonOf(runner.run(2, 1), false);
    EXPECT_NE(text.find("\"scenario\": \"test-fleet\""),
              std::string::npos);
    EXPECT_NE(text.find("\"scheme\": \"Ariadne\""), std::string::npos);
    EXPECT_NE(text.find("\"ariadneConfig\": \"EHL-1K-2K-16K\""),
              std::string::npos);
    EXPECT_NE(text.find("\"relaunchMs\""), std::string::npos);
    EXPECT_NE(text.find("\"p99\""), std::string::npos);
    // No per-session records unless asked for.
    EXPECT_EQ(text.find("\"sessions\""), std::string::npos);
    std::string per = jsonOf(runner.run(2, 1), true);
    EXPECT_NE(per.find("\"sessions\""), std::string::npos);
}

TEST(FleetRunner, ProgrammaticSpecMatchesParsedSpec)
{
    ScenarioSpec parsed = smallSpec();

    ScenarioSpec built;
    built.name = "test-fleet";
    built.scheme = SchemeKind::Ariadne;
    built.ariadneConfig = "EHL-1K-2K-16K";
    built.scale = 0.0625;
    built.seed = 7;
    built.fleet = 6;
    built.program.push_back(Event::warmup());
    built.program.push_back(Event::repeat(
        12, {Event::switchNext(200 * 1000000ULL, 100 * 1000000ULL)}));
    EXPECT_TRUE(parsed == built);

    FleetResult a = FleetRunner(parsed).run(2, 1);
    FleetResult b = FleetRunner(built).run(2, 1);
    EXPECT_EQ(jsonOf(a, true), jsonOf(b, true));
}

TEST(FleetRunner, TargetScenarioRecordsMeasuredRelaunch)
{
    ScenarioSpec spec;
    spec.name = "target";
    spec.scheme = SchemeKind::Zram;
    spec.scale = 0.0625;
    spec.apps = {"YouTube", "Twitter", "Firefox"};
    spec.program.push_back(Event::targetScenario("YouTube", 0));
    SessionResult s = FleetRunner(std::move(spec)).runSession(0);
    ASSERT_EQ(s.relaunches.size(), 1u);
    EXPECT_GT(s.relaunches[0].stats.pagesTouched, 0u);
}

TEST(FleetRunner, ColdLaunchIsNotARelaunchSample)
{
    ScenarioSpec spec;
    spec.name = "cold";
    spec.scheme = SchemeKind::Zram;
    spec.scale = 0.0625;
    spec.apps = {"YouTube"};
    // First relaunch op can only cold-launch: nothing measured.
    spec.program.push_back(Event::relaunch("YouTube"));
    spec.program.push_back(Event::execute("YouTube", 1000000000ULL));
    spec.program.push_back(Event::background("YouTube"));
    spec.program.push_back(Event::relaunch("YouTube"));
    SessionResult s = FleetRunner(std::move(spec)).runSession(0);
    ASSERT_EQ(s.relaunches.size(), 1u);
    EXPECT_EQ(s.relaunches[0].uid, standardApp("YouTube").uid);
}
