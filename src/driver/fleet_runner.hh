/**
 * @file
 * FleetRunner — executes a ScenarioSpec as a fleet of independent
 * simulated devices and aggregates the results.
 *
 * Each fleet session owns a full MobileSystem seeded from
 * ScenarioSpec::sessionSeed(index); its profiles and behaviour come
 * from the spec's WorkloadSource (workload_source.hh), so a session
 * depends only on (spec, index) whichever of the three workload kinds
 * — event programs, synthetic populations, trace replay — drives it.
 * Sessions are distributed over a thread pool and *streamed* into the
 * aggregate in session-index order through a bounded reorder window:
 * workers park an out-of-order result until its predecessors are
 * folded, so peak retained SessionResults stay O(threads) no matter
 * how large the fleet is, while the aggregate (including every
 * percentile and its JSON rendering) remains bit-identical whether
 * the fleet ran on one thread or sixteen.
 *
 * runRecorded() captures a fleet into a trace that replays
 * bit-identically (`ariadne_sim --record` / `workload = trace`).
 * Sweeps (SweepSpec) run their variants back to back and report them
 * side by side in one JSON document.
 *
 * Aggregation itself lives in src/report/: sessions fold into a
 * report::FleetPartial and the final numbers come from
 * report::finalizeFleet — the same code path `ariadne_sim --merge`
 * uses — so an in-process run is literally the 1/1-shard case of the
 * sharded pipeline (runShard / runSweepShard produce the other
 * shards' PartialReports).
 */

#ifndef ARIADNE_DRIVER_FLEET_RUNNER_HH
#define ARIADNE_DRIVER_FLEET_RUNNER_HH

#include <memory>
#include <optional>
#include <ostream>

#include "driver/session_result.hh"
#include "driver/sweep_spec.hh"
#include "report/partial_report.hh"

namespace ariadne
{
class PageArena;
class CompressionMemo;
}

namespace ariadne::driver
{

class WorkloadSource;
class TraceRecorder;

/** The per-metric summary record (moved to the report subsystem so
 * the shard/merge pipeline and the driver share one definition). */
using report::MetricSummary;

/** Aggregate outcome of a fleet run. */
struct FleetResult
{
    std::string scenario;
    std::string scheme;
    std::string ariadneConfig;
    double scale = 0.0625;
    std::uint64_t seed = 0;
    std::size_t fleet = 0;
    /** How percentiles were aggregated (exact vectors or sketch);
     * sketch-mode summaries carry their rank-error bounds. */
    PercentileMode percentiles = PercentileMode::Exact;

    /** Per-session records; only populated when the run was asked to
     * keep them (they defeat streaming aggregation's O(threads)
     * memory bound). */
    std::vector<SessionResult> sessions;

    /** High-water mark of SessionResults alive in the streaming
     * reorder window (bounded by 2 * threads; 1 for single-threaded
     * runs). Diagnostic only — never serialized, so reports stay
     * thread-invariant. */
    std::size_t peakRetainedSessions = 0;

    /** Across every measured relaunch of every session (paper-scale
     * milliseconds). */
    MetricSummary relaunchMs;
    /** Per-session distributions (paper-scale ms / Joules). */
    MetricSummary compDecompCpuMs;
    MetricSummary kswapdCpuMs;
    MetricSummary energyJ;
    MetricSummary compRatio;

    std::uint64_t totalRelaunches = 0;
    std::uint64_t totalStagedHits = 0;
    std::uint64_t totalMajorFaults = 0;
    std::uint64_t totalFlashFaults = 0;
    std::uint64_t totalLostPages = 0;
    std::uint64_t totalDirectReclaims = 0;

    /**
     * Machine-readable report. @p per_session additionally emits one
     * record per session (seeds, CPU, relaunch samples) — the run
     * must have kept sessions for that to be non-empty.
     */
    void writeJson(std::ostream &os, bool per_session = false) const;

    /** Emit the report object into an open writer (SweepResult embeds
     * variant reports this way). */
    void writeJson(class JsonWriter &w, bool per_session = false) const;
};

/** Side-by-side outcome of a multi-scenario sweep. */
struct SweepResult
{
    std::string name;
    /** One aggregate per variant, in SweepSpec order. */
    std::vector<FleetResult> variants;

    /** One report comparing every variant side by side. */
    void writeJson(std::ostream &os, bool per_session = false) const;
};

/** Runs ScenarioSpecs as session fleets. */
class FleetRunner
{
  public:
    /**
     * Builds the spec's WorkloadSource. For `workload = trace` specs
     * this loads and validates the trace and adopts the scenario
     * embedded in it as the effective spec (only the replay spec's
     * explicit name survives), which is what makes a replayed report
     * byte-identical to the recorded one. A what-if override
     * (ScenarioSpec::replayScheme / replayParams, or `ariadne_sim
     * --replay TRACE --scheme NAME`) swaps the scheme the recorded
     * workload runs under instead — the workload stream itself stays
     * bit-identical to the recording — and also flows into
     * runRecorded()'s embedded spec, so a re-recorded what-if replay
     * carries the scheme it actually ran. Throws TraceError /
     * SpecError on unreadable or corrupt traces and SpecError on an
     * override that fails the scheme registry's validation.
     *
     * @param spec Scenario to run.
     * @param hooks Targets for the spec's `custom` events (a program
     *        referencing hooks[i] with i >= hooks.size() panics).
     */
    explicit FleetRunner(ScenarioSpec spec,
                         std::vector<SessionHook> hooks = {});

    /**
     * Run @p fleet sessions on @p threads worker threads, streaming
     * results into the aggregate in session-index order.
     * @param fleet Session count; 0 uses the spec's fleet size.
     *        Throws SpecError when it exceeds the workload source's
     *        session limit (finite for trace replays).
     * @param threads Worker threads; 0 picks the hardware count.
     * @param keep_sessions Retain every SessionResult in the result
     *        (needed for per-session JSON; costs O(fleet) memory).
     * Aggregates are independent of @p threads.
     */
    FleetResult run(std::size_t fleet = 0, unsigned threads = 1,
                    bool keep_sessions = false) const;

    /**
     * Run the fleet single-threaded and record every session's
     * primitive op/touch stream into @p trace_path. Recording is
     * passive: the returned FleetResult is bit-identical to an
     * unrecorded run(), and replaying the trace (`workload = trace`)
     * reproduces it byte for byte. One worker is mandatory — parallel
     * sessions would interleave in the stream.
     */
    FleetResult runRecorded(const std::string &trace_path,
                            std::size_t fleet = 0,
                            bool keep_sessions = false) const;

    /**
     * Run only this process's share of the fleet — the contiguous
     * session range @p plan assigns (global indices, so per-session
     * seeds are unchanged) — and return its mergeable PartialReport.
     * Merging all COUNT shards (report::mergePartials / `ariadne_sim
     * --merge`) reproduces run()'s report; byte-identically in exact
     * percentile mode. Shards never retain sessions or record traces.
     */
    report::PartialReport runShard(const report::ShardPlan &plan,
                                   std::size_t fleet = 0,
                                   unsigned threads = 1) const;

    /**
     * Run this process's share of @p sweep — the variants @p plan
     * assigns round-robin, each as a complete fleet — as a mergeable
     * PartialReport tagged with the variants' declaration indices.
     */
    static report::PartialReport
    runSweepShard(const SweepSpec &sweep,
                  const report::ShardPlan &plan, std::size_t fleet = 0,
                  unsigned threads = 1);

    /** Run the single session @p index (deterministic in isolation). */
    SessionResult runSession(std::size_t index) const;

    /**
     * Run every variant of @p sweep back to back (variant order is
     * the spec's declaration order; aggregates are thread-invariant).
     * @param fleet Per-variant session count; 0 uses each variant's
     *        own fleet size.
     */
    static SweepResult runSweep(const SweepSpec &sweep,
                                std::size_t fleet = 0,
                                unsigned threads = 1,
                                bool keep_sessions = false);

    /** Effective spec (the embedded scenario for trace replays). */
    const ScenarioSpec &spec() const noexcept { return scenario; }

    /** The workload source driving this runner's sessions. */
    const WorkloadSource &workload() const noexcept { return *source; }

  private:
    /** @p arena Optional slab arena to build the session's
     * MobileSystem on. Fleet workers pass their thread's arena so
     * page-metadata slabs (and the SoA scan arrays) are allocated
     * once per worker and recycled across every session it runs;
     * nullptr makes the session own a private arena. @p memo is the
     * worker's cross-session compression memo on the same terms
     * (nullptr = no memoization; reports are identical either way). */
    SessionResult runSession(std::size_t index, TraceRecorder *recorder,
                             PageArena *arena,
                             CompressionMemo *memo = nullptr) const;
    FleetResult runFleet(std::size_t fleet, unsigned threads,
                         bool keep_sessions,
                         TraceRecorder *recorder) const;
    std::size_t resolveFleet(std::size_t fleet) const;
    report::FleetPartial
    makePartial(std::size_t fleet,
                const report::ShardPlan &plan) const;
    /** Fold the partial's session range through the thread pool /
     * reorder window; optionally retaining sessions (full-range runs
     * only) and reporting the window's high-water mark. */
    void runPartialInto(report::FleetPartial &partial,
                        unsigned threads,
                        std::vector<SessionResult> *kept,
                        std::size_t &peak,
                        TraceRecorder *recorder) const;
    std::string embeddableSpecText(std::size_t fleet) const;

    ScenarioSpec scenario;
    std::vector<SessionHook> sessionHooks;
    std::shared_ptr<const WorkloadSource> source;
    /** Set for trace replays only: the spec to embed when re-recording
     * (the recorded scenario, never a trace reference, so a recorded
     * replay stays replayable). Other runners embed `scenario`. */
    std::optional<ScenarioSpec> recordedForEmbed;
};

} // namespace ariadne::driver

#endif // ARIADNE_DRIVER_FLEET_RUNNER_HH
