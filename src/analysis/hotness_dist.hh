/**
 * @file
 * Hotness composition of the compressed stream (Fig. 4).
 */

#ifndef ARIADNE_ANALYSIS_HOTNESS_DIST_HH
#define ARIADNE_ANALYSIS_HOTNESS_DIST_HH

#include <array>
#include <vector>

#include "mem/page.hh"

namespace ariadne
{

/** Hot/warm/cold share of one decile of the compression stream. */
struct HotnessShare
{
    double hot = 0.0;
    double warm = 0.0;
    double cold = 0.0;
};

/**
 * Sort-by-compression-time decile analysis: the input is the hotness
 * of each compressed page in compression order; the output is the
 * composition of each of @p parts equal slices (paper uses 10).
 */
std::vector<HotnessShare>
hotnessByCompressionOrder(const std::vector<Hotness> &stream,
                          std::size_t parts = 10);

} // namespace ariadne

#endif // ARIADNE_ANALYSIS_HOTNESS_DIST_HH
