/**
 * @file
 * Fig. 5: Hot Data Similarity and Reused Data between two
 * consecutive relaunches of an application.
 *
 * Paper result: average similarity ~70%, average reuse ~98% — the
 * basis of Insight 1 (last relaunch predicts the next).
 *
 * This measures the workload generator itself, not a swap scheme, so
 * each per-app variant runs a `custom` hook that drives a bare
 * AppInstance with the shared eval seed (MobileSystem derives
 * per-app seeds, which would change the published numbers).
 */

#include "analysis/similarity.hh"
#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig5", argc, argv);
    printBanner(std::cout,
                "Fig. 5: hot-data similarity and reuse across "
                "consecutive relaunches");

    ReportTable table({"App", "Similarity", "Reused"});
    double sim_sum = 0.0, reuse_sum = 0.0;
    std::size_t n = 0;

    for (const auto &profile : standardApps()) {
        double sim = 0.0, reuse = 0.0;

        driver::ScenarioSpec spec = makeSpec("dram");
        spec.name = profile.name + "/workload";
        spec.apps = {profile.name};
        spec.program.push_back(driver::Event::custom(0));

        driver::SessionHook probe =
            [&](MobileSystem &, SessionDriver &,
                driver::SessionResult &) {
                AppInstance inst(profile, evalScale, evalSeed);
                inst.coldLaunch();
                inst.execute(Tick{30} * 1000000000ULL);

                double sim_acc = 0.0, reuse_acc = 0.0;
                constexpr unsigned relaunches = 5;
                for (unsigned r = 0; r < relaunches; ++r) {
                    inst.relaunch();
                    std::vector<Pfn> prev = inst.previousHotSet();
                    std::vector<Pfn> cur = inst.hotSet();
                    sim_acc += hotDataSimilarity(prev, cur);
                    reuse_acc +=
                        reusedData(prev, cur, inst.warmSet());
                    inst.execute(Tick{10} * 1000000000ULL);
                }
                sim = sim_acc / relaunches;
                reuse = reuse_acc / relaunches;
            };
        report.add(runVariant(std::move(spec), {probe}));

        table.addRow({profile.name, ReportTable::num(sim, 2),
                      ReportTable::num(reuse, 2)});
        sim_sum += sim;
        reuse_sum += reuse;
        ++n;
    }
    table.print(std::cout);
    std::cout << "\nAverage similarity "
              << ReportTable::num(sim_sum / static_cast<double>(n), 2)
              << " (paper: 0.70), average reuse "
              << ReportTable::num(reuse_sum / static_cast<double>(n), 2)
              << " (paper: 0.98)\n";
    report.addTable("similarity_reuse", table);
    return report.finish();
}
