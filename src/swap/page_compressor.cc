#include "swap/page_compressor.hh"

#include "telemetry/telemetry.hh"

namespace ariadne
{

namespace
{

telemetry::Counter c_cacheHit("compressor.cache_hit");
telemetry::Counter c_cacheMiss("compressor.cache_miss");
telemetry::Counter c_memoHit("compressor.memo.hit");
telemetry::Counter c_memoMiss("compressor.memo.miss");

// Per-codec host-time compression cost, indexed by CodecKind. These
// are the only probes measuring *real* compression work (the schemes
// charge modeled sim-time separately).
telemetry::DurationProbe &
compressProbe(CodecKind kind)
{
    static telemetry::DurationProbe probes[] = {
        telemetry::DurationProbe("compressor.compress.lz4"),
        telemetry::DurationProbe("compressor.compress.lzo"),
        telemetry::DurationProbe("compressor.compress.bdi"),
        telemetry::DurationProbe("compressor.compress.null"),
    };
    auto i = static_cast<std::size_t>(kind);
    return probes[i < 4 ? i : 3];
}

} // namespace

PageCompressor::Slot &
PageCompressor::findSlot(std::uint64_t pfn_key, std::uint64_t app_key,
                         std::uint64_t codec_key) noexcept
{
    std::size_t mask = slots.size() - 1;
    std::size_t idx = static_cast<std::size_t>(
                          mixSlotHash(pfn_key, app_key, codec_key)) &
                      mask;
    for (;;) {
        Slot &slot = slots[idx];
        if (slot.codecKey == emptyKey ||
            (slot.pfnKey == pfn_key && slot.appKey == app_key &&
             slot.codecKey == codec_key)) {
            return slot;
        }
        idx = (idx + 1) & mask;
    }
}

void
PageCompressor::growTable()
{
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.size() * 2, Slot{});
    for (const Slot &slot : old) {
        if (slot.codecKey == emptyKey)
            continue;
        findSlot(slot.pfnKey, slot.appKey, slot.codecKey) = slot;
    }
}

Codec::BatchState *
PageCompressor::batchStateFor(const Codec &codec)
{
    auto i = static_cast<std::size_t>(codec.kind());
    BatchSlot &slot = batchStates[i < 4 ? i : 3];
    if (!slot.made) {
        slot.state = codec.makeBatchState();
        slot.made = true;
    }
    return slot.state.get();
}

std::uint32_t
PageCompressor::compressMiss(const PageRef &page, const Codec &codec,
                             std::size_t chunk_bytes)
{
    telemetry::ScopedTimer timer(compressProbe(codec.kind()));
    content.materialize(page.key, page.version,
                        {scratch.data(), scratch.size()});
    ConstBytes bytes{scratch.data(), scratch.size()};
    std::uint64_t fp = 0;
    if (memo) {
        // Content-keyed cross-session memo: the same bytes under the
        // same (codec, chunk) compress to the same size, so a hit
        // skips the codec. bytesCompressed() keeps meaning "ran
        // through a codec" — a memo hit adds nothing.
        fp = memo->fingerprint(bytes, codec.kind(), chunk_bytes);
        std::uint32_t found = memo->lookup(fp, bytes);
        if (found != CompressionMemo::notFound) {
            c_memoHit.add();
            return found;
        }
        c_memoMiss.add();
    }
    std::size_t frame_size = ChunkedFrame::compressInto(
        codec, bytes, chunk_bytes, batchStateFor(codec), frameScratch,
        chunkScratch);
    compressedVolume += pageSize;
    auto csize = static_cast<std::uint32_t>(frame_size);
    if (memo)
        memo->insert(fp, bytes, csize);
    return csize;
}

std::size_t
PageCompressor::compressedSizeOne(const PageRef &page,
                                  const Codec &codec,
                                  std::size_t chunk_bytes)
{
    std::uint64_t pfn_key = page.key.pfn;
    std::uint64_t app_key =
        (std::uint64_t{page.key.uid} << 32) | page.version;
    std::uint64_t codec_key =
        (std::uint64_t{static_cast<std::uint8_t>(codec.kind())}
         << 32) |
        static_cast<std::uint32_t>(chunk_bytes);

    Slot &slot = findSlot(pfn_key, app_key, codec_key);
    if (slot.codecKey != emptyKey) {
        c_cacheHit.add();
        ++hits;
        return slot.csize;
    }
    c_cacheMiss.add();
    ++misses;

    std::uint32_t csize = compressMiss(page, codec, chunk_bytes);
    slot = Slot{pfn_key, app_key, codec_key, csize};
    if (++liveSlots * 10 >= slots.size() * 7)
        growTable();
    return csize;
}

void
PageCompressor::compressedSizeEach(const std::vector<PageRef> &pages,
                                   const Codec &codec,
                                   std::size_t chunk_bytes,
                                   std::vector<std::size_t> &sizes)
{
    sizes.resize(pages.size());
    // One probe-and-compress loop for the whole batch: the codec key
    // is loop-invariant and every miss shares the scratch buffer.
    std::uint64_t codec_key =
        (std::uint64_t{static_cast<std::uint8_t>(codec.kind())}
         << 32) |
        static_cast<std::uint32_t>(chunk_bytes);
    for (std::size_t i = 0; i < pages.size(); ++i) {
        const PageRef &page = pages[i];
        std::uint64_t pfn_key = page.key.pfn;
        std::uint64_t app_key =
            (std::uint64_t{page.key.uid} << 32) | page.version;
        Slot &slot = findSlot(pfn_key, app_key, codec_key);
        if (slot.codecKey != emptyKey) {
            c_cacheHit.add();
            ++hits;
            sizes[i] = slot.csize;
            continue;
        }
        c_cacheMiss.add();
        ++misses;
        std::uint32_t csize = compressMiss(page, codec, chunk_bytes);
        slot = Slot{pfn_key, app_key, codec_key, csize};
        sizes[i] = csize;
        if (++liveSlots * 10 >= slots.size() * 7)
            growTable();
    }
}

std::size_t
PageCompressor::compressedSizeMany(const std::vector<PageRef> &pages,
                                   const Codec &codec,
                                   std::size_t chunk_bytes)
{
    if (pages.empty())
        return 0;
    telemetry::ScopedTimer timer(compressProbe(codec.kind()));
    manyScratch.resize(pages.size() * pageSize);
    for (std::size_t i = 0; i < pages.size(); ++i) {
        content.materialize(pages[i].key, pages[i].version,
                            {manyScratch.data() + i * pageSize,
                             pageSize});
    }
    std::size_t frame_size = ChunkedFrame::compressInto(
        codec, {manyScratch.data(), manyScratch.size()}, chunk_bytes,
        batchStateFor(codec), frameScratch, chunkScratch);
    compressedVolume += manyScratch.size();
    return frame_size;
}

} // namespace ariadne
