#include "swap/kswapd.hh"

namespace ariadne
{

std::size_t
Kswapd::maybeRun()
{
    if (!ctx.dram.belowLowWatermark())
        return 0;

    ++runs;
    ctx.cpu.charge(CpuRole::Kswapd, wakeupCpuNs);
    totalCpuNs += wakeupCpuNs;

    // Attribute every cycle the scheme burns during this call to the
    // kswapd thread (compression, io submission, fault bookkeeping
    // for list maintenance).
    Tick before = ctx.cpu.grandTotal();
    std::size_t want = ctx.dram.reclaimTarget();
    std::size_t freed = target.reclaim(want, /*direct=*/false);
    Tick after = ctx.cpu.grandTotal();
    totalCpuNs += after - before;
    reclaimed += freed;
    return freed;
}

} // namespace ariadne
