/** @file Unit tests for the uncompressed flash SWAP scheme. */

#include <gtest/gtest.h>

#include "scheme_test_util.hh"
#include "swap/flash_swap.hh"

using namespace ariadne;
using namespace ariadne::testutil;

namespace
{

FlashSwapConfig
smallConfig()
{
    FlashSwapConfig cfg;
    cfg.flashBytes = 1024 * pageSize;
    return cfg;
}

} // namespace

TEST(FlashSwap, ReclaimWritesRawPages)
{
    SchemeHarness h(256);
    FlashSwapScheme swap(h.context(), smallConfig());
    auto pages = h.admitPages(swap, 1, 16);
    std::size_t freed = swap.reclaim(8, false);
    EXPECT_EQ(freed, 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(h.arena.location(*pages[i]), PageLocation::Flash);
    // Raw pages: one full page per victim.
    EXPECT_EQ(swap.flash()->hostWriteBytes(), 8 * pageSize);
    // No compression happened.
    EXPECT_EQ(swap.totalStats().compOps, 0u);
}

TEST(FlashSwap, SwapInPaysFlashLatency)
{
    SchemeHarness h(256);
    FlashSwapScheme swap(h.context(), smallConfig());
    auto pages = h.admitPages(swap, 1, 8);
    swap.reclaim(8, false);
    SwapInResult res = swap.swapIn(*pages[0]);
    EXPECT_TRUE(res.fromFlash);
    EXPECT_EQ(h.arena.location(*pages[0]), PageLocation::Resident);
    // Effective flash read latency dwarfs fault bookkeeping.
    EXPECT_GT(res.latencyNs, h.timing.params().flashReadPageNs /
                                 h.timing.params().flashReadaheadPages);
}

TEST(FlashSwap, SwapInCostsMoreThanZramWould)
{
    // The Fig. 2 ordering: flash swap-ins are slower than in-memory
    // decompression. Compare against the modeled 4 KB decompression.
    SchemeHarness h(256);
    FlashSwapScheme swap(h.context(), smallConfig());
    auto pages = h.admitPages(swap, 1, 4);
    swap.reclaim(4, false);
    SwapInResult res = swap.swapIn(*pages[0]);
    Tick zram_like =
        h.timing.decompressNs(lzoCost, pageSize, pageSize) +
        h.timing.params().majorFaultBaseNs;
    EXPECT_GT(res.latencyNs, zram_like);
}

TEST(FlashSwap, ExhaustedSwapSpaceLosesPages)
{
    SchemeHarness h(4096);
    FlashSwapConfig cfg;
    cfg.flashBytes = 8 * pageSize;
    FlashSwapScheme swap(h.context(), cfg);
    h.admitPages(swap, 1, 64);
    swap.reclaim(64, false);
    EXPECT_EQ(swap.lostPages(), 64u - 8u);
}

TEST(FlashSwap, CpuYieldsDuringIo)
{
    // SWAP's kswapd CPU is submission only (Fig. 3's low SWAP bar).
    SchemeHarness h(256);
    FlashSwapScheme swap(h.context(), smallConfig());
    h.admitPages(swap, 1, 32);
    swap.reclaim(32, false);
    EXPECT_EQ(h.cpu.total(CpuRole::Compression), 0u);
    EXPECT_EQ(h.cpu.total(CpuRole::IoSubmit),
              32 * h.timing.params().flashSubmitCpuNs);
}

TEST(FlashSwap, FreeReleasesFlashSlot)
{
    SchemeHarness h(256);
    FlashSwapScheme swap(h.context(), smallConfig());
    auto pages = h.admitPages(swap, 1, 2);
    swap.reclaim(2, false);
    swap.onFree(*pages[0]);
    EXPECT_EQ(swap.flash()->liveBytes(), pageSize);
}
