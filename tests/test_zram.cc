/** @file Unit tests for the baseline ZRAM scheme. */

#include <gtest/gtest.h>

#include "scheme_test_util.hh"
#include "swap/zram.hh"

using namespace ariadne;
using namespace ariadne::testutil;

namespace
{

ZramConfig
smallConfig(bool writeback = false)
{
    ZramConfig cfg;
    cfg.zpoolBytes = 512 * pageSize;
    cfg.flashBytes = 1024 * pageSize;
    cfg.writeback = writeback;
    cfg.proactiveFraction = 0.0; // unit tests drive reclaim directly
    return cfg;
}

} // namespace

TEST(Zram, ReclaimCompressesLruVictims)
{
    SchemeHarness h(256);
    ZramScheme zram(h.context(), smallConfig());
    auto pages = h.admitPages(zram, 1, 64);
    std::size_t freed = zram.reclaim(16, false);
    EXPECT_EQ(freed, 16u);
    EXPECT_EQ(h.dram.usedPages(), 48u);
    // LRU: the earliest-admitted pages were compressed first.
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(h.arena.location(*pages[i]), PageLocation::Zpool) << i;
    for (std::size_t i = 16; i < 64; ++i)
        EXPECT_EQ(h.arena.location(*pages[i]), PageLocation::Resident) << i;
    EXPECT_EQ(zram.totalStats().compOps, 16u);
    EXPECT_GT(zram.zpool()->storedBytes(), 0u);
}

TEST(Zram, AppGroupingEvictsOldestAppFirst)
{
    SchemeHarness h(512);
    ZramScheme zram(h.context(), smallConfig());
    h.admitPages(zram, 1, 32, Hotness::Cold, 0);
    h.clock.advance(1000);
    auto app2 = h.admitPages(zram, 2, 32, Hotness::Cold, 0);
    zram.reclaim(32, false);
    // All 32 victims came from app 1 (least recently used app).
    for (PageMeta *p : app2)
        EXPECT_EQ(h.arena.location(*p), PageLocation::Resident);
    EXPECT_EQ(zram.appStats(1).compOps, 32u);
    EXPECT_EQ(zram.appStats(2).compOps, 0u);
}

TEST(Zram, SwapInRestoresResidency)
{
    SchemeHarness h(256);
    ZramScheme zram(h.context(), smallConfig());
    auto pages = h.admitPages(zram, 1, 8);
    zram.reclaim(8, false);
    ASSERT_EQ(h.arena.location(*pages[0]), PageLocation::Zpool);

    Tick before = h.clock.now();
    SwapInResult res = zram.swapIn(*pages[0]);
    EXPECT_EQ(h.arena.location(*pages[0]), PageLocation::Resident);
    EXPECT_GT(res.latencyNs, 0u);
    EXPECT_EQ(h.clock.now() - before, res.latencyNs);
    EXPECT_FALSE(res.fromFlash);
    EXPECT_EQ(zram.totalStats().decompOps, 1u);
}

TEST(Zram, SwapInTriggersDirectReclaimWhenFull)
{
    SchemeHarness h(64);
    ZramScheme zram(h.context(), smallConfig());
    auto pages = h.admitPages(zram, 1, 64); // memory exactly full
    zram.reclaim(1, false);
    ASSERT_EQ(h.dram.freePages(), 1u);
    h.dram.allocate(1); // simulate another consumer taking the page
    SwapInResult res = zram.swapIn(*pages[0]);
    EXPECT_EQ(h.arena.location(*pages[0]), PageLocation::Resident);
    EXPECT_GE(zram.directReclaims(), 1u);
    EXPECT_GT(res.latencyNs, 0u);
}

TEST(Zram, ZpoolOverflowDropsOldestWithoutWriteback)
{
    SchemeHarness h(4096);
    ZramConfig cfg = smallConfig(false);
    cfg.zpoolBytes = 16 * pageSize; // tiny pool
    ZramScheme zram(h.context(), cfg);
    h.admitPages(zram, 1, 256);
    zram.reclaim(256, false);
    EXPECT_GT(zram.lostPages(), 0u);
}

TEST(Zram, ZswapWritebackSpillsToFlash)
{
    SchemeHarness h(4096);
    ZramConfig cfg = smallConfig(true);
    cfg.zpoolBytes = 16 * pageSize;
    ZramScheme zram(h.context(), cfg);
    auto pages = h.admitPages(zram, 1, 256);
    zram.reclaim(256, false);
    EXPECT_EQ(zram.lostPages(), 0u);
    ASSERT_NE(zram.flash(), nullptr);
    EXPECT_GT(zram.flash()->hostWriteBytes(), 0u);

    // A page that went to flash swaps back in with the flash flag.
    PageMeta *flash_page = nullptr;
    for (PageMeta *p : pages) {
        if (h.arena.location(*p) == PageLocation::Flash) {
            flash_page = p;
            break;
        }
    }
    ASSERT_NE(flash_page, nullptr);
    SwapInResult res = zram.swapIn(*flash_page);
    EXPECT_TRUE(res.fromFlash);
    EXPECT_EQ(h.arena.location(*flash_page), PageLocation::Resident);
}

TEST(Zram, CompressionLogRecordsTruth)
{
    SchemeHarness h(256);
    ZramScheme zram(h.context(), smallConfig());
    h.admitPages(zram, 1, 4, Hotness::Hot);
    h.admitPages(zram, 1, 4, Hotness::Cold, 100);
    zram.reclaim(8, false);
    ASSERT_EQ(zram.compressionLog().size(), 8u);
    // Admission order = eviction order: hot pages logged first.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(zram.compressionLog()[i].truthAtCompression,
                  Hotness::Hot);
    }
}

TEST(Zram, SectorLogTracksFaults)
{
    SchemeHarness h(256);
    ZramScheme zram(h.context(), smallConfig());
    auto pages = h.admitPages(zram, 1, 8);
    zram.reclaim(8, false);
    zram.swapIn(*pages[0]);
    zram.swapIn(*pages[1]);
    ASSERT_EQ(zram.sectorAccessLog().size(), 2u);
    // Consecutive LRU victims got consecutive sectors.
    EXPECT_EQ(zram.sectorAccessLog()[1],
              zram.sectorAccessLog()[0] + 1);
    zram.clearLogs();
    EXPECT_TRUE(zram.sectorAccessLog().empty());
}

TEST(Zram, ProactiveBackgroundCompression)
{
    SchemeHarness h(512);
    ZramConfig cfg = smallConfig();
    cfg.proactiveFraction = 0.5;
    ZramScheme zram(h.context(), cfg);
    h.admitPages(zram, 1, 100);
    EXPECT_EQ(zram.backgroundReclaimCpuNs(), 0u);
    zram.onBackground(1);
    EXPECT_EQ(zram.totalStats().compOps, 50u);
    EXPECT_GT(zram.backgroundReclaimCpuNs(), 0u);
    EXPECT_EQ(h.dram.usedPages(), 50u);
}

TEST(Zram, OnFreeReleasesEverywhere)
{
    SchemeHarness h(256);
    ZramScheme zram(h.context(), smallConfig());
    auto pages = h.admitPages(zram, 1, 4);
    zram.reclaim(2, false);
    std::size_t stored = zram.zpool()->storedBytes();
    zram.onFree(*pages[0]); // compressed page
    EXPECT_LT(zram.zpool()->storedBytes(), stored);
    zram.onFree(*pages[3]); // resident page
    EXPECT_EQ(h.dram.usedPages(), 1u);
}

TEST(Zram, AccountingChargesCpuRoles)
{
    SchemeHarness h(256);
    ZramScheme zram(h.context(), smallConfig());
    auto pages = h.admitPages(zram, 1, 8);
    zram.reclaim(8, false);
    EXPECT_GT(h.cpu.total(CpuRole::Compression), 0u);
    zram.swapIn(*pages[0]);
    EXPECT_GT(h.cpu.total(CpuRole::Decompression), 0u);
    EXPECT_GT(h.cpu.total(CpuRole::FaultPath), 0u);
}
