#include "sim/energy_model.hh"

namespace ariadne
{

double
EnergyModel::dynamicJoules(const ActivityTotals &a) const noexcept
{
    double cpu_j = prm.cpuActivePowerWatts *
                   (static_cast<double>(a.cpuBusyNs) / 1e9);
    double dram_j = prm.dramNjPerByte *
                    static_cast<double>(a.dramBytes) / 1e9;
    double fr_j = prm.flashReadNjPerByte *
                  static_cast<double>(a.flashReadBytes) / 1e9;
    double fw_j = prm.flashWriteNjPerByte *
                  static_cast<double>(a.flashWriteBytes) / 1e9;
    return cpu_j + dram_j + fr_j + fw_j;
}

double
EnergyModel::joules(const ActivityTotals &a) const noexcept
{
    double base_j = prm.basePowerWatts *
                    (static_cast<double>(a.wallTimeNs) / 1e9);
    return base_j + dynamicJoules(a);
}

} // namespace ariadne
