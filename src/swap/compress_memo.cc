#include "swap/compress_memo.hh"

#include <cassert>
#include <cstring>

#include "sim/types.hh"

namespace ariadne
{

namespace
{

/** splitmix64 finalizer — full avalanche over the folded state. */
std::uint64_t
avalanche(std::uint64_t h) noexcept
{
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

} // namespace

CompressionMemo::CompressionMemo(std::size_t slot_count)
    : entries(slot_count), mask(slot_count - 1)
{
    assert(slot_count != 0 && (slot_count & mask) == 0 &&
           "slot_count must be a power of two");
    // The content store (~slot_count * 4 KB) is allocated on first
    // insert: a worker that never compresses pays nothing.
}

std::uint64_t
CompressionMemo::fingerprint(ConstBytes page, CodecKind codec,
                             std::size_t chunk_bytes) const noexcept
{
    assert(page.size() == pageSize);
    // Multiply-xor fold, one 64-bit word at a time (pages are
    // word-multiple), seeded so the same bytes under a different
    // codec or chunking land in a different slot.
    std::uint64_t h =
        (std::uint64_t{static_cast<std::uint8_t>(codec)} << 32) ^
        chunk_bytes ^ 0x9e3779b97f4a7c15ULL;
    const std::uint8_t *p = page.data();
    for (std::size_t i = 0; i + 8 <= page.size(); i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, sizeof(w));
        h = (h ^ w) * 0x9e3779b97f4a7c15ULL;
    }
    return avalanche(h);
}

std::uint32_t
CompressionMemo::lookup(std::uint64_t fp, ConstBytes page) noexcept
{
    assert(page.size() == pageSize);
    std::size_t idx = static_cast<std::size_t>(fp) & mask;
    const Entry &e = entries[idx];
    if (e.used && e.fp == fp &&
        std::memcmp(contentAt(idx), page.data(), pageSize) == 0) {
        ++hitCount;
        return e.csize;
    }
    ++missCount;
    return notFound;
}

void
CompressionMemo::insert(std::uint64_t fp, ConstBytes page,
                        std::uint32_t csize)
{
    assert(page.size() == pageSize);
    std::size_t idx = static_cast<std::size_t>(fp) & mask;
    if (contents.empty())
        contents.resize(entries.size() * pageSize);
    Entry &e = entries[idx];
    if (!e.used)
        ++live;
    e = Entry{fp, csize, true};
    std::memcpy(contents.data() + idx * pageSize, page.data(),
                pageSize);
}

} // namespace ariadne
