/**
 * @file
 * ariadne_sim — config-driven fleet experiment runner.
 *
 * Runs a fleet of independent simulated devices through one scenario
 * config and reports aggregate percentiles, optionally as JSON:
 *
 *     ariadne_sim --config scenarios/daily.cfg --fleet 64 \
 *                 --threads 8 --json out.json
 *
 * or runs a multi-scenario sweep, comparing named variants side by
 * side in one report:
 *
 *     ariadne_sim --sweep scenarios/sweep_schemes.cfg --json out.json
 *
 * or replays a recorded trace — optionally under a *different*
 * registered scheme (what-if replay; the recorded workload stream is
 * re-run bit-identically), or under *every* registered scheme as one
 * side-by-side sweep:
 *
 *     ariadne_sim --record daily.trace --config scenarios/daily.cfg
 *     ariadne_sim --replay daily.trace --scheme zswap
 *     ariadne_sim --replay daily.trace --sweep-schemes
 *
 * Runs also distribute across processes/machines: each worker runs
 * one deterministic shard and writes a mergeable partial report, and
 * a merge folds the partials into the standard report — in exact
 * percentile mode byte-identical to the unsharded run:
 *
 *     ariadne_sim --config daily.cfg --shard 1/2 --partial a.json
 *     ariadne_sim --config daily.cfg --shard 2/2 --partial b.json
 *     ariadne_sim --merge a.json b.json -o report.json
 *
 * Aggregates are bit-identical regardless of --threads; every
 * session derives its seed from the scenario's base seed and its own
 * index, and sweep variants run in declaration order.
 */

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "driver/fleet_runner.hh"
#include "report/partial_report.hh"
#include "report/report_merger.hh"
#include "sim/log.hh"
#include "swap/scheme_registry.hh"
#include "telemetry/bench_report.hh"
#include "telemetry/journey.hh"
#include "telemetry/progress.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeline.hh"
#include "telemetry/trace_log.hh"
#include "workload/trace.hh"

using namespace ariadne;
using namespace ariadne::driver;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: ariadne_sim (--config FILE | --sweep FILE | "
          "--replay TRACE |\n"
          "                    --merge PARTIAL...) [options]\n"
          "\n"
          "options:\n"
          "  --config FILE    scenario config (one scenario; sweep "
          "configs are\n"
          "                   auto-detected and run as sweeps)\n"
          "  --sweep FILE     sweep config (named variants, one "
          "side-by-side report)\n"
          "  --replay TRACE   replay a recorded trace (shorthand for "
          "a config with\n"
          "                   `workload = trace` and `trace = "
          "TRACE`)\n"
          "  --scheme NAME    what-if replay: re-run the recorded "
          "workload under\n"
          "                   registered scheme NAME instead of the "
          "recorded one\n"
          "                   (--replay only; see --list-schemes)\n"
          "  --sweep-schemes  what-if sweep: replay the trace under "
          "every registered\n"
          "                   scheme as sweep variants in one "
          "side-by-side report\n"
          "                   (--replay only)\n"
          "  --shard I/N      run only shard I of N (fleets: a "
          "contiguous session\n"
          "                   range; sweeps: round-robin variants) "
          "and write the\n"
          "                   mergeable partial report to --partial. "
          "Merging all N\n"
          "                   partials reproduces the unsharded "
          "report —\n"
          "                   byte-identically with `percentiles = "
          "exact`\n"
          "  --partial FILE   partial-report destination for --shard "
          "('-' = stdout)\n"
          "  --merge P...     fold partial reports (one per shard) "
          "into the final\n"
          "                   report; write it with -o/--json\n"
          "  -o FILE          alias of --json\n"
          "  --fleet N        session count (default: the config's "
          "fleet size)\n"
          "  --threads T      worker threads (default 1; 0 = hardware "
          "count)\n"
          "  --record FILE    record the run as a replayable trace "
          "(--config or\n"
          "                   --replay; forces one worker). Replay it "
          "with --replay\n"
          "                   FILE — the replayed report is "
          "byte-identical to the\n"
          "                   recorded one\n"
          "  --json FILE      write the aggregate report as JSON "
          "('-' = stdout)\n"
          "  --per-session    include per-session records in the JSON\n"
          "  --print-config   echo the parsed config and exit\n"
          "  --list-events    document the event vocabulary and exit\n"
          "  --list-schemes   list every registered scheme with its "
          "knob schema\n"
          "  --metrics FILE   write the run's telemetry counters, "
          "durations,\n"
          "                   gauges and histograms as JSON ('-' = "
          "stdout;\n"
          "                   out-of-band: the report is "
          "byte-identical with\n"
          "                   or without it)\n"
          "  --timeline FILE  write sampled gauge time-series as JSON "
          "('-' =\n"
          "                   stdout; one point per "
          "timeline_interval_ms of\n"
          "                   simulated time per session)\n"
          "  --journeys FILE  write sampled page-lifecycle journeys "
          "as JSON\n"
          "                   ('-' = stdout; every journey_sample-th "
          "page,\n"
          "                   chosen deterministically by page key). "
          "With\n"
          "                   --trace-events the journeys also appear "
          "as\n"
          "                   instant events on synthetic trace "
          "threads\n"
          "  --trace-events FILE\n"
          "                   write a Chrome trace-event timeline of "
          "the run\n"
          "                   (load it in Perfetto or "
          "chrome://tracing)\n"
          "  --progress       live heartbeat lines on stderr "
          "(sessions done,\n"
          "                   sessions/sec, ETA)\n"
          "  --quiet          suppress the human-readable summary and "
          "all\n"
          "                   log output\n"
          "  -v, -vv          raise log verbosity (info / debug)\n"
          "  --help           this message\n";
}

void
listEvents(std::ostream &os)
{
    os << "Scenario event vocabulary (one `event = ...` line each; "
          "durations take ns/us/ms/s suffixes):\n"
          "\n"
          "  launch APP               cold-launch APP\n"
          "  execute APP DURATION     run APP in the foreground\n"
          "  background APP           move APP to the background\n"
          "  relaunch APP             hot-relaunch APP and measure it\n"
          "                           (first visit cold-launches "
          "unmeasured)\n"
          "  idle DURATION            idle wall time (kswapd catches "
          "up)\n"
          "  warmup                   launch-use-background every app\n"
          "  switch_next USE GAP      round-robin: relaunch next app, "
          "use USE,\n"
          "                           background, idle GAP\n"
          "  target_scenario APP V    the paper's SS5 measured-relaunch "
          "trace,\n"
          "                           usage-order variant V\n"
          "  prepare_target APP V     target_scenario minus the "
          "measured relaunch\n"
          "  light_usage DURATION [GAP]\n"
          "                           Table 2 light mix (round-robin "
          "switches with\n"
          "                           an intermission; GAP defaults to "
          "1s)\n"
          "  heavy_usage DURATION     Table 2 heavy mix (continuous "
          "switches)\n"
          "  repeat N ... end         run the enclosed block N times "
          "(nestable)\n"
          "\n"
          "Sweep configs add `sweep = NAME` and `variant = NAME` "
          "section lines;\n"
          "lines before the first variant form the base scenario every "
          "variant\n"
          "inherits, and a variant that declares events replaces the "
          "base program.\n"
          "\n"
          "Workload sources (`workload = profiles|trace|synthetic`, "
          "default profiles):\n"
          "\n"
          "  profiles    run the event program over the `apps` mix "
          "(the default)\n"
          "  trace       replay a recorded trace bit-identically; "
          "needs `trace = FILE`\n"
          "              (record one with --record). A `scheme = "
          "NAME` line (plus\n"
          "              scheme.* knobs) re-runs the recorded "
          "workload under another\n"
          "              scheme (what-if replay); no other keys are "
          "allowed\n"
          "  synthetic   generate a heterogeneous user population; "
          "each session\n"
          "              draws its own app subset, footprint spread "
          "and switch-rate\n"
          "              class from the population_* keys:\n"
          "                population_apps_per_user    apps per user "
          "(0 = all)\n"
          "                population_footprint_spread volume spread "
          "in [0, 1)\n"
          "                population_light_share      share of light "
          "users\n"
          "                population_heavy_share      share of heavy "
          "users\n"
          "                population_switches         switches per "
          "regular user\n"
          "                population_use              foreground use "
          "per switch\n"
          "                population_gap              intermission "
          "per switch\n";
}

/** Registry-driven scheme listing (--list-schemes). */
void
listSchemes(std::ostream &os)
{
    os << "Registered swap schemes (select one with `scheme = NAME`; "
          "set policy knobs\n"
          "with namespaced `scheme.<knob> = value` lines, or replay "
          "a recorded trace\n"
          "under another scheme with `--replay TRACE --scheme "
          "NAME`):\n";
    for (const SchemeInfo *info :
         SchemeRegistry::instance().infos()) {
        os << "\n  " << info->key << " (" << info->displayName
           << ")\n      " << info->description << "\n";
        if (info->knobs.empty()) {
            os << "      (no knobs)\n";
            continue;
        }
        for (const SchemeKnob &knob : info->knobs) {
            os << "      scheme." << knob.name << " = <" << knob.type
               << ">  [default " << knob.defaultValue << "]\n"
               << "          " << knob.description << "\n";
        }
    }
    os << "\nDeprecated flat aliases still accepted: `ariadne` -> "
          "`scheme.config`,\n"
          "`seed_profiles`, `predecomp`, `hot_init_pages` -> the "
          "scheme.* knobs of the\n"
          "same name (dropped when the selected scheme lacks the "
          "knob).\n";
}

struct Options
{
    std::string configPath;
    std::string sweepPath;
    std::string replayPath;
    std::string schemeName;
    bool sweepSchemes = false;
    std::size_t fleet = 0;   // 0 = use the spec's
    unsigned threads = 1;
    std::string jsonPath;
    std::string recordPath;
    bool sharded = false;
    report::ShardPlan shard;
    std::string partialPath;
    bool mergeMode = false;
    std::vector<std::string> mergeInputs;
    bool perSession = false;
    bool printConfig = false;
    bool quiet = false;
    int verbosity = 0; // count of -v (1 = info, 2+ = debug)
    std::string metricsPath;
    std::string traceEventsPath;
    std::string timelinePath;
    std::string journeysPath;
    bool progress = false;
};

/**
 * Stream for human-readable status output. A '-' path (`--json -`,
 * `--partial -`, `--metrics -`, `--timeline -`, `--journeys -`) hands
 * stdout to a JSON consumer, so every summary, status line and
 * heartbeat must go to stderr to keep the stream pure JSON.
 */
std::ostream &
statusStream(const Options &opt)
{
    if (opt.jsonPath == "-" || opt.partialPath == "-" ||
        opt.metricsPath == "-" || opt.timelinePath == "-" ||
        opt.journeysPath == "-")
        return std::cerr;
    return std::cout;
}

/** Parse argv; returns false (after printing a message) on error. */
bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need_value = [&](int i, const char *flag) {
        if (i + 1 >= argc) {
            std::cerr << "ariadne_sim: " << flag
                      << " needs a value\n";
            return false;
        }
        return true;
    };
    auto parse_count = [](const char *flag, const char *text,
                          unsigned long &out) {
        // Digits only: stoul would happily wrap "-1" to a huge value.
        std::string s(text);
        if (!s.empty() &&
            std::all_of(s.begin(), s.end(), [](unsigned char c) {
                return std::isdigit(c);
            })) {
            try {
                out = std::stoul(s);
                return true;
            } catch (const std::out_of_range &) {
            }
        }
        std::cerr << "ariadne_sim: " << flag
                  << " needs a non-negative integer, got '" << text
                  << "'\n";
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            usage(std::cout);
            std::exit(0);
        } else if (!std::strcmp(arg, "--list-events")) {
            listEvents(std::cout);
            std::exit(0);
        } else if (!std::strcmp(arg, "--list-schemes")) {
            listSchemes(std::cout);
            std::exit(0);
        } else if (!std::strcmp(arg, "--config")) {
            if (!need_value(i, arg))
                return false;
            opt.configPath = argv[++i];
        } else if (!std::strcmp(arg, "--sweep")) {
            if (!need_value(i, arg))
                return false;
            opt.sweepPath = argv[++i];
        } else if (!std::strcmp(arg, "--replay")) {
            if (!need_value(i, arg))
                return false;
            opt.replayPath = argv[++i];
        } else if (!std::strcmp(arg, "--scheme")) {
            if (!need_value(i, arg))
                return false;
            opt.schemeName = argv[++i];
        } else if (!std::strcmp(arg, "--sweep-schemes")) {
            opt.sweepSchemes = true;
        } else if (!std::strcmp(arg, "--shard")) {
            if (!need_value(i, arg))
                return false;
            try {
                opt.shard = report::ShardPlan::parse(argv[++i]);
            } catch (const report::ReportError &e) {
                std::cerr << "ariadne_sim: --shard: " << e.what()
                          << "\n";
                return false;
            }
            opt.sharded = true;
        } else if (!std::strcmp(arg, "--partial")) {
            if (!need_value(i, arg))
                return false;
            opt.partialPath = argv[++i];
        } else if (!std::strcmp(arg, "--merge")) {
            opt.mergeMode = true;
            // Consume the run of partial-report paths that follows.
            while (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) &&
                   std::strcmp(argv[i + 1], "-o"))
                opt.mergeInputs.push_back(argv[++i]);
        } else if (!std::strcmp(arg, "--fleet")) {
            if (!need_value(i, arg))
                return false;
            unsigned long v = 0;
            if (!parse_count(arg, argv[++i], v))
                return false;
            opt.fleet = v;
        } else if (!std::strcmp(arg, "--threads")) {
            if (!need_value(i, arg))
                return false;
            unsigned long v = 0;
            if (!parse_count(arg, argv[++i], v))
                return false;
            opt.threads = static_cast<unsigned>(v);
        } else if (!std::strcmp(arg, "--record")) {
            if (!need_value(i, arg))
                return false;
            opt.recordPath = argv[++i];
        } else if (!std::strcmp(arg, "--json") ||
                   !std::strcmp(arg, "-o")) {
            if (!need_value(i, arg))
                return false;
            opt.jsonPath = argv[++i];
        } else if (!std::strcmp(arg, "--per-session")) {
            opt.perSession = true;
        } else if (!std::strcmp(arg, "--print-config")) {
            opt.printConfig = true;
        } else if (!std::strcmp(arg, "--quiet")) {
            opt.quiet = true;
        } else if (!std::strcmp(arg, "-v")) {
            opt.verbosity = std::max(opt.verbosity, 1);
        } else if (!std::strcmp(arg, "-vv")) {
            opt.verbosity = std::max(opt.verbosity, 2);
        } else if (!std::strcmp(arg, "--metrics")) {
            if (!need_value(i, arg))
                return false;
            opt.metricsPath = argv[++i];
        } else if (!std::strcmp(arg, "--trace-events")) {
            if (!need_value(i, arg))
                return false;
            opt.traceEventsPath = argv[++i];
        } else if (!std::strcmp(arg, "--timeline")) {
            if (!need_value(i, arg))
                return false;
            opt.timelinePath = argv[++i];
        } else if (!std::strcmp(arg, "--journeys")) {
            if (!need_value(i, arg))
                return false;
            opt.journeysPath = argv[++i];
        } else if (!std::strcmp(arg, "--progress")) {
            opt.progress = true;
        } else {
            std::cerr << "ariadne_sim: unknown option '" << arg
                      << "'\n";
            usage(std::cerr);
            return false;
        }
    }
    int sources = (opt.configPath.empty() ? 0 : 1) +
                  (opt.sweepPath.empty() ? 0 : 1) +
                  (opt.replayPath.empty() ? 0 : 1) +
                  (opt.mergeMode ? 1 : 0);
    if (sources != 1) {
        std::cerr << "ariadne_sim: exactly one of --config / --sweep "
                     "/ --replay / --merge is required\n";
        usage(std::cerr);
        return false;
    }
    if (opt.mergeMode) {
        if (opt.mergeInputs.empty()) {
            std::cerr << "ariadne_sim: --merge needs at least one "
                         "partial report file (one per shard)\n";
            usage(std::cerr);
            return false;
        }
        if (opt.sharded || !opt.partialPath.empty() ||
            !opt.recordPath.empty() || opt.perSession) {
            std::cerr << "ariadne_sim: --merge only folds existing "
                         "partial reports; it cannot combine with "
                         "--shard, --partial, --record or "
                         "--per-session\n";
            return false;
        }
    }
    if (!opt.schemeName.empty() && opt.replayPath.empty()) {
        std::cerr << "ariadne_sim: --scheme is a what-if replay "
                     "override and requires --replay (put a `scheme "
                     "= ...` line in the config otherwise)\n";
        return false;
    }
    if (opt.sweepSchemes && opt.replayPath.empty()) {
        std::cerr << "ariadne_sim: --sweep-schemes replays a recorded "
                     "trace under every registered scheme and "
                     "requires --replay\n";
        return false;
    }
    if (opt.sweepSchemes && !opt.schemeName.empty()) {
        std::cerr << "ariadne_sim: --sweep-schemes already replays "
                     "under every scheme; drop --scheme\n";
        return false;
    }
    if (opt.sharded && opt.partialPath.empty()) {
        std::cerr << "ariadne_sim: --shard writes a mergeable partial "
                     "report; add --partial FILE ('-' = stdout)\n";
        return false;
    }
    if (!opt.partialPath.empty() && !opt.sharded) {
        std::cerr << "ariadne_sim: --partial requires --shard I/N "
                     "(an unsharded run writes a final report with "
                     "--json)\n";
        return false;
    }
    if (opt.sharded &&
        (!opt.recordPath.empty() || !opt.jsonPath.empty() ||
         opt.perSession)) {
        std::cerr << "ariadne_sim: --shard produces a partial report "
                     "only; it cannot combine with --record, --json "
                     "or --per-session (merge the partials for the "
                     "final report)\n";
        return false;
    }
    if (!opt.recordPath.empty() && !opt.sweepPath.empty()) {
        std::cerr << "ariadne_sim: --record works with --config or "
                     "--replay only (record each sweep variant "
                     "separately)\n";
        return false;
    }
    if (!opt.recordPath.empty() && opt.sweepSchemes) {
        std::cerr << "ariadne_sim: --record works on single runs, not "
                     "the --sweep-schemes what-if sweep\n";
        return false;
    }
    if (!opt.recordPath.empty() && opt.threads != 1) {
        std::cerr << "ariadne_sim: --record forces --threads 1 (the "
                     "trace serializes sessions in index order)\n";
        opt.threads = 1;
    }
    int stdout_claims = (opt.jsonPath == "-" ? 1 : 0) +
                        (opt.partialPath == "-" ? 1 : 0) +
                        (opt.metricsPath == "-" ? 1 : 0) +
                        (opt.timelinePath == "-" ? 1 : 0) +
                        (opt.journeysPath == "-" ? 1 : 0) +
                        (opt.traceEventsPath == "-" ? 1 : 0);
    if (stdout_claims > 1) {
        std::cerr << "ariadne_sim: only one artifact can stream to "
                     "stdout ('-'); give the others real paths\n";
        return false;
    }
    return true;
}

std::vector<std::string>
summaryRow(const std::string &name, const MetricSummary &m, int prec)
{
    return {name,
            std::to_string(m.samples),
            ReportTable::num(m.mean, prec),
            ReportTable::num(m.p50, prec),
            ReportTable::num(m.p90, prec),
            ReportTable::num(m.p99, prec),
            ReportTable::num(m.min, prec),
            ReportTable::num(m.max, prec)};
}

void
printSummary(std::ostream &os, const FleetResult &r)
{
    printBanner(os, "ariadne_sim: scenario '" + r.scenario + "' — " +
                        r.scheme +
                        (r.ariadneConfig.empty()
                             ? ""
                             : " (" + r.ariadneConfig + ")"));
    os << "fleet " << r.fleet << ", base seed " << r.seed << ", scale "
       << r.scale;
    if (r.percentiles == PercentileMode::Sketch)
        os << ", sketch percentiles (rank-error bounds in the JSON "
              "report)";
    os << "\n\n";

    ReportTable table({"metric", "n", "mean", "p50", "p90", "p99",
                       "min", "max"});
    table.addRow(summaryRow("relaunch latency (ms)", r.relaunchMs, 1));
    table.addRow(
        summaryRow("comp+decomp CPU (ms)", r.compDecompCpuMs, 1));
    table.addRow(summaryRow("kswapd CPU (ms)", r.kswapdCpuMs, 1));
    table.addRow(summaryRow("energy (J)", r.energyJ, 2));
    table.addRow(summaryRow("compression ratio", r.compRatio, 2));
    table.print(os);

    os << "\nrelaunches " << r.totalRelaunches << ", staged hits "
       << r.totalStagedHits << ", major faults " << r.totalMajorFaults
       << ", flash faults " << r.totalFlashFaults << ", lost pages "
       << r.totalLostPages << "\n";
}

void
printSweepSummary(std::ostream &os, const SweepResult &r)
{
    printBanner(os, "ariadne_sim: sweep '" + r.name + "' — " +
                        std::to_string(r.variants.size()) +
                        " variant(s)");

    ReportTable table({"variant", "scheme", "fleet", "relaunch p50",
                       "p90", "p99", "cpu mean (ms)", "energy (J)",
                       "ratio"});
    for (const FleetResult &v : r.variants) {
        std::string scheme = v.scheme;
        if (!v.ariadneConfig.empty())
            scheme += " (" + v.ariadneConfig + ")";
        table.addRow({v.scenario, scheme, std::to_string(v.fleet),
                      ReportTable::num(v.relaunchMs.p50, 1),
                      ReportTable::num(v.relaunchMs.p90, 1),
                      ReportTable::num(v.relaunchMs.p99, 1),
                      ReportTable::num(v.compDecompCpuMs.mean, 1),
                      ReportTable::num(v.energyJ.mean, 2),
                      ReportTable::num(v.compRatio.mean, 2)});
    }
    table.print(os);
}

/** Write the report to --json's target; returns the exit code. */
template <typename Result>
int
emitJson(const Options &opt, const Result &result)
{
    if (opt.jsonPath.empty())
        return 0;
    if (opt.jsonPath == "-") {
        result.writeJson(std::cout, opt.perSession);
        return 0;
    }
    std::ofstream out(opt.jsonPath);
    if (!out) {
        std::cerr << "ariadne_sim: cannot write " << opt.jsonPath
                  << "\n";
        return 1;
    }
    result.writeJson(out, opt.perSession);
    if (!opt.quiet)
        statusStream(opt) << "\nJSON report written to " << opt.jsonPath
                          << "\n";
    return 0;
}

/** Write a shard's partial report; returns the exit code. */
int
emitPartial(const Options &opt, const report::PartialReport &p)
{
    if (opt.partialPath == "-") {
        p.writeJson(std::cout);
        return 0;
    }
    std::ofstream out(opt.partialPath);
    if (!out) {
        std::cerr << "ariadne_sim: cannot write " << opt.partialPath
                  << "\n";
        return 1;
    }
    p.writeJson(out);
    if (!opt.quiet)
        statusStream(opt) << "partial report (shard "
                          << p.shard.toString() << ") written to "
                          << opt.partialPath << "\n";
    return 0;
}

/**
 * Arm telemetry and the progress meter for a run of @p total sessions
 * (0 = unknown) labeled @p label. Called after config parsing so a
 * usage error never produces telemetry files. @p journey_sample is
 * the scenario's journey_sample knob (sample every K-th page).
 */
void
startObservability(const Options &opt, std::uint64_t total,
                   const std::string &label,
                   std::uint64_t journey_sample)
{
    if (!opt.metricsPath.empty())
        telemetry::setEnabled(true);
    if (!opt.traceEventsPath.empty()) {
        telemetry::setEnabled(true);
        telemetry::setTraceEnabled(true);
    }
    if (!opt.timelinePath.empty()) {
        // Gauge sampling rides the telemetry master switch; the
        // timeline switch additionally records each sample as a
        // time-series point.
        telemetry::setEnabled(true);
        telemetry::setTimelineEnabled(true);
    }
    if (!opt.journeysPath.empty())
        telemetry::setJourneyEnabled(true, journey_sample);
    if (opt.progress)
        telemetry::ProgressMeter::global().enable(total, label);
}

/** Write one out-of-band JSON artifact to @p path ('-' = stdout);
 * returns 1 on an unwritable path, else 0. */
template <typename WriteFn>
int
emitArtifact(const std::string &path, WriteFn &&write)
{
    if (path == "-") {
        write(std::cout);
        return 0;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "ariadne_sim: cannot write " << path << "\n";
        return 1;
    }
    write(out);
    return 0;
}

/**
 * Inject the recorded page journeys into the Chrome trace as instant
 * events, one synthetic thread per session so each session's journeys
 * form their own named track. Journey timestamps are *simulated* ns
 * (host-time spans and sim-time instants share the timeline; the
 * track name flags the difference).
 */
void
injectJourneysIntoTrace()
{
    telemetry::TraceLog &log = telemetry::TraceLog::global();
    for (const telemetry::JourneyLog::Event &e :
         telemetry::JourneyLog::global().events()) {
        std::uint32_t tid = 1000 + e.session;
        log.nameSyntheticThread(
            tid, "journeys session " + std::to_string(e.session));
        std::string name = "u" + std::to_string(e.uid) + ".p" +
                           std::to_string(e.pfn) + " " +
                           telemetry::journeyStepName(e.step);
        log.instant(std::move(name), e.tNs, tid,
                    e.detail ? "detail" : nullptr, e.detail);
    }
}

/**
 * Emit the out-of-band artifacts (--metrics / --timeline / --journeys
 * / --trace-events) and the final progress line. Never touches stdout
 * unless an artifact path is explicitly '-'; returns 1 on an
 * unwritable path. @p interval_ms is the run's sampling cadence for
 * the timeline header (0 = mixed/unknown, e.g. across sweep
 * variants); @p journey_sample its sampling stride.
 */
int
finishObservability(const Options &opt, const std::string &scenario,
                    const std::string &spec_text,
                    std::uint64_t interval_ms,
                    std::uint64_t journey_sample)
{
    if (opt.progress) {
        telemetry::ProgressMeter::global().finish();
        telemetry::ProgressMeter::global().disable();
    }
    telemetry::RunMeta meta = telemetry::RunMeta::current();
    meta.threads = opt.threads;
    meta.scenario = scenario;
    meta.scenarioHash =
        spec_text.empty() ? 0 : report::fnv1a64(spec_text);
    int rc = 0;
    if (!opt.metricsPath.empty()) {
        rc |= emitArtifact(opt.metricsPath, [&](std::ostream &os) {
            telemetry::writeMetricsJson(
                os, meta, telemetry::Registry::global().snapshot());
        });
    }
    if (!opt.timelinePath.empty()) {
        rc |= emitArtifact(opt.timelinePath, [&](std::ostream &os) {
            telemetry::writeTimelineJson(os, meta, interval_ms);
        });
    }
    if (!opt.journeysPath.empty()) {
        rc |= emitArtifact(opt.journeysPath, [&](std::ostream &os) {
            telemetry::writeJourneysJson(os, meta, journey_sample);
        });
    }
    if (!opt.traceEventsPath.empty()) {
        if (telemetry::journeyEnabled())
            injectJourneysIntoTrace();
        std::ofstream out(opt.traceEventsPath);
        if (!out) {
            std::cerr << "ariadne_sim: cannot write "
                      << opt.traceEventsPath << "\n";
            rc = 1;
        } else {
            telemetry::TraceLog::global().writeChromeTrace(out);
        }
    }
    return rc;
}

/** The spec a run executes: the --config file, or the --replay
 * trace reference with its optional --scheme what-if override. */
ScenarioSpec
loadSpec(const Options &opt)
{
    if (opt.replayPath.empty())
        return ScenarioSpec::loadFile(opt.configPath);
    ScenarioSpec spec;
    spec.workload = WorkloadKind::Trace;
    spec.tracePath = opt.replayPath;
    if (!opt.schemeName.empty())
        spec.replayScheme = parseSchemeName(opt.schemeName);
    return spec;
}

int
runScenario(const Options &opt)
{
    ScenarioSpec spec = loadSpec(opt);
    if (opt.printConfig) {
        std::cout << spec.toString();
        return 0;
    }
    FleetRunner runner(std::move(spec));
    // For trace replays spec().fleet is the recorded fleet, so the
    // progress total is right in every mode.
    std::size_t fleet =
        opt.fleet ? opt.fleet : runner.spec().fleet;
    if (opt.sharded) {
        auto [begin, end] = opt.shard.sessionRange(fleet);
        startObservability(opt, end - begin,
                           "shard " + opt.shard.toString(),
                           runner.spec().journeySample);
        report::PartialReport part =
            runner.runShard(opt.shard, opt.fleet, opt.threads);
        if (!opt.quiet)
            statusStream(opt)
                << "shard " << part.shard.toString()
                << ": ran sessions [" << part.fleet.sessionsBegin
                << ", " << part.fleet.sessionsEnd << ") of fleet "
                << part.fleet.fleet << "\n";
        int rc = emitPartial(opt, part);
        int obs = finishObservability(opt, runner.spec().name,
                                      runner.spec().toString(),
                                      runner.spec().timelineIntervalMs,
                                      runner.spec().journeySample);
        return rc ? rc : obs;
    }
    startObservability(opt, fleet, runner.spec().name,
                       runner.spec().journeySample);
    // Sessions are only worth retaining when a JSON report will
    // actually carry them; otherwise streaming keeps memory bounded.
    bool keep = opt.perSession && !opt.jsonPath.empty();
    FleetResult result;
    if (opt.recordPath.empty()) {
        result = runner.run(opt.fleet, opt.threads, keep);
    } else {
        result = runner.runRecorded(opt.recordPath, opt.fleet, keep);
        if (!opt.quiet)
            statusStream(opt)
                << "trace recorded to " << opt.recordPath << "\n";
    }
    if (!opt.quiet)
        printSummary(statusStream(opt), result);
    int rc = emitJson(opt, result);
    int obs = finishObservability(opt, runner.spec().name,
                                  runner.spec().toString(),
                                  runner.spec().timelineIntervalMs,
                                  runner.spec().journeySample);
    return rc ? rc : obs;
}

int
runSweep(const Options &opt, const SweepSpec &sweep)
{
    if (opt.printConfig) {
        std::cout << sweep.toString();
        return 0;
    }
    // Sweep session totals are not known up front (variants may carry
    // their own fleet sizes); heartbeats omit percentage and ETA.
    // Variants may disagree on the sampling knobs, so the timeline
    // header reports a mixed cadence (0) and journeys use the default
    // stride.
    startObservability(opt, 0, sweep.name,
                       ScenarioSpec::defaultJourneySample);
    if (opt.sharded) {
        report::PartialReport part = FleetRunner::runSweepShard(
            sweep, opt.shard, opt.fleet, opt.threads);
        if (!opt.quiet)
            statusStream(opt)
                << "shard " << part.shard.toString() << ": ran "
                << part.variants.size() << " of " << part.variantCount
                << " variant(s)\n";
        int rc = emitPartial(opt, part);
        int obs = finishObservability(
            opt, sweep.name, sweep.toString(), 0,
            ScenarioSpec::defaultJourneySample);
        return rc ? rc : obs;
    }
    bool keep = opt.perSession && !opt.jsonPath.empty();
    SweepResult result =
        FleetRunner::runSweep(sweep, opt.fleet, opt.threads, keep);
    if (!opt.quiet)
        printSweepSummary(statusStream(opt), result);
    int rc = emitJson(opt, result);
    int obs = finishObservability(opt, sweep.name, sweep.toString(), 0,
                                  ScenarioSpec::defaultJourneySample);
    return rc ? rc : obs;
}

/**
 * The --sweep-schemes sweep: one variant per registered scheme, each
 * a what-if replay of the trace, so the side-by-side report compares
 * every scheme over the *identical* recorded workload stream.
 */
SweepSpec
schemeSweep(const std::string &trace_path)
{
    SweepSpec sweep;
    sweep.name = "whatif-schemes";
    for (const SchemeInfo *info : SchemeRegistry::instance().infos()) {
        ScenarioSpec variant;
        variant.name = info->key;
        variant.workload = WorkloadKind::Trace;
        variant.tracePath = trace_path;
        variant.replayScheme = info->key;
        sweep.variants.push_back(std::move(variant));
    }
    return sweep;
}

int
runMerge(const Options &opt)
{
    report::MergedReport merged =
        report::mergeReportFiles(opt.mergeInputs);
    if (merged.kind == report::PartialReport::Kind::Fleet) {
        if (!opt.quiet)
            printSummary(statusStream(opt), merged.fleet);
        return emitJson(opt, merged.fleet);
    }
    if (!opt.quiet)
        printSweepSummary(statusStream(opt), merged.sweep);
    return emitJson(opt, merged.sweep);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    // --quiet silences everything (including warnings) so scripted
    // pipelines get pure streams; -v / -vv raise verbosity.
    if (opt.quiet)
        setLogLevel(LogLevel::Silent);
    else if (opt.verbosity >= 2)
        setLogLevel(LogLevel::Debug);
    else if (opt.verbosity == 1)
        setLogLevel(LogLevel::Inform);

    // A sweep config handed to --config runs as a sweep: the two
    // formats share their grammar, so the section lines identify it.
    if (opt.sweepPath.empty() && !opt.configPath.empty()) {
        std::ifstream probe(opt.configPath);
        if (probe && looksLikeSweepConfig(probe)) {
            opt.sweepPath = opt.configPath;
            opt.configPath.clear();
        }
    }

    try {
        if (opt.mergeMode)
            return runMerge(opt);
        if (opt.sweepSchemes)
            return runSweep(opt, schemeSweep(opt.replayPath));
        if (!opt.sweepPath.empty())
            return runSweep(opt, SweepSpec::loadFile(opt.sweepPath));
        return runScenario(opt);
    } catch (const SpecError &e) {
        std::cerr << "ariadne_sim: " << e.what() << "\n";
        return 2;
    } catch (const TraceError &e) {
        std::cerr << "ariadne_sim: " << e.what() << "\n";
        return 2;
    } catch (const SchemeError &e) {
        std::cerr << "ariadne_sim: " << e.what() << "\n";
        return 2;
    } catch (const report::ReportError &e) {
        std::cerr << "ariadne_sim: " << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "ariadne_sim: " << e.what() << "\n";
        return 1;
    }
}
