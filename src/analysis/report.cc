#include "analysis/report.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace ariadne
{

ReportTable::ReportTable(std::vector<std::string> column_names)
    : header(std::move(column_names))
{
    fatalIf(header.empty(), "report table needs at least one column");
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != header.size(),
            "report row width does not match header");
    body.push_back(std::move(cells));
}

const std::vector<std::string> &
ReportTable::row(std::size_t i) const
{
    panicIf(i >= body.size(), "report row index out of range");
    return body[i];
}

std::string
ReportTable::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

void
ReportTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    print_row(header);
    std::size_t total = header.size() * 2 - 2;
    for (std::size_t w : widths)
        total += w;
    os << std::string(total, '-') << "\n";
    for (const auto &row : body)
        print_row(row);
}

void
ReportTable::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    print_row(header);
    for (const auto &row : body)
        print_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace ariadne
