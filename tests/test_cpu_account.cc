/** @file Unit tests for per-role CPU accounting. */

#include <gtest/gtest.h>

#include "sim/cpu_account.hh"

using namespace ariadne;

TEST(CpuAccount, StartsEmpty)
{
    CpuAccount acc;
    EXPECT_EQ(acc.grandTotal(), 0u);
    EXPECT_EQ(acc.total(CpuRole::Kswapd), 0u);
}

TEST(CpuAccount, ChargesPerRole)
{
    CpuAccount acc;
    acc.charge(CpuRole::Compression, 100);
    acc.charge(CpuRole::Decompression, 50);
    acc.charge(CpuRole::Compression, 25);
    EXPECT_EQ(acc.total(CpuRole::Compression), 125u);
    EXPECT_EQ(acc.total(CpuRole::Decompression), 50u);
    EXPECT_EQ(acc.grandTotal(), 175u);
}

TEST(CpuAccount, CompDecompTotal)
{
    CpuAccount acc;
    acc.charge(CpuRole::Compression, 10);
    acc.charge(CpuRole::Decompression, 20);
    acc.charge(CpuRole::Kswapd, 999);
    EXPECT_EQ(acc.compDecompTotal(), 30u);
}

TEST(CpuAccount, ResetClearsAll)
{
    CpuAccount acc;
    acc.charge(CpuRole::FaultPath, 42);
    acc.reset();
    EXPECT_EQ(acc.grandTotal(), 0u);
}

TEST(CpuAccount, RoleNamesAreStable)
{
    EXPECT_STREQ(cpuRoleName(CpuRole::Kswapd), "kswapd");
    EXPECT_STREQ(cpuRoleName(CpuRole::Compression), "compression");
    EXPECT_STREQ(cpuRoleName(CpuRole::Decompression), "decompression");
    EXPECT_STREQ(cpuRoleName(CpuRole::FaultPath), "faultPath");
    EXPECT_STREQ(cpuRoleName(CpuRole::AppExecution), "appExecution");
    EXPECT_STREQ(cpuRoleName(CpuRole::FileWriteback), "fileWriteback");
    EXPECT_STREQ(cpuRoleName(CpuRole::IoSubmit), "ioSubmit");
}
