/** @file Unit tests for the chunked compression framing. */

#include <gtest/gtest.h>

#include "codec_test_util.hh"
#include <cstring>

#include "compress/chunked.hh"
#include "compress/registry.hh"

using namespace ariadne;
using namespace ariadne::testutil;

namespace
{

std::vector<std::uint8_t>
frameRoundtrip(const Codec &codec, const std::vector<std::uint8_t> &src,
               std::size_t chunk, std::size_t *frame_size = nullptr)
{
    auto frame =
        ChunkedFrame::compress(codec, {src.data(), src.size()}, chunk);
    if (frame_size)
        *frame_size = frame.size();
    std::vector<std::uint8_t> out(src.size());
    std::size_t got = ChunkedFrame::decompress(
        codec, {frame.data(), frame.size()}, {out.data(), out.size()});
    out.resize(got);
    return out;
}

} // namespace

TEST(Chunked, EmptyInputMakesValidEmptyFrame)
{
    auto codec = makeCodec(CodecKind::Lz4);
    std::vector<std::uint8_t> src;
    auto frame = ChunkedFrame::compress(*codec, {src.data(), 0}, 4096);
    EXPECT_TRUE(ChunkedFrame::valid({frame.data(), frame.size()}));
    EXPECT_EQ(ChunkedFrame::originalSize({frame.data(), frame.size()}),
              0u);
    EXPECT_EQ(ChunkedFrame::chunkCount({frame.data(), frame.size()}),
              0u);
}

TEST(Chunked, RoundtripExactMultiple)
{
    auto codec = makeCodec(CodecKind::Lzo);
    auto src = mixedBuffer(8192, 1);
    EXPECT_EQ(frameRoundtrip(*codec, src, 2048), src);
}

TEST(Chunked, RoundtripWithTail)
{
    auto codec = makeCodec(CodecKind::Lz4);
    auto src = mixedBuffer(5000, 2); // not a multiple of 2048
    EXPECT_EQ(frameRoundtrip(*codec, src, 2048), src);
}

TEST(Chunked, HeaderFieldsCorrect)
{
    auto codec = makeCodec(CodecKind::Lz4);
    auto src = mixedBuffer(10000, 3);
    auto frame =
        ChunkedFrame::compress(*codec, {src.data(), src.size()}, 4096);
    ConstBytes f{frame.data(), frame.size()};
    EXPECT_TRUE(ChunkedFrame::valid(f));
    EXPECT_EQ(ChunkedFrame::originalSize(f), 10000u);
    EXPECT_EQ(ChunkedFrame::chunkBytes(f), 4096u);
    EXPECT_EQ(ChunkedFrame::chunkCount(f), 3u); // ceil(10000/4096)
}

TEST(Chunked, IncompressibleChunksStoredRaw)
{
    auto codec = makeCodec(CodecKind::Lz4);
    auto src = randomBuffer(16384, 4);
    std::size_t frame_size = 0;
    EXPECT_EQ(frameRoundtrip(*codec, src, 4096, &frame_size), src);
    // Raw storage bounds expansion to header + table.
    EXPECT_LE(frame_size,
              src.size() + ChunkedFrame::headerBytes + 4 * 4 + 4);
}

TEST(Chunked, DecompressSingleChunk)
{
    auto codec = makeCodec(CodecKind::Lzo);
    auto src = mixedBuffer(8192, 5);
    auto frame =
        ChunkedFrame::compress(*codec, {src.data(), src.size()}, 2048);
    for (std::size_t i = 0; i < 4; ++i) {
        std::vector<std::uint8_t> out(2048);
        std::size_t got = ChunkedFrame::decompressChunk(
            *codec, {frame.data(), frame.size()}, i,
            {out.data(), out.size()});
        ASSERT_EQ(got, 2048u);
        EXPECT_EQ(0, std::memcmp(out.data(), src.data() + i * 2048,
                                 2048));
    }
}

TEST(Chunked, DecompressChunkOutOfRange)
{
    auto codec = makeCodec(CodecKind::Lz4);
    auto src = mixedBuffer(4096, 6);
    auto frame =
        ChunkedFrame::compress(*codec, {src.data(), src.size()}, 4096);
    std::vector<std::uint8_t> out(4096);
    EXPECT_EQ(ChunkedFrame::decompressChunk(
                  *codec, {frame.data(), frame.size()}, 1,
                  {out.data(), out.size()}),
              0u);
}

TEST(Chunked, RejectsBadMagic)
{
    auto codec = makeCodec(CodecKind::Lz4);
    auto src = mixedBuffer(4096, 7);
    auto frame =
        ChunkedFrame::compress(*codec, {src.data(), src.size()}, 4096);
    frame[0] ^= 0xFF;
    std::vector<std::uint8_t> out(4096);
    EXPECT_EQ(ChunkedFrame::decompress(*codec,
                                       {frame.data(), frame.size()},
                                       {out.data(), out.size()}),
              0u);
    EXPECT_FALSE(ChunkedFrame::valid({frame.data(), frame.size()}));
}

TEST(Chunked, RejectsTruncatedFrames)
{
    auto codec = makeCodec(CodecKind::Lzo);
    auto src = mixedBuffer(8192, 8);
    auto frame =
        ChunkedFrame::compress(*codec, {src.data(), src.size()}, 1024);
    std::vector<std::uint8_t> out(src.size());
    for (std::size_t keep :
         {std::size_t{4}, std::size_t{16}, frame.size() / 2,
          frame.size() - 3}) {
        EXPECT_EQ(ChunkedFrame::decompress(*codec, {frame.data(), keep},
                                           {out.data(), out.size()}),
                  0u)
            << "keep=" << keep;
    }
}

TEST(Chunked, RejectsShortOutput)
{
    auto codec = makeCodec(CodecKind::Lz4);
    auto src = mixedBuffer(8192, 9);
    auto frame =
        ChunkedFrame::compress(*codec, {src.data(), src.size()}, 2048);
    std::vector<std::uint8_t> out(100);
    EXPECT_EQ(ChunkedFrame::decompress(*codec,
                                       {frame.data(), frame.size()},
                                       {out.data(), out.size()}),
              0u);
}

class ChunkedSweep
    : public ::testing::TestWithParam<std::tuple<CodecKind, std::size_t>>
{
};

TEST_P(ChunkedSweep, RoundtripAcrossCodecsAndChunkSizes)
{
    auto [kind, chunk] = GetParam();
    auto codec = makeCodec(kind);
    auto src = mixedBuffer(3 * chunk + chunk / 3 + 1,
                           static_cast<std::uint64_t>(chunk));
    EXPECT_EQ(frameRoundtrip(*codec, src, chunk), src);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ChunkedSweep,
    ::testing::Combine(::testing::Values(CodecKind::Lz4, CodecKind::Lzo,
                                         CodecKind::Bdi,
                                         CodecKind::Null),
                       ::testing::Values(128, 256, 512, 1024, 2048,
                                         4096, 16384, 65536)));
