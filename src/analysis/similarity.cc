#include "analysis/similarity.hh"

#include <unordered_set>

namespace ariadne
{

namespace
{

std::unordered_set<Pfn>
toSet(const std::vector<Pfn> &v)
{
    return {v.begin(), v.end()};
}

double
intersectOver(const std::vector<Pfn> &needles,
              const std::unordered_set<Pfn> &haystack,
              std::size_t denominator)
{
    if (denominator == 0)
        return 0.0;
    std::size_t matches = 0;
    for (Pfn pfn : needles) {
        if (haystack.contains(pfn))
            ++matches;
    }
    return static_cast<double>(matches) /
           static_cast<double>(denominator);
}

} // namespace

double
hotDataSimilarity(const std::vector<Pfn> &prev_hot,
                  const std::vector<Pfn> &cur_hot)
{
    return intersectOver(cur_hot, toSet(prev_hot), cur_hot.size());
}

double
reusedData(const std::vector<Pfn> &prev_hot,
           const std::vector<Pfn> &cur_hot,
           const std::vector<Pfn> &cur_warm)
{
    auto set = toSet(cur_hot);
    set.insert(cur_warm.begin(), cur_warm.end());
    return intersectOver(prev_hot, set, prev_hot.size());
}

double
predictionCoverage(const std::vector<Pfn> &predicted,
                   const std::vector<Pfn> &actual)
{
    return intersectOver(actual, toSet(predicted), actual.size());
}

double
predictionAccuracy(const std::vector<Pfn> &predicted,
                   const std::vector<Pfn> &used)
{
    return intersectOver(predicted, toSet(used), predicted.size());
}

} // namespace ariadne
