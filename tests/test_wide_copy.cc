/**
 * @file
 * Torture tests for the wide-copy decompression inner loops: the
 * overlapping-match cases (offset < copy width) are exactly where a
 * naive wildcopy corrupts output, so every offset the encoders can
 * emit gets an explicit replication test against both codecs, plus
 * direct unit tests of copyMatch's three regimes (memset run,
 * strided wildcopy, byte-wise tail).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "codec_test_util.hh"
#include "compress/lz4.hh"
#include "compress/lzo.hh"
#include "compress/wide_copy.hh"

using namespace ariadne;
using namespace ariadne::testutil;

namespace
{

/** A page that forces matches at exactly @p offset: a seed of
 * `offset` distinct bytes replicated to the full length. */
std::vector<std::uint8_t>
replicatedPage(std::size_t offset, std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(
            i < offset ? 0x41 + i : v[i - offset]);
    return v;
}

/** RLE-style page: runs of one repeated byte, lengths from @p rng. */
std::vector<std::uint8_t>
rlePage(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v;
    v.reserve(n);
    while (v.size() < n) {
        std::size_t run =
            std::min<std::size_t>(1 + rng.below(200), n - v.size());
        v.insert(v.end(), run,
                 static_cast<std::uint8_t>(rng.next32()));
    }
    return v;
}

/** Reference byte-wise overlapping copy. */
void
byteCopy(std::uint8_t *dst, std::size_t offset, std::size_t len)
{
    const std::uint8_t *src = dst - offset;
    for (std::size_t i = 0; i < len; ++i)
        dst[i] = src[i];
}

} // namespace

TEST(WideCopy, MatchesByteCopyForEveryOffsetAndSlack)
{
    // Exercise all three regimes: for each offset and length, place
    // the copy so the room past the end sweeps through 0..2x the
    // wildcopy slack (byte-wise tail through full wildcopy).
    for (std::size_t offset = 1; offset <= 20; ++offset) {
        for (std::size_t len : {1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u,
                                31u, 64u, 200u}) {
            for (std::size_t room = 0;
                 room <= 2 * compress_detail::wildCopySlack; ++room) {
                std::vector<std::uint8_t> expect(offset + len + room,
                                                 0xEE);
                std::vector<std::uint8_t> got;
                for (std::size_t i = 0; i < offset; ++i)
                    expect[i] = static_cast<std::uint8_t>(i * 37 + 1);
                got = expect;

                byteCopy(expect.data() + offset, offset, len);
                std::uint8_t *end = compress_detail::copyMatch(
                    got.data() + offset, offset, len,
                    got.data() + offset + len + room);

                ASSERT_EQ(end, got.data() + offset + len);
                // The copied span must match the reference; bytes in
                // the slack region may be overwritten (that is the
                // wildcopy contract) but never past the given end.
                EXPECT_EQ(0, std::memcmp(got.data(), expect.data(),
                                         offset + len))
                    << "offset=" << offset << " len=" << len
                    << " room=" << room;
            }
        }
    }
}

class CodecOverlapTorture : public ::testing::TestWithParam<int>
{
};

TEST_P(CodecOverlapTorture, ReplicatedPagesEveryOffset)
{
    Lz4Codec lz4;
    LzoCodec lzo;
    std::size_t offset = static_cast<std::size_t>(GetParam());
    for (std::size_t n : {64u, 1024u, 4096u}) {
        auto src = replicatedPage(offset, n);
        EXPECT_EQ(roundtrip(lz4, src), src)
            << "lz4 offset=" << offset << " n=" << n;
        EXPECT_EQ(roundtrip(lzo, src), src)
            << "lzo offset=" << offset << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Offsets1To16, CodecOverlapTorture,
                         ::testing::Range(1, 17));

TEST(CodecOverlapTorture, RlePages)
{
    Lz4Codec lz4;
    LzoCodec lzo;
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        auto src = rlePage(4096, seed);
        EXPECT_EQ(roundtrip(lz4, src), src) << "seed=" << seed;
        EXPECT_EQ(roundtrip(lzo, src), src) << "seed=" << seed;
    }
}

TEST(CodecOverlapTorture, MatchEndingAtPageEnd)
{
    // Matches that run right up to the output end must take the
    // byte-wise tail (no slack past oend); build pages whose final
    // bytes are replicas at every small offset.
    Lz4Codec lz4;
    LzoCodec lzo;
    Rng rng(99);
    for (std::size_t offset = 1; offset <= 16; ++offset) {
        auto src = randomBuffer(4096, rng.next64());
        // Tail: 64 bytes replicating at `offset`.
        for (std::size_t i = 4096 - 64; i < 4096; ++i)
            src[i] = src[i - offset];
        EXPECT_EQ(roundtrip(lz4, src), src) << "offset=" << offset;
        EXPECT_EQ(roundtrip(lzo, src), src) << "offset=" << offset;
    }
}

TEST(CodecOverlapTorture, FuzzRandomStructuredPages)
{
    // Fuzz round-trip over structured random pages (the ASan/UBSan CI
    // job runs this binary; the sanitizers are the real assertion).
    Lz4Codec lz4;
    LzoCodec lzo;
    Rng rng(0xD1CE);
    for (int trial = 0; trial < 100; ++trial) {
        auto src = mixedBuffer(1 + rng.below(8192), rng.next64());
        EXPECT_EQ(roundtrip(lz4, src), src) << "trial=" << trial;
        EXPECT_EQ(roundtrip(lzo, src), src) << "trial=" << trial;
    }
}
