/**
 * @file
 * perf_pagetable — page-bookkeeping microbench.
 *
 * Exercises the structures under every simulated touch in isolation:
 * PageArena alloc/free recycling, direct-indexed per-app lookup
 * (the MobileSystem page-directory shape), intrusive LruList
 * touch-to-front traffic, and PfnBitmap capture marking, over a
 * million-page arena. Emits BENCH_pagetable.json with ops/sec rates
 * in the stable `ariadneBench` schema; the checked-in counters pin
 * the op mix so a behavioural change shows up as counter drift, not
 * just a rate shift.
 *
 *     perf_pagetable [--pages N] [--rounds R] [--out FILE]
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mem/lru_list.hh"
#include "mem/page_arena.hh"
#include "telemetry/bench_report.hh"
#include "telemetry/telemetry.hh"

using namespace ariadne;

namespace
{

telemetry::Counter c_alloc("pagetable.alloc");
telemetry::Counter c_touch("pagetable.touch");
telemetry::Counter c_lookup("pagetable.lookup");
telemetry::Counter c_free("pagetable.free");

double
rate(std::size_t ops, std::chrono::duration<double> wall)
{
    return static_cast<double>(ops) / std::max(wall.count(), 1e-9);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t pages = 1u << 20; // a million-page arena
    std::size_t rounds = 4;
    std::string out_path = "BENCH_pagetable.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--pages") && i + 1 < argc) {
            pages = std::stoul(argv[++i]);
        } else if (!std::strcmp(argv[i], "--rounds") && i + 1 < argc) {
            rounds = std::stoul(argv[++i]);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--pages N] [--rounds R] [--out FILE]\n";
            return 2;
        }
    }

    telemetry::setEnabled(true);
    telemetry::Registry::global().reset();

    telemetry::BenchReport report;
    report.bench = "pagetable";
    report.meta = telemetry::RunMeta::current();
    report.meta.threads = 1;
    report.meta.scenario = "perf_pagetable";
    report.totals.emplace_back("pages", pages);
    report.totals.emplace_back("rounds", rounds);

    PageArena arena;
    std::vector<PageMeta *> dir(pages, nullptr);
    PfnBitmap capture;
    Counter lru_ops;
    LruList list(&lru_ops);
    auto total_start = std::chrono::steady_clock::now();

    // Alloc: fill the directory the way a cold launch does — dense
    // pfns, every record admitted to the intrusive list.
    auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < pages; ++i) {
            PageMeta *page = arena.alloc();
            page->key = PageKey{1000, static_cast<Pfn>(i)};
            dir[i] = page;
            list.pushFront(*page);
            c_alloc.add();
        }
        if (r + 1 < rounds) {
            for (std::size_t i = 0; i < pages; ++i) {
                list.remove(*dir[i]);
                arena.free(*dir[i]);
                dir[i] = nullptr;
            }
        }
    }
    report.rates.emplace_back(
        "opsPerSec.alloc",
        rate(rounds * pages,
             std::chrono::steady_clock::now() - start));

    // Touch: the processTouch fast path — direct-indexed lookup,
    // capture-bitmap mark, LRU move-to-front. Strided so the list is
    // actually reordered rather than rotating its head.
    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < pages; ++i) {
            std::size_t pfn = (i * 7 + r) % pages;
            PageMeta *page = dir[pfn];
            capture.set(static_cast<Pfn>(pfn));
            list.touch(*page);
            c_touch.add();
        }
    }
    report.rates.emplace_back(
        "opsPerSec.touch",
        rate(rounds * pages,
             std::chrono::steady_clock::now() - start));

    // Lookup: handle -> record plus directory hit, no list traffic.
    std::uint64_t checksum = 0;
    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < pages; ++i) {
            std::size_t pfn = (i * 13 + r) % pages;
            PageMeta &page =
                arena.fromHandle(PageArena::handleOf(*dir[pfn]));
            checksum += page.key.pfn;
            c_lookup.add();
        }
    }
    report.rates.emplace_back(
        "opsPerSec.lookup",
        rate(rounds * pages,
             std::chrono::steady_clock::now() - start));
    report.totals.emplace_back("lookupChecksum", checksum);

    // Free: unlink and recycle every record.
    start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < pages; ++i) {
        list.remove(*dir[i]);
        arena.free(*dir[i]);
        dir[i] = nullptr;
        c_free.add();
    }
    report.rates.emplace_back(
        "opsPerSec.free",
        rate(pages, std::chrono::steady_clock::now() - start));

    std::chrono::duration<double> total_wall =
        std::chrono::steady_clock::now() - total_start;
    report.wallSeconds = total_wall.count();
    report.peakRssBytes = telemetry::currentPeakRssBytes();
    report.telemetry = telemetry::Registry::global().snapshot();

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "perf_pagetable: cannot write " << out_path
                  << "\n";
        return 1;
    }
    report.writeJson(out);
    for (const auto &[name, value] : report.rates)
        std::cerr << "perf_pagetable: " << name << " " << value
                  << "\n";
    std::cerr << "perf_pagetable: report " << out_path << "\n";
    return 0;
}
