/**
 * @file
 * Baseline ZRAM scheme (state of the art in the paper, §2.2/§5).
 *
 * Reproduces modern Android behaviour: single-page (4 KB) compression
 * chunks, LRU victim selection with per-application page grouping and
 * an LRU order across applications, on-demand decompression only (no
 * speculation), and a zpool of configurable size S. With `writeback`
 * enabled the scheme becomes ZSWAP: when the zpool fills, the oldest
 * compressed objects spill to the flash swap space instead of being
 * dropped.
 */

#ifndef ARIADNE_SWAP_ZRAM_HH
#define ARIADNE_SWAP_ZRAM_HH

#include <deque>
#include <memory>
#include <vector>

#include "compress/registry.hh"
#include "mem/lru_list.hh"
#include "swap/scheme.hh"
#include "swap/scheme_registry.hh"

namespace ariadne
{

/** Configuration for ZramScheme. */
struct ZramConfig
{
    CodecKind codec = CodecKind::Lzo;
    /** zpool capacity (the paper's S = 3 GB, scaled by callers). */
    std::size_t zpoolBytes = std::size_t{3} * 1024 * 1024 * 1024;
    /** Compression chunk size; baseline Android uses one page. */
    std::size_t chunkBytes = pageSize;
    /** Enable ZSWAP-style writeback of compressed data to flash. */
    bool writeback = false;
    /** Flash swap-space capacity (used when writeback is on). */
    std::size_t flashBytes = std::size_t{8} * 1024 * 1024 * 1024;
    /** Pages compressed per reclaim batch. */
    std::size_t reclaimBatch = 32;

    /**
     * Fraction of a backgrounded app's resident pages compressed
     * proactively (vendors "aggressively free up memory by
     * proactively and periodically compressing data", §2.3). This is
     * CPU the ZRAM baseline pays on every app switch.
     */
    double proactiveFraction = 0.03;
};

/** The state-of-the-art compressed swap baseline. */
class ZramScheme : public SwapScheme
{
  public:
    ZramScheme(SwapContext context, ZramConfig config);

    std::string name() const override;

    void onAdmit(PageMeta &page) override;
    void onAccess(PageMeta &page) override;
    SwapInResult swapIn(PageMeta &page) override;
    void onFree(PageMeta &page) override;
    std::size_t reclaim(std::size_t pages, bool direct) override;
    void onBackground(AppId uid) override;

    std::size_t compressedStoredBytes() const override;
    const Zpool *zpool() const override { return &pool; }
    const FlashDevice *flash() const override { return flashDev.get(); }

    /** Compression-order log: (sequence number, page, truth). Feeds
     * the Fig. 4 decile analysis. */
    struct CompressionEvent
    {
        PageKey key;
        Hotness truthAtCompression;
    };

    const std::vector<CompressionEvent> &
    compressionLog() const noexcept
    {
        return compLog;
    }

    /** Sector access log during swap-ins (Table 3 locality input). */
    const std::vector<Sector> &
    sectorAccessLog() const noexcept
    {
        return sectorLog;
    }

    /** Clear the analysis logs (between scenario phases). */
    void
    clearLogs()
    {
        compLog.clear();
        sectorLog.clear();
    }

  private:
    struct AppState
    {
        AppState(AppId uid_, Counter *ops)
            : uid(uid_), resident(ops)
        {}
        AppId uid;
        LruList resident;
        Tick lastAccess = 0;
    };

    AppState &stateFor(AppId uid);
    AppState *oldestAppWithPages();

    /**
     * Make room in the zpool for an object of @p csize, evicting (or
     * writing back) oldest compressed objects.
     * @return false when space cannot be found.
     */
    bool ensureZpoolSpace(std::size_t csize, bool synchronous);

    /** Compress one victim page into the pool (or spill/lose it). */
    void compressOut(PageMeta &victim, bool synchronous);

    /** compressOut with the compressed size already known (batch
     * sizing paths pre-compute it via compressedSizeEach). */
    void compressOutPresized(PageMeta &victim, bool synchronous,
                             std::size_t csize);

    /** Pop up to @p limit LRU-tail victims of @p app, size them in
     * one batched pass, and compress each out. */
    std::size_t compressTail(AppState &app, std::size_t limit,
                             bool synchronous);

    ZramConfig cfg;
    std::unique_ptr<Codec> codec;
    Zpool pool;
    std::unique_ptr<FlashDevice> flashDev;
    /** Sorted by uid (intrusive list heads need stable addresses,
     * hence unique_ptr; scans run in uid order like std::map did). */
    std::vector<std::unique_ptr<AppState>> appStates;
    /** Compressed objects in insertion order with owner cross-check. */
    std::deque<std::pair<ZObjectId, const PageMeta *>> compressedFifo;

    std::vector<CompressionEvent> compLog;
    std::vector<Sector> sectorLog;
};

/** Registry entry for `scheme = zram` (see scheme_registry.cc). */
SchemeInfo zramSchemeInfo();

/** Registry entry for `scheme = zswap` (ZramScheme with flash
 * writeback enabled). */
SchemeInfo zswapSchemeInfo();

} // namespace ariadne

#endif // ARIADNE_SWAP_ZRAM_HH
