/**
 * @file
 * Fig. 5: Hot Data Similarity and Reused Data between two
 * consecutive relaunches of an application.
 *
 * Paper result: average similarity ~70%, average reuse ~98% — the
 * basis of Insight 1 (last relaunch predicts the next).
 */

#include "analysis/similarity.hh"
#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main()
{
    printBanner(std::cout,
                "Fig. 5: hot-data similarity and reuse across "
                "consecutive relaunches");

    ReportTable table({"App", "Similarity", "Reused"});
    double sim_sum = 0.0, reuse_sum = 0.0;
    std::size_t n = 0;

    for (const auto &profile : standardApps()) {
        AppInstance inst(profile, evalScale, evalSeed);
        inst.coldLaunch();
        inst.execute(Tick{30} * 1000000000ULL);

        double sim_acc = 0.0, reuse_acc = 0.0;
        constexpr unsigned relaunches = 5;
        for (unsigned r = 0; r < relaunches; ++r) {
            inst.relaunch();
            std::vector<Pfn> prev = inst.previousHotSet();
            std::vector<Pfn> cur = inst.hotSet();
            sim_acc += hotDataSimilarity(prev, cur);
            reuse_acc += reusedData(prev, cur, inst.warmSet());
            inst.execute(Tick{10} * 1000000000ULL);
        }
        double sim = sim_acc / relaunches;
        double reuse = reuse_acc / relaunches;
        table.addRow({profile.name, ReportTable::num(sim, 2),
                      ReportTable::num(reuse, 2)});
        sim_sum += sim;
        reuse_sum += reuse;
        ++n;
    }
    table.print(std::cout);
    std::cout << "\nAverage similarity "
              << ReportTable::num(sim_sum / static_cast<double>(n), 2)
              << " (paper: 0.70), average reuse "
              << ReportTable::num(reuse_sum / static_cast<double>(n), 2)
              << " (paper: 0.98)\n";
    return 0;
}
