#include "swap/kswapd.hh"

#include "telemetry/telemetry.hh"

namespace ariadne
{

namespace
{

telemetry::Counter c_wakeup("kswapd.wakeup");
telemetry::Counter c_reclaimedPages("kswapd.reclaimed_pages");
telemetry::DurationProbe d_run("kswapd.run");
// The reclaim scan proper (victim selection + compression), i.e. the
// wall time the SoA metadata walk is supposed to shrink — separate
// from kswapd.run, which also covers wakeup bookkeeping.
telemetry::Counter c_scanPages("kswapd.scan_pages");
telemetry::DurationProbe d_scan("kswapd.scan");

} // namespace

std::size_t
Kswapd::runReclaim()
{
    c_wakeup.add();
    telemetry::ScopedTimer timer(d_run);
    ++runs;
    ctx.cpu.charge(CpuRole::Kswapd, wakeupCpuNs);
    totalCpuNs += wakeupCpuNs;

    // Attribute every cycle the scheme burns during this call to the
    // kswapd thread (compression, io submission, fault bookkeeping
    // for list maintenance).
    Tick before = ctx.cpu.grandTotal();
    std::size_t want = ctx.dram.reclaimTarget();
    std::size_t freed;
    {
        telemetry::ScopedTimer scan(d_scan);
        freed = target.reclaim(want, /*direct=*/false);
    }
    c_scanPages.add(freed);
    Tick after = ctx.cpu.grandTotal();
    totalCpuNs += after - before;
    reclaimed += freed;
    c_reclaimedPages.add(freed);
    return freed;
}

} // namespace ariadne
