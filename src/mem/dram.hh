/**
 * @file
 * Main-memory capacity model.
 *
 * Tracks how many anonymous pages are resident against a configured
 * budget. Watermarks in the style of the kernel's zone watermarks
 * drive background (kswapd) and direct reclaim.
 */

#ifndef ARIADNE_MEM_DRAM_HH
#define ARIADNE_MEM_DRAM_HH

#include <cstddef>

#include "sim/log.hh"
#include "sim/types.hh"

namespace ariadne
{

/** Budget accounting for resident anonymous pages. */
class Dram
{
  public:
    /**
     * @param capacity_bytes Budget available to anonymous pages (the
     * rest of physical DRAM is the OS, file cache, zpool, ...).
     * @param low_watermark Fraction of capacity free below which
     * kswapd starts reclaiming.
     * @param high_watermark Fraction of capacity free at which kswapd
     * stops.
     */
    explicit Dram(std::size_t capacity_bytes,
                  double low_watermark = 0.04,
                  double high_watermark = 0.08);

    std::size_t capacityPages() const noexcept { return capacity; }
    std::size_t usedPages() const noexcept { return used; }

    std::size_t
    freePages() const noexcept
    {
        return capacity - used;
    }

    /** Claim @p n pages; returns false when they do not fit. */
    bool
    allocate(std::size_t n = 1) noexcept
    {
        if (used + n > capacity)
            return false;
        used += n;
        return true;
    }

    /** Release @p n pages. */
    void
    release(std::size_t n = 1)
    {
        panicIf(n > used, "Dram::release underflow");
        used -= n;
    }

    /** True when free pages dropped below the low watermark. */
    bool
    belowLowWatermark() const noexcept
    {
        return freePages() < lowPages;
    }

    /** True when free pages are at or above the high watermark. */
    bool
    atHighWatermark() const noexcept
    {
        return freePages() >= highPages;
    }

    /** Pages kswapd must free to get back to the high watermark. */
    std::size_t
    reclaimTarget() const noexcept
    {
        std::size_t free = freePages();
        return free >= highPages ? 0 : highPages - free;
    }

    std::size_t lowWatermarkPages() const noexcept { return lowPages; }
    std::size_t highWatermarkPages() const noexcept { return highPages; }

  private:
    std::size_t capacity;
    std::size_t used = 0;
    std::size_t lowPages;
    std::size_t highPages;
};

} // namespace ariadne

#endif // ARIADNE_MEM_DRAM_HH
