#include "sim/stats.hh"

#include <cctype>
#include <cmath>

#include "sim/log.hh"

namespace ariadne
{

double
Distribution::min() const noexcept
{
    return values.empty()
               ? 0.0
               : *std::min_element(values.begin(), values.end());
}

double
Distribution::max() const noexcept
{
    return values.empty()
               ? 0.0
               : *std::max_element(values.begin(), values.end());
}

double
Distribution::mean() const noexcept
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
Distribution::percentile(double p) const
{
    if (values.empty())
        return 0.0;
    if (!sorted) {
        std::sort(values.begin(), values.end());
        sorted = true;
    }
    // Negated comparison so NaN clamps to 0 instead of reaching the
    // size_t cast below (double-to-integer conversion out of range is
    // undefined behavior).
    if (!(p > 0.0))
        p = 0.0;
    else if (p > 1.0)
        p = 1.0;
    auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(values.size())));
    if (rank == 0)
        rank = 1;
    return values[rank - 1];
}

const char *
percentileModeName(PercentileMode mode) noexcept
{
    switch (mode) {
      case PercentileMode::Exact: return "exact";
      case PercentileMode::Sketch: return "sketch";
      default: return "unknown";
    }
}

std::optional<PercentileMode>
parsePercentileModeName(const std::string &text)
{
    std::string t;
    for (char c : text)
        t += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (t == "exact")
        return PercentileMode::Exact;
    if (t == "sketch")
        return PercentileMode::Sketch;
    return std::nullopt;
}

PercentileSketch::PercentileSketch(std::size_t k)
    : cap(std::max(k, minK) + (std::max(k, minK) % 2)), lvls(1),
      compactions(1, 0)
{
}

void
PercentileSketch::sample(double v)
{
    lvls[0].items.push_back(v);
    n += 1;
    if (lvls[0].items.size() >= cap)
        compactOverfull();
}

void
PercentileSketch::merge(const PercentileSketch &o)
{
    panicIf(!compatible(o),
            "PercentileSketch::merge: capacity mismatch");
    n += o.n;
    errBound += o.errBound;
    for (std::size_t l = 0; l < o.lvls.size(); ++l) {
        if (lvls.size() <= l) {
            lvls.emplace_back();
            compactions.push_back(0);
        }
        lvls[l].items.insert(lvls[l].items.end(),
                             o.lvls[l].items.begin(),
                             o.lvls[l].items.end());
    }
    compactOverfull();
}

std::size_t
PercentileSketch::retained() const noexcept
{
    std::size_t total = 0;
    for (const Level &l : lvls)
        total += l.items.size();
    return total;
}

/**
 * Halve level @p level into the one above: sort, keep every other
 * item (the surviving parity alternates with the level's compaction
 * counter — deterministic, never random) at twice the weight. An odd
 * buffer leaves its largest item in place so total weight is
 * preserved exactly. Each halving of weight-2^ℓ items perturbs any
 * rank by at most 2^ℓ, which is what rankErrorBound() accumulates.
 */
void
PercentileSketch::compactLevel(std::size_t level)
{
    // Move the buffer out first: growing `lvls` below reallocates,
    // so references into it must not be held across the emplace.
    std::vector<double> buf = std::move(lvls[level].items);
    lvls[level].items.clear();
    std::sort(buf.begin(), buf.end());
    if (buf.size() % 2) {
        lvls[level].items.push_back(buf.back());
        buf.pop_back();
    }
    std::size_t offset = compactions[level] % 2;
    compactions[level] += 1;
    if (lvls.size() == level + 1) {
        lvls.emplace_back();
        compactions.push_back(0);
    }
    auto &up = lvls[level + 1].items;
    for (std::size_t i = offset; i < buf.size(); i += 2)
        up.push_back(buf[i]);
    errBound += std::uint64_t{1} << level;
}

void
PercentileSketch::compactOverfull()
{
    for (std::size_t l = 0; l < lvls.size(); ++l)
        while (lvls[l].items.size() >= cap)
            compactLevel(l);
}

double
PercentileSketch::percentile(double p) const
{
    if (n == 0)
        return 0.0;
    // Negated comparison: NaN clamps to 0 instead of reaching the
    // integer cast (Distribution::percentile's convention).
    if (!(p > 0.0))
        p = 0.0;
    else if (p > 1.0)
        p = 1.0;
    std::vector<std::pair<double, std::uint64_t>> weighted;
    weighted.reserve(retained());
    for (std::size_t l = 0; l < lvls.size(); ++l) {
        std::uint64_t w = std::uint64_t{1} << l;
        for (double v : lvls[l].items)
            weighted.emplace_back(v, w);
    }
    if (weighted.empty())
        return 0.0; // restore() can be handed n > 0 with no items
    std::sort(weighted.begin(), weighted.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(n)));
    if (target == 0)
        target = 1;
    std::uint64_t acc = 0;
    for (const auto &[v, w] : weighted) {
        acc += w;
        if (acc >= target)
            return v;
    }
    // Compaction preserves total weight, so the walk always reaches n;
    // this is only a numeric-edge fallback.
    return weighted.back().first;
}

PercentileSketch
PercentileSketch::restore(std::size_t k, std::uint64_t count,
                          std::uint64_t rank_error_bound,
                          std::vector<Level> levels)
{
    PercentileSketch sk(k);
    if (!levels.empty()) {
        sk.lvls = std::move(levels);
        sk.compactions.assign(sk.lvls.size(), 0);
    }
    sk.n = count;
    sk.errBound = rank_error_bound;
    sk.compactOverfull();
    return sk;
}

void
PercentileSketch::reset()
{
    lvls.assign(1, Level{});
    compactions.assign(1, 0);
    n = 0;
    errBound = 0;
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width(bucket_width), bins(bucket_count, 0)
{
    fatalIf(bucket_width <= 0.0, "Histogram bucket width must be > 0");
    fatalIf(bucket_count == 0, "Histogram needs at least one bucket");
}

void
Histogram::sample(double v) noexcept
{
    total += 1;
    if (v < 0.0)
        v = 0.0;
    // Compare in floating point *before* the size_t cast: converting a
    // double beyond the target range (v / width can be anything up to
    // inf, or NaN) is undefined behavior. The negated comparison routes
    // both huge samples and NaN to the overflow bucket; only values
    // strictly inside [0, bins.size()) reach the cast.
    double scaled = v / width;
    if (!(scaled < static_cast<double>(bins.size())))
        overflow += 1;
    else
        bins[static_cast<std::size_t>(scaled)] += 1;
}

double
Histogram::percentile(double p) const noexcept
{
    if (total == 0)
        return 0.0;
    // Negated comparison: NaN p clamps to 0 rather than hitting the
    // integer cast below (that conversion would be UB).
    if (!(p > 0.0))
        p = 0.0;
    else if (p > 1.0)
        p = 1.0;
    // Nearest-rank over the bucketed CDF: the upper edge of the first
    // bucket whose cumulative count reaches p * total. Samples in the
    // overflow bucket only report the histogram's top edge — callers
    // needing exact tails should use Distribution instead.
    auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total)));
    if (target == 0)
        target = 1;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        acc += bins[i];
        if (acc >= target)
            return width * static_cast<double>(i + 1);
    }
    return width * static_cast<double>(bins.size());
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    panicIf(i >= bins.size(), "Histogram bucket index out of range");
    return bins[i];
}

double
Histogram::cdfAt(double v) const noexcept
{
    if (total == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        double upper = width * static_cast<double>(i + 1);
        if (upper <= v)
            acc += bins[i];
        else
            break;
    }
    return static_cast<double>(acc) / static_cast<double>(total);
}

void
Histogram::reset() noexcept
{
    std::fill(bins.begin(), bins.end(), 0);
    overflow = 0;
    total = 0;
}

void
StatRegistry::addCounter(const std::string &name, const Counter &c)
{
    auto [it, inserted] = counters.emplace(name, &c);
    (void)it;
    fatalIf(!inserted, "duplicate counter name: " + name);
}

void
StatRegistry::addScalar(const std::string &name, const Scalar &s)
{
    auto [it, inserted] = scalars.emplace(name, &s);
    (void)it;
    fatalIf(!inserted, "duplicate scalar name: " + name);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, s] : scalars) {
        os << name << ".mean " << s->mean() << "\n";
        os << name << ".samples " << s->samples() << "\n";
    }
}

const Counter *
StatRegistry::findCounter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? nullptr : it->second;
}

const Scalar *
StatRegistry::findScalar(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? nullptr : it->second;
}

} // namespace ariadne
