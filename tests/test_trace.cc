/** @file Unit tests for trace serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "workload/trace.hh"

using namespace ariadne;

namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<TraceRecord>
sampleRecords()
{
    std::vector<TraceRecord> recs;
    recs.push_back({0, TraceOp::Launch, 1, invalidPfn, 0,
                    Hotness::Cold, false});
    recs.push_back({100, TraceOp::Touch, 1, 42, 0, Hotness::Hot, true});
    recs.push_back(
        {200, TraceOp::Touch, 1, 43, 2, Hotness::Warm, false});
    recs.push_back({300, TraceOp::Background, 1, invalidPfn, 0,
                    Hotness::Cold, false});
    recs.push_back(
        {400, TraceOp::Relaunch, 1, invalidPfn, 0, Hotness::Cold,
         false});
    recs.push_back({500, TraceOp::RelaunchEnd, 1, invalidPfn, 0,
                    Hotness::Cold, false});
    recs.push_back({600, TraceOp::Free, 1, 42, 0, Hotness::Cold,
                    false});
    return recs;
}

} // namespace

TEST(Trace, WriteReadRoundtrip)
{
    std::string path = tempPath("ariadne_trace_rt.bin");
    auto recs = sampleRecords();
    writeTrace(path, recs);
    auto back = readTrace(path);
    EXPECT_EQ(back, recs);
    std::remove(path.c_str());
}

TEST(Trace, EmptyTrace)
{
    std::string path = tempPath("ariadne_trace_empty.bin");
    writeTrace(path, {});
    auto back = readTrace(path);
    EXPECT_TRUE(back.empty());
    std::remove(path.c_str());
}

TEST(Trace, StreamingReaderCountsMatch)
{
    std::string path = tempPath("ariadne_trace_stream.bin");
    auto recs = sampleRecords();
    {
        TraceWriter w(path);
        for (const auto &r : recs)
            w.append(r);
        EXPECT_EQ(w.count(), recs.size());
    }
    TraceReader r(path);
    EXPECT_EQ(r.count(), recs.size());
    TraceRecord rec;
    std::size_t n = 0;
    while (r.next(rec))
        ++n;
    EXPECT_EQ(n, recs.size());
    std::remove(path.c_str());
}

TEST(Trace, LargeTraceRoundtrip)
{
    std::string path = tempPath("ariadne_trace_large.bin");
    std::vector<TraceRecord> recs;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        recs.push_back({i * 10, TraceOp::Touch,
                        static_cast<AppId>(i % 10), i,
                        static_cast<std::uint32_t>(i % 3),
                        static_cast<Hotness>(i % 3), i % 7 == 0});
    }
    writeTrace(path, recs);
    EXPECT_EQ(readTrace(path), recs);
    std::remove(path.c_str());
}

TEST(Trace, CsvExportHasHeaderAndRows)
{
    std::string bin = tempPath("ariadne_trace_csv.bin");
    std::string csv = tempPath("ariadne_trace.csv");
    auto recs = sampleRecords();
    exportTraceCsv(csv, recs);

    std::ifstream in(csv);
    std::string line;
    std::size_t lines = 0;
    bool header_ok = false;
    while (std::getline(in, line)) {
        if (lines == 0)
            header_ok = line.rfind("time_ns,op,uid", 0) == 0;
        ++lines;
    }
    EXPECT_TRUE(header_ok);
    EXPECT_EQ(lines, recs.size() + 1);
    std::remove(bin.c_str());
    std::remove(csv.c_str());
}

TEST(Trace, WriteReadCsvRoundtripPreservesEveryField)
{
    // Binary write -> read keeps record equality; the CSV export of
    // the read-back trace then renders every field faithfully.
    std::string bin = tempPath("ariadne_trace_rt2.bin");
    std::string csv = tempPath("ariadne_trace_rt2.csv");
    auto recs = sampleRecords();
    writeTrace(bin, recs);
    auto back = readTrace(bin);
    ASSERT_EQ(back, recs);
    exportTraceCsv(csv, back);

    std::ifstream in(csv);
    std::string line;
    ASSERT_TRUE(std::getline(in, line)); // header
    for (const auto &rec : recs) {
        ASSERT_TRUE(std::getline(in, line));
        std::ostringstream expect;
        expect << rec.time << ',' << traceOpName(rec.op) << ','
               << rec.uid << ',' << rec.pfn << ',' << rec.version
               << ',' << hotnessName(rec.truth) << ','
               << (rec.newAllocation ? 1 : 0);
        EXPECT_EQ(line, expect.str());
    }
    EXPECT_FALSE(std::getline(in, line));
    std::remove(bin.c_str());
    std::remove(csv.c_str());
}

TEST(Trace, V2OpsRoundtrip)
{
    std::string path = tempPath("ariadne_trace_v2ops.bin");
    std::vector<TraceRecord> recs;
    recs.push_back({0, TraceOp::SessionStart, invalidApp, 0, 0,
                    Hotness::Cold, false});
    recs.push_back({10, TraceOp::Execute, 3, 2000000000ULL, 0,
                    Hotness::Cold, false});
    recs.push_back({20, TraceOp::Idle, invalidApp, 500000000ULL, 0,
                    Hotness::Cold, false});
    recs.push_back({30, TraceOp::Sample, 3, 0, 0, Hotness::Cold,
                    false});
    writeTrace(path, recs);
    EXPECT_EQ(readTrace(path), recs);
    std::remove(path.c_str());
}

TEST(Trace, HeaderCarriesSpecAndSessions)
{
    std::string path = tempPath("ariadne_trace_hdr.bin");
    const std::string spec_text = "name = recorded\nscheme = zram\n";
    {
        TraceWriter w(path, spec_text);
        w.beginSession(0);
        for (const auto &rec : sampleRecords())
            w.append(rec);
        w.beginSession(1);
        EXPECT_EQ(w.sessionCount(), 2u);
    }
    TraceReader r(path);
    EXPECT_EQ(r.version(), 2u);
    EXPECT_EQ(r.spec(), spec_text);
    EXPECT_EQ(r.sessionCount(), 2u);
    // Session boundaries are ordinary records in the stream.
    EXPECT_EQ(r.count(), sampleRecords().size() + 2);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.op, TraceOp::SessionStart);
    EXPECT_EQ(rec.pfn, 0u);
    std::remove(path.c_str());
}

TEST(Trace, OpNamesStable)
{
    EXPECT_STREQ(traceOpName(TraceOp::Launch), "launch");
    EXPECT_STREQ(traceOpName(TraceOp::Relaunch), "relaunch");
    EXPECT_STREQ(traceOpName(TraceOp::Touch), "touch");
    EXPECT_STREQ(traceOpName(TraceOp::Free), "free");
}

TEST(TraceDeath, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceReader("/nonexistent/path/trace.bin"),
                 "cannot open");
}

TEST(TraceDeath, CorruptHeaderIsFatal)
{
    std::string path = tempPath("ariadne_trace_bad.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "garbage that is not a trace header";
    }
    EXPECT_DEATH(TraceReader reader(path), "bad trace header");
    std::remove(path.c_str());
}

namespace
{

/** Write a valid trace, then chop it to @p keep_bytes. */
std::string
truncatedTrace(const std::string &name, std::size_t keep_bytes)
{
    std::string path = tempPath(name);
    writeTrace(path, sampleRecords());
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    EXPECT_GT(bytes.size(), keep_bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(keep_bytes));
    return path;
}

} // namespace

TEST(TraceDeath, TruncatedRecordSectionIsFatalNotSilent)
{
    // Header promises 7 records; the file ends mid-stream. next()
    // must diagnose the truncation, not quietly report end-of-file.
    std::string path =
        truncatedTrace("ariadne_trace_trunc.bin", 24 + 2 * 27 + 5);
    EXPECT_DEATH(
        {
            TraceReader reader(path);
            TraceRecord rec;
            while (reader.next(rec)) {
            }
        },
        "trace truncated");
    std::remove(path.c_str());
}

TEST(Trace, ThrowPolicyRaisesTraceErrorInsteadOfExiting)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/trace.bin",
                             TraceReader::OnError::Throw),
                 TraceError);

    std::string bad = tempPath("ariadne_trace_bad_throw.bin");
    {
        std::ofstream out(bad, std::ios::binary);
        out << "garbage that is not a trace header";
    }
    EXPECT_THROW(TraceReader(bad, TraceReader::OnError::Throw),
                 TraceError);
    std::remove(bad.c_str());

    std::string trunc =
        truncatedTrace("ariadne_trace_trunc_throw.bin",
                       24 + 2 * 27 + 5);
    TraceReader reader(trunc, TraceReader::OnError::Throw);
    TraceRecord rec;
    EXPECT_TRUE(reader.next(rec));
    EXPECT_TRUE(reader.next(rec));
    EXPECT_THROW(reader.next(rec), TraceError);
    std::remove(trunc.c_str());
}

TEST(Trace, UnsupportedVersionIsRejected)
{
    std::string path = tempPath("ariadne_trace_future.bin");
    writeTrace(path, sampleRecords());
    // Bump the on-disk version to 99.
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    std::uint32_t version = 99;
    f.write(reinterpret_cast<const char *>(&version), 4);
    f.close();
    EXPECT_THROW(TraceReader(path, TraceReader::OnError::Throw),
                 TraceError);
    std::remove(path.c_str());
}
