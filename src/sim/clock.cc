#include "sim/clock.hh"

// Clock is header-only today; this translation unit anchors the
// library target and reserves a home for future event-queue logic.
