/** @file Unit tests for the deterministic PCG RNG. */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

using namespace ariadne;

TEST(Rng, SameSeedSameStream)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next32() == b.next32());
    EXPECT_LT(same, 4);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::uint64_t first = a.next64();
    a.reseed(7);
    EXPECT_EQ(a.next64(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowZeroBoundIsZero)
{
    Rng r(1);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u); // all three values appear
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsTrivialProbabilities)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(42);
    Rng child = a.fork(1);
    Rng a2(42);
    Rng child2 = a2.fork(1);
    // Forks of identical parents with identical salt agree...
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(child.next64(), child2.next64());
    // ...and differ by salt.
    Rng a3(42);
    Rng other = a3.fork(2);
    Rng a4(42);
    Rng base = a4.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (other.next32() == base.next32());
    EXPECT_LT(same, 4);
}

TEST(Mix64, DeterministicAndSpreading)
{
    EXPECT_EQ(mix64(1), mix64(1));
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 1000; ++i)
        outputs.insert(mix64(i));
    EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Rng, Below64BitBoundaries)
{
    Rng r(1);
    std::uint64_t big = 1ULL << 40;
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(r.below(big), big);
}
