#include "swap/scheme_registry.hh"

#include <algorithm>
#include <cctype>

#include "core/ariadne.hh"
#include "sim/log.hh"
#include "swap/dram_only.hh"
#include "swap/flash_swap.hh"
#include "swap/zram.hh"

namespace ariadne
{

namespace
{

std::string
lowered(const std::string &s)
{
    std::string t = s;
    std::transform(t.begin(), t.end(), t.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return t;
}

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const std::string &expected)
{
    throw SchemeError("invalid value '" + value + "' for scheme knob '" +
                      key + "' (expected " + expected + ")");
}

} // namespace

// --- SchemeParams ----------------------------------------------------

void
SchemeParams::set(const std::string &key, std::string value)
{
    values[key] = std::move(value);
}

void
SchemeParams::erase(const std::string &key)
{
    values.erase(key);
}

bool
SchemeParams::has(const std::string &key) const noexcept
{
    return values.count(key) != 0;
}

const std::string *
SchemeParams::raw(const std::string &key) const noexcept
{
    auto it = values.find(key);
    return it == values.end() ? nullptr : &it->second;
}

std::string
SchemeParams::getString(const std::string &key,
                        const std::string &def) const
{
    const std::string *v = raw(key);
    return v ? *v : def;
}

bool
SchemeParams::getBool(const std::string &key, bool def) const
{
    const std::string *v = raw(key);
    if (!v)
        return def;
    std::string t = lowered(*v);
    if (t == "true" || t == "on" || t == "1")
        return true;
    if (t == "false" || t == "off" || t == "0")
        return false;
    badValue(key, *v, "true|false");
}

std::uint64_t
SchemeParams::getU64(const std::string &key, std::uint64_t def) const
{
    const std::string *v = raw(key);
    if (!v)
        return def;
    if (v->empty() ||
        !std::all_of(v->begin(), v->end(), [](unsigned char c) {
            return std::isdigit(c);
        }))
        badValue(key, *v, "a non-negative integer");
    try {
        return std::stoull(*v);
    } catch (const std::out_of_range &) {
        badValue(key, *v, "an integer within 64 bits");
    }
}

double
SchemeParams::getDouble(const std::string &key, double def) const
{
    const std::string *v = raw(key);
    if (!v)
        return def;
    char *end = nullptr;
    double parsed = std::strtod(v->c_str(), &end);
    // Reject NaN/inf too: no knob wants them and NaN silently escapes
    // every range check downstream.
    if (v->empty() || end != v->c_str() + v->size() ||
        !(parsed - parsed == 0.0))
        badValue(key, *v, "a finite number");
    return parsed;
}

std::size_t
SchemeParams::getMiB(const std::string &key,
                     std::size_t def_bytes) const
{
    if (!raw(key))
        return def_bytes;
    std::uint64_t mib = getU64(key, 0);
    if (mib > (std::uint64_t{1} << 40))
        badValue(key, *raw(key), "a capacity below 2^40 MiB");
    return static_cast<std::size_t>(mib) << 20;
}

// --- Helpers shared by the factories ---------------------------------

std::size_t
scaledBytes(std::size_t bytes, double scale) noexcept
{
    return static_cast<std::size_t>(static_cast<double>(bytes) * scale);
}

CodecKind
parseCodecKnob(const std::string &name)
{
    std::string t = lowered(name);
    if (t == "lz4")
        return CodecKind::Lz4;
    if (t == "lzo")
        return CodecKind::Lzo;
    if (t == "bdi")
        return CodecKind::Bdi;
    if (t == "null")
        return CodecKind::Null;
    throw SchemeError("unknown codec '" + name +
                      "' (lz4|lzo|bdi|null)");
}

// --- SchemeRegistry --------------------------------------------------

const SchemeRegistry &
SchemeRegistry::instance()
{
    static const SchemeRegistry registry;
    return registry;
}

SchemeRegistry::SchemeRegistry()
{
    // The builtin table. Each entry lives next to its scheme's
    // implementation; adding a scheme is that file plus one line here
    // (static-initializer self-registration would be dropped by the
    // linker for translation units nothing else references).
    add(dramOnlySchemeInfo());
    add(flashSwapSchemeInfo());
    add(zramSchemeInfo());
    add(zswapSchemeInfo());
    add(ariadneSchemeInfo());
}

void
SchemeRegistry::add(SchemeInfo info)
{
    fatalIf(info.key.empty() || !info.build,
            "scheme registration needs a key and a build factory");
    if (!schemes.emplace(info.key, info).second)
        throw SchemeError("duplicate scheme registration '" +
                          info.key + "'");
}

const SchemeInfo *
SchemeRegistry::find(const std::string &key) const noexcept
{
    auto it = schemes.find(key);
    return it == schemes.end() ? nullptr : &it->second;
}

const SchemeInfo &
SchemeRegistry::at(const std::string &key) const
{
    const SchemeInfo *info = find(key);
    if (!info)
        throw SchemeError("unknown scheme '" + key + "' (valid: " +
                          namesJoined() + ")");
    return *info;
}

std::vector<std::string>
SchemeRegistry::names() const
{
    std::vector<std::string> keys;
    keys.reserve(schemes.size());
    for (const auto &[key, info] : schemes)
        keys.push_back(key);
    return keys;
}

std::string
SchemeRegistry::namesJoined() const
{
    std::string joined;
    for (const auto &[key, info] : schemes) {
        if (!joined.empty())
            joined += ", ";
        joined += key;
    }
    return joined;
}

std::vector<const SchemeInfo *>
SchemeRegistry::infos() const
{
    std::vector<const SchemeInfo *> out;
    out.reserve(schemes.size());
    for (const auto &[key, info] : schemes)
        out.push_back(&info);
    return out;
}

void
SchemeRegistry::validate(const std::string &key,
                         const SchemeParams &params) const
{
    const SchemeInfo &info = at(key);
    for (const auto &[knob_key, value] : params.entries()) {
        auto it = std::find_if(info.knobs.begin(), info.knobs.end(),
                               [&](const SchemeKnob &k) {
                                   return k.name == knob_key;
                               });
        if (it == info.knobs.end()) {
            std::string valid;
            for (const SchemeKnob &k : info.knobs) {
                if (!valid.empty())
                    valid += ", ";
                valid += k.name;
            }
            throw SchemeError(
                "scheme '" + key + "' has no knob '" + knob_key +
                "'" +
                (valid.empty() ? " (it takes no knobs)"
                               : " (valid knobs: " + valid + ")"));
        }
        // Probe the typed parse so malformed values fail here, with
        // the knob named, rather than deep inside a factory.
        if (it->type == "bool")
            params.getBool(knob_key, false);
        else if (it->type == "u64")
            params.getU64(knob_key, 0);
        else if (it->type == "double")
            params.getDouble(knob_key, 0.0);
        else if (it->type == "mb")
            params.getMiB(knob_key, 0);
        else if (it->type != "string")
            fatal("scheme '" + key + "' declares knob '" + knob_key +
                  "' with unknown type '" + it->type + "'");
        if (it->check)
            it->check(value);
    }
}

std::unique_ptr<SwapScheme>
SchemeRegistry::build(const std::string &key, SwapContext ctx,
                      const SchemeParams &params, double scale) const
{
    const SchemeInfo &info = at(key);
    validate(key, params);
    return info.build(ctx, params, scale);
}

} // namespace ariadne
