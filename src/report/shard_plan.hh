/**
 * @file
 * ShardPlan — deterministic partitioning of a run across processes.
 *
 * A plan is the pair "shard INDEX of COUNT" (1-based, the CLI's
 * `--shard i/N`). It is pure arithmetic with no state, so any process
 * handed the same spec and the same `i/N` computes the same share:
 *
 *  - fleets partition by *session index* into contiguous balanced
 *    ranges — sessionRange(F) of shards 1..N tile [0, F) exactly, and
 *    because sessions derive their seeds from their global index, the
 *    union of the shards is the unsharded run, session for session;
 *  - sweeps partition by *variant index*, round-robin — shard i owns
 *    variants j with j % N == i-1, and each owned variant runs its
 *    whole fleet.
 *
 * Contiguous session ranges are what make merged exact-mode reports
 * byte-identical: concatenating the shards' per-metric sample vectors
 * in shard order reproduces the unsharded fold order exactly.
 */

#ifndef ARIADNE_REPORT_SHARD_PLAN_HH
#define ARIADNE_REPORT_SHARD_PLAN_HH

#include <cstddef>
#include <string>
#include <utility>

#include "report/report_error.hh"

namespace ariadne::report
{

/** One shard's identity within a sharded run (1-based INDEX/COUNT). */
struct ShardPlan
{
    std::size_t index = 1;
    std::size_t count = 1;

    /** Whether this is the trivial single-shard plan. */
    bool unsharded() const noexcept { return count == 1; }

    /**
     * Parse "INDEX/COUNT" (e.g. "2/4"); throws ReportError on
     * malformed text, a zero count, or an index outside [1, COUNT].
     */
    static ShardPlan parse(const std::string &text);

    /** Canonical "INDEX/COUNT" form. */
    std::string toString() const;

    /**
     * Session indices [begin, end) of this shard in a fleet of
     * @p fleet sessions: contiguous balanced ranges that tile
     * [0, fleet) across the COUNT shards (shards may be empty when
     * fleet < COUNT).
     */
    std::pair<std::size_t, std::size_t>
    sessionRange(std::size_t fleet) const noexcept;

    /** Whether this shard runs sweep variant @p variant_index
     * (round-robin assignment). */
    bool ownsVariant(std::size_t variant_index) const noexcept;

    bool operator==(const ShardPlan &o) const = default;
};

} // namespace ariadne::report

#endif // ARIADNE_REPORT_SHARD_PLAN_HH
