/**
 * @file
 * Table 2: energy consumption under three swap schemes, light and
 * heavy workloads.
 *
 * Paper result (normalized to DRAM): light — DRAM 1.000, ZRAM 1.122,
 * SWAP 1.003; heavy — DRAM 1.000, ZRAM 1.195, SWAP 1.017.
 *
 * Each (workload, scheme) pair is one ScenarioSpec variant: warmup,
 * then the `light_usage` / `heavy_usage` compound op. Cold launches
 * are identical across schemes and not part of the measured window,
 * so a pair of `custom` hooks snapshots activity after warm-up and
 * converts the 60 s window's delta into Joules
 * (MobileSystem::windowEnergyJoules).
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("table2", argc, argv);
    printBanner(std::cout,
                "Table 2: energy (J) under three swap schemes, 60 s");

    constexpr Tick window = Tick{60} * 1000000000ULL;

    auto scenario_joules = [&](const std::string &kind, const char *label,
                               bool heavy) {
        driver::ScenarioSpec spec = makeSpec(kind);
        spec.name = std::string(heavy ? "heavy" : "light") + "/" +
                    label;
        spec.program.push_back(driver::Event::warmup());
        spec.program.push_back(driver::Event::custom(0));
        if (heavy)
            spec.program.push_back(driver::Event::heavyUsage(window));
        else
            spec.program.push_back(driver::Event::lightUsage(
                window, Tick{1} * 1000000000ULL));
        spec.program.push_back(driver::Event::custom(1));

        ActivityTotals before;
        double joules = 0.0;
        driver::SessionHook snapshot =
            [&](MobileSystem &sys, SessionDriver &,
                driver::SessionResult &) {
                before = sys.activityTotals();
            };
        driver::SessionHook measure =
            [&](MobileSystem &sys, SessionDriver &,
                driver::SessionResult &) {
                joules = sys.windowEnergyJoules(before, window,
                                                evalScale);
            };
        report.add(runVariant(std::move(spec), {snapshot, measure}));
        return joules;
    };

    ReportTable table({"Workload", "Scheme", "Energy (J)", "Normalized",
                       "Paper"});
    const char *paper_light[] = {"1.000", "1.122", "1.003"};
    const char *paper_heavy[] = {"1.000", "1.195", "1.017"};

    for (bool heavy : {false, true}) {
        double dram = scenario_joules("dram", "dram", heavy);
        double zram = scenario_joules("zram", "zram", heavy);
        double swap = scenario_joules("swap", "swap", heavy);
        const char **paper = heavy ? paper_heavy : paper_light;
        const char *label = heavy ? "Heavy" : "Light";

        table.addRow({label, "DRAM", ReportTable::num(dram, 1), "1.000",
                      paper[0]});
        table.addRow({label, "ZRAM", ReportTable::num(zram, 1),
                      ReportTable::num(zram / dram, 3), paper[1]});
        table.addRow({label, "SWAP", ReportTable::num(swap, 1),
                      ReportTable::num(swap / dram, 3), paper[2]});
    }
    table.print(std::cout);
    report.addTable("energy", table);
    return report.finish();
}
