/**
 * @file
 * Application behaviour generator.
 *
 * An AppInstance is the runtime model of one application: it owns the
 * ground-truth hotness of every page and produces the event sequences
 * a session driver feeds into the simulated system:
 *
 *  - coldLaunch(): allocate the initial working set (launch data
 *    first, which is the ground-truth hot set);
 *  - execute(dt): grow the footprint along the Table 1 volume curve
 *    and re-touch warm pages;
 *  - relaunch(): churn the hot set with the paper's Fig. 5 statistics
 *    (hotSimilarity kept hot, reuseFraction kept hot-or-warm) and
 *    emit the relaunch access sequence with run-based locality
 *    matching Table 3's consecutive-sector probabilities.
 */

#ifndef ARIADNE_WORKLOAD_GENERATOR_HH
#define ARIADNE_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "mem/page.hh"
#include "sim/rng.hh"
#include "workload/app_model.hh"

namespace ariadne
{

/** One page access produced by an AppInstance. */
struct TouchEvent
{
    Pfn pfn = invalidPfn;
    std::uint32_t version = 0;
    Hotness truth = Hotness::Cold;
    bool newAllocation = false;
    bool write = false;
};

/** Runtime model of one application. */
class AppInstance
{
  public:
    /**
     * @param profile Static behaviour description.
     * @param scale Footprint scale factor (1.0 = paper volumes);
     * benches run scaled down and rescale latencies (EXPERIMENTS.md).
     * @param seed Deterministic seed for this instance's choices.
     */
    AppInstance(AppProfile profile, double scale, std::uint64_t seed);

    const AppProfile &profile() const noexcept { return prof; }

    /** First launch: allocates the initial working set. */
    std::vector<TouchEvent> coldLaunch();

    /** Foreground execution for @p dt; grows and touches pages. */
    std::vector<TouchEvent> execute(Tick dt);

    /**
     * Hot relaunch: churns the hot set and returns the relaunch
     * access sequence (hot pages only, locality-ordered).
     */
    std::vector<TouchEvent> relaunch();

    /** Ground-truth hotness of a page (w.r.t. the next relaunch). */
    Hotness truthOf(Pfn pfn) const;

    /** Current content version of a page. */
    std::uint32_t versionOf(Pfn pfn) const;

    /** Total pages allocated so far. */
    std::size_t pageCount() const noexcept { return pages.size(); }

    /** Current hot set in canonical access order. */
    const std::vector<Pfn> &hotSet() const noexcept { return hotList; }

    /** Hot set of the previous relaunch (empty before the first). */
    const std::vector<Pfn> &
    previousHotSet() const noexcept
    {
        return prevHotList;
    }

    /** Current warm pages (unordered). */
    const std::vector<Pfn> &warmSet() const noexcept { return warmList; }

    /** Current cold pages (unordered). */
    const std::vector<Pfn> &coldSet() const noexcept { return coldList; }

    /** Number of relaunches performed. */
    unsigned relaunchCount() const noexcept { return relaunches; }

    /** Accumulated foreground age. */
    Tick age() const noexcept { return ageNs; }

    /** Anonymous bytes currently allocated (scaled). */
    std::size_t
    anonBytes() const noexcept
    {
        return pages.size() * pageSize;
    }

  private:
    struct PageState
    {
        Hotness truth = Hotness::Cold;
        std::uint32_t version = 0;
    };

    /** Allocate a fresh page with @p truth; returns its event. */
    TouchEvent allocatePage(Hotness truth);

    /** Grow the footprint to match the profile curve at current age. */
    void appendGrowth(std::vector<TouchEvent> &events,
                      std::size_t target_pages);

    /**
     * Emit @p order indices with run-based locality. Returns a
     * reference to a member scratch vector, valid until the next
     * call — relaunch() runs this for every hot set, so the three
     * working vectors are reused instead of reallocated per call.
     */
    const std::vector<std::uint32_t> &localityOrder(std::size_t n);

    AppProfile prof;
    double scale;
    Rng rng;

    /** Indexed by pfn: pfns are handed out densely from 0 and never
     * freed, so page state is a flat array rather than a hash map. */
    std::vector<PageState> pages;
    std::vector<Pfn> hotList;     //!< canonical relaunch order
    std::vector<Pfn> prevHotList;
    std::vector<Pfn> warmList;
    std::vector<Pfn> coldList;

    // localityOrder working memory, reused across calls.
    std::vector<std::uint32_t> orderScratch;
    std::vector<std::uint32_t> unvisitedScratch;
    std::vector<std::uint32_t> positionScratch;

    Pfn nextPfn = 0;
    Tick ageNs = 0;
    unsigned relaunches = 0;
    std::size_t hotTargetPages = 0;
    bool launched = false;
};

} // namespace ariadne

#endif // ARIADNE_WORKLOAD_GENERATOR_HH
