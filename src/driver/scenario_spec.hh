/**
 * @file
 * Declarative description of one experiment scenario.
 *
 * A ScenarioSpec captures everything a run needs — scheme, Ariadne
 * configuration, footprint scale, base seed, app mix, fleet size and
 * an event program — in a value type that is constructible
 * programmatically (the bench harnesses do this) or parsed from a
 * simple `key = value` config format (ariadne_sim does this):
 *
 *     # Daily usage, §1: users switch apps >100 times a day.
 *     name = daily
 *     scheme = ariadne
 *     scheme.config = EHL-1K-2K-16K
 *     scale = 0.0625
 *     seed = 42
 *     fleet = 32
 *     event = warmup
 *     event = repeat 120
 *     event =   switch_next 2s 1s
 *     event = end
 *
 * The scheme axis is registry-driven (swap/scheme_registry.hh):
 * `scheme = NAME` selects any registered scheme and namespaced
 * `scheme.<knob> = value` lines set its policy knobs, validated
 * against the scheme's schema (`ariadne_sim --list-schemes` prints
 * every scheme with its knobs). The pre-registry flat keys —
 * `ariadne`, `seed_profiles`, `predecomp`, `hot_init_pages` — still
 * parse as deprecated aliases of the corresponding `scheme.*` knobs
 * and are dropped when the selected scheme lacks the knob, matching
 * their historically tolerated behaviour.
 *
 * The event program speaks the MobileSystem driver vocabulary
 * (cold-launch / execute / background / relaunch / idle) plus the
 * compound ops that encode the paper's methodology: `warmup`
 * (launch-use-background every app), `switch_next use idle`
 * (round-robin app switching, the daily-usage trace),
 * `target_scenario app variant` (the §5 measured-relaunch trace),
 * `prepare_target app variant` (the same trace minus the measured
 * relaunch), and `light_usage` / `heavy_usage` (the Table 2 usage
 * mixes). Programmatic specs may additionally embed `custom` events
 * that call back into bench-supplied hooks (see FleetRunner); those
 * have no config syntax.
 *
 * Which workload drives the fleet is itself an axis: `workload =
 * profiles` (default) runs the event program against the standard app
 * profiles, `workload = trace` replays a recorded trace (`trace =
 * FILE`, see `ariadne_sim --record`), and `workload = synthetic`
 * generates a heterogeneous user population from the `population_*`
 * keys — per-session app subsets, footprint spread and switch-rate
 * classes (see SyntheticPopulationSource). Sweep variants may
 * override any of these, which is how one sweep compares app mixes
 * side by side.
 *
 * A trace spec may additionally carry a *what-if* scheme override:
 * `scheme = zswap` (plus `scheme.*` knobs) re-runs the recorded
 * workload — its touch streams are bit-identical by construction —
 * under a different scheme or different policy knobs. Without an
 * override the replay reproduces the recorded report byte for byte.
 *
 * Parse errors throw SpecError rather than calling fatal(): the
 * driver is a library and its callers (CLI, tests) decide how to
 * surface bad user input.
 */

#ifndef ARIADNE_DRIVER_SCENARIO_SPEC_HH
#define ARIADNE_DRIVER_SCENARIO_SPEC_HH

#include <istream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sys/system_config.hh"
#include "workload/app_model.hh"

namespace ariadne::driver
{

/** Invalid scenario config text (message names the offending line). */
class SpecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One step of an event program. */
struct Event
{
    enum class Kind
    {
        Launch,         //!< cold-launch `app`
        Execute,        //!< run `app` in foreground for `duration`
        Background,     //!< background `app`
        Relaunch,       //!< measured hot relaunch of `app`
        Idle,           //!< idle wall time `duration`
        Warmup,         //!< launch-use-background every app
        SwitchNext,     //!< round-robin: relaunch next app, use
                        //!< `duration`, background, idle `gap`
        TargetScenario, //!< §5 methodology for `app`, `variant`
        PrepareTarget,  //!< TargetScenario minus the measured relaunch
        LightUsage,     //!< Table 2 light mix for `duration`, `gap`
        HeavyUsage,     //!< Table 2 heavy mix for `duration`
        Repeat,         //!< run `body` `count` times
        Custom,         //!< call bench hook `hook` (programmatic only)
    };

    Kind kind = Kind::Idle;
    std::string app;          //!< Launch/Execute/Background/Relaunch/
                              //!< TargetScenario/PrepareTarget
    Tick duration = 0;        //!< Execute/Idle; SwitchNext use time;
                              //!< LightUsage/HeavyUsage span
    Tick gap = 0;             //!< SwitchNext/LightUsage intermission
    unsigned variant = 0;     //!< TargetScenario/PrepareTarget variant
    std::size_t count = 0;    //!< Repeat iterations
    std::size_t hook = 0;     //!< Custom hook index (FleetRunner)
    std::vector<Event> body;  //!< Repeat sub-program

    // Convenience constructors for programmatic specs.
    static Event launch(std::string app);
    static Event execute(std::string app, Tick duration);
    static Event background(std::string app);
    static Event relaunch(std::string app);
    static Event idle(Tick duration);
    static Event warmup();
    static Event switchNext(Tick use, Tick gap);
    static Event targetScenario(std::string app, unsigned variant);
    static Event prepareTarget(std::string app, unsigned variant);
    static Event lightUsage(Tick duration, Tick gap);
    static Event heavyUsage(Tick duration);
    static Event repeat(std::size_t count, std::vector<Event> body);
    static Event custom(std::size_t hook_index);

    bool operator==(const Event &o) const;
};

/** Which workload source drives a scenario's sessions. */
enum class WorkloadKind
{
    Profiles,  //!< event program over the declared app profiles
    Trace,     //!< replay a recorded trace file bit-identically
    Synthetic, //!< per-session synthetic user population
};

/** Stable config-format name ("profiles" / "trace" / "synthetic"). */
const char *workloadKindName(WorkloadKind kind) noexcept;

/** Parse a workload kind (case-insensitive); throws SpecError. */
WorkloadKind parseWorkloadKind(const std::string &text);

/**
 * Parameters of a synthetic user population (`workload = synthetic`).
 * Every fleet session models one user: a subset of the app pool, a
 * per-app footprint multiplier, and a switch-rate class that shapes
 * its generated program. All draws are deterministic in
 * (seed, session index), so fleets stay thread-invariant.
 */
struct PopulationConfig
{
    /** Apps each user installs, drawn from the spec's pool
     * (0 = every app). */
    std::size_t appsPerUser = 0;
    /** Relative half-width of the per-app footprint multiplier:
     * volumes scale by 1 + U(-spread, spread). */
    double footprintSpread = 0.25;
    /** Share of light users (half the switches, double the gap). */
    double lightShare = 0.25;
    /** Share of heavy users (double the switches, half the use time,
     * no gap); the remainder are regular users. */
    double heavyShare = 0.25;
    /** App switches a regular user performs after warmup. */
    std::size_t switches = 40;
    /** Foreground use per switch of a regular user. */
    Tick useTime = Tick{2} * 1000000000ULL;
    /** Intermission between switches of a regular user. */
    Tick gap = Tick{1} * 1000000000ULL;

    bool operator==(const PopulationConfig &o) const = default;
};

/** Full declarative description of one scenario. */
struct ScenarioSpec
{
    std::string name = "unnamed";
    /** Registered scheme name (`scheme = ...`); see
     * SchemeRegistry. */
    std::string scheme = "zram";
    /** Scheme policy knobs (`scheme.<knob> = ...` lines), validated
     * against the scheme's schema at parse time. */
    SchemeParams params;
    double scale = 0.0625;
    /** Base seed; each fleet session derives its own from it. */
    std::uint64_t seed = 42;
    /** Default fleet size (the CLI --fleet flag overrides it). */
    std::size_t fleet = 1;
    /**
     * How fleet aggregates compute percentiles (`percentiles =
     * exact|sketch`). Exact keeps every sample (byte-reproducible,
     * memory O(samples)); sketch keeps a mergeable
     * PercentileSketch (memory O(sketch_k * log n), percentiles
     * within its tracked rank-error bound) — the mode for
     * million-session fleets and their shards.
     */
    PercentileMode percentiles = PercentileMode::Exact;
    /** Sketch buffer size (`sketch_k = N`, sketch mode only). */
    std::size_t sketchK = PercentileSketch::defaultK;
    /**
     * Cross-session compression memoization (`compress_memo =
     * on|off`, default on): fleet workers reuse compressed sizes of
     * recurring page contents across the sessions they run. Purely a
     * speed knob — compression is deterministic in the page bytes, so
     * reports are byte-identical either way; `off` exists to measure
     * the win and to bound worker memory on tiny machines.
     */
    bool compressMemo = true;

    /** Default gauge-sampling cadence (`timeline_interval_ms`). */
    static constexpr std::size_t defaultTimelineIntervalMs = 1000;
    /** Default journey sampling stride (`journey_sample`). */
    static constexpr std::size_t defaultJourneySample = 64;

    /**
     * Flight-recorder cadence (`timeline_interval_ms = N`, default
     * 1000, 0 = off): how often, in simulated milliseconds, each
     * session samples its gauges (zram/flash occupancy, free pages,
     * hotness populations, ...) for `--metrics` summaries and
     * `--timeline` series. Observability-only: sampling reads state,
     * so any value produces byte-identical reports.
     */
    std::size_t timelineIntervalMs = defaultTimelineIntervalMs;
    /**
     * Page-journey sampling stride (`journey_sample = K`, default
     * 64, min 1): `--journeys` follows every K-th page, selected by a
     * deterministic hash of (uid, pfn) so the sample is a property of
     * the workload, not of scheduling. Observability-only, like
     * timeline_interval_ms.
     */
    std::size_t journeySample = defaultJourneySample;

    /** App names; empty = all ten standard apps. For synthetic
     * workloads this is the pool users draw their subsets from. */
    std::vector<std::string> apps;
    std::vector<Event> program;

    /** Which workload source drives the fleet's sessions. */
    WorkloadKind workload = WorkloadKind::Profiles;
    /** Trace file to replay (workload = trace). */
    std::string tracePath;
    /** Population parameters (workload = synthetic). */
    PopulationConfig population;

    // What-if replay override (workload = trace only). The replay's
    // workload stream always comes from the recording; these swap the
    // scheme it runs under.
    /** Scheme to replay under; empty = the recorded scheme. */
    std::string replayScheme;
    /** Knob overrides: overlaid on the recorded knobs when the
     * scheme is unchanged, a fresh bag when it differs. */
    SchemeParams replayParams;

    /**
     * SystemConfig for fleet session @p session_index: the spec's
     * scheme/scale plus a per-session seed derived from the base seed,
     * so sessions are independent and reproducible in isolation.
     */
    SystemConfig systemConfig(std::size_t session_index) const;

    /**
     * Seed of fleet session @p session_index. Session 0 uses the base
     * seed unchanged (a fleet of one reproduces a plain run with that
     * seed); later sessions derive decorrelated seeds from it.
     */
    std::uint64_t sessionSeed(std::size_t session_index) const noexcept;

    /** Profiles for this spec's app mix (validated names). */
    std::vector<AppProfile> appProfiles() const;

    /** Serialize to the config format; parse(toString()) == *this. */
    std::string toString() const;

    /** Parse the config format; throws SpecError on invalid input. */
    static ScenarioSpec parse(std::istream &in);

    /** Parse from a string (convenience over the stream overload). */
    static ScenarioSpec parseString(const std::string &text);

    /** Load and parse a config file; throws SpecError when
     * unreadable. */
    static ScenarioSpec loadFile(const std::string &path);

    bool operator==(const ScenarioSpec &o) const;
};

/**
 * Incremental line-oriented parser behind ScenarioSpec::parse.
 *
 * SweepSpec reuses it to parse variant sections with their original
 * file line numbers, so sweep-config errors point at the right line.
 * feed() accepts one raw config line at a time; finish() validates
 * (open repeat blocks, app references) and returns the spec.
 */
class SpecParser
{
  public:
    SpecParser();
    ~SpecParser();
    SpecParser(SpecParser &&) noexcept;
    SpecParser &operator=(SpecParser &&) noexcept;

    /** Parse one raw line; @p lineno is used in error messages. */
    void feed(const std::string &raw_line, std::size_t lineno);

    /** Whether any `event` line has been fed so far. */
    bool sawEvents() const noexcept;

    /** Validate and return the accumulated spec (call once). */
    ScenarioSpec finish();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * One lexed config line. Both the scenario and the sweep parser read
 * the same `key = value` grammar (`#` starts a comment, whitespace is
 * trimmed), so the lexer is shared.
 */
struct ConfigLine
{
    /** Whole line was blank or a comment. */
    bool blank = true;
    /** Line contained a '='; key/value are only meaningful then. */
    bool hasEquals = false;
    std::string key;
    std::string value;
    /** Comment-stripped, trimmed text (for error messages). */
    std::string text;
};

/** Lex one raw config line (never throws; callers judge validity). */
ConfigLine lexConfigLine(const std::string &raw);

/**
 * Validate a `scheme =` value against the registry; returns the
 * canonical lowercase key or throws SpecError listing the registered
 * names.
 */
std::string parseSchemeName(const std::string &text);

/**
 * Parse a duration like "250ms", "2s", "1500us", "30" (plain = ns).
 * Throws SpecError on malformed input.
 */
Tick parseDuration(const std::string &text);

/** Render a Tick as the shortest exact suffix form ("2s", "250ms"). */
std::string formatDuration(Tick t);

} // namespace ariadne::driver

#endif // ARIADNE_DRIVER_SCENARIO_SPEC_HH
