/**
 * @file
 * Table 2: energy consumption under three swap schemes, light and
 * heavy workloads.
 *
 * Paper result (normalized to DRAM): light — DRAM 1.000, ZRAM 1.122,
 * SWAP 1.003; heavy — DRAM 1.000, ZRAM 1.195, SWAP 1.017.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

namespace
{

double
scenarioJoules(SchemeKind kind, bool heavy)
{
    SystemConfig cfg = makeConfig(kind);
    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    // Cold launches are identical across schemes and not part of the
    // measured window: snapshot after warm-up and report the delta.
    driver.warmUpAllApps();
    ActivityTotals before = sys.activityTotals();
    if (heavy)
        driver.heavyUsageScenario(Tick{60} * 1000000000ULL);
    else
        driver.lightUsageScenario(Tick{60} * 1000000000ULL);
    ActivityTotals totals = sys.activityTotals();
    totals.cpuBusyNs -= before.cpuBusyNs;
    totals.dramBytes -= before.dramBytes;
    totals.flashReadBytes -= before.flashReadBytes;
    totals.flashWriteBytes -= before.flashWriteBytes;
    totals.wallTimeNs = Tick{60} * 1000000000ULL;
    // Activity volumes are simulated at evalScale; rescale the
    // dynamic part to paper scale.
    totals.cpuBusyNs = static_cast<Tick>(
        static_cast<double>(totals.cpuBusyNs) / evalScale);
    totals.dramBytes = static_cast<std::size_t>(
        static_cast<double>(totals.dramBytes) / evalScale);
    totals.flashReadBytes = static_cast<std::size_t>(
        static_cast<double>(totals.flashReadBytes) / evalScale);
    totals.flashWriteBytes = static_cast<std::size_t>(
        static_cast<double>(totals.flashWriteBytes) / evalScale);
    return EnergyModel(cfg.energy).joules(totals);
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Table 2: energy (J) under three swap schemes, 60 s");

    ReportTable table({"Workload", "Scheme", "Energy (J)", "Normalized",
                       "Paper"});
    const char *paper_light[] = {"1.000", "1.122", "1.003"};
    const char *paper_heavy[] = {"1.000", "1.195", "1.017"};

    for (bool heavy : {false, true}) {
        double dram = scenarioJoules(SchemeKind::Dram, heavy);
        double zram = scenarioJoules(SchemeKind::Zram, heavy);
        double swap = scenarioJoules(SchemeKind::Swap, heavy);
        const char **paper = heavy ? paper_heavy : paper_light;
        const char *label = heavy ? "Heavy" : "Light";

        table.addRow({label, "DRAM", ReportTable::num(dram, 1), "1.000",
                      paper[0]});
        table.addRow({label, "ZRAM", ReportTable::num(zram, 1),
                      ReportTable::num(zram / dram, 3), paper[1]});
        table.addRow({label, "SWAP", ReportTable::num(swap, 1),
                      ReportTable::num(swap / dram, 3), paper[2]});
    }
    table.print(std::cout);
    return 0;
}
