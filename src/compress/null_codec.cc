#include "compress/null_codec.hh"

#include <cstring>

namespace ariadne
{

std::size_t
NullCodec::compress(ConstBytes src, MutableBytes dst) const
{
    if (dst.size() < src.size())
        return 0;
    if (!src.empty()) // data() may be null for empty spans
        std::memcpy(dst.data(), src.data(), src.size());
    return src.size();
}

std::size_t
NullCodec::decompress(ConstBytes src, MutableBytes dst) const
{
    if (dst.size() < src.size())
        return 0;
    if (!src.empty())
        std::memcpy(dst.data(), src.data(), src.size());
    return src.size();
}

} // namespace ariadne
