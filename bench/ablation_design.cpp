/**
 * @file
 * Ablation study for the design decisions called out in DESIGN.md §5.
 *
 * Each row disables exactly one Ariadne mechanism and reruns the
 * standard target-relaunch scenario plus a three-cycle CPU
 * measurement, so the contribution of every technique is visible in
 * isolation:
 *
 *  - D1 no-hotness-seeding: the hot list starts empty (profile = 0
 *    pages), so initialization degenerates to cold-first LRU until
 *    the first relaunch teaches the scheme;
 *  - D2 single-size: Small = Medium = Large = 4 KB removes
 *    AdaptiveComp's size adaptation (HotnessOrg + PreDecomp only);
 *  - D3 no-predecomp: speculation disabled;
 *  - D4 no-cold-batching: LargeSize = 4 KB stores cold pages as
 *    single-page units (no multi-page decompression risk, but no
 *    large-window ratio either);
 *  - EHL vs AL: hot-list exemption versus all-lists compression.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

namespace
{

struct Variant
{
    std::string label;
    SystemConfig cfg;
};

struct Outcome
{
    double relaunchMs;
    double cpuMs;
    double ratio;
};

Outcome
run(const SystemConfig &cfg)
{
    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    AppId uid = standardApp("YouTube").uid;
    RelaunchStats st;
    for (unsigned v = 0; v < 3; ++v)
        st = driver.targetRelaunchScenario(uid, v);
    return {fullScaleMs(st),
            static_cast<double>(sys.cpu().compDecompTotal()) / 1e6,
            sys.scheme().totalStats().ratio()};
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: contribution of each Ariadne mechanism "
                "(YouTube target, 3 cycles)");

    std::vector<Variant> variants;
    variants.push_back({"ZRAM baseline", makeConfig(SchemeKind::Zram)});
    variants.push_back(
        {"Ariadne full (EHL-1K-2K-16K)",
         makeConfig(SchemeKind::Ariadne, "EHL-1K-2K-16K")});

    {
        Variant v{"D1 no hotness seeding",
                  makeConfig(SchemeKind::Ariadne, "EHL-1K-2K-16K")};
        v.cfg.seedAriadneProfiles = false;
        v.cfg.ariadne.defaultHotInitPages = 0;
        variants.push_back(v);
    }
    {
        Variant v{"D2 single 4K size",
                  makeConfig(SchemeKind::Ariadne, "EHL-4K-4K-4K")};
        variants.push_back(v);
    }
    {
        Variant v{"D3 no predecomp",
                  makeConfig(SchemeKind::Ariadne, "AL-1K-2K-16K")};
        v.cfg.ariadne.preDecompEnabled = false;
        variants.push_back(v);
    }
    {
        Variant v{"D3 control (AL, predecomp on)",
                  makeConfig(SchemeKind::Ariadne, "AL-1K-2K-16K")};
        variants.push_back(v);
    }
    {
        Variant v{"D4 no cold batching",
                  makeConfig(SchemeKind::Ariadne, "EHL-1K-2K-4K")};
        variants.push_back(v);
    }

    ReportTable table({"Variant", "Relaunch (ms)", "Comp+decomp CPU "
                                                   "(ms)",
                       "Ratio"});
    for (const auto &v : variants) {
        Outcome o = run(v.cfg);
        table.addRow({v.label, ReportTable::num(o.relaunchMs, 1),
                      ReportTable::num(o.cpuMs, 1),
                      ReportTable::num(o.ratio, 2)});
    }
    table.print(std::cout);
    std::cout << "\nEach mechanism matters: seeding protects the "
                 "first relaunch, size adaptation buys ratio and CPU, "
                 "predecomp hides AL decompression, cold batching "
                 "trades ratio against misprediction cost.\n";
    return 0;
}
