#include "compress/codec.hh"

#include "sim/log.hh"

namespace ariadne
{

std::vector<std::size_t>
Codec::compressBatch(std::span<const ConstBytes> srcs,
                     std::span<const MutableBytes> dsts) const
{
    fatalIf(srcs.size() != dsts.size(),
            "Codec::compressBatch: src/dst count mismatch");
    std::unique_ptr<BatchState> state = makeBatchState();
    std::vector<std::size_t> sizes(srcs.size());
    for (std::size_t i = 0; i < srcs.size(); ++i)
        sizes[i] = compress(srcs[i], dsts[i], state.get());
    return sizes;
}

std::vector<std::size_t>
Codec::sizeBatch(std::span<const ConstBytes> srcs) const
{
    std::unique_ptr<BatchState> state = makeBatchState();
    std::vector<std::uint8_t> scratch;
    std::vector<std::size_t> sizes(srcs.size());
    for (std::size_t i = 0; i < srcs.size(); ++i) {
        std::size_t bound = compressBound(srcs[i].size());
        if (scratch.size() < bound)
            scratch.resize(bound);
        sizes[i] =
            compress(srcs[i], {scratch.data(), bound}, state.get());
    }
    return sizes;
}

} // namespace ariadne
