#include "compress/lzo.hh"

#include <cstring>
#include <vector>

#include "compress/batch_table.hh"
#include "compress/wide_copy.hh"

namespace ariadne
{

namespace
{

constexpr std::size_t minMatch = 3;
constexpr std::size_t maxMatch = 18;
constexpr std::size_t maxOffset = 4095;
constexpr unsigned hashBits = 12;
constexpr std::size_t hashSize = std::size_t{1} << hashBits;

std::uint32_t
read32(const std::uint8_t *p) noexcept
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
read64(const std::uint8_t *p) noexcept
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** The three match bytes as a little-endian word. */
std::uint32_t
load24(const std::uint8_t *p) noexcept
{
    return p[0] | (std::uint32_t{p[1]} << 8) |
                  (std::uint32_t{p[2]} << 16);
}

std::uint32_t
hashOf24(std::uint32_t v) noexcept
{
    return (v * 2654435761u) >> (32 - hashBits);
}

std::size_t
boundFor(std::size_t n) noexcept
{
    // All-literal worst case: one flag byte per 8 literals.
    return n + n / 8 + 2;
}

/**
 * The match loop, parameterized on a biased position table (see
 * batch_table.hh): @p table entries are position + @p bias, and only
 * entries >= bias reference this buffer. A zero-filled table with
 * bias 1 behaves exactly like a fresh sentinel-filled table.
 *
 * @tparam checkOffset false only when src.size() <= maxOffset + 1,
 * where every in-buffer distance fits the window and the range check
 * is vacuously true (the common page/chunk-sized call).
 */
template <bool checkOffset>
std::size_t
compressWith(ConstBytes src, MutableBytes dst, std::uint32_t *table,
             std::uint32_t bias)
{
    const std::size_t n = src.size();
    if (dst.size() < boundFor(n))
        return 0;

    const std::uint8_t *ip = src.data();
    const std::uint8_t *const iend = ip + n;
    std::uint8_t *op = dst.data();

    // A group far enough from the end can never exhaust the input
    // (8 items consume at most 8 * maxMatch bytes) and every 4-byte
    // load stays in bounds, so its items skip all per-item bounds
    // checks. The checked loop below handles the remainder; both
    // produce identical items.
    constexpr std::size_t fastGroupBytes = 8 * maxMatch + 4;

    while (ip < iend) {
        // One flag byte per group of 8 items, accumulated in a
        // register and stored once when the group closes.
        std::uint8_t *flags = op++;
        std::uint8_t flag_byte = 0;
        if (static_cast<std::size_t>(iend - ip) >= fastGroupBytes) {
            // One 64-bit load holds the 3-byte probe windows of six
            // consecutive positions; literal items slide through it
            // instead of reloading. Reload after a match (ip jumped)
            // or once the window is spent. Always in bounds: even the
            // group's last item has >= fastGroupBytes - 7 * maxMatch
            // = 22 input bytes left.
            std::uint64_t w = 0;
            unsigned wpos = 6; // spent — forces a load on entry
            for (unsigned bit = 0; bit < 8; ++bit) {
                if (wpos >= 6) {
                    w = read64(ip);
                    wpos = 0;
                }
                std::uint32_t v24 =
                    static_cast<std::uint32_t>(w >> (8 * wpos)) &
                    0xffffffu;
                std::uint32_t h = hashOf24(v24);
                std::uint32_t entry = table[h];
                auto cur_pos =
                    static_cast<std::uint32_t>(ip - src.data());
                table[h] = cur_pos + bias;
                // Entries below the bias were written by earlier
                // buffers of the batch (or never) — the fresh-table
                // sentinel test.
                std::uint32_t ref_pos = entry - bias;
                if (entry >= bias &&
                    (!checkOffset ||
                     cur_pos - ref_pos <= maxOffset) &&
                    (read32(src.data() + ref_pos) & 0xffffffu) ==
                        v24) {
                    const std::uint8_t *ref = src.data() + ref_pos;
                    // Extend eight bytes per compare (in bounds: the
                    // group keeps maxMatch + word slack ahead), then
                    // byte-wise — the same length a byte loop finds.
                    std::size_t len = minMatch;
                    while (len + 8 <= maxMatch) {
                        std::uint64_t diff = read64(ip + len) ^
                                             read64(ref + len);
                        if (diff) {
                            len += static_cast<std::size_t>(
                                       __builtin_ctzll(diff)) >>
                                   3;
                            break;
                        }
                        len += 8;
                    }
                    while (len < maxMatch && ref[len] == ip[len])
                        ++len;
                    std::size_t offset = cur_pos - ref_pos;
                    flag_byte |=
                        static_cast<std::uint8_t>(1u << bit);
                    *op++ = static_cast<std::uint8_t>(
                        ((len - minMatch) << 4) |
                        ((offset >> 8) & 0x0f));
                    *op++ = static_cast<std::uint8_t>(offset & 0xff);
                    ip += len;
                    wpos = 6; // window no longer covers ip
                } else {
                    *op++ = *ip++;
                    ++wpos;
                }
            }
            *flags = flag_byte;
            continue;
        }
        for (unsigned bit = 0; bit < 8 && ip < iend; ++bit) {
            bool matched = false;
            if (ip + minMatch <= iend) {
                // Off the last three bytes, a single 4-byte load
                // (masked to 24 bits) replaces the byte-at-a-time
                // gather for both the hash input and the candidate
                // compare; the values — and therefore the output —
                // are identical.
                bool word_safe =
                    static_cast<std::size_t>(iend - ip) >= 4;
                std::uint32_t v24 =
                    word_safe ? (read32(ip) & 0xffffffu) : load24(ip);
                std::uint32_t h = hashOf24(v24);
                std::uint32_t entry = table[h];
                auto cur_pos =
                    static_cast<std::uint32_t>(ip - src.data());
                table[h] = cur_pos + bias;
                std::uint32_t ref_pos = entry - bias;
                if (entry >= bias &&
                    (!checkOffset ||
                     cur_pos - ref_pos <= maxOffset) &&
                    (word_safe
                         ? (read32(src.data() + ref_pos) &
                            0xffffffu) == v24
                         : std::memcmp(src.data() + ref_pos, ip,
                                       minMatch) == 0)) {
                    const std::uint8_t *ref = src.data() + ref_pos;
                    std::size_t len = minMatch;
                    std::size_t limit = std::min(
                        maxMatch,
                        static_cast<std::size_t>(iend - ip));
                    while (len < limit && ref[len] == ip[len])
                        ++len;
                    std::size_t offset = cur_pos - ref_pos;
                    flag_byte |=
                        static_cast<std::uint8_t>(1u << bit);
                    *op++ = static_cast<std::uint8_t>(
                        ((len - minMatch) << 4) |
                        ((offset >> 8) & 0x0f));
                    *op++ = static_cast<std::uint8_t>(offset & 0xff);
                    ip += len;
                    matched = true;
                }
            }
            if (!matched)
                *op++ = *ip++;
        }
        *flags = flag_byte;
    }
    return static_cast<std::size_t>(op - dst.data());
}

/** Dispatch to the offset-check-free loop for window-sized buffers. */
std::size_t
compressDispatch(ConstBytes src, MutableBytes dst, std::uint32_t *table,
                 std::uint32_t bias)
{
    if (src.size() <= maxOffset + 1)
        return compressWith<false>(src, dst, table, bias);
    return compressWith<true>(src, dst, table, bias);
}

} // namespace

std::size_t
LzoCodec::compressBound(std::size_t n) const noexcept
{
    return boundFor(n);
}

std::size_t
LzoCodec::compress(ConstBytes src, MutableBytes dst) const
{
    std::vector<std::uint32_t> table(hashSize, 0);
    return compressDispatch(src, dst, table.data(), 1);
}

std::unique_ptr<Codec::BatchState>
LzoCodec::makeBatchState() const
{
    return std::make_unique<compress_detail::PosTableState>(hashSize);
}

std::size_t
LzoCodec::compress(ConstBytes src, MutableBytes dst,
                   BatchState *state) const
{
    if (!state)
        return compress(src, dst);
    auto &pos = static_cast<compress_detail::PosTableState &>(*state);
    return compressDispatch(src, dst, pos.data(),
                            pos.claim(src.size()));
}

std::size_t
LzoCodec::decompress(ConstBytes src, MutableBytes dst) const
{
    const std::uint8_t *ip = src.data();
    const std::uint8_t *const iend = ip + src.size();
    std::uint8_t *op = dst.data();
    std::uint8_t *const oend = op + dst.size();

    while (ip < iend) {
        std::uint8_t flags = *ip++;
        // All-literal group with room on both sides: one 8-byte copy
        // replaces eight flag tests (incompressible pages hit this on
        // nearly every group).
        if (flags == 0 && static_cast<std::size_t>(iend - ip) >= 8 &&
            static_cast<std::size_t>(oend - op) >= 8) {
            std::memcpy(op, ip, 8);
            ip += 8;
            op += 8;
            continue;
        }
        for (unsigned bit = 0; bit < 8 && ip < iend; ++bit) {
            if (flags & (1u << bit)) {
                if (iend - ip < 2)
                    return 0;
                std::size_t len = (ip[0] >> 4) + minMatch;
                std::size_t offset =
                    (static_cast<std::size_t>(ip[0] & 0x0f) << 8) |
                    ip[1];
                ip += 2;
                if (offset == 0 ||
                    offset > static_cast<std::size_t>(op - dst.data())) {
                    return 0;
                }
                if (static_cast<std::size_t>(oend - op) < len)
                    return 0;
                op = compress_detail::copyMatch(op, offset, len, oend);
            } else {
                if (op >= oend)
                    return 0;
                *op++ = *ip++;
            }
        }
    }
    return static_cast<std::size_t>(op - dst.data());
}

} // namespace ariadne
