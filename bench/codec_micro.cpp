/**
 * @file
 * Microbenchmarks of the from-scratch codecs (google-benchmark).
 *
 * These measure *host* throughput of the functional implementations
 * (roundtrip-verified elsewhere); simulated latencies in the paper
 * experiments come from the calibrated TimingModel instead.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "compress/chunked.hh"
#include "compress/registry.hh"
#include "workload/apps.hh"
#include "workload/page_synth.hh"

using namespace ariadne;

namespace
{

std::vector<std::uint8_t>
corpus(std::size_t pages)
{
    auto apps = standardApps();
    PageSynthesizer synth(apps);
    std::vector<std::uint8_t> data(pages * pageSize);
    for (std::size_t i = 0; i < pages; ++i) {
        PageKey key{apps[i % apps.size()].uid, static_cast<Pfn>(i)};
        synth.materialize(key, 0,
                          {data.data() + i * pageSize, pageSize});
    }
    return data;
}

void
compressBench(benchmark::State &state, CodecKind kind)
{
    auto codec = makeCodec(kind);
    auto data = corpus(256); // 1 MiB
    auto chunk = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto frame = ChunkedFrame::compress(
            *codec, {data.data(), data.size()}, chunk);
        benchmark::DoNotOptimize(frame.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * data.size()));
}

void
decompressBench(benchmark::State &state, CodecKind kind)
{
    auto codec = makeCodec(kind);
    auto data = corpus(256);
    auto chunk = static_cast<std::size_t>(state.range(0));
    auto frame = ChunkedFrame::compress(*codec,
                                        {data.data(), data.size()},
                                        chunk);
    std::vector<std::uint8_t> out(data.size());
    for (auto _ : state) {
        auto n = ChunkedFrame::decompress(
            *codec, {frame.data(), frame.size()},
            {out.data(), out.size()});
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * data.size()));
}

} // namespace

BENCHMARK_CAPTURE(compressBench, lz4, CodecKind::Lz4)
    ->Arg(128)->Arg(4096)->Arg(65536);
BENCHMARK_CAPTURE(compressBench, lzo, CodecKind::Lzo)
    ->Arg(128)->Arg(4096)->Arg(65536);
BENCHMARK_CAPTURE(compressBench, bdi, CodecKind::Bdi)
    ->Arg(4096);
BENCHMARK_CAPTURE(decompressBench, lz4, CodecKind::Lz4)
    ->Arg(128)->Arg(4096)->Arg(65536);
BENCHMARK_CAPTURE(decompressBench, lzo, CodecKind::Lzo)
    ->Arg(128)->Arg(4096)->Arg(65536);

BENCHMARK_MAIN();
