/**
 * @file
 * Sector-locality metrics (Table 3 / Insight 3).
 */

#ifndef ARIADNE_ANALYSIS_LOCALITY_HH
#define ARIADNE_ANALYSIS_LOCALITY_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace ariadne
{

/**
 * Probability of accessing @p run_length consecutive pages in zpool:
 * the fraction of length-@p run_length windows of the access stream
 * whose successive sectors are adjacent (same block or the next one,
 * matching "contiguous or nearby memory locations in zpool").
 *
 * run_length = 2 and 4 reproduce the two rows of Table 3.
 */
double consecutiveAccessProbability(const std::vector<Sector> &accesses,
                                    std::size_t run_length);

/** True when @p next is adjacent to @p cur in sector space. */
bool sectorsAdjacent(Sector cur, Sector next) noexcept;

} // namespace ariadne

#endif // ARIADNE_ANALYSIS_LOCALITY_HH
