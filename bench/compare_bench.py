#!/usr/bin/env python3
"""Compare a BENCH_*.json perf report against a committed baseline.

Usage:
    compare_bench.py CURRENT BASELINE [--rate-tolerance 0.25]
                     [--counter-tolerance 0.0] [--update]

Rates (sessions/sec, pages/sec.*) may regress by at most
--rate-tolerance relative to the baseline (improvements always pass).
Telemetry counters are deterministic functions of the workload, so
they must match the baseline within --counter-tolerance (default:
exactly); a counter drift means the simulator does different *work*
than it did at the baseline commit, which is a behavioural change
that deserves a baseline refresh in the same PR.

Every run prints a per-metric delta table — pass or fail — so a CI
log always shows how far each rate and counter moved, not just which
one crossed the line. --update copies CURRENT over BASELINE after the
comparison (ignoring failures), which is how baselines are re-recorded
after an intentional perf or behaviour change.

Metrics the current run emits that the baseline lacks cannot gate —
they print as WARN so a new rate or counter is never silently
untracked; refreshing the baseline (--update) starts gating them.
Counters matching VOLATILE_COUNTER_PREFIXES (per-worker scheduling
artifacts like the compression memo's hit/miss split) are
informational only.

Wall time, RSS, and duration accumulators are machine-dependent and
reported for information only. Exit status: 0 pass, 1 fail, 2 usage
(--update always exits 0 once the baseline is written).
"""

import argparse
import json
import shutil
import sys

# Counters whose values depend on host-side scheduling rather than on
# simulated work: the compression memo is per worker thread, and which
# worker claims which session is a race, so cross-session hit/miss
# totals legitimately vary run to run (report bytes do not). They are
# reported for information and never gate.
VOLATILE_COUNTER_PREFIXES = ("compressor.memo.",)


def is_volatile(name):
    return name.startswith(VOLATILE_COUNTER_PREFIXES)


def fail_usage(msg):
    """Input problems (missing/corrupt/mismatched files) are usage
    errors: one line on stderr, exit 2, never a traceback."""
    print(f"compare_bench: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        fail_usage(f"cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        fail_usage(f"{path} is not valid JSON (truncated or corrupt "
                   f"benchmark output?): {e}")
    if not isinstance(doc, dict) or doc.get("ariadneBench") != 1:
        fail_usage(f"{path}: not an ariadneBench v1 document")
    if "bench" not in doc:
        fail_usage(f"{path}: missing the 'bench' name field")
    return doc


def fmt_delta(cur, base):
    if base == 0:
        return "n/a" if cur == 0 else "new"
    return f"{(cur - base) / base:+.1%}"


def print_table(rows):
    """rows: (kind, name, current, baseline, delta, status)."""
    if not rows:
        return
    widths = [max(len(str(r[i])) for r in rows) for i in range(6)]
    for kind, name, cur, base, delta, status in rows:
        print(f"  {kind:<{widths[0]}}  {name:<{widths[1]}}  "
              f"{cur:>{widths[2]}}  {base:>{widths[3]}}  "
              f"{delta:>{widths[4]}}  {status}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--rate-tolerance", type=float, default=0.25,
                    help="max fractional rate regression (default 0.25)")
    ap.add_argument("--counter-tolerance", type=float, default=0.0,
                    help="max fractional counter drift (default exact)")
    ap.add_argument("--update", action="store_true",
                    help="re-record: copy CURRENT over BASELINE after "
                         "comparing (always exits 0)")
    args = ap.parse_args()

    cur = load(args.current)
    base = load(args.baseline)
    if cur["bench"] != base["bench"]:
        fail_usage(f"bench mismatch: {cur['bench']} vs "
                   f"{base['bench']}")

    failures = []
    rows = [("kind", "metric", "current", "baseline", "delta",
             "status")]

    cur_rates = cur.get("rates", {})
    for name, base_rate in base.get("rates", {}).items():
        cur_rate = cur_rates.get(name)
        if cur_rate is None:
            failures.append(f"rate '{name}' missing from current run")
            rows.append(("rate", name, "missing", f"{base_rate:.1f}",
                         "n/a", "FAIL"))
            continue
        floor = base_rate * (1.0 - args.rate_tolerance)
        ok = cur_rate >= floor
        rows.append(("rate", name, f"{cur_rate:.1f}",
                     f"{base_rate:.1f}", fmt_delta(cur_rate, base_rate),
                     "ok" if ok else "FAIL"))
        if not ok:
            failures.append(
                f"rate '{name}' regressed: {cur_rate:.1f} < "
                f"{floor:.1f} ({args.rate_tolerance:.0%} band below "
                f"baseline {base_rate:.1f})")
    warnings = []
    for name, cur_rate in cur_rates.items():
        if name not in base.get("rates", {}):
            rows.append(("rate", name, f"{cur_rate:.1f}", "absent",
                         "new", "WARN"))
            warnings.append(
                f"rate '{name}' absent from baseline — it is not "
                f"gated; refresh the baseline to start tracking it")

    cur_counters = cur.get("counters", {})
    for name, base_val in base.get("counters", {}).items():
        cur_val = cur_counters.get(name)
        if is_volatile(name):
            rows.append(("counter", name,
                         "missing" if cur_val is None else str(cur_val),
                         str(base_val), "n/a", "volatile"))
            continue
        if cur_val is None:
            failures.append(f"counter '{name}' missing from current run")
            rows.append(("counter", name, "missing", str(base_val),
                         "n/a", "FAIL"))
            continue
        limit = abs(base_val) * args.counter_tolerance
        ok = abs(cur_val - base_val) <= limit
        rows.append(("counter", name, str(cur_val), str(base_val),
                     fmt_delta(cur_val, base_val),
                     "ok" if ok else "FAIL"))
        if not ok:
            failures.append(
                f"counter '{name}' drifted: {cur_val} vs baseline "
                f"{base_val} (tolerance {args.counter_tolerance:.0%})")

    for name in cur_counters:
        if name not in base.get("counters", {}):
            status = "volatile" if is_volatile(name) else "WARN"
            rows.append(("counter", name, str(cur_counters[name]),
                         "absent", "new", status))
            if not is_volatile(name):
                warnings.append(
                    f"counter '{name}' absent from baseline — new "
                    f"instrumentation is not gated; refresh the "
                    f"baseline to start tracking it")

    print(f"{cur['bench']}: current vs baseline")
    print_table(rows)
    for w in warnings:
        print(f"WARN: {w}")
    print(f"info: wall {cur.get('wallSeconds', 0):.2f}s vs baseline "
          f"{base.get('wallSeconds', 0):.2f}s, peak RSS "
          f"{cur.get('peakRssBytes', 0) // (1 << 20)} MiB "
          f"(informational)")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"UPDATED: {args.baseline} re-recorded from "
              f"{args.current}"
              + (f" (overriding {len(failures)} failure(s))"
                 if failures else ""))
        return 0

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"PASS: {cur['bench']} within tolerance "
          f"(rates {args.rate_tolerance:.0%}, counters "
          f"{args.counter_tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
