/**
 * @file
 * Fig. 3: CPU usage of the memory reclamation procedure (kswapd)
 * under DRAM / ZRAM / SWAP.
 *
 * Paper result: ZRAM increases reclaim CPU ~2.6x over DRAM and ~2.0x
 * over SWAP (compression runs on the reclaim thread; SWAP mostly
 * yields the CPU while the device writes).
 *
 * Each scheme is one ScenarioSpec variant running the `light_usage`
 * compound op (the Table 2 light mix) for 60 s.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("fig3", argc, argv);
    printBanner(std::cout,
                "Fig. 3: kswapd CPU usage (ms) over a 60 s scenario");

    auto kswapd_cpu_ms = [&](const std::string &kind, const char *label) {
        driver::ScenarioSpec spec = makeSpec(kind);
        spec.name = std::string("light/") + label;
        spec.program.push_back(
            driver::Event::lightUsage(Tick{60} * 1000000000ULL,
                                      Tick{1} * 1000000000ULL));
        driver::FleetResult r = runVariant(std::move(spec));
        report.add(r);
        return static_cast<double>(session(r).kswapdCpuNs) / 1e6;
    };

    double dram = kswapd_cpu_ms("dram", "dram");
    double zram = kswapd_cpu_ms("zram", "zram");
    double swap = kswapd_cpu_ms("swap", "swap");

    ReportTable table({"Scheme", "kswapd CPU (ms)", "vs DRAM"});
    table.addRow({"DRAM", ReportTable::num(dram, 1), "1.00"});
    table.addRow({"ZRAM", ReportTable::num(zram, 1),
                  ReportTable::num(zram / dram, 2)});
    table.addRow({"SWAP", ReportTable::num(swap, 1),
                  ReportTable::num(swap / dram, 2)});
    table.print(std::cout);

    std::cout << "\nZRAM/DRAM = " << ReportTable::num(zram / dram, 2)
              << " (paper: 2.6x), ZRAM/SWAP = "
              << ReportTable::num(zram / swap, 2) << " (paper: 2.0x)\n";
    report.addTable("kswapd_cpu_ms", table);
    return report.finish();
}
