/**
 * @file
 * Minimal streaming JSON writer for machine-readable reports.
 *
 * The fleet driver promises bit-identical output for identical runs
 * regardless of thread count, so number formatting must be
 * deterministic: doubles are emitted with std::to_chars (shortest
 * round-trippable form), never locale- or precision-dependent
 * iostream formatting. Non-finite doubles become null (JSON has no
 * inf/nan).
 *
 * Also provides JSON dumps of the existing text-report types
 * (StatRegistry, ReportTable) so every harness can emit
 * machine-readable output next to its tables.
 */

#ifndef ARIADNE_DRIVER_JSON_WRITER_HH
#define ARIADNE_DRIVER_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ariadne
{

class ReportTable;
class StatRegistry;

namespace driver
{

/**
 * Streaming writer producing pretty-printed JSON. Usage mirrors the
 * document structure:
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.field("name", "daily");
 *   w.key("sessions"); w.beginArray(); ... w.endArray();
 *   w.endObject();
 *
 * Structural mistakes (value without key inside an object, unbalanced
 * end calls) trigger panic(): they are programming errors, not input
 * errors.
 */
class JsonWriter
{
  public:
    /** @param indent_width Spaces per nesting level (0 = compact). */
    explicit JsonWriter(std::ostream &os, int indent_width = 2)
        : out(os), indentWidth(indent_width)
    {
    }

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next emission must be its value. */
    void key(const std::string &name);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);
    void nullValue();

    /** key() plus value() in one call. */
    template <typename T>
    void
    field(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

    /** Deterministic shortest round-trip form of a double. */
    static std::string formatDouble(double v);

  private:
    enum class Scope { Object, Array };

    void beforeValue();
    void beforeKey();
    void newline();

    std::ostream &out;
    int indentWidth;
    std::vector<Scope> scopes;
    /** Whether the current scope has emitted at least one element. */
    std::vector<bool> populated;
    bool keyPending = false;
};

/** Dump a StatRegistry as {"counters": {...}, "scalars": {...}}. */
void writeJson(JsonWriter &w, const StatRegistry &registry);

/** Dump a ReportTable as an array of column-keyed row objects. */
void writeJson(JsonWriter &w, const ReportTable &table);

} // namespace driver
} // namespace ariadne

#endif // ARIADNE_DRIVER_JSON_WRITER_HH
