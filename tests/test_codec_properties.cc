/**
 * @file
 * Property-based tests applied uniformly to every codec: roundtrip
 * identity, bound correctness, determinism, and robustness against
 * random corruption (decoders must never overrun, crash, or return a
 * full-size success for mangled input they cannot decode).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "codec_test_util.hh"
#include "compress/registry.hh"

using namespace ariadne;
using namespace ariadne::testutil;

class CodecProperty : public ::testing::TestWithParam<CodecKind>
{
  protected:
    std::unique_ptr<Codec> codec = makeCodec(GetParam());
};

TEST_P(CodecProperty, RoundtripRandomSizes)
{
    Rng rng(0xABCDEF ^ static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 50; ++trial) {
        std::size_t n = rng.below(10000);
        auto src = mixedBuffer(n, rng.next64());
        EXPECT_EQ(roundtrip(*codec, src), src) << "n=" << n;
    }
}

TEST_P(CodecProperty, CompressedSizeWithinBound)
{
    Rng rng(0x1234 ^ static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 30; ++trial) {
        std::size_t n = 1 + rng.below(8192);
        auto src = randomBuffer(n, rng.next64());
        std::vector<std::uint8_t> comp(codec->compressBound(n));
        std::size_t csize = codec->compress({src.data(), n},
                                            {comp.data(), comp.size()});
        EXPECT_GT(csize, 0u);
        EXPECT_LE(csize, codec->compressBound(n));
    }
}

TEST_P(CodecProperty, CompressionIsDeterministic)
{
    auto src = mixedBuffer(4096, 42);
    std::vector<std::uint8_t> a(codec->compressBound(src.size()));
    std::vector<std::uint8_t> b(codec->compressBound(src.size()));
    std::size_t ca =
        codec->compress({src.data(), src.size()}, {a.data(), a.size()});
    std::size_t cb =
        codec->compress({src.data(), src.size()}, {b.data(), b.size()});
    ASSERT_EQ(ca, cb);
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), ca));
}

TEST_P(CodecProperty, FuzzedInputNeverCrashes)
{
    // Random garbage fed straight to the decoder: any return value is
    // acceptable as long as nothing crashes and bounds hold (the
    // sanitizer-visible contract).
    Rng rng(0xFEED ^ static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 200; ++trial) {
        std::size_t n = 1 + rng.below(512);
        auto garbage = randomBuffer(n, rng.next64());
        std::vector<std::uint8_t> out(pageSize);
        std::size_t got = codec->decompress({garbage.data(), n},
                                            {out.data(), out.size()});
        EXPECT_LE(got, out.size());
    }
}

TEST_P(CodecProperty, BitflippedFramesNeverOverrun)
{
    Rng rng(0xF1A9 ^ static_cast<std::uint64_t>(GetParam()));
    auto src = mixedBuffer(2048, 77);
    std::vector<std::uint8_t> comp(codec->compressBound(src.size()));
    std::size_t csize = codec->compress({src.data(), src.size()},
                                        {comp.data(), comp.size()});
    for (int trial = 0; trial < 200; ++trial) {
        auto mutated = comp;
        std::size_t pos = rng.below(csize);
        mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        std::vector<std::uint8_t> out(src.size());
        std::size_t got = codec->decompress({mutated.data(), csize},
                                            {out.data(), out.size()});
        EXPECT_LE(got, out.size());
    }
}

TEST_P(CodecProperty, AllZerosAndAllOnes)
{
    for (std::uint8_t fill : {std::uint8_t{0}, std::uint8_t{0xFF}}) {
        std::vector<std::uint8_t> src(4096, fill);
        EXPECT_EQ(roundtrip(*codec, src), src);
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecProperty,
                         ::testing::Values(CodecKind::Lz4,
                                           CodecKind::Lzo,
                                           CodecKind::Bdi,
                                           CodecKind::Null));

TEST(Registry, CreatesByNameAndKind)
{
    EXPECT_EQ(makeCodec("lz4")->kind(), CodecKind::Lz4);
    EXPECT_EQ(makeCodec("lzo")->kind(), CodecKind::Lzo);
    EXPECT_EQ(makeCodec("bdi")->kind(), CodecKind::Bdi);
    EXPECT_EQ(makeCodec("null")->kind(), CodecKind::Null);
    EXPECT_EQ(allCodecKinds().size(), 4u);
}

TEST(Registry, KindNamesRoundtrip)
{
    for (CodecKind kind : allCodecKinds())
        EXPECT_EQ(makeCodec(codecKindName(kind))->kind(), kind);
}
