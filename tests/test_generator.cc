/** @file Unit tests for the app behaviour generator. */

#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/similarity.hh"
#include "workload/apps.hh"
#include "workload/generator.hh"

using namespace ariadne;

namespace
{

AppInstance
makeInstance(const std::string &name = "YouTube", double scale = 0.0625,
             std::uint64_t seed = 1)
{
    return AppInstance(standardApp(name), scale, seed);
}

} // namespace

TEST(Generator, ColdLaunchAllocatesTenSecondVolume)
{
    auto inst = makeInstance();
    auto events = inst.coldLaunch();
    EXPECT_EQ(events.size(), inst.pageCount());
    std::size_t expected =
        static_cast<std::size_t>(0.0625 * (177 << 20)) / pageSize;
    EXPECT_NEAR(static_cast<double>(inst.pageCount()),
                static_cast<double>(expected),
                static_cast<double>(expected) * 0.02);
}

TEST(Generator, HotPagesComeFirstInColdLaunch)
{
    auto inst = makeInstance();
    auto events = inst.coldLaunch();
    std::size_t hot = inst.hotSet().size();
    for (std::size_t i = 0; i < hot; ++i)
        EXPECT_EQ(events[i].truth, Hotness::Hot) << i;
    EXPECT_NEAR(static_cast<double>(hot) /
                    static_cast<double>(inst.pageCount()),
                standardApp("YouTube").hotFraction, 0.02);
}

TEST(Generator, AllEventsAreNewAllocationsAtLaunch)
{
    auto inst = makeInstance();
    for (const auto &ev : inst.coldLaunch())
        EXPECT_TRUE(ev.newAllocation);
}

TEST(Generator, ExecuteGrowsFootprintAlongCurve)
{
    auto inst = makeInstance();
    inst.coldLaunch();
    std::size_t before = inst.pageCount();
    inst.execute(Tick{290} * 1000000000ULL); // reach the 5 min point
    std::size_t after = inst.pageCount();
    EXPECT_GT(after, before);
    std::size_t expected =
        static_cast<std::size_t>(0.0625 * (358ULL << 20)) / pageSize;
    EXPECT_NEAR(static_cast<double>(after),
                static_cast<double>(expected),
                static_cast<double>(expected) * 0.02);
}

TEST(Generator, ExecuteTouchesWarmPages)
{
    auto inst = makeInstance();
    inst.coldLaunch();
    auto events = inst.execute(Tick{30} * 1000000000ULL);
    bool touched_existing = false;
    for (const auto &ev : events) {
        if (!ev.newAllocation) {
            touched_existing = true;
            EXPECT_EQ(ev.truth, Hotness::Warm);
        }
    }
    EXPECT_TRUE(touched_existing);
}

TEST(Generator, RelaunchKeepsHotSetSizeStable)
{
    auto inst = makeInstance();
    inst.coldLaunch();
    inst.execute(Tick{30} * 1000000000ULL);
    std::size_t hot_before = inst.hotSet().size();
    inst.relaunch();
    std::size_t hot_after = inst.hotSet().size();
    EXPECT_EQ(hot_before, hot_after);
}

TEST(Generator, RelaunchSimilarityMatchesProfile)
{
    auto inst = makeInstance();
    inst.coldLaunch();
    inst.execute(Tick{30} * 1000000000ULL);
    double sim_sum = 0.0, reuse_sum = 0.0;
    constexpr int rounds = 5;
    for (int i = 0; i < rounds; ++i) {
        inst.relaunch();
        sim_sum += hotDataSimilarity(inst.previousHotSet(),
                                     inst.hotSet());
        reuse_sum += reusedData(inst.previousHotSet(), inst.hotSet(),
                                inst.warmSet());
        inst.execute(Tick{10} * 1000000000ULL);
    }
    const AppProfile &p = standardApp("YouTube");
    EXPECT_NEAR(sim_sum / rounds, p.hotSimilarity, 0.06);
    EXPECT_NEAR(reuse_sum / rounds, p.reuseFraction, 0.02);
}

TEST(Generator, RelaunchEventsAreHot)
{
    auto inst = makeInstance();
    inst.coldLaunch();
    inst.execute(Tick{30} * 1000000000ULL);
    auto events = inst.relaunch();
    EXPECT_EQ(events.size(), inst.hotSet().size());
    for (const auto &ev : events)
        EXPECT_EQ(ev.truth, Hotness::Hot);
}

TEST(Generator, RelaunchAccessHasRunLocality)
{
    // Consecutive accesses mostly follow the canonical hot order.
    auto inst = makeInstance();
    inst.coldLaunch();
    inst.execute(Tick{30} * 1000000000ULL);
    auto events = inst.relaunch();
    // Build position of each pfn in the *previous* canonical order:
    // for the first relaunch, allocation order equals pfn order.
    std::size_t seq = 0, total = 0;
    for (std::size_t i = 1; i < events.size(); ++i) {
        ++total;
        auto delta = static_cast<std::int64_t>(events[i].pfn) -
                     static_cast<std::int64_t>(events[i - 1].pfn);
        if (delta >= 0 && delta <= 4)
            ++seq;
    }
    double p = static_cast<double>(seq) / static_cast<double>(total);
    EXPECT_GT(p, 0.5);
}

TEST(Generator, TruthQueriesConsistent)
{
    auto inst = makeInstance();
    inst.coldLaunch();
    for (Pfn pfn : inst.hotSet())
        EXPECT_EQ(inst.truthOf(pfn), Hotness::Hot);
    for (Pfn pfn : inst.warmSet())
        EXPECT_EQ(inst.truthOf(pfn), Hotness::Warm);
    for (Pfn pfn : inst.coldSet())
        EXPECT_EQ(inst.truthOf(pfn), Hotness::Cold);
}

TEST(Generator, DeterministicAcrossInstances)
{
    auto a = makeInstance("Twitter", 0.0625, 9);
    auto b = makeInstance("Twitter", 0.0625, 9);
    auto ea = a.coldLaunch();
    auto eb = b.coldLaunch();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].pfn, eb[i].pfn);
        EXPECT_EQ(ea[i].truth, eb[i].truth);
    }
}

TEST(Generator, WritesBumpVersions)
{
    auto inst = makeInstance("BangDream");
    inst.coldLaunch();
    auto events = inst.execute(Tick{60} * 1000000000ULL);
    bool any_write = false;
    for (const auto &ev : events) {
        if (ev.write && !ev.newAllocation) {
            any_write = true;
            EXPECT_GT(ev.version, 0u);
        }
    }
    EXPECT_TRUE(any_write);
}

TEST(GeneratorDeath, RelaunchBeforeLaunchPanics)
{
    auto inst = makeInstance();
    EXPECT_DEATH(inst.relaunch(), "before coldLaunch");
}

TEST(GeneratorDeath, DoubleColdLaunchPanics)
{
    auto inst = makeInstance();
    inst.coldLaunch();
    EXPECT_DEATH(inst.coldLaunch(), "already-launched");
}
