/**
 * @file
 * Fig. 2: application relaunch latency under DRAM / ZRAM / SWAP.
 *
 * Paper result: ZRAM beats flash SWAP, but compression/decompression
 * still make relaunches 2.1x slower on average than the pure-DRAM
 * bound.
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main()
{
    printBanner(std::cout,
                "Fig. 2: relaunch latency (ms) under DRAM/ZRAM/SWAP");

    ReportTable table(
        {"App", "DRAM", "ZRAM", "SWAP", "ZRAM/DRAM", "SWAP/DRAM"});

    double ratio_sum = 0.0;
    std::size_t n = 0;
    for (const auto &name : plottedApps()) {
        double dram =
            fullScaleMs(runTargetScenario(SchemeKind::Dram, name));
        double zram =
            fullScaleMs(runTargetScenario(SchemeKind::Zram, name));
        double swap =
            fullScaleMs(runTargetScenario(SchemeKind::Swap, name));

        table.addRow({name, ReportTable::num(dram, 1),
                      ReportTable::num(zram, 1),
                      ReportTable::num(swap, 1),
                      ReportTable::num(zram / dram, 2),
                      ReportTable::num(swap / dram, 2)});
        ratio_sum += zram / dram;
        ++n;
    }
    table.print(std::cout);
    std::cout << "\nAverage ZRAM/DRAM relaunch ratio: "
              << ReportTable::num(ratio_sum / static_cast<double>(n), 2)
              << "  (paper: 2.1x)\n";
    return 0;
}
