/**
 * @file
 * Fundamental types and constants shared by every Ariadne module.
 */

#ifndef ARIADNE_SIM_TYPES_HH
#define ARIADNE_SIM_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ariadne
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Application identifier (the paper's trace UID). */
using AppId = std::uint32_t;

/** Page frame number of an anonymous page. */
using Pfn = std::uint64_t;

/** Index of a 4 KB block inside the zpool (the paper's ZRAM sector). */
using Sector = std::uint64_t;

/** Size of one memory page in bytes (Android uses 4 KB pages). */
constexpr std::size_t pageSize = 4096;

/** Sentinel for "no application". */
constexpr AppId invalidApp = std::numeric_limits<AppId>::max();

/** Sentinel for "no sector". */
constexpr Sector invalidSector = std::numeric_limits<Sector>::max();

/** Sentinel for "no page". */
constexpr Pfn invalidPfn = std::numeric_limits<Pfn>::max();

/** Convenience byte-size literals. */
constexpr std::size_t operator""_KiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) * 1024;
}

constexpr std::size_t operator""_MiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) * 1024 * 1024;
}

constexpr std::size_t operator""_GiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) * 1024 * 1024 * 1024;
}

/** Convenience time literals in simulated Ticks (ns). */
constexpr Tick operator""_ns(unsigned long long v) { return v; }
constexpr Tick operator""_us(unsigned long long v) { return v * 1000; }
constexpr Tick operator""_ms(unsigned long long v) { return v * 1000000; }
constexpr Tick operator""_s(unsigned long long v)
{
    return v * 1000000000ULL;
}

/** Convert Ticks to floating-point milliseconds (for reports). */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert Ticks to floating-point microseconds (for reports). */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

/** Convert Ticks to floating-point seconds (for reports). */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

} // namespace ariadne

#endif // ARIADNE_SIM_TYPES_HH
