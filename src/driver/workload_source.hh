/**
 * @file
 * WorkloadSource — the pluggable workload layer of the driver.
 *
 * A WorkloadSource decides, per fleet session, (a) which app profiles
 * the simulated device carries and (b) what the session does. Three
 * implementations cover the harness's methodologies:
 *
 *  - ProfileProgramSource: the spec's declarative event program over
 *    its app mix — every session runs the same program (the figure
 *    benches and the original `workload = profiles` path);
 *  - SyntheticPopulationSource: heterogeneous user populations
 *    (`workload = synthetic`) — each session draws a per-user app
 *    subset, footprint multipliers and a switch-rate class from the
 *    spec's PopulationConfig, deterministically in (seed, index);
 *  - TraceReplaySource: bit-identical replay (`workload = trace`) of
 *    a trace recorded with `ariadne_sim --record` — sessions re-issue
 *    the recorded primitive ops and feed the recorded touch streams
 *    straight into MobileSystem, bypassing the generator.
 *
 * Sources are immutable once built and shared across worker threads;
 * everything they derive depends only on (spec, session index), which
 * is what keeps fleet aggregates thread-invariant.
 *
 * TraceRecorder closes the loop: attached as a MobileSystem observer
 * it streams the primitive ops and touches of any source — including
 * compound SessionDriver scenarios and bench hooks — into a
 * TraceWriter, so every scenario can be captured once and replayed.
 */

#ifndef ARIADNE_DRIVER_WORKLOAD_SOURCE_HH
#define ARIADNE_DRIVER_WORKLOAD_SOURCE_HH

#include <memory>

#include "driver/scenario_spec.hh"
#include "driver/session_result.hh"
#include "workload/trace.hh"

namespace ariadne::driver
{

class TraceRecorder;

/**
 * Execution context of one running fleet session, handed to
 * WorkloadSource::drive. Wraps the system, the scripted driver and
 * the session's result record, and owns the bookkeeping every source
 * shares: sample recording (with the optional trace marker), bench
 * hooks, app-name lookup and the switch_next round-robin cursor.
 */
class SessionRun
{
  public:
    SessionRun(MobileSystem &sys, SessionDriver &driver,
               SessionResult &result,
               const std::vector<SessionHook> &hooks, double scale,
               TraceRecorder *recorder = nullptr);

    MobileSystem &system() noexcept { return sys; }
    SessionDriver &driver() noexcept { return sessionDriver; }
    SessionResult &result() noexcept { return sessionResult; }

    /** Record a measured relaunch into the session result. */
    void recordSample(AppId uid, const RelaunchStats &st);

    /** Invoke bench hook @p index; panics when out of range. */
    void callHook(std::size_t index);

    /** Uid of @p name in this session's mix; panics when absent. */
    AppId lookup(const std::string &name) const;

    /** Next app of the round-robin cursor (switch_next). */
    AppId nextApp();

  private:
    MobileSystem &sys;
    SessionDriver &sessionDriver;
    SessionResult &sessionResult;
    const std::vector<SessionHook> &hooks;
    double scale;
    TraceRecorder *recorder;
    std::vector<AppId> uids;
    std::size_t cursor = 0;
};

/**
 * Interpret a declarative event program against @p run. Shared by the
 * profile and synthetic sources (and thereby by every bench).
 */
void runEventProgram(SessionRun &run, const std::vector<Event> &program);

/** Decides profiles and behaviour of each fleet session. */
class WorkloadSource
{
  public:
    virtual ~WorkloadSource() = default;

    /** Stable kind name ("profiles" / "synthetic" / "trace"). */
    virtual const char *kind() const noexcept = 0;

    /** Sessions this source can supply (0 = unbounded). */
    virtual std::size_t sessionLimit() const noexcept { return 0; }

    /** App profiles of fleet session @p index. */
    virtual std::vector<AppProfile>
    sessionProfiles(std::size_t index) const = 0;

    /** Play session @p index against @p run. */
    virtual void drive(std::size_t index, SessionRun &run) const = 0;
};

/** The spec's event program over its declared app mix. */
class ProfileProgramSource : public WorkloadSource
{
  public:
    explicit ProfileProgramSource(ScenarioSpec spec);

    const char *kind() const noexcept override { return "profiles"; }
    std::vector<AppProfile>
    sessionProfiles(std::size_t index) const override;
    void drive(std::size_t index, SessionRun &run) const override;

  private:
    ScenarioSpec spec;
};

/**
 * Synthetic user population (`workload = synthetic`): session `i`
 * models one user drawn deterministically from (seed, i) — an app
 * subset of `population_apps_per_user` apps, per-app footprint
 * multipliers within ±`population_footprint_spread`, and a
 * light/regular/heavy switch-rate class that shapes the generated
 * warmup + switch_next program.
 */
class SyntheticPopulationSource : public WorkloadSource
{
  public:
    explicit SyntheticPopulationSource(ScenarioSpec spec);

    const char *kind() const noexcept override { return "synthetic"; }
    std::vector<AppProfile>
    sessionProfiles(std::size_t index) const override;
    void drive(std::size_t index, SessionRun &run) const override;

    /** Generated program of session @p index (exposed for tests). */
    std::vector<Event> sessionProgram(std::size_t index) const;

    /** Switch-rate class of session @p index. */
    enum class UserClass { Light, Regular, Heavy };
    UserClass sessionClass(std::size_t index) const;

  private:
    ScenarioSpec spec;
    std::vector<AppProfile> pool;
};

/**
 * Bit-identical replay of a recorded fleet trace (`workload =
 * trace`). Loads the trace once; each session re-issues its recorded
 * primitive ops with the recorded touch streams. Profiles come from
 * the scenario embedded in the trace (rebuilt through its own
 * source), so synthetic populations replay too.
 */
class TraceReplaySource : public WorkloadSource
{
  public:
    /** Load and validate @p path; throws TraceError on unreadable or
     * corrupt files and SpecError on structural problems. */
    explicit TraceReplaySource(std::string path);

    const char *kind() const noexcept override { return "trace"; }
    std::size_t sessionLimit() const noexcept override
    {
        return sessions.size();
    }
    std::vector<AppProfile>
    sessionProfiles(std::size_t index) const override;
    void drive(std::size_t index, SessionRun &run) const override;

    /** The scenario the trace was recorded from. */
    const ScenarioSpec &recordedSpec() const noexcept
    {
        return recorded;
    }

  private:
    struct Span
    {
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    std::string path;
    ScenarioSpec recorded;
    std::shared_ptr<const WorkloadSource> profileSource;
    std::vector<TraceRecord> records;
    std::vector<Span> sessions;
};

/**
 * Build the source @p spec asks for. Trace specs load (and validate)
 * their trace file here; see TraceReplaySource for the exceptions.
 */
std::shared_ptr<const WorkloadSource>
makeWorkloadSource(const ScenarioSpec &spec);

/**
 * MobileSystem observer that streams a session's primitive ops and
 * touches into a TraceWriter. FleetRunner::runRecorded attaches one
 * per run; SessionRun::recordSample additionally emits the Sample
 * marker that tells a replay which relaunches entered the session
 * result.
 */
class TraceRecorder : public SystemObserver
{
  public:
    explicit TraceRecorder(TraceWriter &writer) : writer(writer) {}

    /** Mark the start of fleet session @p index. */
    void beginSession(std::size_t index);

    void onOp(TraceOp op, AppId uid, Tick arg, Tick now) override;
    void onTouch(AppId uid, const TouchEvent &ev, Tick now) override;

    /** Emit the Sample marker for a recorded relaunch. */
    void sampleRecorded(AppId uid, Tick now);

  private:
    TraceWriter &writer;
};

} // namespace ariadne::driver

#endif // ARIADNE_DRIVER_WORKLOAD_SOURCE_HH
