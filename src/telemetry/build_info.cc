#include "telemetry/build_info.hh"

// Supplied by CMake (see the telemetry section of CMakeLists.txt);
// default to "unknown" so non-CMake builds still compile.
#ifndef ARIADNE_GIT_SHA
#define ARIADNE_GIT_SHA "unknown"
#endif
#ifndef ARIADNE_BUILD_TYPE
#define ARIADNE_BUILD_TYPE "unknown"
#endif

namespace ariadne::telemetry
{

const char *
gitSha() noexcept
{
    return ARIADNE_GIT_SHA[0] ? ARIADNE_GIT_SHA : "unknown";
}

const char *
buildType() noexcept
{
    return ARIADNE_BUILD_TYPE[0] ? ARIADNE_BUILD_TYPE : "unknown";
}

} // namespace ariadne::telemetry
