/**
 * @file
 * Compressed-object pool (the kernel's zpool/zsmalloc).
 *
 * Stores variable-size compressed objects inside 4 KB blocks. Objects
 * up to one block are placed in size-class slots (zsmalloc style);
 * larger objects — Ariadne's large-chunk cold units — occupy runs of
 * contiguous blocks.
 *
 * The paper's "ZRAM sector" is the swap-slot offset on the zram block
 * device, which the swap-slot allocator hands out sequentially: pages
 * compressed in one batch receive consecutive sectors regardless of
 * where zsmalloc places their payloads. The pool models this with a
 * monotonically increasing sector sequence per insertion —
 * sectorOf() returns it, and nextInSectorOrder() is exactly the
 * lookup PreDecomp uses to find "the immediate next page of the
 * currently-being-accessed page". The block/size-class machinery
 * still governs capacity and fragmentation.
 *
 * Only object sizes and placement are tracked; payload bytes live
 * with the caller when needed (the simulator measures real compressed
 * sizes, then discards buffers to keep host memory bounded).
 */

#ifndef ARIADNE_MEM_ZPOOL_HH
#define ARIADNE_MEM_ZPOOL_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/types.hh"

namespace ariadne
{

/** Handle to an object stored in the zpool. */
using ZObjectId = std::uint64_t;

/** Sentinel for "no object". */
constexpr ZObjectId invalidObject = UINT64_MAX;

/** Size-class allocator over 4 KB blocks with sector numbering. */
class Zpool
{
  public:
    /** Block (and paper "sector") size. */
    static constexpr std::size_t blockBytes = pageSize;

    /** Granularity of size classes for sub-block objects. */
    static constexpr std::size_t classStep = 64;

    /** @param capacity_bytes Total pool size (the paper's S = 3 GB). */
    explicit Zpool(std::size_t capacity_bytes);

    /**
     * Store an object of @p csize bytes.
     * @param cookie Caller-owned tag (schemes store their unit id).
     * @return handle, or invalidObject when the pool cannot fit it.
     */
    ZObjectId insert(std::size_t csize, std::uint64_t cookie);

    /** Remove an object and free its slot/blocks. */
    void erase(ZObjectId id);

    /** True if an object of @p csize could be inserted right now. */
    bool canFit(std::size_t csize) const;

    /** Stored (compressed) size of an object. */
    std::size_t objectSize(ZObjectId id) const;

    /** Caller cookie of an object. */
    std::uint64_t cookie(ZObjectId id) const;

    /** Swap-device sector assigned to an object at insertion. */
    Sector sectorOf(ZObjectId id) const;

    /**
     * The live object at the next position in sector order, i.e.\ the
     * object compressed soonest after this one that is still stored.
     * @param max_gap Give up when the next live sector is more than
     * this far away (it was not compressed "nearby" in time).
     * @return invalidObject if none found.
     */
    ZObjectId nextInSectorOrder(ZObjectId id,
                                std::size_t max_gap = 8) const;

    /** True when @p id refers to a live object. */
    bool live(ZObjectId id) const noexcept;

    /** Sum of stored object sizes. */
    std::size_t storedBytes() const noexcept { return stored; }

    /** Bytes of blocks currently claimed (occupancy granularity). */
    std::size_t
    usedBytes() const noexcept
    {
        return usedBlocks * blockBytes;
    }

    std::size_t capacityBytes() const noexcept
    {
        return blocks.size() * blockBytes;
    }

    std::size_t objectCount() const noexcept { return liveObjects; }

    /** Internal fragmentation: 1 - stored/used (0 when empty). */
    double fragmentation() const noexcept;

  private:
    /** Class index for a sub-block size. */
    static std::size_t classIndex(std::size_t csize) noexcept;

    /** Slot size of a class. */
    static std::size_t classSlotSize(std::size_t clazz) noexcept;

    static constexpr std::int16_t freeClass = -1;
    static constexpr std::int16_t hugeHeadClass = -2;
    static constexpr std::int16_t hugeContClass = -3;

    struct Block
    {
        std::int16_t clazz = freeClass;
        std::uint16_t usedSlots = 0;
        std::uint8_t span = 0; //!< block run length for huge heads
        std::vector<ZObjectId> slots;
    };

    struct Object
    {
        std::uint32_t block = 0;
        std::uint16_t slot = 0;
        bool liveFlag = false;
        std::uint8_t span = 0; //!< >0 marks a huge object
        std::uint32_t csize = 0;
        std::uint64_t cookie = 0;
        Sector sector = invalidSector; //!< swap-slot sequence number
    };

    ZObjectId allocObjectRecord();
    std::uint32_t takeFreeBlock();
    bool findHugeRun(std::size_t span, std::uint32_t &start) const;

    // Free-block bitmap. Allocation order (ascending first-fit) and
    // run search match the old std::set<uint32_t> exactly, but
    // construction is O(blocks/64) memsets instead of a red-black
    // insert per block — which the fleet profile showed dominating
    // short sessions — and first-fit is a find-first-set scan.
    void setBlockFree(std::uint32_t b) noexcept;
    void clearBlockFree(std::uint32_t b) noexcept;

    std::vector<Block> blocks;
    std::vector<Object> objects;
    std::vector<ZObjectId> freeObjectIds;
    std::vector<std::uint64_t> freeBits; //!< 1 = block free
    std::size_t freeBlockCount = 0;
    /** Lowest word that may contain a free bit (search hint). */
    mutable std::size_t freeScanHint = 0;
    /** Live objects ordered by swap sector. */
    std::map<Sector, ZObjectId> sectorOrder;
    /** Next swap sector to hand out. */
    Sector nextSector = 0;
    /** Per-class block currently being filled (UINT32_MAX if none). */
    std::vector<std::uint32_t> openBlock;
    /** Per-class blocks with free slots (after erases). */
    std::vector<std::vector<std::uint32_t>> partialBlocks;

    std::size_t stored = 0;
    std::size_t usedBlocks = 0;
    std::size_t liveObjects = 0;
};

} // namespace ariadne

#endif // ARIADNE_MEM_ZPOOL_HH
