#include "driver/sweep_spec.hh"

#include <fstream>
#include <sstream>

namespace ariadne::driver
{

namespace
{

/** One raw config line with its original file line number. */
struct Line
{
    std::string text;
    std::size_t number;
};

[[noreturn]] void
bad(std::size_t line, const std::string &msg)
{
    throw SpecError("sweep config line " + std::to_string(line) + ": " +
                    msg);
}

/** Parse one variant: base settings, the variant's own lines, then
 * the base program unless the variant declared one of its own. */
ScenarioSpec
parseVariant(const std::string &variant_name, std::size_t header_line,
             const std::vector<Line> &base_settings,
             const std::vector<Line> &base_events,
             const std::vector<Line> &variant_lines)
{
    SpecParser parser;
    for (const Line &l : base_settings)
        parser.feed(l.text, l.number);
    // The section header names the variant; an explicit `name =` line
    // inside the section still wins.
    parser.feed("name = " + variant_name, header_line);
    for (const Line &l : variant_lines)
        parser.feed(l.text, l.number);
    // A variant that declared events replaces the base program;
    // otherwise it inherits it. Event order within the program is the
    // base file's either way.
    if (!parser.sawEvents())
        for (const Line &l : base_events)
            parser.feed(l.text, l.number);
    return parser.finish();
}

} // namespace

SweepSpec
SweepSpec::parse(std::istream &in)
{
    SweepSpec sweep;
    bool named = false;

    std::vector<Line> base_settings, base_events;
    // Open variant section (name, header line, body lines).
    std::string variant_name;
    std::size_t variant_line = 0;
    std::vector<Line> variant_lines;
    bool in_variant = false;

    auto close_variant = [&]() {
        if (!in_variant)
            return;
        ScenarioSpec parsed =
            parseVariant(variant_name, variant_line, base_settings,
                         base_events, variant_lines);
        // Compare final names (an explicit `name =` line inside the
        // section overrides the header), so a parsed sweep always
        // round-trips through its canonical form.
        for (const auto &v : sweep.variants)
            if (v.name == parsed.name)
                bad(variant_line,
                    "duplicate variant '" + parsed.name + "'");
        sweep.variants.push_back(std::move(parsed));
        variant_lines.clear();
    };

    // The base section is diagnosed on its own once it closes (first
    // variant line or EOF): a variant that overrides the program
    // would otherwise silently swallow malformed base event lines,
    // and a file with no variants would mask base syntax errors
    // behind the generic no-variants message.
    bool base_validated = false;
    auto validate_base = [&]() {
        if (base_validated)
            return;
        base_validated = true;
        SpecParser probe;
        for (const Line &l : base_settings)
            probe.feed(l.text, l.number);
        for (const Line &l : base_events)
            probe.feed(l.text, l.number);
        probe.finish();
    };

    std::string raw;
    std::size_t lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        ConfigLine lexed = lexConfigLine(raw);
        if (lexed.key == "sweep") {
            if (in_variant)
                bad(lineno, "'sweep' must precede the first variant");
            if (named)
                bad(lineno, "duplicate 'sweep' line");
            if (lexed.value.empty())
                bad(lineno, "empty sweep name");
            sweep.name = lexed.value;
            named = true;
        } else if (lexed.key == "variant") {
            validate_base();
            close_variant();
            if (lexed.value.empty())
                bad(lineno, "empty variant name");
            variant_name = lexed.value;
            variant_line = lineno;
            in_variant = true;
        } else if (in_variant) {
            variant_lines.push_back({raw, lineno});
        } else if (lexed.key == "event") {
            base_events.push_back({raw, lineno});
        } else {
            base_settings.push_back({raw, lineno});
        }
    }
    validate_base();
    close_variant();

    if (sweep.variants.empty())
        throw SpecError(
            "sweep config declares no variants (need at least one "
            "'variant = NAME' section)");
    return sweep;
}

SweepSpec
SweepSpec::parseString(const std::string &text)
{
    std::istringstream in(text);
    return parse(in);
}

SweepSpec
SweepSpec::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw SpecError("cannot open sweep config: " + path);
    return parse(in);
}

std::string
SweepSpec::toString() const
{
    // Canonical form is base-free: every variant is self-contained,
    // which round-trips regardless of what the variants share.
    std::ostringstream os;
    os << "sweep = " << name << "\n";
    for (const auto &v : variants) {
        os << "\nvariant = " << v.name << "\n";
        os << v.toString();
    }
    return os.str();
}

bool
SweepSpec::operator==(const SweepSpec &o) const
{
    return name == o.name && variants == o.variants;
}

bool
looksLikeSweepConfig(std::istream &in)
{
    std::string raw;
    while (std::getline(in, raw)) {
        ConfigLine lexed = lexConfigLine(raw);
        if (lexed.key == "sweep" || lexed.key == "variant")
            return true;
    }
    return false;
}

} // namespace ariadne::driver
