#include "core/config.hh"

#include <limits>
#include <sstream>
#include <vector>

#include "sim/log.hh"

namespace ariadne
{

namespace
{

std::string
sizeToken(std::size_t bytes)
{
    if (bytes >= 1024 && bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "K";
    return std::to_string(bytes);
}

/** Parse one size token into @p out; false + @p error on bad input. */
bool
parseSizeToken(const std::string &tok, std::size_t &out,
               std::string &error)
{
    if (tok.empty()) {
        error = "empty size token in Ariadne config";
        return false;
    }
    std::size_t mult = 1;
    std::string digits = tok;
    char last = tok.back();
    if (last == 'K' || last == 'k') {
        mult = 1024;
        digits = tok.substr(0, tok.size() - 1);
    }
    if (digits.empty()) {
        error = "bad size token: " + tok;
        return false;
    }
    for (char c : digits) {
        if (c < '0' || c > '9') {
            error = "bad size token: " + tok;
            return false;
        }
    }
    try {
        auto v = static_cast<std::size_t>(std::stoull(digits));
        if (v > std::numeric_limits<std::size_t>::max() / mult) {
            error = "size token out of range: " + tok;
            return false;
        }
        out = v * mult;
    } catch (const std::out_of_range &) {
        error = "size token out of range: " + tok;
        return false;
    }
    return true;
}

std::vector<std::string>
splitDashes(const std::string &text)
{
    std::vector<std::string> parts;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, '-'))
        parts.push_back(item);
    return parts;
}

} // namespace

std::string
AriadneConfig::toString() const
{
    std::string s = "Ariadne-";
    s += excludeHotList ? "EHL" : "AL";
    s += "-" + sizeToken(smallSize);
    s += "-" + sizeToken(mediumSize);
    s += "-" + sizeToken(largeSize);
    return s;
}

std::optional<AriadneConfig>
AriadneConfig::tryParse(const std::string &text, std::string *error)
{
    auto fail =
        [error](std::string msg) -> std::optional<AriadneConfig> {
        if (error)
            *error = std::move(msg);
        return std::nullopt;
    };

    auto parts = splitDashes(text);
    // Accept an optional leading "Ariadne" token.
    if (!parts.empty() && (parts[0] == "Ariadne" || parts[0] == "ariadne"))
        parts.erase(parts.begin());
    if (parts.size() != 4)
        return fail("Ariadne config must be MODE-SMALL-MEDIUM-LARGE: " +
                    text);

    AriadneConfig cfg;
    if (parts[0] == "EHL")
        cfg.excludeHotList = true;
    else if (parts[0] == "AL")
        cfg.excludeHotList = false;
    else
        return fail("Ariadne config mode must be EHL or AL: " + text);

    std::string token_error;
    if (!parseSizeToken(parts[1], cfg.smallSize, token_error) ||
        !parseSizeToken(parts[2], cfg.mediumSize, token_error) ||
        !parseSizeToken(parts[3], cfg.largeSize, token_error))
        return fail(token_error);

    if (cfg.smallSize == 0 || cfg.mediumSize == 0 || cfg.largeSize == 0)
        return fail("Ariadne chunk sizes must be > 0: " + text);
    if (cfg.smallSize > cfg.mediumSize || cfg.mediumSize > cfg.largeSize)
        return fail("Ariadne chunk sizes must be ordered "
                    "small<=medium<=large: " +
                    text);
    return cfg;
}

AriadneConfig
AriadneConfig::parse(const std::string &text)
{
    std::string error;
    auto cfg = tryParse(text, &error);
    fatalIf(!cfg.has_value(), error);
    return *cfg;
}

} // namespace ariadne
