/** @file Unit tests for the from-scratch LZ4-class codec. */

#include <gtest/gtest.h>

#include "codec_test_util.hh"
#include "compress/lz4.hh"

using namespace ariadne;
using namespace ariadne::testutil;

TEST(Lz4, EmptyInput)
{
    Lz4Codec codec;
    std::vector<std::uint8_t> empty;
    std::vector<std::uint8_t> comp(codec.compressBound(0));
    std::size_t csize =
        codec.compress({empty.data(), 0}, {comp.data(), comp.size()});
    std::vector<std::uint8_t> out;
    EXPECT_EQ(codec.decompress({comp.data(), csize},
                               {out.data(), 0}),
              0u);
}

TEST(Lz4, SingleByte)
{
    Lz4Codec codec;
    std::vector<std::uint8_t> src{0x42};
    EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(Lz4, RepetitiveCompressesWell)
{
    Lz4Codec codec;
    auto src = repetitiveBuffer(4096);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    EXPECT_LT(csize, src.size() / 4);
}

TEST(Lz4, ZerosCompressExtremelyWell)
{
    Lz4Codec codec;
    std::vector<std::uint8_t> src(4096, 0);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    EXPECT_LT(csize, 64u);
}

TEST(Lz4, RandomStaysWithinBound)
{
    Lz4Codec codec;
    auto src = randomBuffer(4096, 7);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    EXPECT_LE(csize, codec.compressBound(src.size()));
}

TEST(Lz4, OverlappingMatchReplication)
{
    // "abcabcabc..." forces matches with offset < length.
    Lz4Codec codec;
    std::vector<std::uint8_t> src;
    for (int i = 0; i < 1000; ++i)
        src.push_back(static_cast<std::uint8_t>('a' + i % 3));
    EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(Lz4, CompressFailsOnTinyDestination)
{
    Lz4Codec codec;
    auto src = randomBuffer(1024, 1);
    std::vector<std::uint8_t> tiny(8);
    EXPECT_EQ(codec.compress({src.data(), src.size()},
                             {tiny.data(), tiny.size()}),
              0u);
}

TEST(Lz4, DecompressRejectsCorruptOffset)
{
    Lz4Codec codec;
    auto src = repetitiveBuffer(512);
    std::vector<std::uint8_t> comp(codec.compressBound(src.size()));
    std::size_t csize = codec.compress({src.data(), src.size()},
                                       {comp.data(), comp.size()});
    // A zero offset is always invalid; find the first match token and
    // clobber its offset bytes.
    bool rejected_any = false;
    for (std::size_t i = 0; i + 1 < csize; ++i) {
        auto mutated = comp;
        mutated[i] = 0;
        mutated[i + 1] = 0;
        std::vector<std::uint8_t> out(src.size());
        std::size_t got = codec.decompress({mutated.data(), csize},
                                           {out.data(), out.size()});
        if (got != src.size())
            rejected_any = true;
    }
    EXPECT_TRUE(rejected_any);
}

TEST(Lz4, DecompressRejectsTruncatedInput)
{
    Lz4Codec codec;
    auto src = mixedBuffer(2048, 3);
    std::vector<std::uint8_t> comp(codec.compressBound(src.size()));
    std::size_t csize = codec.compress({src.data(), src.size()},
                                       {comp.data(), comp.size()});
    std::vector<std::uint8_t> out(src.size());
    // Truncation must never crash or overrun; cutting into payload
    // (beyond the final token) must lose data.
    bool lost_data = false;
    for (std::size_t cut = 1; cut < 16; ++cut) {
        std::size_t got = codec.decompress(
            {comp.data(), csize - cut}, {out.data(), out.size()});
        EXPECT_LE(got, src.size());
        lost_data = lost_data || got < src.size();
    }
    EXPECT_TRUE(lost_data);
}

TEST(Lz4, DecompressRejectsShortOutputBuffer)
{
    Lz4Codec codec;
    auto src = repetitiveBuffer(4096);
    std::vector<std::uint8_t> comp(codec.compressBound(src.size()));
    std::size_t csize = codec.compress({src.data(), src.size()},
                                       {comp.data(), comp.size()});
    std::vector<std::uint8_t> out(src.size() / 2);
    EXPECT_EQ(codec.decompress({comp.data(), csize},
                               {out.data(), out.size()}),
              0u);
}

TEST(Lz4, LongLiteralRuns)
{
    // > 15 literals exercises the length-extension encoding.
    Lz4Codec codec;
    auto src = randomBuffer(300, 9);
    EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(Lz4, LongMatches)
{
    // > 19-byte matches exercise match-length extension bytes.
    Lz4Codec codec;
    std::vector<std::uint8_t> src(8192, 0xAB);
    EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(Lz4, MetadataCorrect)
{
    Lz4Codec codec;
    EXPECT_EQ(codec.kind(), CodecKind::Lz4);
    EXPECT_EQ(codec.name(), "lz4");
    EXPECT_GT(codec.cost().compNsPerByte4k, 0.0);
    EXPECT_GE(codec.compressBound(100), 100u);
}
