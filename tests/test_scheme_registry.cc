/** @file Unit tests for the string-keyed swap-scheme registry. */

#include <gtest/gtest.h>

#include "core/ariadne.hh"
#include "scheme_test_util.hh"
#include "swap/scheme_registry.hh"
#include "swap/zram.hh"

using namespace ariadne;
using testutil::SchemeHarness;

TEST(SchemeParams, TypedGettersParseAndDefault)
{
    SchemeParams p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.getString("config", "fallback"), "fallback");
    EXPECT_TRUE(p.getBool("predecomp", true));
    EXPECT_EQ(p.getU64("batch", 32u), 32u);
    EXPECT_DOUBLE_EQ(p.getDouble("fraction", 0.5), 0.5);
    EXPECT_EQ(p.getMiB("zpool_mb", 77u), 77u);

    p.set("predecomp", "off");
    p.set("batch", "64");
    p.set("fraction", "0.25");
    p.set("zpool_mb", "192");
    p.set("config", "EHL-1K-2K-16K");
    EXPECT_FALSE(p.empty());
    EXPECT_FALSE(p.getBool("predecomp", true));
    EXPECT_EQ(p.getU64("batch", 0), 64u);
    EXPECT_DOUBLE_EQ(p.getDouble("fraction", 0.0), 0.25);
    EXPECT_EQ(p.getMiB("zpool_mb", 0), std::size_t{192} << 20);
    EXPECT_EQ(p.getString("config", ""), "EHL-1K-2K-16K");

    // Entries iterate in key order: canonical serialization.
    std::vector<std::string> keys;
    for (const auto &[key, value] : p.entries())
        keys.push_back(key);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

    p.erase("batch");
    EXPECT_FALSE(p.has("batch"));
}

TEST(SchemeParams, MalformedValuesThrowSchemeError)
{
    SchemeParams p;
    p.set("b", "maybe");
    p.set("n", "-1");
    p.set("d", "nan");
    p.set("huge", "99999999999999999999");
    EXPECT_THROW(p.getBool("b", true), SchemeError);
    EXPECT_THROW(p.getU64("n", 0), SchemeError);
    EXPECT_THROW(p.getDouble("d", 0.0), SchemeError);
    EXPECT_THROW(p.getU64("huge", 0), SchemeError);
    EXPECT_THROW(p.getMiB("huge", 0), SchemeError);
}

TEST(SchemeRegistry, RegistersTheFiveBuiltinSchemes)
{
    const SchemeRegistry &reg = SchemeRegistry::instance();
    EXPECT_EQ(reg.names(),
              (std::vector<std::string>{"ariadne", "dram", "swap",
                                        "zram", "zswap"}));
    EXPECT_EQ(reg.at("zram").displayName, "ZRAM");
    EXPECT_EQ(reg.at("ariadne").displayName, "Ariadne");
    EXPECT_TRUE(reg.at("dram").unboundedDram);
    EXPECT_FALSE(reg.at("zswap").unboundedDram);
    EXPECT_EQ(reg.find("nonsense"), nullptr);
    // Every scheme self-describes.
    for (const SchemeInfo *info : reg.infos()) {
        EXPECT_FALSE(info->description.empty()) << info->key;
        EXPECT_TRUE(info->build) << info->key;
    }
}

TEST(SchemeRegistry, UnknownSchemeErrorListsValidNames)
{
    try {
        SchemeRegistry::instance().at("windows");
        FAIL() << "expected SchemeError";
    } catch (const SchemeError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown scheme 'windows'"),
                  std::string::npos);
        EXPECT_NE(msg.find("ariadne, dram, swap, zram, zswap"),
                  std::string::npos);
    }
}

TEST(SchemeRegistry, ValidateChecksKnobNamesAndValues)
{
    const SchemeRegistry &reg = SchemeRegistry::instance();
    SchemeParams ok;
    ok.set("zpool_mb", "64");
    ok.set("codec", "lz4");
    reg.validate("zram", ok); // no throw

    // Unknown knob: the error names the scheme's valid knobs.
    SchemeParams unknown;
    unknown.set("config", "EHL-1K-2K-16K");
    try {
        reg.validate("zram", unknown);
        FAIL() << "expected SchemeError";
    } catch (const SchemeError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no knob 'config'"), std::string::npos);
        EXPECT_NE(msg.find("zpool_mb"), std::string::npos);
    }
    // dram takes no knobs at all, and says so.
    try {
        reg.validate("dram", ok);
        FAIL() << "expected SchemeError";
    } catch (const SchemeError &e) {
        EXPECT_NE(std::string(e.what()).find("takes no knobs"),
                  std::string::npos);
    }
    // Typed value checks.
    SchemeParams bad_bool;
    bad_bool.set("predecomp", "maybe");
    EXPECT_THROW(reg.validate("ariadne", bad_bool), SchemeError);
    // Per-knob grammar checks run at validation time too.
    SchemeParams bad_config;
    bad_config.set("config", "EHL-1K");
    EXPECT_THROW(reg.validate("ariadne", bad_config), SchemeError);
    SchemeParams bad_codec;
    bad_codec.set("codec", "zip");
    EXPECT_THROW(reg.validate("zram", bad_codec), SchemeError);
    SchemeParams bad_fraction;
    bad_fraction.set("proactive_fraction", "1.5");
    EXPECT_THROW(reg.validate("zram", bad_fraction), SchemeError);
}

TEST(SchemeRegistry, BuildsEachSchemeWithItsKnobs)
{
    SchemeHarness h;

    auto zram = SchemeRegistry::instance().build(
        "zram", h.context(), SchemeParams{}, 1.0);
    EXPECT_EQ(zram->name(), "zram");
    EXPECT_EQ(zram->flash(), nullptr);
    EXPECT_EQ(zram->hotness(), nullptr);

    auto zswap = SchemeRegistry::instance().build(
        "zswap", h.context(), SchemeParams{}, 1.0);
    EXPECT_EQ(zswap->name(), "zswap");
    EXPECT_NE(zswap->flash(), nullptr);

    SchemeParams ap;
    ap.set("config", "AL-512-2K-16K");
    ap.set("zpool_mb", "64");
    auto ariadne_scheme = SchemeRegistry::instance().build(
        "ariadne", h.context(), ap, 1.0);
    EXPECT_EQ(ariadne_scheme->name(), "Ariadne-AL-512-2K-16K");
    ASSERT_NE(ariadne_scheme->hotness(), nullptr);
    EXPECT_EQ(ariadne_scheme->zpool()->capacityBytes(),
              std::size_t{64} << 20);

    auto dram = SchemeRegistry::instance().build(
        "dram", h.context(), SchemeParams{}, 1.0);
    EXPECT_EQ(dram->name(), "dram");
    auto swap = SchemeRegistry::instance().build(
        "swap", h.context(), SchemeParams{}, 1.0);
    EXPECT_EQ(swap->name(), "swap");
    EXPECT_NE(swap->flash(), nullptr);

    // Capacity knobs are paper-scale and multiplied by the run scale.
    SchemeParams zp;
    zp.set("zpool_mb", "128");
    auto scaled = SchemeRegistry::instance().build(
        "zram", h.context(), zp, 0.5);
    EXPECT_EQ(scaled->zpool()->capacityBytes(),
              (std::size_t{128} << 20) / 2);

    // build() validates: unknown scheme and unknown knob both throw.
    EXPECT_THROW(SchemeRegistry::instance().build(
                     "nonsense", h.context(), SchemeParams{}, 1.0),
                 SchemeError);
    SchemeParams bad;
    bad.set("bogus", "1");
    EXPECT_THROW(SchemeRegistry::instance().build(
                     "zram", h.context(), bad, 1.0),
                 SchemeError);
}
