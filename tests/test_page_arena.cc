/** @file Unit tests for the PageMeta slab arena and PfnBitmap. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/lru_list.hh"
#include "mem/page_arena.hh"

using namespace ariadne;

TEST(PageArena, AllocGivesFreshRecordsWithStableHandles)
{
    PageArena arena;
    PageMeta *a = arena.alloc();
    PageMeta *b = arena.alloc();
    ASSERT_NE(a, b);
    EXPECT_EQ(arena.liveCount(), 2u);
    EXPECT_NE(PageArena::handleOf(*a), PageArena::handleOf(*b));
    EXPECT_EQ(&arena.fromHandle(PageArena::handleOf(*a)), a);
    EXPECT_EQ(&arena.fromHandle(PageArena::handleOf(*b)), b);
    EXPECT_EQ(arena.location(*a), PageLocation::Resident);
    EXPECT_EQ(a->lruOwner, nullptr);
}

TEST(PageArena, SoaMetadataDefaultsAndRoundTrips)
{
    PageArena arena;
    PageMeta *a = arena.alloc();
    // Fresh records start Cold / Resident / never-accessed.
    EXPECT_EQ(arena.level(*a), Hotness::Cold);
    EXPECT_EQ(arena.location(*a), PageLocation::Resident);
    EXPECT_EQ(arena.lastAccess(*a), 0u);
    arena.setLevel(*a, Hotness::Hot);
    arena.setLocation(*a, PageLocation::Zpool);
    arena.setLastAccess(*a, 12345);
    EXPECT_EQ(arena.level(*a), Hotness::Hot);
    EXPECT_EQ(arena.location(*a), PageLocation::Zpool);
    EXPECT_EQ(arena.lastAccess(*a), 12345u);
    // Neighbouring records are unaffected (distinct SoA slots).
    PageMeta *b = arena.alloc();
    EXPECT_EQ(arena.level(*b), Hotness::Cold);
    EXPECT_EQ(arena.location(*b), PageLocation::Resident);
}

TEST(PageArena, ResetRecyclesSlabsAndReinitializesRecords)
{
    PageArena arena;
    const std::size_t count = PageArena::slabPages + 5;
    std::vector<PageMeta *> first;
    for (std::size_t i = 0; i < count; ++i) {
        PageMeta *page = arena.alloc();
        page->key = PageKey{9, static_cast<Pfn>(i)};
        arena.setLevel(*page, Hotness::Hot);
        arena.setLocation(*page, PageLocation::Flash);
        arena.setLastAccess(*page, 777);
        first.push_back(page);
    }
    const std::size_t slabs_before = arena.slabCount();
    arena.reset();
    EXPECT_EQ(arena.liveCount(), 0u);
    // Slabs (and SoA arrays) are retained for reuse...
    EXPECT_EQ(arena.slabCount(), slabs_before);
    // ...and re-allocation hands back the same records, fully reset
    // to fresh defaults despite the dirt left by the first life.
    for (std::size_t i = 0; i < count; ++i) {
        PageMeta *page = arena.alloc();
        EXPECT_EQ(page, first[i]);
        EXPECT_EQ(page->key.pfn, PageKey{}.pfn);
        EXPECT_EQ(arena.level(*page), Hotness::Cold);
        EXPECT_EQ(arena.location(*page), PageLocation::Resident);
        EXPECT_EQ(arena.lastAccess(*page), 0u);
    }
    EXPECT_EQ(arena.slabCount(), slabs_before);
    EXPECT_EQ(arena.liveCount(), count);
}

TEST(PageArena, ResetAfterFreeDiscardsFreeList)
{
    // A free-list survivor from before reset() must not leak into the
    // fresh allocation order (reset rewinds to slab start instead).
    PageArena arena;
    PageMeta *a = arena.alloc();
    PageMeta *b = arena.alloc();
    arena.free(*b);
    arena.reset();
    PageMeta *first = arena.alloc();
    EXPECT_EQ(first, a); // slab slot 0, not the stale free-list head b
    EXPECT_EQ(arena.liveCount(), 1u);
}

TEST(PageArena, PointersStayValidAcrossSlabGrowth)
{
    // Allocate well past one slab and make sure early records (and
    // their handles) survive every growth step.
    PageArena arena;
    std::vector<PageMeta *> pages;
    std::vector<PageHandle> handles;
    const std::size_t count = PageArena::slabPages * 3 + 17;
    for (std::size_t i = 0; i < count; ++i) {
        PageMeta *page = arena.alloc();
        page->key = PageKey{1, static_cast<Pfn>(i)};
        pages.push_back(page);
        handles.push_back(PageArena::handleOf(*page));
    }
    EXPECT_GE(arena.slabCount(), 4u);
    EXPECT_EQ(arena.liveCount(), count);
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(&arena.fromHandle(handles[i]), pages[i]);
        EXPECT_EQ(pages[i]->key.pfn, static_cast<Pfn>(i));
    }
}

TEST(PageArena, FreeListRecyclesRecords)
{
    PageArena arena;
    PageMeta *a = arena.alloc();
    PageHandle ha = PageArena::handleOf(*a);
    a->key = PageKey{7, 99};
    arena.free(*a);
    EXPECT_EQ(arena.liveCount(), 0u);
    EXPECT_FALSE(arena.liveHandle(ha));

    // The freed record comes back first, reset to a fresh PageMeta
    // but keeping its handle identity.
    PageMeta *b = arena.alloc();
    EXPECT_EQ(b, a);
    EXPECT_EQ(PageArena::handleOf(*b), ha);
    EXPECT_EQ(b->key.pfn, PageKey{}.pfn); // reset, not our 99
    EXPECT_EQ(b->lruOwner, nullptr);
    EXPECT_TRUE(arena.liveHandle(ha));
    // No new slab was needed for the recycled record.
    EXPECT_EQ(arena.slabCount(), 1u);
}

TEST(PageArena, RecyclingDoesNotDisturbLiveListMembers)
{
    // Free half the records while the other half stays linked on a
    // live intrusive list; recycled records must not corrupt it.
    PageArena arena;
    LruList list;
    std::vector<PageMeta *> kept;
    std::vector<PageMeta *> dropped;
    for (std::size_t i = 0; i < 256; ++i) {
        PageMeta *page = arena.alloc();
        page->key = PageKey{1, static_cast<Pfn>(i)};
        if (i % 2 == 0) {
            list.pushFront(*page);
            kept.push_back(page);
        } else {
            dropped.push_back(page);
        }
    }
    for (PageMeta *page : dropped)
        arena.free(*page);
    // Recycle: the new allocations reuse exactly the dropped records.
    std::set<PageMeta *> recycled;
    for (std::size_t i = 0; i < dropped.size(); ++i)
        recycled.insert(arena.alloc());
    EXPECT_EQ(recycled,
              std::set<PageMeta *>(dropped.begin(), dropped.end()));
    // The list still holds every kept page, newest first.
    EXPECT_EQ(list.size(), kept.size());
    PageMeta *cursor = list.front();
    for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
        ASSERT_NE(cursor, nullptr);
        EXPECT_EQ(cursor, *it);
        cursor = cursor->lruNext;
    }
    EXPECT_EQ(cursor, nullptr);
}

TEST(PageArenaDeathTest, DoubleFreePanics)
{
    PageArena arena;
    PageMeta *page = arena.alloc();
    arena.free(*page);
    EXPECT_DEATH(arena.free(*page), "double free");
}

TEST(PageArenaDeathTest, FreeWhileOnListPanics)
{
    PageArena arena;
    LruList list;
    PageMeta *page = arena.alloc();
    list.pushFront(*page);
    EXPECT_DEATH(arena.free(*page), "still linked");
}

TEST(PageArenaDeathTest, ForeignRecordPanics)
{
    PageArena arena;
    arena.alloc();
    PageMeta stray;
    stray.arenaHandle = 0; // plausible handle, wrong address
    EXPECT_DEATH(arena.free(stray), "not from this arena");
}

TEST(PageArenaDeathTest, StaleHandlePanics)
{
    PageArena arena;
    PageMeta *page = arena.alloc();
    PageHandle handle = PageArena::handleOf(*page);
    arena.free(*page);
    EXPECT_DEATH(arena.fromHandle(handle), "freed record");
    EXPECT_DEATH(arena.fromHandle(PageHandle{12345}),
                 "out of range");
}

TEST(PfnBitmap, SetTestAndSortedExtraction)
{
    PfnBitmap bits;
    EXPECT_TRUE(bits.empty());
    EXPECT_TRUE(bits.set(130));
    EXPECT_TRUE(bits.set(2));
    EXPECT_TRUE(bits.set(63));
    EXPECT_FALSE(bits.set(130)); // already set
    EXPECT_TRUE(bits.test(63));
    EXPECT_FALSE(bits.test(64));
    EXPECT_FALSE(bits.empty());
    EXPECT_EQ(bits.toSortedVector(),
              (std::vector<Pfn>{2, 63, 130}));
    bits.clear();
    EXPECT_TRUE(bits.empty());
    EXPECT_FALSE(bits.test(130));
}
