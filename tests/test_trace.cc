/** @file Unit tests for trace serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "workload/trace.hh"

using namespace ariadne;

namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<TraceRecord>
sampleRecords()
{
    std::vector<TraceRecord> recs;
    recs.push_back({0, TraceOp::Launch, 1, invalidPfn, 0,
                    Hotness::Cold, false});
    recs.push_back({100, TraceOp::Touch, 1, 42, 0, Hotness::Hot, true});
    recs.push_back(
        {200, TraceOp::Touch, 1, 43, 2, Hotness::Warm, false});
    recs.push_back({300, TraceOp::Background, 1, invalidPfn, 0,
                    Hotness::Cold, false});
    recs.push_back(
        {400, TraceOp::Relaunch, 1, invalidPfn, 0, Hotness::Cold,
         false});
    recs.push_back({500, TraceOp::RelaunchEnd, 1, invalidPfn, 0,
                    Hotness::Cold, false});
    recs.push_back({600, TraceOp::Free, 1, 42, 0, Hotness::Cold,
                    false});
    return recs;
}

} // namespace

TEST(Trace, WriteReadRoundtrip)
{
    std::string path = tempPath("ariadne_trace_rt.bin");
    auto recs = sampleRecords();
    writeTrace(path, recs);
    auto back = readTrace(path);
    EXPECT_EQ(back, recs);
    std::remove(path.c_str());
}

TEST(Trace, EmptyTrace)
{
    std::string path = tempPath("ariadne_trace_empty.bin");
    writeTrace(path, {});
    auto back = readTrace(path);
    EXPECT_TRUE(back.empty());
    std::remove(path.c_str());
}

TEST(Trace, StreamingReaderCountsMatch)
{
    std::string path = tempPath("ariadne_trace_stream.bin");
    auto recs = sampleRecords();
    {
        TraceWriter w(path);
        for (const auto &r : recs)
            w.append(r);
        EXPECT_EQ(w.count(), recs.size());
    }
    TraceReader r(path);
    EXPECT_EQ(r.count(), recs.size());
    TraceRecord rec;
    std::size_t n = 0;
    while (r.next(rec))
        ++n;
    EXPECT_EQ(n, recs.size());
    std::remove(path.c_str());
}

TEST(Trace, LargeTraceRoundtrip)
{
    std::string path = tempPath("ariadne_trace_large.bin");
    std::vector<TraceRecord> recs;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        recs.push_back({i * 10, TraceOp::Touch,
                        static_cast<AppId>(i % 10), i,
                        static_cast<std::uint32_t>(i % 3),
                        static_cast<Hotness>(i % 3), i % 7 == 0});
    }
    writeTrace(path, recs);
    EXPECT_EQ(readTrace(path), recs);
    std::remove(path.c_str());
}

TEST(Trace, CsvExportHasHeaderAndRows)
{
    std::string bin = tempPath("ariadne_trace_csv.bin");
    std::string csv = tempPath("ariadne_trace.csv");
    auto recs = sampleRecords();
    exportTraceCsv(csv, recs);

    std::ifstream in(csv);
    std::string line;
    std::size_t lines = 0;
    bool header_ok = false;
    while (std::getline(in, line)) {
        if (lines == 0)
            header_ok = line.rfind("time_ns,op,uid", 0) == 0;
        ++lines;
    }
    EXPECT_TRUE(header_ok);
    EXPECT_EQ(lines, recs.size() + 1);
    std::remove(bin.c_str());
    std::remove(csv.c_str());
}

TEST(Trace, OpNamesStable)
{
    EXPECT_STREQ(traceOpName(TraceOp::Launch), "launch");
    EXPECT_STREQ(traceOpName(TraceOp::Relaunch), "relaunch");
    EXPECT_STREQ(traceOpName(TraceOp::Touch), "touch");
    EXPECT_STREQ(traceOpName(TraceOp::Free), "free");
}

TEST(TraceDeath, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceReader("/nonexistent/path/trace.bin"),
                 "cannot open");
}

TEST(TraceDeath, CorruptHeaderIsFatal)
{
    std::string path = tempPath("ariadne_trace_bad.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "garbage that is not a trace header";
    }
    EXPECT_DEATH(TraceReader reader(path), "bad trace header");
    std::remove(path.c_str());
}
