/** @file Unit tests for the intrusive LRU list. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/lru_list.hh"

using namespace ariadne;

namespace
{

std::vector<PageMeta>
makePages(std::size_t n)
{
    std::vector<PageMeta> pages(n);
    for (std::size_t i = 0; i < n; ++i)
        pages[i].key = PageKey{1, i};
    return pages;
}

} // namespace

TEST(LruList, StartsEmpty)
{
    LruList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.popBack(), nullptr);
    EXPECT_EQ(list.popFront(), nullptr);
}

TEST(LruList, PushFrontOrdering)
{
    LruList list;
    auto pages = makePages(3);
    for (auto &p : pages)
        list.pushFront(p);
    EXPECT_EQ(list.front(), &pages[2]); // most recent
    EXPECT_EQ(list.back(), &pages[0]);  // least recent
    EXPECT_EQ(list.size(), 3u);
}

TEST(LruList, PushBackOrdering)
{
    LruList list;
    auto pages = makePages(3);
    for (auto &p : pages)
        list.pushBack(p);
    EXPECT_EQ(list.front(), &pages[0]);
    EXPECT_EQ(list.back(), &pages[2]);
}

TEST(LruList, PopBackIsFifoOfPushFront)
{
    // pushFront then popBack preserves insertion order — the property
    // that makes compression order equal touch order.
    LruList list;
    auto pages = makePages(5);
    for (auto &p : pages)
        list.pushFront(p);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(list.popBack(), &pages[i]);
    EXPECT_TRUE(list.empty());
}

TEST(LruList, TouchMovesToFront)
{
    LruList list;
    auto pages = makePages(3);
    for (auto &p : pages)
        list.pushFront(p);
    list.touch(pages[0]); // oldest becomes newest
    EXPECT_EQ(list.front(), &pages[0]);
    EXPECT_EQ(list.back(), &pages[1]);
}

TEST(LruList, TouchFrontIsNoop)
{
    LruList list;
    auto pages = makePages(2);
    list.pushFront(pages[0]);
    list.pushFront(pages[1]);
    list.touch(pages[1]);
    EXPECT_EQ(list.front(), &pages[1]);
}

TEST(LruList, RemoveMiddle)
{
    LruList list;
    auto pages = makePages(3);
    for (auto &p : pages)
        list.pushFront(p);
    list.remove(pages[1]);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.front(), &pages[2]);
    EXPECT_EQ(list.back(), &pages[0]);
    EXPECT_EQ(pages[1].lruOwner, nullptr);
}

TEST(LruList, ContainsTracksMembership)
{
    LruList a, b;
    auto pages = makePages(1);
    EXPECT_FALSE(a.contains(pages[0]));
    a.pushFront(pages[0]);
    EXPECT_TRUE(a.contains(pages[0]));
    EXPECT_FALSE(b.contains(pages[0]));
    a.remove(pages[0]);
    EXPECT_FALSE(a.contains(pages[0]));
}

TEST(LruList, DrainToPreservesRecency)
{
    LruList src, dst;
    auto pages = makePages(4);
    for (auto &p : pages)
        src.pushFront(p);
    PageMeta sentinel;
    sentinel.key = PageKey{2, 0};
    dst.pushFront(sentinel);

    src.drainTo(dst);
    EXPECT_TRUE(src.empty());
    EXPECT_EQ(dst.size(), 5u);
    // Oldest of src is now the oldest of dst.
    EXPECT_EQ(dst.back(), &pages[0]);
    EXPECT_EQ(dst.front(), &sentinel);
}

TEST(LruList, OpCounterCountsMutations)
{
    Counter ops;
    LruList list(&ops);
    auto pages = makePages(2);
    list.pushFront(pages[0]); // 1
    list.pushFront(pages[1]); // 2
    list.touch(pages[0]);     // remove+push = 2 more, total 4... or
    // touch of non-front counts remove+pushFront (2 ops).
    EXPECT_GE(ops.value(), 4u);
    list.popBack(); // remove
    EXPECT_GE(ops.value(), 5u);
}

TEST(LruList, SingleElementEdgeCases)
{
    LruList list;
    auto pages = makePages(1);
    list.pushFront(pages[0]);
    EXPECT_EQ(list.front(), list.back());
    EXPECT_EQ(list.popFront(), &pages[0]);
    EXPECT_TRUE(list.empty());
    list.pushBack(pages[0]);
    EXPECT_EQ(list.popBack(), &pages[0]);
    EXPECT_TRUE(list.empty());
}

TEST(LruListDeath, CrossListRemovePanics)
{
    LruList a, b;
    auto pages = makePages(1);
    a.pushFront(pages[0]);
    EXPECT_DEATH(b.remove(pages[0]), "not on this list");
}

TEST(LruListDeath, DoubleInsertPanics)
{
    LruList a;
    auto pages = makePages(1);
    a.pushFront(pages[0]);
    EXPECT_DEATH(a.pushFront(pages[0]), "already on a list");
}
